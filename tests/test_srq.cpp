// Shared-receive-queue tests: creation, posting, consumption across many
// QPs, protection, capacity and RNR-on-underrun — the machinery the MPI
// eager protocol scales on.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace cord::nic {
namespace {

using cord::testing::TwoHostFixture;
using cord::testing::uptr;

struct SrqFixture : TwoHostFixture {
  ProtectionDomainId pd0;
  ProtectionDomainId pd1;
  CompletionQueue* scq0;
  CompletionQueue* cq1;
  SharedReceiveQueue* srq;
  std::vector<std::byte> slab;  // receive slots on host1
  const MemoryRegion* slab_mr;
  static constexpr std::uint32_t kSlot = 256;

  SrqFixture() : slab(64 * kSlot) {
    pd0 = host0->nic().alloc_pd();
    pd1 = host1->nic().alloc_pd();
    scq0 = host0->nic().create_cq(256);
    cq1 = host1->nic().create_cq(256);
    srq = host1->nic().create_srq(pd1, 64);
    slab_mr = &host1->nic().register_mr(pd1, slab.data(), slab.size(),
                                        kAccessLocalWrite);
  }

  /// RC QP on host0 connected to a SRQ-attached QP on host1.
  std::pair<QueuePair*, QueuePair*> connect_pair() {
    QueuePair* q0 = host0->nic().create_qp(
        {QpType::kRC, pd0, scq0, scq0, 64, 64, 0});
    QueuePair* q1 = host1->nic().create_qp(
        {QpType::kRC, pd1, cq1, cq1, 64, 0, 0, srq});
    EXPECT_EQ(host0->nic().modify_qp(*q0, QpState::kInit), kOk);
    EXPECT_EQ(host0->nic().modify_qp(*q0, QpState::kRtr, {1, q1->qpn()}), kOk);
    EXPECT_EQ(host0->nic().modify_qp(*q0, QpState::kRts), kOk);
    EXPECT_EQ(host1->nic().modify_qp(*q1, QpState::kInit), kOk);
    EXPECT_EQ(host1->nic().modify_qp(*q1, QpState::kRtr, {0, q0->qpn()}), kOk);
    EXPECT_EQ(host1->nic().modify_qp(*q1, QpState::kRts), kOk);
    return {q0, q1};
  }

  int post_slot(std::uint32_t i) {
    return host1->nic().post_srq_recv(
        *srq, {i, {uptr(slab.data() + i * kSlot), kSlot, slab_mr->lkey}});
  }
};

TEST(Srq, PostValidatesProtection) {
  SrqFixture f;
  EXPECT_EQ(f.post_slot(0), kOk);
  // Wrong lkey.
  EXPECT_EQ(f.host1->nic().post_srq_recv(
                *f.srq, {9, {uptr(f.slab.data()), 64, 0xDEAD}}),
            kErrInvalid);
  // MR from another PD must be rejected.
  std::vector<std::byte> other(64);
  const MemoryRegion& foreign = f.host1->nic().register_mr(
      f.pd1 + 100, other.data(), other.size(), kAccessLocalWrite);
  EXPECT_EQ(f.host1->nic().post_srq_recv(
                *f.srq, {9, {uptr(other.data()), 64, foreign.lkey}}),
            kErrInvalid);
}

TEST(Srq, CapacityEnforced) {
  SrqFixture f;
  for (std::uint32_t i = 0; i < 64; ++i) EXPECT_EQ(f.post_slot(i % 64), kOk);
  EXPECT_EQ(f.post_slot(0), kErrQueueFull);
}

TEST(Srq, PostRecvOnSrqQpRejected) {
  SrqFixture f;
  auto [q0, q1] = f.connect_pair();
  (void)q0;
  EXPECT_EQ(f.host1->nic().post_recv(*q1, {1, {uptr(f.slab.data()), 64,
                                               f.slab_mr->lkey}}),
            kErrInvalid)
      << "SRQ-attached QPs must use post_srq_recv";
}

TEST(Srq, ManyQpsShareOnePool) {
  SrqFixture f;
  constexpr int kQps = 8;
  std::vector<std::pair<QueuePair*, QueuePair*>> pairs;
  for (int i = 0; i < kQps; ++i) pairs.push_back(f.connect_pair());
  for (std::uint32_t i = 0; i < 32; ++i) ASSERT_EQ(f.post_slot(i), kOk);

  std::vector<std::vector<std::byte>> srcs;
  for (int i = 0; i < kQps; ++i) {
    srcs.emplace_back(100, static_cast<std::byte>(i + 1));
  }
  for (int i = 0; i < kQps; ++i) {
    const auto& mr = f.host0->nic().register_mr(f.pd0, srcs[i].data(), 100, 0);
    ASSERT_EQ(f.host0->nic().post_send(
                  *pairs[i].first,
                  SendWr{.wr_id = static_cast<std::uint64_t>(i),
                         .sge = {uptr(srcs[i].data()), 100, mr.lkey}}),
              kOk);
  }
  f.engine.run();

  std::vector<Cqe> wc(32);
  const std::size_t n = f.cq1->poll(wc);
  ASSERT_EQ(n, static_cast<std::size_t>(kQps));
  EXPECT_EQ(f.srq->consumed(), static_cast<std::uint64_t>(kQps));
  EXPECT_EQ(f.srq->depth(), 32u - kQps);
  // Each CQE identifies its QP; payload landed in the slot its WQE named.
  for (std::size_t i = 0; i < n; ++i) {
    const auto slot = static_cast<std::uint32_t>(wc[i].wr_id);
    const int sender = static_cast<int>(wc[i].wr_id);  // wr_id == qp index here?
    (void)sender;
    EXPECT_EQ(wc[i].status, WcStatus::kSuccess);
    EXPECT_NE(f.slab[slot * SrqFixture::kSlot], std::byte{0})
        << "slot " << slot << " untouched";
  }
}

TEST(Srq, UnderrunTriggersRnrRetryThenSucceeds) {
  SrqFixture f;
  auto [q0, q1] = f.connect_pair();
  (void)q1;
  std::vector<std::byte> src(64, std::byte{0x7E});
  const auto& mr = f.host0->nic().register_mr(f.pd0, src.data(), 64, 0);
  ASSERT_EQ(f.host0->nic().post_send(
                *q0, SendWr{.wr_id = 5, .sge = {uptr(src.data()), 64, mr.lkey}}),
            kOk);
  // Provide the slot only after 25 us — within the RNR retry budget.
  f.engine.call_at(sim::us(25), [&f] { ASSERT_EQ(f.post_slot(0), kOk); });
  f.engine.run();
  std::vector<Cqe> wc(4);
  ASSERT_EQ(f.scq0->poll(wc), 1u);
  EXPECT_EQ(wc[0].status, WcStatus::kSuccess);
  EXPECT_EQ(f.slab[0], std::byte{0x7E});
}

TEST(Srq, FifoConsumptionOrder) {
  SrqFixture f;
  auto [q0, q1] = f.connect_pair();
  (void)q1;
  for (std::uint32_t i = 0; i < 4; ++i) ASSERT_EQ(f.post_slot(i), kOk);
  std::vector<std::byte> src(16);
  const auto& mr = f.host0->nic().register_mr(f.pd0, src.data(), 16, 0);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_EQ(f.host0->nic().post_send(
                  *q0, SendWr{.wr_id = i, .sge = {uptr(src.data()), 16, mr.lkey}}),
              kOk);
  }
  f.engine.run();
  std::vector<Cqe> wc(8);
  ASSERT_EQ(f.cq1->poll(wc), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(wc[i].wr_id, i) << "SRQ slots must be consumed FIFO";
  }
}

}  // namespace
}  // namespace cord::nic
