// Speculative (Time-Warp) sharded synchronization — sim-level tests.
//
// The differential model below is built so that THE SAME final state is
// reachable under any legal execution order: every event's behavior is a
// pure function of (seed, shard, step) — never of model state — and all
// state writes are commutative accumulations through Engine::spec_store.
// That lets one model run under (a) a single engine, (b) conservative
// sharded sync and (c) speculative sharded sync, and demand bit-equal
// final accumulators, final times, event counts and zero clamps across
// all three, for any topology/seed — while (c) internally commits,
// rolls back and re-executes.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "sim/engine.hpp"
#include "sim/sharded.hpp"
#include "sim/units.hpp"
#include "trace/causal/causal.hpp"

namespace {

using cord::sim::Engine;
using cord::sim::InlineFn;
using cord::sim::QueueKind;
using cord::sim::ShardedEngine;
using cord::sim::SyncMode;
using cord::sim::Time;

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct ModelCfg {
  std::size_t shards = 2;
  QueueKind queue = QueueKind::kHeap;
  Time lookahead = 100;
  std::uint64_t seed = 1;
  std::uint32_t chain_len = 64;  // events per shard chain
  Time base_gap = 0;             // per-event delta = base_gap + h % gap_mod
  Time gap_mod = 1;
  std::uint32_t post_every = 4;  // cross-post when h % post_every == 0
  // Per-shard overrides (index < size); empty = uniform.
  std::vector<Time> base_gap_of;
  std::vector<std::uint32_t> chain_len_of;

  Time gap(std::size_t s) const {
    return s < base_gap_of.size() ? base_gap_of[s] : base_gap;
  }
  std::uint32_t len(std::size_t s) const {
    return s < chain_len_of.size() ? chain_len_of[s] : chain_len;
  }
};

struct ModelState {
  std::vector<std::uint64_t> acc;  // one commutative accumulator per shard
};

struct ModelResult {
  std::vector<std::uint64_t> acc;
  Time final_time = 0;
  std::uint64_t events = 0;
  std::uint64_t clamped = 0;
};

// Executor seam: where events live and how cross-"shard" posts travel.
struct SingleExec {
  explicit SingleExec(const ModelCfg& cfg) : eng(cfg.queue) {}
  Engine& engine(std::size_t) { return eng; }
  void post(std::size_t, std::size_t, Time t, InlineFn fn) {
    eng.call_at_replayable(t, std::move(fn));
  }
  Time run() { return eng.run(); }
  std::uint64_t events() const { return eng.events_processed(); }
  std::uint64_t clamped() const { return eng.clamped_events(); }
  Engine eng;
};

struct ShardExec {
  ShardExec(const ModelCfg& cfg, SyncMode sync, std::uint32_t depth)
      : se(cfg.shards, cfg.queue) {
    se.set_lookahead(cfg.lookahead);
    se.set_sync(sync, depth);
  }
  Engine& engine(std::size_t s) { return se.shard(s); }
  void post(std::size_t src, std::size_t dst, Time t, InlineFn fn) {
    se.shard(src).cross_post_replayable(se.shard(dst), t, std::move(fn));
  }
  Time run() { return se.run(); }
  std::uint64_t events() const { return se.events_processed(); }
  std::uint64_t clamped() const { return se.clamped_events(); }
  ShardedEngine se;
};

// One chain step on logical shard `s`. Everything below is a pure
// function of (cfg.seed, s, k): scheduling decisions never read model
// state, so the executed event set is identical across sync modes.
template <typename Exec>
void chain_step(Exec& ex, const ModelCfg& cfg, ModelState& st, std::uint32_t s,
                std::uint32_t k) {
  Engine& e = ex.engine(s);
  const Time t = e.now();
  const std::uint64_t h = splitmix(cfg.seed ^ (s * 0x10001ULL) ^ k);
  e.spec_store(st.acc[s], st.acc[s] + h);
  if (cfg.shards > 1 && cfg.post_every != 0 && h % cfg.post_every == 0) {
    const auto dst = static_cast<std::uint32_t>(
        (s + 1 + (h >> 8) % (cfg.shards - 1)) % cfg.shards);
    const Time post_t =
        t + cfg.lookahead + static_cast<Time>((h >> 16) % 16);
    const std::uint64_t v = splitmix(h);
    Engine* de = &ex.engine(dst);
    ex.post(s, dst, post_t, InlineFn([de, &st, dst, v] {
              de->spec_store(st.acc[dst], st.acc[dst] + v);
            }));
  }
  if (k + 1 < cfg.len(s)) {
    const Time delta = cfg.gap(s) + static_cast<Time>(h % cfg.gap_mod);
    e.call_at_replayable(t + delta, [&ex, &cfg, &st, s, k] {
      chain_step(ex, cfg, st, s, k + 1);
    });
  }
}

template <typename Exec, typename... Args>
ModelResult run_model(const ModelCfg& cfg, Args&&... args) {
  Exec ex(cfg, std::forward<Args>(args)...);
  ModelState st;
  st.acc.assign(cfg.shards, 0);
  for (std::uint32_t s = 0; s < cfg.shards; ++s) {
    const Time t0 = static_cast<Time>(1 + s);
    ex.engine(s).call_at_replayable(t0, [&ex, &cfg, &st, s] {
      chain_step(ex, cfg, st, s, 0);
    });
  }
  ModelResult r;
  r.final_time = ex.run();
  r.acc = st.acc;
  r.events = ex.events();
  r.clamped = ex.clamped();
  return r;
}

// Run the model under all three executions and demand equality.
// Returns the speculative run's stats for protocol-level assertions.
cord::sim::ShardStats expect_equivalent(const ModelCfg& cfg,
                                        std::uint32_t depth) {
  const ModelResult single = run_model<SingleExec>(cfg);
  const ModelResult cons =
      run_model<ShardExec>(cfg, SyncMode::kConservative, depth);
  ShardExec spec_ex(cfg, SyncMode::kSpeculative, depth);
  ModelState st;
  st.acc.assign(cfg.shards, 0);
  for (std::uint32_t s = 0; s < cfg.shards; ++s) {
    spec_ex.engine(s).call_at_replayable(
        static_cast<Time>(1 + s),
        [&spec_ex, &cfg, &st, s] { chain_step(spec_ex, cfg, st, s, 0); });
  }
  ModelResult spec;
  spec.final_time = spec_ex.run();
  spec.acc = st.acc;
  spec.events = spec_ex.events();
  spec.clamped = spec_ex.clamped();

  EXPECT_EQ(single.acc, cons.acc);
  EXPECT_EQ(single.acc, spec.acc);
  EXPECT_EQ(single.final_time, cons.final_time);
  EXPECT_EQ(single.final_time, spec.final_time);
  EXPECT_EQ(single.events, cons.events);
  EXPECT_EQ(single.events, spec.events);
  EXPECT_EQ(0u, single.clamped);
  EXPECT_EQ(0u, cons.clamped);
  EXPECT_EQ(0u, spec.clamped);
  return spec_ex.se.stats();
}

TEST(Speculative, ParseSyncMode) {
  EXPECT_EQ(SyncMode::kConservative, cord::sim::parse_sync_mode("conservative"));
  EXPECT_EQ(SyncMode::kSpeculative, cord::sim::parse_sync_mode("speculative"));
  EXPECT_THROW(cord::sim::parse_sync_mode("optimistic"), std::invalid_argument);
  EXPECT_EQ("conservative", cord::sim::sync_mode_name(SyncMode::kConservative));
  EXPECT_EQ("speculative", cord::sim::sync_mode_name(SyncMode::kSpeculative));
}

TEST(Speculative, DepthZeroRejected) {
  ShardedEngine se(2);
  EXPECT_THROW(se.set_sync(SyncMode::kSpeculative, 0), std::invalid_argument);
}

TEST(Speculative, SpecStoreOutsideSpeculationIsPlainAssignment) {
  Engine e;
  std::uint64_t cell = 7;
  e.spec_store(cell, std::uint64_t{42});
  EXPECT_EQ(42u, cell);
  EXPECT_FALSE(e.speculating());
  EXPECT_EQ(0u, e.spec_depth());
}

// A dense fast shard plus a slow poster: speculation runs the fast shard
// many windows ahead, and the slow shard's deliveries land in its past.
// Deterministic — this scenario MUST roll back, and still match the
// single-engine run exactly.
ModelCfg rollback_heavy_cfg(QueueKind queue, std::uint64_t seed) {
  ModelCfg cfg;
  cfg.shards = 2;
  cfg.queue = queue;
  cfg.lookahead = 100;
  cfg.seed = seed;
  cfg.gap_mod = 8;
  cfg.post_every = 1;  // every shard-0 step posts
  cfg.base_gap_of = {400, 25};
  cfg.chain_len_of = {24, 256};
  return cfg;
}

TEST(Speculative, RollbackScenarioMatchesSingleEngineHeap) {
  const auto stats = expect_equivalent(rollback_heavy_cfg(QueueKind::kHeap, 11),
                                       /*depth=*/8);
  EXPECT_TRUE(stats.speculative);
  EXPECT_GT(stats.rollbacks, 0u);
  EXPECT_GT(stats.rolled_back_events, 0u);
  EXPECT_GT(stats.journaled_effects, 0u);
  EXPECT_GT(stats.max_speculation_depth, 0u);
}

TEST(Speculative, RollbackScenarioMatchesSingleEngineCalendar) {
  const auto stats = expect_equivalent(
      rollback_heavy_cfg(QueueKind::kCalendar, 12), /*depth=*/8);
  EXPECT_TRUE(stats.speculative);
  EXPECT_GT(stats.rollbacks, 0u);
}

TEST(Speculative, DepthOneDegeneratesToConservativePacing) {
  const auto stats =
      expect_equivalent(rollback_heavy_cfg(QueueKind::kHeap, 13), /*depth=*/1);
  EXPECT_TRUE(stats.speculative);
  // Depth 1 never runs past the conservative edge: nothing journals and
  // nothing can roll back.
  EXPECT_EQ(0u, stats.journaled_effects);
  EXPECT_EQ(0u, stats.rollbacks);
}

// Randomized differential sweep: topologies and rates drawn from the
// seed, speculative vs conservative vs single-engine, both backends.
TEST(Speculative, RandomizedDifferential) {
  std::uint64_t total_rollbacks = 0;
  std::uint64_t total_journaled = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const std::uint64_t h = splitmix(seed * 0xabcdULL);
    ModelCfg cfg;
    cfg.shards = 2 + h % 3;  // 2..4
    cfg.queue = (h >> 4) % 2 == 0 ? QueueKind::kHeap : QueueKind::kCalendar;
    cfg.lookahead = 50 + static_cast<Time>((h >> 8) % 200);
    cfg.seed = seed;
    cfg.chain_len = 48 + static_cast<std::uint32_t>((h >> 16) % 128);
    cfg.base_gap = 10 + static_cast<Time>((h >> 24) % 64);
    cfg.gap_mod = 1 + static_cast<Time>((h >> 32) % 96);
    cfg.post_every = 1 + static_cast<std::uint32_t>((h >> 40) % 5);
    // Skew one shard slow so speculation has something to outrun.
    cfg.base_gap_of.assign(cfg.shards, cfg.base_gap);
    cfg.base_gap_of[h % cfg.shards] = cfg.base_gap * 16;
    const auto depth = static_cast<std::uint32_t>(2 + (h >> 48) % 7);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " shards=" + std::to_string(cfg.shards) +
                 " depth=" + std::to_string(depth));
    const auto stats = expect_equivalent(cfg, depth);
    total_rollbacks += stats.rollbacks;
    total_journaled += stats.journaled_effects;
  }
  // The sweep as a whole must exercise the optimistic machinery.
  EXPECT_GT(total_journaled, 0u);
  EXPECT_GT(total_rollbacks, 0u);
}

// Non-replayable events are speculation fences: a model that never opts
// in executes the exact conservative schedule even under kSpeculative.
TEST(Speculative, UnmarkedEventsNeverSpeculate) {
  for (QueueKind queue : {QueueKind::kHeap, QueueKind::kCalendar}) {
    ShardedEngine se(2, queue);
    se.set_lookahead(100);
    se.set_sync(SyncMode::kSpeculative, 8);
    std::vector<std::uint64_t> acc(2, 0);
    for (std::uint32_t s = 0; s < 2; ++s) {
      struct Chain {
        ShardedEngine* se;
        std::vector<std::uint64_t>* acc;
        std::uint32_t s, k;
        void operator()() const {
          Engine& e = se->shard(s);
          (*acc)[s] += splitmix(s * 1000 + k);
          if (k % 3 == 0) {
            Engine& d = se->shard(1 - s);
            std::uint64_t* cell = &(*acc)[1 - s];
            e.cross_post(d, e.now() + 150, cord::sim::InlineFn([cell] {
                           *cell += 1;
                         }));
          }
          if (k + 1 < 40) {
            e.call_at(e.now() + 60, Chain{se, acc, s, k + 1});
          }
        }
      };
      se.shard(s).call_at(1 + s, Chain{&se, &acc, s, 0});
    }
    se.run();
    EXPECT_TRUE(se.stats().speculative);
    EXPECT_EQ(0u, se.stats().journaled_effects);
    EXPECT_EQ(0u, se.stats().rollbacks);
    EXPECT_EQ(0u, se.clamped_events());
  }
}

// Speculation counters surface through System::metrics() and every host
// kernel's proc_read("metrics") — the observability satellite.
TEST(Speculative, CountersSurfaceThroughSystemMetricsAndProcfs) {
  cord::core::SystemConfig cfg = cord::core::system_l();
  cfg.sync = SyncMode::kSpeculative;
  cfg.speculation_depth = 8;
  cord::core::System sys(cfg, /*host_count=*/2, /*shards=*/2);
  ASSERT_EQ(sys.sharded().sync(), SyncMode::kSpeculative);
  // Drive the shards directly with dense replayable chains: the hosts'
  // NIC models stay idle, so every counter below is attributable to the
  // chains (no cross posts — journaled grows, rollbacks stay 0).
  static std::uint64_t cell[2];
  cell[0] = cell[1] = 0;
  for (std::uint32_t s = 0; s < 2; ++s) {
    struct Chain {
      Engine* e;
      std::uint32_t s, k;
      void operator()() const {
        e->spec_store(cell[s], cell[s] + k);
        if (k + 1 < 64) {
          e->call_at_replayable(e->now() + cord::sim::ns(10), Chain{e, s, k + 1});
        }
      }
    };
    Engine& e = sys.sharded().shard(s);
    e.call_at_replayable(1 + s, Chain{&e, s, 0});
  }
  sys.sharded().run();
  const auto& st = sys.sharded().stats();
  EXPECT_TRUE(st.speculative);
  EXPECT_GT(st.journaled_effects, 0u);
  EXPECT_EQ(sys.metrics().gauge_value("sim.shard.windows"),
            static_cast<std::int64_t>(st.windows));
  EXPECT_EQ(sys.metrics().gauge_value("sim.shard.journaled_effects"),
            static_cast<std::int64_t>(st.journaled_effects));
  EXPECT_EQ(sys.metrics().gauge_value("sim.shard.rollbacks"),
            static_cast<std::int64_t>(st.rollbacks));
  EXPECT_EQ(sys.metrics().gauge_value("sim.shard.max_speculation_depth"),
            static_cast<std::int64_t>(st.max_speculation_depth));
  const std::string dump = sys.host(0).kernel().proc_read("metrics");
  EXPECT_NE(dump.find("sim.shard.windows"), std::string::npos);
  EXPECT_NE(dump.find("sim.shard.journaled_effects"), std::string::npos);
  EXPECT_NE(dump.find("sim.shard.rollbacks"), std::string::npos);
  EXPECT_NE(dump.find("sim.shard.max_speculation_depth"), std::string::npos);
}

// The causal critical-path report grows a shard-spec subsection next to
// the barrier-idle line when the run was speculative.
TEST(Speculative, CriticalPathReportHasSpeculationSubsection) {
  cord::trace::causal::CriticalPath cp{};
  cord::sim::ShardStats sync;
  sync.barrier_wait_ns = {1000, 2000};
  sync.barrier_waits = {1, 2};
  sync.windows = 5;
  const std::string cons = cord::trace::causal::critical_path_report(cp, &sync);
  EXPECT_NE(cons.find("shard-sync"), std::string::npos);
  EXPECT_EQ(cons.find("shard-spec"), std::string::npos);
  sync.speculative = true;
  sync.journaled_effects = 100;
  sync.rollbacks = 3;
  sync.rolled_back_events = 20;
  sync.cancelled_messages = 2;
  sync.max_speculation_depth = 7;
  const std::string spec = cord::trace::causal::critical_path_report(cp, &sync);
  EXPECT_NE(spec.find("shard-spec"), std::string::npos);
  EXPECT_NE(spec.find("3 rollbacks"), std::string::npos);
  EXPECT_NE(spec.find("20.0% wasted"), std::string::npos);
  EXPECT_NE(spec.find("max depth 7"), std::string::npos);
}

TEST(Speculative, SpawnInsideSpeculativeDispatchThrows) {
  ShardedEngine se(2);
  se.set_lookahead(100);
  se.set_sync(SyncMode::kSpeculative, 8);
  // Shard 1 idles far in the future so shard 0's second event is past the
  // conservative edge and dispatches speculatively.
  se.shard(1).call_at(1'000'000, [] {});
  bool threw = false;
  se.shard(0).call_at_replayable(50, [] {});
  se.shard(0).call_at_replayable(500, [&se, &threw] {
    try {
      se.shard(0).spawn(([]() -> cord::sim::Task<void> { co_return; })());
    } catch (const std::logic_error&) {
      threw = true;
      // Swallow: the contract violation is reported at the spawn site.
    }
  });
  se.run();
  EXPECT_TRUE(threw);
}

}  // namespace
