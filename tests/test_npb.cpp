// NPB kernel tests: verify mode (real arithmetic / integrity stamps) for
// every kernel at class S, across network modes, plus the qualitative
// communication-profile properties Fig. 6 depends on.
#include <gtest/gtest.h>

#include "npb/npb.hpp"

namespace cord::npb {
namespace {

using mpi::NetMode;

Result run_kernel(Kernel k, int ranks, NetMode net, bool verify = true,
                  Class cls = Class::kS, int iters = 0) {
  core::System sys(core::system_l(), 2);
  mpi::World world(sys, ranks, {.net = net});
  return run(world, RunConfig{k, cls, verify, iters});
}

// --- verification at class S, every kernel, RDMA ---------------------------

struct KernelCase {
  Kernel kernel;
  int ranks;
};

class NpbVerify : public ::testing::TestWithParam<KernelCase> {};

TEST_P(NpbVerify, ClassSVerifiesOverRdma) {
  const auto [kernel, ranks] = GetParam();
  Result res = run_kernel(kernel, ranks, NetMode::kBypass);
  EXPECT_TRUE(res.verified);
  EXPECT_GT(res.elapsed, 0);
  if (kernel != Kernel::kEP) {
    EXPECT_GT(res.messages, 0u) << "every non-EP kernel communicates";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, NpbVerify,
    ::testing::Values(KernelCase{Kernel::kEP, 8}, KernelCase{Kernel::kIS, 8},
                      KernelCase{Kernel::kCG, 8}, KernelCase{Kernel::kMG, 8},
                      KernelCase{Kernel::kFT, 8}, KernelCase{Kernel::kLU, 8},
                      KernelCase{Kernel::kSP, 9}, KernelCase{Kernel::kBT, 9}),
    [](const auto& info) {
      return std::string(to_string(info.param.kernel));
    });

class NpbModes : public ::testing::TestWithParam<NetMode> {};

TEST_P(NpbModes, IsAndCgVerifyInEveryMode) {
  EXPECT_TRUE(run_kernel(Kernel::kIS, 4, GetParam()).verified);
  EXPECT_TRUE(run_kernel(Kernel::kCG, 4, GetParam()).verified);
}

INSTANTIATE_TEST_SUITE_P(Modes, NpbModes,
                         ::testing::Values(NetMode::kBypass, NetMode::kCord,
                                           NetMode::kIpoib),
                         [](const auto& info) {
                           switch (info.param) {
                             case NetMode::kBypass: return "rdma";
                             case NetMode::kCord: return "cord";
                             case NetMode::kIpoib: return "ipoib";
                           }
                           return "?";
                         });

// --- communication-profile properties ---------------------------------------

TEST(Profiles, EpBarelyCommunicates) {
  Result ep = run_kernel(Kernel::kEP, 8, NetMode::kBypass);
  Result is = run_kernel(Kernel::kIS, 8, NetMode::kBypass);
  EXPECT_LT(ep.bytes * 20, is.bytes) << "EP must move far less data than IS";
}

TEST(Profiles, LuSendsManySmallMessages) {
  Result lu = run_kernel(Kernel::kLU, 8, NetMode::kBypass, true, Class::kS, 10);
  Result cg = run_kernel(Kernel::kCG, 8, NetMode::kBypass, true, Class::kS, 10);
  const double lu_avg = static_cast<double>(lu.bytes) / lu.messages;
  const double cg_avg = static_cast<double>(cg.bytes) / cg.messages;
  EXPECT_LT(lu_avg, cg_avg) << "LU's average message is smaller than CG's";
}

TEST(Profiles, FtMovesTheMostDataPerMessage) {
  Result ft = run_kernel(Kernel::kFT, 8, NetMode::kBypass, true, Class::kS, 3);
  Result lu = run_kernel(Kernel::kLU, 8, NetMode::kBypass, true, Class::kS, 3);
  const double ft_avg = static_cast<double>(ft.bytes) / ft.messages;
  const double lu_avg = static_cast<double>(lu.bytes) / lu.messages;
  EXPECT_GT(ft_avg, 10 * lu_avg);
}

TEST(Profiles, SpBtRequireSquareRankCounts) {
  EXPECT_THROW(run_kernel(Kernel::kSP, 8, NetMode::kBypass), std::invalid_argument);
  EXPECT_THROW(run_kernel(Kernel::kBT, 8, NetMode::kBypass), std::invalid_argument);
}

TEST(Profiles, CgFtLuRequirePow2) {
  EXPECT_THROW(run_kernel(Kernel::kCG, 6, NetMode::kBypass), std::invalid_argument);
  EXPECT_THROW(run_kernel(Kernel::kFT, 6, NetMode::kBypass), std::invalid_argument);
  EXPECT_THROW(run_kernel(Kernel::kLU, 6, NetMode::kBypass), std::invalid_argument);
}

// --- Fig. 6 shape at small scale -------------------------------------------

TEST(Fig6Small, CordCloseToRdmaIpoibSlowerOnIs) {
  // Class S at 8 ranks is tiny, but the ordering must already hold.
  const double rdma = sim::to_ms(run_kernel(Kernel::kIS, 8, NetMode::kBypass,
                                            false).elapsed);
  const double cord = sim::to_ms(run_kernel(Kernel::kIS, 8, NetMode::kCord,
                                            false).elapsed);
  const double ipoib = sim::to_ms(run_kernel(Kernel::kIS, 8, NetMode::kIpoib,
                                             false).elapsed);
  EXPECT_LT(cord / rdma, 1.5);
  EXPECT_GT(ipoib / rdma, 1.2);
  EXPECT_GT(ipoib, cord);
}

TEST(Fig6Small, EpInsensitiveToNetwork) {
  const double rdma =
      sim::to_ms(run_kernel(Kernel::kEP, 8, NetMode::kBypass, false).elapsed);
  const double ipoib =
      sim::to_ms(run_kernel(Kernel::kEP, 8, NetMode::kIpoib, false).elapsed);
  EXPECT_NEAR(ipoib / rdma, 1.0, 0.05) << "EP barely communicates";
}

TEST(Determinism, NpbRunsReproduce) {
  const Result a = run_kernel(Kernel::kMG, 8, NetMode::kBypass);
  const Result b = run_kernel(Kernel::kMG, 8, NetMode::kBypass);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.bytes, b.bytes);
}

}  // namespace
}  // namespace cord::npb
