// Tests for the MPI runtime: point-to-point semantics (eager, rendezvous,
// unexpected messages, ordering), every collective, all three network
// modes (RDMA bypass / CoRD / IPoIB), and cross-mode behaviour claims.
#include <gtest/gtest.h>

#include <numeric>

#include "mpi/world.hpp"

namespace cord::mpi {
namespace {

/// Run `body` on a fresh 2-host system-L world of `n` ranks.
sim::Time run_world(int n, NetMode net, std::function<sim::Task<>(Rank&)> body,
                    WorldConfig cfg = {}) {
  core::System sys(core::system_l(), 2);
  cfg.net = net;
  World world(sys, n, cfg);
  return world.run(std::move(body));
}

const NetMode kAllModes[] = {NetMode::kBypass, NetMode::kCord, NetMode::kIpoib};

TEST(PointToPoint, EagerSmallMessage) {
  for (NetMode net : kAllModes) {
    run_world(2, net, [](Rank& r) -> sim::Task<> {
      if (r.id() == 0) {
        std::vector<int> data{1, 2, 3, 4};
        co_await r.send<int>(1, 7, data);
      } else {
        std::vector<int> out(4);
        const std::size_t n = co_await r.recv<int>(0, 7, out);
        if (n != 4 || out != std::vector<int>{1, 2, 3, 4}) {
          throw std::runtime_error("eager payload mismatch");
        }
      }
    });
  }
}

TEST(PointToPoint, RendezvousLargeMessage) {
  for (NetMode net : kAllModes) {
    run_world(2, net, [](Rank& r) -> sim::Task<> {
      constexpr std::size_t kN = 64 * 1024;  // 512 KiB of doubles
      if (r.id() == 0) {
        std::vector<double> data(kN);
        std::iota(data.begin(), data.end(), 0.5);
        co_await r.send<double>(1, 9, data);
      } else {
        std::vector<double> out(kN);
        (void)co_await r.recv<double>(0, 9, out);
        for (std::size_t i = 0; i < kN; ++i) {
          if (out[i] != static_cast<double>(i) + 0.5) {
            throw std::runtime_error("rendezvous payload mismatch");
          }
        }
      }
    });
  }
}

TEST(PointToPoint, UnexpectedMessagesBufferAndMatchLater) {
  run_world(2, NetMode::kBypass, [](Rank& r) -> sim::Task<> {
    if (r.id() == 0) {
      std::vector<int> a{10}, b{20};
      co_await r.send<int>(1, 1, a);
      co_await r.send<int>(1, 2, b);
    } else {
      co_await r.core().engine().delay(sim::us(100));  // let both arrive
      // Receive out of tag order: tag 2 first.
      std::vector<int> x(1), y(1);
      (void)co_await r.recv<int>(0, 2, x);
      (void)co_await r.recv<int>(0, 1, y);
      if (x[0] != 20 || y[0] != 10) throw std::runtime_error("matching broken");
    }
  });
}

TEST(PointToPoint, SameTagMessagesArriveInOrder) {
  run_world(2, NetMode::kBypass, [](Rank& r) -> sim::Task<> {
    constexpr int kMsgs = 32;
    if (r.id() == 0) {
      for (int i = 0; i < kMsgs; ++i) {
        std::vector<int> v{i};
        co_await r.send<int>(1, 5, v);
      }
    } else {
      for (int i = 0; i < kMsgs; ++i) {
        std::vector<int> v(1);
        (void)co_await r.recv<int>(0, 5, v);
        if (v[0] != i) throw std::runtime_error("ordering violated");
      }
    }
  });
}

TEST(PointToPoint, MixedEagerAndRendezvousInterleave) {
  // Eager (small) first, rendezvous (large) second; the receiver takes
  // them in the opposite order. (The reverse send order would be unsafe
  // MPI: a blocking large send may not complete until matched.)
  run_world(2, NetMode::kBypass, [](Rank& r) -> sim::Task<> {
    const std::size_t big = 128 * 1024;
    if (r.id() == 0) {
      std::vector<int> small{42};
      std::vector<std::byte> large(big, std::byte{0xCD});
      co_await r.send<int>(1, 2, small);
      co_await r.send<std::byte>(1, 1, large);
    } else {
      std::vector<std::byte> large(big);
      (void)co_await r.recv<std::byte>(0, 1, large);
      std::vector<int> small(1);
      (void)co_await r.recv<int>(0, 2, small);
      if (small[0] != 42 || large[big - 1] != std::byte{0xCD}) {
        throw std::runtime_error("mixed protocol mismatch");
      }
    }
  });
}

TEST(PointToPoint, TruncationThrows) {
  EXPECT_THROW(
      run_world(2, NetMode::kBypass, [](Rank& r) -> sim::Task<> {
        if (r.id() == 0) {
          std::vector<int> data(8);
          co_await r.send<int>(1, 1, data);
        } else {
          std::vector<int> out(4);  // too small
          (void)co_await r.recv<int>(0, 1, out);
        }
      }),
      std::runtime_error);
}

TEST(Collectives, BarrierCompletesForOddAndEvenSizes) {
  for (int n : {2, 3, 8, 13}) {
    run_world(n, NetMode::kBypass, [](Rank& r) -> sim::Task<> {
      for (int i = 0; i < 3; ++i) co_await r.barrier();
    });
  }
}

TEST(Collectives, BcastDeliversFromEveryRoot) {
  run_world(6, NetMode::kBypass, [](Rank& r) -> sim::Task<> {
    for (int root = 0; root < r.size(); ++root) {
      std::vector<int> buf(5);
      if (r.id() == root) {
        std::iota(buf.begin(), buf.end(), root * 100);
      }
      co_await r.bcast<int>(buf, root);
      for (int i = 0; i < 5; ++i) {
        if (buf[i] != root * 100 + i) throw std::runtime_error("bcast mismatch");
      }
    }
  });
}

TEST(Collectives, ReduceSumAtRoot) {
  run_world(7, NetMode::kBypass, [](Rank& r) -> sim::Task<> {
    std::vector<double> in{static_cast<double>(r.id()), 1.0};
    std::vector<double> out(2, -1.0);
    co_await r.reduce<double>(in, out, Op::kSum, 3);
    if (r.id() == 3) {
      const double expect = 7.0 * 6.0 / 2.0;
      if (out[0] != expect || out[1] != 7.0) {
        throw std::runtime_error("reduce mismatch");
      }
    }
  });
}

TEST(Collectives, AllreduceSumMaxMinPow2AndNot) {
  for (int n : {4, 6}) {
    run_world(n, NetMode::kBypass, [](Rank& r) -> sim::Task<> {
      const int n = r.size();
      std::vector<std::int64_t> in{r.id(), -r.id(), r.id() * r.id()};
      std::vector<std::int64_t> out(3);
      co_await r.allreduce<std::int64_t>(in, out, Op::kSum);
      if (out[0] != n * (n - 1) / 2) throw std::runtime_error("allreduce sum");
      co_await r.allreduce<std::int64_t>(in, out, Op::kMax);
      if (out[0] != n - 1 || out[1] != 0) throw std::runtime_error("allreduce max");
      co_await r.allreduce<std::int64_t>(in, out, Op::kMin);
      if (out[0] != 0 || out[1] != -(n - 1)) throw std::runtime_error("allreduce min");
    });
  }
}

TEST(Collectives, AllgatherRing) {
  run_world(5, NetMode::kBypass, [](Rank& r) -> sim::Task<> {
    std::vector<int> mine{r.id() * 10, r.id() * 10 + 1};
    std::vector<int> all(2 * r.size());
    co_await r.allgather<int>(mine, all);
    for (int i = 0; i < r.size(); ++i) {
      if (all[2 * i] != i * 10 || all[2 * i + 1] != i * 10 + 1) {
        throw std::runtime_error("allgather mismatch");
      }
    }
  });
}

TEST(Collectives, AlltoallPairwise) {
  run_world(6, NetMode::kBypass, [](Rank& r) -> sim::Task<> {
    const int n = r.size();
    std::vector<int> in(n), out(n);
    for (int i = 0; i < n; ++i) in[i] = r.id() * 100 + i;
    co_await r.alltoall<int>(in, out);
    for (int i = 0; i < n; ++i) {
      if (out[i] != i * 100 + r.id()) throw std::runtime_error("alltoall mismatch");
    }
  });
}

TEST(Collectives, AlltoallvVariableBlocks) {
  run_world(4, NetMode::kBypass, [](Rank& r) -> sim::Task<> {
    const int n = r.size();
    // Rank r sends (r + i + 1) ints to rank i, value-tagged.
    std::vector<std::size_t> scounts(n), rcounts(n);
    for (int i = 0; i < n; ++i) {
      scounts[i] = static_cast<std::size_t>(r.id() + i + 1);
      rcounts[i] = static_cast<std::size_t>(i + r.id() + 1);
    }
    std::size_t stotal = 0, rtotal = 0;
    for (int i = 0; i < n; ++i) {
      stotal += scounts[i];
      rtotal += rcounts[i];
    }
    std::vector<int> in(stotal), out(rtotal, -1);
    std::size_t off = 0;
    for (int i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < scounts[i]; ++k) in[off++] = r.id() * 1000 + i;
    }
    co_await r.alltoallv<int>(in, scounts, out, rcounts);
    off = 0;
    for (int i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < rcounts[i]; ++k) {
        if (out[off++] != i * 1000 + r.id()) {
          throw std::runtime_error("alltoallv mismatch");
        }
      }
    }
  });
}

TEST(Collectives, WorkInEveryNetMode) {
  for (NetMode net : kAllModes) {
    run_world(4, net, [](Rank& r) -> sim::Task<> {
      std::vector<double> in{1.0};
      std::vector<double> out(1);
      co_await r.allreduce<double>(in, out, Op::kSum);
      if (out[0] != 4.0) throw std::runtime_error("allreduce in mode failed");
      co_await r.barrier();
    });
  }
}

TEST(Modes, CordRoutesDataplaneThroughKernel) {
  core::System sys(core::system_l(), 2);
  World world(sys, 4, {.net = NetMode::kCord});
  (void)world.run([](Rank& r) -> sim::Task<> {
    std::vector<int> v{1};
    std::vector<int> o(1);
    co_await r.allreduce<int>(v, o, Op::kSum);
  });
  EXPECT_GT(sys.host(0).kernel().syscall_count(), 100u)
      << "CoRD MPI must generate data-plane syscalls";
}

TEST(Modes, LatencyOrderIsRdmaThenCordThenIpoib) {
  auto pingpong_time = [](NetMode net) {
    return run_world(2, net, [](Rank& r) -> sim::Task<> {
      std::vector<std::byte> buf(256);
      for (int i = 0; i < 50; ++i) {
        if (r.id() == 0) {
          co_await r.send<std::byte>(1, 1, buf);
          (void)co_await r.recv<std::byte>(1, 2, buf);
        } else {
          (void)co_await r.recv<std::byte>(0, 1, buf);
          co_await r.send<std::byte>(0, 2, buf);
        }
      }
    });
  };
  const sim::Time rdma = pingpong_time(NetMode::kBypass);
  const sim::Time cord = pingpong_time(NetMode::kCord);
  const sim::Time ipoib = pingpong_time(NetMode::kIpoib);
  EXPECT_LT(rdma, cord);
  EXPECT_LT(cord, ipoib);
  EXPECT_GT(ipoib, cord * 2) << "IPoIB small messages are much slower";
}

TEST(Modes, CordOverheadSmallRelativeToRdma) {
  auto exchange_time = [](NetMode net) {
    return run_world(8, net, [](Rank& r) -> sim::Task<> {
      // A CG-like pattern: medium messages + allreduce, several rounds.
      std::vector<double> buf(4096);
      std::vector<double> sum_in{1.0}, sum_out(1);
      for (int it = 0; it < 10; ++it) {
        const int partner = r.id() ^ 1;
        co_await r.sendrecv<double>(partner, 3, buf, partner, 3, buf);
        co_await r.allreduce<double>(sum_in, sum_out, Op::kSum);
        co_await r.compute(sim::us(200));
      }
    });
  };
  const double rdma = sim::to_us(exchange_time(NetMode::kBypass));
  const double cord = sim::to_us(exchange_time(NetMode::kCord));
  EXPECT_LT(cord / rdma, 1.15) << "CoRD must stay within ~15% on app patterns";
}

TEST(Determinism, SameWorldSameTime) {
  auto once = [] {
    return run_world(4, NetMode::kBypass, [](Rank& r) -> sim::Task<> {
      std::vector<int> in(16, r.id()), out(16);
      co_await r.allreduce<int>(in, out, Op::kSum);
    });
  };
  EXPECT_EQ(once(), once());
}

}  // namespace
}  // namespace cord::mpi
