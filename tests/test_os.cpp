// Unit tests for the OS layer: CPU/DVFS model, syscall cost model,
// the policy framework and the concrete CoRD policies, kernel control
// plane, the CoRD data-plane syscalls, and interrupt-driven completions.
#include <gtest/gtest.h>

#include "os/policies.hpp"
#include "test_util.hpp"

namespace cord::os {
namespace {

using cord::testing::RcEndpoints;
using cord::testing::TwoHostFixture;
using cord::testing::run_task;
using cord::testing::uptr;

TEST(CpuModel, MemcpyMatchesPaperCalibration) {
  sim::Engine e;
  Core core(e, CpuModel{}, 1);
  // The paper: removing zero-copy adds up to 140 us/MiB.
  const sim::Time t = core.memcpy_time(1 << 20);
  EXPECT_NEAR(sim::to_us(t), 140.0, 1.0);
}

TEST(CpuModel, SyscallCostRespectsKptiAndVirtualization) {
  sim::Engine e;
  Core plain(e, CpuModel{}, 1);
  CpuModel kpti_model;
  kpti_model.kpti = true;
  Core kpti(e, kpti_model, 1);
  CpuModel virt_model;
  virt_model.virt_overhead = 0.6;
  Core virt(e, virt_model, 1);
  const sim::Time base = plain.syscall_cost();
  EXPECT_EQ(base, sim::ns(180));
  EXPECT_EQ(kpti.syscall_cost(), 3 * base);
  EXPECT_NEAR(static_cast<double>(virt.syscall_cost()),
              1.6 * static_cast<double>(base), 1.0);
}

TEST(CpuModel, SyscallJitterIsDeterministicPerSeed) {
  sim::Engine e;
  CpuModel m;
  m.syscall_jitter = 0.3;
  Core a(e, m, 42), b(e, m, 42), c(e, m, 43);
  EXPECT_EQ(a.syscall_cost(), b.syscall_cost());
  // Different seeds should (overwhelmingly) differ.
  bool any_diff = false;
  for (int i = 0; i < 8; ++i) any_diff |= (a.syscall_cost() != c.syscall_cost());
  EXPECT_TRUE(any_diff);
}

TEST(Dvfs, SpinLoadDegradesFrequencyAndRecovers) {
  sim::Engine e;
  CpuModel m;
  m.turbo_enabled = true;
  Core core(e, m, 1);
  EXPECT_DOUBLE_EQ(core.frequency_ghz(), m.turbo_ghz) << "idle core boosts";
  // Spin hard for several DVFS windows.
  core.charge(sim::us(500), Work::kSpin);
  EXPECT_NEAR(core.frequency_ghz(), m.base_ghz, 0.01)
      << "sustained spinning drops to base clock";
  // Compute/kernel time cools it back down.
  core.charge(sim::us(500), Work::kCompute);
  EXPECT_NEAR(core.frequency_ghz(), m.turbo_ghz, 0.01);
}

TEST(Dvfs, DisabledTurboPinsBaseClock) {
  sim::Engine e;
  Core core(e, CpuModel{}, 1);  // turbo_enabled = false
  EXPECT_DOUBLE_EQ(core.frequency_ghz(), 3.3);
  core.charge(sim::us(500), Work::kSpin);
  EXPECT_DOUBLE_EQ(core.frequency_ghz(), 3.3);
}

TEST(Dvfs, WorkAccountingPerKind) {
  sim::Engine e;
  Core core(e, CpuModel{}, 1);
  run_task(e, [](Core& c) -> sim::Task<> {
    co_await c.work(sim::us(3), Work::kCompute);
    co_await c.work(sim::us(2), Work::kSpin);
    co_await c.work(sim::us(1), Work::kKernel);
  }(core));
  EXPECT_EQ(core.time_compute(), sim::us(3));
  EXPECT_EQ(core.time_spin(), sim::us(2));
  EXPECT_EQ(core.time_kernel(), sim::us(1));
  EXPECT_EQ(e.now(), sim::us(6));
}

TEST(PolicyChain, CostsAccumulateAndDenialShortCircuits) {
  struct Fixed final : Policy {
    bool allow;
    explicit Fixed(bool a) : allow(a) {}
    std::string_view name() const override { return "fixed"; }
    PolicyVerdict on_op(const DataplaneOp&, sim::Time) override {
      ++calls;
      return {.allow = allow, .error = -1, .cpu_cost = sim::ns(10)};
    }
    int calls = 0;
  };
  PolicyChain chain;
  auto& p1 = static_cast<Fixed&>(chain.install(std::make_unique<Fixed>(true)));
  auto& p2 = static_cast<Fixed&>(chain.install(std::make_unique<Fixed>(false)));
  auto& p3 = static_cast<Fixed&>(chain.install(std::make_unique<Fixed>(true)));
  PolicyVerdict v = chain.evaluate(DataplaneOp{}, 0);
  EXPECT_FALSE(v.allow);
  EXPECT_EQ(v.cpu_cost, sim::ns(20)) << "only evaluated policies bill cost";
  EXPECT_EQ(p1.calls, 1);
  EXPECT_EQ(p2.calls, 1);
  EXPECT_EQ(p3.calls, 0) << "denial short-circuits";
  EXPECT_TRUE(chain.remove("fixed"));
  EXPECT_EQ(chain.size(), 2u);
}

TEST(QosTokenBucket, ShapingDelaysOverRateTraffic) {
  QosTokenBucket qos(/*bytes_per_sec=*/1e9, /*burst=*/4096, QosTokenBucket::Mode::kShape);
  DataplaneOp op{DataplaneOp::Kind::kPostSend, 1, 0, nic::Opcode::kSend, 4096, 1};
  // First op drains the burst; tokens start empty so expect initial pacing
  // then steady-state delay of size/rate.
  PolicyVerdict v1 = qos.on_op(op, sim::ms(1));  // 1 ms of refill at 1 GB/s = 1 MB >> burst
  EXPECT_TRUE(v1.allow);
  EXPECT_EQ(v1.pace_delay, 0) << "burst credit covers the first message";
  PolicyVerdict v2 = qos.on_op(op, sim::ms(1));
  EXPECT_TRUE(v2.allow);
  // 4096 B at 1 GB/s = 4096 ns of pacing debt.
  EXPECT_NEAR(sim::to_ns(v2.pace_delay), 4096.0, 1.0);
}

TEST(QosTokenBucket, PolicingDeniesWithEagain) {
  QosTokenBucket qos(1e9, 4096, QosTokenBucket::Mode::kPolice);
  DataplaneOp op{DataplaneOp::Kind::kPostSend, 1, 0, nic::Opcode::kSend, 4096, 1};
  EXPECT_TRUE(qos.on_op(op, sim::ms(1)).allow);
  PolicyVerdict v = qos.on_op(op, sim::ms(1));
  EXPECT_FALSE(v.allow);
  EXPECT_EQ(v.error, -11);
}

TEST(QosTokenBucket, PerTenantRateOverride) {
  QosTokenBucket qos(1e9, 1 << 20, QosTokenBucket::Mode::kShape);
  qos.set_tenant_rate(7, 1e6);  // tenant 7 squeezed to 1 MB/s
  DataplaneOp big{DataplaneOp::Kind::kPostSend, 7, 0, nic::Opcode::kSend, 1 << 20, 1};
  (void)qos.on_op(big, sim::sec(2));  // drain tenant-7 burst
  PolicyVerdict v = qos.on_op(big, sim::sec(2));
  EXPECT_TRUE(v.allow);
  EXPECT_NEAR(sim::to_sec(v.pace_delay), 1.048, 0.01) << "1 MiB at 1 MB/s";
  // Other tenants unaffected.
  DataplaneOp other{DataplaneOp::Kind::kPostSend, 8, 0, nic::Opcode::kSend, 4096, 1};
  (void)qos.on_op(other, sim::sec(2));
  EXPECT_EQ(qos.on_op(other, sim::sec(2)).pace_delay, 0);
}

TEST(QosTokenBucket, RecvAndPollAreFree) {
  QosTokenBucket qos(1.0, 1, QosTokenBucket::Mode::kPolice);  // draconian
  DataplaneOp recv{DataplaneOp::Kind::kPostRecv, 1, 0, nic::Opcode::kSend, 1 << 20, 0};
  DataplaneOp poll{DataplaneOp::Kind::kPollCq, 1, 0, nic::Opcode::kSend, 0, 0};
  EXPECT_TRUE(qos.on_op(recv, 0).allow);
  EXPECT_TRUE(qos.on_op(poll, 0).allow);
}

TEST(SecurityAcl, RegisteredTenantsAreRestricted) {
  SecurityAcl acl;
  acl.register_tenant(1);
  acl.allow(1, 5);
  DataplaneOp to5{DataplaneOp::Kind::kPostSend, 1, 0, nic::Opcode::kSend, 64, 5};
  DataplaneOp to6{DataplaneOp::Kind::kPostSend, 1, 0, nic::Opcode::kSend, 64, 6};
  EXPECT_TRUE(acl.on_op(to5, 0).allow);
  EXPECT_FALSE(acl.on_op(to6, 0).allow);
  // Unknown tenants pass in non-strict mode, fail in strict mode.
  DataplaneOp other{DataplaneOp::Kind::kPostSend, 2, 0, nic::Opcode::kSend, 64, 6};
  EXPECT_TRUE(acl.on_op(other, 0).allow);
  acl.set_strict(true);
  EXPECT_FALSE(acl.on_op(other, 0).allow);
  // Revocation takes effect immediately — the OS-control headline feature.
  acl.revoke(1, 5);
  EXPECT_FALSE(acl.on_op(to5, 0).allow);
  EXPECT_EQ(acl.denied(), 3u);
}

TEST(MessageSizeQuota, CapsPerTenant) {
  MessageSizeQuota quota(1 << 20);
  quota.set_tenant_max(3, 4096);
  DataplaneOp big{DataplaneOp::Kind::kPostSend, 3, 0, nic::Opcode::kSend, 8192, 0};
  DataplaneOp ok{DataplaneOp::Kind::kPostSend, 3, 0, nic::Opcode::kSend, 4096, 0};
  DataplaneOp other{DataplaneOp::Kind::kPostSend, 4, 0, nic::Opcode::kSend, 8192, 0};
  EXPECT_FALSE(quota.on_op(big, 0).allow);
  EXPECT_EQ(quota.on_op(big, 0).error, -90);
  EXPECT_TRUE(quota.on_op(ok, 0).allow);
  EXPECT_TRUE(quota.on_op(other, 0).allow);
}

TEST(StatsCollector, CountsPerTenant) {
  StatsCollector stats;
  stats.on_op({DataplaneOp::Kind::kPostSend, 1, 0, nic::Opcode::kSend, 100, 0}, 0);
  stats.on_op({DataplaneOp::Kind::kPostSend, 1, 0, nic::Opcode::kSend, 200, 0}, 0);
  stats.on_op({DataplaneOp::Kind::kPostRecv, 1, 0, nic::Opcode::kSend, 0, 0}, 0);
  stats.on_op({DataplaneOp::Kind::kPollCq, 2, 0, nic::Opcode::kSend, 0, 0}, 0);
  EXPECT_EQ(stats.tenant(1).post_sends, 2u);
  EXPECT_EQ(stats.tenant(1).bytes, 300u);
  EXPECT_EQ(stats.tenant(1).post_recvs, 1u);
  EXPECT_EQ(stats.tenant(2).polls, 1u);
}

TEST(Kernel, ControlPlaneCreatesUsableObjects) {
  TwoHostFixture f;
  Core& core = f.host0->core(0);
  auto* cq = run_task(f.engine, f.host0->kernel().create_cq(core, 64));
  ASSERT_NE(cq, nullptr);
  auto pd = run_task(f.engine, f.host0->kernel().alloc_pd(core));
  auto* qp = run_task(f.engine,
                      f.host0->kernel().create_qp(
                          core, nic::QpConfig{nic::QpType::kRC, pd, cq, cq, 16, 16, 0}));
  ASSERT_NE(qp, nullptr);
  EXPECT_GT(f.engine.now(), sim::us(10)) << "control-plane ops must cost time";
  EXPECT_EQ(f.host0->kernel().syscall_count(), 3u);
}

TEST(Kernel, CordPostSendDeliversThroughPolicies) {
  TwoHostFixture f;
  auto& stats = static_cast<StatsCollector&>(
      f.host0->kernel().policies().install(std::make_unique<StatsCollector>()));

  run_task(f.engine, [](TwoHostFixture& f) -> sim::Task<> {
    verbs::Context c0(*f.host0, 0, {.mode = verbs::DataplaneMode::kCord, .tenant = 9});
    verbs::Context c1(*f.host1, 0, {.mode = verbs::DataplaneMode::kCord});
    RcEndpoints e = co_await cord::testing::connect_rc(c0, c1);
    std::vector<std::byte> src(256, std::byte{0x77}), dst(256);
    auto* smr = co_await c0.reg_mr(e.pd0, src.data(), src.size(), 0);
    auto* rmr = co_await c1.reg_mr(e.pd1, dst.data(), dst.size(), nic::kAccessLocalWrite);
    int rc = co_await c1.post_recv(*e.qp1, {1, {uptr(dst.data()), 256, rmr->lkey}});
    if (rc != 0) throw std::runtime_error("post_recv failed");
    rc = co_await c0.post_send(*e.qp0, {.wr_id = 2, .sge = {uptr(src.data()), 256, smr->lkey}});
    if (rc != 0) throw std::runtime_error("post_send failed");
    nic::Cqe wc = co_await c1.wait_one(*e.rcq1);
    if (wc.status != nic::WcStatus::kSuccess) throw std::runtime_error("bad status");
    if (dst[0] != std::byte{0x77}) throw std::runtime_error("payload corrupt");
  }(f));

  EXPECT_EQ(stats.tenant(9).post_sends, 1u);
  EXPECT_EQ(stats.tenant(9).bytes, 256u);
}

TEST(Kernel, PolicyDenialReturnsErrorToApplication) {
  TwoHostFixture f;
  auto& acl = static_cast<SecurityAcl&>(
      f.host0->kernel().policies().install(std::make_unique<SecurityAcl>()));
  acl.register_tenant(5);  // tenant 5 has an empty allow-list

  int send_rc = 0;
  run_task(f.engine, [](TwoHostFixture& f, int& send_rc) -> sim::Task<> {
    verbs::Context c0(*f.host0, 0, {.mode = verbs::DataplaneMode::kCord, .tenant = 5});
    verbs::Context c1(*f.host1, 0, {.mode = verbs::DataplaneMode::kCord});
    RcEndpoints e = co_await cord::testing::connect_rc(c0, c1);
    std::vector<std::byte> src(64);
    auto* smr = co_await c0.reg_mr(e.pd0, src.data(), src.size(), 0);
    send_rc = co_await c0.post_send(
        *e.qp0, {.wr_id = 1, .sge = {uptr(src.data()), 64, smr->lkey}});
  }(f, send_rc));
  EXPECT_EQ(send_rc, -1) << "EPERM must reach the application";
}

TEST(Kernel, WaitCqEventWakesViaInterrupt) {
  TwoHostFixture f;
  run_task(f.engine, [](TwoHostFixture& f) -> sim::Task<> {
    verbs::Context c0(*f.host0, 0, {});
    verbs::Context c1(*f.host1, 0, {});
    RcEndpoints e = co_await cord::testing::connect_rc(c0, c1);
    std::vector<std::byte> src(64, std::byte{1}), dst(64);
    auto* rmr = co_await c1.reg_mr(e.pd1, dst.data(), dst.size(), nic::kAccessLocalWrite);
    (void)co_await c1.post_recv(*e.qp1, {1, {uptr(dst.data()), 64, rmr->lkey}});
    // Receiver sleeps; sender posts 50 us later.
    f.engine.call_at(f.engine.now() + sim::us(50), [&f, &e, &src] {
      f.engine.spawn([](TwoHostFixture& f, RcEndpoints& e,
                        std::vector<std::byte>& src) -> sim::Task<> {
        verbs::Context cs(*f.host0, 1, {});
        (void)co_await cs.post_send(
            *e.qp0, {.sge = {uptr(src.data()), 64, 0}, .inline_data = true});
      }(f, e, src));
    });
    nic::Cqe wc = co_await c1.wait_one_event(*e.rcq1);
    if (wc.status != nic::WcStatus::kSuccess) throw std::runtime_error("bad wc");
  }(f));
  EXPECT_GE(f.host1->kernel().interrupt_count(), 1u)
      << "the event path must ride an interrupt";
}

TEST(Kernel, RevokeQpFlushesApplicationWork) {
  TwoHostFixture f;
  run_task(f.engine, [](TwoHostFixture& f) -> sim::Task<> {
    verbs::Context c0(*f.host0, 0, {});
    verbs::Context c1(*f.host1, 0, {});
    RcEndpoints e = co_await cord::testing::connect_rc(c0, c1);
    std::vector<std::byte> dst(64);
    auto* rmr = co_await c1.reg_mr(e.pd1, dst.data(), dst.size(), nic::kAccessLocalWrite);
    (void)co_await c1.post_recv(*e.qp1, {1, {uptr(dst.data()), 64, rmr->lkey}});
    // The OS yanks the QP out from under the application.
    f.host1->kernel().revoke_qp(*e.qp1);
    nic::Cqe wc = co_await c1.wait_one(*e.rcq1);
    if (wc.status != nic::WcStatus::kWorkRequestFlushed)
      throw std::runtime_error("expected flush");
  }(f));
}

}  // namespace
}  // namespace cord::os
