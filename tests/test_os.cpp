// Unit tests for the OS layer: CPU/DVFS model, syscall cost model,
// the policy framework and the concrete CoRD policies, kernel control
// plane, the CoRD data-plane syscalls, and interrupt-driven completions.
#include <gtest/gtest.h>

#include "os/policies.hpp"
#include "test_util.hpp"

namespace cord::os {
namespace {

using cord::testing::RcEndpoints;
using cord::testing::TwoHostFixture;
using cord::testing::run_task;
using cord::testing::uptr;

TEST(CpuModel, MemcpyMatchesPaperCalibration) {
  sim::Engine e;
  Core core(e, CpuModel{}, 1);
  // The paper: removing zero-copy adds up to 140 us/MiB.
  const sim::Time t = core.memcpy_time(1 << 20);
  EXPECT_NEAR(sim::to_us(t), 140.0, 1.0);
}

TEST(CpuModel, SyscallCostRespectsKptiAndVirtualization) {
  sim::Engine e;
  Core plain(e, CpuModel{}, 1);
  CpuModel kpti_model;
  kpti_model.kpti = true;
  Core kpti(e, kpti_model, 1);
  CpuModel virt_model;
  virt_model.virt_overhead = 0.6;
  Core virt(e, virt_model, 1);
  const sim::Time base = plain.syscall_cost();
  EXPECT_EQ(base, sim::ns(180));
  EXPECT_EQ(kpti.syscall_cost(), 3 * base);
  EXPECT_NEAR(static_cast<double>(virt.syscall_cost()),
              1.6 * static_cast<double>(base), 1.0);
}

TEST(CpuModel, SyscallJitterIsDeterministicPerSeed) {
  sim::Engine e;
  CpuModel m;
  m.syscall_jitter = 0.3;
  Core a(e, m, 42), b(e, m, 42), c(e, m, 43);
  EXPECT_EQ(a.syscall_cost(), b.syscall_cost());
  // Different seeds should (overwhelmingly) differ.
  bool any_diff = false;
  for (int i = 0; i < 8; ++i) any_diff |= (a.syscall_cost() != c.syscall_cost());
  EXPECT_TRUE(any_diff);
}

TEST(Dvfs, SpinLoadDegradesFrequencyAndRecovers) {
  sim::Engine e;
  CpuModel m;
  m.turbo_enabled = true;
  Core core(e, m, 1);
  EXPECT_DOUBLE_EQ(core.frequency_ghz(), m.turbo_ghz) << "idle core boosts";
  // Spin hard for several DVFS windows.
  core.charge(sim::us(500), Work::kSpin);
  EXPECT_NEAR(core.frequency_ghz(), m.base_ghz, 0.01)
      << "sustained spinning drops to base clock";
  // Compute/kernel time cools it back down.
  core.charge(sim::us(500), Work::kCompute);
  EXPECT_NEAR(core.frequency_ghz(), m.turbo_ghz, 0.01);
}

TEST(Dvfs, DisabledTurboPinsBaseClock) {
  sim::Engine e;
  Core core(e, CpuModel{}, 1);  // turbo_enabled = false
  EXPECT_DOUBLE_EQ(core.frequency_ghz(), 3.3);
  core.charge(sim::us(500), Work::kSpin);
  EXPECT_DOUBLE_EQ(core.frequency_ghz(), 3.3);
}

TEST(Dvfs, WorkAccountingPerKind) {
  sim::Engine e;
  Core core(e, CpuModel{}, 1);
  run_task(e, [](Core& c) -> sim::Task<> {
    co_await c.work(sim::us(3), Work::kCompute);
    co_await c.work(sim::us(2), Work::kSpin);
    co_await c.work(sim::us(1), Work::kKernel);
  }(core));
  EXPECT_EQ(core.time_compute(), sim::us(3));
  EXPECT_EQ(core.time_spin(), sim::us(2));
  EXPECT_EQ(core.time_kernel(), sim::us(1));
  EXPECT_EQ(e.now(), sim::us(6));
}

TEST(PolicyChain, CostsAccumulateAndDenialShortCircuits) {
  struct Fixed final : Policy {
    bool allow;
    explicit Fixed(bool a) : allow(a) {}
    std::string_view name() const override { return "fixed"; }
    PolicyVerdict on_op(const DataplaneOp&, sim::Time) override {
      ++calls;
      return {.allow = allow, .error = -1, .cpu_cost = sim::ns(10)};
    }
    int calls = 0;
  };
  PolicyChain chain;
  auto& p1 = static_cast<Fixed&>(chain.install(std::make_unique<Fixed>(true)));
  auto& p2 = static_cast<Fixed&>(chain.install(std::make_unique<Fixed>(false)));
  auto& p3 = static_cast<Fixed&>(chain.install(std::make_unique<Fixed>(true)));
  PolicyVerdict v = chain.evaluate(DataplaneOp{}, 0);
  EXPECT_FALSE(v.allow);
  EXPECT_EQ(v.cpu_cost, sim::ns(20)) << "only evaluated policies bill cost";
  EXPECT_EQ(p1.calls, 1);
  EXPECT_EQ(p2.calls, 1);
  EXPECT_EQ(p3.calls, 0) << "denial short-circuits";
  EXPECT_TRUE(chain.remove("fixed"));
  EXPECT_EQ(chain.size(), 2u);
}

TEST(QosTokenBucket, ShapingDelaysOverRateTraffic) {
  QosTokenBucket qos(/*bytes_per_sec=*/1e9, /*burst=*/4096, QosTokenBucket::Mode::kShape);
  DataplaneOp op{DataplaneOp::Kind::kPostSend, 1, 0, nic::Opcode::kSend, 4096, 1};
  // First op drains the burst; tokens start empty so expect initial pacing
  // then steady-state delay of size/rate.
  PolicyVerdict v1 = qos.on_op(op, sim::ms(1));  // 1 ms of refill at 1 GB/s = 1 MB >> burst
  EXPECT_TRUE(v1.allow);
  EXPECT_EQ(v1.pace_delay, 0) << "burst credit covers the first message";
  PolicyVerdict v2 = qos.on_op(op, sim::ms(1));
  EXPECT_TRUE(v2.allow);
  // 4096 B at 1 GB/s = 4096 ns of pacing debt.
  EXPECT_NEAR(sim::to_ns(v2.pace_delay), 4096.0, 1.0);
}

TEST(QosTokenBucket, PolicingDeniesWithEagain) {
  QosTokenBucket qos(1e9, 4096, QosTokenBucket::Mode::kPolice);
  DataplaneOp op{DataplaneOp::Kind::kPostSend, 1, 0, nic::Opcode::kSend, 4096, 1};
  EXPECT_TRUE(qos.on_op(op, sim::ms(1)).allow);
  PolicyVerdict v = qos.on_op(op, sim::ms(1));
  EXPECT_FALSE(v.allow);
  EXPECT_EQ(v.error, -11);
}

TEST(QosTokenBucket, PerTenantRateOverride) {
  QosTokenBucket qos(1e9, 1 << 20, QosTokenBucket::Mode::kShape);
  qos.set_tenant_rate(7, 1e6);  // tenant 7 squeezed to 1 MB/s
  DataplaneOp big{DataplaneOp::Kind::kPostSend, 7, 0, nic::Opcode::kSend, 1 << 20, 1};
  (void)qos.on_op(big, sim::sec(2));  // drain tenant-7 burst
  PolicyVerdict v = qos.on_op(big, sim::sec(2));
  EXPECT_TRUE(v.allow);
  EXPECT_NEAR(sim::to_sec(v.pace_delay), 1.048, 0.01) << "1 MiB at 1 MB/s";
  // Other tenants unaffected.
  DataplaneOp other{DataplaneOp::Kind::kPostSend, 8, 0, nic::Opcode::kSend, 4096, 1};
  (void)qos.on_op(other, sim::sec(2));
  EXPECT_EQ(qos.on_op(other, sim::sec(2)).pace_delay, 0);
}

TEST(QosTokenBucket, RecvAndPollAreFree) {
  QosTokenBucket qos(1.0, 1, QosTokenBucket::Mode::kPolice);  // draconian
  DataplaneOp recv{DataplaneOp::Kind::kPostRecv, 1, 0, nic::Opcode::kSend, 1 << 20, 0};
  DataplaneOp poll{DataplaneOp::Kind::kPollCq, 1, 0, nic::Opcode::kSend, 0, 0};
  EXPECT_TRUE(qos.on_op(recv, 0).allow);
  EXPECT_TRUE(qos.on_op(poll, 0).allow);
}

TEST(SecurityAcl, RegisteredTenantsAreRestricted) {
  SecurityAcl acl;
  acl.register_tenant(1);
  acl.allow(1, 5);
  DataplaneOp to5{DataplaneOp::Kind::kPostSend, 1, 0, nic::Opcode::kSend, 64, 5};
  DataplaneOp to6{DataplaneOp::Kind::kPostSend, 1, 0, nic::Opcode::kSend, 64, 6};
  EXPECT_TRUE(acl.on_op(to5, 0).allow);
  EXPECT_FALSE(acl.on_op(to6, 0).allow);
  // Unknown tenants pass in non-strict mode, fail in strict mode.
  DataplaneOp other{DataplaneOp::Kind::kPostSend, 2, 0, nic::Opcode::kSend, 64, 6};
  EXPECT_TRUE(acl.on_op(other, 0).allow);
  acl.set_strict(true);
  EXPECT_FALSE(acl.on_op(other, 0).allow);
  // Revocation takes effect immediately — the OS-control headline feature.
  acl.revoke(1, 5);
  EXPECT_FALSE(acl.on_op(to5, 0).allow);
  EXPECT_EQ(acl.denied(), 3u);
}

TEST(MessageSizeQuota, CapsPerTenant) {
  MessageSizeQuota quota(1 << 20);
  quota.set_tenant_max(3, 4096);
  DataplaneOp big{DataplaneOp::Kind::kPostSend, 3, 0, nic::Opcode::kSend, 8192, 0};
  DataplaneOp ok{DataplaneOp::Kind::kPostSend, 3, 0, nic::Opcode::kSend, 4096, 0};
  DataplaneOp other{DataplaneOp::Kind::kPostSend, 4, 0, nic::Opcode::kSend, 8192, 0};
  EXPECT_FALSE(quota.on_op(big, 0).allow);
  EXPECT_EQ(quota.on_op(big, 0).error, -90);
  EXPECT_TRUE(quota.on_op(ok, 0).allow);
  EXPECT_TRUE(quota.on_op(other, 0).allow);
}

TEST(StatsCollector, CountsPerTenant) {
  StatsCollector stats;
  stats.on_op({DataplaneOp::Kind::kPostSend, 1, 0, nic::Opcode::kSend, 100, 0}, 0);
  stats.on_op({DataplaneOp::Kind::kPostSend, 1, 0, nic::Opcode::kSend, 200, 0}, 0);
  stats.on_op({DataplaneOp::Kind::kPostRecv, 1, 0, nic::Opcode::kSend, 0, 0}, 0);
  stats.on_op({DataplaneOp::Kind::kPollCq, 2, 0, nic::Opcode::kSend, 0, 0}, 0);
  EXPECT_EQ(stats.tenant(1).post_sends, 2u);
  EXPECT_EQ(stats.tenant(1).bytes, 300u);
  EXPECT_EQ(stats.tenant(1).post_recvs, 1u);
  EXPECT_EQ(stats.tenant(2).polls, 1u);
}

TEST(Kernel, ControlPlaneCreatesUsableObjects) {
  TwoHostFixture f;
  Core& core = f.host0->core(0);
  auto* cq = run_task(f.engine, f.host0->kernel().create_cq(core, 64));
  ASSERT_NE(cq, nullptr);
  auto pd = run_task(f.engine, f.host0->kernel().alloc_pd(core));
  auto* qp = run_task(f.engine,
                      f.host0->kernel().create_qp(
                          core, nic::QpConfig{nic::QpType::kRC, pd, cq, cq, 16, 16, 0}));
  ASSERT_NE(qp, nullptr);
  EXPECT_GT(f.engine.now(), sim::us(10)) << "control-plane ops must cost time";
  EXPECT_EQ(f.host0->kernel().syscall_count(), 3u);
}

TEST(Kernel, CordPostSendDeliversThroughPolicies) {
  TwoHostFixture f;
  auto& stats = static_cast<StatsCollector&>(
      f.host0->kernel().policies().install(std::make_unique<StatsCollector>()));

  run_task(f.engine, [](TwoHostFixture& f) -> sim::Task<> {
    verbs::Context c0(*f.host0, 0, {.mode = verbs::DataplaneMode::kCord, .tenant = 9});
    verbs::Context c1(*f.host1, 0, {.mode = verbs::DataplaneMode::kCord});
    RcEndpoints e = co_await cord::testing::connect_rc(c0, c1);
    std::vector<std::byte> src(256, std::byte{0x77}), dst(256);
    auto* smr = co_await c0.reg_mr(e.pd0, src.data(), src.size(), 0);
    auto* rmr = co_await c1.reg_mr(e.pd1, dst.data(), dst.size(), nic::kAccessLocalWrite);
    int rc = co_await c1.post_recv(*e.qp1, {1, {uptr(dst.data()), 256, rmr->lkey}});
    if (rc != 0) throw std::runtime_error("post_recv failed");
    rc = co_await c0.post_send(*e.qp0, {.wr_id = 2, .sge = {uptr(src.data()), 256, smr->lkey}});
    if (rc != 0) throw std::runtime_error("post_send failed");
    nic::Cqe wc = co_await c1.wait_one(*e.rcq1);
    if (wc.status != nic::WcStatus::kSuccess) throw std::runtime_error("bad status");
    if (dst[0] != std::byte{0x77}) throw std::runtime_error("payload corrupt");
  }(f));

  EXPECT_EQ(stats.tenant(9).post_sends, 1u);
  EXPECT_EQ(stats.tenant(9).bytes, 256u);
}

TEST(Kernel, PolicyDenialReturnsErrorToApplication) {
  TwoHostFixture f;
  auto& acl = static_cast<SecurityAcl&>(
      f.host0->kernel().policies().install(std::make_unique<SecurityAcl>()));
  acl.register_tenant(5);  // tenant 5 has an empty allow-list

  int send_rc = 0;
  run_task(f.engine, [](TwoHostFixture& f, int& send_rc) -> sim::Task<> {
    verbs::Context c0(*f.host0, 0, {.mode = verbs::DataplaneMode::kCord, .tenant = 5});
    verbs::Context c1(*f.host1, 0, {.mode = verbs::DataplaneMode::kCord});
    RcEndpoints e = co_await cord::testing::connect_rc(c0, c1);
    std::vector<std::byte> src(64);
    auto* smr = co_await c0.reg_mr(e.pd0, src.data(), src.size(), 0);
    send_rc = co_await c0.post_send(
        *e.qp0, {.wr_id = 1, .sge = {uptr(src.data()), 64, smr->lkey}});
  }(f, send_rc));
  EXPECT_EQ(send_rc, -1) << "EPERM must reach the application";
}

TEST(Kernel, WaitCqEventWakesViaInterrupt) {
  TwoHostFixture f;
  run_task(f.engine, [](TwoHostFixture& f) -> sim::Task<> {
    verbs::Context c0(*f.host0, 0, {});
    verbs::Context c1(*f.host1, 0, {});
    RcEndpoints e = co_await cord::testing::connect_rc(c0, c1);
    std::vector<std::byte> src(64, std::byte{1}), dst(64);
    auto* rmr = co_await c1.reg_mr(e.pd1, dst.data(), dst.size(), nic::kAccessLocalWrite);
    (void)co_await c1.post_recv(*e.qp1, {1, {uptr(dst.data()), 64, rmr->lkey}});
    // Receiver sleeps; sender posts 50 us later.
    f.engine.call_at(f.engine.now() + sim::us(50), [&f, &e, &src] {
      f.engine.spawn([](TwoHostFixture& f, RcEndpoints& e,
                        std::vector<std::byte>& src) -> sim::Task<> {
        verbs::Context cs(*f.host0, 1, {});
        (void)co_await cs.post_send(
            *e.qp0, {.sge = {uptr(src.data()), 64, 0}, .inline_data = true});
      }(f, e, src));
    });
    nic::Cqe wc = co_await c1.wait_one_event(*e.rcq1);
    if (wc.status != nic::WcStatus::kSuccess) throw std::runtime_error("bad wc");
  }(f));
  EXPECT_GE(f.host1->kernel().interrupt_count(), 1u)
      << "the event path must ride an interrupt";
}

TEST(Kernel, RevokeQpFlushesApplicationWork) {
  TwoHostFixture f;
  run_task(f.engine, [](TwoHostFixture& f) -> sim::Task<> {
    verbs::Context c0(*f.host0, 0, {});
    verbs::Context c1(*f.host1, 0, {});
    RcEndpoints e = co_await cord::testing::connect_rc(c0, c1);
    std::vector<std::byte> dst(64);
    auto* rmr = co_await c1.reg_mr(e.pd1, dst.data(), dst.size(), nic::kAccessLocalWrite);
    (void)co_await c1.post_recv(*e.qp1, {1, {uptr(dst.data()), 64, rmr->lkey}});
    // The OS yanks the QP out from under the application.
    f.host1->kernel().revoke_qp(*e.qp1);
    nic::Cqe wc = co_await c1.wait_one(*e.rcq1);
    if (wc.status != nic::WcStatus::kWorkRequestFlushed)
      throw std::runtime_error("expected flush");
  }(f));
}

// --- Policy-chain bugfix regressions and the isolation quotas -----------

TEST(QosTokenBucket, FreshBucketStartsFull) {
  // Regression: an unprimed bucket used to start at zero tokens, so a
  // tenant first seen at t=0 (zero elapsed time to refill) had its very
  // first op denied in police mode under zero contention.
  QosTokenBucket qos(1e9, 4096, QosTokenBucket::Mode::kPolice);
  DataplaneOp op{DataplaneOp::Kind::kPostSend, 1, 0, nic::Opcode::kSend, 4096, 1};
  EXPECT_TRUE(qos.on_op(op, 0).allow) << "burst credit must cover the first op";
  EXPECT_FALSE(qos.on_op(op, 0).allow) << "burst is spent, no time has passed";
}

TEST(QosTokenBucket, MidDebtRateChangeRepricesExistingDebt) {
  QosTokenBucket qos(1e9, 4096, QosTokenBucket::Mode::kShape);
  DataplaneOp op{DataplaneOp::Kind::kPostSend, 2, 0, nic::Opcode::kSend, 4096, 1};
  EXPECT_EQ(qos.on_op(op, 0).pace_delay, 0) << "burst covers the first op";
  EXPECT_NEAR(sim::to_ns(qos.on_op(op, 0).pace_delay), 4096.0, 1.0)
      << "4096 B of debt at 1 GB/s";
  // The operator squeezes the tenant mid-debt: the outstanding debt (and
  // all new debt) drains at the new rate from the next op on.
  qos.set_tenant_rate(2, 1e6);
  EXPECT_NEAR(sim::to_ms(qos.on_op(op, 0).pace_delay), 8.192, 0.01)
      << "8192 B of debt at 1 MB/s";
  qos.set_tenant_rate(2, 0);  // restore the default
  EXPECT_NEAR(sim::to_ns(qos.on_op(op, 0).pace_delay), 12288.0, 1.0);
}

TEST(MessageSizeQuota, ZeroCapBlocksPayloadsButNotZeroLength) {
  // A zero cap must read as "no payload allowed", not "uncapped": the
  // comparison is strictly-greater, so only zero-length ops pass.
  MessageSizeQuota quota(1 << 20);
  quota.set_tenant_max(3, 0);
  DataplaneOp one{DataplaneOp::Kind::kPostSend, 3, 0, nic::Opcode::kSend, 1, 0};
  DataplaneOp zero{DataplaneOp::Kind::kPostSend, 3, 0, nic::Opcode::kSend, 0, 0};
  EXPECT_FALSE(quota.on_op(one, 0).allow);
  EXPECT_TRUE(quota.on_op(zero, 0).allow);
}

TEST(SecurityAcl, RevokeIsAuthoritativeForUnknownTenants) {
  // Regression: revoking a never-registered tenant used to be a no-op
  // (erase of an absent entry, tenant still unknown and so unrestricted).
  // Revocation must make the allow-list authoritative for the tenant.
  SecurityAcl acl;
  DataplaneOp to5{DataplaneOp::Kind::kPostSend, 2, 0, nic::Opcode::kSend, 64, 5};
  DataplaneOp to6{DataplaneOp::Kind::kPostSend, 2, 0, nic::Opcode::kSend, 64, 6};
  EXPECT_TRUE(acl.on_op(to5, 0).allow) << "unknown tenants are unrestricted";
  acl.revoke(2, 5);
  EXPECT_FALSE(acl.on_op(to5, 0).allow);
  EXPECT_FALSE(acl.on_op(to6, 0).allow) << "the (empty) list now governs";
}

TEST(SecurityAcl, GatesOneSidedReadsAndAtomics) {
  // RDMA reads and atomics reach the chain as kPostSend with their
  // opcode: the ACL gates them like any send — the control a bypassed
  // deployment fundamentally lacks once a QP is connected.
  SecurityAcl acl;
  acl.register_tenant(4);
  acl.allow(4, 5);
  DataplaneOp read{DataplaneOp::Kind::kPostSend, 4, 0, nic::Opcode::kRdmaRead, 64, 6};
  DataplaneOp atomic{DataplaneOp::Kind::kPostSend, 4, 0, nic::Opcode::kFetchAdd, 8, 5};
  EXPECT_FALSE(acl.on_op(read, 0).allow);
  EXPECT_TRUE(acl.on_op(atomic, 0).allow);
}

TEST(OpRateQuota, LimitsOnlyMaskedKindsPerTenant) {
  OpRateQuota quota(/*ops_per_sec=*/1e6, /*burst=*/2,
                    OpRateQuota::kind_bit(DataplaneOp::Kind::kPostSend) |
                        OpRateQuota::kind_bit(DataplaneOp::Kind::kPollCq));
  DataplaneOp send{DataplaneOp::Kind::kPostSend, 1, 0, nic::Opcode::kSend, 64, 0};
  DataplaneOp recv{DataplaneOp::Kind::kPostRecv, 1, 0, nic::Opcode::kSend, 0, 0};
  EXPECT_TRUE(quota.on_op(send, 0).allow);
  EXPECT_TRUE(quota.on_op(send, 0).allow);
  PolicyVerdict v = quota.on_op(send, 0);
  EXPECT_FALSE(v.allow) << "burst of 2 spent at t=0";
  EXPECT_EQ(v.error, -11);
  EXPECT_TRUE(quota.on_op(recv, 0).allow) << "unmasked kinds pass untouched";
  // One token refills after 1 us at 1M ops/s.
  EXPECT_TRUE(quota.on_op(send, sim::us(1)).allow);
  EXPECT_EQ(quota.denied(), 1u);
  // Other tenants have their own bucket.
  DataplaneOp other{DataplaneOp::Kind::kPostSend, 2, 0, nic::Opcode::kSend, 64, 0};
  EXPECT_TRUE(quota.on_op(other, sim::us(1)).allow);
}

TEST(OpRateQuota, PerTenantRateOverride) {
  OpRateQuota quota(1e6, 1, OpRateQuota::kind_bit(DataplaneOp::Kind::kPostSend));
  quota.set_tenant_rate(7, 1.0);  // one op per second
  DataplaneOp op{DataplaneOp::Kind::kPostSend, 7, 0, nic::Opcode::kSend, 64, 0};
  EXPECT_TRUE(quota.on_op(op, 0).allow);
  EXPECT_FALSE(quota.on_op(op, sim::ms(500)).allow) << "no token yet at 1 op/s";
  EXPECT_TRUE(quota.on_op(op, sim::sec(2)).allow);
}

TEST(RegistrationQuota, CapsLiveMrsAndPacesChurn) {
  RegistrationQuota quota(/*max_live_mrs=*/2, /*regs_per_sec=*/1e3, /*burst=*/8);
  DataplaneOp reg{DataplaneOp::Kind::kRegMr, 1, 0, nic::Opcode::kSend, 4096, 0};
  DataplaneOp dereg{DataplaneOp::Kind::kDeregMr, 1, 0, nic::Opcode::kSend, 0, 0};
  EXPECT_TRUE(quota.on_op(reg, 0).allow);
  EXPECT_TRUE(quota.on_op(reg, 0).allow);
  PolicyVerdict v = quota.on_op(reg, 0);
  EXPECT_FALSE(v.allow);
  EXPECT_EQ(v.error, -12) << "live cap reads as ENOMEM";
  EXPECT_EQ(quota.live(1), 2u);
  EXPECT_TRUE(quota.on_op(dereg, 0).allow);
  EXPECT_EQ(quota.live(1), 1u);
  EXPECT_TRUE(quota.on_op(reg, 0).allow) << "freed slot is reusable";
  EXPECT_EQ(quota.denied(), 1u);
}

TEST(RegistrationQuota, ChurnBeyondBurstIsEagain) {
  RegistrationQuota quota(/*max_live_mrs=*/100, /*regs_per_sec=*/1e3, /*burst=*/2);
  DataplaneOp reg{DataplaneOp::Kind::kRegMr, 1, 0, nic::Opcode::kSend, 4096, 0};
  DataplaneOp dereg{DataplaneOp::Kind::kDeregMr, 1, 0, nic::Opcode::kSend, 0, 0};
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(quota.on_op(reg, 0).allow);
    EXPECT_TRUE(quota.on_op(dereg, 0).allow);
  }
  PolicyVerdict v = quota.on_op(reg, 0);
  EXPECT_FALSE(v.allow) << "register/deregister churn drains the bucket";
  EXPECT_EQ(v.error, -11);
  EXPECT_TRUE(quota.on_op(reg, sim::ms(1)).allow) << "1 ms refills a token";
}

TEST(StatsCollector, CountsRegistrations) {
  StatsCollector stats;
  stats.on_op({DataplaneOp::Kind::kRegMr, 1, 0, nic::Opcode::kSend, 4096, 0}, 0);
  stats.on_op({DataplaneOp::Kind::kRegMr, 1, 0, nic::Opcode::kSend, 4096, 0}, 0);
  stats.on_op({DataplaneOp::Kind::kDeregMr, 1, 0, nic::Opcode::kSend, 0, 0}, 0);
  EXPECT_EQ(stats.tenant(1).reg_mrs, 2u);
  EXPECT_EQ(stats.tenant(1).dereg_mrs, 1u);
}

TEST(Kernel, RegMrDenialReturnsNullToApplication) {
  TwoHostFixture f;
  auto& quota = static_cast<RegistrationQuota&>(
      f.host0->kernel().policies().install(
          std::make_unique<RegistrationQuota>(100, 1e6, 8)));
  quota.set_tenant_max_live(6, 1);

  const nic::MemoryRegion* first = nullptr;
  const nic::MemoryRegion* second = nullptr;
  run_task(f.engine, [](TwoHostFixture& f, const nic::MemoryRegion*& first,
                        const nic::MemoryRegion*& second) -> sim::Task<> {
    verbs::Context c0(*f.host0, 0, {.mode = verbs::DataplaneMode::kCord, .tenant = 6});
    auto pd = co_await c0.alloc_pd();
    std::vector<std::byte> buf(4096);
    first = co_await c0.reg_mr(pd, buf.data(), buf.size(), 0);
    second = co_await c0.reg_mr(pd, buf.data(), buf.size(), 0);
    if (first != nullptr) (void)co_await c0.dereg_mr(first->lkey);
  }(f, first, second));
  EXPECT_NE(first, nullptr);
  EXPECT_EQ(second, nullptr) << "quota denial must surface as a null MR";
  EXPECT_EQ(quota.denied(), 1u);
}

TEST(Kernel, DeniedPollLeavesCompletionsQueued) {
  TwoHostFixture f;
  // host1 polls through its kernel; one poll allowed, then a near-zero
  // refill rate denies the rest.
  f.host1->kernel().policies().install(std::make_unique<OpRateQuota>(
      1e-9, 1, OpRateQuota::kind_bit(DataplaneOp::Kind::kPollCq)));

  run_task(f.engine, [](TwoHostFixture& f) -> sim::Task<> {
    verbs::Context c0(*f.host0, 0, {});
    verbs::Context c1(*f.host1, 0, {.mode = verbs::DataplaneMode::kCord, .tenant = 2});
    RcEndpoints e = co_await cord::testing::connect_rc(c0, c1);
    std::vector<std::byte> src(64, std::byte{1}), dst(128);
    auto* rmr = co_await c1.reg_mr(e.pd1, dst.data(), dst.size(),
                                   nic::kAccessLocalWrite);
    for (int i = 0; i < 2; ++i) {
      int rc = co_await c1.post_recv(
          *e.qp1, {static_cast<std::uint64_t>(i),
                   {uptr(dst.data()) + 64 * i, 64, rmr->lkey}});
      if (rc != 0) throw std::runtime_error("post_recv failed");
      rc = co_await c0.post_send(
          *e.qp0, {.sge = {uptr(src.data()), 64, 0}, .inline_data = true});
      if (rc != 0) throw std::runtime_error("post_send failed");
    }
    co_await f.engine.delay(sim::us(100));  // let both sends complete
    if (e.rcq1->depth() != 2) throw std::runtime_error("expected 2 CQEs");
    nic::Cqe wc[2];
    std::size_t n = co_await c1.poll_cq(*e.rcq1, std::span<nic::Cqe>{wc, 1});
    if (n != 1) throw std::runtime_error("first poll should harvest");
    n = co_await c1.poll_cq(*e.rcq1, std::span<nic::Cqe>{wc, 2});
    if (n != 0) throw std::runtime_error("denied poll must return 0");
    if (e.rcq1->depth() != 1)
      throw std::runtime_error("denied poll must leave the CQE queued");
  }(f));
}

// --- Verdict epoch, fast-path cache, and batched-submission plumbing ----

TEST(PolicyChain, EveryMutatorBumpsTheVerdictEpoch) {
  PolicyChain chain;
  std::uint64_t e = chain.epoch();
  EXPECT_EQ(e, 1u) << "epoch 0 is reserved for 'never valid'";
  auto bumped = [&](const char* what) {
    const bool ok = chain.epoch() > e;
    e = chain.epoch();
    EXPECT_TRUE(ok) << what << " must invalidate cached verdicts";
  };
  auto& qos = static_cast<QosTokenBucket&>(chain.install(
      std::make_unique<QosTokenBucket>(1e9, 4096, QosTokenBucket::Mode::kShape)));
  bumped("install");
  qos.set_tenant_rate(1, 1e6);
  bumped("QosTokenBucket::set_tenant_rate");
  auto& acl =
      static_cast<SecurityAcl&>(chain.install(std::make_unique<SecurityAcl>()));
  bumped("install");
  acl.register_tenant(1);
  bumped("SecurityAcl::register_tenant");
  acl.allow(1, 5);
  bumped("SecurityAcl::allow");
  acl.set_strict(true);
  bumped("SecurityAcl::set_strict");
  acl.revoke(1, 5);
  bumped("SecurityAcl::revoke");
  auto& size = static_cast<MessageSizeQuota&>(
      chain.install(std::make_unique<MessageSizeQuota>(1 << 20)));
  bumped("install");
  size.set_tenant_max(1, 4096);
  bumped("MessageSizeQuota::set_tenant_max");
  auto& ops = static_cast<OpRateQuota&>(chain.install(std::make_unique<OpRateQuota>(
      1e6, 8, OpRateQuota::kind_bit(DataplaneOp::Kind::kPostSend))));
  bumped("install");
  ops.set_tenant_rate(1, 10.0);
  bumped("OpRateQuota::set_tenant_rate");
  auto& reg = static_cast<RegistrationQuota&>(
      chain.install(std::make_unique<RegistrationQuota>(100, 1e3, 8)));
  bumped("install");
  reg.set_tenant_max_live(1, 2);
  bumped("RegistrationQuota::set_tenant_max_live");
  EXPECT_TRUE(chain.remove("qos-token-bucket"));
  bumped("remove");
  // A policy outside any chain can be mutated without a chain to notify.
  QosTokenBucket orphan(1e9, 4096, QosTokenBucket::Mode::kShape);
  orphan.set_tenant_rate(1, 1.0);  // must not crash
}

TEST(VerdictCache, HitRequiresKeyEpochAndDestination) {
  VerdictCache cache(64);
  EXPECT_EQ(cache.capacity(), 64u);
  EXPECT_FALSE(cache.lookup(1, 7, DataplaneOp::Kind::kPostSend, 3, 1));
  cache.insert(1, 7, DataplaneOp::Kind::kPostSend, 3, 1);
  EXPECT_TRUE(cache.lookup(1, 7, DataplaneOp::Kind::kPostSend, 3, 1));
  EXPECT_FALSE(cache.lookup(1, 7, DataplaneOp::Kind::kPostSend, 3, 2))
      << "an epoch bump must invalidate the entry";
  EXPECT_FALSE(cache.lookup(1, 7, DataplaneOp::Kind::kPostSend, 4, 1))
      << "a different destination is a different verdict";
  EXPECT_FALSE(cache.lookup(1, 8, DataplaneOp::Kind::kPostSend, 3, 1));
  EXPECT_FALSE(cache.lookup(1, 7, DataplaneOp::Kind::kPostRecv, 3, 1));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 5u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(PolicyChain, FastPathProbeDeclineLeavesNoSideEffects) {
  // The two-phase protocol: if a later policy declines the fast path, an
  // earlier token bucket must not have debited anything — the subsequent
  // full evaluation would otherwise double-charge the op.
  PolicyChain chain;
  chain.install(
      std::make_unique<QosTokenBucket>(1e9, 8192, QosTokenBucket::Mode::kPolice));
  auto& size = static_cast<MessageSizeQuota&>(
      chain.install(std::make_unique<MessageSizeQuota>(1 << 20)));
  size.set_tenant_max(1, 64);
  DataplaneOp ok{DataplaneOp::Kind::kPostSend, 1, 0, nic::Opcode::kSend, 64, 1};
  DataplaneOp big{DataplaneOp::Kind::kPostSend, 1, 0, nic::Opcode::kSend, 4096, 1};
  // Prime: full evaluation allows the small op (burst covers it).
  EXPECT_TRUE(chain.evaluate(ok, 0).allow);
  // The oversized op declines in the size quota's probe; the bucket's
  // balance must be untouched, so the small op's fast path still admits
  // exactly (8192 - 64) more bytes.
  PolicyVerdict v;
  EXPECT_FALSE(chain.evaluate_fast(big, 0, v));
  int admitted = 0;
  while (chain.evaluate_fast(ok, 0, v)) ++admitted;
  EXPECT_EQ(admitted, (8192 - 64) / 64)
      << "a declined probe must not have debited the bucket";
}

TEST(Kernel, EmptyFlushIsAStrictNoOp) {
  TwoHostFixture f;
  auto& stats = static_cast<StatsCollector&>(
      f.host0->kernel().policies().install(std::make_unique<StatsCollector>()));
  run_task(f.engine, [](TwoHostFixture& f) -> sim::Task<> {
    verbs::Context c0(*f.host0, 0,
                      {.mode = verbs::DataplaneMode::kCord, .tx_batch = 8,
                       .tenant = 3});
    verbs::Context c1(*f.host1, 0, {.mode = verbs::DataplaneMode::kCord});
    RcEndpoints e = co_await cord::testing::connect_rc(c0, c1);
    const std::uint64_t before = f.host0->kernel().syscall_count();
    const sim::Time t0 = f.engine.now();
    int rc = co_await c0.flush(*e.qp0);       // nothing pending
    rc |= co_await c0.flush_all();            // still nothing
    if (rc != 0) throw std::runtime_error("empty flush must return 0");
    if (f.host0->kernel().syscall_count() != before)
      throw std::runtime_error("empty flush must not charge a syscall");
    if (f.engine.now() != t0)
      throw std::runtime_error("empty flush must consume no virtual time");
    if (c0.pending() != 0) throw std::runtime_error("nothing may pend");
  }(f));
  EXPECT_EQ(f.host0->kernel().batch_flushes(), 0u);
  EXPECT_EQ(stats.tenant(3).post_sends, 0u) << "no policy may have run";
}

TEST(Kernel, RevokeFlipsCachedBatchedVerdictToEperm) {
  TwoHostFixture f;
  auto& acl = static_cast<SecurityAcl&>(
      f.host0->kernel().policies().install(std::make_unique<SecurityAcl>()));
  acl.register_tenant(5);
  acl.allow(5, 1);  // host1 is node 1

  int rc1 = 0, rc2 = 0, rc3 = 0;
  // Buffers outlive the coroutine frame: the last flushed send's DMA/wire
  // events still read them while the engine drains.
  std::vector<std::byte> src(64), dst(1024);
  run_task(f.engine, [](TwoHostFixture& f, SecurityAcl& acl, int& rc1, int& rc2,
                        int& rc3, std::vector<std::byte>& src,
                        std::vector<std::byte>& dst) -> sim::Task<> {
    verbs::Context c0(*f.host0, 0,
                      {.mode = verbs::DataplaneMode::kCord, .tx_batch = 8,
                       .tenant = 5});
    verbs::Context c1(*f.host1, 0, {.mode = verbs::DataplaneMode::kCord});
    RcEndpoints e = co_await cord::testing::connect_rc(c0, c1);
    auto* smr = co_await c0.reg_mr(e.pd0, src.data(), src.size(), 0);
    auto* rmr =
        co_await c1.reg_mr(e.pd1, dst.data(), dst.size(), nic::kAccessLocalWrite);
    for (int i = 0; i < 8; ++i) {
      (void)co_await c1.post_recv(
          *e.qp1, {static_cast<std::uint64_t>(i),
                   {uptr(dst.data()) + 64 * i, 64, rmr->lkey}});
    }
    auto send = [&](int& rc) -> sim::Task<> {
      int prc = co_await c0.post_send(
          *e.qp0, {.wr_id = 1, .sge = {uptr(src.data()), 64, smr->lkey}});
      const int frc = co_await c0.flush(*e.qp0);
      rc = prc != 0 ? prc : frc;
    };
    co_await send(rc1);  // full chain allows; verdict cached
    co_await send(rc2);  // cache hit: fast path admits
    acl.revoke(5, 1);    // epoch bump — the cached allow must die
    co_await send(rc3);
  }(f, acl, rc1, rc2, rc3, src, dst));
  EXPECT_EQ(rc1, 0);
  EXPECT_EQ(rc2, 0);
  EXPECT_EQ(rc3, -1) << "EPERM must reach the batched submitter after revoke";
  EXPECT_GE(f.host0->kernel().verdict_cache().stats().hits, 1u);
  EXPECT_GE(f.host0->kernel().verdict_cache().stats().insertions, 1u);
}

TEST(Kernel, RateChangeFlipsCachedBatchedVerdict) {
  TwoHostFixture f;
  // Police at a near-zero refill rate with exactly one message of burst:
  // the first batched send is admitted (and cached), the second must be
  // denied by the *full* chain even though the cache would have admitted
  // it — the fast-path probe sees the empty bucket and declines.
  auto& qos = static_cast<QosTokenBucket&>(
      f.host0->kernel().policies().install(std::make_unique<QosTokenBucket>(
          1e-9, 64, QosTokenBucket::Mode::kPolice)));

  int rc1 = 0, rc2 = 0, rc3 = 0;
  // Buffers outlive the coroutine frame (see RevokeFlips... above).
  std::vector<std::byte> src(64), dst(1024);
  run_task(f.engine, [](TwoHostFixture& f, QosTokenBucket& qos, int& rc1,
                        int& rc2, int& rc3, std::vector<std::byte>& src,
                        std::vector<std::byte>& dst) -> sim::Task<> {
    verbs::Context c0(*f.host0, 0,
                      {.mode = verbs::DataplaneMode::kCord, .tx_batch = 8,
                       .tenant = 7});
    verbs::Context c1(*f.host1, 0, {.mode = verbs::DataplaneMode::kCord});
    RcEndpoints e = co_await cord::testing::connect_rc(c0, c1);
    auto* smr = co_await c0.reg_mr(e.pd0, src.data(), src.size(), 0);
    auto* rmr =
        co_await c1.reg_mr(e.pd1, dst.data(), dst.size(), nic::kAccessLocalWrite);
    for (int i = 0; i < 8; ++i) {
      (void)co_await c1.post_recv(
          *e.qp1, {static_cast<std::uint64_t>(i),
                   {uptr(dst.data()) + 64 * i, 64, rmr->lkey}});
    }
    auto send = [&](int& rc) -> sim::Task<> {
      int prc = co_await c0.post_send(
          *e.qp0, {.wr_id = 1, .sge = {uptr(src.data()), 64, smr->lkey}});
      const int frc = co_await c0.flush(*e.qp0);
      rc = prc != 0 ? prc : frc;
    };
    co_await send(rc1);  // burst covers it; verdict cached
    co_await send(rc2);  // bucket empty: fast path declines, full chain denies
    // The operator un-throttles the tenant; after a refill interval the
    // (epoch-bumped) chain admits again.
    qos.set_tenant_rate(7, 1e12);
    co_await f.engine.delay(sim::us(1));
    co_await send(rc3);
  }(f, qos, rc1, rc2, rc3, src, dst));
  EXPECT_EQ(rc1, 0);
  EXPECT_EQ(rc2, -11) << "EAGAIN via the full chain despite the cached allow";
  EXPECT_EQ(rc3, 0) << "set_tenant_rate must invalidate and re-admit";
}

TEST(Kernel, RegistrationQuotaChangeBumpsEpoch) {
  TwoHostFixture f;
  auto& quota = static_cast<RegistrationQuota&>(
      f.host0->kernel().policies().install(
          std::make_unique<RegistrationQuota>(100, 1e6, 8)));
  const std::uint64_t e = f.host0->kernel().policies().epoch();
  quota.set_tenant_max_live(6, 1);
  EXPECT_GT(f.host0->kernel().policies().epoch(), e)
      << "an MR-quota override must invalidate cached verdicts";
}

}  // namespace
}  // namespace cord::os
