// Tests for cord::trace: record layout, tracer bounds, metrics registry,
// log histogram, trace determinism, the golden span chain of one RC send
// in CoRD mode, Chrome-trace export, and the kernel's proc_read surface.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "perftest/perftest.hpp"
#include "sim/stats.hpp"
#include "trace/export.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace {

using namespace cord;

// ---------------------------------------------------------------------------
// Record / Tracer basics
// ---------------------------------------------------------------------------

TEST(TraceRecord, IsFixedSizePod) {
  static_assert(sizeof(trace::Record) == 40);
  static_assert(std::is_trivially_copyable_v<trace::Record>);
  SUCCEED();
}

TEST(Tracer, DisabledRecordsNothingThroughEngine) {
  sim::Engine engine;
  trace::Tracer tracer(engine);
  EXPECT_EQ(engine.tracer(), nullptr);  // never attached
  tracer.set_enabled(true);
  EXPECT_EQ(engine.tracer(), &tracer);
  tracer.set_enabled(false);
  EXPECT_EQ(engine.tracer(), nullptr);
}

TEST(Tracer, BoundedWithDropCounter) {
  sim::Engine engine;
  trace::Tracer tracer(engine, /*max_records=*/10);
  tracer.set_enabled(true);
  for (int i = 0; i < 25; ++i) {
    tracer.record(trace::Point::kWqePost, tracer.new_span(), 0x100, 1, 0);
  }
  EXPECT_EQ(tracer.size(), 10u);
  EXPECT_EQ(tracer.dropped(), 15u);
  tracer.clear();
  EXPECT_TRUE(tracer.empty());
  EXPECT_EQ(tracer.dropped(), 0u);
  tracer.record(trace::Point::kWqePost, 1, 0x100, 1, 0);
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(Tracer, SlabGrowthPreservesOrder) {
  sim::Engine engine;
  trace::Tracer tracer(engine, 1u << 16);
  tracer.set_enabled(true);
  const std::size_t n = 5000;  // spans multiple 2048-record slabs
  for (std::size_t i = 0; i < n; ++i) {
    tracer.record(trace::Point::kWireTx, static_cast<std::uint32_t>(i + 1),
                  0x100, 0, 0, /*arg=*/i);
  }
  ASSERT_EQ(tracer.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(tracer[i].arg, i);
    EXPECT_EQ(tracer[i].span, i + 1);
  }
}

TEST(Tracer, DetachesFromEngineOnDestruction) {
  sim::Engine engine;
  {
    trace::Tracer tracer(engine);
    tracer.set_enabled(true);
    ASSERT_EQ(engine.tracer(), &tracer);
  }
  EXPECT_EQ(engine.tracer(), nullptr);
}

// ---------------------------------------------------------------------------
// LogHistogram
// ---------------------------------------------------------------------------

TEST(LogHistogram, CountsAndPercentiles) {
  sim::LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(99.0), 0.0);
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<std::uint64_t>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.mean(), 500.5, 0.01);
  // Log-bucketed: percentiles are octave-accurate, not exact.
  EXPECT_GT(h.percentile(50.0), 250.0);
  EXPECT_LT(h.percentile(50.0), 1000.0);
  EXPECT_LE(h.percentile(99.0), 1000.0);
  EXPECT_GE(h.percentile(99.0), h.percentile(50.0));
}

TEST(LogHistogram, FixedMemoryAcrossWideRange) {
  sim::LogHistogram h;
  h.add(0);
  h.add(1);
  h.add(std::uint64_t{1} << 63);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max(), std::uint64_t{1} << 63);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CounterGaugeHistogramRoundTrip) {
  trace::MetricsRegistry m;
  m.counter("ops", 1).add(3);
  m.counter("ops", 1).add();          // same entry
  m.counter("ops", 2).add(10);
  m.gauge("depth").set(-4);
  m.histogram("lat", 1).add(100);
  EXPECT_EQ(m.find_counter("ops", 1)->value, 4u);
  EXPECT_EQ(m.find_counter("ops", 2)->value, 10u);
  EXPECT_EQ(m.gauge_value("depth"), -4);
  EXPECT_EQ(m.find_histogram("lat", 1)->count(), 1u);
  EXPECT_EQ(m.find_counter("missing"), nullptr);
  EXPECT_EQ(m.find_counter("ops", 3), nullptr);
  // Kind mismatch is a programming error.
  EXPECT_THROW(m.gauge("ops", 1), std::logic_error);
}

TEST(MetricsRegistry, LabelsSortedAndCallbackGauge) {
  trace::MetricsRegistry m;
  m.counter("t.ops", 9).add();
  m.counter("t.ops", 2).add();
  m.counter("t.ops", 5).add();
  m.counter("t.ops").add();  // unlabelled entry excluded from labels()
  const auto labels = m.labels("t.ops");
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], 2u);
  EXPECT_EQ(labels[1], 5u);
  EXPECT_EQ(labels[2], 9u);

  std::int64_t live = 7;
  m.callback_gauge("live", [&live] { return live; });
  EXPECT_EQ(m.gauge_value("live"), 7);
  live = 42;
  EXPECT_EQ(m.gauge_value("live"), 42);
}

TEST(MetricsRegistry, TextAndCsvAreDeterministic) {
  trace::MetricsRegistry m;
  m.counter("b.ops", 2).add(5);
  m.counter("a.ops").add(1);
  m.histogram("lat", 1).add(64);
  const std::string t1 = m.text();
  const std::string t2 = m.text();
  EXPECT_EQ(t1, t2);
  // Sorted map order: "a.ops" line precedes "b.ops".
  EXPECT_LT(t1.find("a.ops"), t1.find("b.ops"));
  EXPECT_NE(t1.find("lat"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: trace capture via perftest
// ---------------------------------------------------------------------------

perftest::Params traced_params(verbs::DataplaneMode mode, int iters = 30) {
  perftest::Params p;
  p.op = perftest::TestOp::kSend;
  p.msg_size = 4096;
  p.iterations = iters;
  p.warmup = 5;
  p.allow_inline = false;  // non-inline: the chain includes kDmaFetch
  p.client = verbs::ContextOptions{.mode = mode};
  p.server = verbs::ContextOptions{.mode = mode};
  p.capture_trace = true;
  return p;
}

TEST(TraceCapture, DeterministicAcrossIdenticalRuns) {
  const auto cfg = core::system_l();
  const auto p = traced_params(verbs::DataplaneMode::kCord);
  auto r1 = perftest::run_latency(cfg, p);
  auto r2 = perftest::run_latency(cfg, p);
  ASSERT_FALSE(r1.trace.empty());
  ASSERT_EQ(r1.trace.size(), r2.trace.size());
  EXPECT_EQ(r1.trace_dropped, 0u);
  // Byte-identical streams: traces are diffable artifacts.
  EXPECT_EQ(std::memcmp(r1.trace.data(), r2.trace.data(),
                        r1.trace.size() * sizeof(trace::Record)),
            0);
}

TEST(TraceCapture, TracingAddsNoVirtualTime) {
  const auto cfg = core::system_l();
  auto p = traced_params(verbs::DataplaneMode::kCord);
  auto traced = perftest::run_latency(cfg, p);
  p.capture_trace = false;
  auto plain = perftest::run_latency(cfg, p);
  // The observer must not distort the measurement.
  EXPECT_DOUBLE_EQ(traced.avg_us, plain.avg_us);
  EXPECT_DOUBLE_EQ(traced.p99_us, plain.p99_us);
}

/// Golden span-chain test: one RC send in CoRD mode must produce the
/// paper's full latency breakdown, in causal order.
TEST(TraceCapture, GoldenSpanChainCordRcSend) {
  const auto cfg = core::system_l();
  const auto r =
      perftest::run_latency(cfg, traced_params(verbs::DataplaneMode::kCord, 5));
  ASSERT_FALSE(r.trace.empty());

  // Pick the first span that has a sender-side completion (a client data
  // send that ran to completion).
  std::uint32_t span = 0;
  for (const auto& rec : r.trace) {
    if (rec.point == trace::Point::kCompletion && rec.aux == 0 &&
        rec.span != 0) {
      span = rec.span;
      break;
    }
  }
  ASSERT_NE(span, 0u) << "no completed span found in trace";

  std::map<trace::Point, sim::Time> at;
  for (const auto& rec : r.trace) {
    if (rec.span == span && !at.contains(rec.point)) at[rec.point] = rec.t;
  }
  // The complete chain, user space -> kernel -> NIC -> wire -> CQE.
  for (trace::Point pt :
       {trace::Point::kVerbsPostSend, trace::Point::kSyscallEnter,
        trace::Point::kWqePost, trace::Point::kDoorbell,
        trace::Point::kWqeFetch, trace::Point::kDmaFetch,
        trace::Point::kWireTx, trace::Point::kDmaDeliver,
        trace::Point::kCompletion}) {
    ASSERT_TRUE(at.contains(pt)) << "span missing " << trace::to_string(pt);
  }
  EXPECT_LE(at[trace::Point::kVerbsPostSend], at[trace::Point::kSyscallEnter]);
  EXPECT_LE(at[trace::Point::kSyscallEnter], at[trace::Point::kWqePost]);
  EXPECT_LE(at[trace::Point::kWqePost], at[trace::Point::kDoorbell]);
  EXPECT_LE(at[trace::Point::kDoorbell], at[trace::Point::kWqeFetch]);
  EXPECT_LE(at[trace::Point::kWqeFetch], at[trace::Point::kDmaFetch]);
  EXPECT_LE(at[trace::Point::kDmaFetch], at[trace::Point::kWireTx]);
  EXPECT_LE(at[trace::Point::kWireTx], at[trace::Point::kDmaDeliver]);
  EXPECT_LE(at[trace::Point::kDmaDeliver], at[trace::Point::kCompletion]);
}

TEST(TraceCapture, BypassModeSkipsKernelPoints) {
  const auto cfg = core::system_l();
  const auto r =
      perftest::run_latency(cfg, traced_params(verbs::DataplaneMode::kBypass, 5));
  ASSERT_FALSE(r.trace.empty());
  bool saw_post = false;
  for (const auto& rec : r.trace) {
    EXPECT_NE(rec.point, trace::Point::kSyscallEnter);
    EXPECT_NE(rec.point, trace::Point::kSyscallExit);
    EXPECT_NE(rec.point, trace::Point::kPolicyEval);
    if (rec.point == trace::Point::kVerbsPostSend) saw_post = true;
  }
  EXPECT_TRUE(saw_post);  // user-space points still fire
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

/// Minimal structural JSON validation: balanced braces/brackets outside
/// strings, and the trace-event envelope with one object per record.
void validate_json_structure(const std::string& json, std::size_t records) {
  long depth_obj = 0, depth_arr = 0;
  bool in_string = false, escaped = false;
  std::size_t events = 0;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{':
        if (depth_obj == 1 && depth_arr == 1) ++events;
        ++depth_obj;
        break;
      case '}': --depth_obj; ASSERT_GE(depth_obj, 0); break;
      case '[': ++depth_arr; break;
      case ']': --depth_arr; ASSERT_GE(depth_arr, 0); break;
      default: break;
    }
  }
  EXPECT_EQ(depth_obj, 0);
  EXPECT_EQ(depth_arr, 0);
  EXPECT_FALSE(in_string);
  EXPECT_EQ(events, records);
}

TEST(ChromeTraceExport, ValidJsonWithOneEventPerRecord) {
  const auto cfg = core::system_l();
  const auto r =
      perftest::run_latency(cfg, traced_params(verbs::DataplaneMode::kCord, 5));
  ASSERT_FALSE(r.trace.empty());
  const std::string json = trace::chrome_trace_json(r.trace);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["), 0u);
  validate_json_structure(json, r.trace.size());
  // Spot-check vocabulary: slices and instants both present.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"wire-tx\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Exporter round-tripping: export -> reparse recovers the records exactly
// ---------------------------------------------------------------------------

TEST(PointNames, RoundTripEveryPoint) {
  for (std::uint8_t i = 0; i < static_cast<std::uint8_t>(trace::Point::kCount);
       ++i) {
    const auto p = static_cast<trace::Point>(i);
    EXPECT_EQ(trace::point_from_name(trace::to_string(p)), p);
  }
  EXPECT_EQ(trace::point_from_name("not-a-point"), trace::Point::kCount);
  EXPECT_EQ(trace::point_from_name(""), trace::Point::kCount);
}

TEST(ExportRoundTrip, CsvIsByteExact) {
  const auto cfg = core::system_l();
  const auto r =
      perftest::run_latency(cfg, traced_params(verbs::DataplaneMode::kCord, 5));
  ASSERT_FALSE(r.trace.empty());
  const std::string csv = trace::records_csv(r.trace);
  ASSERT_FALSE(csv.empty());
  const std::vector<trace::Record> parsed = trace::parse_records_csv(csv);
  ASSERT_EQ(parsed.size(), r.trace.size());
  // Field-exact: the 40-byte PODs memcmp equal...
  EXPECT_EQ(std::memcmp(parsed.data(), r.trace.data(),
                        parsed.size() * sizeof(trace::Record)),
            0);
  // ...and re-exporting reproduces the identical bytes.
  EXPECT_EQ(trace::records_csv(parsed), csv);
}

TEST(ExportRoundTrip, ChromeJsonIsByteExact) {
  const auto cfg = core::system_l();
  const auto r =
      perftest::run_latency(cfg, traced_params(verbs::DataplaneMode::kCord, 5));
  ASSERT_FALSE(r.trace.empty());
  const std::string json = trace::chrome_trace_json(r.trace);
  const std::vector<trace::Record> parsed = trace::parse_chrome_trace(json);
  ASSERT_EQ(parsed.size(), r.trace.size());
  // The %.6f microsecond encoding is exact at 1 ps granularity, so even
  // the picosecond timestamps survive the text round trip bit-for-bit.
  EXPECT_EQ(std::memcmp(parsed.data(), r.trace.data(),
                        parsed.size() * sizeof(trace::Record)),
            0);
  EXPECT_EQ(trace::chrome_trace_json(parsed), json);
}

TEST(ExportRoundTrip, ParsersSkipJunkLines) {
  const std::string csv =
      "t_ps,dur_ps,point,span,qpn,tenant,node,arg,aux\n"
      "garbage line\n"
      "100,5,wire-tx,1,256,2,0,64,0\n"
      "100,5,no-such-point,1,256,2,0,64,0\n"
      "100,5,wire-tx,1,256,2,999,64,0\n"  // node > 0xFF
      "\n";
  const auto parsed = trace::parse_records_csv(csv);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].t, 100);
  EXPECT_EQ(parsed[0].dur, 5);
  EXPECT_EQ(parsed[0].point, trace::Point::kWireTx);
  EXPECT_EQ(parsed[0].qpn, 256u);
  EXPECT_EQ(trace::parse_chrome_trace("{\"traceEvents\":[]}").size(), 0u);
  EXPECT_EQ(trace::parse_chrome_trace("not json at all").size(), 0u);
}

// ---------------------------------------------------------------------------
// Kernel-side observability surface
// ---------------------------------------------------------------------------

/// Ten 64-byte RC sends from host 0 to host 1 as tenant 5. No gtest
/// macros inside: ASSERT_* expands to a plain `return`, which is
/// ill-formed in a coroutine — failures are counted instead.
sim::Task<> ten_sends(core::System& sys, verbs::DataplaneMode mode,
                      std::uint32_t& qpn_out, int& failures) {
  verbs::Context a(sys.host(0), 0, sys.options(mode, /*tenant=*/5));
  verbs::Context b(sys.host(1), 0, sys.options(mode, /*tenant=*/5));
  auto pd_a = co_await a.alloc_pd();
  auto pd_b = co_await b.alloc_pd();
  auto* scq_a = co_await a.create_cq(64);
  auto* rcq_a = co_await a.create_cq(64);
  auto* scq_b = co_await b.create_cq(64);
  auto* rcq_b = co_await b.create_cq(64);
  auto* qp_a =
      co_await a.create_qp({nic::QpType::kRC, pd_a, scq_a, rcq_a, 64, 64, 220});
  auto* qp_b =
      co_await b.create_qp({nic::QpType::kRC, pd_b, scq_b, rcq_b, 64, 64, 220});
  co_await a.connect_qp(*qp_a, {b.node(), qp_b->qpn()});
  co_await b.connect_qp(*qp_b, {a.node(), qp_a->qpn()});
  qpn_out = qp_a->qpn();

  std::vector<std::byte> src(64, std::byte{0x11});
  std::vector<std::byte> dst(64);
  auto* mr_b =
      co_await b.reg_mr(pd_b, dst.data(), dst.size(), nic::kAccessLocalWrite);
  for (int i = 0; i < 10; ++i) {
    (void)co_await b.post_recv(
        *qp_b,
        {1, {reinterpret_cast<std::uintptr_t>(dst.data()), 64, mr_b->lkey}});
    int rc = co_await a.post_send(
        *qp_a, {.sge = {reinterpret_cast<std::uintptr_t>(src.data()), 64, 0},
                .inline_data = true});
    if (rc != 0) ++failures;
    nic::Cqe wc = co_await a.wait_one(*scq_a);
    if (wc.status != nic::WcStatus::kSuccess) ++failures;
    (void)co_await b.wait_one(*rcq_b);
  }
}

TEST(ProcRead, CordModePopulatesTenantMetricsBypassDoesNot) {
  for (const bool cord : {true, false}) {
    SCOPED_TRACE(cord ? "cord" : "bypass");
    const auto mode =
        cord ? verbs::DataplaneMode::kCord : verbs::DataplaneMode::kBypass;
    core::System sys(core::system_l(), 2);
    std::uint32_t qpn = 0;
    int failures = 0;
    sys.engine().spawn(ten_sends(sys, mode, qpn, failures));
    sys.engine().run();
    ASSERT_EQ(failures, 0);
    ASSERT_NE(qpn, 0u);

    os::Kernel& k = sys.host(0).kernel();
    const std::string tenants = k.proc_read("tenants");
    if (cord) {
      // Per-tenant ops/bytes/latency, kernel-side, no app cooperation.
      EXPECT_NE(tenants.find("tenant 5"), std::string::npos) << tenants;
      EXPECT_NE(tenants.find("post_sends=10"), std::string::npos) << tenants;
      EXPECT_NE(tenants.find("tx_bytes=640"), std::string::npos) << tenants;
      EXPECT_NE(tenants.find("syscall_p99_ns="), std::string::npos);
      const auto* h = k.metrics().find_histogram("kernel.tenant.syscall_ns", 5);
      ASSERT_NE(h, nullptr);
      EXPECT_GT(h->count(), 0u);
      EXPECT_GT(h->percentile(50.0), 0.0);
      // tenant/<id> and metrics views agree.
      EXPECT_EQ(k.proc_read("tenant/5"), tenants);
      EXPECT_NE(k.proc_read("metrics").find("kernel.tenant.post_sends"),
                std::string::npos);
      const std::string qp = k.proc_read("qp/" + std::to_string(qpn));
      EXPECT_NE(qp.find("tx_msgs=10"), std::string::npos) << qp;
    } else {
      // Bypass: the kernel never saw the data plane.
      EXPECT_TRUE(tenants.empty()) << tenants;
      EXPECT_EQ(k.metrics().find_counter("kernel.tenant.post_sends", 5),
                nullptr);
    }
    EXPECT_TRUE(k.proc_read("bogus/path").empty());
  }
}

TEST(SystemMetrics, EngineGaugesAreLive) {
  core::System sys(core::system_l(), 2);
  EXPECT_EQ(sys.metrics().gauge_value("engine.events_processed"), 0);
  sys.engine().call_in(sim::ns(5), [] {});
  sys.engine().run();
  EXPECT_GT(sys.metrics().gauge_value("engine.events_processed"), 0);
  EXPECT_EQ(sys.metrics().gauge_value("engine.clamped_events"), 0);
}

TEST(SystemMetrics, NicGaugesMirrorDoorbellAndBurstCounters) {
  // Ten sequential RC sends (each waits for its completion): every post
  // rings its own doorbell, activates one burst of one WR, and the fused
  // drain (no tracer attached) segments one 64-byte chunk per message.
  core::System sys(core::system_l(), 2);
  std::uint32_t qpn = 0;
  int failures = 0;
  sys.engine().spawn(ten_sends(sys, verbs::DataplaneMode::kCord, qpn, failures));
  sys.engine().run();
  ASSERT_EQ(failures, 0);

  // System-wide sums over hosts.
  EXPECT_EQ(sys.metrics().gauge_value("nic.doorbells"), 10);
  EXPECT_EQ(sys.metrics().gauge_value("nic.doorbells_coalesced"), 0);
  EXPECT_EQ(sys.metrics().gauge_value("nic.sq_bursts"), 10);
  EXPECT_EQ(sys.metrics().gauge_value("nic.sq_burst_wrs"), 10);
  EXPECT_EQ(sys.metrics().gauge_value("nic.sq_fused_batches"), 10);
  EXPECT_EQ(sys.metrics().gauge_value("nic.seg_msgs"), 10);
  EXPECT_EQ(sys.metrics().gauge_value("nic.seg_chunks"), 10);

  // Per-host mirror through the kernel's /proc-style metrics read: host 0
  // did all the sending, host 1 none.
  os::Kernel& k0 = sys.host(0).kernel();
  const std::string dump = k0.proc_read("metrics");
  for (const char* name :
       {"nic.doorbells", "nic.doorbells_coalesced", "nic.sq_bursts",
        "nic.sq_burst_wrs", "nic.sq_fused_batches", "nic.seg_msgs",
        "nic.seg_chunks"}) {
    EXPECT_NE(dump.find(name), std::string::npos) << name;
  }
  EXPECT_EQ(k0.metrics().gauge_value("nic.sq_burst_wrs"), 10);
  EXPECT_EQ(sys.host(1).kernel().metrics().gauge_value("nic.sq_burst_wrs"), 0);
}

}  // namespace
