// Massive-tenancy scaling and isolation: the ICM context cache (unit +
// charged-latency integration), shared-connection memory boundedness, the
// exclusive-mode connection-count latency cliff, determinism of the
// tenancy scenarios across queue backends / sync modes / shard counts,
// and the noisy-neighbor isolation story (policies restore victim tail).
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "nic/icm.hpp"
#include "perftest/tenancy.hpp"

namespace cord {
namespace {

using perftest::NoisyParams;
using perftest::NoisyResult;
using perftest::ScaleParams;
using perftest::ScaleResult;

// --- IcmCache unit ------------------------------------------------------

TEST(IcmCache, ZeroCapacityIsDisabledAndCountsNothing) {
  nic::IcmCache cache(0);
  EXPECT_FALSE(cache.enabled());
  for (std::uint32_t k = 0; k < 100; ++k) EXPECT_TRUE(cache.touch(k));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(IcmCache, LruEvictsLeastRecentlyTouched) {
  nic::IcmCache cache(2);
  EXPECT_FALSE(cache.touch(1));  // cold miss
  EXPECT_FALSE(cache.touch(2));  // cold miss
  EXPECT_TRUE(cache.touch(1));   // hit, 1 becomes MRU
  EXPECT_FALSE(cache.touch(3));  // evicts 2 (LRU)
  EXPECT_TRUE(cache.touch(1));
  EXPECT_TRUE(cache.touch(3));
  EXPECT_FALSE(cache.touch(2)) << "2 was evicted";
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().hits, 3u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(IcmCache, EraseFreesTheSlotWithoutEvicting) {
  // lkeys/qpns are recycled by their tables; a stale cache entry must not
  // count a recycled key as resident.
  nic::IcmCache cache(2);
  (void)cache.touch(1);
  (void)cache.touch(2);
  cache.erase(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.touch(3)) << "erased slot reused, no eviction needed";
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_TRUE(cache.touch(2));
  EXPECT_FALSE(cache.touch(1)) << "erased key is gone";
  cache.erase(99);  // erasing an absent key is a no-op
  EXPECT_EQ(cache.size(), 2u);
}

// --- Charged miss latency (NIC integration) -----------------------------

TEST(IcmCache, MissLatencyIsChargedPerDoorbell) {
  // Two connections alternating under a one-entry QP cache: every
  // doorbell misses. The per-op latency must exceed the unbounded run by
  // exactly the configured miss penalty — deterministically, not
  // statistically.
  ScaleParams p;
  p.connections = 2;
  p.window = 1;
  p.ops = 12;
  p.icm_qp_capacity = 0;
  p.icm_mr_capacity = 0;
  const core::SystemConfig cfg = core::system_l();
  const ScaleResult unbounded = perftest::run_conn_scale(cfg, p);
  p.icm_qp_capacity = 1;
  const ScaleResult capped = perftest::run_conn_scale(cfg, p);

  EXPECT_EQ(unbounded.icm_qp_misses, 0u);
  EXPECT_EQ(unbounded.icm_qp_hits, 0u) << "disabled cache counts nothing";
  EXPECT_EQ(capped.icm_qp_misses, 12u);
  EXPECT_EQ(capped.icm_qp_evictions, 11u);
  EXPECT_EQ(capped.icm_qp_hits, 0u);
  EXPECT_NEAR(capped.avg_us - unbounded.avg_us,
              sim::to_us(cfg.nic.icm_miss_latency), 1e-6)
      << "every op pays exactly one QP-context fetch";
}

// --- Determinism across queue/sync/shards -------------------------------

TEST(ConnScale, BitIdenticalAcrossQueueSyncAndShards) {
  ScaleParams base;
  base.connections = 128;
  base.window = 8;
  base.ops = 1200;
  base.icm_qp_capacity = 64;
  base.icm_mr_capacity = 64;
  const core::SystemConfig cfg = core::system_l();
  const ScaleResult golden = perftest::run_conn_scale(cfg, base);
  EXPECT_GT(golden.icm_qp_misses, 0u) << "working set must outgrow the cache";

  struct Variant {
    const char* name;
    sim::QueueKind queue;
    sim::SyncMode sync;
    std::size_t shards;
  };
  const Variant variants[] = {
      {"calendar", sim::QueueKind::kCalendar, sim::SyncMode::kConservative, 1},
      {"sharded", sim::QueueKind::kHeap, sim::SyncMode::kConservative, 2},
      {"speculative", sim::QueueKind::kHeap, sim::SyncMode::kSpeculative, 2},
      {"calendar-spec", sim::QueueKind::kCalendar, sim::SyncMode::kSpeculative, 2},
  };
  for (const Variant& v : variants) {
    ScaleParams p = base;
    p.queue = v.queue;
    p.sync = v.sync;
    p.shards = v.shards;
    const ScaleResult r = perftest::run_conn_scale(cfg, p);
    EXPECT_EQ(r.latency_us.values(), golden.latency_us.values())
        << "latency samples diverged under " << v.name;
    EXPECT_EQ(r.icm_qp_misses, golden.icm_qp_misses) << v.name;
    EXPECT_EQ(r.icm_mr_misses, golden.icm_mr_misses) << v.name;
    EXPECT_EQ(r.clamped_events, 0u) << v.name;
  }
}

TEST(NoisyNeighbor, ShapingIsDeterministicAcrossShards) {
  NoisyParams base;
  base.victims = 2;
  base.victim_pings = 80;
  base.attacker_qps = 96;
  base.icm_qp_capacity = 64;
  base.icm_mr_capacity = 64;
  base.duration = sim::ms(1);
  base.cord = true;
  base.policies = true;
  const core::SystemConfig cfg = core::system_l();
  const NoisyResult golden = perftest::run_noisy_neighbor(cfg, base);
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    NoisyParams p = base;
    p.shards = shards;
    const NoisyResult r = perftest::run_noisy_neighbor(cfg, p);
    EXPECT_EQ(r.victim_us.values(), golden.victim_us.values())
        << "victim samples diverged at " << shards << " shards";
    EXPECT_EQ(r.attacker_ops, golden.attacker_ops) << shards << " shards";
    EXPECT_EQ(r.attacker_denied, golden.attacker_denied) << shards << " shards";
    EXPECT_EQ(r.attacker_regs, golden.attacker_regs) << shards << " shards";
    EXPECT_EQ(r.clamped_events, 0u);
  }
}

// --- Shared-connection boundedness and the exclusive-mode cliff ---------

TEST(ConnScale, SharedModeBoundsMemoryAndContexts) {
  ScaleParams p;
  p.connections = 200000;
  p.conn_mode = os::ConnMode::kShared;
  p.shared_qp_pool = 32;
  p.window = 8;
  p.ops = 1000;
  p.icm_qp_capacity = 512;
  p.icm_mr_capacity = 512;
  const ScaleResult r = perftest::run_conn_scale(core::system_l(), p);
  EXPECT_EQ(r.physical_qps, 32u) << "the pool, not the logical count";
  EXPECT_EQ(r.conn_table_bytes, 200000u * sizeof(os::ConnectionService::LogicalConn))
      << "16 B per logical connection";
  // The physical working set (32 QPs, 32 MRs) fits the cache: only cold
  // misses, no steady-state context thrash at 200k logical connections.
  EXPECT_LE(r.icm_qp_misses, 32u);
  EXPECT_LE(r.icm_mr_misses, 32u);
  EXPECT_EQ(r.icm_qp_evictions, 0u);
}

TEST(ConnScale, ExclusiveModeHitsTheContextCliff) {
  ScaleParams fits;
  fits.connections = 256;
  fits.window = 8;
  fits.ops = 4096;
  fits.icm_qp_capacity = 512;
  fits.icm_mr_capacity = 512;
  ScaleParams thrash = fits;
  thrash.connections = 2048;
  const core::SystemConfig cfg = core::system_l();
  const ScaleResult a = perftest::run_conn_scale(cfg, fits);
  const ScaleResult b = perftest::run_conn_scale(cfg, thrash);
  EXPECT_EQ(a.icm_qp_misses, 256u) << "cold misses only below capacity";
  EXPECT_EQ(a.icm_qp_evictions, 0u);
  EXPECT_GE(b.icm_qp_misses, static_cast<std::uint64_t>(0.9 * 4096))
      << "round-robin over 4x capacity misses nearly every doorbell";
  // Each op pays a QP-context fetch on the doorbell and an MR-context
  // fetch on the WQE read: the cliff is two miss penalties per op.
  EXPECT_GT(b.avg_us - a.avg_us, 0.8 * 2 * sim::to_us(cfg.nic.icm_miss_latency));
}

// --- Noisy neighbor: bypass cannot protect victims, CoRD policies can ---

TEST(NoisyNeighbor, PolicyChainRestoresVictimTail) {
  NoisyParams p;
  p.victims = 2;
  p.victim_pings = 120;
  p.attacker_qps = 96;
  p.icm_qp_capacity = 64;
  p.icm_mr_capacity = 64;
  p.duration = sim::ms(2);
  const core::SystemConfig cfg = core::system_l();

  NoisyParams bypass = p;  // classic RDMA: the kernel never sees the flood
  const NoisyResult open = perftest::run_noisy_neighbor(cfg, bypass);

  NoisyParams cord = p;
  cord.cord = true;
  cord.policies = true;
  const NoisyResult guarded = perftest::run_noisy_neighbor(cfg, cord);

  EXPECT_GT(open.icm_qp_evictions, 0u) << "the attacker must thrash the cache";
  EXPECT_GT(guarded.attacker_denied, 0u) << "the quota must actually bite";
  EXPECT_LT(guarded.attacker_ops, open.attacker_ops / 2)
      << "the attacker is paced, not merely surcharged";
  EXPECT_LT(guarded.victim_p99_us, open.victim_p99_us / 1.5)
      << "policies must restore the victims' tail";
  EXPECT_GT(guarded.attacker_reg_denied, 0u)
      << "registration churn runs into the quota";
}

TEST(NoisyNeighbor, RegistrationQuotaBitesEvenInBypassMode) {
  // The control plane is kernel-mediated in both modes: the registration
  // quota is the one isolation lever a bypass deployment retains, while
  // the data-plane flood goes unpoliced (the paper's argument, inverted).
  NoisyParams p;
  p.victims = 1;
  p.victim_pings = 60;
  p.attacker_qps = 96;
  p.icm_qp_capacity = 64;
  p.icm_mr_capacity = 64;
  p.duration = sim::ms(1);
  p.cord = false;
  p.policies = true;
  const NoisyResult r = perftest::run_noisy_neighbor(core::system_l(), p);
  EXPECT_GT(r.attacker_reg_denied, 0u) << "reg_mr still crosses the kernel";
  EXPECT_EQ(r.attacker_denied, 0u)
      << "bypassed posts never reach the policy chain";
}

}  // namespace
}  // namespace cord
