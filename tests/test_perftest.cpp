// Integration tests for the perftest harness. These encode the paper's
// qualitative claims as assertions: what each "technique removal" costs
// (Fig. 1), which side of which operation pays for CoRD (Fig. 3), how
// throughput degrades (Fig. 4), and the system A peculiarities (Fig. 5).
#include <gtest/gtest.h>

#include "perftest/perftest.hpp"

namespace cord::perftest {
namespace {

using verbs::DataplaneMode;

Params quick(TestOp op, std::size_t size, Transport tr = Transport::kRC) {
  Params p;
  p.op = op;
  p.transport = tr;
  p.msg_size = size;
  p.iterations = 120;
  p.warmup = 20;
  return p;
}

Params quick_modes(TestOp op, std::size_t size, DataplaneMode client,
                   DataplaneMode server, const core::SystemConfig& cfg) {
  Params p = quick(op, size);
  p.client = verbs::ContextOptions{.mode = client,
                                   .cord_inline_support = cfg.cord_inline_support};
  p.server = verbs::ContextOptions{.mode = server,
                                   .cord_inline_support = cfg.cord_inline_support};
  return p;
}

TEST(Baseline, SmallSendLatencyRealistic) {
  auto r = run_latency(core::system_l(), quick(TestOp::kSend, 8));
  // CX-6 class one-way small-message latency: ~1–2.5 us.
  EXPECT_GT(r.avg_us, 0.8);
  EXPECT_LT(r.avg_us, 2.5);
}

TEST(Baseline, ReadLatencyAboveSendLatency) {
  auto send = run_latency(core::system_l(), quick(TestOp::kSend, 64));
  auto read = run_latency(core::system_l(), quick(TestOp::kRead, 64));
  // A read is a full round trip; send_lat reports RTT/2.
  EXPECT_GT(read.avg_us, send.avg_us);
}

TEST(Baseline, LargeMessageBandwidthNearsWireRate) {
  Params p = quick(TestOp::kSend, 1 << 20);
  p.iterations = 60;
  auto r = run_bandwidth(core::system_l(), p);
  EXPECT_GT(r.gbps, 80.0) << "1 MiB sends should approach 100 Gbit/s";
  EXPECT_LT(r.gbps, 100.0) << "nothing may beat the wire";
}

TEST(Baseline, SmallMessagesAreCpuBound) {
  Params p = quick(TestOp::kSend, 16);
  p.iterations = 2000;
  auto r = run_bandwidth(core::system_l(), p);
  // Paper: "the baseline variant achieves only 1.4 Gbit/s" for small
  // messages on a 100 Gbit/s wire — i.e. single-digit percent of line rate.
  EXPECT_LT(r.gbps, 8.0);
  EXPECT_GT(r.mmsg_per_sec, 0.5) << "but still millions of messages/s";
}

// --- Fig. 1: technique removal -------------------------------------------

TEST(Fig1, RemovingZeroCopyCostsProportionalToSize) {
  Params base = quick(TestOp::kSend, 1 << 20);
  base.iterations = 40;
  Params nocopy = base;
  nocopy.knobs.extra_copy = true;
  auto rb = run_latency(core::system_l(), base);
  auto rn = run_latency(core::system_l(), nocopy);
  // One extra copy on each one-way path: +140 us per MiB (paper's figure).
  const double delta = rn.avg_us - rb.avg_us;
  EXPECT_NEAR(delta, 140.0, 30.0);
}

TEST(Fig1, RemovingKernelBypassCostsSmallConstant) {
  auto delta_at = [](std::size_t size) {
    Params base = quick(TestOp::kSend, size);
    Params nobypass = base;
    nobypass.knobs.extra_syscall = true;
    auto rb = run_latency(core::system_l(), base);
    auto rn = run_latency(core::system_l(), nobypass);
    return rn.avg_us - rb.avg_us;
  };
  const double d_small = delta_at(64);
  const double d_large = delta_at(65536);
  EXPECT_GT(d_small, 0.05) << "a syscall is not free";
  EXPECT_LT(d_small, 1.0) << "but it is small";
  EXPECT_NEAR(d_small, d_large, 0.5) << "and constant in message size";
}

TEST(Fig1, RemovingPollingCostsLargeConstant) {
  auto delta_at = [](std::size_t size) {
    Params base = quick(TestOp::kSend, size);
    base.iterations = 60;
    Params nopoll = base;
    nopoll.knobs.interrupt_wait = true;
    auto rb = run_latency(core::system_l(), base);
    auto rn = run_latency(core::system_l(), nopoll);
    return rn.avg_us - rb.avg_us;
  };
  const double d_small = delta_at(64);
  const double d_large = delta_at(1 << 20);
  EXPECT_GT(d_small, 3.0) << "interrupts add microseconds";
  EXPECT_LT(d_small, 25.0);
  EXPECT_NEAR(d_small, d_large, d_small * 0.5)
      << "absolute overhead stays the same even for very large messages";
}

TEST(Fig1, PollingMattersMoreThanKernelBypassForLatency) {
  Params base = quick(TestOp::kSend, 64);
  Params nobypass = base;
  nobypass.knobs.extra_syscall = true;
  Params nopoll = base;
  nopoll.knobs.interrupt_wait = true;
  auto rb = run_latency(core::system_l(), base);
  auto rnb = run_latency(core::system_l(), nobypass);
  auto rnp = run_latency(core::system_l(), nopoll);
  EXPECT_GT(rnp.avg_us - rb.avg_us, (rnb.avg_us - rb.avg_us) * 3)
      << "paper: polling is more important than kernel-bypass";
}

TEST(Fig1, EveryRemovalHurtsSmallMessageThroughput) {
  Params base = quick(TestOp::kSend, 64);
  base.iterations = 1500;
  auto rb = run_bandwidth(core::system_l(), base);
  for (int knob = 0; knob < 3; ++knob) {
    Params v = base;
    v.knobs.extra_copy = knob == 0;
    v.knobs.extra_syscall = knob == 1;
    v.knobs.interrupt_wait = knob == 2;
    auto rv = run_bandwidth(core::system_l(), v);
    EXPECT_LT(rv.gbps, rb.gbps * 0.9)
        << "removing technique #" << knob << " must hurt small-message bw";
  }
}

TEST(Fig1, OnlyZeroCopyMattersForLargeMessageThroughput) {
  Params base = quick(TestOp::kSend, 1 << 20);
  base.iterations = 50;
  auto rb = run_bandwidth(core::system_l(), base);
  Params nocopy = base;
  nocopy.knobs.extra_copy = true;
  auto rnc = run_bandwidth(core::system_l(), nocopy);
  EXPECT_LT(rnc.gbps, rb.gbps * 0.75)
      << "copies throttle large messages below the wire rate";
  Params nobypass = base;
  nobypass.knobs.extra_syscall = true;
  auto rnb = run_bandwidth(core::system_l(), nobypass);
  EXPECT_GT(rnb.gbps, rb.gbps * 0.97)
      << "a per-message syscall is invisible at 1 MiB";
}

// --- Fig. 3: who pays for CoRD -------------------------------------------

TEST(Fig3, ReadWithServerSideCordIsFree) {
  const auto cfg = core::system_l();
  auto bp = run_latency(cfg, quick_modes(TestOp::kRead, 4096,
                                         DataplaneMode::kBypass,
                                         DataplaneMode::kBypass, cfg));
  auto cd_server = run_latency(cfg, quick_modes(TestOp::kRead, 4096,
                                                DataplaneMode::kBypass,
                                                DataplaneMode::kCord, cfg));
  EXPECT_NEAR(cd_server.avg_us, bp.avg_us, 0.05)
      << "the server CPU does not participate in an RDMA read";
}

TEST(Fig3, ReadWithClientSideCordPays) {
  const auto cfg = core::system_l();
  auto bp = run_latency(cfg, quick_modes(TestOp::kRead, 4096,
                                         DataplaneMode::kBypass,
                                         DataplaneMode::kBypass, cfg));
  auto cd_client = run_latency(cfg, quick_modes(TestOp::kRead, 4096,
                                                DataplaneMode::kCord,
                                                DataplaneMode::kBypass, cfg));
  EXPECT_GT(cd_client.avg_us, bp.avg_us + 0.2);
}

TEST(Fig3, SendOverheadIsSymmetricAcrossSides) {
  const auto cfg = core::system_l();
  auto bp = run_latency(cfg, quick_modes(TestOp::kSend, 4096,
                                         DataplaneMode::kBypass,
                                         DataplaneMode::kBypass, cfg));
  auto cd_c = run_latency(cfg, quick_modes(TestOp::kSend, 4096,
                                           DataplaneMode::kCord,
                                           DataplaneMode::kBypass, cfg));
  auto cd_s = run_latency(cfg, quick_modes(TestOp::kSend, 4096,
                                           DataplaneMode::kBypass,
                                           DataplaneMode::kCord, cfg));
  auto cd_cs = run_latency(cfg, quick_modes(TestOp::kSend, 4096,
                                            DataplaneMode::kCord,
                                            DataplaneMode::kCord, cfg));
  const double oc = cd_c.avg_us - bp.avg_us;
  const double os_ = cd_s.avg_us - bp.avg_us;
  const double ocs = cd_cs.avg_us - bp.avg_us;
  EXPECT_NEAR(oc, os_, 0.5) << "each side contributes equally (paper §5)";
  EXPECT_NEAR(ocs, oc + os_, 0.6) << "both sides roughly sum";
}

TEST(Fig3, WriteWithServerCordPaysBecauseOfTheResponseWrite) {
  const auto cfg = core::system_l();
  auto bp = run_latency(cfg, quick_modes(TestOp::kWrite, 4096,
                                         DataplaneMode::kBypass,
                                         DataplaneMode::kBypass, cfg));
  auto cd_s = run_latency(cfg, quick_modes(TestOp::kWrite, 4096,
                                           DataplaneMode::kBypass,
                                           DataplaneMode::kCord, cfg));
  EXPECT_GT(cd_s.avg_us, bp.avg_us + 0.1)
      << "write_lat's server posts the response write through the kernel";
}

// --- Fig. 4: throughput degradation --------------------------------------

TEST(Fig4, LargeSendBandwidthAlmostUnaffected) {
  const auto cfg = core::system_l();
  Params bp = quick_modes(TestOp::kSend, 32768, DataplaneMode::kBypass,
                          DataplaneMode::kBypass, cfg);
  bp.iterations = 400;
  Params cd = quick_modes(TestOp::kSend, 32768, DataplaneMode::kCord,
                          DataplaneMode::kCord, cfg);
  cd.iterations = 400;
  auto rb = run_bandwidth(cfg, bp);
  auto rc = run_bandwidth(cfg, cd);
  // Paper checkpoint: ~370 k msgs/s at 32 KiB and only ~1 % degradation.
  EXPECT_NEAR(rb.mmsg_per_sec, 0.37, 0.08);
  EXPECT_GT(rc.gbps, rb.gbps * 0.95);
}

TEST(Fig4, SmallSendThroughputDegradesSubstantially) {
  const auto cfg = core::system_l();
  Params bp = quick_modes(TestOp::kSend, 64, DataplaneMode::kBypass,
                          DataplaneMode::kBypass, cfg);
  bp.iterations = 1500;
  Params cd = quick_modes(TestOp::kSend, 64, DataplaneMode::kCord,
                          DataplaneMode::kCord, cfg);
  cd.iterations = 1500;
  auto rb = run_bandwidth(cfg, bp);
  auto rc = run_bandwidth(cfg, cd);
  EXPECT_LT(rc.gbps, rb.gbps * 0.75)
      << "constant per-message cost throttles small-message rate";
}

// --- Fig. 5 / system A -----------------------------------------------------

TEST(Fig5, SystemABimodalOverhead) {
  const auto cfg = core::system_a();
  auto overhead_at = [&](std::size_t size) {
    auto bp = run_latency(cfg, quick_modes(TestOp::kSend, size,
                                           DataplaneMode::kBypass,
                                           DataplaneMode::kBypass, cfg));
    auto cd = run_latency(cfg, quick_modes(TestOp::kSend, size,
                                           DataplaneMode::kCord,
                                           DataplaneMode::kCord, cfg));
    return cd.avg_us - bp.avg_us;
  };
  const double small = overhead_at(256);    // <= 1 KiB: bypass uses inline
  const double large = overhead_at(8192);   // both sides DMA
  EXPECT_GT(small, large + 0.1)
      << "missing inline support inflates small-message overhead (Fig. 5a)";
}

TEST(Fig5, SystemAJitterExceedsSystemL) {
  // Jitter lives in the (virtualized) syscall path, so compare CoRD runs.
  auto spread = [](const core::SystemConfig& cfg) {
    auto r = run_latency(cfg, quick_modes(TestOp::kSend, 4096,
                                          DataplaneMode::kCord,
                                          DataplaneMode::kCord, cfg));
    return r.latency_us.stddev();
  };
  EXPECT_GT(spread(core::system_a()), spread(core::system_l()) + 0.01)
      << "virtualized syscalls are noisier";
}

// --- Transports ------------------------------------------------------------

TEST(Transports, UdValidation) {
  EXPECT_THROW(run_latency(core::system_l(), quick(TestOp::kWrite, 64, Transport::kUD)),
               std::invalid_argument);
  EXPECT_THROW(run_latency(core::system_l(), quick(TestOp::kSend, 8192, Transport::kUD)),
               std::invalid_argument);
}

TEST(Transports, UdLatencyComparableToRc) {
  auto rc = run_latency(core::system_l(), quick(TestOp::kSend, 256, Transport::kRC));
  auto ud = run_latency(core::system_l(), quick(TestOp::kSend, 256, Transport::kUD));
  EXPECT_NEAR(ud.avg_us, rc.avg_us, 0.6);
}

TEST(Transports, UdBandwidthWorks) {
  Params p = quick(TestOp::kSend, 2048, Transport::kUD);
  p.iterations = 800;
  auto r = run_bandwidth(core::system_l(), p);
  EXPECT_GT(r.gbps, 5.0);
}

// --- Determinism -----------------------------------------------------------

TEST(Determinism, IdenticalRunsProduceIdenticalResults) {
  Params p = quick(TestOp::kSend, 1024);
  auto a = run_latency(core::system_l(), p);
  auto b = run_latency(core::system_l(), p);
  EXPECT_DOUBLE_EQ(a.avg_us, b.avg_us);
  auto ba = run_bandwidth(core::system_l(), p);
  auto bb = run_bandwidth(core::system_l(), p);
  EXPECT_DOUBLE_EQ(ba.gbps, bb.gbps);
}

}  // namespace
}  // namespace cord::perftest
