// Property-based and parameterized suites: invariants that must hold for
// every message size, operation, transport, rank count and random seed —
// the sweeps that catch boundary bugs (MTU edges, inline threshold,
// eager/rendezvous switch, non-power-of-two worlds).
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "mpi/world.hpp"
#include "os/policies.hpp"
#include "perftest/perftest.hpp"
#include "test_util.hpp"

namespace cord {
namespace {

using cord::testing::RcEndpoints;
using cord::testing::TwoHostFixture;
using cord::testing::run_task;
using cord::testing::uptr;

// ---------------------------------------------------------------------------
// NIC payload integrity across sizes x operations.
// ---------------------------------------------------------------------------

struct XferCase {
  std::size_t size;
  perftest::TestOp op;
};

class NicIntegrity : public ::testing::TestWithParam<XferCase> {};

TEST_P(NicIntegrity, PayloadSurvivesBitExact) {
  const auto [size, op] = GetParam();
  TwoHostFixture f;
  bool ok = false;
  run_task(f.engine, [](TwoHostFixture& f, std::size_t size, perftest::TestOp op,
                        bool& ok) -> sim::Task<> {
    verbs::Context a(*f.host0, 0, {});
    verbs::Context b(*f.host1, 0, {});
    RcEndpoints e = co_await cord::testing::connect_rc(a, b);
    std::vector<std::byte> src(size), dst(size, std::byte{0});
    for (std::size_t i = 0; i < size; ++i) {
      src[i] = static_cast<std::byte>((i * 131 + 17) & 0xFF);
    }
    auto* smr = co_await a.reg_mr(e.pd0, src.data(), size,
                                  nic::kAccessRemoteRead);
    auto* rmr = co_await b.reg_mr(
        e.pd1, dst.data(), size,
        nic::kAccessLocalWrite | nic::kAccessRemoteWrite | nic::kAccessRemoteRead);
    nic::SendWr wr;
    wr.sge = {uptr(src.data()), static_cast<std::uint32_t>(size), smr->lkey};
    switch (op) {
      case perftest::TestOp::kSend: {
        (void)co_await b.post_recv(
            *e.qp1, {1, {uptr(dst.data()), static_cast<std::uint32_t>(size),
                         rmr->lkey}});
        (void)co_await a.post_send(*e.qp0, std::move(wr));
        (void)co_await b.wait_one(*e.rcq1);
        break;
      }
      case perftest::TestOp::kWrite: {
        wr.opcode = nic::Opcode::kRdmaWrite;
        wr.remote_addr = uptr(dst.data());
        wr.rkey = rmr->rkey;
        (void)co_await a.post_send(*e.qp0, std::move(wr));
        (void)co_await a.wait_one(*e.scq0);
        break;
      }
      case perftest::TestOp::kRead: {
        // b reads from a: reverse roles so dst is still on host1.
        nic::SendWr rd;
        rd.opcode = nic::Opcode::kRdmaRead;
        rd.sge = {uptr(dst.data()), static_cast<std::uint32_t>(size), rmr->lkey};
        rd.remote_addr = uptr(src.data());
        rd.rkey = smr->rkey;
        (void)co_await b.post_send(*e.qp1, std::move(rd));
        (void)co_await b.wait_one(*e.scq1);
        break;
      }
    }
    ok = std::memcmp(src.data(), dst.data(), size) == 0;
  }(f, size, op, ok));
  EXPECT_TRUE(ok) << "corrupted payload at size " << size;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, NicIntegrity,
    ::testing::Values(
        XferCase{1, perftest::TestOp::kSend}, XferCase{2, perftest::TestOp::kSend},
        XferCase{3, perftest::TestOp::kSend},
        XferCase{219, perftest::TestOp::kSend},   // inline boundary - 1
        XferCase{220, perftest::TestOp::kSend},   // inline boundary
        XferCase{221, perftest::TestOp::kSend},   // inline boundary + 1
        XferCase{4095, perftest::TestOp::kSend},  // MTU - 1
        XferCase{4096, perftest::TestOp::kSend},  // exactly MTU
        XferCase{4097, perftest::TestOp::kSend},  // MTU + 1 (two packets)
        XferCase{65536, perftest::TestOp::kSend},
        XferCase{1u << 20, perftest::TestOp::kSend},
        XferCase{1, perftest::TestOp::kWrite}, XferCase{4097, perftest::TestOp::kWrite},
        XferCase{1u << 20, perftest::TestOp::kWrite},
        XferCase{1, perftest::TestOp::kRead}, XferCase{4097, perftest::TestOp::kRead},
        XferCase{1u << 20, perftest::TestOp::kRead}),
    [](const auto& info) {
      const char* op = info.param.op == perftest::TestOp::kSend    ? "send"
                       : info.param.op == perftest::TestOp::kWrite ? "write"
                                                                   : "read";
      return std::string(op) + "_" + std::to_string(info.param.size);
    });

// ---------------------------------------------------------------------------
// perftest physical-sanity properties.
// ---------------------------------------------------------------------------

class LatencyMonotonic : public ::testing::TestWithParam<perftest::Transport> {};

TEST_P(LatencyMonotonic, LatencyNondecreasingInSize) {
  double prev = 0.0;
  for (std::size_t size : {64u, 1024u, 4096u}) {
    perftest::Params p;
    p.transport = GetParam();
    p.msg_size = size;
    p.iterations = 80;
    const double us = perftest::run_latency(core::system_l(), p).avg_us;
    EXPECT_GE(us, prev - 0.02) << "latency shrank when size grew to " << size;
    prev = us;
  }
}

INSTANTIATE_TEST_SUITE_P(Transports, LatencyMonotonic,
                         ::testing::Values(perftest::Transport::kRC,
                                           perftest::Transport::kUD),
                         [](const auto& info) {
                           return info.param == perftest::Transport::kRC ? "RC"
                                                                         : "UD";
                         });

class BandwidthBounded : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BandwidthBounded, ThroughputNeverExceedsWire) {
  perftest::Params p;
  p.msg_size = GetParam();
  p.iterations = GetParam() >= (1u << 20) ? 40 : 800;
  const auto r = perftest::run_bandwidth(core::system_l(), p);
  EXPECT_LT(r.gbps, 100.0) << "nothing may beat the 100 Gbit/s wire";
  EXPECT_GT(r.gbps, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BandwidthBounded,
                         ::testing::Values(64, 4096, 65536, 1u << 20),
                         [](const auto& info) {
                           return "s" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Engine ordering under random schedules.
// ---------------------------------------------------------------------------

TEST(EngineProperty, RandomSchedulesFireInTimeOrder) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::Engine e;
    sim::Rng rng(seed);
    std::vector<sim::Time> fired;
    for (int i = 0; i < 500; ++i) {
      const auto t = static_cast<sim::Time>(rng.next_below(1'000'000));
      e.call_at(t, [&fired, &e] { fired.push_back(e.now()); });
    }
    e.run();
    ASSERT_EQ(fired.size(), 500u);
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end())) << "seed " << seed;
  }
}

TEST(ResourceProperty, RandomReservationsAreFifoAndConserveBusyTime) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::Engine e;
    sim::Resource r(e);
    sim::Rng rng(seed);
    sim::Time prev_finish = 0;
    sim::Time total = 0;
    for (int i = 0; i < 1000; ++i) {
      const auto busy = static_cast<sim::Time>(rng.next_below(10'000) + 1);
      const auto earliest = static_cast<sim::Time>(rng.next_below(100'000));
      const sim::Time fin = r.reserve_at(earliest, busy);
      EXPECT_GE(fin, earliest + busy);
      EXPECT_GE(fin, prev_finish + busy) << "FIFO violated";
      prev_finish = fin;
      total += busy;
    }
    EXPECT_EQ(r.busy_total(), total);
  }
}

// ---------------------------------------------------------------------------
// QoS token bucket: admitted volume is rate-bounded for any op pattern.
// ---------------------------------------------------------------------------

TEST(QosProperty, PolicedVolumeIsRateBounded) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const double rate = 1e9;         // 1 GB/s
    const std::uint64_t burst = 64 * 1024;
    os::QosTokenBucket qos(rate, burst, os::QosTokenBucket::Mode::kPolice);
    sim::Rng rng(seed);
    sim::Time now = 0;
    std::uint64_t admitted = 0;
    for (int i = 0; i < 3000; ++i) {
      now += static_cast<sim::Time>(rng.next_below(sim::us(3)));
      const std::uint64_t bytes = rng.next_below(32 * 1024) + 1;
      const os::DataplaneOp op{os::DataplaneOp::Kind::kPostSend, 1, 0,
                               nic::Opcode::kSend, bytes, 0};
      if (qos.on_op(op, now).allow) admitted += bytes;
    }
    const double limit = rate * sim::to_sec(now) + burst + 32 * 1024;
    EXPECT_LE(static_cast<double>(admitted), limit) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// MPI: allreduce equals the local reduction for random inputs, any world.
// ---------------------------------------------------------------------------

struct WorldCase {
  int ranks;
  mpi::NetMode net;
};

class AllreduceMatchesLocal : public ::testing::TestWithParam<WorldCase> {};

TEST_P(AllreduceMatchesLocal, RandomVectors) {
  const auto [ranks, net] = GetParam();
  core::System sys(core::system_l(), 2);
  mpi::World world(sys, ranks, {.net = net});
  (void)world.run([](mpi::Rank& r) -> sim::Task<> {
    sim::Rng rng(100 + static_cast<std::uint64_t>(r.id()));
    std::vector<std::int64_t> mine(32);
    for (auto& v : mine) v = static_cast<std::int64_t>(rng.next_below(1000)) - 500;
    // Everyone learns everyone's inputs to compute the reference locally.
    std::vector<std::int64_t> all(32 * static_cast<std::size_t>(r.size()));
    co_await r.allgather<std::int64_t>(mine, all);
    std::vector<std::int64_t> expect(32, 0);
    for (int rank = 0; rank < r.size(); ++rank) {
      for (int i = 0; i < 32; ++i) expect[i] += all[rank * 32 + i];
    }
    std::vector<std::int64_t> got(32);
    co_await r.allreduce<std::int64_t>(mine, got, mpi::Op::kSum);
    if (got != expect) throw std::runtime_error("allreduce != local reduce");
  });
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, AllreduceMatchesLocal,
    ::testing::Values(WorldCase{2, mpi::NetMode::kBypass},
                      WorldCase{3, mpi::NetMode::kBypass},
                      WorldCase{5, mpi::NetMode::kBypass},
                      WorldCase{8, mpi::NetMode::kBypass},
                      WorldCase{4, mpi::NetMode::kCord},
                      WorldCase{5, mpi::NetMode::kCord},
                      WorldCase{4, mpi::NetMode::kIpoib},
                      WorldCase{6, mpi::NetMode::kIpoib}),
    [](const auto& info) {
      const char* n = info.param.net == mpi::NetMode::kBypass ? "rdma"
                      : info.param.net == mpi::NetMode::kCord ? "cord"
                                                              : "ipoib";
      return std::string(n) + "_" + std::to_string(info.param.ranks);
    });

// ---------------------------------------------------------------------------
// MPI: payload integrity across the eager/rendezvous boundary.
// ---------------------------------------------------------------------------

class P2PBoundary : public ::testing::TestWithParam<std::size_t> {};

TEST_P(P2PBoundary, ContentIntactAroundEagerThreshold) {
  const std::size_t size = GetParam();
  core::System sys(core::system_l(), 2);
  mpi::World world(sys, 2, {.net = mpi::NetMode::kBypass});
  (void)world.run([size](mpi::Rank& r) -> sim::Task<> {
    if (r.id() == 0) {
      std::vector<std::byte> data(size);
      for (std::size_t i = 0; i < size; ++i) {
        data[i] = static_cast<std::byte>((i * 7 + 3) & 0xFF);
      }
      co_await r.send<std::byte>(1, 11, data);
    } else {
      std::vector<std::byte> out(size);
      const std::size_t n = co_await r.recv<std::byte>(0, 11, out);
      if (n != size) throw std::runtime_error("size mismatch");
      for (std::size_t i = 0; i < size; ++i) {
        if (out[i] != static_cast<std::byte>((i * 7 + 3) & 0xFF)) {
          throw std::runtime_error("content mismatch");
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Boundary, P2PBoundary,
                         ::testing::Values(1, 4095, 4096, 4097, 8192, 262144),
                         [](const auto& info) {
                           return "b" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace cord
