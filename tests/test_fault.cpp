// Failure-injection tests: what happens when things go wrong mid-flight —
// revocation under load, policy denial storms, CQ overflow pressure,
// QP destruction with work outstanding, kernel-event waits racing
// completions, and pacing under an aggressive QoS policy.
#include <gtest/gtest.h>

#include "os/policies.hpp"
#include "sim/join.hpp"
#include "test_util.hpp"

namespace cord {
namespace {

using cord::testing::RcEndpoints;
using cord::testing::TwoHostFixture;
using cord::testing::run_task;
using cord::testing::uptr;

TEST(Fault, RevocationUnderLoadFlushesOutstandingWork) {
  TwoHostFixture f;
  int flushed = 0, succeeded = 0;
  run_task(f.engine, [](TwoHostFixture& f, int& flushed, int& succeeded)
                         -> sim::Task<> {
    verbs::Context a(*f.host0, 0, {});
    verbs::Context b(*f.host1, 0, {});
    RcEndpoints e = co_await cord::testing::connect_rc(a, b);
    std::vector<std::byte> src(1 << 20), dst(1 << 20);
    auto* smr = co_await a.reg_mr(e.pd0, src.data(), src.size(), 0);
    auto* rmr = co_await b.reg_mr(
        e.pd1, dst.data(), dst.size(),
        nic::kAccessLocalWrite | nic::kAccessRemoteWrite);
    // Queue a burst of large writes, then the OS kills the QP while they
    // are in flight.
    for (std::uint64_t i = 0; i < 16; ++i) {
      (void)co_await a.post_send(
          *e.qp0, {.wr_id = i,
                   .opcode = nic::Opcode::kRdmaWrite,
                   .sge = {uptr(src.data()), 1u << 20, smr->lkey},
                   .remote_addr = uptr(dst.data()),
                   .rkey = rmr->rkey});
    }
    f.host0->kernel().revoke_qp(*e.qp0);
    for (int i = 0; i < 16; ++i) {
      nic::Cqe wc = co_await a.wait_one(*e.scq0);
      if (wc.status == nic::WcStatus::kWorkRequestFlushed) {
        ++flushed;
      } else if (wc.status == nic::WcStatus::kSuccess) {
        ++succeeded;
      }
    }
  }(f, flushed, succeeded));
  EXPECT_EQ(flushed + succeeded, 16);
  EXPECT_GT(flushed, 0) << "queued WRs behind the revocation must flush";
}

TEST(Fault, PolicingDenialStormDoesNotWedgeTheStack) {
  TwoHostFixture f;
  // 0-rate policing bucket: every send is denied with EAGAIN.
  auto qos = std::make_unique<os::QosTokenBucket>(
      1.0, 1, os::QosTokenBucket::Mode::kPolice);
  f.host0->kernel().policies().install(std::move(qos));
  int denied = 0, delivered = 0;
  run_task(f.engine, [](TwoHostFixture& f, int& denied, int& delivered)
                         -> sim::Task<> {
    verbs::Context a(*f.host0, 0, {.mode = verbs::DataplaneMode::kCord});
    verbs::Context b(*f.host1, 0, {});
    RcEndpoints e = co_await cord::testing::connect_rc(a, b);
    std::vector<std::byte> src(256), dst(256);
    auto* smr = co_await a.reg_mr(e.pd0, src.data(), 256, 0);
    auto* rmr = co_await b.reg_mr(e.pd1, dst.data(), 256, nic::kAccessLocalWrite);
    (void)co_await b.post_recv(*e.qp1, {1, {uptr(dst.data()), 256, rmr->lkey}});
    for (int i = 0; i < 50; ++i) {
      const int rc = co_await a.post_send(
          *e.qp0, {.sge = {uptr(src.data()), 256, smr->lkey}});
      if (rc == -11) {
        ++denied;
      } else if (rc == 0) {
        ++delivered;
      }
      co_await f.engine.delay(sim::us(1));
    }
    // The QP must still be healthy: remove the policy and send for real.
    f.host0->kernel().policies().remove("qos-token-bucket");
    int rc = co_await a.post_send(
        *e.qp0, {.sge = {uptr(src.data()), 256, smr->lkey}});
    if (rc != 0) throw std::runtime_error("post after policy removal failed");
    (void)co_await b.wait_one(*e.rcq1);
    ++delivered;
  }(f, denied, delivered));
  EXPECT_GT(denied, 40);
  EXPECT_GE(delivered, 1);
}

TEST(Fault, CqOverflowLatchesUnderCompletionStorm) {
  TwoHostFixture f;
  run_task(f.engine, [](TwoHostFixture& f) -> sim::Task<> {
    verbs::Context a(*f.host0, 0, {});
    verbs::Context b(*f.host1, 0, {});
    auto pd_a = co_await a.alloc_pd();
    auto pd_b = co_await b.alloc_pd();
    auto* tiny_scq = co_await a.create_cq(4);  // absurdly small
    auto* rcq_a = co_await a.create_cq(64);
    auto* scq_b = co_await b.create_cq(64);
    auto* rcq_b = co_await b.create_cq(512);
    auto* qp_a = co_await a.create_qp(
        {nic::QpType::kRC, pd_a, tiny_scq, rcq_a, 64, 64, 220});
    auto* qp_b = co_await b.create_qp(
        {nic::QpType::kRC, pd_b, scq_b, rcq_b, 64, 512, 220});
    co_await a.connect_qp(*qp_a, {b.node(), qp_b->qpn()});
    co_await b.connect_qp(*qp_b, {a.node(), qp_a->qpn()});
    std::vector<std::byte> src(8), dst(64);
    auto* rmr = co_await b.reg_mr(pd_b, dst.data(), 64, nic::kAccessLocalWrite);
    for (int i = 0; i < 16; ++i) {
      (void)co_await b.post_recv(*qp_b, {1, {uptr(dst.data()), 64, rmr->lkey}});
    }
    // Fire 16 signaled sends without ever polling the tiny send CQ.
    for (int i = 0; i < 16; ++i) {
      (void)co_await a.post_send(
          *qp_a, {.sge = {uptr(src.data()), 8, 0}, .inline_data = true});
    }
    co_await f.engine.delay(sim::ms(1));
    if (!tiny_scq->overflowed()) throw std::runtime_error("expected overflow");
  }(f));
}

TEST(Fault, DestroyQpWithWorkInFlightIsSafe) {
  TwoHostFixture f;
  run_task(f.engine, [](TwoHostFixture& f) -> sim::Task<> {
    verbs::Context a(*f.host0, 0, {});
    verbs::Context b(*f.host1, 0, {});
    RcEndpoints e = co_await cord::testing::connect_rc(a, b);
    std::vector<std::byte> src(1 << 20), dst(1 << 20);
    auto* smr = co_await a.reg_mr(e.pd0, src.data(), src.size(), 0);
    auto* rmr = co_await b.reg_mr(
        e.pd1, dst.data(), dst.size(),
        nic::kAccessLocalWrite | nic::kAccessRemoteWrite);
    (void)co_await a.post_send(
        *e.qp0, {.opcode = nic::Opcode::kRdmaWrite,
                 .sge = {uptr(src.data()), 1u << 20, smr->lkey},
                 .remote_addr = uptr(dst.data()),
                 .rkey = rmr->rkey});
    // Destroy the QP while the transfer is mid-flight; the simulation
    // must neither crash nor deliver a completion to freed state.
    co_await a.destroy_qp(*e.qp0);
    co_await f.engine.delay(sim::ms(2));
  }(f));
}

TEST(Fault, EventWaitRacingCompletionDoesNotSleepForever) {
  TwoHostFixture f;
  run_task(f.engine, [](TwoHostFixture& f) -> sim::Task<> {
    verbs::Context a(*f.host0, 0, {});
    verbs::Context b(*f.host1, 0, {});
    RcEndpoints e = co_await cord::testing::connect_rc(a, b);
    std::vector<std::byte> src(8), dst(64);
    auto* rmr = co_await b.reg_mr(e.pd1, dst.data(), 64, nic::kAccessLocalWrite);
    (void)co_await b.post_recv(*e.qp1, {1, {uptr(dst.data()), 64, rmr->lkey}});
    (void)co_await a.post_send(
        *e.qp0, {.sge = {uptr(src.data()), 8, 0}, .inline_data = true});
    // Let the completion land *before* the event wait starts: the
    // arm-then-recheck dance must notice it and return immediately.
    co_await f.engine.delay(sim::ms(1));
    nic::Cqe wc = co_await b.wait_one_event(*e.rcq1, sim::ms(5));
    if (wc.status != nic::WcStatus::kSuccess) throw std::runtime_error("bad wc");
  }(f));
}

TEST(Fault, ShapingPolicyPacesButDeliversEverything) {
  TwoHostFixture f;
  auto qos = std::make_unique<os::QosTokenBucket>(
      /*1 GB/s*/ 1e9, /*burst*/ 64 * 1024, os::QosTokenBucket::Mode::kShape);
  f.host0->kernel().policies().install(std::move(qos));
  sim::Time elapsed = 0;
  run_task(f.engine, [](TwoHostFixture& f, sim::Time& elapsed) -> sim::Task<> {
    verbs::Context a(*f.host0, 0, {.mode = verbs::DataplaneMode::kCord});
    verbs::Context b(*f.host1, 0, {});
    RcEndpoints e = co_await cord::testing::connect_rc(a, b);
    constexpr std::size_t kChunk = 64 * 1024;
    std::vector<std::byte> src(kChunk), dst(kChunk);
    auto* smr = co_await a.reg_mr(e.pd0, src.data(), kChunk, 0);
    auto* rmr = co_await b.reg_mr(
        e.pd1, dst.data(), kChunk,
        nic::kAccessLocalWrite | nic::kAccessRemoteWrite);
    const sim::Time t0 = f.engine.now();
    for (int i = 0; i < 64; ++i) {  // 4 MiB at 1 GB/s -> >= 4 ms
      int rc = co_await a.post_send(
          *e.qp0, {.opcode = nic::Opcode::kRdmaWrite,
                   .sge = {uptr(src.data()), kChunk, smr->lkey},
                   .remote_addr = uptr(dst.data()),
                   .rkey = rmr->rkey});
      if (rc != 0) throw std::runtime_error("shaped post failed");
      (void)co_await a.wait_one(*e.scq0);
    }
    elapsed = f.engine.now() - t0;
  }(f, elapsed));
  // 4 MiB minus the 64 KiB burst at 1 GB/s: >= ~4.1 ms (wire alone would
  // take ~0.34 ms).
  EXPECT_GT(sim::to_ms(elapsed), 3.5);
}

}  // namespace
}  // namespace cord
