// MPI World mechanics: rank placement, traffic accounting, configuration
// knobs (eager threshold, kernel-routed polls), and error propagation.
#include <gtest/gtest.h>

#include "mpi/world.hpp"
#include "os/policies.hpp"

namespace cord::mpi {
namespace {

TEST(World, BlockDistributionAcrossHosts) {
  core::System sys(core::system_l(), 2);
  World world(sys, 10, {});
  for (int r = 0; r < 5; ++r) EXPECT_EQ(world.host_of(r), 0) << "rank " << r;
  for (int r = 5; r < 10; ++r) EXPECT_EQ(world.host_of(r), 1) << "rank " << r;
}

TEST(World, TrafficCountersGrowWithCommunication) {
  core::System sys(core::system_l(), 2);
  World world(sys, 4, {});
  const World::Traffic before = world.traffic();
  (void)world.run([](Rank& r) -> sim::Task<> {
    std::vector<std::byte> buf(1024);
    const int peer = r.id() ^ 1;
    co_await r.sendrecv<std::byte>(peer, 1, buf, peer, 1, buf);
  });
  const World::Traffic after = world.traffic();
  EXPECT_GT(after.messages, before.messages);
  EXPECT_GE(after.bytes - before.bytes, 4u * 1024u)
      << "four ranks exchanged 1 KiB each";
}

TEST(World, RankExceptionPropagatesOutOfRun) {
  core::System sys(core::system_l(), 2);
  World world(sys, 4, {});
  EXPECT_THROW(
      (void)world.run([](Rank& r) -> sim::Task<> {
        co_await r.barrier();
        if (r.id() == 2) throw std::logic_error("rank 2 exploded");
      }),
      std::logic_error);
}

TEST(World, EagerThresholdKnobChangesProtocol) {
  // With a tiny eager threshold, a 1 KiB message must travel by
  // rendezvous: the NIC sees an extra control round trip (RTS + read +
  // FIN) compared to the one-shot eager send.
  auto messages_for = [](std::size_t threshold) {
    core::System sys(core::system_l(), 2);
    World world(sys, 2, {.eager_threshold = threshold});
    (void)world.run([](Rank& r) -> sim::Task<> {
      std::vector<std::byte> buf(1024);
      if (r.id() == 0) {
        co_await r.send<std::byte>(1, 1, buf);
      } else {
        (void)co_await r.recv<std::byte>(0, 1, buf);
      }
    });
    return world.traffic().messages;
  };
  EXPECT_GT(messages_for(128), messages_for(4096))
      << "rendezvous needs more wire messages than eager";
}

TEST(World, KernelRoutedPollsGenerateSyscallStorm) {
  auto syscalls_for = [](bool poll_via_kernel) {
    core::System sys(core::system_l(), 2);
    World world(sys, 2,
                {.net = NetMode::kCord, .cord_poll_via_kernel = poll_via_kernel});
    (void)world.run([](Rank& r) -> sim::Task<> {
      std::vector<std::byte> buf(256);
      const int peer = r.id() ^ 1;
      for (int i = 0; i < 10; ++i) {
        co_await r.sendrecv<std::byte>(peer, 1, buf, peer, 1, buf);
      }
    });
    return sys.host(0).kernel().syscall_count() +
           sys.host(1).kernel().syscall_count();
  };
  // The absolute counts are dominated by the SRQ prefill (1024 posted
  // receives per rank, each a CoRD syscall); the poll routing must add a
  // clear increment on top.
  EXPECT_GT(syscalls_for(true), syscalls_for(false) + 100)
      << "routing poll_cq through the kernel adds per-poll syscalls";
}

TEST(World, TenantIdReachesThePolicyLayer) {
  core::System sys(core::system_l(), 2);
  auto& stats = static_cast<os::StatsCollector&>(
      sys.host(0).kernel().policies().install(
          std::make_unique<os::StatsCollector>()));
  World world(sys, 2, {.net = NetMode::kCord, .tenant = 77});
  (void)world.run([](Rank& r) -> sim::Task<> {
    std::vector<std::byte> buf(64);
    if (r.id() == 0) {
      co_await r.send<std::byte>(1, 1, buf);
    } else {
      (void)co_await r.recv<std::byte>(0, 1, buf);
    }
  });
  EXPECT_GT(stats.tenant(77).post_sends, 0u)
      << "the whole MPI stack must run under the configured tenant";
}

TEST(World, SingleHostSystemAlsoWorks) {
  // All ranks on one host: everything rides the NIC loopback.
  core::System sys(core::system_l(), 1);
  World world(sys, 4, {});
  const sim::Time t = world.run([](Rank& r) -> sim::Task<> {
    std::vector<double> in{1.0};
    std::vector<double> out(1);
    co_await r.allreduce<double>(in, out, Op::kSum);
    if (out[0] != 4.0) throw std::runtime_error("loopback allreduce wrong");
  });
  EXPECT_GT(t, 0);
}

}  // namespace
}  // namespace cord::mpi
