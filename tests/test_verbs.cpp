// Integration tests for the verbs layer: bypass vs CoRD dataplane modes,
// mixed-mode communication, inline fallback, poll routing and timing
// invariants (CoRD pays a constant per-op premium, nothing more).
#include <gtest/gtest.h>

#include "sim/join.hpp"
#include "test_util.hpp"

namespace cord::verbs {
namespace {

using cord::testing::RcEndpoints;
using cord::testing::TwoHostFixture;
using cord::testing::run_task;
using cord::testing::uptr;
using os::TenantId;

/// One ping-pong round trip (send + wait on both sides), returns the
/// round-trip virtual time measured at the client.
sim::Task<sim::Time> pingpong_once(Context& client, Context& server,
                                   RcEndpoints& e, std::size_t size) {
  std::vector<std::byte> cbuf(size, std::byte{0xAB}), sbuf(size);
  auto* cmr = co_await client.reg_mr(
      e.pd0, cbuf.data(), cbuf.size(), nic::kAccessLocalWrite);
  auto* smr = co_await server.reg_mr(
      e.pd1, sbuf.data(), sbuf.size(), nic::kAccessLocalWrite);

  (void)co_await server.post_recv(*e.qp1, {1, {uptr(sbuf.data()),
                                               static_cast<std::uint32_t>(size),
                                               smr->lkey}});
  (void)co_await client.post_recv(*e.qp0, {2, {uptr(cbuf.data()),
                                               static_cast<std::uint32_t>(size),
                                               cmr->lkey}});
  const sim::Time t0 = client.core().engine().now();

  // Server side echoes. Joined before co_return: it captures frame-local
  // state by reference, so it must not outlive this coroutine.
  sim::Joinable srv(client.core().engine(),
                    [](Context& server, RcEndpoints& e,
                       std::vector<std::byte>& sbuf,
                       std::uint32_t lkey) -> sim::Task<> {
    nic::Cqe wc = co_await server.wait_one(*e.rcq1);
    if (wc.status != nic::WcStatus::kSuccess) throw std::runtime_error("server recv");
    (void)co_await server.post_send(
        *e.qp1, {.sge = {uptr(sbuf.data()),
                         static_cast<std::uint32_t>(sbuf.size()), lkey}});
    (void)co_await server.wait_one(*e.scq1);
  }(server, e, sbuf, smr->lkey));

  (void)co_await client.post_send(
      *e.qp0, {.sge = {uptr(cbuf.data()), static_cast<std::uint32_t>(size),
                       cmr->lkey}});
  (void)co_await client.wait_one(*e.scq0);
  nic::Cqe wc = co_await client.wait_one(*e.rcq0);
  if (wc.status != nic::WcStatus::kSuccess) throw std::runtime_error("client recv");
  const sim::Time rtt = client.core().engine().now() - t0;
  co_await srv.join();
  co_return rtt;
}

sim::Time measure_rtt(DataplaneMode client_mode, DataplaneMode server_mode,
                      std::size_t size, bool poll_via_kernel = true) {
  TwoHostFixture f;
  sim::Time rtt = 0;
  run_task(f.engine, [](TwoHostFixture& f, DataplaneMode cm, DataplaneMode sm,
                        std::size_t size, bool pvk, sim::Time& rtt) -> sim::Task<> {
    Context client(*f.host0, 0, {.mode = cm, .poll_via_kernel = pvk});
    Context server(*f.host1, 0, {.mode = sm, .poll_via_kernel = pvk});
    RcEndpoints e = co_await cord::testing::connect_rc(client, server);
    rtt = co_await pingpong_once(client, server, e, size);
  }(f, client_mode, server_mode, size, poll_via_kernel, rtt));
  return rtt;
}

TEST(Modes, BypassPingPongInCx6Ballpark) {
  const sim::Time rtt = measure_rtt(DataplaneMode::kBypass, DataplaneMode::kBypass, 64);
  // CX-6 class small-message RTT: a handful of microseconds.
  EXPECT_GT(sim::to_us(rtt), 1.0);
  EXPECT_LT(sim::to_us(rtt), 8.0);
}

TEST(Modes, CordAddsBoundedConstantOverhead) {
  const sim::Time bp = measure_rtt(DataplaneMode::kBypass, DataplaneMode::kBypass, 4096);
  const sim::Time cd = measure_rtt(DataplaneMode::kCord, DataplaneMode::kCord, 4096);
  const double overhead_us = sim::to_us(cd - bp);
  EXPECT_GT(overhead_us, 0.2) << "CoRD must cost something";
  EXPECT_LT(overhead_us, 6.0) << "but only a few syscalls' worth";
}

TEST(Modes, CordOverheadIsSizeIndependent) {
  // The paper: "We observed the same numbers for other message sizes."
  const double o4k = sim::to_us(
      measure_rtt(DataplaneMode::kCord, DataplaneMode::kCord, 4096) -
      measure_rtt(DataplaneMode::kBypass, DataplaneMode::kBypass, 4096));
  const double o64k = sim::to_us(
      measure_rtt(DataplaneMode::kCord, DataplaneMode::kCord, 65536) -
      measure_rtt(DataplaneMode::kBypass, DataplaneMode::kBypass, 65536));
  EXPECT_NEAR(o4k, o64k, 0.8) << "per-message overhead must not scale with size";
}

TEST(Modes, MixedModesInteroperate) {
  // CoRD on one side only — the configurations of Fig. 3.
  const sim::Time cd_bp = measure_rtt(DataplaneMode::kCord, DataplaneMode::kBypass, 4096);
  const sim::Time bp_cd = measure_rtt(DataplaneMode::kBypass, DataplaneMode::kCord, 4096);
  const sim::Time bp_bp = measure_rtt(DataplaneMode::kBypass, DataplaneMode::kBypass, 4096);
  const sim::Time cd_cd = measure_rtt(DataplaneMode::kCord, DataplaneMode::kCord, 4096);
  EXPECT_GT(cd_bp, bp_bp);
  EXPECT_GT(bp_cd, bp_bp);
  EXPECT_GT(cd_cd, cd_bp);
  EXPECT_GT(cd_cd, bp_cd);
  // Send/recv is symmetric: each side contributes about equally (paper §5).
  EXPECT_NEAR(sim::to_us(cd_bp - bp_bp), sim::to_us(bp_cd - bp_bp), 1.0);
}

TEST(Modes, UserSpacePollReducesSyscalls) {
  TwoHostFixture f_kernel_poll;
  {
    run_task(f_kernel_poll.engine,
             [](TwoHostFixture& f) -> sim::Task<> {
               Context c0(*f.host0, 0,
                          {.mode = DataplaneMode::kCord, .poll_via_kernel = true});
               Context c1(*f.host1, 0,
                          {.mode = DataplaneMode::kCord, .poll_via_kernel = true});
               RcEndpoints e = co_await cord::testing::connect_rc(c0, c1);
               (void)co_await pingpong_once(c0, c1, e, 64);
             }(f_kernel_poll));
  }
  TwoHostFixture f_user_poll;
  {
    run_task(f_user_poll.engine,
             [](TwoHostFixture& f) -> sim::Task<> {
               Context c0(*f.host0, 0,
                          {.mode = DataplaneMode::kCord, .poll_via_kernel = false});
               Context c1(*f.host1, 0,
                          {.mode = DataplaneMode::kCord, .poll_via_kernel = false});
               RcEndpoints e = co_await cord::testing::connect_rc(c0, c1);
               (void)co_await pingpong_once(c0, c1, e, 64);
             }(f_user_poll));
  }
  EXPECT_GT(f_kernel_poll.host0->kernel().syscall_count(),
            f_user_poll.host0->kernel().syscall_count() + 3)
      << "kernel-routed polling must generate more syscalls";
}

TEST(Inline, CordWithoutInlineSupportFallsBackToDma) {
  // Observable semantics: with inline, the payload snapshots at post time;
  // without inline support the NIC reads the (clobbered) buffer later.
  for (bool inline_support : {true, false}) {
    TwoHostFixture f;
    std::byte delivered{};
    run_task(f.engine, [](TwoHostFixture& f, bool inline_support,
                          std::byte& delivered) -> sim::Task<> {
      Context c0(*f.host0, 0,
                 {.mode = DataplaneMode::kCord, .cord_inline_support = inline_support});
      Context c1(*f.host1, 0, {.mode = DataplaneMode::kCord});
      RcEndpoints e = co_await cord::testing::connect_rc(c0, c1);
      std::vector<std::byte> src(64, std::byte{0x11}), dst(64);
      auto* smr = co_await c0.reg_mr(e.pd0, src.data(), src.size(), 0);
      auto* rmr = co_await c1.reg_mr(e.pd1, dst.data(), dst.size(),
                                     nic::kAccessLocalWrite);
      (void)co_await c1.post_recv(*e.qp1, {1, {uptr(dst.data()), 64, rmr->lkey}});
      (void)co_await c0.post_send(
          *e.qp0, {.sge = {uptr(src.data()), 64, smr->lkey}, .inline_data = true});
      std::fill(src.begin(), src.end(), std::byte{0xFF});  // clobber at once
      (void)co_await c1.wait_one(*e.rcq1);
      delivered = dst[0];
    }(f, inline_support, delivered));
    if (inline_support) {
      EXPECT_EQ(delivered, std::byte{0x11}) << "inline snapshots at post time";
    } else {
      EXPECT_EQ(delivered, std::byte{0xFF})
          << "without inline the DMA reads the live buffer";
    }
  }
}

TEST(Inline, FallbackCostsMoreForSmallMessages) {
  auto rtt_with_inline = [](bool support) {
    TwoHostFixture f;
    sim::Time rtt = 0;
    run_task(f.engine, [](TwoHostFixture& f, bool support, sim::Time& rtt) -> sim::Task<> {
      Context c0(*f.host0, 0,
                 {.mode = DataplaneMode::kCord, .cord_inline_support = support});
      Context c1(*f.host1, 0,
                 {.mode = DataplaneMode::kCord, .cord_inline_support = support});
      RcEndpoints e = co_await cord::testing::connect_rc(c0, c1);
      std::vector<std::byte> cbuf(64), sbuf(64);
      auto* cmr = co_await c0.reg_mr(e.pd0, cbuf.data(), 64, nic::kAccessLocalWrite);
      auto* rmr = co_await c1.reg_mr(e.pd1, sbuf.data(), 64, nic::kAccessLocalWrite);
      (void)co_await c1.post_recv(*e.qp1, {1, {uptr(sbuf.data()), 64, rmr->lkey}});
      const sim::Time t0 = f.engine.now();
      // A valid lkey is required: the no-inline fallback posts a regular
      // DMA'd WQE against the registered buffer (as real apps do).
      (void)co_await c0.post_send(
          *e.qp0, {.sge = {uptr(cbuf.data()), 64, cmr->lkey}, .inline_data = true});
      (void)co_await c1.wait_one(*e.rcq1);
      rtt = f.engine.now() - t0;
    }(f, support, rtt));
    return rtt;
  };
  EXPECT_GT(rtt_with_inline(false), rtt_with_inline(true))
      << "missing inline support must add the DMA fetch to small sends";
}

TEST(WaitOne, TimesOutOnDeadlock) {
  TwoHostFixture f;
  bool threw = false;
  run_task(f.engine, [](TwoHostFixture& f, bool& threw) -> sim::Task<> {
    Context c0(*f.host0, 0, {});
    auto* cq = co_await c0.create_cq(16);
    try {
      (void)co_await c0.wait_one(*cq, sim::ms(1));
    } catch (const std::runtime_error&) {
      threw = true;
    }
  }(f, threw));
  EXPECT_TRUE(threw);
}

TEST(Accounting, SpinTimeAccruesWhilePolling) {
  TwoHostFixture f;
  run_task(f.engine, [](TwoHostFixture& f) -> sim::Task<> {
    Context c0(*f.host0, 0, {});
    auto* cq = co_await c0.create_cq(16);
    try {
      (void)co_await c0.wait_one(*cq, sim::us(100));
    } catch (const std::runtime_error&) {
    }
  }(f));
  EXPECT_GT(f.host0->core(0).time_spin(), sim::us(50))
      << "busy polling must be accounted as spin time";
}

}  // namespace
}  // namespace cord::verbs
