// Tests for cord::trace::causal — waterfall conservation (bit-exact, at
// every shard count and queue backend), critical-path extraction, the
// bounded aggregation layer, the tail-latency watchdog, and the kernel /
// System surfaces they feed.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "perftest/perftest.hpp"
#include "sim/sharded.hpp"
#include "trace/causal/aggregate.hpp"
#include "trace/causal/causal.hpp"
#include "trace/export.hpp"

namespace {

using namespace cord;
namespace causal = trace::causal;

perftest::Params traced(perftest::TestOp op, std::size_t shards,
                        sim::QueueKind queue, int iters = 15) {
  perftest::Params p;
  p.op = op;
  p.msg_size = 4096;
  p.iterations = iters;
  p.warmup = 5;
  p.allow_inline = false;  // non-inline: the chain includes kDmaFetch
  p.client = verbs::ContextOptions{.mode = verbs::DataplaneMode::kCord};
  p.server = verbs::ContextOptions{.mode = verbs::DataplaneMode::kCord};
  p.capture_trace = true;
  p.shards = shards;
  p.queue = queue;
  return p;
}

/// One synthetic record (defaults chosen so chains are easy to read).
trace::Record rec(trace::Point point, sim::Time t, std::uint32_t span,
                  sim::Time dur = 0, std::uint16_t aux = 0,
                  std::uint64_t arg = 0, std::uint8_t node = 0,
                  std::uint32_t qpn = 0x100, std::uint32_t tenant = 1) {
  trace::Record r;
  r.t = t;
  r.dur = dur;
  r.arg = arg;
  r.span = span;
  r.qpn = qpn;
  r.tenant = tenant;
  r.point = point;
  r.node = node;
  r.aux = aux;
  return r;
}

/// The full 10-point chain of one WR: post at 100, sender CQE at 700.
std::vector<trace::Record> golden_chain(std::uint32_t span = 1) {
  using P = trace::Point;
  return {
      rec(P::kVerbsPostSend, 100, span, 0, /*aux=opcode*/ 2, /*arg=bytes*/ 4096),
      rec(P::kSyscallEnter, 150, span),
      rec(P::kWqePost, 200, span, 0, 0, 4096),
      rec(P::kDoorbell, 210, span, /*dur=*/30),
      rec(P::kWqeFetch, 260, span, /*dur=*/40),   // nic-sched ends at 300
      rec(P::kDmaFetch, 300, span, /*dur=*/100),  // dma-fetch ends at 400
      rec(P::kWireTx, 400, span, /*dur=*/150),    // wire ends at 550
      rec(P::kDmaDeliver, 550, span, /*dur=*/50, 0, 0, /*node=*/1),
      rec(P::kCompletion, 650, span, 0, /*aux=RX*/ 1, 0, /*node=*/1),
      rec(P::kCompletion, 700, span, 0, /*aux=TX*/ 0),
  };
}

// ---------------------------------------------------------------------------
// build_waterfall: exact stage widths, conservation, degenerate chains
// ---------------------------------------------------------------------------

TEST(BuildWaterfall, GoldenChainExactWidths) {
  const auto chain = golden_chain();
  const auto w = causal::build_waterfall(chain);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->post_t, 100);
  EXPECT_EQ(w->end_t, 700);
  EXPECT_EQ(w->e2e(), 600);
  EXPECT_EQ(w->qpn, 0x100u);
  EXPECT_EQ(w->tenant, 1u);
  EXPECT_EQ(w->bytes, 4096u);
  EXPECT_EQ(w->opcode, 2u);
  EXPECT_EQ(w->src_node, 0);
  EXPECT_EQ(w->dst_node, 1);

  using S = causal::Stage;
  EXPECT_EQ((*w)[S::kUserPost].span, 50);   // 100 -> 150 (syscall enter)
  EXPECT_EQ((*w)[S::kKernel].span, 50);     // 150 -> 200 (wqe post)
  EXPECT_EQ((*w)[S::kNicSched].span, 100);  // 200 -> 300 (fetch end)
  EXPECT_EQ((*w)[S::kDmaFetch].span, 100);  // 300 -> 400
  EXPECT_EQ((*w)[S::kWire].span, 150);      // 400 -> 550
  EXPECT_EQ((*w)[S::kDeliver].span, 50);    // 550 -> 600
  EXPECT_EQ((*w)[S::kRemoteCqe].span, 50);  // 600 -> 650
  EXPECT_EQ((*w)[S::kAck].span, 50);        // 650 -> 700
  EXPECT_EQ(w->stage_sum(), w->e2e());

  // nic-sched service = doorbell MMIO (30) + reserved fetch slot (40);
  // the remaining 30 is SQ residency / pipeline queueing.
  EXPECT_EQ((*w)[S::kNicSched].service, 70);
  EXPECT_EQ((*w)[S::kNicSched].queue, 30);
  EXPECT_EQ(w->binding(), S::kWire);
}

TEST(BuildWaterfall, IncompleteChainIsNullopt) {
  auto chain = golden_chain();
  chain.pop_back();  // drop the sender completion
  EXPECT_FALSE(causal::build_waterfall(chain).has_value());
  EXPECT_FALSE(causal::build_waterfall({}).has_value());
}

TEST(BuildWaterfall, MissingStagesCollapseToZeroWidth) {
  // Post + sender completion only: everything rides in the final stage,
  // conservation still holds exactly.
  using P = trace::Point;
  const std::vector<trace::Record> chain = {
      rec(P::kVerbsPostSend, 100, 1),
      rec(P::kCompletion, 300, 1, 0, /*aux=TX*/ 0),
  };
  const auto w = causal::build_waterfall(chain);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->e2e(), 200);
  EXPECT_EQ(w->stage_sum(), 200);
  for (std::size_t i = 0; i + 1 < causal::kStageCount; ++i) {
    EXPECT_EQ(w->stages[i].span, 0) << "stage " << i;
  }
  EXPECT_EQ((*w)[causal::Stage::kAck].span, 200);
}

TEST(BuildWaterfall, BypassChainHasZeroKernelStage) {
  // No syscall milestone: user-space work runs to the WQE post, the
  // kernel stage is empty.
  auto chain = golden_chain();
  chain.erase(chain.begin() + 1);  // drop kSyscallEnter
  const auto w = causal::build_waterfall(chain);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ((*w)[causal::Stage::kUserPost].span, 100);  // 100 -> 200
  EXPECT_EQ((*w)[causal::Stage::kKernel].span, 0);
  EXPECT_EQ(w->stage_sum(), w->e2e());
}

TEST(BuildWaterfall, OutOfOrderMilestonesAreClampedNotNegative) {
  // A deliver milestone beyond the sender CQE (overlapping ACK return)
  // must clamp to the end, never produce negative widths.
  using P = trace::Point;
  const std::vector<trace::Record> chain = {
      rec(P::kVerbsPostSend, 100, 1),
      rec(P::kWireTx, 150, 1, /*dur=*/100),       // wire ends at 250
      rec(P::kDmaDeliver, 260, 1, /*dur=*/500),   // ends at 760 — past end!
      rec(P::kCompletion, 400, 1, 0, /*aux=*/0),  // end at 400
  };
  const auto w = causal::build_waterfall(chain);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->e2e(), 300);
  EXPECT_EQ(w->stage_sum(), 300);
  for (const causal::StageSlice& s : w->stages) {
    EXPECT_GE(s.span, 0);
    EXPECT_GE(s.service, 0);
    EXPECT_GE(s.queue, 0);
  }
  EXPECT_EQ((*w)[causal::Stage::kDeliver].span, 150);  // 250 -> clamp(760)=400
  EXPECT_EQ((*w)[causal::Stage::kAck].span, 0);
}

// ---------------------------------------------------------------------------
// Conservation on real traces: bit-exact at 1/2/4 shards, both backends,
// all perftest ops
// ---------------------------------------------------------------------------

TEST(Conservation, BitExactAcrossShardsBackendsAndOps) {
  const auto cfg = core::system_l();
  for (perftest::TestOp op : {perftest::TestOp::kSend, perftest::TestOp::kWrite,
                              perftest::TestOp::kRead}) {
    for (std::size_t shards : {1u, 2u, 4u}) {
      for (sim::QueueKind q : {sim::QueueKind::kHeap, sim::QueueKind::kCalendar}) {
        const auto r = perftest::run_latency(cfg, traced(op, shards, q));
        ASSERT_EQ(r.trace_dropped, 0u);
        const auto falls = causal::build_waterfalls(r.trace);
        ASSERT_FALSE(falls.empty())
            << "op=" << static_cast<int>(op) << " shards=" << shards;
        // Independent end-to-end per span, straight from the raw records.
        std::map<std::uint32_t, sim::Time> post, done;
        for (const trace::Record& rc : r.trace) {
          if (rc.span == 0) continue;
          if (rc.point == trace::Point::kVerbsPostSend &&
              (!post.count(rc.span) || rc.t < post[rc.span])) {
            post[rc.span] = rc.t;
          }
          if (rc.point == trace::Point::kCompletion && rc.aux == 0 &&
              (!done.count(rc.span) || rc.t > done[rc.span])) {
            done[rc.span] = rc.t;
          }
        }
        for (const causal::Waterfall& w : falls) {
          // The conservation invariant: stage widths sum to the span's
          // end-to-end latency, bit-exact in integer picoseconds.
          ASSERT_EQ(w.stage_sum(), w.e2e())
              << "op=" << static_cast<int>(op) << " shards=" << shards
              << " qpn=" << w.qpn;
          ASSERT_TRUE(post.count(w.span) && done.count(w.span));
          ASSERT_EQ(w.e2e(), done[w.span] - post[w.span]);
          for (const causal::StageSlice& s : w.stages) {
            ASSERT_EQ(s.span, s.service + s.queue);
            ASSERT_GE(s.service, 0);
            ASSERT_GE(s.queue, 0);
          }
        }
      }
    }
  }
}

TEST(Conservation, ReportsIdenticalAcrossShardCountsAndBackends) {
  const auto cfg = core::system_l();
  auto reports = [&](std::size_t shards, sim::QueueKind q) {
    const auto r =
        perftest::run_latency(cfg, traced(perftest::TestOp::kSend, shards, q));
    causal::Aggregator agg;
    agg.ingest(r.trace);
    EXPECT_GT(agg.spans(), 0u);
    return agg.latency_report() + "\n---\n" + agg.critpath_report();
  };
  const std::string golden = reports(1, sim::QueueKind::kHeap);
  for (std::size_t shards : {2u, 4u}) {
    EXPECT_EQ(reports(shards, sim::QueueKind::kHeap), golden)
        << "shards=" << shards;
  }
  for (std::size_t shards : {1u, 2u, 4u}) {
    EXPECT_EQ(reports(shards, sim::QueueKind::kCalendar), golden)
        << "calendar shards=" << shards;
  }
}

// ---------------------------------------------------------------------------
// CriticalPath aggregation
// ---------------------------------------------------------------------------

TEST(CriticalPath, AccumulatesAndPicksDominantStage) {
  std::vector<causal::Waterfall> falls;
  for (std::uint32_t i = 1; i <= 3; ++i) {
    const auto w = causal::build_waterfall(golden_chain(i));
    ASSERT_TRUE(w.has_value());
    falls.push_back(*w);
  }
  const causal::CriticalPath cp = causal::critical_path(falls);
  EXPECT_EQ(cp.spans, 3u);
  EXPECT_EQ(cp.total_e2e, 3 * 600);
  EXPECT_EQ(cp.dominant(), causal::Stage::kWire);
  EXPECT_EQ(cp.binding[static_cast<std::size_t>(causal::Stage::kWire)], 3u);
  using S = causal::Stage;
  EXPECT_EQ(cp.stage_span[static_cast<std::size_t>(S::kNicSched)], 300);
  EXPECT_EQ(cp.stage_service[static_cast<std::size_t>(S::kNicSched)], 210);
  EXPECT_EQ(cp.stage_queue[static_cast<std::size_t>(S::kNicSched)], 90);

  const std::string report = causal::critical_path_report(cp);
  EXPECT_NE(report.find("dominant stage wire"), std::string::npos);
  EXPECT_NE(report.find("nic-sched"), std::string::npos);
}

TEST(CriticalPath, ShardSyncSectionUsesBarrierWaits) {
  causal::CriticalPath cp;
  const auto w = causal::build_waterfall(golden_chain());
  ASSERT_TRUE(w.has_value());
  cp.add(*w);
  sim::ShardStats stats;
  stats.windows = 12;
  stats.barrier_wait_ns = {1'000'000, 500'000};
  stats.barrier_waits = {24, 24};
  const std::string report = causal::critical_path_report(cp, &stats);
  EXPECT_NE(report.find("shard-sync (wall clock)"), std::string::npos);
  EXPECT_NE(report.find("1.500 ms barrier idle across 2 shards"),
            std::string::npos);
  EXPECT_NE(report.find("48 waits, 12 windows"), std::string::npos);
  // And without stats the report stays shard-invariant (no sync section).
  EXPECT_EQ(causal::critical_path_report(cp).find("shard-sync"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Aggregator: bounded state, incremental ingest, watchdog
// ---------------------------------------------------------------------------

/// A minimal chain with an exact e2e, for histogram-level tests.
std::vector<trace::Record> simple_span(std::uint32_t span, sim::Time t0,
                                       sim::Time e2e, std::uint32_t tenant,
                                       std::uint32_t qpn = 0x100) {
  using P = trace::Point;
  return {
      rec(P::kVerbsPostSend, t0, span, 0, 0, 64, 0, qpn, tenant),
      rec(P::kWireTx, t0, span, e2e / 2, 0, 0, 0, qpn, tenant),
      rec(P::kCompletion, t0 + e2e, span, 0, 0, 0, 0, qpn, tenant),
  };
}

TEST(Aggregator, TopKReservoirKeepsSlowestSorted) {
  causal::Aggregator agg(/*top_k=*/4);
  std::vector<trace::Record> all;
  for (std::uint32_t i = 1; i <= 10; ++i) {
    const auto chain = simple_span(i, 1000 * i, 100 * i, /*tenant=*/1);
    all.insert(all.end(), chain.begin(), chain.end());
  }
  agg.ingest(all);
  EXPECT_EQ(agg.spans(), 10u);
  ASSERT_EQ(agg.slowest().size(), 4u);
  EXPECT_EQ(agg.slowest()[0].e2e(), 1000);
  EXPECT_EQ(agg.slowest()[1].e2e(), 900);
  EXPECT_EQ(agg.slowest()[2].e2e(), 800);
  EXPECT_EQ(agg.slowest()[3].e2e(), 700);
  EXPECT_EQ(agg.pending_spans(), 0u);
}

TEST(Aggregator, IncrementalIngestMatchesOneShot) {
  std::vector<trace::Record> all;
  for (std::uint32_t i = 1; i <= 6; ++i) {
    const auto chain = simple_span(i, 1000 * i, 150 * i, /*tenant=*/i % 2);
    all.insert(all.end(), chain.begin(), chain.end());
  }
  causal::Aggregator one;
  one.ingest(all);
  causal::Aggregator inc;
  // Record-at-a-time: spans finalize as their completions arrive.
  for (const trace::Record& r : all) {
    inc.ingest(std::span<const trace::Record>(&r, 1));
  }
  EXPECT_EQ(inc.spans(), one.spans());
  EXPECT_EQ(inc.latency_report(), one.latency_report());
  EXPECT_EQ(inc.critpath_report(), one.critpath_report());
}

TEST(Aggregator, PerTenantAndPerQpHistograms) {
  causal::Aggregator agg;
  std::vector<trace::Record> all;
  auto add = [&](std::uint32_t span, sim::Time e2e, std::uint32_t tenant,
                 std::uint32_t qpn) {
    const auto chain = simple_span(span, 1000 * span, e2e, tenant, qpn);
    all.insert(all.end(), chain.begin(), chain.end());
  };
  add(1, 100, 7, 0x100);
  add(2, 200, 7, 0x100);
  add(3, 400, 9, 0x200);
  agg.ingest(all);
  ASSERT_NE(agg.tenant_e2e(7), nullptr);
  EXPECT_EQ(agg.tenant_e2e(7)->count(), 2u);
  EXPECT_EQ(agg.tenant_e2e(7)->max(), 200u);
  ASSERT_NE(agg.qp_e2e(0x200), nullptr);
  EXPECT_EQ(agg.qp_e2e(0x200)->count(), 1u);
  EXPECT_EQ(agg.tenant_e2e(8), nullptr);
  EXPECT_EQ(agg.qp_e2e(0x300), nullptr);
  EXPECT_EQ(agg.tenants(), (std::vector<std::uint32_t>{7, 9}));
  EXPECT_EQ(agg.tenant_report(8), "");  // unseen tenant: proc convention
  EXPECT_NE(agg.tenant_report(7).find("tenant 7:"), std::string::npos);
}

TEST(Aggregator, WatchdogFiresOnlyForOverBudgetTenant) {
  causal::Aggregator agg;
  agg.set_slo(/*tenant=*/9, {/*percentile=*/99.0, /*budget=*/500});
  EXPECT_TRUE(agg.watchdog_armed());
  std::vector<trace::Record> all;
  for (std::uint32_t i = 1; i <= 8; ++i) {
    // Tenant 9: e2e 2000 (4x over budget). Tenant 7: same latency, no SLO.
    const auto t9 = simple_span(2 * i, 10'000 * i, 2000, 9, 0x900);
    const auto t7 = simple_span(2 * i + 1, 10'000 * i + 5000, 2000, 7, 0x700);
    all.insert(all.end(), t9.begin(), t9.end());
    all.insert(all.end(), t7.begin(), t7.end());
  }
  agg.ingest(all);
  EXPECT_EQ(agg.spans(), 16u);
  EXPECT_GT(agg.watchdog_violations(), 0u);
  EXPECT_EQ(agg.watchdog_violations(9), agg.watchdog_violations());
  EXPECT_EQ(agg.watchdog_violations(7), 0u);
  ASSERT_FALSE(agg.watchdog_events().empty());
  for (const causal::WatchdogEvent& e : agg.watchdog_events()) {
    EXPECT_EQ(e.tenant, 9u);
    EXPECT_EQ(e.qpn, 0x900u);
    EXPECT_EQ(e.e2e, 2000);
    EXPECT_GT(e.observed_px, 500.0);
    EXPECT_EQ(e.blamed, causal::Stage::kWire);  // wire-tx dur = e2e/2 binds
  }
  EXPECT_NE(agg.latency_report().find("watchdog:"), std::string::npos);
  EXPECT_NE(agg.critpath_report().find("watchdog events"), std::string::npos);
}

TEST(Aggregator, WatchdogQuietWhenUnderBudget) {
  causal::Aggregator agg;
  agg.set_default_slo({99.0, /*budget=*/1'000'000});
  std::vector<trace::Record> all;
  for (std::uint32_t i = 1; i <= 8; ++i) {
    const auto chain = simple_span(i, 10'000 * i, 2000, /*tenant=*/3);
    all.insert(all.end(), chain.begin(), chain.end());
  }
  agg.ingest(all);
  EXPECT_EQ(agg.spans(), 8u);
  EXPECT_EQ(agg.watchdog_violations(), 0u);
  EXPECT_TRUE(agg.watchdog_events().empty());
}

TEST(Aggregator, ClearKeepsSloConfiguration) {
  causal::Aggregator agg;
  agg.set_slo(9, {99.0, 500});
  agg.ingest(simple_span(1, 1000, 2000, 9));
  EXPECT_EQ(agg.spans(), 1u);
  EXPECT_GT(agg.watchdog_violations(), 0u);
  agg.clear();
  EXPECT_EQ(agg.spans(), 0u);
  EXPECT_EQ(agg.watchdog_violations(), 0u);
  EXPECT_TRUE(agg.watchdog_armed());  // SLO survives the clear
  agg.ingest(simple_span(2, 1000, 2000, 9));
  EXPECT_GT(agg.watchdog_violations(), 0u);  // re-arms against new data
}

// ---------------------------------------------------------------------------
// Kernel and System surfaces
// ---------------------------------------------------------------------------

sim::Task<> ten_sends(core::System& sys, std::uint32_t& qpn_out,
                      int& failures) {
  const auto mode = verbs::DataplaneMode::kCord;
  verbs::Context a(sys.host(0), 0, sys.options(mode, /*tenant=*/5));
  verbs::Context b(sys.host(1), 0, sys.options(mode, /*tenant=*/5));
  auto pd_a = co_await a.alloc_pd();
  auto pd_b = co_await b.alloc_pd();
  auto* scq_a = co_await a.create_cq(64);
  auto* rcq_a = co_await a.create_cq(64);
  auto* scq_b = co_await b.create_cq(64);
  auto* rcq_b = co_await b.create_cq(64);
  auto* qp_a =
      co_await a.create_qp({nic::QpType::kRC, pd_a, scq_a, rcq_a, 64, 64, 220});
  auto* qp_b =
      co_await b.create_qp({nic::QpType::kRC, pd_b, scq_b, rcq_b, 64, 64, 220});
  co_await a.connect_qp(*qp_a, {b.node(), qp_b->qpn()});
  co_await b.connect_qp(*qp_b, {a.node(), qp_a->qpn()});
  qpn_out = qp_a->qpn();

  std::vector<std::byte> src(64, std::byte{0x11});
  std::vector<std::byte> dst(64);
  auto* mr_b =
      co_await b.reg_mr(pd_b, dst.data(), dst.size(), nic::kAccessLocalWrite);
  for (int i = 0; i < 10; ++i) {
    (void)co_await b.post_recv(
        *qp_b,
        {1, {reinterpret_cast<std::uintptr_t>(dst.data()), 64, mr_b->lkey}});
    int rc = co_await a.post_send(
        *qp_a, {.sge = {reinterpret_cast<std::uintptr_t>(src.data()), 64, 0},
                .inline_data = true});
    if (rc != 0) ++failures;
    nic::Cqe wc = co_await a.wait_one(*scq_a);
    if (wc.status != nic::WcStatus::kSuccess) ++failures;
    (void)co_await b.wait_one(*rcq_b);
  }
}

TEST(KernelCausal, ProcReadLatencySurfaces) {
  core::System sys(core::system_l(), 2);
  os::Kernel& kernel = sys.host(0).kernel();
  // Unmeetable SLO (1 ps): every completed span violates.
  kernel.set_latency_slo(/*tenant=*/5, 99.0, /*budget=*/1);
  sys.set_tracing(true);
  std::uint32_t qpn = 0;
  int failures = 0;
  sys.engine().spawn(ten_sends(sys, qpn, failures));
  sys.engine().run();
  ASSERT_EQ(failures, 0);

  const std::string latency = kernel.proc_read("latency");
  EXPECT_NE(latency.find("latency: spans="), std::string::npos);
  EXPECT_NE(latency.find("nic-sched"), std::string::npos);
  EXPECT_NE(latency.find("watchdog: violations="), std::string::npos);

  const std::string tenant = kernel.proc_read("latency/5");
  EXPECT_NE(tenant.find("tenant 5: spans=10"), std::string::npos);
  EXPECT_EQ(kernel.proc_read("latency/42"), "");  // unseen tenant

  const std::string critpath = kernel.proc_read("critpath");
  EXPECT_NE(critpath.find("critical-path: 10 spans"), std::string::npos);
  EXPECT_NE(critpath.find("slowest"), std::string::npos);
  EXPECT_NE(critpath.find("watchdog events"), std::string::npos);

  EXPECT_EQ(kernel.causal().spans(), 10u);
  EXPECT_EQ(kernel.causal().watchdog_violations(5), 10u);
  EXPECT_FALSE(kernel.watchdog_events().empty());
  // The registry gauge mirrors the same count (refresh happens at read).
  EXPECT_NE(kernel.proc_read("metrics").find("kernel.watchdog_violations 10"),
            std::string::npos);
}

TEST(KernelCausal, SurfacesEmptyWithoutTracing) {
  core::System sys(core::system_l(), 2);
  os::Kernel& kernel = sys.host(0).kernel();
  std::uint32_t qpn = 0;
  int failures = 0;
  sys.engine().spawn(ten_sends(sys, qpn, failures));
  sys.engine().run();
  ASSERT_EQ(failures, 0);
  // Tracing disarmed: the causal layer saw nothing and says so.
  EXPECT_NE(kernel.proc_read("latency").find("no completed spans"),
            std::string::npos);
  EXPECT_NE(kernel.proc_read("critpath").find("no completed spans"),
            std::string::npos);
  EXPECT_EQ(kernel.proc_read("latency/5"), "");
  EXPECT_EQ(kernel.causal().spans(), 0u);
}

TEST(SystemCausal, AnalyzeCausalFeedsGauges) {
  core::System sys(core::system_l(), 2);
  sys.set_tracing(true);
  std::uint32_t qpn = 0;
  int failures = 0;
  sys.engine().spawn(ten_sends(sys, qpn, failures));
  sys.engine().run();
  ASSERT_EQ(failures, 0);

  EXPECT_EQ(sys.metrics().gauge_value("causal.spans"), 0);  // not yet built
  const causal::Aggregator& agg = sys.analyze_causal();
  EXPECT_EQ(agg.spans(), 10u);
  EXPECT_EQ(sys.metrics().gauge_value("causal.spans"), 10);
  EXPECT_GT(sys.metrics().gauge_value("causal.p99_e2e_ns"), 0);
  EXPECT_EQ(sys.metrics().gauge_value("causal.watchdog_violations"), 0);
  // Rebuilding from the same trace is idempotent.
  sys.analyze_causal();
  EXPECT_EQ(sys.metrics().gauge_value("causal.spans"), 10);
}

}  // namespace
