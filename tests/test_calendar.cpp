// Calendar-queue event backend: randomized differential tests against a
// reference total order (duplicate timestamps, clamped past-scheduling,
// far-future sentinel-adjacent times), an engine-level heap-vs-calendar
// differential with interleaved nested scheduling, run_until equivalence,
// and the queue-depth / resize counters surfaced through Engine stats,
// System metrics and Kernel::proc_read("metrics").
//
// These run under the regular, ASan and TSan ctest configurations; the
// heavy loops are sized for that.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/system.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/sharded.hpp"
#include "sim/units.hpp"

namespace cord {
namespace {

// --- Knob parsing ------------------------------------------------------

TEST(QueueKind, ParsesAndNames) {
  EXPECT_EQ(sim::parse_queue_kind("heap"), sim::QueueKind::kHeap);
  EXPECT_EQ(sim::parse_queue_kind("calendar"), sim::QueueKind::kCalendar);
  EXPECT_EQ(sim::queue_kind_name(sim::QueueKind::kHeap), "heap");
  EXPECT_EQ(sim::queue_kind_name(sim::QueueKind::kCalendar), "calendar");
  EXPECT_THROW((void)sim::parse_queue_kind("splay"), std::invalid_argument);
}

// --- CalendarQueue vs a reference total order --------------------------

struct RefOrder {
  bool operator()(const sim::QueueItem& a, const sim::QueueItem& b) const {
    return a.before(b);
  }
};

TEST(CalendarQueue, PopsGlobalMinimumWithSeqTieBreak) {
  sim::CalendarQueue q;
  // Two timestamps, interleaved insertion, plus a far-future item: pops
  // must come out in (t, seq) order regardless of container placement.
  const sim::QueueItem items[] = {
      {sim::ns(20), 0, 100}, {sim::ns(10), 1, 101}, {sim::ns(20), 2, 102},
      {sim::ns(10), 3, 103}, {sim::ms(5), 4, 104},  {sim::ns(10), 5, 105},
  };
  for (const auto& it : items) q.push(it);
  EXPECT_EQ(q.size(), 6u);
  const std::uint64_t expect_seq[] = {1, 3, 5, 0, 2, 4};
  for (const std::uint64_t s : expect_seq) {
    EXPECT_EQ(q.top().seq, s);
    EXPECT_EQ(q.min_time(), q.top().t);
    EXPECT_EQ(q.pop().seq, s);
  }
  EXPECT_TRUE(q.empty());
}

// Interleaved pushes and pops with duplicate timestamps, clamped
// past-scheduling (the engine clamps to now() == the last popped t, so
// the stream re-pushes at exactly the watermark), and sentinel-adjacent
// far-future times (the sharded fabric parks window sentinels at
// kUnboundedLookahead = kNoEvent / 2). The calendar's pop stream must
// match a std::set on (t, seq) exactly.
TEST(CalendarQueue, RandomizedDifferentialAgainstReference) {
  for (const std::uint64_t seed : {1ull, 7ull, 0xC0FFEEull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    sim::Rng rng(seed);
    sim::CalendarQueue q;
    std::set<sim::QueueItem, RefOrder> ref;
    sim::Time watermark = 0;
    sim::Time last_push = 0;
    std::uint64_t seq = 0;
    for (int op = 0; op < 30000; ++op) {
      const bool push = ref.empty() || rng.next_u64() % 100 < 55;
      if (push) {
        sim::Time t = watermark;
        switch (rng.next_u64() % 8) {
          case 0:  // clamped past-scheduling: exactly at the watermark
            break;
          case 1:  // duplicate of the previous push's timestamp
            t = last_push;
            break;
          case 2:  // same-bucket neighbourhood
            t = watermark + static_cast<sim::Time>(rng.next_u64() % 64);
            break;
          case 3:
          case 4:
          case 5:  // the FIFO-ish common case: a few ns out
            t = watermark + sim::ns(1 + static_cast<sim::Time>(
                                            rng.next_u64() % 2000));
            break;
          case 6:  // far future: milliseconds out (overflow band)
            t = watermark + sim::ms(1 + static_cast<sim::Time>(
                                            rng.next_u64() % 50));
            break;
          case 7:  // sentinel-adjacent (conservative-window parking)
            t = sim::ShardedEngine::kUnboundedLookahead -
                static_cast<sim::Time>(rng.next_u64() % 4);
            break;
        }
        if (t < watermark) t = watermark;  // the engine's clamp contract
        last_push = t;
        const sim::QueueItem item{t, seq, seq << 4};
        ++seq;
        q.push(item);
        ref.insert(item);
      } else {
        const sim::QueueItem expect = *ref.begin();
        ref.erase(ref.begin());
        EXPECT_EQ(q.min_time(), expect.t);
        const sim::QueueItem& peek = q.top();
        EXPECT_EQ(peek.t, expect.t);
        EXPECT_EQ(peek.seq, expect.seq);
        const sim::QueueItem got = q.pop();
        ASSERT_EQ(got.t, expect.t) << "op " << op;
        ASSERT_EQ(got.seq, expect.seq) << "op " << op;
        EXPECT_EQ(got.payload, expect.payload);
        watermark = got.t;
      }
      EXPECT_EQ(q.size(), ref.size());
    }
    // Drain: the tail must still match item for item.
    while (!ref.empty()) {
      const sim::QueueItem expect = *ref.begin();
      ref.erase(ref.begin());
      const sim::QueueItem got = q.pop();
      ASSERT_EQ(got.t, expect.t);
      ASSERT_EQ(got.seq, expect.seq);
    }
    EXPECT_TRUE(q.empty());
    // The stream above must have exercised both cold paths, or the test
    // is vacuous.
    EXPECT_GT(q.resizes(), 0u);
    EXPECT_GT(q.overflow_pushes(), 0u);
  }
}

// --- Engine-level differential ----------------------------------------

// The same randomized program — initial burst, then callbacks that
// re-schedule 0..2 successors (including intentionally-clamped past
// times and same-time ties) — must produce the identical (now, id) fire
// log on both backends. Each run draws from its own identically-seeded
// Rng: any pop-order divergence would desynchronize the draws and the
// logs with them.
std::vector<std::pair<sim::Time, int>> run_program(sim::QueueKind kind) {
  sim::Engine engine(kind);
  sim::Rng rng(0xD1FFull);
  std::vector<std::pair<sim::Time, int>> log;
  int next_id = 0;
  struct Ctx {
    sim::Engine& engine;
    sim::Rng& rng;
    std::vector<std::pair<sim::Time, int>>& log;
    int& next_id;
    int budget = 4000;
  } ctx{engine, rng, log, next_id};

  struct Fire {
    static void at(Ctx& ctx, int id) {
      ctx.log.emplace_back(ctx.engine.now(), id);
      if (ctx.budget <= 0) return;
      const std::uint64_t kids = ctx.rng.next_u64() % 3;
      for (std::uint64_t k = 0; k < kids && ctx.budget > 0; ++k) {
        --ctx.budget;
        const int kid_id = ctx.next_id++;
        // Deltas include 0 (a same-time tie) and -20ns (clamped to now).
        const sim::Time delta =
            sim::ns(static_cast<sim::Time>(ctx.rng.next_u64() % 40) - 20);
        ctx.engine.call_at(ctx.engine.now() + delta,
                           [&ctx, kid_id] { Fire::at(ctx, kid_id); });
      }
    }
  };

  for (int i = 0; i < 64; ++i) {
    const int id = next_id++;
    const sim::Time t = sim::ns(static_cast<sim::Time>(rng.next_u64() % 500));
    engine.call_at(t, [&ctx, id] { Fire::at(ctx, id); });
  }
  engine.run();
  return log;
}

TEST(CalendarEngine, MatchesHeapEngineEventForEvent) {
  const auto heap_log = run_program(sim::QueueKind::kHeap);
  const auto cal_log = run_program(sim::QueueKind::kCalendar);
  ASSERT_GT(heap_log.size(), 64u);
  EXPECT_EQ(heap_log, cal_log);
}

// Stepping the clock in run_until windows — the sharded fabric's access
// pattern, including the next_event_time() peek at each window edge —
// must agree between backends at every step.
TEST(CalendarEngine, RunUntilWindowsMatchHeap) {
  auto windowed = [](sim::QueueKind kind) {
    sim::Engine engine(kind);
    sim::Rng rng(42);
    std::vector<std::pair<sim::Time, int>> log;
    for (int i = 0; i < 200; ++i) {
      const sim::Time t =
          sim::ns(static_cast<sim::Time>(rng.next_u64() % 3000));
      engine.call_at(t, [&log, &engine, i] {
        log.emplace_back(engine.now(), i);
      });
    }
    std::vector<sim::Time> peeks;
    for (sim::Time edge = sim::ns(100);; edge += sim::ns(137)) {
      peeks.push_back(engine.next_event_time());
      engine.run_until(edge);
      if (engine.pending_events() == 0) break;
    }
    peeks.push_back(engine.next_event_time());
    EXPECT_EQ(engine.next_event_time(), sim::Engine::kNoEvent);
    return std::make_pair(log, peeks);
  };
  const auto heap = windowed(sim::QueueKind::kHeap);
  const auto cal = windowed(sim::QueueKind::kCalendar);
  ASSERT_EQ(heap.first.size(), 200u);
  EXPECT_EQ(heap.first, cal.first);
  EXPECT_EQ(heap.second, cal.second);
}

// --- Queue stats in Engine, System metrics and proc_read ---------------

TEST(CalendarEngine, QueueStatsMoveWithDepth) {
  sim::Engine engine(sim::QueueKind::kCalendar);
  EXPECT_EQ(engine.queue_peak_depth(), 0u);
  EXPECT_EQ(engine.queue_resizes(), 0u);
  std::uint64_t fired = 0;
  for (int i = 0; i < 10000; ++i) {
    engine.call_at(sim::ns(i * 3), [&fired] { ++fired; });
  }
  EXPECT_EQ(engine.pending_events(), 10000u);
  engine.run();
  EXPECT_EQ(fired, 10000u);
  EXPECT_EQ(engine.pending_events(), 0u);
  EXPECT_EQ(engine.queue_peak_depth(), 10000u);
  // A 10k fill cannot fit the 32-bucket seed calendar: the backend must
  // have rebuilt (and so recalibrated) at least once, and the stale
  // initial window must have banked pushes in the overflow band.
  EXPECT_GT(engine.queue_resizes(), 0u);
  EXPECT_GT(engine.queue_overflow_events(), 0u);
}

TEST(CalendarEngine, HeapBackendReportsDepthButNoResizes) {
  sim::Engine engine;  // default: heap
  EXPECT_EQ(engine.queue_kind(), sim::QueueKind::kHeap);
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    engine.call_at(sim::ns(i), [&fired] { ++fired; });
  }
  engine.run();
  EXPECT_EQ(engine.queue_peak_depth(), 100u);
  EXPECT_EQ(engine.queue_resizes(), 0u);
}

TEST(SystemMetrics, QueueGaugesMirrorEngineStats) {
  core::SystemConfig cfg = core::system_l();
  cfg.event_queue = sim::QueueKind::kCalendar;
  core::System sys(cfg, 2);
  // Before any load: gauges exist and read zero.
  EXPECT_EQ(sys.metrics().gauge_value("engine.queue_peak_depth"), 0);
  EXPECT_EQ(sys.metrics().gauge_value("engine.queue_resizes"), 0);
  int fired = 0;
  for (int i = 0; i < 5000; ++i) {
    sys.engine().call_at(sim::ns(10 + i * 5), [&fired] { ++fired; });
  }
  sys.sharded().run();
  EXPECT_EQ(fired, 5000);
  EXPECT_EQ(sys.metrics().gauge_value("engine.queue_peak_depth"), 5000);
  EXPECT_GT(sys.metrics().gauge_value("engine.queue_resizes"), 0);
  // The same stats surface per host through the kernel's /proc-style
  // metrics read — the Kernel::proc_read("metrics") observability path.
  const std::string dump = sys.host(0).kernel().proc_read("metrics");
  EXPECT_NE(dump.find("engine.queue_depth"), std::string::npos);
  EXPECT_NE(dump.find("engine.queue_peak_depth"), std::string::npos);
  EXPECT_NE(dump.find("engine.queue_resizes"), std::string::npos);
  EXPECT_EQ(
      sys.host(0).kernel().metrics().gauge_value("engine.queue_peak_depth"),
      5000);
  EXPECT_EQ(sys.host(0).kernel().metrics().gauge_value("engine.queue_depth"),
            0);
}

}  // namespace
}  // namespace cord
