// Unit tests for the simulated NIC: registration/protection, the QP state
// machine, RC send/recv, RDMA read/write, UD datagrams, inline data,
// error semantics (rkey violations, RNR, flush), and timing sanity.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <numeric>
#include <vector>

#include "fabric/link.hpp"
#include "nic/nic.hpp"
#include "nic/segment.hpp"
#include "sim/engine.hpp"

namespace cord::nic {
namespace {

using sim::Time;

/// Two NICs connected back-to-back at 100 Gbit/s — a miniature "system L".
struct TwoNodeFixture {
  sim::Engine engine;
  fabric::Network network{engine};
  NicRegistry registry;
  NicConfig cfg;
  std::unique_ptr<Nic> nic0;
  std::unique_ptr<Nic> nic1;

  explicit TwoNodeFixture(NicConfig c = {},
                          sim::QueueKind q = sim::QueueKind::kHeap)
      : engine(q), cfg(c) {
    network.add_node(0, sim::Bandwidth::gbit_per_sec(200.0), sim::ns(150));
    network.add_node(1, sim::Bandwidth::gbit_per_sec(200.0), sim::ns(150));
    network.connect(0, 1, sim::Bandwidth::gbit_per_sec(100.0), sim::ns(150));
    nic0 = std::make_unique<Nic>(engine, network, registry, 0, cfg);
    nic1 = std::make_unique<Nic>(engine, network, registry, 1, cfg);
  }

  /// Creates an RC queue pair on each NIC, connected to each other.
  struct RcPair {
    QueuePair* qp0;
    QueuePair* qp1;
    CompletionQueue* scq0;
    CompletionQueue* rcq0;
    CompletionQueue* scq1;
    CompletionQueue* rcq1;
    ProtectionDomainId pd0;
    ProtectionDomainId pd1;
  };

  RcPair connect_rc(std::uint32_t max_inline = 0) {
    RcPair p{};
    p.pd0 = nic0->alloc_pd();
    p.pd1 = nic1->alloc_pd();
    p.scq0 = nic0->create_cq(1024);
    p.rcq0 = nic0->create_cq(1024);
    p.scq1 = nic1->create_cq(1024);
    p.rcq1 = nic1->create_cq(1024);
    p.qp0 = nic0->create_qp(
        QpConfig{QpType::kRC, p.pd0, p.scq0, p.rcq0, 128, 512, max_inline});
    p.qp1 = nic1->create_qp(
        QpConfig{QpType::kRC, p.pd1, p.scq1, p.rcq1, 128, 512, max_inline});
    EXPECT_EQ(nic0->modify_qp(*p.qp0, QpState::kInit), kOk);
    EXPECT_EQ(nic0->modify_qp(*p.qp0, QpState::kRtr, {1, p.qp1->qpn()}), kOk);
    EXPECT_EQ(nic0->modify_qp(*p.qp0, QpState::kRts), kOk);
    EXPECT_EQ(nic1->modify_qp(*p.qp1, QpState::kInit), kOk);
    EXPECT_EQ(nic1->modify_qp(*p.qp1, QpState::kRtr, {0, p.qp0->qpn()}), kOk);
    EXPECT_EQ(nic1->modify_qp(*p.qp1, QpState::kRts), kOk);
    return p;
  }
};

/// Drain one completion from a CQ, asserting there is exactly one.
Cqe take_one(CompletionQueue& cq) {
  std::array<Cqe, 4> wc;
  EXPECT_EQ(cq.poll(wc), 1u) << "expected exactly one completion";
  return wc[0];
}

TEST(MrTable, RegisterCheckDeregister) {
  MrTable t;
  std::vector<std::byte> buf(4096);
  auto addr = reinterpret_cast<std::uintptr_t>(buf.data());
  const MemoryRegion& mr =
      t.register_mr(1, addr, buf.size(), kAccessLocalWrite | kAccessRemoteRead);
  EXPECT_EQ(mr.lkey, mr.rkey);
  // Local checks.
  EXPECT_NE(t.check_local({addr, 4096, mr.lkey}, 1, true), nullptr);
  EXPECT_EQ(t.check_local({addr, 4096, mr.lkey}, 2, true), nullptr)
      << "PD mismatch must fail";
  EXPECT_EQ(t.check_local({addr, 4097, mr.lkey}, 1, false), nullptr)
      << "out-of-range must fail";
  EXPECT_EQ(t.check_local({addr + 1, 4096, mr.lkey}, 1, false), nullptr);
  EXPECT_NE(t.check_local({addr + 100, 100, mr.lkey}, 1, false), nullptr);
  EXPECT_EQ(t.check_local({addr, 16, mr.lkey + 1}, 1, false), nullptr);
  // Remote checks.
  EXPECT_NE(t.check_remote(mr.rkey, addr, 4096, kAccessRemoteRead), nullptr);
  EXPECT_EQ(t.check_remote(mr.rkey, addr, 4096, kAccessRemoteWrite), nullptr)
      << "missing access flag must fail";
  EXPECT_EQ(t.check_remote(mr.rkey + 7, addr, 16, kAccessRemoteRead), nullptr);
  // Deregistration invalidates both keys.
  EXPECT_TRUE(t.deregister_mr(mr.lkey));
  EXPECT_FALSE(t.deregister_mr(mr.lkey));
  EXPECT_EQ(t.check_remote(mr.rkey, addr, 16, kAccessRemoteRead), nullptr);
}

TEST(MrTable, OverflowProofRangeCheck) {
  MrTable t;
  const MemoryRegion& mr = t.register_mr(1, 0x1000, 0x100, kAccessNone);
  // addr + len overflow must not wrap around into acceptance.
  EXPECT_EQ(t.check_local({~std::uintptr_t{0} - 1, 16, mr.lkey}, 1, false), nullptr);
}

TEST(QpStateMachine, LegalAndIllegalTransitions) {
  TwoNodeFixture f;
  auto* cq = f.nic0->create_cq(16);
  auto* qp = f.nic0->create_qp(QpConfig{QpType::kRC, 1, cq, cq, 16, 16, 0});
  ASSERT_NE(qp, nullptr);
  EXPECT_EQ(qp->state(), QpState::kReset);
  EXPECT_EQ(f.nic0->modify_qp(*qp, QpState::kRts), kErrState)
      << "RESET -> RTS must be rejected";
  EXPECT_EQ(f.nic0->modify_qp(*qp, QpState::kInit), kOk);
  EXPECT_EQ(f.nic0->modify_qp(*qp, QpState::kInit), kErrState);
  EXPECT_EQ(f.nic0->modify_qp(*qp, QpState::kRtr, {99, 1}), kErrInvalid)
      << "unknown destination node must be rejected";
  EXPECT_EQ(f.nic0->modify_qp(*qp, QpState::kRtr, {1, 0x100}), kOk);
  EXPECT_EQ(f.nic0->modify_qp(*qp, QpState::kRts), kOk);
  EXPECT_EQ(f.nic0->modify_qp(*qp, QpState::kError), kOk);
  EXPECT_EQ(qp->state(), QpState::kError);
  EXPECT_EQ(f.nic0->modify_qp(*qp, QpState::kReset), kOk);
  EXPECT_EQ(qp->state(), QpState::kReset);
}

TEST(QpStateMachine, PostRequiresCorrectState) {
  TwoNodeFixture f;
  auto* cq = f.nic0->create_cq(16);
  auto* qp = f.nic0->create_qp(QpConfig{QpType::kRC, 1, cq, cq, 16, 16, 0});
  std::vector<std::byte> buf(64);
  auto addr = reinterpret_cast<std::uintptr_t>(buf.data());
  const auto& mr = f.nic0->register_mr(1, buf.data(), buf.size(), kAccessLocalWrite);
  EXPECT_EQ(f.nic0->post_send(*qp, SendWr{.sge = {addr, 64, mr.lkey}}), kErrState);
  EXPECT_EQ(f.nic0->post_recv(*qp, RecvWr{0, {addr, 64, mr.lkey}}), kErrState);
  ASSERT_EQ(f.nic0->modify_qp(*qp, QpState::kInit), kOk);
  EXPECT_EQ(f.nic0->post_recv(*qp, RecvWr{0, {addr, 64, mr.lkey}}), kOk)
      << "receives may be posted from INIT";
  EXPECT_EQ(f.nic0->post_send(*qp, SendWr{.sge = {addr, 64, mr.lkey}}), kErrState)
      << "sends require RTS";
}

TEST(RcSendRecv, DeliversPayloadAndCompletions) {
  TwoNodeFixture f;
  auto p = f.connect_rc();
  std::vector<std::byte> src(4096), dst(4096, std::byte{0});
  std::iota(reinterpret_cast<std::uint8_t*>(src.data()),
            reinterpret_cast<std::uint8_t*>(src.data()) + src.size(), 1);
  const auto& smr = f.nic0->register_mr(p.pd0, src.data(), src.size(), 0);
  const auto& rmr =
      f.nic1->register_mr(p.pd1, dst.data(), dst.size(), kAccessLocalWrite);

  ASSERT_EQ(f.nic1->post_recv(*p.qp1,
                              RecvWr{77, {reinterpret_cast<std::uintptr_t>(dst.data()),
                                          4096, rmr.lkey}}),
            kOk);
  ASSERT_EQ(f.nic0->post_send(*p.qp0,
                              SendWr{.wr_id = 42,
                                     .opcode = Opcode::kSend,
                                     .sge = {reinterpret_cast<std::uintptr_t>(src.data()),
                                             4096, smr.lkey}}),
            kOk);
  f.engine.run();

  Cqe sc = take_one(*p.scq0);
  EXPECT_EQ(sc.wr_id, 42u);
  EXPECT_EQ(sc.status, WcStatus::kSuccess);
  EXPECT_EQ(sc.opcode, WcOpcode::kSend);

  Cqe rc = take_one(*p.rcq1);
  EXPECT_EQ(rc.wr_id, 77u);
  EXPECT_EQ(rc.status, WcStatus::kSuccess);
  EXPECT_EQ(rc.opcode, WcOpcode::kRecv);
  EXPECT_EQ(rc.byte_len, 4096u);
  EXPECT_EQ(rc.qp_num, p.qp1->qpn());
  EXPECT_EQ(rc.src_qp, p.qp0->qpn());
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), 4096), 0);
}

TEST(RcSendRecv, SendWithImmediateCarriesImm) {
  TwoNodeFixture f;
  auto p = f.connect_rc();
  std::vector<std::byte> src(16), dst(16);
  const auto& smr = f.nic0->register_mr(p.pd0, src.data(), src.size(), 0);
  const auto& rmr =
      f.nic1->register_mr(p.pd1, dst.data(), dst.size(), kAccessLocalWrite);
  ASSERT_EQ(f.nic1->post_recv(*p.qp1,
                              RecvWr{1, {reinterpret_cast<std::uintptr_t>(dst.data()),
                                         16, rmr.lkey}}),
            kOk);
  ASSERT_EQ(f.nic0->post_send(*p.qp0,
                              SendWr{.wr_id = 2,
                                     .opcode = Opcode::kSendWithImm,
                                     .sge = {reinterpret_cast<std::uintptr_t>(src.data()),
                                             16, smr.lkey},
                                     .imm = 0xBEEF}),
            kOk);
  f.engine.run();
  Cqe rc = take_one(*p.rcq1);
  EXPECT_TRUE(rc.has_imm);
  EXPECT_EQ(rc.imm, 0xBEEFu);
}

TEST(RcSendRecv, ManyMessagesArriveInOrder) {
  TwoNodeFixture f;
  auto p = f.connect_rc();
  constexpr int kMsgs = 64;
  std::vector<std::vector<std::byte>> bufs(kMsgs, std::vector<std::byte>(8));
  std::vector<std::vector<std::byte>> dsts(kMsgs, std::vector<std::byte>(8));
  for (int i = 0; i < kMsgs; ++i) {
    bufs[i][0] = static_cast<std::byte>(i);
    const auto& smr = f.nic0->register_mr(p.pd0, bufs[i].data(), 8, 0);
    const auto& rmr = f.nic1->register_mr(p.pd1, dsts[i].data(), 8, kAccessLocalWrite);
    ASSERT_EQ(f.nic1->post_recv(
                  *p.qp1, RecvWr{static_cast<std::uint64_t>(i),
                                 {reinterpret_cast<std::uintptr_t>(dsts[i].data()), 8,
                                  rmr.lkey}}),
              kOk);
    ASSERT_EQ(f.nic0->post_send(
                  *p.qp0, SendWr{.wr_id = static_cast<std::uint64_t>(i),
                                 .sge = {reinterpret_cast<std::uintptr_t>(bufs[i].data()),
                                         8, smr.lkey}}),
              kOk);
  }
  f.engine.run();
  std::vector<Cqe> wc(kMsgs + 1);
  ASSERT_EQ(p.rcq1->poll(wc), static_cast<std::size_t>(kMsgs));
  for (int i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(wc[i].wr_id, static_cast<std::uint64_t>(i)) << "ordering violated";
    EXPECT_EQ(static_cast<int>(dsts[i][0]), i) << "message i landed in recv i";
  }
}

TEST(RdmaWrite, WritesRemoteMemoryWithoutReceiverCqe) {
  TwoNodeFixture f;
  auto p = f.connect_rc();
  std::vector<std::byte> src(1024), dst(1024, std::byte{0});
  std::iota(reinterpret_cast<std::uint8_t*>(src.data()),
            reinterpret_cast<std::uint8_t*>(src.data()) + src.size(), 3);
  const auto& smr = f.nic0->register_mr(p.pd0, src.data(), src.size(), 0);
  const auto& rmr =
      f.nic1->register_mr(p.pd1, dst.data(), dst.size(),
                          kAccessLocalWrite | kAccessRemoteWrite);
  ASSERT_EQ(f.nic0->post_send(*p.qp0,
                              SendWr{.wr_id = 5,
                                     .opcode = Opcode::kRdmaWrite,
                                     .sge = {reinterpret_cast<std::uintptr_t>(src.data()),
                                             1024, smr.lkey},
                                     .remote_addr = reinterpret_cast<std::uintptr_t>(dst.data()),
                                     .rkey = rmr.rkey}),
            kOk);
  f.engine.run();
  Cqe sc = take_one(*p.scq0);
  EXPECT_EQ(sc.status, WcStatus::kSuccess);
  EXPECT_EQ(sc.opcode, WcOpcode::kRdmaWrite);
  EXPECT_EQ(p.rcq1->depth(), 0u) << "plain RDMA write must not consume a recv";
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), 1024), 0);
}

TEST(RdmaWrite, WithImmConsumesRecvAndSignalsImm) {
  TwoNodeFixture f;
  auto p = f.connect_rc();
  std::vector<std::byte> src(64), dst(64), rbuf(64);
  const auto& smr = f.nic0->register_mr(p.pd0, src.data(), src.size(), 0);
  const auto& rmr = f.nic1->register_mr(p.pd1, dst.data(), dst.size(),
                                        kAccessLocalWrite | kAccessRemoteWrite);
  const auto& rb = f.nic1->register_mr(p.pd1, rbuf.data(), rbuf.size(), kAccessLocalWrite);
  ASSERT_EQ(f.nic1->post_recv(*p.qp1,
                              RecvWr{9, {reinterpret_cast<std::uintptr_t>(rbuf.data()),
                                         64, rb.lkey}}),
            kOk);
  ASSERT_EQ(f.nic0->post_send(*p.qp0,
                              SendWr{.wr_id = 6,
                                     .opcode = Opcode::kRdmaWriteWithImm,
                                     .sge = {reinterpret_cast<std::uintptr_t>(src.data()),
                                             64, smr.lkey},
                                     .imm = 0xAA55,
                                     .remote_addr = reinterpret_cast<std::uintptr_t>(dst.data()),
                                     .rkey = rmr.rkey}),
            kOk);
  f.engine.run();
  Cqe rc = take_one(*p.rcq1);
  EXPECT_EQ(rc.wr_id, 9u);
  EXPECT_EQ(rc.opcode, WcOpcode::kRecvRdmaWithImm);
  EXPECT_TRUE(rc.has_imm);
  EXPECT_EQ(rc.imm, 0xAA55u);
}

TEST(RdmaRead, FetchesRemoteMemory) {
  TwoNodeFixture f;
  auto p = f.connect_rc();
  std::vector<std::byte> remote(2048), local(2048, std::byte{0});
  std::iota(reinterpret_cast<std::uint8_t*>(remote.data()),
            reinterpret_cast<std::uint8_t*>(remote.data()) + remote.size(), 9);
  const auto& rmr =
      f.nic1->register_mr(p.pd1, remote.data(), remote.size(), kAccessRemoteRead);
  const auto& lmr =
      f.nic0->register_mr(p.pd0, local.data(), local.size(), kAccessLocalWrite);
  ASSERT_EQ(f.nic0->post_send(*p.qp0,
                              SendWr{.wr_id = 11,
                                     .opcode = Opcode::kRdmaRead,
                                     .sge = {reinterpret_cast<std::uintptr_t>(local.data()),
                                             2048, lmr.lkey},
                                     .remote_addr = reinterpret_cast<std::uintptr_t>(remote.data()),
                                     .rkey = rmr.rkey}),
            kOk);
  f.engine.run();
  Cqe sc = take_one(*p.scq0);
  EXPECT_EQ(sc.status, WcStatus::kSuccess);
  EXPECT_EQ(sc.opcode, WcOpcode::kRdmaRead);
  EXPECT_EQ(std::memcmp(remote.data(), local.data(), 2048), 0);
}

TEST(RdmaRead, ServerCpuNotInvolved) {
  // The paper's Fig. 3 hinges on this: an RDMA read completes without any
  // receiver-side posting or completion.
  TwoNodeFixture f;
  auto p = f.connect_rc();
  std::vector<std::byte> remote(128), local(128);
  const auto& rmr =
      f.nic1->register_mr(p.pd1, remote.data(), remote.size(), kAccessRemoteRead);
  const auto& lmr =
      f.nic0->register_mr(p.pd0, local.data(), local.size(), kAccessLocalWrite);
  ASSERT_EQ(f.nic0->post_send(*p.qp0,
                              SendWr{.opcode = Opcode::kRdmaRead,
                                     .sge = {reinterpret_cast<std::uintptr_t>(local.data()),
                                             128, lmr.lkey},
                                     .remote_addr = reinterpret_cast<std::uintptr_t>(remote.data()),
                                     .rkey = rmr.rkey}),
            kOk);
  f.engine.run();
  EXPECT_EQ(p.rcq1->depth(), 0u);
  EXPECT_EQ(p.scq1->depth(), 0u);
}

TEST(Inline, PayloadSnapshotAtPostTime) {
  TwoNodeFixture f;
  auto p = f.connect_rc(/*max_inline=*/220);
  std::vector<std::byte> src(64, std::byte{0x11}), dst(64);
  const auto& rmr =
      f.nic1->register_mr(p.pd1, dst.data(), dst.size(), kAccessLocalWrite);
  ASSERT_EQ(f.nic1->post_recv(*p.qp1,
                              RecvWr{1, {reinterpret_cast<std::uintptr_t>(dst.data()),
                                         64, rmr.lkey}}),
            kOk);
  // Inline needs no lkey at all.
  ASSERT_EQ(f.nic0->post_send(*p.qp0,
                              SendWr{.opcode = Opcode::kSend,
                                     .sge = {reinterpret_cast<std::uintptr_t>(src.data()),
                                             64, 0},
                                     .inline_data = true}),
            kOk);
  // Clobber the source immediately after posting: inline must not care.
  std::fill(src.begin(), src.end(), std::byte{0xFF});
  f.engine.run();
  EXPECT_EQ(static_cast<int>(dst[0]), 0x11)
      << "inline payload must be captured at post time";
}

TEST(Inline, RejectsOversizedAndReads) {
  TwoNodeFixture f;
  auto p = f.connect_rc(/*max_inline=*/64);
  std::vector<std::byte> src(128);
  EXPECT_EQ(f.nic0->post_send(*p.qp0,
                              SendWr{.sge = {reinterpret_cast<std::uintptr_t>(src.data()),
                                             128, 0},
                                     .inline_data = true}),
            kErrInvalid);
  EXPECT_EQ(f.nic0->post_send(*p.qp0,
                              SendWr{.opcode = Opcode::kRdmaRead,
                                     .sge = {reinterpret_cast<std::uintptr_t>(src.data()),
                                             32, 0},
                                     .inline_data = true}),
            kErrInvalid);
}

TEST(Protection, BadLkeyCompletesWithErrorAndKillsQp) {
  TwoNodeFixture f;
  auto p = f.connect_rc();
  std::vector<std::byte> src(64);
  ASSERT_EQ(f.nic0->post_send(*p.qp0,
                              SendWr{.wr_id = 1,
                                     .sge = {reinterpret_cast<std::uintptr_t>(src.data()),
                                             64, 0xDEAD}}),
            kOk)
      << "lkey is validated asynchronously, as on real hardware";
  f.engine.run();
  Cqe sc = take_one(*p.scq0);
  EXPECT_EQ(sc.status, WcStatus::kLocalProtectionError);
  EXPECT_EQ(p.qp0->state(), QpState::kError);
}

TEST(Protection, RemoteWriteWithoutPermissionFails) {
  TwoNodeFixture f;
  auto p = f.connect_rc();
  std::vector<std::byte> src(64), dst(64);
  const auto& smr = f.nic0->register_mr(p.pd0, src.data(), src.size(), 0);
  // Remote MR grants only READ; the write must be NAKed.
  const auto& rmr =
      f.nic1->register_mr(p.pd1, dst.data(), dst.size(), kAccessRemoteRead);
  ASSERT_EQ(f.nic0->post_send(*p.qp0,
                              SendWr{.wr_id = 2,
                                     .opcode = Opcode::kRdmaWrite,
                                     .sge = {reinterpret_cast<std::uintptr_t>(src.data()),
                                             64, smr.lkey},
                                     .remote_addr = reinterpret_cast<std::uintptr_t>(dst.data()),
                                     .rkey = rmr.rkey}),
            kOk);
  f.engine.run();
  Cqe sc = take_one(*p.scq0);
  EXPECT_EQ(sc.status, WcStatus::kRemoteAccessError);
  EXPECT_EQ(p.qp0->state(), QpState::kError);
  EXPECT_EQ(dst[0], std::byte{0}) << "no memory may be touched on a NAK";
}

TEST(Protection, ReadBeyondRegionFails) {
  TwoNodeFixture f;
  auto p = f.connect_rc();
  std::vector<std::byte> remote(64), local(128);
  const auto& rmr =
      f.nic1->register_mr(p.pd1, remote.data(), remote.size(), kAccessRemoteRead);
  const auto& lmr =
      f.nic0->register_mr(p.pd0, local.data(), local.size(), kAccessLocalWrite);
  ASSERT_EQ(f.nic0->post_send(*p.qp0,
                              SendWr{.opcode = Opcode::kRdmaRead,
                                     .sge = {reinterpret_cast<std::uintptr_t>(local.data()),
                                             128, lmr.lkey},
                                     .remote_addr = reinterpret_cast<std::uintptr_t>(remote.data()),
                                     .rkey = rmr.rkey}),
            kOk);
  f.engine.run();
  Cqe sc = take_one(*p.scq0);
  EXPECT_EQ(sc.status, WcStatus::kRemoteAccessError);
}

TEST(Rnr, RetriesUntilReceiverPosts) {
  TwoNodeFixture f;
  auto p = f.connect_rc();
  std::vector<std::byte> src(32, std::byte{7}), dst(32);
  const auto& smr = f.nic0->register_mr(p.pd0, src.data(), src.size(), 0);
  const auto& rmr =
      f.nic1->register_mr(p.pd1, dst.data(), dst.size(), kAccessLocalWrite);
  // Send with no receive posted; post the receive 30 us later (within the
  // retry budget: 8 retries x 10 us).
  ASSERT_EQ(f.nic0->post_send(*p.qp0,
                              SendWr{.wr_id = 3,
                                     .sge = {reinterpret_cast<std::uintptr_t>(src.data()),
                                             32, smr.lkey}}),
            kOk);
  f.engine.call_at(sim::us(30), [&] {
    ASSERT_EQ(f.nic1->post_recv(*p.qp1,
                                RecvWr{4, {reinterpret_cast<std::uintptr_t>(dst.data()),
                                           32, rmr.lkey}}),
              kOk);
  });
  f.engine.run();
  Cqe sc = take_one(*p.scq0);
  EXPECT_EQ(sc.status, WcStatus::kSuccess);
  EXPECT_EQ(dst[0], std::byte{7});
  EXPECT_GE(p.qp1->counters().rnr_events, 1u);
}

TEST(Rnr, ExhaustedRetriesFailTheSend) {
  TwoNodeFixture f;
  auto p = f.connect_rc();
  std::vector<std::byte> src(32);
  const auto& smr = f.nic0->register_mr(p.pd0, src.data(), src.size(), 0);
  ASSERT_EQ(f.nic0->post_send(*p.qp0,
                              SendWr{.wr_id = 3,
                                     .sge = {reinterpret_cast<std::uintptr_t>(src.data()),
                                             32, smr.lkey}}),
            kOk);
  f.engine.run();
  Cqe sc = take_one(*p.scq0);
  EXPECT_EQ(sc.status, WcStatus::kRnrRetryExceeded);
  EXPECT_EQ(p.qp0->state(), QpState::kError);
}

TEST(Flush, ErrorStateFlushesPostedWork) {
  TwoNodeFixture f;
  auto p = f.connect_rc();
  std::vector<std::byte> buf(64);
  const auto& mr =
      f.nic1->register_mr(p.pd1, buf.data(), buf.size(), kAccessLocalWrite);
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_EQ(f.nic1->post_recv(*p.qp1,
                                RecvWr{i, {reinterpret_cast<std::uintptr_t>(buf.data()),
                                           64, mr.lkey}}),
              kOk);
  }
  f.nic1->qp_set_error(*p.qp1);
  f.engine.run();
  std::vector<Cqe> wc(8);
  ASSERT_EQ(p.rcq1->poll(wc), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(wc[i].status, WcStatus::kWorkRequestFlushed);
  EXPECT_EQ(f.nic1->post_recv(*p.qp1, RecvWr{9, {0, 0, 0}}), kErrState);
}

TEST(Ud, DatagramWithGrhAndSrcQp) {
  TwoNodeFixture f;
  // Build two UD QPs (no connection).
  auto pd0 = f.nic0->alloc_pd();
  auto pd1 = f.nic1->alloc_pd();
  auto* cq0 = f.nic0->create_cq(64);
  auto* cq1 = f.nic1->create_cq(64);
  auto* qp0 = f.nic0->create_qp(QpConfig{QpType::kUD, pd0, cq0, cq0, 64, 64, 0});
  auto* qp1 = f.nic1->create_qp(QpConfig{QpType::kUD, pd1, cq1, cq1, 64, 64, 0});
  for (auto [nic, qp] : {std::pair{f.nic0.get(), qp0}, {f.nic1.get(), qp1}}) {
    ASSERT_EQ(nic->modify_qp(*qp, QpState::kInit), kOk);
    ASSERT_EQ(nic->modify_qp(*qp, QpState::kRtr), kOk);
    ASSERT_EQ(nic->modify_qp(*qp, QpState::kRts), kOk);
  }
  std::vector<std::byte> src(100, std::byte{0x5A}), dst(200);
  const auto& smr = f.nic0->register_mr(pd0, src.data(), src.size(), 0);
  const auto& rmr =
      f.nic1->register_mr(pd1, dst.data(), dst.size(), kAccessLocalWrite);
  ASSERT_EQ(f.nic1->post_recv(*qp1,
                              RecvWr{21, {reinterpret_cast<std::uintptr_t>(dst.data()),
                                          200, rmr.lkey}}),
            kOk);
  ASSERT_EQ(f.nic0->post_send(*qp0,
                              SendWr{.wr_id = 20,
                                     .opcode = Opcode::kSend,
                                     .sge = {reinterpret_cast<std::uintptr_t>(src.data()),
                                             100, smr.lkey},
                                     .ud = {1, qp1->qpn()}}),
            kOk);
  f.engine.run();
  Cqe rc = take_one(*cq1);
  EXPECT_EQ(rc.byte_len, 100u + kGrhBytes) << "UD byte_len includes the GRH";
  EXPECT_EQ(rc.src_qp, qp0->qpn());
  EXPECT_EQ(dst[kGrhBytes], std::byte{0x5A}) << "payload lands after the GRH";
  Cqe sc = take_one(*cq0);
  EXPECT_EQ(sc.status, WcStatus::kSuccess);
}

TEST(Ud, RejectsOversizeAndRdma) {
  TwoNodeFixture f;
  auto pd0 = f.nic0->alloc_pd();
  auto* cq0 = f.nic0->create_cq(64);
  auto* qp0 = f.nic0->create_qp(QpConfig{QpType::kUD, pd0, cq0, cq0, 64, 64, 0});
  ASSERT_EQ(f.nic0->modify_qp(*qp0, QpState::kInit), kOk);
  ASSERT_EQ(f.nic0->modify_qp(*qp0, QpState::kRtr), kOk);
  ASSERT_EQ(f.nic0->modify_qp(*qp0, QpState::kRts), kOk);
  std::vector<std::byte> big(8192);
  EXPECT_EQ(f.nic0->post_send(*qp0,
                              SendWr{.sge = {reinterpret_cast<std::uintptr_t>(big.data()),
                                             8192, 0},
                                     .ud = {1, 1}}),
            kErrInvalid)
      << "UD messages are limited to the MTU";
  EXPECT_EQ(f.nic0->post_send(*qp0,
                              SendWr{.opcode = Opcode::kRdmaWrite,
                                     .sge = {reinterpret_cast<std::uintptr_t>(big.data()),
                                             64, 0},
                                     .ud = {1, 1}}),
            kErrInvalid)
      << "UD does not support one-sided operations";
}

TEST(Ud, NoReceivePostedDropsSilently) {
  TwoNodeFixture f;
  auto pd0 = f.nic0->alloc_pd();
  auto pd1 = f.nic1->alloc_pd();
  auto* cq0 = f.nic0->create_cq(64);
  auto* cq1 = f.nic1->create_cq(64);
  auto* qp0 = f.nic0->create_qp(QpConfig{QpType::kUD, pd0, cq0, cq0, 64, 64, 0});
  auto* qp1 = f.nic1->create_qp(QpConfig{QpType::kUD, pd1, cq1, cq1, 64, 64, 0});
  for (auto [nic, qp] : {std::pair{f.nic0.get(), qp0}, {f.nic1.get(), qp1}}) {
    ASSERT_EQ(nic->modify_qp(*qp, QpState::kInit), kOk);
    ASSERT_EQ(nic->modify_qp(*qp, QpState::kRtr), kOk);
    ASSERT_EQ(nic->modify_qp(*qp, QpState::kRts), kOk);
  }
  std::vector<std::byte> src(64);
  const auto& smr = f.nic0->register_mr(pd0, src.data(), src.size(), 0);
  ASSERT_EQ(f.nic0->post_send(*qp0,
                              SendWr{.sge = {reinterpret_cast<std::uintptr_t>(src.data()),
                                             64, smr.lkey},
                                     .ud = {1, qp1->qpn()}}),
            kOk);
  f.engine.run();
  EXPECT_EQ(cq1->depth(), 0u);
  // Sender still completes (fire and forget).
  Cqe sc = take_one(*cq0);
  EXPECT_EQ(sc.status, WcStatus::kSuccess);
  EXPECT_EQ(qp0->state(), QpState::kRts) << "UD drop must not error the QP";
}

TEST(Loopback, SameNodeTrafficWorks) {
  TwoNodeFixture f;
  auto pd = f.nic0->alloc_pd();
  auto* scq = f.nic0->create_cq(64);
  auto* rcq = f.nic0->create_cq(64);
  auto* qa = f.nic0->create_qp(QpConfig{QpType::kRC, pd, scq, rcq, 64, 64, 0});
  auto* qb = f.nic0->create_qp(QpConfig{QpType::kRC, pd, scq, rcq, 64, 64, 0});
  ASSERT_EQ(f.nic0->modify_qp(*qa, QpState::kInit), kOk);
  ASSERT_EQ(f.nic0->modify_qp(*qa, QpState::kRtr, {0, qb->qpn()}), kOk);
  ASSERT_EQ(f.nic0->modify_qp(*qa, QpState::kRts), kOk);
  ASSERT_EQ(f.nic0->modify_qp(*qb, QpState::kInit), kOk);
  ASSERT_EQ(f.nic0->modify_qp(*qb, QpState::kRtr, {0, qa->qpn()}), kOk);
  ASSERT_EQ(f.nic0->modify_qp(*qb, QpState::kRts), kOk);
  std::vector<std::byte> src(256, std::byte{0x42}), dst(256);
  const auto& smr = f.nic0->register_mr(pd, src.data(), src.size(), 0);
  const auto& rmr =
      f.nic0->register_mr(pd, dst.data(), dst.size(), kAccessLocalWrite);
  ASSERT_EQ(f.nic0->post_recv(*qb,
                              RecvWr{1, {reinterpret_cast<std::uintptr_t>(dst.data()),
                                         256, rmr.lkey}}),
            kOk);
  ASSERT_EQ(f.nic0->post_send(*qa,
                              SendWr{.sge = {reinterpret_cast<std::uintptr_t>(src.data()),
                                             256, smr.lkey}}),
            kOk);
  f.engine.run();
  EXPECT_EQ(dst[0], std::byte{0x42});
}

TEST(Timing, SmallRcSendLatencyInCx6Ballpark) {
  TwoNodeFixture f;
  auto p = f.connect_rc(220);
  std::vector<std::byte> src(8), dst(8);
  const auto& rmr =
      f.nic1->register_mr(p.pd1, dst.data(), dst.size(), kAccessLocalWrite);
  ASSERT_EQ(f.nic1->post_recv(*p.qp1,
                              RecvWr{1, {reinterpret_cast<std::uintptr_t>(dst.data()),
                                         8, rmr.lkey}}),
            kOk);
  Time recv_time = -1;
  f.engine.call_at(0, [&] {
    ASSERT_EQ(f.nic0->post_send(*p.qp0,
                                SendWr{.sge = {reinterpret_cast<std::uintptr_t>(src.data()),
                                               8, 0},
                                       .inline_data = true}),
              kOk);
  });
  f.engine.run();
  // Recover the receive completion time by draining events: the CQE was
  // pushed at the completion timestamp. We approximate via final run time:
  // everything in this test ends with the ACK, shortly after delivery.
  recv_time = f.engine.now();
  EXPECT_GT(recv_time, sim::ns(500)) << "unrealistically fast";
  EXPECT_LT(recv_time, sim::us(3)) << "unrealistically slow for an 8 B send";
}

TEST(Timing, LargeTransferApproachesWireBandwidth) {
  TwoNodeFixture f;
  auto p = f.connect_rc();
  constexpr std::size_t kSize = 8u << 20;  // 8 MiB
  std::vector<std::byte> src(kSize, std::byte{1}), dst(kSize);
  const auto& smr = f.nic0->register_mr(p.pd0, src.data(), kSize, 0);
  const auto& rmr = f.nic1->register_mr(p.pd1, dst.data(), kSize,
                                        kAccessLocalWrite | kAccessRemoteWrite);
  ASSERT_EQ(f.nic0->post_send(*p.qp0,
                              SendWr{.opcode = Opcode::kRdmaWrite,
                                     .sge = {reinterpret_cast<std::uintptr_t>(src.data()),
                                             kSize, smr.lkey},
                                     .remote_addr = reinterpret_cast<std::uintptr_t>(dst.data()),
                                     .rkey = rmr.rkey}),
            kOk);
  const Time end = f.engine.run();
  // Ideal wire time at 100 Gbit/s is ~671 us; with headers and DMA the
  // model must land within ~40% of that, and never below it.
  const double ideal_us = 8.0 * kSize / 100e9 * 1e6;
  EXPECT_GT(sim::to_us(end), ideal_us);
  EXPECT_LT(sim::to_us(end), ideal_us * 1.4);
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), kSize), 0);
}

TEST(Counters, TrackTrafficPerQpAndPerNic) {
  TwoNodeFixture f;
  auto p = f.connect_rc();
  std::vector<std::byte> src(512), dst(512);
  const auto& smr = f.nic0->register_mr(p.pd0, src.data(), src.size(), 0);
  const auto& rmr =
      f.nic1->register_mr(p.pd1, dst.data(), dst.size(), kAccessLocalWrite);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_EQ(f.nic1->post_recv(*p.qp1,
                                RecvWr{i, {reinterpret_cast<std::uintptr_t>(dst.data()),
                                           512, rmr.lkey}}),
              kOk);
    ASSERT_EQ(f.nic0->post_send(*p.qp0,
                                SendWr{.wr_id = i,
                                       .sge = {reinterpret_cast<std::uintptr_t>(src.data()),
                                               512, smr.lkey}}),
              kOk);
  }
  f.engine.run();
  EXPECT_EQ(p.qp0->counters().tx_msgs, 4u);
  EXPECT_EQ(p.qp0->counters().tx_bytes, 2048u);
  EXPECT_EQ(p.qp1->counters().rx_msgs, 4u);
  EXPECT_EQ(p.qp1->counters().rx_bytes, 2048u);
  EXPECT_EQ(f.nic0->counters().tx_msgs, 4u);
  EXPECT_EQ(f.nic1->counters().rx_bytes, 2048u);
}

TEST(Cq, OverflowLatches) {
  TwoNodeFixture f;
  CompletionQueue cq(1, 2);
  EXPECT_TRUE(cq.push(Cqe{}));
  EXPECT_TRUE(cq.push(Cqe{}));
  EXPECT_FALSE(cq.push(Cqe{}));
  EXPECT_TRUE(cq.overflowed());
}

TEST(Cq, ArmFiresOnceOnNextCompletion) {
  CompletionQueue cq(1, 16);
  int events = 0;
  cq.set_event_handler([&](CompletionQueue&) { ++events; });
  cq.push(Cqe{});
  EXPECT_EQ(events, 0) << "unarmed CQ must not raise events";
  cq.arm();
  cq.push(Cqe{});
  cq.push(Cqe{});
  EXPECT_EQ(events, 1) << "arming is one-shot";
}

TEST(SqDepth, BackpressureWhenFull) {
  TwoNodeFixture f;
  auto pd = f.nic0->alloc_pd();
  auto* cq = f.nic0->create_cq(64);
  auto* qp = f.nic0->create_qp(QpConfig{QpType::kRC, pd, cq, cq, 2, 64, 64});
  ASSERT_EQ(f.nic0->modify_qp(*qp, QpState::kInit), kOk);
  ASSERT_EQ(f.nic0->modify_qp(*qp, QpState::kRtr, {1, 0x100}), kOk);
  ASSERT_EQ(f.nic0->modify_qp(*qp, QpState::kRts), kOk);
  std::vector<std::byte> buf(8);
  SendWr wr{.sge = {reinterpret_cast<std::uintptr_t>(buf.data()), 8, 0},
            .inline_data = true};
  EXPECT_EQ(f.nic0->post_send(*qp, SendWr{wr}), kOk);
  EXPECT_EQ(f.nic0->post_send(*qp, SendWr{wr}), kOk);
  EXPECT_EQ(f.nic0->post_send(*qp, SendWr{wr}), kErrQueueFull);
}

// --- MTU segmentation contract (nic/segment.hpp) -----------------------

TEST(Segmentation, ChunkCountAtMtuBoundaries) {
  constexpr std::uint32_t kMtu = 4096;
  EXPECT_EQ(chunk_count(0, kMtu), 1u) << "zero-length = one header-only chunk";
  EXPECT_EQ(chunk_count(1, kMtu), 1u);
  EXPECT_EQ(chunk_count(kMtu - 1, kMtu), 1u);
  EXPECT_EQ(chunk_count(kMtu, kMtu), 1u) << "exact MTU must not round up";
  EXPECT_EQ(chunk_count(kMtu + 1, kMtu), 2u);
  EXPECT_EQ(chunk_count(3ull * kMtu, kMtu), 3u);
  EXPECT_EQ(chunk_count(3ull * kMtu + 1, kMtu), 4u);
  // Max-size message (2 GiB, the verbs single-WR ceiling): no overflow.
  constexpr std::uint64_t kMax = 1ull << 31;
  EXPECT_EQ(chunk_count(kMax, kMtu), kMax / kMtu);
}

TEST(Segmentation, ForEachChunkMatchesCountAndConservesBytes) {
  constexpr std::uint32_t kMtu = 4096;
  for (const std::uint64_t bytes :
       {0ull, 1ull, 4095ull, 4096ull, 4097ull, 3ull * 4096, 3ull * 4096 + 1,
        1ull << 31}) {
    std::uint64_t chunks = 0;
    std::uint64_t sum = 0;
    std::uint32_t last = 0;
    for_each_chunk(bytes, kMtu, [&](std::uint32_t c) {
      ++chunks;
      sum += c;
      last = c;
      EXPECT_LE(c, kMtu);
    });
    EXPECT_EQ(chunks, chunk_count(bytes, kMtu)) << "bytes=" << bytes;
    EXPECT_EQ(sum, bytes) << "bytes=" << bytes;
    if (bytes == 0) {
      EXPECT_EQ(last, 0u) << "zero-length message still emits one chunk";
    } else {
      EXPECT_EQ(last, bytes % kMtu == 0 ? kMtu : bytes % kMtu);
    }
  }
}

TEST(Segmentation, NicCountersTrackExactChunkCounts) {
  // Sends straddling every MTU boundary case: 0, 1, MTU, k*MTU, k*MTU+1.
  TwoNodeFixture f;
  auto p = f.connect_rc();
  const std::uint32_t mtu = f.cfg.mtu;
  const std::vector<std::uint32_t> sizes = {0, 1, mtu, 3 * mtu, 3 * mtu + 1};
  const std::uint32_t max_size = 3 * mtu + 1;
  std::vector<std::byte> src(max_size), dst(max_size);
  const auto& smr = f.nic0->register_mr(p.pd0, src.data(), src.size(), 0);
  const auto& rmr =
      f.nic1->register_mr(p.pd1, dst.data(), dst.size(), kAccessLocalWrite);
  std::uint64_t want_chunks = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    ASSERT_EQ(f.nic1->post_recv(
                  *p.qp1,
                  RecvWr{i, {reinterpret_cast<std::uintptr_t>(dst.data()),
                             max_size, rmr.lkey}}),
              kOk);
    ASSERT_EQ(f.nic0->post_send(
                  *p.qp0,
                  SendWr{.wr_id = i,
                         .opcode = Opcode::kSend,
                         .sge = {reinterpret_cast<std::uintptr_t>(src.data()),
                                 sizes[i], smr.lkey},
                         .signaled = true}),
              kOk);
    want_chunks += chunk_count(sizes[i], mtu);
  }
  f.engine.run();
  std::vector<Cqe> wc(sizes.size() + 1);
  EXPECT_EQ(p.scq0->poll(wc), sizes.size());
  EXPECT_EQ(p.rcq1->poll(wc), sizes.size());
  EXPECT_EQ(f.nic0->counters().seg_msgs, sizes.size());
  EXPECT_EQ(f.nic0->counters().seg_chunks, want_chunks);
}

TEST(Segmentation, DeliveryTimesIdenticalAcrossQueueBackends) {
  // The same boundary-size workload must finish at the same simulated
  // instant under the heap and calendar event queues — segmentation math
  // must not depend on the scheduler backend.
  auto run = [](sim::QueueKind q) {
    TwoNodeFixture f({}, q);
    auto p = f.connect_rc();
    const std::uint32_t mtu = f.cfg.mtu;
    const std::uint32_t max_size = 3 * mtu + 1;
    std::vector<std::byte> src(max_size), dst(max_size);
    const auto& smr = f.nic0->register_mr(p.pd0, src.data(), src.size(), 0);
    const auto& rmr =
        f.nic1->register_mr(p.pd1, dst.data(), dst.size(), kAccessLocalWrite);
    std::vector<Time> completion_times;
    p.scq0->set_event_handler([&](CompletionQueue& cq) {
      completion_times.push_back(f.engine.now());
      cq.arm();
    });
    p.scq0->arm();
    for (const std::uint32_t size : {1u, mtu, 3 * mtu, 3 * mtu + 1}) {
      EXPECT_EQ(f.nic1->post_recv(
                    *p.qp1,
                    RecvWr{size, {reinterpret_cast<std::uintptr_t>(dst.data()),
                                  max_size, rmr.lkey}}),
                kOk);
      EXPECT_EQ(
          f.nic0->post_send(
              *p.qp0,
              SendWr{.wr_id = size,
                     .opcode = Opcode::kSend,
                     .sge = {reinterpret_cast<std::uintptr_t>(src.data()),
                             size, smr.lkey},
                     .signaled = true}),
          kOk);
    }
    f.engine.run();
    completion_times.push_back(f.engine.now());
    return completion_times;
  };
  const auto heap = run(sim::QueueKind::kHeap);
  const auto calendar = run(sim::QueueKind::kCalendar);
  ASSERT_EQ(heap.size(), 5u) << "4 completions + final engine time";
  EXPECT_EQ(heap, calendar);
}

}  // namespace
}  // namespace cord::nic
