// Shared fixtures for tests above the NIC layer: a two-host system wired
// back-to-back (a miniature "system L") plus helpers to run coroutines to
// completion and to establish connected RC queue pairs through the verbs
// API.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "os/kernel.hpp"
#include "verbs/verbs.hpp"

namespace cord::testing {

/// Run a value-returning task on the engine until the queue drains.
template <typename T>
T run_task(sim::Engine& engine, sim::Task<T> task) {
  std::optional<T> result;
  engine.spawn([](sim::Task<T> t, std::optional<T>& out) -> sim::Task<> {
    out = co_await std::move(t);
  }(std::move(task), result));
  engine.run();
  EXPECT_TRUE(result.has_value()) << "task did not complete";
  return std::move(*result);
}

inline void run_task(sim::Engine& engine, sim::Task<> task) {
  bool done = false;
  engine.spawn([](sim::Task<> t, bool& done) -> sim::Task<> {
    co_await std::move(t);
    done = true;
  }(std::move(task), done));
  engine.run();
  EXPECT_TRUE(done) << "task did not complete";
}

struct TwoHostFixture {
  sim::Engine engine;
  fabric::Network network{engine};
  nic::NicRegistry registry;
  std::unique_ptr<os::Host> host0;
  std::unique_ptr<os::Host> host1;

  explicit TwoHostFixture(os::CpuModel cpu = {}, nic::NicConfig nic_cfg = {},
                          os::KernelConfig kernel_cfg = {},
                          double wire_gbps = 100.0) {
    network.add_node(0, sim::Bandwidth::gbit_per_sec(200.0), sim::ns(150));
    network.add_node(1, sim::Bandwidth::gbit_per_sec(200.0), sim::ns(150));
    network.connect(0, 1, sim::Bandwidth::gbit_per_sec(wire_gbps), sim::ns(150));
    host0 = std::make_unique<os::Host>(engine, network, registry, 0, nic_cfg,
                                       cpu, kernel_cfg);
    host1 = std::make_unique<os::Host>(engine, network, registry, 1, nic_cfg,
                                       cpu, kernel_cfg);
  }
};

/// A connected RC endpoint pair created through two verbs contexts.
struct RcEndpoints {
  nic::ProtectionDomainId pd0 = 0, pd1 = 0;
  nic::CompletionQueue* scq0 = nullptr;
  nic::CompletionQueue* rcq0 = nullptr;
  nic::CompletionQueue* scq1 = nullptr;
  nic::CompletionQueue* rcq1 = nullptr;
  nic::QueuePair* qp0 = nullptr;
  nic::QueuePair* qp1 = nullptr;
};

inline sim::Task<RcEndpoints> connect_rc(verbs::Context& c0, verbs::Context& c1,
                                         std::uint32_t max_inline = 220) {
  RcEndpoints e;
  e.pd0 = co_await c0.alloc_pd();
  e.pd1 = co_await c1.alloc_pd();
  e.scq0 = co_await c0.create_cq(1024);
  e.rcq0 = co_await c0.create_cq(1024);
  e.scq1 = co_await c1.create_cq(1024);
  e.rcq1 = co_await c1.create_cq(1024);
  e.qp0 = co_await c0.create_qp(nic::QpConfig{nic::QpType::kRC, e.pd0, e.scq0,
                                              e.rcq0, 256, 1024, max_inline});
  e.qp1 = co_await c1.create_qp(nic::QpConfig{nic::QpType::kRC, e.pd1, e.scq1,
                                              e.rcq1, 256, 1024, max_inline});
  int rc = co_await c0.connect_qp(*e.qp0, {c1.node(), e.qp1->qpn()});
  if (rc != 0) throw std::runtime_error("connect_qp(0) failed");
  rc = co_await c1.connect_qp(*e.qp1, {c0.node(), e.qp0->qpn()});
  if (rc != 0) throw std::runtime_error("connect_qp(1) failed");
  co_return e;
}

inline std::uintptr_t uptr(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p);
}

}  // namespace cord::testing
