// Tests for the allocation-free simulator fast path: event-queue
// determinism (same-timestamp insertion order, past-time clamping),
// InlineFn semantics (move-only captures, over-capacity heap fallback),
// MrTable slot recycling, WrPool recycling, and a perftest-shaped smoke
// test pinned to exact pre-optimisation outputs (bit-for-bit: any change
// in event ordering would shift these values).
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "core/system.hpp"
#include "nic/mr.hpp"
#include "nic/wr_pool.hpp"
#include "perftest/perftest.hpp"
#include "sim/engine.hpp"
#include "sim/inline_fn.hpp"
#include "sim/units.hpp"

namespace cord {
namespace {

// --- Event engine ordering --------------------------------------------
//
// Every ordering contract holds under both event-queue backends (the
// queue=heap|calendar knob) — the calendar queue's whole claim is a
// bit-identical pop order, so each test runs once per backend.

constexpr sim::QueueKind kQueueKinds[] = {sim::QueueKind::kHeap,
                                          sim::QueueKind::kCalendar};

TEST(EngineOrder, SameTimestampFiresInInsertionOrder) {
  for (const sim::QueueKind kind : kQueueKinds) {
    SCOPED_TRACE(sim::queue_kind_name(kind));
    sim::Engine engine(kind);
    std::vector<int> fired;
    // Enough events to overflow the queue's one-item cache and exercise
    // heap sifts, all at the same timestamp.
    for (int i = 0; i < 300; ++i) {
      engine.call_at(sim::ns(50), [&fired, i] { fired.push_back(i); });
    }
    engine.run();
    ASSERT_EQ(fired.size(), 300u);
    for (int i = 0; i < 300; ++i) EXPECT_EQ(fired[i], i) << "at index " << i;
  }
}

TEST(EngineOrder, MixedTimestampsSortStably) {
  for (const sim::QueueKind kind : kQueueKinds) {
    SCOPED_TRACE(sim::queue_kind_name(kind));
    sim::Engine engine(kind);
    std::vector<std::pair<int, int>> fired;  // (time_ns, insertion index)
    // Interleave three timestamps in an adversarial insertion order.
    const int times[] = {30, 10, 20, 10, 30, 20, 10, 20, 30};
    for (int i = 0; i < 9; ++i) {
      engine.call_at(sim::ns(times[i]), [&fired, t = times[i], i] {
        fired.emplace_back(t, i);
      });
    }
    engine.run();
    const std::vector<std::pair<int, int>> expect = {
        {10, 1}, {10, 3}, {10, 6}, {20, 2}, {20, 5},
        {20, 7}, {30, 0}, {30, 4}, {30, 8}};
    EXPECT_EQ(fired, expect);
    EXPECT_EQ(engine.events_processed(), 9u);
  }
}

TEST(EngineOrder, PastTimeClampsToNowInsteadOfReordering) {
  for (const sim::QueueKind kind : kQueueKinds) {
    SCOPED_TRACE(sim::queue_kind_name(kind));
    sim::Engine engine(kind);
    std::vector<int> fired;
    engine.call_at(sim::ns(100), [&] {
      EXPECT_EQ(engine.now(), sim::ns(100));
      // Scheduling into the past must clamp to now(), not time-travel.
      engine.call_at(sim::ns(40), [&] {
        fired.push_back(2);
        EXPECT_EQ(engine.now(), sim::ns(100));
      });
      fired.push_back(1);
    });
    EXPECT_EQ(engine.clamped_events(), 0u);
    engine.run();
    EXPECT_EQ(fired, (std::vector<int>{1, 2}));
    EXPECT_EQ(engine.clamped_events(), 1u);
  }
}

TEST(EngineOrder, RunUntilLeavesLaterEventsQueued) {
  for (const sim::QueueKind kind : kQueueKinds) {
    SCOPED_TRACE(sim::queue_kind_name(kind));
    sim::Engine engine(kind);
    int fired = 0;
    engine.call_at(sim::ns(10), [&] { ++fired; });
    engine.call_at(sim::ns(20), [&] { ++fired; });
    engine.call_at(sim::ns(30), [&] { ++fired; });
    EXPECT_EQ(engine.pending_events(), 3u);
    EXPECT_EQ(engine.run_until(sim::ns(20)), sim::ns(20));
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(engine.pending_events(), 1u);
    engine.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(engine.pending_events(), 0u);
  }
}

// Parked callbacks that never fire must still be destroyed (captures own
// resources — here a shared_ptr whose use_count observes destruction).
// The calendar run also covers the teardown walk over bucket chains and
// the overflow band.
TEST(EngineOrder, UnfiredCallbacksDestroyedAtTeardown) {
  for (const sim::QueueKind kind : kQueueKinds) {
    SCOPED_TRACE(sim::queue_kind_name(kind));
    auto token = std::make_shared<int>(42);
    {
      sim::Engine engine(kind);
      engine.call_at(sim::ns(10), [keep = token] { (void)*keep; });
      engine.call_at(sim::ns(20), [keep = token] { (void)*keep; });
      EXPECT_EQ(token.use_count(), 3);
    }
    EXPECT_EQ(token.use_count(), 1);
  }
}

// --- InlineFn ----------------------------------------------------------

TEST(InlineFn, MoveOnlyCaptureStaysInline) {
  auto p = std::make_unique<int>(7);
  sim::InlineFn fn([q = std::move(p)]() { *q += 1; });
  EXPECT_TRUE(static_cast<bool>(fn));
  EXPECT_FALSE(fn.on_heap());
  sim::InlineFn moved = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));
  moved();
  moved.clear();
  EXPECT_FALSE(static_cast<bool>(moved));
}

TEST(InlineFn, OverCapacityCaptureFallsBackToHeap) {
  struct Big {
    std::byte blob[sim::InlineFn::kCapacity + 64] = {};
    int* out = nullptr;
  };
  static_assert(!sim::InlineFn::fits_inline<Big>);
  int result = 0;
  Big big;
  big.out = &result;
  sim::InlineFn fn([big]() { *big.out = 9; });
  EXPECT_TRUE(fn.on_heap());
  sim::InlineFn moved = std::move(fn);  // heap pointer relocates trivially
  EXPECT_TRUE(moved.on_heap());
  moved();
  EXPECT_EQ(result, 9);
}

TEST(InlineFn, EngineRunsMoveOnlyAndOversizedCallbacks) {
  sim::Engine engine;
  int sum = 0;
  auto p = std::make_unique<int>(5);
  engine.call_in(sim::ns(1), [&sum, q = std::move(p)] { sum += *q; });
  struct Fat {
    std::byte pad[200];
  };
  engine.call_in(sim::ns(2), [&sum, fat = Fat{}] { sum += sizeof(fat); });
  engine.run();
  EXPECT_EQ(sum, 205);
}

// --- MrTable -----------------------------------------------------------

TEST(MrTable, DeregisterRecyclesSlotsWithoutGrowth) {
  nic::MrTable table;
  alignas(8) static std::byte buf[4096];
  const auto addr = reinterpret_cast<std::uintptr_t>(buf);
  const std::size_t buckets0 = table.bucket_count();
  // Sustained register/deregister churn: tombstones must be shed by
  // in-place rehashes, not by doubling the table forever, and region
  // objects must come from the freelist.
  for (int i = 0; i < 2000; ++i) {
    const auto& mr = table.register_mr(1, addr, sizeof(buf), nic::kAccessLocalWrite);
    EXPECT_EQ(mr.lkey, mr.rkey);
    ASSERT_TRUE(table.deregister_mr(mr.lkey));
  }
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.bucket_count(), buckets0);
  EXPECT_EQ(table.region_slabs(), 1u);  // one slot, recycled 2000 times
}

TEST(MrTable, LookupSurvivesRehashAndTombstones) {
  nic::MrTable table;
  alignas(8) static std::byte buf[1 << 16];
  const auto addr = reinterpret_cast<std::uintptr_t>(buf);
  std::vector<std::uint32_t> keys;
  for (int i = 0; i < 200; ++i) {
    keys.push_back(
        table.register_mr(1, addr + 64u * i, 64, nic::kAccessLocalWrite).lkey);
  }
  // Deregister every other MR, then verify the survivors still validate
  // (probes must skip tombstones correctly) and the dead keys fail.
  for (std::size_t i = 0; i < keys.size(); i += 2) {
    ASSERT_TRUE(table.deregister_mr(keys[i]));
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const nic::Sge sge{addr + 64u * static_cast<std::uint32_t>(i), 64, keys[i]};
    const nic::MemoryRegion* mr = table.check_local(sge, 1, true);
    if (i % 2 == 0) {
      EXPECT_EQ(mr, nullptr) << "deregistered key " << keys[i];
    } else {
      ASSERT_NE(mr, nullptr) << "live key " << keys[i];
      EXPECT_EQ(mr->lkey, keys[i]);
    }
  }
  EXPECT_EQ(table.size(), 100u);
}

// Pointers returned by register_mr must stay valid across later
// registrations (kernel/verbs hold them long term).
TEST(MrTable, RegionPointersStableAcrossGrowth) {
  nic::MrTable table;
  alignas(8) static std::byte buf[1 << 16];
  const auto addr = reinterpret_cast<std::uintptr_t>(buf);
  const nic::MemoryRegion& first =
      table.register_mr(1, addr, 64, nic::kAccessLocalWrite);
  const std::uint32_t first_key = first.lkey;
  for (int i = 1; i < 500; ++i) {
    table.register_mr(1, addr + 64u * i, 64, nic::kAccessLocalWrite);
  }
  EXPECT_EQ(first.lkey, first_key);  // object not moved by table growth
  EXPECT_EQ(first.addr, addr);
}

// --- WrPool ------------------------------------------------------------

TEST(WrPool, RecyclesNodesAtSteadyState) {
  nic::WrPool pool;
  for (int round = 0; round < 100; ++round) {
    nic::WrRef a = pool.acquire(nic::SendWr{});
    nic::WrRef b = pool.acquire(nic::SendWr{});
    EXPECT_EQ(pool.outstanding(), 2u);
    nic::WrRef c = a;  // copy bumps the refcount; no new node
    EXPECT_EQ(pool.outstanding(), 2u);
  }
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.allocated(), 2u);  // plateaued at peak in-flight depth
}

TEST(WrPool, InlinePayloadReleasedOnRecycle) {
  nic::WrPool pool;
  nic::SendWr wr;
  wr.inline_payload.assign(220, std::byte{0xAB});
  {
    nic::WrRef ref = pool.acquire(std::move(wr));
    EXPECT_EQ(ref->inline_payload.size(), 220u);
  }
  // The recycled node must not pin the payload buffer.
  nic::WrRef next = pool.acquire(nic::SendWr{});
  EXPECT_TRUE(next->inline_payload.empty());
}

// --- Determinism smoke test -------------------------------------------
//
// Golden values captured from the seed build (hex floats are exact): the
// engine/NIC fast-path rework must keep every simulated timestamp
// bit-identical. If an intentional timing-model change ever shifts these,
// re-capture them and say so in the commit.

TEST(GoldenSmoke, Fig1ShapedLatencyAndBandwidth) {
  const auto cfg = core::system_l();

  struct Golden {
    std::size_t size;
    bool interrupt;
    double avg, p50, p99;
  };
  const Golden lat_golden[] = {
      {64, false, 0x1.3ae147ae147aep+0, 0x1.3ae147ae147aep+0, 0x1.3ae147ae147aep+0},
      {64, true, 0x1.74e1719f7f8cbp+2, 0x1.74e1719f7f8cbp+2, 0x1.74e1719f7f8cbp+2},
      {4096, false, 0x1.2ae147ae147aep+1, 0x1.2ae147ae147aep+1, 0x1.2ae147ae147aep+1},
      {4096, true, 0x1.baad2dcb1465fp+2, 0x1.baad2dcb1465fp+2, 0x1.baad2dcb1465fp+2},
  };
  // The goldens were captured on the heap backend; the calendar backend
  // must reproduce every one of them bit-for-bit (same hex floats, same
  // elapsed picosecond count).
  for (const sim::QueueKind kind : kQueueKinds) {
    SCOPED_TRACE(sim::queue_kind_name(kind));
    for (const Golden& g : lat_golden) {
      perftest::Params p;
      p.queue = kind;
      p.op = perftest::TestOp::kSend;
      p.msg_size = g.size;
      p.iterations = 50;
      p.warmup = 10;
      p.knobs.interrupt_wait = g.interrupt;
      const auto r = perftest::run_latency(cfg, p);
      EXPECT_EQ(r.avg_us, g.avg) << "size=" << g.size << " int=" << g.interrupt;
      EXPECT_EQ(r.p50_us, g.p50) << "size=" << g.size << " int=" << g.interrupt;
      EXPECT_EQ(r.p99_us, g.p99) << "size=" << g.size << " int=" << g.interrupt;
    }

    perftest::Params p;
    p.queue = kind;
    p.op = perftest::TestOp::kSend;
    p.msg_size = 65536;
    p.iterations = 200;
    const auto r = perftest::run_bandwidth(cfg, p);
    EXPECT_EQ(r.gbps, 0x1.899e6c9441779p+6);
    EXPECT_EQ(r.messages, 200u);
    EXPECT_EQ(r.elapsed, 1'065'575'000);
  }
}

}  // namespace
}  // namespace cord
