// Batched syscall submission (verbs submission rings + one-crossing
// flushes) and the kernel's policy-verdict fast-path cache.
//
// The headline invariants:
//   * tx_batch > 1 must not change simulated results: latency samples are
//     exactly the per-op samples (the flush happens at the same virtual
//     instant the per-op syscall would have), and batched runs are
//     bit-identical across event-queue backends, sync modes and shard
//     counts.
//   * one flush = one kernel crossing servicing the whole ring — the
//     crossings / ops_serviced counters must diverge.
//   * edge cases: an empty flush is a strict no-op (covered in
//     test_os.cpp) and zero-length WQEs ride the batched path unharmed.
#include <gtest/gtest.h>

#include <random>

#include "os/policies.hpp"
#include "perftest/perftest.hpp"
#include "test_util.hpp"

namespace cord::perftest {
namespace {

using cord::testing::RcEndpoints;
using cord::testing::TwoHostFixture;
using cord::testing::run_task;
using cord::testing::uptr;

Params cord_params(TestOp op, Transport tr, std::size_t size) {
  Params p;
  p.op = op;
  p.transport = tr;
  p.msg_size = size;
  p.iterations = 60;
  p.warmup = 10;
  p.client = verbs::ContextOptions{.mode = verbs::DataplaneMode::kCord};
  p.server = verbs::ContextOptions{.mode = verbs::DataplaneMode::kCord};
  return p;
}

// --- Differential: batched CoRD == per-op CoRD, sample for sample -------

TEST(Batch, BatchedLatencyMatchesPerOpRandomized) {
  // Randomized configurations, fixed seed: op x transport x size x queue
  // backend x sync mode x shard count. For every drawn config the batched
  // runs must reproduce the per-op latency samples *exactly* — the
  // submission ring defers the crossing but never moves it in virtual
  // time (the poll that harvests the completion flushes first).
  std::mt19937 rng(0xC02Du);
  const TestOp ops[] = {TestOp::kSend, TestOp::kWrite, TestOp::kRead};
  const std::size_t sizes[] = {8, 64, 512, 4096};
  const sim::QueueKind queues[] = {sim::QueueKind::kHeap,
                                   sim::QueueKind::kCalendar};
  const sim::SyncMode syncs[] = {sim::SyncMode::kConservative,
                                 sim::SyncMode::kSpeculative};
  const std::size_t shard_opts[] = {1, 2, 4};
  for (int trial = 0; trial < 5; ++trial) {
    const TestOp op = ops[rng() % 3];
    const Transport tr =
        (op == TestOp::kSend && rng() % 2 == 0) ? Transport::kUD : Transport::kRC;
    Params base = cord_params(op, tr, sizes[rng() % 4]);
    base.queue = queues[rng() % 2];
    base.sync = syncs[rng() % 2];
    base.shards = shard_opts[rng() % 3];
    const auto ref = run_latency(core::system_l(), base);
    for (std::uint32_t b : {4u, 16u, 64u}) {
      Params bp = base;
      bp.tx_batch = b;
      const auto r = run_latency(core::system_l(), bp);
      ASSERT_EQ(r.latency_us.values(), ref.latency_us.values())
          << "trial " << trial << " tx_batch=" << b
          << " diverged from the per-op run";
    }
  }
}

TEST(Batch, BatchedBandwidthBitIdenticalAcrossBackendsAndShards) {
  // A deep-pipeline bandwidth run actually exercises multi-WR flushes
  // (the latency ping-pong above only ever gathers one WR). The result
  // must be bit-identical across every backend/sync/shard combination.
  Params p = cord_params(TestOp::kSend, Transport::kRC, 64);
  p.iterations = 300;
  p.tx_depth = 64;
  p.tx_batch = 16;
  double gbps = 0.0;
  sim::Time elapsed = 0;
  bool first = true;
  for (sim::QueueKind q : {sim::QueueKind::kHeap, sim::QueueKind::kCalendar}) {
    for (sim::SyncMode s :
         {sim::SyncMode::kConservative, sim::SyncMode::kSpeculative}) {
      for (std::size_t shards : {1u, 2u, 4u}) {
        Params v = p;
        v.queue = q;
        v.sync = s;
        v.shards = shards;
        const auto r = run_bandwidth(core::system_l(), v);
        ASSERT_EQ(r.messages, 300u);
        if (first) {
          gbps = r.gbps;
          elapsed = r.elapsed;
          first = false;
          continue;
        }
        EXPECT_EQ(r.gbps, gbps) << "queue=" << static_cast<int>(q)
                                << " sync=" << static_cast<int>(s)
                                << " shards=" << shards;
        EXPECT_EQ(r.elapsed, elapsed);
      }
    }
  }
}

// --- Crossing amortization and the counter split -------------------------

TEST(Batch, OneFlushServicesTheWholeRing) {
  TwoHostFixture f;
  run_task(f.engine, [](TwoHostFixture& f) -> sim::Task<> {
    verbs::Context c0(*f.host0, 0,
                      {.mode = verbs::DataplaneMode::kCord, .tx_batch = 8});
    verbs::Context c1(*f.host1, 0, {.mode = verbs::DataplaneMode::kCord});
    RcEndpoints e = co_await cord::testing::connect_rc(c0, c1);
    std::vector<std::byte> src(64, std::byte{0x5A}), dst(64);
    auto* smr = co_await c0.reg_mr(e.pd0, src.data(), src.size(), 0);
    auto* rmr = co_await c1.reg_mr(
        e.pd1, dst.data(), dst.size(),
        nic::kAccessLocalWrite | nic::kAccessRemoteWrite);
    const std::uint64_t cross0 = f.host0->kernel().syscall_count();
    const std::uint64_t ops0 = f.host0->kernel().ops_serviced_count();
    for (int i = 0; i < 32; ++i) {
      nic::SendWr wr;
      wr.wr_id = static_cast<std::uint64_t>(i);
      wr.opcode = nic::Opcode::kRdmaWrite;
      wr.sge = {uptr(src.data()), 64, smr->lkey};
      wr.remote_addr = uptr(dst.data());
      wr.rkey = rmr->rkey;
      int rc = co_await c0.post_send(*e.qp0, std::move(wr));
      if (rc != 0) throw std::runtime_error("batched post_send failed");
    }
    // 32 posts at tx_batch=8: the ring flushed itself four times.
    if (f.host0->kernel().syscall_count() - cross0 != 4)
      throw std::runtime_error("expected exactly 4 crossings for 32 posts");
    if (f.host0->kernel().ops_serviced_count() - ops0 != 32)
      throw std::runtime_error("expected 32 ops serviced");
    int harvested = 0;
    nic::Cqe wc[8];
    while (harvested < 32) {
      harvested += static_cast<int>(
          co_await c0.poll_cq(*e.scq0, std::span<nic::Cqe>{wc, 8}));
    }
    if (dst[0] != std::byte{0x5A}) throw std::runtime_error("payload corrupt");
  }(f));
  const os::Kernel& k = f.host0->kernel();
  EXPECT_EQ(k.batch_flushes(), 4u);
  EXPECT_EQ(k.batch_flushed_ops(), 32u);
  EXPECT_EQ(k.batch_max_wrs(), 8u);
  EXPECT_LT(k.syscall_count(), k.ops_serviced_count())
      << "batching must amortize crossings below ops serviced";
  const std::string proc = k.proc_read("syscalls");
  EXPECT_NE(proc.find("crossings"), std::string::npos) << proc;
  EXPECT_NE(proc.find("ops_serviced"), std::string::npos) << proc;
  EXPECT_NE(proc.find("batch_flushes"), std::string::npos) << proc;
}

TEST(Batch, RecvBurstIsOneCrossing) {
  TwoHostFixture f;
  run_task(f.engine, [](TwoHostFixture& f) -> sim::Task<> {
    verbs::Context c0(*f.host0, 0, {.mode = verbs::DataplaneMode::kCord});
    verbs::Context c1(*f.host1, 0,
                      {.mode = verbs::DataplaneMode::kCord, .tx_batch = 8});
    RcEndpoints e = co_await cord::testing::connect_rc(c0, c1);
    std::vector<std::byte> src(64, std::byte{0x33}), dst(16 * 64);
    auto* smr = co_await c0.reg_mr(e.pd0, src.data(), src.size(), 0);
    auto* rmr = co_await c1.reg_mr(e.pd1, dst.data(), dst.size(),
                                   nic::kAccessLocalWrite);
    std::vector<nic::RecvWr> burst(16);
    for (int i = 0; i < 16; ++i) {
      burst[i] = {static_cast<std::uint64_t>(i),
                  {uptr(dst.data()) + 64 * i, 64, rmr->lkey}};
    }
    const std::uint64_t cross0 = f.host1->kernel().syscall_count();
    int rc = co_await c1.post_recv_burst(*e.qp1, burst);
    if (rc != 0) throw std::runtime_error("recv burst failed");
    if (f.host1->kernel().syscall_count() - cross0 != 1)
      throw std::runtime_error("a recv burst must be one crossing");
    for (int i = 0; i < 16; ++i) {
      rc = co_await c0.post_send(
          *e.qp0, {.sge = {uptr(src.data()), 64, smr->lkey}});
      if (rc != 0) throw std::runtime_error("post_send failed");
      (void)co_await c1.wait_one(*e.rcq1);
    }
    if (dst[15 * 64] != std::byte{0x33})
      throw std::runtime_error("last burst slot never landed");
  }(f));
  EXPECT_EQ(f.host1->kernel().batch_flushes(), 1u);
  EXPECT_EQ(f.host1->kernel().batch_flushed_ops(), 16u);
}

// --- Edge cases ---------------------------------------------------------

TEST(Batch, ZeroLengthWqeRidesTheBatchedPath) {
  TwoHostFixture f;
  run_task(f.engine, [](TwoHostFixture& f) -> sim::Task<> {
    verbs::Context c0(*f.host0, 0,
                      {.mode = verbs::DataplaneMode::kCord, .tx_batch = 4});
    verbs::Context c1(*f.host1, 0, {.mode = verbs::DataplaneMode::kCord});
    RcEndpoints e = co_await cord::testing::connect_rc(c0, c1);
    std::vector<std::byte> dst(64);
    auto* rmr = co_await c1.reg_mr(
        e.pd1, dst.data(), dst.size(),
        nic::kAccessLocalWrite | nic::kAccessRemoteWrite);
    nic::SendWr wr;
    wr.wr_id = 42;
    wr.opcode = nic::Opcode::kRdmaWrite;
    wr.sge = {0, 0, 0};  // zero-length WQE
    wr.remote_addr = uptr(dst.data());
    wr.rkey = rmr->rkey;
    int rc = co_await c0.post_send(*e.qp0, std::move(wr));
    if (rc != 0) throw std::runtime_error("zero-length post failed");
    if (c0.pending() != 1) throw std::runtime_error("WR should be gathered");
    nic::Cqe wc = co_await c0.wait_one(*e.scq0);  // the wait's poll flushes
    if (wc.wr_id != 42 || wc.status != nic::WcStatus::kSuccess)
      throw std::runtime_error("zero-length WQE must complete cleanly");
  }(f));
}

// --- Verdict-cache observability ----------------------------------------

TEST(Batch, VerdictCacheGaugesVisibleInProcMetrics) {
  TwoHostFixture f;
  f.host0->kernel().policies().install(std::make_unique<os::StatsCollector>());
  run_task(f.engine, [](TwoHostFixture& f) -> sim::Task<> {
    verbs::Context c0(*f.host0, 0,
                      {.mode = verbs::DataplaneMode::kCord, .tx_batch = 8,
                       .tenant = 4});
    verbs::Context c1(*f.host1, 0, {.mode = verbs::DataplaneMode::kCord});
    RcEndpoints e = co_await cord::testing::connect_rc(c0, c1);
    std::vector<std::byte> src(64), dst(64);
    auto* smr = co_await c0.reg_mr(e.pd0, src.data(), src.size(), 0);
    auto* rmr = co_await c1.reg_mr(
        e.pd1, dst.data(), dst.size(),
        nic::kAccessLocalWrite | nic::kAccessRemoteWrite);
    for (int i = 0; i < 16; ++i) {
      nic::SendWr wr;
      wr.opcode = nic::Opcode::kRdmaWrite;
      wr.sge = {uptr(src.data()), 64, smr->lkey};
      wr.remote_addr = uptr(dst.data());
      wr.rkey = rmr->rkey;
      (void)co_await c0.post_send(*e.qp0, std::move(wr));
    }
    (void)co_await c0.flush_all();
    int harvested = 0;
    nic::Cqe wc[8];
    while (harvested < 16) {
      harvested += static_cast<int>(
          co_await c0.poll_cq(*e.scq0, std::span<nic::Cqe>{wc, 8}));
    }
  }(f));
  const os::Kernel& k = f.host0->kernel();
  EXPECT_GE(k.verdict_cache().stats().hits, 15u)
      << "after the first full evaluation every same-key WR must hit";
  EXPECT_GE(k.verdict_cache().stats().insertions, 1u);
  const std::string m = k.proc_read("metrics");
  EXPECT_NE(m.find("kernel.verdict_cache.hits"), std::string::npos) << m;
  EXPECT_NE(m.find("kernel.verdict_cache.misses"), std::string::npos) << m;
  EXPECT_NE(m.find("kernel.policy_epoch"), std::string::npos) << m;
  const std::string proc = k.proc_read("syscalls");
  EXPECT_NE(proc.find("verdict_hits"), std::string::npos) << proc;
}

}  // namespace
}  // namespace cord::perftest
