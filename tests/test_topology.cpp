// Rack-topology tests: the leaf-spine builder and its routed multi-hop
// paths, route determinism and error paths, the duplicate-connect and
// lookahead-sentinel regressions, the per-shard-pair lookahead matrix
// (closure, validation, torn-window enforcement, adaptive windows), and
// shards-vs-single-engine bit-identity of perftest runs on a rack fabric.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/system.hpp"
#include "fabric/link.hpp"
#include "fabric/topology.hpp"
#include "perftest/perftest.hpp"
#include "sim/sharded.hpp"
#include "trace/export.hpp"

namespace cord {
namespace {

using sim::Time;

fabric::RackConfig two_by_two() { return fabric::RackConfig{}; }

void add_hosts(fabric::Network& net, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    net.add_node(static_cast<fabric::NodeId>(i),
                 sim::Bandwidth::gbit_per_sec(200.0), sim::ns(150));
  }
}

// --- Topology geometry and routing ------------------------------------

TEST(RackTopology, ConfigGeometry) {
  fabric::RackConfig cfg;
  cfg.racks = 3;
  cfg.hosts_per_rack = 4;
  EXPECT_EQ(cfg.host_count(), 12u);
  EXPECT_EQ(cfg.switch_count(), 4u);  // 3 ToRs + spine
  EXPECT_EQ(cfg.node_count(), 16u);
  EXPECT_EQ(cfg.rack_of(0), 0u);
  EXPECT_EQ(cfg.rack_of(11), 2u);
  EXPECT_EQ(cfg.tor_id(0), 12u);
  EXPECT_EQ(cfg.tor_id(2), 14u);
  EXPECT_EQ(cfg.spine_id(), 15u);

  fabric::RackConfig single;
  single.racks = 1;
  EXPECT_EQ(single.switch_count(), 1u);  // one rack needs no spine
}

TEST(RackTopology, BuilderRejectsDegenerateShapes) {
  sim::Engine e;
  fabric::Network net(e);
  fabric::RackConfig cfg;
  cfg.racks = 0;
  EXPECT_THROW(fabric::build_rack(net, cfg), std::invalid_argument);
  cfg.racks = 1;
  cfg.hosts_per_rack = 0;
  EXPECT_THROW(fabric::build_rack(net, cfg), std::invalid_argument);
}

TEST(RackTopology, RoutedPathsFollowLeafSpine) {
  sim::Engine e;
  fabric::Network net(e);
  const fabric::RackConfig cfg = two_by_two();  // 2 racks x 2 hosts
  add_hosts(net, cfg.host_count());
  fabric::build_rack(net, cfg);

  // Node ids: hosts 0..3, ToRs 4 (rack 0) and 5, spine 6.
  EXPECT_TRUE(net.is_switch(4));
  EXPECT_TRUE(net.is_switch(6));
  EXPECT_FALSE(net.is_switch(0));

  // Intra-rack: two hops through the ToR.
  EXPECT_EQ(net.route(0, 1), (std::vector<fabric::NodeId>{0, 4, 1}));
  const fabric::Path intra = net.path(0, 1);
  EXPECT_EQ(intra.hop_count, 2);
  // Host hop carries only the wire's propagation; the hop leaving the ToR
  // folds in the ToR's forwarding latency.
  EXPECT_EQ(intra.hops[0].propagation, cfg.host_propagation);
  EXPECT_EQ(intra.hops[1].propagation, cfg.host_propagation + cfg.tor_latency);
  EXPECT_EQ(intra.propagation(), sim::ns(150 + 150 + 300));

  // Cross-rack: four hops via the spine.
  EXPECT_EQ(net.route(0, 2), (std::vector<fabric::NodeId>{0, 4, 6, 5, 2}));
  const fabric::Path cross = net.path(0, 2);
  EXPECT_EQ(cross.hop_count, 4);
  EXPECT_EQ(cross.hops[0].propagation, cfg.host_propagation);
  EXPECT_EQ(cross.hops[1].propagation,
            cfg.uplink_propagation + cfg.tor_latency);
  EXPECT_EQ(cross.hops[2].propagation,
            cfg.uplink_propagation + cfg.spine_latency);
  EXPECT_EQ(cross.hops[3].propagation, cfg.host_propagation + cfg.tor_latency);
  EXPECT_EQ(cross.propagation(), sim::ns(150 + 650 + 800 + 450));
  // Single-engine fabric: every hop is driven by the (one) source engine,
  // so the whole chain is source-side.
  EXPECT_EQ(cross.src_hops, cross.hop_count);
  EXPECT_EQ(cross.dst_hops(), 0);
  EXPECT_EQ(cross.src_propagation(), cross.propagation());

  // Routes are directional and deterministic: the reverse path mirrors.
  EXPECT_EQ(net.route(2, 0), (std::vector<fabric::NodeId>{2, 5, 6, 4, 0}));
  // Loopback stays the 1-hop special case.
  EXPECT_EQ(net.route(3, 3), (std::vector<fabric::NodeId>{3}));
  EXPECT_EQ(net.path(3, 3).hop_count, 1);
}

TEST(RackTopology, SingleRackHasNoSpine) {
  sim::Engine e;
  fabric::Network net(e);
  fabric::RackConfig cfg;
  cfg.racks = 1;
  cfg.hosts_per_rack = 3;
  add_hosts(net, cfg.host_count());
  fabric::build_rack(net, cfg);
  EXPECT_EQ(net.route(0, 2), (std::vector<fabric::NodeId>{0, 3, 2}));
  EXPECT_FALSE(net.is_switch(cfg.spine_id()));  // never added
  EXPECT_TRUE(net.has_path(1, 2));
}

TEST(RackTopology, PathErrorPaths) {
  sim::Engine e;
  fabric::Network net(e);
  add_hosts(net, 2);
  // No wiring at all: unknown loopback and no-link both throw.
  EXPECT_THROW(net.path(7, 7), std::invalid_argument);
  EXPECT_THROW(net.path(0, 1), std::invalid_argument);
  EXPECT_FALSE(net.has_path(0, 1));
  // A switch wired to only one of the hosts: host 1 stays unreachable, and
  // the error distinguishes "no route" from "no link".
  net.add_switch(10, /*tier=*/1, sim::ns(300));
  net.connect(0, 10, sim::Bandwidth::gbit_per_sec(100.0), sim::ns(150));
  EXPECT_FALSE(net.has_path(0, 1));
  EXPECT_THROW(net.path(0, 1), std::invalid_argument);
  EXPECT_THROW(net.route(0, 1), std::invalid_argument);
}

// --- Regression: duplicate connect ------------------------------------
//
// Pre-fix, Network::connect silently replaced the Link, destroying the
// Resources inside it while Paths handed to NICs still pointed at them.

TEST(RackTopology, DuplicateConnectThrows) {
  sim::Engine e;
  fabric::Network net(e);
  add_hosts(net, 2);
  net.connect(0, 1, sim::Bandwidth::gbit_per_sec(100.0), sim::ns(150));
  EXPECT_THROW(
      net.connect(0, 1, sim::Bandwidth::gbit_per_sec(200.0), sim::ns(50)),
      std::invalid_argument);
  // The pair key is unordered: reconnecting in reverse is the same link.
  EXPECT_THROW(
      net.connect(1, 0, sim::Bandwidth::gbit_per_sec(200.0), sim::ns(50)),
      std::invalid_argument);
  // The original link (and any Path resource taken from it) is untouched.
  const fabric::Path p = net.path(0, 1);
  EXPECT_EQ(p.hops[0].propagation, sim::ns(150));
}

TEST(RackTopology, RewiringABuiltRackThrows) {
  sim::Engine e;
  fabric::Network net(e);
  const fabric::RackConfig cfg = two_by_two();
  add_hosts(net, cfg.host_count());
  fabric::build_rack(net, cfg);
  EXPECT_THROW(net.connect(0, cfg.tor_id(0), cfg.host_bandwidth,
                           cfg.host_propagation),
               std::invalid_argument);
  // A node can be a host or a switch, never both.
  EXPECT_THROW(net.add_switch(0, 1), std::invalid_argument);
}

// --- Sharded rack systems ---------------------------------------------

TEST(RackSharding, PrefixSuffixSplitFollowsRackPlacement) {
  core::SystemConfig cfg = core::system_l();
  cfg.wiring = core::SystemConfig::Wiring::kRack;
  cfg.rack = two_by_two();
  core::System sys(cfg, 4, 2);  // block placement: rack 0 -> shard 0, rack 1 -> shard 1
  fabric::Network& net = *sys.network_ptr();

  // Cross-rack route: sender's shard drives host->ToR and ToR->spine, the
  // receiver's drives spine->ToR and ToR->host.
  const fabric::Path cross = net.path(0, 2);
  EXPECT_EQ(cross.hop_count, 4);
  EXPECT_EQ(cross.src_hops, 2);
  EXPECT_EQ(cross.dst_hops(), 2);
  EXPECT_EQ(cross.src_propagation(),
            cfg.rack.host_propagation + cfg.rack.uplink_propagation +
                cfg.rack.tor_latency);
  // Intra-rack routes never leave the shard: the whole chain is src-side.
  EXPECT_EQ(net.path(0, 1).src_hops, 2);
  EXPECT_EQ(net.path(0, 1).dst_hops(), 0);

  // The derived pair lookahead is the cross-rack source-side propagation:
  // 150 ns access + (350 ns uplink + 300 ns ToR forward) = 800 ns.
  EXPECT_EQ(sys.sharded().lookahead(0, 1), sim::ns(800));
  EXPECT_EQ(sys.sharded().lookahead(1, 0), sim::ns(800));
}

TEST(RackSharding, MisalignedPlacementsAreRejected) {
  core::SystemConfig cfg = core::system_l();
  cfg.wiring = core::SystemConfig::Wiring::kRack;
  cfg.rack = two_by_two();
  // Rack 0 = hosts {0, 1}: splitting it across shards must throw.
  EXPECT_THROW(core::System(cfg, 4, 2, {0, 1, 0, 1}), std::invalid_argument);
  // Rack-aligned but reversed placement is fine.
  EXPECT_NO_THROW(core::System(cfg, 4, 2, {1, 1, 0, 0}));
  // Host count must match the rack shape.
  EXPECT_THROW(core::System(cfg, 3, 1), std::invalid_argument);
}

// --- Regression: lookahead sentinel overflow --------------------------
//
// fabric::Network::min_cross_lookahead returns Engine::kNoEvent for
// partitions with no cross-shard path. Pre-fix, set_lookahead stored the
// raw sentinel and window arithmetic (T + L) wrapped sim::Time.

TEST(LookaheadMatrix, SentinelClampsToUnbounded) {
  sim::ShardedEngine se(2);
  se.set_lookahead(sim::Engine::kNoEvent);
  EXPECT_EQ(se.lookahead(), sim::ShardedEngine::kUnboundedLookahead);
  EXPECT_EQ(se.lookahead(0, 1), sim::ShardedEngine::kUnboundedLookahead);

  // Matrix form clamps the same way.
  sim::ShardedEngine sm(2);
  sm.set_lookahead(std::vector<Time>(4, sim::Engine::kNoEvent));
  EXPECT_EQ(sm.lookahead(1, 0), sim::ShardedEngine::kUnboundedLookahead);

  // sat_add can no longer wrap: the window edge saturates at the sentinel.
  EXPECT_EQ(sim::ShardedEngine::sat_add(
                sim::Engine::kNoEvent, sim::ShardedEngine::kUnboundedLookahead),
            sim::Engine::kNoEvent);
  EXPECT_EQ(sim::ShardedEngine::sat_add(sim::ns(1000), sim::ns(500)),
            sim::ns(1500));

  // Unbounded shards run their (independent) events to completion. One
  // flag per shard: with no cross-shard traffic the workers never
  // synchronize mid-run, so a shared counter would be a data race.
  bool ran0 = false;
  bool ran1 = false;
  se.shard(0).call_at(sim::ns(5000), [&ran0] { ran0 = true; });
  se.shard(1).call_at(sim::ns(7000), [&ran1] { ran1 = true; });
  se.run();
  EXPECT_TRUE(ran0);
  EXPECT_TRUE(ran1);
}

// --- Per-pair lookahead matrix ----------------------------------------

TEST(LookaheadMatrix, ValidatesShapeAndEntries) {
  sim::ShardedEngine se(3);
  EXPECT_THROW(se.set_lookahead(std::vector<Time>(4, sim::ns(100))),
               std::invalid_argument);  // wrong size (needs 9)
  std::vector<Time> m(9, sim::ns(100));
  m[0 * 3 + 1] = 0;
  EXPECT_THROW(se.set_lookahead(m), std::invalid_argument);
  m[0 * 3 + 1] = -sim::ns(5);
  EXPECT_THROW(se.set_lookahead(m), std::invalid_argument);
  // Diagonal entries are ignored (a shard needs no lookahead to itself).
  m[0 * 3 + 1] = sim::ns(100);
  m[0] = m[4] = m[8] = 0;
  EXPECT_NO_THROW(se.set_lookahead(m));
  EXPECT_EQ(se.lookahead(), sim::ns(100));
}

TEST(LookaheadMatrix, ClosesOverRelays) {
  // Direct bounds: 0 -> 1 at 100 ns, 1 -> 2 at 100 ns, everything else
  // unbounded. An effect can still relay 0 -> 1 -> 2, so the closed bound
  // for (0, 2) must be 200 ns, not unbounded.
  sim::ShardedEngine se(3);
  std::vector<Time> m(9, sim::ShardedEngine::kUnboundedLookahead);
  m[0 * 3 + 1] = sim::ns(100);
  m[1 * 3 + 2] = sim::ns(100);
  se.set_lookahead(m);
  EXPECT_EQ(se.lookahead(0, 1), sim::ns(100));
  EXPECT_EQ(se.lookahead(1, 2), sim::ns(100));
  EXPECT_EQ(se.lookahead(0, 2), sim::ns(200));
  // No route back: the reverse directions stay unbounded.
  EXPECT_EQ(se.lookahead(2, 0), sim::ShardedEngine::kUnboundedLookahead);
  EXPECT_EQ(se.lookahead(1, 0), sim::ShardedEngine::kUnboundedLookahead);
}

TEST(LookaheadMatrix, EnforcesPairBoundsNotTheGlobalMin) {
  // Pair (0, 1) is tight at 100 ns; everything touching shard 2 is 1 us.
  // A 0 -> 2 post dated only 100 ns out clears the global minimum but
  // violates its pair bound — the protocol must reject it.
  auto make = [] {
    auto se = std::make_unique<sim::ShardedEngine>(3);
    std::vector<Time> m(9, sim::ns(1000));
    m[0 * 3 + 1] = m[1 * 3 + 0] = sim::ns(100);
    se->set_lookahead(m);
    return se;
  };
  {
    auto se = make();
    sim::Engine& e0 = se->shard(0);
    e0.call_at(sim::ns(1000), [&, se = se.get()] {
      e0.cross_post(se->shard(2), e0.now() + sim::ns(100),
                    sim::InlineFn([] {}));
    });
    EXPECT_THROW(se->run(), std::logic_error);
  }
  {
    // The same dating is fine on the tight pair.
    auto se = make();
    sim::Engine& e0 = se->shard(0);
    Time hit = -1;
    e0.call_at(sim::ns(1000), [&, se = se.get()] {
      e0.cross_post(se->shard(1), e0.now() + sim::ns(100),
                    sim::InlineFn([&, se] { hit = se->shard(1).now(); }));
    });
    se->run();
    EXPECT_EQ(hit, sim::ns(1100));
  }
}

TEST(LookaheadMatrix, AdaptiveWindowsBeatTheUniformMinimum) {
  // Shard 2 carries a long event train (200 events, 1 us apart) and is
  // 1 ms of lookahead away from everyone; shards 0 and 1 interact on a
  // tight 100 ns pair. Under the old uniform protocol the global window is
  // the 100 ns minimum and shard 2 crawls through its train one window per
  // event; the per-pair matrix lets shard 2's window stretch to its own
  // 1 ms bounds and swallow the train whole.
  static constexpr int kEvents = 200;
  auto run_case = [](bool per_pair) {
    sim::ShardedEngine se(3);
    if (per_pair) {
      std::vector<Time> m(9, sim::ns(1'000'000));
      m[0 * 3 + 1] = m[1 * 3 + 0] = sim::ns(100);
      se.set_lookahead(m);
    } else {
      se.set_lookahead(sim::ns(100));  // the uniform global minimum
    }
    sim::Engine& e0 = se.shard(0);
    int delivered = 0;
    int ticks = 0;
    e0.call_at(sim::ns(1000), [&, &se = se] {
      e0.cross_post(se.shard(1), e0.now() + sim::ns(100),
                    sim::InlineFn([&] { ++delivered; }));
    });
    for (int i = 0; i < kEvents; ++i) {
      se.shard(2).call_at(sim::ns(1000) * (i + 1), [&] { ++ticks; });
    }
    se.run();
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(ticks, kEvents);
    return se.stats().windows;
  };
  const std::uint64_t uniform = run_case(false);
  const std::uint64_t adaptive = run_case(true);
  EXPECT_GT(uniform, static_cast<std::uint64_t>(kEvents) / 2);
  EXPECT_LT(adaptive, uniform / 4);
}

// --- Bit-identity: perftest on a rack fabric --------------------------
//
// Client on host 0, server on host 7 — the far corner of a 4-rack x
// 2-host leaf-spine — with the default block placement (rack-aligned at
// 1, 2 and 4 shards). A sharded run is only correct if it reproduces the
// single-engine simulation bit-for-bit.

perftest::Params rack_params(perftest::TestOp op, std::size_t shards) {
  perftest::Params p;
  p.op = op;
  p.msg_size = 64;
  p.iterations = 30;
  p.warmup = 5;
  p.racks = 4;
  p.hosts_per_rack = 2;
  p.shards = shards;
  return p;
}

TEST(RackGolden, SendLatencyIsShardInvariant) {
  const auto cfg = core::system_l();
  const auto single = perftest::run_latency(cfg, rack_params(perftest::TestOp::kSend, 1));
  EXPECT_GT(single.avg_us, 0.0);
  for (std::size_t shards : {2u, 4u}) {
    const auto r =
        perftest::run_latency(cfg, rack_params(perftest::TestOp::kSend, shards));
    EXPECT_EQ(r.avg_us, single.avg_us) << "shards=" << shards;
    EXPECT_EQ(r.p50_us, single.p50_us) << "shards=" << shards;
    EXPECT_EQ(r.p99_us, single.p99_us) << "shards=" << shards;
    EXPECT_GT(r.shard_windows, 0u);
    EXPECT_GT(r.shard_messages, 0u);
  }
}

TEST(RackGolden, WriteAndReadLatencyAreShardInvariant) {
  const auto cfg = core::system_l();
  for (perftest::TestOp op :
       {perftest::TestOp::kWrite, perftest::TestOp::kRead}) {
    const auto single = perftest::run_latency(cfg, rack_params(op, 1));
    const auto sharded = perftest::run_latency(cfg, rack_params(op, 4));
    EXPECT_EQ(sharded.avg_us, single.avg_us);
    EXPECT_EQ(sharded.p50_us, single.p50_us);
    EXPECT_EQ(sharded.p99_us, single.p99_us);
  }
}

TEST(RackGolden, BandwidthIsShardInvariant) {
  const auto cfg = core::system_l();
  auto params = [](std::size_t shards) {
    perftest::Params p = rack_params(perftest::TestOp::kSend, shards);
    p.msg_size = 8192;
    p.iterations = 100;
    return p;
  };
  const auto single = perftest::run_bandwidth(cfg, params(1));
  EXPECT_GT(single.gbps, 0.0);
  for (std::size_t shards : {2u, 4u}) {
    const auto r = perftest::run_bandwidth(cfg, params(shards));
    EXPECT_EQ(r.gbps, single.gbps) << "shards=" << shards;
    EXPECT_EQ(r.elapsed, single.elapsed) << "shards=" << shards;
    EXPECT_EQ(r.messages, single.messages) << "shards=" << shards;
  }
}

TEST(RackGolden, CanonicalTraceIsShardInvariant) {
  const auto cfg = core::system_l();
  auto capture = [&](std::size_t shards) {
    perftest::Params p = rack_params(perftest::TestOp::kSend, shards);
    p.msg_size = 256;
    p.iterations = 10;
    p.warmup = 2;
    p.capture_trace = true;
    auto r = perftest::run_latency(cfg, p);
    EXPECT_EQ(r.trace_dropped, 0u);
    return trace::canonical_trace(std::move(r.trace));
  };
  const auto t1 = capture(1);
  const auto t2 = capture(2);
  const auto t4 = capture(4);
  ASSERT_FALSE(t1.empty());
  ASSERT_EQ(t1.size(), t2.size());
  ASSERT_EQ(t1.size(), t4.size());
  EXPECT_EQ(0, std::memcmp(t1.data(), t2.data(),
                           t1.size() * sizeof(trace::Record)));
  EXPECT_EQ(0, std::memcmp(t1.data(), t4.data(),
                           t1.size() * sizeof(trace::Record)));
}

}  // namespace
}  // namespace cord
