// Rack-topology tests: the leaf-spine builder and its routed multi-hop
// paths, route determinism and error paths, the duplicate-connect and
// lookahead-sentinel regressions, the per-shard-pair lookahead matrix
// (closure, validation, torn-window enforcement, adaptive windows), and
// shards-vs-single-engine bit-identity of perftest runs on a rack fabric.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/system.hpp"
#include "fabric/link.hpp"
#include "fabric/topology.hpp"
#include "nic/nic.hpp"
#include "perftest/perftest.hpp"
#include "sim/sharded.hpp"
#include "trace/export.hpp"

namespace cord {
namespace {

using sim::Time;

fabric::RackConfig two_by_two() { return fabric::RackConfig{}; }

void add_hosts(fabric::Network& net, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    net.add_node(static_cast<fabric::NodeId>(i),
                 sim::Bandwidth::gbit_per_sec(200.0), sim::ns(150));
  }
}

// --- Topology geometry and routing ------------------------------------

TEST(RackTopology, ConfigGeometry) {
  fabric::RackConfig cfg;
  cfg.racks = 3;
  cfg.hosts_per_rack = 4;
  EXPECT_EQ(cfg.host_count(), 12u);
  EXPECT_EQ(cfg.switch_count(), 4u);  // 3 ToRs + spine
  EXPECT_EQ(cfg.node_count(), 16u);
  EXPECT_EQ(cfg.rack_of(0), 0u);
  EXPECT_EQ(cfg.rack_of(11), 2u);
  EXPECT_EQ(cfg.tor_id(0), 12u);
  EXPECT_EQ(cfg.tor_id(2), 14u);
  EXPECT_EQ(cfg.spine_id(), 15u);

  fabric::RackConfig single;
  single.racks = 1;
  EXPECT_EQ(single.switch_count(), 1u);  // one rack needs no spine
}

TEST(RackTopology, BuilderRejectsDegenerateShapes) {
  sim::Engine e;
  fabric::Network net(e);
  fabric::RackConfig cfg;
  cfg.racks = 0;
  EXPECT_THROW(fabric::build_rack(net, cfg), std::invalid_argument);
  cfg.racks = 1;
  cfg.hosts_per_rack = 0;
  EXPECT_THROW(fabric::build_rack(net, cfg), std::invalid_argument);
}

TEST(RackTopology, RoutedPathsFollowLeafSpine) {
  sim::Engine e;
  fabric::Network net(e);
  const fabric::RackConfig cfg = two_by_two();  // 2 racks x 2 hosts
  add_hosts(net, cfg.host_count());
  fabric::build_rack(net, cfg);

  // Node ids: hosts 0..3, ToRs 4 (rack 0) and 5, spine 6.
  EXPECT_TRUE(net.is_switch(4));
  EXPECT_TRUE(net.is_switch(6));
  EXPECT_FALSE(net.is_switch(0));

  // Intra-rack: two hops through the ToR.
  EXPECT_EQ(net.route(0, 1), (std::vector<fabric::NodeId>{0, 4, 1}));
  const fabric::Path intra = net.path(0, 1);
  EXPECT_EQ(intra.hop_count, 2);
  // Host hop carries only the wire's propagation; the hop leaving the ToR
  // folds in the ToR's forwarding latency.
  EXPECT_EQ(intra.hops[0].propagation, cfg.host_propagation);
  EXPECT_EQ(intra.hops[1].propagation, cfg.host_propagation + cfg.tor_latency);
  EXPECT_EQ(intra.propagation(), sim::ns(150 + 150 + 300));

  // Cross-rack: four hops via the spine.
  EXPECT_EQ(net.route(0, 2), (std::vector<fabric::NodeId>{0, 4, 6, 5, 2}));
  const fabric::Path cross = net.path(0, 2);
  EXPECT_EQ(cross.hop_count, 4);
  EXPECT_EQ(cross.hops[0].propagation, cfg.host_propagation);
  EXPECT_EQ(cross.hops[1].propagation,
            cfg.uplink_propagation + cfg.tor_latency);
  EXPECT_EQ(cross.hops[2].propagation,
            cfg.uplink_propagation + cfg.spine_latency);
  EXPECT_EQ(cross.hops[3].propagation, cfg.host_propagation + cfg.tor_latency);
  EXPECT_EQ(cross.propagation(), sim::ns(150 + 650 + 800 + 450));
  // The src/dst split is topological (climbing hops vs descending hops),
  // NOT placement-derived: even on a single-engine fabric the cross-rack
  // route splits at the spine, exactly as it does when sharded. (Pre-fix,
  // a 1-shard run reported src_hops == hop_count here, which made UD
  // completion times and ctrl-lane handoffs placement-dependent.)
  EXPECT_EQ(cross.src_hops, 2);
  EXPECT_EQ(cross.dst_hops(), 2);
  EXPECT_EQ(cross.src_propagation(), sim::ns(150 + 650));
  // Intra-rack: up to the ToR is source-side, down to the host dst-side.
  EXPECT_EQ(intra.src_hops, 1);
  EXPECT_EQ(intra.dst_hops(), 1);

  // Routes are directional and deterministic: the reverse path mirrors.
  EXPECT_EQ(net.route(2, 0), (std::vector<fabric::NodeId>{2, 5, 6, 4, 0}));
  // Loopback stays the 1-hop special case.
  EXPECT_EQ(net.route(3, 3), (std::vector<fabric::NodeId>{3}));
  EXPECT_EQ(net.path(3, 3).hop_count, 1);
}

TEST(RackTopology, SingleRackHasNoSpine) {
  sim::Engine e;
  fabric::Network net(e);
  fabric::RackConfig cfg;
  cfg.racks = 1;
  cfg.hosts_per_rack = 3;
  add_hosts(net, cfg.host_count());
  fabric::build_rack(net, cfg);
  EXPECT_EQ(net.route(0, 2), (std::vector<fabric::NodeId>{0, 3, 2}));
  EXPECT_FALSE(net.is_switch(cfg.spine_id()));  // never added
  EXPECT_TRUE(net.has_path(1, 2));
}

TEST(RackTopology, PathErrorPaths) {
  sim::Engine e;
  fabric::Network net(e);
  add_hosts(net, 2);
  // No wiring at all: unknown loopback and no-link both throw.
  EXPECT_THROW(net.path(7, 7), std::invalid_argument);
  EXPECT_THROW(net.path(0, 1), std::invalid_argument);
  EXPECT_FALSE(net.has_path(0, 1));
  // A switch wired to only one of the hosts: host 1 stays unreachable, and
  // the error distinguishes "no route" from "no link".
  net.add_switch(10, /*tier=*/1, sim::ns(300));
  net.connect(0, 10, sim::Bandwidth::gbit_per_sec(100.0), sim::ns(150));
  EXPECT_FALSE(net.has_path(0, 1));
  EXPECT_THROW(net.path(0, 1), std::invalid_argument);
  EXPECT_THROW(net.route(0, 1), std::invalid_argument);
}

// --- Regression: duplicate connect ------------------------------------
//
// Pre-fix, Network::connect silently replaced the Link, destroying the
// Resources inside it while Paths handed to NICs still pointed at them.

TEST(RackTopology, DuplicateConnectThrows) {
  sim::Engine e;
  fabric::Network net(e);
  add_hosts(net, 2);
  net.connect(0, 1, sim::Bandwidth::gbit_per_sec(100.0), sim::ns(150));
  EXPECT_THROW(
      net.connect(0, 1, sim::Bandwidth::gbit_per_sec(200.0), sim::ns(50)),
      std::invalid_argument);
  // The pair key is unordered: reconnecting in reverse is the same link.
  EXPECT_THROW(
      net.connect(1, 0, sim::Bandwidth::gbit_per_sec(200.0), sim::ns(50)),
      std::invalid_argument);
  // The original link (and any Path resource taken from it) is untouched.
  const fabric::Path p = net.path(0, 1);
  EXPECT_EQ(p.hops[0].propagation, sim::ns(150));
}

TEST(RackTopology, RewiringABuiltRackThrows) {
  sim::Engine e;
  fabric::Network net(e);
  const fabric::RackConfig cfg = two_by_two();
  add_hosts(net, cfg.host_count());
  fabric::build_rack(net, cfg);
  EXPECT_THROW(net.connect(0, cfg.tor_id(0), cfg.host_bandwidth,
                           cfg.host_propagation),
               std::invalid_argument);
  // A node can be a host or a switch, never both.
  EXPECT_THROW(net.add_switch(0, 1), std::invalid_argument);
}

// --- Sharded rack systems ---------------------------------------------

TEST(RackSharding, PrefixSuffixSplitIsTopological) {
  core::SystemConfig cfg = core::system_l();
  cfg.wiring = core::SystemConfig::Wiring::kRack;
  cfg.rack = two_by_two();
  core::System sys(cfg, 4, 2);  // block placement: rack 0 -> shard 0, rack 1 -> shard 1
  fabric::Network& net = *sys.network_ptr();

  // Cross-rack route: sender's shard drives host->ToR and ToR->spine, the
  // receiver's drives spine->ToR and ToR->host.
  const fabric::Path cross = net.path(0, 2);
  EXPECT_EQ(cross.hop_count, 4);
  EXPECT_EQ(cross.src_hops, 2);
  EXPECT_EQ(cross.dst_hops(), 2);
  EXPECT_EQ(cross.src_propagation(),
            cfg.rack.host_propagation + cfg.rack.uplink_propagation +
                cfg.rack.tor_latency);
  // Intra-rack routes never leave the shard, but the topological split
  // still puts the descending ToR->host hop on the destination side —
  // the same split a 1-shard run reports.
  EXPECT_EQ(net.path(0, 1).src_hops, 1);
  EXPECT_EQ(net.path(0, 1).dst_hops(), 1);

  // The derived pair lookahead is the cross-rack source-side propagation:
  // 150 ns access + (350 ns uplink + 300 ns ToR forward) = 800 ns.
  EXPECT_EQ(sys.sharded().lookahead(0, 1), sim::ns(800));
  EXPECT_EQ(sys.sharded().lookahead(1, 0), sim::ns(800));
}

TEST(RackSharding, MisalignedPlacementsAreRejected) {
  core::SystemConfig cfg = core::system_l();
  cfg.wiring = core::SystemConfig::Wiring::kRack;
  cfg.rack = two_by_two();
  // Rack 0 = hosts {0, 1}: splitting it across shards must throw.
  EXPECT_THROW(core::System(cfg, 4, 2, {0, 1, 0, 1}), std::invalid_argument);
  // Rack-aligned but reversed placement is fine.
  EXPECT_NO_THROW(core::System(cfg, 4, 2, {1, 1, 0, 0}));
  // Host count must match the rack shape.
  EXPECT_THROW(core::System(cfg, 3, 1), std::invalid_argument);
}

// --- Regression: lookahead sentinel overflow --------------------------
//
// fabric::Network::min_cross_lookahead returns Engine::kNoEvent for
// partitions with no cross-shard path. Pre-fix, set_lookahead stored the
// raw sentinel and window arithmetic (T + L) wrapped sim::Time.

TEST(LookaheadMatrix, SentinelClampsToUnbounded) {
  sim::ShardedEngine se(2);
  se.set_lookahead(sim::Engine::kNoEvent);
  EXPECT_EQ(se.lookahead(), sim::ShardedEngine::kUnboundedLookahead);
  EXPECT_EQ(se.lookahead(0, 1), sim::ShardedEngine::kUnboundedLookahead);

  // Matrix form clamps the same way.
  sim::ShardedEngine sm(2);
  sm.set_lookahead(std::vector<Time>(4, sim::Engine::kNoEvent));
  EXPECT_EQ(sm.lookahead(1, 0), sim::ShardedEngine::kUnboundedLookahead);

  // sat_add can no longer wrap: the window edge saturates at the sentinel.
  EXPECT_EQ(sim::ShardedEngine::sat_add(
                sim::Engine::kNoEvent, sim::ShardedEngine::kUnboundedLookahead),
            sim::Engine::kNoEvent);
  EXPECT_EQ(sim::ShardedEngine::sat_add(sim::ns(1000), sim::ns(500)),
            sim::ns(1500));

  // Unbounded shards run their (independent) events to completion. One
  // flag per shard: with no cross-shard traffic the workers never
  // synchronize mid-run, so a shared counter would be a data race.
  bool ran0 = false;
  bool ran1 = false;
  se.shard(0).call_at(sim::ns(5000), [&ran0] { ran0 = true; });
  se.shard(1).call_at(sim::ns(7000), [&ran1] { ran1 = true; });
  se.run();
  EXPECT_TRUE(ran0);
  EXPECT_TRUE(ran1);
}

// --- Regression: finite times near the sentinel ------------------------
//
// Pre-fix, run_parallel converted any *finite* window edge that reached
// kUnboundedLookahead into "unbounded", so a shard whose next event sat
// within one lookahead of the sentinel free-ran past its peers: cross
// posts landed behind the receiver's clock and were silently clamped and
// reordered. Event times that large are out of the protocol's domain;
// they must fail loudly, never desynchronize quietly.

TEST(LookaheadMatrix, EventAtTheSentinelFailsLoudly) {
  sim::ShardedEngine se(2);
  se.set_lookahead(sim::ns(100));
  se.shard(0).call_at(sim::ShardedEngine::kUnboundedLookahead, [] {});
  se.shard(1).call_at(sim::ns(10), [] {});
  EXPECT_THROW(se.run(), std::logic_error);
}

TEST(LookaheadMatrix, SentinelAdjacentWindowFailsLoudlyNotSilently) {
  // next0 is within one lookahead of the sentinel, so the edge computed
  // from it crosses the threshold. Pre-fix both shards went unbounded and
  // the cross post (dated past the sentinel) was clamped behind shard 1's
  // clock with only a counter to show for it; now the run throws.
  const Time base = sim::ShardedEngine::kUnboundedLookahead - sim::ns(50);
  sim::ShardedEngine se(2);
  se.set_lookahead(sim::ns(100));
  sim::Engine& e0 = se.shard(0);
  e0.call_at(base, [&] {
    e0.cross_post(se.shard(1), base + sim::ns(100), sim::InlineFn([] {}));
  });
  se.shard(1).call_at(base + sim::ns(20), [] {});
  EXPECT_THROW(se.run(), std::logic_error);
  EXPECT_EQ(se.clamped_events(), 0u);
}

// --- Per-pair lookahead matrix ----------------------------------------

TEST(LookaheadMatrix, ValidatesShapeAndEntries) {
  sim::ShardedEngine se(3);
  EXPECT_THROW(se.set_lookahead(std::vector<Time>(4, sim::ns(100))),
               std::invalid_argument);  // wrong size (needs 9)
  std::vector<Time> m(9, sim::ns(100));
  m[0 * 3 + 1] = 0;
  EXPECT_THROW(se.set_lookahead(m), std::invalid_argument);
  m[0 * 3 + 1] = -sim::ns(5);
  EXPECT_THROW(se.set_lookahead(m), std::invalid_argument);
  // Diagonal entries are ignored (a shard needs no lookahead to itself).
  m[0 * 3 + 1] = sim::ns(100);
  m[0] = m[4] = m[8] = 0;
  EXPECT_NO_THROW(se.set_lookahead(m));
  EXPECT_EQ(se.lookahead(), sim::ns(100));
}

TEST(LookaheadMatrix, ClosesOverRelays) {
  // Direct bounds: 0 -> 1 at 100 ns, 1 -> 2 at 100 ns, everything else
  // unbounded. An effect can still relay 0 -> 1 -> 2, so the closed bound
  // for (0, 2) must be 200 ns, not unbounded.
  sim::ShardedEngine se(3);
  std::vector<Time> m(9, sim::ShardedEngine::kUnboundedLookahead);
  m[0 * 3 + 1] = sim::ns(100);
  m[1 * 3 + 2] = sim::ns(100);
  se.set_lookahead(m);
  EXPECT_EQ(se.lookahead(0, 1), sim::ns(100));
  EXPECT_EQ(se.lookahead(1, 2), sim::ns(100));
  EXPECT_EQ(se.lookahead(0, 2), sim::ns(200));
  // No route back: the reverse directions stay unbounded.
  EXPECT_EQ(se.lookahead(2, 0), sim::ShardedEngine::kUnboundedLookahead);
  EXPECT_EQ(se.lookahead(1, 0), sim::ShardedEngine::kUnboundedLookahead);
}

TEST(LookaheadMatrix, EnforcesPairBoundsNotTheGlobalMin) {
  // Pair (0, 1) is tight at 100 ns; everything touching shard 2 is 1 us.
  // A 0 -> 2 post dated only 100 ns out clears the global minimum but
  // violates its pair bound — the protocol must reject it.
  auto make = [] {
    auto se = std::make_unique<sim::ShardedEngine>(3);
    std::vector<Time> m(9, sim::ns(1000));
    m[0 * 3 + 1] = m[1 * 3 + 0] = sim::ns(100);
    se->set_lookahead(m);
    return se;
  };
  {
    auto se = make();
    sim::Engine& e0 = se->shard(0);
    e0.call_at(sim::ns(1000), [&, se = se.get()] {
      e0.cross_post(se->shard(2), e0.now() + sim::ns(100),
                    sim::InlineFn([] {}));
    });
    EXPECT_THROW(se->run(), std::logic_error);
  }
  {
    // The same dating is fine on the tight pair.
    auto se = make();
    sim::Engine& e0 = se->shard(0);
    Time hit = -1;
    e0.call_at(sim::ns(1000), [&, se = se.get()] {
      e0.cross_post(se->shard(1), e0.now() + sim::ns(100),
                    sim::InlineFn([&, se] { hit = se->shard(1).now(); }));
    });
    se->run();
    EXPECT_EQ(hit, sim::ns(1100));
  }
}

TEST(LookaheadMatrix, AdaptiveWindowsBeatTheUniformMinimum) {
  // Shard 2 carries a long event train (200 events, 1 us apart) and is
  // 1 ms of lookahead away from everyone; shards 0 and 1 interact on a
  // tight 100 ns pair. Under the old uniform protocol the global window is
  // the 100 ns minimum and shard 2 crawls through its train one window per
  // event; the per-pair matrix lets shard 2's window stretch to its own
  // 1 ms bounds and swallow the train whole.
  static constexpr int kEvents = 200;
  auto run_case = [](bool per_pair) {
    sim::ShardedEngine se(3);
    if (per_pair) {
      std::vector<Time> m(9, sim::ns(1'000'000));
      m[0 * 3 + 1] = m[1 * 3 + 0] = sim::ns(100);
      se.set_lookahead(m);
    } else {
      se.set_lookahead(sim::ns(100));  // the uniform global minimum
    }
    sim::Engine& e0 = se.shard(0);
    int delivered = 0;
    int ticks = 0;
    e0.call_at(sim::ns(1000), [&, &se = se] {
      e0.cross_post(se.shard(1), e0.now() + sim::ns(100),
                    sim::InlineFn([&] { ++delivered; }));
    });
    for (int i = 0; i < kEvents; ++i) {
      se.shard(2).call_at(sim::ns(1000) * (i + 1), [&] { ++ticks; });
    }
    se.run();
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(ticks, kEvents);
    return se.stats().windows;
  };
  const std::uint64_t uniform = run_case(false);
  const std::uint64_t adaptive = run_case(true);
  EXPECT_GT(uniform, static_cast<std::uint64_t>(kEvents) / 2);
  EXPECT_LT(adaptive, uniform / 4);
}

// --- Bit-identity: perftest on a rack fabric --------------------------
//
// Client on host 0, server on host 7 — the far corner of a 4-rack x
// 2-host leaf-spine — with the default block placement (rack-aligned at
// 1, 2 and 4 shards). A sharded run is only correct if it reproduces the
// single-engine simulation bit-for-bit.

perftest::Params rack_params(perftest::TestOp op, std::size_t shards) {
  perftest::Params p;
  p.op = op;
  p.msg_size = 64;
  p.iterations = 30;
  p.warmup = 5;
  p.racks = 4;
  p.hosts_per_rack = 2;
  p.shards = shards;
  return p;
}

TEST(RackGolden, SendLatencyIsShardInvariant) {
  const auto cfg = core::system_l();
  const auto single = perftest::run_latency(cfg, rack_params(perftest::TestOp::kSend, 1));
  EXPECT_GT(single.avg_us, 0.0);
  for (std::size_t shards : {2u, 4u}) {
    const auto r =
        perftest::run_latency(cfg, rack_params(perftest::TestOp::kSend, shards));
    EXPECT_EQ(r.avg_us, single.avg_us) << "shards=" << shards;
    EXPECT_EQ(r.p50_us, single.p50_us) << "shards=" << shards;
    EXPECT_EQ(r.p99_us, single.p99_us) << "shards=" << shards;
    EXPECT_GT(r.shard_windows, 0u);
    EXPECT_GT(r.shard_messages, 0u);
  }
}

TEST(RackGolden, WriteAndReadLatencyAreShardInvariant) {
  const auto cfg = core::system_l();
  for (perftest::TestOp op :
       {perftest::TestOp::kWrite, perftest::TestOp::kRead}) {
    const auto single = perftest::run_latency(cfg, rack_params(op, 1));
    const auto sharded = perftest::run_latency(cfg, rack_params(op, 4));
    EXPECT_EQ(sharded.avg_us, single.avg_us);
    EXPECT_EQ(sharded.p50_us, single.p50_us);
    EXPECT_EQ(sharded.p99_us, single.p99_us);
  }
}

TEST(RackGolden, BandwidthIsShardInvariant) {
  const auto cfg = core::system_l();
  auto params = [](std::size_t shards) {
    perftest::Params p = rack_params(perftest::TestOp::kSend, shards);
    p.msg_size = 8192;
    p.iterations = 100;
    return p;
  };
  const auto single = perftest::run_bandwidth(cfg, params(1));
  EXPECT_GT(single.gbps, 0.0);
  for (std::size_t shards : {2u, 4u}) {
    const auto r = perftest::run_bandwidth(cfg, params(shards));
    EXPECT_EQ(r.gbps, single.gbps) << "shards=" << shards;
    EXPECT_EQ(r.elapsed, single.elapsed) << "shards=" << shards;
    EXPECT_EQ(r.messages, single.messages) << "shards=" << shards;
  }
}

TEST(RackGolden, MtuBoundarySizesAreShardAndBackendInvariant) {
  // MTU segmentation edge cases (1 byte, exactly k*MTU, k*MTU + 1) across
  // the routed rack fabric: the fused per-burst segmentation must produce
  // bit-identical latencies at every shard count under both event-queue
  // backends. The NIC default MTU is 4096.
  const auto cfg = core::system_l();
  for (const std::size_t msg_size : {std::size_t{1}, std::size_t{4096},
                                     std::size_t{3 * 4096},
                                     std::size_t{3 * 4096 + 1}}) {
    auto params = [&](std::size_t shards, sim::QueueKind queue) {
      perftest::Params p = rack_params(perftest::TestOp::kSend, shards);
      p.msg_size = msg_size;
      p.iterations = 10;
      p.warmup = 2;
      p.queue = queue;
      return p;
    };
    const auto single =
        perftest::run_latency(cfg, params(1, sim::QueueKind::kHeap));
    EXPECT_GT(single.avg_us, 0.0);
    for (const sim::QueueKind queue :
         {sim::QueueKind::kHeap, sim::QueueKind::kCalendar}) {
      for (const std::size_t shards : {1u, 2u, 4u}) {
        if (shards == 1 && queue == sim::QueueKind::kHeap) continue;
        SCOPED_TRACE("msg_size=" + std::to_string(msg_size) + " " +
                     std::string(sim::queue_kind_name(queue)) +
                     " shards=" + std::to_string(shards));
        const auto r = perftest::run_latency(cfg, params(shards, queue));
        EXPECT_EQ(r.avg_us, single.avg_us);
        EXPECT_EQ(r.p50_us, single.p50_us);
        EXPECT_EQ(r.p99_us, single.p99_us);
      }
    }
  }
}

TEST(RackGolden, CanonicalTraceIsShardInvariant) {
  const auto cfg = core::system_l();
  auto capture = [&](std::size_t shards, sim::QueueKind queue) {
    perftest::Params p = rack_params(perftest::TestOp::kSend, shards);
    p.queue = queue;
    p.msg_size = 256;
    p.iterations = 10;
    p.warmup = 2;
    p.capture_trace = true;
    auto r = perftest::run_latency(cfg, p);
    EXPECT_EQ(r.trace_dropped, 0u);
    return trace::canonical_trace(std::move(r.trace));
  };
  // The 1-shard heap capture is the golden; every other (shards, queue)
  // combination — including the calendar event queue at 1, 2 and 4
  // shards — must reproduce it byte-for-byte. The sharded calendar runs
  // also cover its next_event_time() peeks at conservative window edges.
  const auto t1 = capture(1, sim::QueueKind::kHeap);
  ASSERT_FALSE(t1.empty());
  for (const sim::QueueKind queue :
       {sim::QueueKind::kHeap, sim::QueueKind::kCalendar}) {
    for (const std::size_t shards : {1u, 2u, 4u}) {
      if (shards == 1 && queue == sim::QueueKind::kHeap) continue;
      SCOPED_TRACE(std::string(sim::queue_kind_name(queue)) + " shards=" +
                   std::to_string(shards));
      const auto t = capture(shards, queue);
      ASSERT_EQ(t1.size(), t.size());
      EXPECT_EQ(0, std::memcmp(t1.data(), t.data(),
                               t1.size() * sizeof(trace::Record)));
    }
  }
}

TEST(RackGolden, UdSendIsShardInvariant) {
  // Regression for the placement-derived prefix split: UD completes a send
  // at the end of the path's source-side segment, so a 1-shard rack run
  // (src_hops == hop_count pre-fix) dated client completions at full
  // 4-hop delivery while a sharded run dated them at the rack boundary —
  // every UD latency differed by the downstream propagation. The split is
  // topological now, so the completion point is the same at every shard
  // count.
  const auto cfg = core::system_l();
  auto capture = [&](std::size_t shards) {
    perftest::Params p = rack_params(perftest::TestOp::kSend, shards);
    p.transport = perftest::Transport::kUD;
    p.msg_size = 512;
    p.iterations = 10;
    p.warmup = 2;
    p.capture_trace = true;
    return perftest::run_latency(cfg, p);
  };
  const auto single = capture(1);
  EXPECT_GT(single.avg_us, 0.0);
  const auto t1 = trace::canonical_trace(std::move(capture(1).trace));
  ASSERT_FALSE(t1.empty());
  for (std::size_t shards : {2u, 4u}) {
    const auto r = capture(shards);
    EXPECT_EQ(r.avg_us, single.avg_us) << "shards=" << shards;
    EXPECT_EQ(r.p50_us, single.p50_us) << "shards=" << shards;
    EXPECT_EQ(r.p99_us, single.p99_us) << "shards=" << shards;
    auto rt = capture(shards);
    const auto ts = trace::canonical_trace(std::move(rt.trace));
    ASSERT_EQ(t1.size(), ts.size()) << "shards=" << shards;
    EXPECT_EQ(0, std::memcmp(t1.data(), ts.data(),
                             t1.size() * sizeof(trace::Record)))
        << "shards=" << shards;
  }
}

// --- Bit-identity: NIC-level rack runs ---------------------------------
//
// core::System shares one NicConfig across hosts and its workloads never
// converge on a downlink, so these regressions drive NICs directly over a
// hand-built sharded rack.

/// Hosts wired through a rack preset over a ShardedEngine with a
/// rack-aligned block placement (rack r's hosts, and its ToR, on shard
/// r * shards / racks; the spine rides shard 0 — it drives no link
/// direction, both directions of a tiered link bind to the lower-tier
/// endpoint). Per-host NicConfigs, unlike core::System's shared one.
struct RackNicFixture {
  fabric::RackConfig rack;
  sim::ShardedEngine sharded;
  std::vector<std::size_t> placement;  // node (hosts then switches) -> shard
  fabric::Network net;
  nic::NicRegistry registry;
  std::vector<std::unique_ptr<nic::Nic>> nics;

  RackNicFixture(const fabric::RackConfig& r, std::size_t shards,
                 const std::vector<nic::NicConfig>& cfgs)
      : rack(r),
        sharded(shards),
        placement(make_placement(r, shards)),
        net([this](fabric::NodeId n) -> sim::Engine& {
          return sharded.shard(placement.at(n));
        }) {
    for (std::size_t i = 0; i < rack.host_count(); ++i) {
      net.add_node(static_cast<fabric::NodeId>(i),
                   sim::Bandwidth::gbit_per_sec(200.0), sim::ns(150));
    }
    fabric::build_rack(net, rack);
    if (shards > 1) {
      sharded.set_lookahead(net.cross_lookahead_matrix(
          [this](fabric::NodeId n) { return placement.at(n); }, shards));
    }
    for (std::size_t i = 0; i < rack.host_count(); ++i) {
      nics.push_back(std::make_unique<nic::Nic>(
          sharded.shard(placement.at(i)), net, registry,
          static_cast<fabric::NodeId>(i), cfgs.at(i % cfgs.size())));
    }
  }

  static std::vector<std::size_t> make_placement(const fabric::RackConfig& r,
                                                 std::size_t shards) {
    std::vector<std::size_t> p;
    for (std::size_t h = 0; h < r.host_count(); ++h) {
      p.push_back(r.rack_of(static_cast<fabric::NodeId>(h)) * shards /
                  r.racks);
    }
    for (std::size_t rk = 0; rk < r.racks; ++rk) {
      p.push_back(rk * shards / r.racks);  // ToR rides its rack
    }
    if (r.racks > 1) p.push_back(0);  // spine
    return p;
  }

  struct RcPair {
    nic::QueuePair* qp_a;
    nic::QueuePair* qp_b;
    nic::CompletionQueue* scq_a;
    nic::CompletionQueue* rcq_a;
    nic::CompletionQueue* scq_b;
    nic::CompletionQueue* rcq_b;
    nic::ProtectionDomainId pd_a;
    nic::ProtectionDomainId pd_b;
  };

  RcPair connect_rc(std::size_t a, std::size_t b) {
    RcPair p{};
    nic::Nic& na = *nics.at(a);
    nic::Nic& nb = *nics.at(b);
    p.pd_a = na.alloc_pd();
    p.pd_b = nb.alloc_pd();
    p.scq_a = na.create_cq(1024);
    p.rcq_a = na.create_cq(1024);
    p.scq_b = nb.create_cq(1024);
    p.rcq_b = nb.create_cq(1024);
    p.qp_a = na.create_qp(
        nic::QpConfig{nic::QpType::kRC, p.pd_a, p.scq_a, p.rcq_a, 128, 512, 0});
    p.qp_b = nb.create_qp(
        nic::QpConfig{nic::QpType::kRC, p.pd_b, p.scq_b, p.rcq_b, 128, 512, 0});
    EXPECT_EQ(na.modify_qp(*p.qp_a, nic::QpState::kInit), nic::kOk);
    EXPECT_EQ(na.modify_qp(*p.qp_a, nic::QpState::kRtr,
                           {static_cast<fabric::NodeId>(b), p.qp_b->qpn()}),
              nic::kOk);
    EXPECT_EQ(na.modify_qp(*p.qp_a, nic::QpState::kRts), nic::kOk);
    EXPECT_EQ(nb.modify_qp(*p.qp_b, nic::QpState::kInit), nic::kOk);
    EXPECT_EQ(nb.modify_qp(*p.qp_b, nic::QpState::kRtr,
                           {static_cast<fabric::NodeId>(a), p.qp_a->qpn()}),
              nic::kOk);
    EXPECT_EQ(nb.modify_qp(*p.qp_b, nic::QpState::kRts), nic::kOk);
    return p;
  }
};

/// Drain one successful completion from a CQ.
nic::Cqe take_one(nic::CompletionQueue& cq) {
  std::array<nic::Cqe, 4> wc;
  EXPECT_EQ(cq.poll(wc), 1u) << "expected exactly one completion";
  EXPECT_EQ(wc[0].status, nic::WcStatus::kSuccess);
  return wc[0];
}

// Regression for the receiver-config suffix sizing: the boundary handoff
// used to re-derive wire size as payload + the *receiver's* header_bytes,
// so with per-NIC header configs a sharded run's suffix-hop occupancy
// diverged from the fused run (which serialized the sender's framing on
// every hop). The chunk now carries the sender's wire size.
Time run_hetero_header_send(std::size_t shards) {
  fabric::RackConfig r;
  r.racks = 2;
  r.hosts_per_rack = 1;
  nic::NicConfig sender_cfg;  // default 58-byte framing
  nic::NicConfig receiver_cfg;
  receiver_cfg.header_bytes = 190;
  RackNicFixture f(r, shards, {sender_cfg, receiver_cfg});
  auto rc = f.connect_rc(0, 1);

  std::vector<std::byte> src(8192, std::byte{0x5a});
  std::vector<std::byte> dst(8192);
  const auto& smr = f.nics[0]->register_mr(rc.pd_a, src.data(), src.size(),
                                           nic::kAccessLocalWrite);
  const auto& dmr = f.nics[1]->register_mr(rc.pd_b, dst.data(), dst.size(),
                                           nic::kAccessLocalWrite);
  nic::RecvWr rwr;
  rwr.wr_id = 1;
  rwr.sge = {reinterpret_cast<std::uintptr_t>(dst.data()),
             static_cast<std::uint32_t>(dst.size()), dmr.lkey};
  EXPECT_EQ(f.nics[1]->post_recv(*rc.qp_b, rwr), nic::kOk);
  nic::SendWr swr;
  swr.wr_id = 2;
  swr.opcode = nic::Opcode::kSend;
  swr.sge = {reinterpret_cast<std::uintptr_t>(src.data()),
             static_cast<std::uint32_t>(src.size()), smr.lkey};
  EXPECT_EQ(f.nics[0]->post_send(*rc.qp_a, swr), nic::kOk);

  const Time end = f.sharded.run();
  take_one(*rc.scq_a);
  take_one(*rc.rcq_b);
  EXPECT_EQ(dst, src);
  return end;
}

TEST(RackSharding, HeterogeneousHeaderBytesAreShardInvariant) {
  EXPECT_EQ(run_hetero_header_send(1), run_hetero_header_send(2));
}

// Regression for the placement-derived ctrl-lane split: host 1 streams a
// multi-chunk write to host 2 (occupying the spine->ToR1 and ToR1->host2
// downlinks) while host 0 issues a read of host 2's memory. Pre-fix a
// fused run reserved ctrl packets (the read request; the write's ACK,
// which shares the spine->ToR0 downlink with the read-response data)
// through the *whole* path, queueing them behind the data stream, while a
// sharded run priority-laned the downstream hops with the closed-form
// latency — fused and sharded diverged under any converging traffic. The
// topological split makes both reserve the same source-side hops and
// formula the same suffix.
Time run_fanin_read_under_write(std::size_t shards) {
  fabric::RackConfig r;
  r.racks = 2;
  r.hosts_per_rack = 2;  // hosts 0, 1 | 2, 3
  RackNicFixture f(r, shards, {nic::NicConfig{}});
  auto reader = f.connect_rc(0, 2);
  auto writer = f.connect_rc(1, 2);

  std::vector<std::byte> read_dst(2048);
  std::vector<std::byte> read_src(2048, std::byte{0x11});
  std::vector<std::byte> write_src(32768, std::byte{0x22});
  std::vector<std::byte> write_dst(32768);
  const auto& rd = f.nics[0]->register_mr(reader.pd_a, read_dst.data(),
                                          read_dst.size(),
                                          nic::kAccessLocalWrite);
  const auto& rs = f.nics[2]->register_mr(reader.pd_b, read_src.data(),
                                          read_src.size(),
                                          nic::kAccessRemoteRead);
  const auto& ws = f.nics[1]->register_mr(writer.pd_a, write_src.data(),
                                          write_src.size(),
                                          nic::kAccessLocalWrite);
  const auto& wd = f.nics[2]->register_mr(writer.pd_b, write_dst.data(),
                                          write_dst.size(),
                                          nic::kAccessRemoteWrite);

  nic::SendWr write;
  write.wr_id = 10;
  write.opcode = nic::Opcode::kRdmaWrite;
  write.sge = {reinterpret_cast<std::uintptr_t>(write_src.data()),
               static_cast<std::uint32_t>(write_src.size()), ws.lkey};
  write.remote_addr = reinterpret_cast<std::uintptr_t>(write_dst.data());
  write.rkey = wd.rkey;
  EXPECT_EQ(f.nics[1]->post_send(*writer.qp_a, write), nic::kOk);

  nic::SendWr read;
  read.wr_id = 11;
  read.opcode = nic::Opcode::kRdmaRead;
  read.sge = {reinterpret_cast<std::uintptr_t>(read_dst.data()),
              static_cast<std::uint32_t>(read_dst.size()), rd.lkey};
  read.remote_addr = reinterpret_cast<std::uintptr_t>(read_src.data());
  read.rkey = rs.rkey;
  EXPECT_EQ(f.nics[0]->post_send(*reader.qp_a, read), nic::kOk);

  const Time end = f.sharded.run();
  take_one(*writer.scq_a);
  take_one(*reader.scq_a);
  EXPECT_EQ(read_dst, read_src);
  EXPECT_EQ(write_dst, write_src);
  return end;
}

TEST(RackSharding, ConvergingDownlinkTrafficIsShardInvariant) {
  EXPECT_EQ(run_fanin_read_under_write(1), run_fanin_read_under_write(2));
}

}  // namespace
}  // namespace cord
