// Sharded-simulation tests: the conservative-window protocol itself, its
// setup-time rejection of unsafe partitions, run-to-run and
// shards-vs-single-engine determinism (golden values + canonical trace
// memcmp), the NIC's doorbell/completion batching counters, the coroutine
// frame arena, and the flame view.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/system.hpp"
#include "fabric/link.hpp"
#include "nic/nic.hpp"
#include "perftest/perftest.hpp"
#include "sim/frame_arena.hpp"
#include "sim/sharded.hpp"
#include "trace/export.hpp"
#include "trace/flame.hpp"

namespace cord {
namespace {

using sim::Time;

// --- ShardedEngine protocol -------------------------------------------

TEST(ShardedEngine, CrossPostDeliversAtExactTime) {
  sim::ShardedEngine se(2);
  se.set_lookahead(sim::ns(100));
  sim::Engine& e0 = se.shard(0);
  sim::Engine& e1 = se.shard(1);
  Time hit = -1;
  e0.call_at(1000, [&] {
    e0.cross_post(e1, 1000 + se.lookahead(),
                  sim::InlineFn([&, &e1 = e1] { hit = e1.now(); }));
  });
  se.run();
  EXPECT_EQ(hit, 1000 + se.lookahead());
  EXPECT_EQ(se.stats().messages, 1u);
  EXPECT_GE(se.stats().windows, 1u);
}

TEST(ShardedEngine, TornWindowThrowsLogicError) {
  sim::ShardedEngine se(2);
  se.set_lookahead(sim::ns(100));
  sim::Engine& e0 = se.shard(0);
  sim::Engine& e1 = se.shard(1);
  e0.call_at(1000, [&] {
    // One picosecond short of the lookahead: the protocol cannot deliver
    // this without tearing the open window.
    e0.cross_post(e1, 1000 + se.lookahead() - 1, sim::InlineFn([] {}));
  });
  EXPECT_THROW(se.run(), std::logic_error);
}

TEST(ShardedEngine, ZeroLookaheadRejectedAtSetup) {
  sim::ShardedEngine se(2);
  EXPECT_THROW(se.set_lookahead(0), std::invalid_argument);
  EXPECT_THROW(se.set_lookahead(-5), std::invalid_argument);
  // Single shard needs no lookahead at all.
  sim::ShardedEngine one(1);
  EXPECT_NO_THROW(one.set_lookahead(0));
}

TEST(ShardedEngine, SystemRejectsZeroPropagationCrossShardLink) {
  core::SystemConfig cfg = core::system_l();
  cfg.wire_propagation = 0;
  EXPECT_THROW(core::System(cfg, 2, 2), std::invalid_argument);
  // The same topology is fine unsharded (no cross-shard links exist)...
  EXPECT_NO_THROW(core::System(cfg, 2, 1));
  // ...or when the placement keeps both hosts on one shard.
  EXPECT_NO_THROW(core::System(cfg, 2, 2, {1, 1}));
}

TEST(ShardedEngine, SystemValidatesPlacement) {
  const core::SystemConfig cfg = core::system_l();
  EXPECT_THROW(core::System(cfg, 2, 2, {0}), std::invalid_argument);
  EXPECT_THROW(core::System(cfg, 2, 2, {0, 7}), std::invalid_argument);
  EXPECT_THROW(core::System(cfg, 2, 0), std::invalid_argument);
}

TEST(ShardedEngine, SequentialMergesGlobalTimeOrder) {
  sim::ShardedEngine se(2);
  sim::Engine& e0 = se.shard(0);
  sim::Engine& e1 = se.shard(1);
  std::vector<int> order;
  Time e0_now_during_e1_event = -1;
  e0.call_at(200, [&] { order.push_back(0); });
  e1.call_at(100, [&] {
    order.push_back(1);
    // Merged mode drives every engine's clock from the global one.
    e0_now_during_e1_event = e0.now();
  });
  e0.call_at(300, [&] { order.push_back(2); });
  e1.call_at(300, [&] { order.push_back(3); });
  const Time end = se.run_sequential();
  EXPECT_EQ(end, 300);
  EXPECT_EQ(order, (std::vector<int>{1, 0, 2, 3}));  // shard 0 first on ties
  EXPECT_EQ(e0_now_during_e1_event, 100);
  EXPECT_EQ(e0.now(), 300);
  EXPECT_EQ(e1.now(), 300);
  EXPECT_EQ(se.stats().sequential_events, 4u);
}

// --- Determinism: sharded runs against the single-engine goldens ------
//
// The values are the GoldenSmoke goldens from test_fastpath.cpp (hex
// floats are exact). A sharded run is only correct if it reproduces the
// single-engine simulation bit-for-bit.

TEST(ShardedGolden, SendLatencyMatchesSingleEngineGoldens) {
  const auto cfg = core::system_l();
  for (std::size_t shards : {2u, 4u}) {
    perftest::Params p;
    p.op = perftest::TestOp::kSend;
    p.msg_size = 64;
    p.iterations = 50;
    p.warmup = 10;
    p.shards = shards;
    const auto r = perftest::run_latency(cfg, p);
    EXPECT_EQ(r.avg_us, 0x1.3ae147ae147aep+0) << "shards=" << shards;
    EXPECT_EQ(r.p50_us, 0x1.3ae147ae147aep+0) << "shards=" << shards;
    EXPECT_EQ(r.p99_us, 0x1.3ae147ae147aep+0) << "shards=" << shards;
    EXPECT_GT(r.shard_windows, 0u);
    EXPECT_GT(r.shard_messages, 0u);
  }
}

TEST(ShardedGolden, LargeAndInterruptLatencyMatchGoldens) {
  const auto cfg = core::system_l();
  {
    perftest::Params p;
    p.op = perftest::TestOp::kSend;
    p.msg_size = 4096;
    p.iterations = 50;
    p.warmup = 10;
    p.shards = 2;
    const auto r = perftest::run_latency(cfg, p);
    EXPECT_EQ(r.avg_us, 0x1.2ae147ae147aep+1);
  }
  {
    perftest::Params p;
    p.op = perftest::TestOp::kSend;
    p.msg_size = 64;
    p.iterations = 50;
    p.warmup = 10;
    p.knobs.interrupt_wait = true;
    p.shards = 2;
    const auto r = perftest::run_latency(cfg, p);
    EXPECT_EQ(r.avg_us, 0x1.74e1719f7f8cbp+2);
  }
}

TEST(ShardedGolden, BandwidthMatchesSingleEngineGolden) {
  const auto cfg = core::system_l();
  for (std::size_t shards : {2u, 4u}) {
    perftest::Params p;
    p.op = perftest::TestOp::kSend;
    p.msg_size = 65536;
    p.iterations = 200;
    p.shards = shards;
    const auto r = perftest::run_bandwidth(cfg, p);
    EXPECT_EQ(r.gbps, 0x1.899e6c9441779p+6) << "shards=" << shards;
    EXPECT_EQ(r.messages, 200u);
    EXPECT_EQ(r.elapsed, 1'065'575'000) << "shards=" << shards;
    EXPECT_GT(r.shard_messages, 0u);
  }
}

TEST(ShardedGolden, WriteAndReadLatencyMatchSingleEngine) {
  const auto cfg = core::system_l();
  for (perftest::TestOp op : {perftest::TestOp::kWrite, perftest::TestOp::kRead}) {
    perftest::Params p;
    p.op = op;
    p.msg_size = 1024;
    p.iterations = 30;
    p.warmup = 5;
    const auto single = perftest::run_latency(cfg, p);
    p.shards = 2;
    const auto sharded = perftest::run_latency(cfg, p);
    EXPECT_EQ(sharded.avg_us, single.avg_us);
    EXPECT_EQ(sharded.p50_us, single.p50_us);
    EXPECT_EQ(sharded.p99_us, single.p99_us);
  }
}

TEST(ShardedGolden, RdmaBandwidthMatchesSingleEngine) {
  const auto cfg = core::system_l();
  for (perftest::TestOp op : {perftest::TestOp::kWrite, perftest::TestOp::kRead}) {
    perftest::Params p;
    p.op = op;
    p.msg_size = 8192;
    p.iterations = 100;
    const auto single = perftest::run_bandwidth(cfg, p);
    p.shards = 2;
    const auto sharded = perftest::run_bandwidth(cfg, p);
    EXPECT_EQ(sharded.gbps, single.gbps);
    EXPECT_EQ(sharded.elapsed, single.elapsed);
  }
}

TEST(ShardedGolden, UdBandwidthIsReproducibleAcrossRuns) {
  // UD's client-done signal crosses shards at the lookahead horizon, so
  // the sharded run is deterministic run-to-run (though the idle server
  // tail differs from the single-engine interleaving).
  const auto cfg = core::system_l();
  perftest::Params p;
  p.op = perftest::TestOp::kSend;
  p.transport = perftest::Transport::kUD;
  p.msg_size = 2048;
  p.iterations = 100;
  p.shards = 2;
  const auto a = perftest::run_bandwidth(cfg, p);
  const auto b = perftest::run_bandwidth(cfg, p);
  EXPECT_EQ(a.gbps, b.gbps);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_GT(a.gbps, 0.0);
  // And the client-side numbers match the single-engine run exactly.
  perftest::Params p1 = p;
  p1.shards = 1;
  const auto single = perftest::run_bandwidth(cfg, p1);
  EXPECT_EQ(a.gbps, single.gbps);
  EXPECT_EQ(a.elapsed, single.elapsed);
}

TEST(ShardedGolden, CanonicalTraceIsShardInvariant) {
  const auto cfg = core::system_l();
  auto capture = [&](std::size_t shards) {
    perftest::Params p;
    p.op = perftest::TestOp::kSend;
    p.msg_size = 256;
    p.iterations = 20;
    p.warmup = 5;
    p.shards = shards;
    p.capture_trace = true;
    auto r = perftest::run_latency(cfg, p);
    EXPECT_EQ(r.trace_dropped, 0u);
    return trace::canonical_trace(std::move(r.trace));
  };
  const auto t1 = capture(1);
  const auto t2 = capture(2);
  const auto t4 = capture(4);
  ASSERT_FALSE(t1.empty());
  ASSERT_EQ(t1.size(), t2.size());
  ASSERT_EQ(t1.size(), t4.size());
  EXPECT_EQ(0, std::memcmp(t1.data(), t2.data(),
                           t1.size() * sizeof(trace::Record)));
  EXPECT_EQ(0, std::memcmp(t1.data(), t4.data(),
                           t1.size() * sizeof(trace::Record)));
}

// --- Determinism: the speculative sync mode against the same goldens --
//
// The NIC stack never marks a callback replayable, so under
// sync=speculative every event beyond the conservative edge is a fence:
// the optimistic mode must execute the exact conservative schedule and
// reproduce every single-engine golden bit-for-bit, with zero dispatches
// journaled. This is the safety half of the Time-Warp work; the speedup
// half lives in bench_shard_scaling's replayable workload.

TEST(SpeculativeGolden, SendLatencyMatchesSingleEngineGoldens) {
  const auto cfg = core::system_l();
  for (std::size_t shards : {2u, 4u}) {
    for (sim::QueueKind queue : {sim::QueueKind::kHeap, sim::QueueKind::kCalendar}) {
      perftest::Params p;
      p.op = perftest::TestOp::kSend;
      p.msg_size = 64;
      p.iterations = 50;
      p.warmup = 10;
      p.shards = shards;
      p.queue = queue;
      p.sync = sim::SyncMode::kSpeculative;
      const auto r = perftest::run_latency(cfg, p);
      EXPECT_EQ(r.avg_us, 0x1.3ae147ae147aep+0) << "shards=" << shards;
      EXPECT_EQ(r.p50_us, 0x1.3ae147ae147aep+0) << "shards=" << shards;
      EXPECT_EQ(r.p99_us, 0x1.3ae147ae147aep+0) << "shards=" << shards;
      EXPECT_EQ(r.clamped_events, 0u);
      EXPECT_EQ(r.shard_journaled, 0u);  // all-fence workload
      EXPECT_EQ(r.shard_rollbacks, 0u);
      EXPECT_GT(r.shard_windows, 0u);
      EXPECT_GT(r.shard_messages, 0u);
    }
  }
}

TEST(SpeculativeGolden, LargeAndInterruptLatencyMatchGoldens) {
  const auto cfg = core::system_l();
  {
    perftest::Params p;
    p.op = perftest::TestOp::kSend;
    p.msg_size = 4096;
    p.iterations = 50;
    p.warmup = 10;
    p.shards = 2;
    p.sync = sim::SyncMode::kSpeculative;
    const auto r = perftest::run_latency(cfg, p);
    EXPECT_EQ(r.avg_us, 0x1.2ae147ae147aep+1);
  }
  {
    perftest::Params p;
    p.op = perftest::TestOp::kSend;
    p.msg_size = 64;
    p.iterations = 50;
    p.warmup = 10;
    p.knobs.interrupt_wait = true;
    p.shards = 2;
    p.sync = sim::SyncMode::kSpeculative;
    const auto r = perftest::run_latency(cfg, p);
    EXPECT_EQ(r.avg_us, 0x1.74e1719f7f8cbp+2);
  }
}

TEST(SpeculativeGolden, BandwidthMatchesSingleEngineGolden) {
  const auto cfg = core::system_l();
  for (std::size_t shards : {2u, 4u}) {
    perftest::Params p;
    p.op = perftest::TestOp::kSend;
    p.msg_size = 65536;
    p.iterations = 200;
    p.shards = shards;
    p.sync = sim::SyncMode::kSpeculative;
    const auto r = perftest::run_bandwidth(cfg, p);
    EXPECT_EQ(r.gbps, 0x1.899e6c9441779p+6) << "shards=" << shards;
    EXPECT_EQ(r.messages, 200u);
    EXPECT_EQ(r.elapsed, 1'065'575'000) << "shards=" << shards;
    EXPECT_EQ(r.shard_journaled, 0u);
  }
}

TEST(SpeculativeGolden, CanonicalTraceIsSyncModeInvariant) {
  const auto cfg = core::system_l();
  auto capture = [&](std::size_t shards, sim::SyncMode sync,
                     sim::QueueKind queue) {
    perftest::Params p;
    p.op = perftest::TestOp::kSend;
    p.msg_size = 256;
    p.iterations = 20;
    p.warmup = 5;
    p.shards = shards;
    p.sync = sync;
    p.queue = queue;
    p.capture_trace = true;
    auto r = perftest::run_latency(cfg, p);
    EXPECT_EQ(r.trace_dropped, 0u);
    return trace::canonical_trace(std::move(r.trace));
  };
  const auto single =
      capture(1, sim::SyncMode::kConservative, sim::QueueKind::kHeap);
  ASSERT_FALSE(single.empty());
  for (std::size_t shards : {2u, 4u}) {
    for (sim::QueueKind queue :
         {sim::QueueKind::kHeap, sim::QueueKind::kCalendar}) {
      const auto spec = capture(shards, sim::SyncMode::kSpeculative, queue);
      ASSERT_EQ(single.size(), spec.size())
          << "shards=" << shards << " queue=" << static_cast<int>(queue);
      EXPECT_EQ(0, std::memcmp(single.data(), spec.data(),
                               single.size() * sizeof(trace::Record)))
          << "shards=" << shards << " queue=" << static_cast<int>(queue);
    }
  }
}

// --- Satellite: NIC doorbell/completion batching ----------------------

struct TwoNode {
  sim::Engine engine;
  fabric::Network network{engine};
  nic::NicRegistry registry;
  std::unique_ptr<nic::Nic> nic0;
  std::unique_ptr<nic::Nic> nic1;

  TwoNode() {
    network.add_node(0, sim::Bandwidth::gbit_per_sec(200.0), sim::ns(150));
    network.add_node(1, sim::Bandwidth::gbit_per_sec(200.0), sim::ns(150));
    network.connect(0, 1, sim::Bandwidth::gbit_per_sec(100.0), sim::ns(150));
    nic0 = std::make_unique<nic::Nic>(engine, network, registry, 0, nic::NicConfig{});
    nic1 = std::make_unique<nic::Nic>(engine, network, registry, 1, nic::NicConfig{});
  }
};

std::uintptr_t uptr(const void* p) { return reinterpret_cast<std::uintptr_t>(p); }

TEST(NicBatching, BurstOfPostsRingsOneDoorbell) {
  TwoNode f;
  auto pd0 = f.nic0->alloc_pd();
  auto pd1 = f.nic1->alloc_pd();
  auto* scq0 = f.nic0->create_cq(64);
  auto* rcq0 = f.nic0->create_cq(64);
  auto* scq1 = f.nic1->create_cq(64);
  auto* rcq1 = f.nic1->create_cq(64);
  auto* qp0 = f.nic0->create_qp({nic::QpType::kRC, pd0, scq0, rcq0, 64, 64, 0});
  auto* qp1 = f.nic1->create_qp({nic::QpType::kRC, pd1, scq1, rcq1, 64, 64, 0});
  ASSERT_EQ(f.nic0->modify_qp(*qp0, nic::QpState::kInit), nic::kOk);
  ASSERT_EQ(f.nic0->modify_qp(*qp0, nic::QpState::kRtr, {1, qp1->qpn()}), nic::kOk);
  ASSERT_EQ(f.nic0->modify_qp(*qp0, nic::QpState::kRts), nic::kOk);
  ASSERT_EQ(f.nic1->modify_qp(*qp1, nic::QpState::kInit), nic::kOk);
  ASSERT_EQ(f.nic1->modify_qp(*qp1, nic::QpState::kRtr, {0, qp0->qpn()}), nic::kOk);
  ASSERT_EQ(f.nic1->modify_qp(*qp1, nic::QpState::kRts), nic::kOk);

  std::vector<std::byte> src(64, std::byte{0x5A}), dst(4 * 64);
  const auto& mr_src = f.nic0->register_mr(pd0, src.data(), src.size(), 0);
  const auto& mr_dst = f.nic1->register_mr(pd1, dst.data(), dst.size(),
                                           nic::kAccessLocalWrite);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(f.nic1->post_recv(
                  *qp1, {std::uint64_t(i),
                         {uptr(dst.data()) + 64u * i, 64, mr_dst.lkey}}),
              nic::kOk);
  }
  // Four posts back-to-back, no engine progress in between: the first
  // rings the doorbell and wakes the SQ worker, the rest ride the burst.
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(f.nic0->post_send(
                  *qp0, nic::SendWr{.wr_id = std::uint64_t(i),
                                    .sge = {uptr(src.data()), 64, mr_src.lkey}}),
              nic::kOk);
  }
  const auto& c = f.nic0->counters();
  EXPECT_EQ(c.doorbells, 1u);
  EXPECT_EQ(c.doorbells_coalesced, 3u);
  f.engine.run();
  EXPECT_EQ(c.sq_bursts, 1u);
  EXPECT_EQ(c.sq_burst_wrs, 4u);
  std::array<nic::Cqe, 8> wc;
  EXPECT_EQ(scq0->poll(wc), 4u);
  EXPECT_EQ(rcq1->poll(wc), 4u);
  EXPECT_EQ(c.cross_msgs, 0u);  // single engine: nothing crosses shards
}

TEST(NicBatching, ErrorFlushCoalescesIntoOneBatch) {
  TwoNode f;
  auto pd0 = f.nic0->alloc_pd();
  auto* scq0 = f.nic0->create_cq(64);
  auto* rcq0 = f.nic0->create_cq(64);
  auto* qp0 = f.nic0->create_qp({nic::QpType::kRC, pd0, scq0, rcq0, 64, 64, 0});
  ASSERT_EQ(f.nic0->modify_qp(*qp0, nic::QpState::kInit), nic::kOk);
  ASSERT_EQ(f.nic0->modify_qp(*qp0, nic::QpState::kRtr, {1, 99}), nic::kOk);
  ASSERT_EQ(f.nic0->modify_qp(*qp0, nic::QpState::kRts), nic::kOk);
  std::vector<std::byte> buf(256);
  const auto& mr = f.nic0->register_mr(pd0, buf.data(), buf.size(),
                                       nic::kAccessLocalWrite);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(f.nic0->post_recv(
                  *qp0, {std::uint64_t(i), {uptr(buf.data()), 64, mr.lkey}}),
              nic::kOk);
  }
  f.nic0->qp_set_error(*qp0);
  f.engine.run();
  const auto& c = f.nic0->counters();
  EXPECT_EQ(c.cqe_flush_batches, 1u);
  EXPECT_EQ(c.cqe_flushed, 3u);
  std::array<nic::Cqe, 8> wc;
  ASSERT_EQ(rcq0->poll(wc), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(wc[i].status, nic::WcStatus::kWorkRequestFlushed);
  }
}

TEST(NicBatching, CrossShardMessagesAreCounted) {
  const auto cfg = core::system_l();
  perftest::Params p;
  p.op = perftest::TestOp::kSend;
  p.msg_size = 64;
  p.iterations = 10;
  p.warmup = 2;
  p.shards = 2;
  const auto r = perftest::run_latency(cfg, p);
  EXPECT_GT(r.shard_messages, 0u);
}

// --- Satellite: coroutine frame arena ---------------------------------

TEST(FrameArena, RecyclesBlocksLifo) {
  using namespace sim::detail;
  const auto s0 = frame_arena_stats();
  void* a = frame_alloc(256);
  ASSERT_NE(a, nullptr);
  frame_free(a, 256);
  void* b = frame_alloc(256);
  EXPECT_EQ(a, b);  // same size class comes straight off the freelist
  frame_free(b, 256);
  const auto s1 = frame_arena_stats();
  EXPECT_EQ(s1.allocs, s0.allocs + 2);
  EXPECT_EQ(s1.fallback_allocs, s0.fallback_allocs);
}

TEST(FrameArena, OversizedFramesFallBackToHeap) {
  using namespace sim::detail;
  const auto s0 = frame_arena_stats();
  void* big = frame_alloc(1 << 16);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xCD, 1 << 16);
  frame_free(big, 1 << 16);
  EXPECT_EQ(frame_arena_stats().fallback_allocs, s0.fallback_allocs + 1);
}

sim::Task<> trivial_task(int& counter) {
  ++counter;
  co_return;
}

TEST(FrameArena, SpawnHeavyWorkloadReusesSlabSpace) {
  using namespace sim::detail;
  sim::Engine e;
  int ran = 0;
  for (int i = 0; i < 64; ++i) e.spawn(trivial_task(ran));
  e.run();
  ASSERT_EQ(ran, 64);
  const std::size_t warm_bytes = frame_arena_stats().slab_bytes;
  for (int i = 0; i < 512; ++i) {
    e.spawn(trivial_task(ran));
    e.run();  // frame freed before the next spawn: steady-state recycling
  }
  EXPECT_EQ(frame_arena_stats().slab_bytes, warm_bytes);
  EXPECT_EQ(ran, 64 + 512);
}

// --- Satellite: flame view --------------------------------------------

TEST(FlameView, AggregatesByShardWithBarrierIdle) {
  std::vector<std::vector<trace::Record>> per_shard(2);
  trace::Record wire{};
  wire.point = trace::Point::kWireTx;
  wire.t = 100;
  wire.dur = 5000;
  per_shard[0].push_back(wire);
  wire.t = 200;
  per_shard[0].push_back(wire);
  trace::Record post{};
  post.point = trace::Point::kVerbsPostSend;
  post.t = 50;
  per_shard[1].push_back(post);

  sim::ShardStats sync;
  sync.barrier_wait_ns = {0, 750};
  const trace::FlameView v = trace::build_flame(per_shard, &sync);

  const std::string wire_stack =
      std::string("shard0;") + std::string(trace::category(wire.point)) + ";" +
      std::string(trace::to_string(wire.point));
  bool saw_wire = false, saw_idle = false, saw_post = false;
  for (const auto& e : v.entries) {
    if (e.stack == wire_stack) {
      saw_wire = true;
      EXPECT_EQ(e.weight, 10000u);  // 2 spans x 5000 ps, summed
      EXPECT_EQ(e.unit, trace::FlameEntry::Unit::kVirtualPs);
    }
    if (e.stack == "shard1;sync;barrier_idle") {
      saw_idle = true;
      EXPECT_EQ(e.weight, 750u);
      EXPECT_EQ(e.unit, trace::FlameEntry::Unit::kWallNs);
    }
    if (e.stack.find("shard1;verbs;") == 0) saw_post = true;
  }
  EXPECT_TRUE(saw_wire);
  EXPECT_TRUE(saw_idle);
  EXPECT_TRUE(saw_post);
  EXPECT_EQ(v.total_virtual_ps, 10000u);
  EXPECT_EQ(v.total_samples, 1u);
  EXPECT_EQ(v.total_barrier_wall_ns, 750u);

  const std::string folded = trace::flame_folded(v);
  EXPECT_NE(folded.find(wire_stack + " 10000\n"), std::string::npos);
  EXPECT_NE(folded.find("shard1;sync;barrier_idle 750\n"), std::string::npos);
  EXPECT_FALSE(trace::render_flame(v).empty());
}

TEST(FlameView, BarrierIdleFromRealShardedRun) {
  // A real 2-shard run records wall-clock barrier idle on both shards;
  // build the flame from the stats and check the sync rows exist (wall ns
  // depend on the host, so only presence and positivity are asserted).
  sim::ShardedEngine se(2);
  se.set_lookahead(sim::ns(100));
  sim::Engine& e0 = se.shard(0);
  for (int i = 0; i < 50; ++i) {
    e0.call_at(1000 * (i + 1), [&, i] {
      if (i % 2 == 0) {
        e0.cross_post(se.shard(1), e0.now() + se.lookahead(),
                      sim::InlineFn([] {}));
      }
    });
  }
  se.run();
  EXPECT_GT(se.stats().messages, 0u);
  const trace::FlameView v = trace::build_flame({{}, {}}, &se.stats());
  std::uint64_t idle = 0;
  for (const auto& e : v.entries) {
    if (e.stack.find(";sync;barrier_idle") != std::string::npos) {
      idle += e.weight;
    }
  }
  EXPECT_EQ(idle, v.total_barrier_wall_ns);
}

}  // namespace
}  // namespace cord
