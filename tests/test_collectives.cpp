// Exhaustive collective-correctness matrix: every collective × element
// type × payload size class × world size (including non-powers-of-two and
// every root), verified against locally computed references.
#include <gtest/gtest.h>

#include <numeric>

#include "mpi/world.hpp"

namespace cord::mpi {
namespace {

sim::Time run_world(int n, std::function<sim::Task<>(Rank&)> body) {
  core::System sys(core::system_l(), 2);
  World world(sys, n, {.net = NetMode::kBypass});
  return world.run(std::move(body));
}

class CollectiveMatrix : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  int world_size() const { return std::get<0>(GetParam()); }
  int elems() const { return std::get<1>(GetParam()); }
};

TEST_P(CollectiveMatrix, BcastAllRootsAllSizes) {
  const int k = elems();
  run_world(world_size(), [k](Rank& r) -> sim::Task<> {
    for (int root = 0; root < r.size(); ++root) {
      std::vector<double> buf(k, -1.0);
      if (r.id() == root) {
        for (int i = 0; i < k; ++i) buf[i] = root * 1000.0 + i;
      }
      co_await r.bcast<double>(buf, root);
      for (int i = 0; i < k; ++i) {
        if (buf[i] != root * 1000.0 + i) {
          throw std::runtime_error("bcast payload mismatch");
        }
      }
    }
  });
}

TEST_P(CollectiveMatrix, ReduceAllRoots) {
  const int k = elems();
  run_world(world_size(), [k](Rank& r) -> sim::Task<> {
    const int n = r.size();
    std::vector<std::int64_t> in(k);
    for (int i = 0; i < k; ++i) in[i] = r.id() * 100 + i;
    for (int root = 0; root < n; ++root) {
      std::vector<std::int64_t> out(k, -7);
      co_await r.reduce<std::int64_t>(in, out, Op::kSum, root);
      if (r.id() == root) {
        for (int i = 0; i < k; ++i) {
          const std::int64_t expect =
              static_cast<std::int64_t>(n) * (n - 1) / 2 * 100 +
              static_cast<std::int64_t>(n) * i;
          if (out[i] != expect) throw std::runtime_error("reduce mismatch");
        }
      }
    }
  });
}

TEST_P(CollectiveMatrix, AllgatherEveryBlockCorrect) {
  const int k = elems();
  run_world(world_size(), [k](Rank& r) -> sim::Task<> {
    std::vector<std::int32_t> mine(k);
    for (int i = 0; i < k; ++i) mine[i] = r.id() * 7000 + i;
    std::vector<std::int32_t> all(static_cast<std::size_t>(k) * r.size());
    co_await r.allgather<std::int32_t>(mine, all);
    for (int rank = 0; rank < r.size(); ++rank) {
      for (int i = 0; i < k; ++i) {
        if (all[rank * k + i] != rank * 7000 + i) {
          throw std::runtime_error("allgather mismatch");
        }
      }
    }
  });
}

TEST_P(CollectiveMatrix, AlltoallEveryCellCorrect) {
  const int k = elems();
  run_world(world_size(), [k](Rank& r) -> sim::Task<> {
    const int n = r.size();
    std::vector<std::int64_t> in(static_cast<std::size_t>(n) * k);
    std::vector<std::int64_t> out(in.size());
    for (int dst = 0; dst < n; ++dst) {
      for (int i = 0; i < k; ++i) {
        in[dst * k + i] = r.id() * 1'000'000 + dst * 1000 + i;
      }
    }
    co_await r.alltoall<std::int64_t>(in, out);
    for (int src = 0; src < n; ++src) {
      for (int i = 0; i < k; ++i) {
        if (out[src * k + i] != src * 1'000'000 + r.id() * 1000 + i) {
          throw std::runtime_error("alltoall mismatch");
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CollectiveMatrix,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),
                       // 1 element, a cacheline-ish block, and a block
                       // that crosses the eager/rendezvous threshold.
                       ::testing::Values(1, 64, 1200)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

TEST(CollectiveEdge, SingleRankWorldIsNoOp) {
  run_world(1, [](Rank& r) -> sim::Task<> {
    std::vector<double> v{3.5};
    std::vector<double> o(1);
    co_await r.bcast<double>(v, 0);
    co_await r.allreduce<double>(v, o, Op::kSum);
    if (o[0] != 3.5) throw std::runtime_error("1-rank allreduce");
    std::vector<double> all(1);
    co_await r.allgather<double>(v, all);
    co_await r.alltoall<double>(v, all);
    co_await r.barrier();
  });
}

TEST(CollectiveEdge, BackToBackCollectivesDoNotCrossTalk) {
  // Consecutive collectives of the same shape must not steal each other's
  // messages (per-rank collective tag sequencing).
  run_world(6, [](Rank& r) -> sim::Task<> {
    for (int round = 0; round < 20; ++round) {
      std::vector<std::int64_t> in{r.id() + round};
      std::vector<std::int64_t> out(1);
      co_await r.allreduce<std::int64_t>(in, out, Op::kSum);
      const std::int64_t n = r.size();
      if (out[0] != n * (n - 1) / 2 + n * round) {
        throw std::runtime_error("cross-talk between rounds");
      }
    }
  });
}

TEST(CollectiveEdge, MixedOpSequenceKeepsTagDiscipline) {
  run_world(4, [](Rank& r) -> sim::Task<> {
    std::vector<double> v{static_cast<double>(r.id())};
    std::vector<double> o(1);
    std::vector<double> all(static_cast<std::size_t>(r.size()));
    for (int i = 0; i < 5; ++i) {
      co_await r.barrier();
      co_await r.allreduce<double>(v, o, Op::kMax);
      if (o[0] != 3.0) throw std::runtime_error("max wrong");
      co_await r.bcast<double>(o, 2);
      co_await r.allgather<double>(v, all);
      for (int j = 0; j < r.size(); ++j) {
        if (all[j] != j) throw std::runtime_error("allgather wrong");
      }
      co_await r.alltoall<double>(all, all);  // in-place-ish small shuffle
    }
  });
}

TEST(CollectiveEdge, BarrierActuallySynchronizes) {
  // Rank 0 dawdles before the barrier; nobody may pass it earlier.
  run_world(5, [](Rank& r) -> sim::Task<> {
    const sim::Time kNap = sim::ms(3);
    const sim::Time before = r.now();
    if (r.id() == 0) co_await r.core().engine().delay(kNap);
    co_await r.barrier();
    if (r.now() < before + kNap) {
      throw std::runtime_error("barrier let a rank through early");
    }
  });
}

TEST(CollectiveEdge, AlltoallvZeroSizedBlocksAreFine) {
  run_world(4, [](Rank& r) -> sim::Task<> {
    const int n = r.size();
    // Rank r sends r ints to everyone (rank 0 sends nothing at all).
    std::vector<std::size_t> scounts(n, static_cast<std::size_t>(r.id()));
    std::vector<std::size_t> rcounts(n);
    for (int i = 0; i < n; ++i) rcounts[i] = static_cast<std::size_t>(i);
    std::vector<int> in(static_cast<std::size_t>(r.id()) * n, r.id());
    std::vector<int> out(6, -1);  // 0+1+2+3
    co_await r.alltoallv<int>(in, scounts, out, rcounts);
    std::size_t off = 0;
    for (int src = 0; src < n; ++src) {
      for (int k = 0; k < src; ++k) {
        if (out[off++] != src) throw std::runtime_error("alltoallv cell wrong");
      }
    }
  });
}

TEST(CollectiveEdge, LargeAllreducePipelinesThroughRendezvous) {
  run_world(4, [](Rank& r) -> sim::Task<> {
    constexpr int kN = 32 * 1024;  // 256 KiB of doubles: rendezvous path
    std::vector<double> in(kN, 1.0);
    std::vector<double> out(kN);
    co_await r.allreduce<double>(in, out, Op::kSum);
    for (int i = 0; i < kN; i += 1000) {
      if (out[i] != 4.0) throw std::runtime_error("large allreduce wrong");
    }
  });
}

TEST(CollectiveTiming, AllreduceScalesLogarithmically) {
  auto time_n = [](int n) {
    return run_world(n, [](Rank& r) -> sim::Task<> {
      std::vector<double> v{1.0};
      std::vector<double> o(1);
      for (int i = 0; i < 10; ++i) co_await r.allreduce<double>(v, o, Op::kSum);
    });
  };
  const double t4 = sim::to_us(time_n(4));
  const double t16 = sim::to_us(time_n(16));
  // Recursive doubling: rounds grow as log2(n) — 16 ranks has 2x the
  // rounds of 4 ranks, so the ratio must sit well under linear scaling.
  EXPECT_LT(t16, t4 * 3.0);
  EXPECT_GT(t16, t4 * 1.2);
}

}  // namespace
}  // namespace cord::mpi
