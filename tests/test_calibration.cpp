// Calibration tests: the DESIGN.md §5 checkpoints that tie the simulator
// to the paper's published numbers. If one of these fails, the figure
// benches will drift from the paper's shape.
#include <gtest/gtest.h>

#include "perftest/perftest.hpp"

namespace cord {
namespace {

using namespace cord::perftest;

TEST(Calibration, MemcpyBandwidthIs140UsPerMiB) {
  // Paper §2: removing zero-copy adds "up to 140 us/MiB".
  sim::Engine e;
  os::Core core(e, core::system_l().cpu, 1);
  EXPECT_NEAR(sim::to_us(core.memcpy_time(1 << 20)), 140.0, 2.0);
}

TEST(Calibration, SyscallCrossingSystemL) {
  sim::Engine e;
  os::Core core(e, core::system_l().cpu, 1);
  EXPECT_EQ(core.syscall_cost(), sim::ns(180));
  auto kpti_model = core::system_l().cpu;
  kpti_model.kpti = true;
  os::Core kcore(e, kpti_model, 1);
  EXPECT_EQ(kcore.syscall_cost(), sim::ns(540));
}

TEST(Calibration, WireRates) {
  EXPECT_NEAR(core::system_l().wire_bandwidth.gbps(), 100.0, 1e-9);
  EXPECT_NEAR(core::system_a().wire_bandwidth.gbps(), 200.0, 1e-9);
}

TEST(Calibration, SystemLSmallSendLatencyCx6Class) {
  Params p;
  p.msg_size = 8;
  p.iterations = 100;
  const double us = run_latency(core::system_l(), p).avg_us;
  EXPECT_GT(us, 0.9);
  EXPECT_LT(us, 2.0);
}

TEST(Calibration, Paper32KiBCheckpoint) {
  // Paper §5: "for 32 KiB messages exchanged using send operations,
  // perftest measured ~370k messages per second and only 1% bandwidth
  // degradation" under CoRD.
  Params p;
  p.msg_size = 32768;
  p.iterations = 400;
  const auto bp = run_bandwidth(core::system_l(), p);
  EXPECT_NEAR(bp.mmsg_per_sec, 0.37, 0.05);
  Params cd = p;
  cd.client = verbs::ContextOptions{.mode = verbs::DataplaneMode::kCord};
  cd.server = cd.client;
  const auto cord = run_bandwidth(core::system_l(), cd);
  EXPECT_GT(cord.gbps / bp.gbps, 0.97) << "degradation must be ~1%";
}

TEST(Calibration, SmallMessageBaselineIsTinyFractionOfWire) {
  // Paper §2: "even the baseline variant achieves only 1.4 Gbit/s out of
  // the theoretical maximum of 100 Gbit/s" for small messages.
  Params p;
  p.msg_size = 16;
  p.iterations = 1500;
  const auto r = run_bandwidth(core::system_l(), p);
  EXPECT_LT(r.gbps, 5.0);
  EXPECT_GT(r.gbps, 0.2);
}

TEST(Calibration, SystemAInlineThreshold) {
  // Fig. 5a's bimodal split sits at ~1 KiB, so system A's device inline
  // must be 1 KiB while the CoRD prototype there lacks inline entirely.
  const auto a = core::system_a();
  EXPECT_EQ(a.nic.max_inline, 1024u);
  EXPECT_FALSE(a.cord_inline_support);
  const auto l = core::system_l();
  EXPECT_TRUE(l.cord_inline_support);
}

TEST(Calibration, SystemATurboCannotBeDisabled) {
  // "not being able to disable dynamic frequency scaling due to the
  // cloud provider policy".
  EXPECT_TRUE(core::system_a().cpu.turbo_enabled);
  EXPECT_FALSE(core::system_l().cpu.turbo_enabled);  // paper disables it
}

TEST(Calibration, KptiDisabledOnBothSystems) {
  EXPECT_FALSE(core::system_l().cpu.kpti);
  EXPECT_FALSE(core::system_a().cpu.kpti);
}

}  // namespace
}  // namespace cord
