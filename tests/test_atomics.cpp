// RDMA atomics: fetch-and-add and compare-and-swap — one-sided
// read-modify-write on remote memory, serialized at the responder NIC.
// Verbs systems build distributed counters, locks and sequencers on these.
#include <gtest/gtest.h>

#include "sim/join.hpp"
#include "test_util.hpp"

namespace cord::nic {
namespace {

using cord::testing::RcEndpoints;
using cord::testing::TwoHostFixture;
using cord::testing::run_task;
using cord::testing::uptr;

struct AtomicFixture : TwoHostFixture {
  /// 8-byte counter on host1, atomically accessible; result buffer on host0.
  alignas(8) std::uint64_t counter = 0;
  alignas(8) std::uint64_t result = 0;
};

sim::Task<Cqe> do_atomic(verbs::Context& ctx, QueuePair& qp,
                         CompletionQueue& scq, Opcode op, std::uint64_t* local,
                         std::uint32_t lkey, std::uint64_t* remote,
                         std::uint32_t rkey, std::uint64_t compare_add,
                         std::uint64_t swap = 0) {
  SendWr wr;
  wr.opcode = op;
  wr.sge = {uptr(local), 8, lkey};
  wr.remote_addr = uptr(remote);
  wr.rkey = rkey;
  wr.compare_add = compare_add;
  wr.swap = swap;
  const int rc = co_await ctx.post_send(qp, std::move(wr));
  if (rc != 0) throw std::runtime_error("atomic post failed");
  co_return co_await ctx.wait_one(scq);
}

TEST(Atomics, FetchAddReturnsOldValueAndAdds) {
  AtomicFixture f;
  f.counter = 100;
  run_task(f.engine, [](AtomicFixture& f) -> sim::Task<> {
    verbs::Context a(*f.host0, 0, {});
    verbs::Context b(*f.host1, 0, {});
    RcEndpoints e = co_await cord::testing::connect_rc(a, b);
    auto* lmr = co_await a.reg_mr(e.pd0, &f.result, 8, kAccessLocalWrite);
    auto* rmr = co_await b.reg_mr(e.pd1, &f.counter, 8,
                                  kAccessLocalWrite | kAccessRemoteAtomic);
    Cqe wc = co_await do_atomic(a, *e.qp0, *e.scq0, Opcode::kFetchAdd,
                                &f.result, lmr->lkey, &f.counter, rmr->rkey, 7);
    if (wc.status != WcStatus::kSuccess) throw std::runtime_error("bad status");
    if (wc.opcode != WcOpcode::kFetchAdd) throw std::runtime_error("bad opcode");
  }(f));
  EXPECT_EQ(f.result, 100u) << "fetch-add returns the prior value";
  EXPECT_EQ(f.counter, 107u);
}

TEST(Atomics, CompareSwapSucceedsOnMatch) {
  AtomicFixture f;
  f.counter = 42;
  run_task(f.engine, [](AtomicFixture& f) -> sim::Task<> {
    verbs::Context a(*f.host0, 0, {});
    verbs::Context b(*f.host1, 0, {});
    RcEndpoints e = co_await cord::testing::connect_rc(a, b);
    auto* lmr = co_await a.reg_mr(e.pd0, &f.result, 8, kAccessLocalWrite);
    auto* rmr = co_await b.reg_mr(e.pd1, &f.counter, 8,
                                  kAccessLocalWrite | kAccessRemoteAtomic);
    (void)co_await do_atomic(a, *e.qp0, *e.scq0, Opcode::kCompareSwap,
                             &f.result, lmr->lkey, &f.counter, rmr->rkey,
                             /*expect=*/42, /*swap=*/999);
  }(f));
  EXPECT_EQ(f.result, 42u);
  EXPECT_EQ(f.counter, 999u);
}

TEST(Atomics, CompareSwapFailsOnMismatchWithoutWriting) {
  AtomicFixture f;
  f.counter = 42;
  run_task(f.engine, [](AtomicFixture& f) -> sim::Task<> {
    verbs::Context a(*f.host0, 0, {});
    verbs::Context b(*f.host1, 0, {});
    RcEndpoints e = co_await cord::testing::connect_rc(a, b);
    auto* lmr = co_await a.reg_mr(e.pd0, &f.result, 8, kAccessLocalWrite);
    auto* rmr = co_await b.reg_mr(e.pd1, &f.counter, 8,
                                  kAccessLocalWrite | kAccessRemoteAtomic);
    (void)co_await do_atomic(a, *e.qp0, *e.scq0, Opcode::kCompareSwap,
                             &f.result, lmr->lkey, &f.counter, rmr->rkey,
                             /*expect=*/41, /*swap=*/999);
  }(f));
  EXPECT_EQ(f.result, 42u) << "the old value still comes back";
  EXPECT_EQ(f.counter, 42u) << "a failed CAS must not write";
}

TEST(Atomics, ConcurrentFetchAddsFromTwoClientsAreAtomic) {
  AtomicFixture f;
  run_task(f.engine, [](AtomicFixture& f) -> sim::Task<> {
    verbs::Context b(*f.host1, 0, {});
    auto pd_b = co_await b.alloc_pd();
    auto* rmr = co_await b.reg_mr(pd_b, &f.counter, 8,
                                  kAccessLocalWrite | kAccessRemoteAtomic);
    auto client = [](TwoHostFixture& f, verbs::Context& b,
                     nic::ProtectionDomainId pd_b, std::uint32_t rkey,
                     std::uint64_t* counter, int core,
                     std::uint64_t addend) -> sim::Task<> {
      verbs::Context a(*f.host0, static_cast<std::size_t>(core), {});
      auto pd_a = co_await a.alloc_pd();
      auto* scq = co_await a.create_cq(64);
      auto* rcq = co_await a.create_cq(64);
      auto* qa = co_await a.create_qp({QpType::kRC, pd_a, scq, rcq, 64, 64, 0});
      auto* scq_b = co_await b.create_cq(64);
      auto* qb = co_await b.create_qp({QpType::kRC, pd_b, scq_b, scq_b, 64, 64, 0});
      co_await a.connect_qp(*qa, {1, qb->qpn()});
      co_await b.connect_qp(*qb, {0, qa->qpn()});
      alignas(8) std::uint64_t local = 0;
      auto* lmr = co_await a.reg_mr(pd_a, &local, 8, kAccessLocalWrite);
      for (int i = 0; i < 50; ++i) {
        (void)co_await do_atomic(a, *qa, *scq, Opcode::kFetchAdd, &local,
                                 lmr->lkey, counter, rkey, addend);
      }
    };
    sim::Joinable c1(f.engine, client(f, b, pd_b, rmr->rkey, &f.counter, 0, 1));
    sim::Joinable c2(f.engine, client(f, b, pd_b, rmr->rkey, &f.counter, 1, 1000));
    co_await c1.join();
    co_await c2.join();
  }(f));
  EXPECT_EQ(f.counter, 50u + 50u * 1000u)
      << "interleaved fetch-adds must not lose updates";
}

TEST(Atomics, RequiresRemoteAtomicPermission) {
  AtomicFixture f;
  run_task(f.engine, [](AtomicFixture& f) -> sim::Task<> {
    verbs::Context a(*f.host0, 0, {});
    verbs::Context b(*f.host1, 0, {});
    RcEndpoints e = co_await cord::testing::connect_rc(a, b);
    auto* lmr = co_await a.reg_mr(e.pd0, &f.result, 8, kAccessLocalWrite);
    // Only REMOTE_WRITE granted — atomics must be NAKed.
    auto* rmr = co_await b.reg_mr(e.pd1, &f.counter, 8,
                                  kAccessLocalWrite | kAccessRemoteWrite);
    Cqe wc = co_await do_atomic(a, *e.qp0, *e.scq0, Opcode::kFetchAdd,
                                &f.result, lmr->lkey, &f.counter, rmr->rkey, 1);
    if (wc.status != WcStatus::kRemoteAccessError) {
      throw std::runtime_error("expected remote access error");
    }
  }(f));
  EXPECT_EQ(f.counter, 0u);
}

TEST(Atomics, PostValidation) {
  TwoHostFixture f;
  bool checked = false;
  run_task(f.engine, [](TwoHostFixture& f, bool& checked) -> sim::Task<> {
    verbs::Context a(*f.host0, 0, {});
    verbs::Context b(*f.host1, 0, {});
    RcEndpoints e = co_await cord::testing::connect_rc(a, b);
    alignas(8) std::uint64_t local = 0;
    auto* lmr = co_await a.reg_mr(e.pd0, &local, 8, kAccessLocalWrite);
    SendWr wr;
    wr.opcode = Opcode::kFetchAdd;
    wr.sge = {uptr(&local), 4, lmr->lkey};  // wrong length
    wr.remote_addr = 8;                      // aligned dummy
    if (co_await a.post_send(*e.qp0, SendWr(wr)) != kErrInvalid) {
      throw std::runtime_error("length 4 must be rejected");
    }
    wr.sge.length = 8;
    wr.remote_addr = 12;  // misaligned
    if (co_await a.post_send(*e.qp0, SendWr(wr)) != kErrInvalid) {
      throw std::runtime_error("misaligned target must be rejected");
    }
    checked = true;
  }(f, checked));
  EXPECT_TRUE(checked);
}

TEST(Atomics, RejectedOnUd) {
  TwoHostFixture f;
  auto pd = f.host0->nic().alloc_pd();
  auto* cq = f.host0->nic().create_cq(16);
  auto* qp = f.host0->nic().create_qp({QpType::kUD, pd, cq, cq, 16, 16, 0});
  ASSERT_EQ(f.host0->nic().modify_qp(*qp, QpState::kInit), kOk);
  ASSERT_EQ(f.host0->nic().modify_qp(*qp, QpState::kRtr), kOk);
  ASSERT_EQ(f.host0->nic().modify_qp(*qp, QpState::kRts), kOk);
  alignas(8) std::uint64_t local = 0;
  SendWr wr;
  wr.opcode = Opcode::kFetchAdd;
  wr.sge = {uptr(&local), 8, 0};
  wr.remote_addr = 8;
  wr.ud = {1, 1};
  EXPECT_EQ(f.host0->nic().post_send(*qp, std::move(wr)), kErrInvalid);
}

}  // namespace
}  // namespace cord::nic
