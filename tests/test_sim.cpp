// Unit tests for the discrete-event simulation core: engine ordering,
// coroutine task composition, latches/signals/channels, FIFO resources,
// RNG determinism, and statistics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/event.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"
#include "sim/units.hpp"

namespace cord::sim {
namespace {

TEST(Units, Conversions) {
  EXPECT_EQ(ns(1), 1000);
  EXPECT_EQ(us(1), 1'000'000);
  EXPECT_EQ(ms(1), 1'000'000'000);
  EXPECT_EQ(sec(1), 1'000'000'000'000);
  EXPECT_DOUBLE_EQ(to_ns(ns(5)), 5.0);
  EXPECT_DOUBLE_EQ(to_us(us(7)), 7.0);
  EXPECT_EQ(ns_d(1.5), 1500);
}

TEST(Units, BandwidthTimeFor) {
  // 100 Gbit/s == 12.5 bytes/ns: 4096 B should take 327.68 ns.
  auto bw = Bandwidth::gbit_per_sec(100.0);
  EXPECT_EQ(bw.time_for(4096), 327'680);
  EXPECT_NEAR(bw.gbps(), 100.0, 1e-9);
  // 1 GiB/s
  auto bw2 = Bandwidth::gbyte_per_sec(1.0);
  EXPECT_EQ(bw2.time_for(1000), 1'000'000);  // 1000 B at 1 B/ns
  EXPECT_TRUE(Bandwidth::unlimited().is_unlimited());
  EXPECT_EQ(Bandwidth::unlimited().time_for(1 << 20), 0);
}

TEST(Units, Format) {
  EXPECT_EQ(format_time(ns(5)), "5.0 ns");
  EXPECT_EQ(format_time(us(3)), "3.000 us");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(4096), "4.0 KiB");
}

TEST(Engine, DelayAdvancesVirtualTime) {
  Engine e;
  Time observed = -1;
  e.spawn([](Engine& e, Time& observed) -> Task<> {
    co_await e.delay(us(5));
    observed = e.now();
  }(e, observed));
  e.run();
  EXPECT_EQ(observed, us(5));
  EXPECT_EQ(e.live_roots(), 0u);
}

TEST(Engine, EventsFireInTimestampOrder) {
  Engine e;
  std::vector<int> order;
  e.spawn([](Engine& e, std::vector<int>& order) -> Task<> {
    co_await e.delay(ns(30));
    order.push_back(3);
  }(e, order));
  e.spawn([](Engine& e, std::vector<int>& order) -> Task<> {
    co_await e.delay(ns(10));
    order.push_back(1);
  }(e, order));
  e.spawn([](Engine& e, std::vector<int>& order) -> Task<> {
    co_await e.delay(ns(20));
    order.push_back(2);
  }(e, order));
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, TiesBreakByScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.spawn([](Engine& e, std::vector<int>& order, int i) -> Task<> {
      co_await e.delay(ns(10));
      order.push_back(i);
    }(e, order, i));
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, CallAtRunsCallback) {
  Engine e;
  Time fired = -1;
  e.call_at(ns(42), [&] { fired = e.now(); });
  e.run();
  EXPECT_EQ(fired, ns(42));
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.call_at(ns(10), [&] { ++fired; });
  e.call_at(ns(100), [&] { ++fired; });
  e.run_until(ns(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), ns(50));
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now(), ns(100));
}

TEST(Engine, DestructorReclaimsStuckRoots) {
  // A root waiting on a latch that never triggers must not leak.
  auto latch_owner = std::make_unique<Engine>();
  Engine& e = *latch_owner;
  auto latch = std::make_unique<Latch>(e);
  e.spawn([](Latch& l) -> Task<> { co_await l.wait(); }(*latch));
  e.run();
  EXPECT_EQ(e.live_roots(), 1u);
  latch_owner.reset();  // must destroy the suspended root without UB
}

Task<int> add_later(Engine& e, int a, int b) {
  co_await e.delay(ns(7));
  co_return a + b;
}

TEST(Task, NestedTasksComposeAndReturnValues) {
  Engine e;
  int result = 0;
  e.spawn([](Engine& e, int& result) -> Task<> {
    int x = co_await add_later(e, 2, 3);
    int y = co_await add_later(e, x, 10);
    result = y;
  }(e, result));
  e.run();
  EXPECT_EQ(result, 15);
  EXPECT_EQ(e.now(), ns(14));
}

Task<int> thrower(Engine& e) {
  co_await e.delay(ns(1));
  throw std::runtime_error("boom");
}

TEST(Task, ExceptionsPropagateToAwaiter) {
  Engine e;
  bool caught = false;
  e.spawn([](Engine& e, bool& caught) -> Task<> {
    try {
      (void)co_await thrower(e);
    } catch (const std::runtime_error&) {
      caught = true;
    }
  }(e, caught));
  e.run();
  EXPECT_TRUE(caught);
}

TEST(Task, DeepRecursionDoesNotOverflowStack) {
  // Symmetric transfer should make deeply nested awaits O(1) native stack.
#if defined(__SANITIZE_ADDRESS__)
  // ASan instrumentation defeats the symmetric-transfer tail call, so the
  // unwind really does recurse on the native stack; keep the depth modest.
  constexpr int kDepth = 1'000;
#else
  constexpr int kDepth = 50'000;
#endif
  Engine e;
  struct Helper {
    static Task<int> count_down(Engine& e, int n) {
      if (n == 0) co_return 0;
      co_await e.delay(ps(1));
      int v = co_await count_down(e, n - 1);
      co_return v + 1;
    }
  };
  int result = 0;
  e.spawn([](Engine& e, int& result) -> Task<> {
    result = co_await Helper::count_down(e, kDepth);
  }(e, result));
  e.run();
  EXPECT_EQ(result, kDepth);
}

TEST(Latch, WaitersReleaseOnTrigger) {
  Engine e;
  Latch latch(e);
  std::vector<Time> wake_times;
  for (int i = 0; i < 3; ++i) {
    e.spawn([](Engine& e, Latch& l, std::vector<Time>& t) -> Task<> {
      co_await l.wait();
      t.push_back(e.now());
    }(e, latch, wake_times));
  }
  e.call_at(ns(100), [&] { latch.trigger(); });
  e.run();
  ASSERT_EQ(wake_times.size(), 3u);
  for (Time t : wake_times) EXPECT_EQ(t, ns(100));
}

TEST(Latch, WaitAfterTriggerIsImmediate) {
  Engine e;
  Latch latch(e);
  latch.trigger();
  Time woke = -1;
  e.spawn([](Engine& e, Latch& l, Time& woke) -> Task<> {
    co_await e.delay(ns(5));
    co_await l.wait();  // should not suspend
    woke = e.now();
  }(e, latch, woke));
  e.run();
  EXPECT_EQ(woke, ns(5));
}

TEST(Signal, EachTriggerReleasesCurrentWaiters) {
  Engine e;
  Signal sig(e);
  int wakes = 0;
  e.spawn([](Engine& e, Signal& s, int& wakes) -> Task<> {
    co_await s.wait();
    ++wakes;
    co_await s.wait();
    ++wakes;
    (void)e;
  }(e, sig, wakes));
  e.call_at(ns(10), [&] { sig.trigger(); });
  e.call_at(ns(20), [&] { sig.trigger(); });
  e.run();
  EXPECT_EQ(wakes, 2);
}

TEST(Channel, FifoDeliveryAndSuspendingRecv) {
  Engine e;
  Channel<int> ch(e);
  std::vector<int> got;
  e.spawn([](Channel<int>& ch, std::vector<int>& got) -> Task<> {
    for (int i = 0; i < 3; ++i) got.push_back(co_await ch.recv());
  }(ch, got));
  e.call_at(ns(10), [&] { ch.send(1); });
  e.call_at(ns(20), [&] {
    ch.send(2);
    ch.send(3);
  });
  e.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Resource, SerializesOverlappingRequests) {
  Engine e;
  Resource r(e);
  std::vector<Time> finish;
  for (int i = 0; i < 3; ++i) {
    e.spawn([](Engine& e, Resource& r, std::vector<Time>& fin) -> Task<> {
      co_await r.use(ns(100));
      fin.push_back(e.now());
    }(e, r, finish));
  }
  e.run();
  // Three requests issued at t=0 against a 100 ns server: 100, 200, 300.
  EXPECT_EQ(finish, (std::vector<Time>{ns(100), ns(200), ns(300)}));
  EXPECT_EQ(r.busy_total(), ns(300));
}

TEST(Resource, IdleServerStartsImmediately) {
  Engine e;
  Resource r(e);
  Time t1 = -1, t2 = -1;
  e.spawn([](Engine& e, Resource& r, Time& t1, Time& t2) -> Task<> {
    co_await r.use(ns(10));
    t1 = e.now();
    co_await e.delay(ns(100));  // let the server go idle
    co_await r.use(ns(10));
    t2 = e.now();
  }(e, r, t1, t2));
  e.run();
  EXPECT_EQ(t1, ns(10));
  EXPECT_EQ(t2, ns(120));  // starts at 110, not at 20
}

TEST(Resource, ReserveReturnsCompletionWithoutSuspending) {
  Engine e;
  Resource r(e);
  EXPECT_EQ(r.reserve(ns(50)), ns(50));
  EXPECT_EQ(r.reserve(ns(50)), ns(100));
  EXPECT_EQ(r.next_free(), ns(100));
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng r(11);
  OnlineStats s;
  for (int i = 0; i < 20'000; ++i) s.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Stats, OnlineStatsBasics) {
  OnlineStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
}

TEST(Stats, ThroughputCounter) {
  ThroughputCounter c;
  c.start(us(0));
  c.add(1'000'000);  // 1 MB over 1 ms -> 1 GB/s -> 8 Gbit/s
  EXPECT_NEAR(c.per_second(ms(1)), 1e9, 1.0);
  EXPECT_NEAR(c.gbit_per_sec(ms(1)), 8.0, 1e-9);
}

}  // namespace
}  // namespace cord::sim
