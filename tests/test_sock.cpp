// Unit tests for the socket stack (the IPoIB baseline): framing-free byte
// streams, backpressure, per-node kernel-path throughput ceiling, and the
// latency gap versus RDMA that motivates the whole paper.
#include <gtest/gtest.h>

#include "sim/join.hpp"
#include "sock/socket.hpp"
#include "test_util.hpp"

namespace cord::sock {
namespace {

using cord::testing::TwoHostFixture;
using cord::testing::run_task;

struct SockFixture : TwoHostFixture {
  SocketStack stack0{*host0, network};
  SocketStack stack1{*host1, network};
};

TEST(Socket, BytesArriveInOrderAndIntact) {
  SockFixture f;
  auto [a, b] = SocketStack::connect(f.stack0, f.stack1);
  std::vector<std::byte> sent(100'000);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    sent[i] = static_cast<std::byte>(i * 31 + 7);
  }
  std::vector<std::byte> got(sent.size());
  run_task(f.engine, [](SockFixture& f, Socket* a, Socket* b,
                        std::vector<std::byte>& sent,
                        std::vector<std::byte>& got) -> sim::Task<> {
    sim::Joinable tx(f.engine, [](os::Core& c, Socket* a,
                                  std::vector<std::byte>& sent) -> sim::Task<> {
      (void)co_await a->send(c, sent);
    }(f.host0->core(0), a, sent));
    co_await b->recv_exact(f.host1->core(0), got);
    co_await tx.join();
  }(f, a, b, sent, got));
  EXPECT_EQ(sent, got);
}

TEST(Socket, SmallMessageLatencyIsKernelStackBound) {
  SockFixture f;
  auto [a, b] = SocketStack::connect(f.stack0, f.stack1);
  sim::Time arrival = 0;
  run_task(f.engine, [](SockFixture& f, Socket* a, Socket* b,
                        sim::Time& arrival) -> sim::Task<> {
    std::vector<std::byte> msg(64, std::byte{1});
    sim::Joinable tx(f.engine, [](os::Core& c, Socket* a,
                                  std::vector<std::byte>& m) -> sim::Task<> {
      (void)co_await a->send(c, m);
    }(f.host0->core(0), a, msg));
    std::vector<std::byte> out(64);
    co_await b->recv_exact(f.host1->core(0), out);
    arrival = f.engine.now();
    co_await tx.join();
  }(f, a, b, arrival));
  // Socket path: syscalls + stack + interrupt + wakeup — several us,
  // roughly an order of magnitude above the ~1.2 us RDMA send.
  EXPECT_GT(sim::to_us(arrival), 4.0);
  EXPECT_LT(sim::to_us(arrival), 40.0);
}

TEST(Socket, SingleStreamThroughputIsIpoibClass) {
  SockFixture f;
  auto [a, b] = SocketStack::connect(f.stack0, f.stack1);
  constexpr std::size_t kTotal = 64u << 20;  // 64 MiB
  sim::Time elapsed = 0;
  run_task(f.engine, [](SockFixture& f, Socket* a, Socket* b,
                        sim::Time& elapsed) -> sim::Task<> {
    std::vector<std::byte> chunk(1 << 20, std::byte{7});
    sim::Joinable tx(f.engine, [](os::Core& c, Socket* a,
                                  std::vector<std::byte>& chunk) -> sim::Task<> {
      for (int i = 0; i < 64; ++i) (void)co_await a->send(c, chunk);
    }(f.host0->core(0), a, chunk));
    std::vector<std::byte> sink(1 << 20);
    std::size_t got = 0;
    const sim::Time t0 = f.engine.now();
    while (got < kTotal) got += co_await b->recv(f.host1->core(0), sink);
    elapsed = f.engine.now() - t0;
    co_await tx.join();
  }(f, a, b, elapsed));
  const double gbps = 8.0 * kTotal / sim::to_sec(elapsed) / 1e9;
  // IPoIB-CM-class: clearly below the 100 Gbit/s wire, far above 10G
  // Ethernet (the per-core copy/stack costs bind, not the link).
  EXPECT_GT(gbps, 12.0);
  EXPECT_LT(gbps, 65.0);
}

TEST(Socket, PerNodeKernelPathIsSharedAcrossConnections) {
  // A single stream is bound by its own cores' copies; many concurrent
  // streams must saturate the node's shared kernel path instead of
  // scaling linearly.
  auto one_stream_gbps = [] {
    SockFixture f;
    auto [a, b] = SocketStack::connect(f.stack0, f.stack1);
    sim::Time elapsed = 0;
    run_task(f.engine, [](SockFixture& f, Socket* a, Socket* b,
                          sim::Time& elapsed) -> sim::Task<> {
      std::vector<std::byte> chunk(1 << 20);
      sim::Joinable tx(f.engine, [](os::Core& c, Socket* a,
                                    std::vector<std::byte>& chunk) -> sim::Task<> {
        for (int i = 0; i < 16; ++i) (void)co_await a->send(c, chunk);
      }(f.host0->core(0), a, chunk));
      std::vector<std::byte> sink(1 << 20);
      std::size_t got = 0;
      const sim::Time t0 = f.engine.now();
      while (got < (16u << 20)) got += co_await b->recv(f.host1->core(1), sink);
      elapsed = f.engine.now() - t0;
      co_await tx.join();
    }(f, a, b, elapsed));
    return 8.0 * (16u << 20) / sim::to_sec(elapsed) / 1e9;
  };
  // A 400 Gbit/s wire so the node's kernel path (not the link) binds.
  struct FastWireFixture : TwoHostFixture {
    FastWireFixture() : TwoHostFixture({}, {}, {}, 400.0) {}
    SocketStack stack0{*host0, network};
    SocketStack stack1{*host1, network};
  };
  auto n_stream_gbps = [](int n) {
    FastWireFixture f;
    std::vector<Socket*> as(n), bs(n);
    for (int i = 0; i < n; ++i) {
      std::tie(as[i], bs[i]) = SocketStack::connect(f.stack0, f.stack1);
    }
    sim::Time elapsed = 0;
    run_task(f.engine, [](TwoHostFixture& f, std::vector<Socket*>& as,
                          std::vector<Socket*>& bs, int n,
                          sim::Time& elapsed) -> sim::Task<> {
      std::vector<std::byte> chunk(1 << 20);
      auto sender = [](os::Core& c, Socket* s,
                       std::vector<std::byte>& chunk) -> sim::Task<> {
        for (int i = 0; i < 16; ++i) (void)co_await s->send(c, chunk);
      };
      auto receiver = [](os::Core& c, Socket* s) -> sim::Task<> {
        std::vector<std::byte> sink(1 << 20);
        std::size_t got = 0;
        while (got < (16u << 20)) got += co_await s->recv(c, sink);
      };
      std::vector<std::unique_ptr<sim::Joinable>> tasks;
      const sim::Time t0 = f.engine.now();
      for (int i = 0; i < n; ++i) {
        tasks.push_back(std::make_unique<sim::Joinable>(
            f.engine, sender(f.host0->core(i), as[i], chunk)));
        tasks.push_back(std::make_unique<sim::Joinable>(
            f.engine, receiver(f.host1->core(i), bs[i])));
      }
      for (auto& t : tasks) co_await t->join();
      elapsed = f.engine.now() - t0;
    }(f, as, bs, n, elapsed));
    return 8.0 * 16 * static_cast<double>(n) * (1u << 20) /
           sim::to_sec(elapsed) / 1e9;
  };
  const double one = n_stream_gbps(1);
  const double six = n_stream_gbps(6);
  // Effective node ceiling = mss / (stack_tx + touch(mss)) ~ 120 Gbit/s;
  // one stream is per-core-copy bound (~55 Gbit/s).
  EXPECT_LT(six, one * 4.0)
      << "the shared kernel path must prevent linear scaling to 6 streams";
  EXPECT_GT(six, one * 1.5) << "but a few streams do scale (multiqueue)";
}

TEST(Socket, BackpressureBlocksFastSender) {
  SockFixture f;
  auto [a, b] = SocketStack::connect(f.stack0, f.stack1);
  bool send_done = false;
  run_task(f.engine, [](SockFixture& f, Socket* a, Socket* b,
                        bool& send_done) -> sim::Task<> {
    // 8 MiB into a 1 MiB socket buffer with a receiver that waits 5 ms:
    // the sender must stall on the window.
    std::vector<std::byte> data(8u << 20);
    sim::Joinable tx(f.engine, [](os::Core& c, Socket* a,
                                  std::vector<std::byte>& d,
                                  bool& done) -> sim::Task<> {
      (void)co_await a->send(c, d);
      done = true;
    }(f.host0->core(0), a, data, send_done));
    co_await f.engine.delay(sim::ms(5));
    // Sender cannot have finished: only ~1 MiB fits in flight.
    if (send_done) throw std::runtime_error("sender ignored backpressure");
    std::vector<std::byte> sink(8u << 20);
    co_await b->recv_exact(f.host1->core(0), sink);
    co_await tx.join();
  }(f, a, b, send_done));
  EXPECT_TRUE(send_done);
}

}  // namespace
}  // namespace cord::sock
