// cord-inspect — offline causal-latency analysis of exported traces.
//
// Reads a trace artifact (the CSV from write_records_csv or the Chrome
// trace-event JSON from write_chrome_trace — the format is sniffed, not
// told) and prints the same causal surfaces the kernel exposes through
// proc_read("latency"/"critpath"): e2e percentiles, the per-stage
// share/queue table, the critical-path summary, and the slowest spans'
// full waterfalls. An optional metrics dump (MetricsRegistry::text())
// adds an infrastructure summary — engine-queue health (depth, peak,
// calendar resizes) and the NIC doorbell/burst pipeline — so one command
// answers both "where did the time go" and "what was the machinery
// doing".
//
// Usage:
//   cord-inspect <trace.csv|trace.json> [metrics.txt]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "trace/causal/aggregate.hpp"
#include "trace/export.hpp"

using namespace cord;

namespace {

bool read_file(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

/// First non-whitespace byte decides the format: '{' or '[' is the Chrome
/// JSON exporter, anything else is the records CSV.
bool looks_like_json(const std::string& text) {
  for (char c : text) {
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') continue;
    return c == '{' || c == '[';
  }
  return false;
}

/// Print the infrastructure lines of a MetricsRegistry::text() dump:
/// engine-queue health, NIC doorbell/burst counters, and causal gauges.
/// Lines look like "name value" or "name{tenant=N} value".
void print_machinery(const std::string& metrics_text) {
  static constexpr const char* kPrefixes[] = {"engine.", "nic.", "causal.",
                                              "kernel.watchdog"};
  std::printf("machinery (from metrics dump):\n");
  std::size_t pos = 0;
  std::size_t shown = 0;
  while (pos < metrics_text.size()) {
    const std::size_t eol = metrics_text.find('\n', pos);
    const std::size_t len =
        (eol == std::string::npos ? metrics_text.size() : eol) - pos;
    const std::string line = metrics_text.substr(pos, len);
    pos = eol == std::string::npos ? metrics_text.size() : eol + 1;
    for (const char* p : kPrefixes) {
      if (line.rfind(p, 0) == 0) {
        std::printf("  %s\n", line.c_str());
        ++shown;
        break;
      }
    }
  }
  if (shown == 0) std::printf("  (no engine./nic./causal. metrics found)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr, "usage: %s <trace.csv|trace.json> [metrics.txt]\n",
                 argv[0]);
    return 2;
  }
  std::string text;
  if (!read_file(argv[1], text)) {
    std::fprintf(stderr, "cord-inspect: cannot read %s\n", argv[1]);
    return 2;
  }
  const bool json = looks_like_json(text);
  const std::vector<trace::Record> records =
      json ? trace::parse_chrome_trace(text) : trace::parse_records_csv(text);
  if (records.empty()) {
    std::fprintf(stderr, "cord-inspect: no trace records in %s (%s)\n",
                 argv[1], json ? "chrome-json" : "csv");
    return 1;
  }

  trace::causal::Aggregator agg;
  agg.ingest(records);

  std::printf("trace: %s (%s, %zu records, %llu completed spans, %zu "
              "incomplete)\n\n",
              argv[1], json ? "chrome-json" : "csv", records.size(),
              static_cast<unsigned long long>(agg.spans()),
              agg.pending_spans());
  std::printf("%s\n", agg.latency_report().c_str());
  for (std::uint32_t t : agg.tenants()) {
    std::printf("%s", agg.tenant_report(t).c_str());
  }
  std::printf("\n%s", agg.critpath_report().c_str());

  if (argc == 3) {
    std::string metrics_text;
    if (!read_file(argv[2], metrics_text)) {
      std::fprintf(stderr, "cord-inspect: cannot read %s\n", argv[2]);
      return 2;
    }
    std::printf("\n");
    print_machinery(metrics_text);
  }
  return 0;
}
