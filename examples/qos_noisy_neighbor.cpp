// qos_noisy_neighbor: the OS-control headline demo.
//
// Two tenants share a host's NIC: a latency-sensitive service doing small
// ping-pongs and a bulk tenant blasting large RDMA writes. With kernel
// bypass the OS can only watch the service's latency collapse. With CoRD,
// the operator installs a QoS token-bucket policy on the bulk tenant *at
// runtime* — no application cooperation — and the service recovers.
#include <cstdio>
#include <vector>

#include "core/system.hpp"
#include "os/policies.hpp"
#include "sim/join.hpp"
#include "sim/stats.hpp"

using namespace cord;

namespace {

constexpr os::TenantId kService = 1;
constexpr os::TenantId kBulk = 2;

struct Endpoints {
  nic::QueuePair* qp_a = nullptr;
  nic::QueuePair* qp_b = nullptr;
};

sim::Task<Endpoints> connect(verbs::Context& a, verbs::Context& b,
                             nic::ProtectionDomainId pd_a,
                             nic::ProtectionDomainId pd_b) {
  Endpoints e;
  auto* scq_a = co_await a.create_cq(4096);
  auto* rcq_a = co_await a.create_cq(4096);
  auto* scq_b = co_await b.create_cq(4096);
  auto* rcq_b = co_await b.create_cq(4096);
  e.qp_a = co_await a.create_qp({nic::QpType::kRC, pd_a, scq_a, rcq_a, 256, 512, 220});
  e.qp_b = co_await b.create_qp({nic::QpType::kRC, pd_b, scq_b, rcq_b, 256, 512, 220});
  co_await a.connect_qp(*e.qp_a, {b.node(), e.qp_b->qpn()});
  co_await b.connect_qp(*e.qp_b, {a.node(), e.qp_a->qpn()});
  co_return e;
}

/// Latency-sensitive service: 64 B ping-pong, records per-phase latency.
sim::Task<> service_loop(core::System& sys, verbs::DataplaneMode mode,
                         sim::Samples& before, sim::Samples& during,
                         sim::Samples& after, sim::Time phase) {
  verbs::Context cli(sys.host(0), 0, sys.options(mode, kService));
  verbs::Context srv(sys.host(1), 0, sys.options(mode, kService));
  auto pd_c = co_await cli.alloc_pd();
  auto pd_s = co_await srv.alloc_pd();
  Endpoints e = co_await connect(cli, srv, pd_c, pd_s);

  std::vector<std::byte> ping(64), pong(64);
  auto* mr_c = co_await cli.reg_mr(pd_c, pong.data(), 64, nic::kAccessLocalWrite);
  auto* mr_s = co_await srv.reg_mr(pd_s, ping.data(), 64, nic::kAccessLocalWrite);

  bool stop = false;
  sim::Joinable echo(sys.engine(), [](verbs::Context& srv, Endpoints e,
                                      std::vector<std::byte>& buf,
                                      std::uint32_t lkey,
                                      const bool& stop) -> sim::Task<> {
    for (;;) {
      (void)co_await srv.post_recv(
          *e.qp_b, {1, {reinterpret_cast<std::uintptr_t>(buf.data()), 64, lkey}});
      (void)co_await srv.wait_one(e.qp_b->recv_cq());
      if (stop) break;  // shutdown ping: no pong expected
      (void)co_await srv.post_send(
          *e.qp_b, {.sge = {reinterpret_cast<std::uintptr_t>(buf.data()), 64, 0},
                    .inline_data = true});
      (void)co_await srv.wait_one(e.qp_b->send_cq());
    }
  }(srv, e, ping, mr_s->lkey, stop));

  while (sys.engine().now() < 3 * phase - sim::us(60)) {
    (void)co_await cli.post_recv(
        *e.qp_a, {2, {reinterpret_cast<std::uintptr_t>(pong.data()), 64, mr_c->lkey}});
    const sim::Time t0 = sys.engine().now();
    (void)co_await cli.post_send(
        *e.qp_a, {.sge = {reinterpret_cast<std::uintptr_t>(pong.data()), 64, 0},
                  .inline_data = true});
    (void)co_await cli.wait_one(e.qp_a->send_cq());
    (void)co_await cli.wait_one(e.qp_a->recv_cq());
    const double us = sim::to_us(sys.engine().now() - t0) / 2;
    const sim::Time now = sys.engine().now();
    if (now < phase) {
      before.add(us);
    } else if (now < 2 * phase) {
      during.add(us);
    } else {
      after.add(us);
    }
    co_await sys.engine().delay(sim::us(20));  // service request rate
  }
  // Tell the echo server to wind down.
  stop = true;
  (void)co_await cli.post_send(
      *e.qp_a, {.sge = {reinterpret_cast<std::uintptr_t>(pong.data()), 64, 0},
                .inline_data = true});
  (void)co_await cli.wait_one(e.qp_a->send_cq());
  co_await echo.join();
}

/// Bulk tenant: starts at `start`, floods 1 MiB writes until `end`.
sim::Task<> bulk_loop(core::System& sys, verbs::DataplaneMode mode,
                      sim::Time start, sim::Time end, std::uint64_t& bytes_moved) {
  verbs::Context src(sys.host(0), 1, sys.options(mode, kBulk));
  verbs::Context dst(sys.host(1), 1, sys.options(mode, kBulk));
  auto pd_src = co_await src.alloc_pd();
  auto pd_dst = co_await dst.alloc_pd();
  Endpoints e = co_await connect(src, dst, pd_src, pd_dst);

  constexpr std::size_t kChunk = 1 << 20;
  std::vector<std::byte> data(kChunk), sink(kChunk);
  auto* mr_src = co_await src.reg_mr(pd_src, data.data(), kChunk, 0);
  auto* mr_dst = co_await dst.reg_mr(
      pd_dst, sink.data(), kChunk, nic::kAccessLocalWrite | nic::kAccessRemoteWrite);

  co_await sys.engine().sleep_until(start);
  while (sys.engine().now() < end) {
    nic::SendWr wr;
    wr.opcode = nic::Opcode::kRdmaWrite;
    wr.sge = {reinterpret_cast<std::uintptr_t>(data.data()),
              static_cast<std::uint32_t>(kChunk), mr_src->lkey};
    wr.remote_addr = reinterpret_cast<std::uintptr_t>(sink.data());
    wr.rkey = mr_dst->rkey;
    const int rc = co_await src.post_send(*e.qp_a, std::move(wr));
    if (rc == -11) {  // EAGAIN from a policing QoS policy
      co_await sys.engine().delay(sim::us(100));
      continue;
    }
    if (rc != 0) throw std::runtime_error("bulk post failed");
    (void)co_await src.wait_one(e.qp_a->send_cq());
    bytes_moved += kChunk;
  }
}

void run_mode(verbs::DataplaneMode mode, bool install_policy) {
  core::System sys(core::system_l(), 2);
  const sim::Time phase = sim::ms(20);
  sim::Samples before, during, after;
  std::uint64_t bulk_bytes = 0;

  // At t = 2*phase the operator throttles the bulk tenant to 1 GB/s.
  // This is a pure kernel-side action: no application involvement.
  if (install_policy) {
    sys.engine().call_at(2 * phase, [&sys] {
      auto qos = std::make_unique<os::QosTokenBucket>(
          1e9, 1 << 20, os::QosTokenBucket::Mode::kShape);
      qos->set_tenant_rate(kService, 0.0);  // service unthrottled (default)
      sys.host(0).kernel().policies().install(std::move(qos));
      std::printf("    [t=40ms] operator installs QoS policy on host 0\n");
    });
  }

  sys.engine().spawn(service_loop(sys, mode, before, during, after, phase));
  sys.engine().spawn([](core::System& sys, verbs::DataplaneMode mode,
                        sim::Time phase, std::uint64_t& bytes) -> sim::Task<> {
    co_await bulk_loop(sys, mode, phase, 3 * phase - sim::us(80), bytes);
  }(sys, mode, phase, bulk_bytes));
  sys.engine().run();

  std::printf("    service p50 latency: quiet %.2f us | bulk storm %.2f us | %s %.2f us\n",
              before.median(), during.median(),
              install_policy ? "after QoS" : "storm continues", after.median());
  std::printf("    bulk tenant moved %s\n",
              sim::format_bytes(bulk_bytes).c_str());
}

}  // namespace

int main() {
  std::printf("qos_noisy_neighbor: a bulk tenant tramples a latency-sensitive service\n\n");
  std::printf("  kernel bypass (the OS can only watch):\n");
  run_mode(verbs::DataplaneMode::kBypass, /*install_policy=*/false);
  std::printf("\n  CoRD without policy (same trampling, but observable):\n");
  run_mode(verbs::DataplaneMode::kCord, /*install_policy=*/false);
  std::printf("\n  CoRD + runtime QoS policy (the OS takes control back):\n");
  run_mode(verbs::DataplaneMode::kCord, /*install_policy=*/true);
  std::printf(
      "\nWith bypass, the NIC is shared at the device's mercy. With CoRD,\n"
      "the kernel paces the bulk tenant's posts and the service recovers.\n");
  return 0;
}
