// kv_store: a one-sided RDMA key-value store (Pilaf/FaRM style).
//
// The server registers a hash table; GETs are pure RDMA reads by the
// client — the server CPU never touches a request. PUTs go through
// two-sided messaging. The example runs the same workload in bypass and
// CoRD modes and reports the GET latency: with CoRD on the *server* only,
// GETs cost exactly the same as bypass (Fig. 3's "read BP->CD" row),
// because the server CPU is not on the GET path at all — yet the server's
// OS regains observability and policy control over the connection.
#include <cstdio>
#include <cstring>
#include <optional>
#include <vector>

#include "core/system.hpp"
#include "sim/stats.hpp"

using namespace cord;

namespace {

constexpr std::size_t kBuckets = 1024;
constexpr std::size_t kKeyLen = 16;
constexpr std::size_t kValLen = 48;

struct Bucket {
  char key[kKeyLen];
  char value[kValLen];
  std::uint64_t version;  // even = stable, odd = being written
};

std::size_t bucket_of(std::string_view key) {
  std::size_t h = 1469598103934665603ull;
  for (char c : key) h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  return h % kBuckets;
}

struct KvServer {
  std::vector<Bucket> table{kBuckets};
  const nic::MemoryRegion* mr = nullptr;

  void put(std::string_view key, std::string_view value) {
    Bucket& b = table[bucket_of(key)];
    b.version++;  // odd: writers in progress
    std::memset(b.key, 0, sizeof(b.key));
    std::memcpy(b.key, key.data(), std::min(key.size(), kKeyLen - 1));
    std::memset(b.value, 0, sizeof(b.value));
    std::memcpy(b.value, value.data(), std::min(value.size(), kValLen - 1));
    b.version++;  // even again
  }
};

struct KvClient {
  verbs::Context* ctx = nullptr;
  nic::QueuePair* qp = nullptr;
  nic::CompletionQueue* scq = nullptr;
  std::uintptr_t remote_table = 0;
  std::uint32_t rkey = 0;
  std::vector<Bucket> scratch{1};
  const nic::MemoryRegion* scratch_mr = nullptr;

  /// One-sided GET: RDMA-read the bucket, check the version for a torn
  /// write, compare the key.
  sim::Task<std::optional<std::string>> get(std::string_view key) {
    const std::size_t idx = bucket_of(key);
    nic::SendWr wr;
    wr.opcode = nic::Opcode::kRdmaRead;
    wr.sge = {reinterpret_cast<std::uintptr_t>(scratch.data()),
              static_cast<std::uint32_t>(sizeof(Bucket)), scratch_mr->lkey};
    wr.remote_addr = remote_table + idx * sizeof(Bucket);
    wr.rkey = rkey;
    if (int rc = co_await ctx->post_send(*qp, std::move(wr)); rc != 0) {
      throw std::runtime_error("GET post failed");
    }
    nic::Cqe wc = co_await ctx->wait_one(*scq);
    if (wc.status != nic::WcStatus::kSuccess) {
      throw std::runtime_error("GET completion error");
    }
    const Bucket& b = scratch[0];
    if (b.version % 2 == 1) co_return std::nullopt;  // torn; caller retries
    if (std::string_view(b.key) != key) co_return std::nullopt;
    co_return std::string(b.value);
  }
};

sim::Task<> workload(core::System& sys, verbs::DataplaneMode server_mode,
                     double& avg_get_us) {
  verbs::Context server(sys.host(0), 0, sys.options(server_mode));
  verbs::Context client(sys.host(1), 0,
                        sys.options(verbs::DataplaneMode::kBypass));

  KvServer store;
  auto pd_s = co_await server.alloc_pd();
  auto pd_c = co_await client.alloc_pd();
  store.mr = co_await server.reg_mr(
      pd_s, store.table.data(), store.table.size() * sizeof(Bucket),
      nic::kAccessLocalWrite | nic::kAccessRemoteRead);

  auto* scq_s = co_await server.create_cq(256);
  auto* rcq_s = co_await server.create_cq(256);
  auto* scq_c = co_await client.create_cq(256);
  auto* rcq_c = co_await client.create_cq(256);
  auto* qp_s = co_await server.create_qp(
      {nic::QpType::kRC, pd_s, scq_s, rcq_s, 128, 128, 0});
  auto* qp_c = co_await client.create_qp(
      {nic::QpType::kRC, pd_c, scq_c, rcq_c, 128, 128, 0});
  co_await server.connect_qp(*qp_s, {client.node(), qp_c->qpn()});
  co_await client.connect_qp(*qp_c, {server.node(), qp_s->qpn()});

  KvClient kv;
  kv.ctx = &client;
  kv.qp = qp_c;
  kv.scq = scq_c;
  kv.remote_table = reinterpret_cast<std::uintptr_t>(store.table.data());
  kv.rkey = store.mr->rkey;
  kv.scratch_mr = co_await client.reg_mr(
      pd_c, kv.scratch.data(), sizeof(Bucket), nic::kAccessLocalWrite);

  // Populate (server-local PUTs for brevity; the GET path is the point).
  for (int i = 0; i < 100; ++i) {
    store.put("key-" + std::to_string(i), "value-" + std::to_string(i * 7));
  }

  sim::Samples get_us;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key-" + std::to_string(i % 100);
    const sim::Time t0 = sys.engine().now();
    auto v = co_await kv.get(key);
    get_us.add(sim::to_us(sys.engine().now() - t0));
    if (!v || *v != "value-" + std::to_string((i % 100) * 7)) {
      throw std::runtime_error("GET returned wrong value for " + key);
    }
  }
  avg_get_us = get_us.mean();
}

}  // namespace

int main() {
  std::printf("kv_store: one-sided GETs against a server in each dataplane mode\n\n");
  double bypass_us = 0, cord_us = 0;
  {
    core::System sys(core::system_l(), 2);
    sys.engine().spawn(workload(sys, verbs::DataplaneMode::kBypass, bypass_us));
    sys.engine().run();
  }
  {
    core::System sys(core::system_l(), 2);
    sys.engine().spawn(workload(sys, verbs::DataplaneMode::kCord, cord_us));
    sys.engine().run();
  }
  std::printf("  server bypass: avg GET %.2f us\n", bypass_us);
  std::printf("  server CoRD:   avg GET %.2f us\n", cord_us);
  std::printf(
      "\nGET latency is identical: the server CPU is not on the one-sided\n"
      "read path, so CoRD on the server is free for this workload while\n"
      "giving its OS back control over the connection (Fig. 3, RC Read).\n");
  return 0;
}
