// atomic_lock: distributed synchronization on RDMA atomics.
//
// A sequencer (fetch-and-add ticket counter) and a spinlock
// (compare-and-swap) live in one host's memory; clients on the other host
// acquire them with one-sided atomics — the lock holder's CPU is never
// involved. Both run in bypass and CoRD modes: the atomics path is
// responder-side, so CoRD on the *server* costs nothing (same story as
// the kv_store's one-sided GETs), while client-side CoRD prices each
// acquisition with one syscall.
#include <cstdio>
#include <vector>

#include "core/system.hpp"
#include "sim/join.hpp"

using namespace cord;

namespace {

struct SharedState {
  alignas(8) std::uint64_t ticket = 0;   // fetch-add sequencer
  alignas(8) std::uint64_t lock = 0;     // 0 = free, else owner rank
  alignas(8) std::uint64_t protected_counter = 0;  // guarded by `lock`
};

struct Client {
  verbs::Context ctx;
  nic::QueuePair* qp = nullptr;
  nic::CompletionQueue* scq = nullptr;
  alignas(8) std::uint64_t result = 0;
  const nic::MemoryRegion* result_mr = nullptr;

  explicit Client(os::Host& host, std::size_t core, verbs::ContextOptions opts)
      : ctx(host, core, opts) {}

  sim::Task<std::uint64_t> atomic(nic::Opcode op, std::uint64_t remote_addr,
                                  std::uint32_t rkey, std::uint64_t compare_add,
                                  std::uint64_t swap = 0) {
    nic::SendWr wr;
    wr.opcode = op;
    wr.sge = {reinterpret_cast<std::uintptr_t>(&result), 8, result_mr->lkey};
    wr.remote_addr = remote_addr;
    wr.rkey = rkey;
    wr.compare_add = compare_add;
    wr.swap = swap;
    if (int rc = co_await ctx.post_send(*qp, std::move(wr)); rc != 0) {
      throw std::runtime_error("atomic post failed");
    }
    nic::Cqe wc = co_await ctx.wait_one(*scq);
    if (wc.status != nic::WcStatus::kSuccess) {
      throw std::runtime_error("atomic completion error");
    }
    co_return result;
  }
};

sim::Task<> run_clients(core::System& sys, verbs::DataplaneMode client_mode,
                        double& tickets_per_ms, bool& lock_consistent) {
  // Server side: owns the shared state; its CPU stays idle after setup.
  verbs::Context server(sys.host(0), 0, sys.options(verbs::DataplaneMode::kCord));
  SharedState state;
  auto pd_s = co_await server.alloc_pd();
  auto* state_mr = co_await server.reg_mr(
      pd_s, &state, sizeof(state),
      nic::kAccessLocalWrite | nic::kAccessRemoteAtomic | nic::kAccessRemoteRead |
          nic::kAccessRemoteWrite);
  auto* scq_s = co_await server.create_cq(64);

  constexpr int kClients = 4;
  constexpr int kOpsEach = 100;
  std::vector<std::unique_ptr<Client>> clients;
  std::vector<std::unique_ptr<sim::Joinable>> tasks;
  const sim::Time t0 = sys.engine().now();

  for (int c = 0; c < kClients; ++c) {
    auto client = std::make_unique<Client>(
        sys.host(1), static_cast<std::size_t>(c), sys.options(client_mode));
    auto pd_c = co_await client->ctx.alloc_pd();
    client->scq = co_await client->ctx.create_cq(256);
    auto* rcq = co_await client->ctx.create_cq(256);
    client->qp = co_await client->ctx.create_qp(
        {nic::QpType::kRC, pd_c, client->scq, rcq, 128, 128, 0});
    auto* qp_s = co_await server.create_qp(
        {nic::QpType::kRC, pd_s, scq_s, scq_s, 128, 128, 0});
    co_await client->ctx.connect_qp(*client->qp, {0, qp_s->qpn()});
    co_await server.connect_qp(*qp_s, {1, client->qp->qpn()});
    client->result_mr = co_await client->ctx.reg_mr(
        pd_c, &client->result, 8, nic::kAccessLocalWrite);
    clients.push_back(std::move(client));
  }

  const auto ticket_addr = reinterpret_cast<std::uintptr_t>(&state.ticket);
  const auto lock_addr = reinterpret_cast<std::uintptr_t>(&state.lock);
  const std::uint32_t rkey = state_mr->rkey;

  for (int c = 0; c < kClients; ++c) {
    tasks.push_back(std::make_unique<sim::Joinable>(
        sys.engine(),
        [](Client& cl, core::System& sys, std::uintptr_t ticket_addr,
           std::uintptr_t lock_addr, std::uint32_t rkey, SharedState& state,
           int id) -> sim::Task<> {
          for (int i = 0; i < kOpsEach; ++i) {
            // Sequencer: one fetch-add = one globally unique ticket.
            (void)co_await cl.atomic(nic::Opcode::kFetchAdd, ticket_addr, rkey, 1);
            // Spinlock: CAS 0 -> my id, retry on contention.
            for (;;) {
              const std::uint64_t old = co_await cl.atomic(
                  nic::Opcode::kCompareSwap, lock_addr, rkey, 0,
                  static_cast<std::uint64_t>(id) + 1);
              if (old == 0) break;
              co_await sys.engine().delay(sim::us(2));  // backoff
            }
            // Critical section: unsynchronized read-modify-write that is
            // only safe because the lock serializes it.
            const std::uint64_t v = state.protected_counter;
            co_await sys.engine().delay(sim::us(1));  // widen the race window
            state.protected_counter = v + 1;
            // Unlock: CAS my id -> 0.
            (void)co_await cl.atomic(nic::Opcode::kCompareSwap, lock_addr, rkey,
                                     static_cast<std::uint64_t>(id) + 1, 0);
          }
        }(*clients[c], sys, ticket_addr, lock_addr, rkey, state, c)));
  }
  for (auto& t : tasks) co_await t->join();

  const double ms = sim::to_ms(sys.engine().now() - t0);
  tickets_per_ms = kClients * kOpsEach / ms;
  lock_consistent = state.ticket == kClients * kOpsEach &&
                    state.protected_counter == kClients * kOpsEach &&
                    state.lock == 0;
}

}  // namespace

int main() {
  std::printf("atomic_lock: a sequencer + spinlock in remote memory (4 clients x 100 ops)\n\n");
  for (auto mode : {verbs::DataplaneMode::kBypass, verbs::DataplaneMode::kCord}) {
    core::System sys(core::system_l(), 2);
    double rate = 0.0;
    bool ok = false;
    sys.engine().spawn(run_clients(sys, mode, rate, ok));
    sys.engine().run();
    std::printf("  clients on %-13s %.0f acquisitions/ms, state %s\n",
                mode == verbs::DataplaneMode::kBypass ? "kernel bypass:" : "CoRD:",
                rate, ok ? "consistent" : "CORRUPT");
    if (!ok) return 1;
  }
  std::printf(
      "\n400 lock-protected increments from 4 concurrent clients, zero lost\n"
      "updates — the responder NIC serializes the atomics; the server CPU\n"
      "slept through all of it.\n");
  return 0;
}
