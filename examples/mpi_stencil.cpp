// mpi_stencil: a real distributed computation on the MPI runtime.
//
// 1D-decomposed 2D heat diffusion (Jacobi iteration) with halo exchange,
// run over all three network modes. The numerics are real — every rank
// owns a slab of the grid, exchanges boundary rows with its neighbours
// each step, and the example checks that all modes converge to the same
// residual (they transport the same bytes; only timing differs).
#include <cmath>
#include <cstdio>
#include <vector>

#include "mpi/world.hpp"

using namespace cord;
using mpi::NetMode;

namespace {

constexpr int kNx = 256;      // global rows
constexpr int kNy = 128;      // columns
constexpr int kSteps = 60;

struct Outcome {
  double residual = 0.0;
  sim::Time elapsed = 0;
};

Outcome run_mode(NetMode net) {
  core::System sys(core::system_l(), 2);
  mpi::World world(sys, 8, {.net = net});
  double residual = 0.0;
  const sim::Time elapsed = world.run([&residual](mpi::Rank& r) -> sim::Task<> {
    const int n = r.size();
    const int rows = kNx / n;
    // Slab with two ghost rows.
    std::vector<double> grid((rows + 2) * kNy, 0.0);
    std::vector<double> next((rows + 2) * kNy, 0.0);
    // Boundary condition: hot left edge.
    for (int i = 0; i < rows + 2; ++i) grid[i * kNy] = 100.0;

    const int up = r.id() > 0 ? r.id() - 1 : -1;
    const int down = r.id() < n - 1 ? r.id() + 1 : -1;
    auto row = [&](std::vector<double>& g, int i) {
      return std::span<double>(g.data() + i * kNy, kNy);
    };

    for (int step = 0; step < kSteps; ++step) {
      // Halo exchange: send my edge rows, receive neighbours' ghosts.
      if (up >= 0) {
        co_await r.sendrecv<double>(up, 1, row(grid, 1), up, 2, row(grid, 0));
      }
      if (down >= 0) {
        co_await r.sendrecv<double>(down, 2, row(grid, rows), down, 1,
                                    row(grid, rows + 1));
      }
      // Jacobi sweep (real arithmetic, and its cost charged to the core).
      double local_res = 0.0;
      for (int i = 1; i <= rows; ++i) {
        const bool top_edge = r.id() == 0 && i == 1;
        const bool bottom_edge = r.id() == n - 1 && i == rows;
        for (int j = 1; j < kNy - 1; ++j) {
          if (top_edge || bottom_edge) {
            next[i * kNy + j] = grid[i * kNy + j];
            continue;
          }
          const double v = 0.25 * (grid[(i - 1) * kNy + j] + grid[(i + 1) * kNy + j] +
                                   grid[i * kNy + j - 1] + grid[i * kNy + j + 1]);
          local_res += std::abs(v - grid[i * kNy + j]);
          next[i * kNy + j] = v;
        }
        next[i * kNy] = grid[i * kNy];
        next[i * kNy + kNy - 1] = grid[i * kNy + kNy - 1];
      }
      std::swap(grid, next);
      co_await r.compute(sim::ns(static_cast<std::int64_t>(rows) * kNy * 6));

      if (step == kSteps - 1) {
        std::array<double, 1> in{local_res};
        std::array<double, 1> out{};
        co_await r.allreduce<double>(in, out, mpi::Op::kSum);
        if (r.id() == 0) residual = out[0];
      }
    }
  });
  return {residual, elapsed};
}

}  // namespace

int main() {
  std::printf("mpi_stencil: 2D heat diffusion, 8 ranks, halo exchange, %d steps\n\n",
              kSteps);
  const Outcome rdma = run_mode(NetMode::kBypass);
  const Outcome cord = run_mode(NetMode::kCord);
  const Outcome ipoib = run_mode(NetMode::kIpoib);
  std::printf("  %-8s %10s   residual %.6f\n", "RDMA",
              sim::format_time(rdma.elapsed).c_str(), rdma.residual);
  std::printf("  %-8s %10s   residual %.6f   (%.2fx)\n", "CoRD",
              sim::format_time(cord.elapsed).c_str(), cord.residual,
              sim::to_us(cord.elapsed) / sim::to_us(rdma.elapsed));
  std::printf("  %-8s %10s   residual %.6f   (%.2fx)\n", "IPoIB",
              sim::format_time(ipoib.elapsed).c_str(), ipoib.residual,
              sim::to_us(ipoib.elapsed) / sim::to_us(rdma.elapsed));
  if (rdma.residual != cord.residual || rdma.residual != ipoib.residual) {
    std::printf("\nERROR: modes disagree on the numerics!\n");
    return 1;
  }
  std::printf("\nIdentical numerics in every mode; only the clock differs.\n");
  return 0;
}
