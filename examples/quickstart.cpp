// Quickstart: the smallest complete CoRD program.
//
// Builds a two-host system L, connects an RC queue pair through the verbs
// API, and ping-pongs a message — once with the classical kernel-bypass
// dataplane and once with CoRD (every data-plane verb through the
// kernel). The application code is identical in both modes; only the
// ContextOptions differ. That is the paper's point.
#include <cstdio>
#include <vector>

#include "core/system.hpp"
#include "sim/join.hpp"

using namespace cord;

namespace {

sim::Task<> pingpong(core::System& sys, verbs::DataplaneMode mode,
                     sim::Time& oneway) {
  verbs::Context client(sys.host(0), 0, sys.options(mode));
  verbs::Context server(sys.host(1), 0, sys.options(mode));

  // Control plane: identical in both modes (always through the kernel).
  auto pd_c = co_await client.alloc_pd();
  auto pd_s = co_await server.alloc_pd();
  auto* scq_c = co_await client.create_cq(64);
  auto* rcq_c = co_await client.create_cq(64);
  auto* scq_s = co_await server.create_cq(64);
  auto* rcq_s = co_await server.create_cq(64);
  auto* qp_c = co_await client.create_qp(
      {nic::QpType::kRC, pd_c, scq_c, rcq_c, 64, 64, 220});
  auto* qp_s = co_await server.create_qp(
      {nic::QpType::kRC, pd_s, scq_s, rcq_s, 64, 64, 220});
  co_await client.connect_qp(*qp_c, {server.node(), qp_s->qpn()});
  co_await server.connect_qp(*qp_s, {client.node(), qp_c->qpn()});

  std::vector<std::byte> msg(64, std::byte{'!'});
  std::vector<std::byte> reply(64);
  auto* mr_c = co_await client.reg_mr(pd_c, reply.data(), reply.size(),
                                      nic::kAccessLocalWrite);
  auto* mr_s = co_await server.reg_mr(pd_s, msg.data(), msg.size(),
                                      nic::kAccessLocalWrite);

  // Server: receive one message, echo it back.
  sim::Joinable echo(sys.engine(), [](verbs::Context& server, nic::QueuePair& qp,
                                      std::vector<std::byte>& buf,
                                      std::uint32_t lkey) -> sim::Task<> {
    (void)co_await server.post_recv(
        qp, {1, {reinterpret_cast<std::uintptr_t>(buf.data()), 64, lkey}});
    (void)co_await server.wait_one(qp.recv_cq());
    (void)co_await server.post_send(
        qp, {.sge = {reinterpret_cast<std::uintptr_t>(buf.data()), 64, 0},
             .inline_data = true});
    (void)co_await server.wait_one(qp.send_cq());
  }(server, *qp_s, msg, mr_s->lkey));

  (void)co_await client.post_recv(
      *qp_c, {2, {reinterpret_cast<std::uintptr_t>(reply.data()), 64, mr_c->lkey}});
  const sim::Time t0 = sys.engine().now();
  (void)co_await client.post_send(
      *qp_c, {.sge = {reinterpret_cast<std::uintptr_t>(msg.data()), 64, 0},
              .inline_data = true});
  (void)co_await client.wait_one(*scq_c);
  (void)co_await client.wait_one(*rcq_c);
  oneway = (sys.engine().now() - t0) / 2;
  co_await echo.join();

  if (reply[0] != std::byte{'!'}) throw std::runtime_error("echo corrupted");
}

}  // namespace

int main() {
  std::printf("CoRD quickstart: 64 B ping-pong on system L\n\n");
  for (auto mode : {verbs::DataplaneMode::kBypass, verbs::DataplaneMode::kCord}) {
    core::System sys(core::system_l(), 2);
    sim::Time oneway = 0;
    sys.engine().spawn(pingpong(sys, mode, oneway));
    sys.engine().run();
    std::printf("  %-18s one-way latency: %s   (data-plane syscalls: %llu)\n",
                mode == verbs::DataplaneMode::kBypass ? "kernel bypass" : "CoRD",
                sim::format_time(oneway).c_str(),
                static_cast<unsigned long long>(
                    sys.host(0).kernel().syscall_count() +
                    sys.host(1).kernel().syscall_count()));
  }
  std::printf(
      "\nSame application code, one ContextOptions flag — the kernel is\n"
      "back on the data path for a few hundred nanoseconds per message.\n");
  return 0;
}
