// observability: what the OS can see and do once it owns the data path.
//
// Two applications talk over CoRD while the "operator" — pure kernel-side
// code, no application cooperation — watches per-tenant traffic through a
// StatsCollector policy and per-QP counters, then enforces a security
// decision by revoking one connection mid-run. The revoked application
// sees its work requests flushed, exactly like a TCP connection reset by
// the firewall — the capability bypassed RDMA cannot offer.
#include <cstdio>
#include <vector>

#include "core/system.hpp"
#include "os/policies.hpp"
#include "sim/join.hpp"

using namespace cord;

namespace {

sim::Task<> traffic_loop(core::System& sys, os::TenantId tenant,
                         std::size_t msg_size, int count, std::uint32_t& qpn_out,
                         bool& saw_flush) {
  verbs::Context a(sys.host(0), tenant, sys.options(verbs::DataplaneMode::kCord, tenant));
  verbs::Context b(sys.host(1), tenant, sys.options(verbs::DataplaneMode::kCord, tenant));
  auto pd_a = co_await a.alloc_pd();
  auto pd_b = co_await b.alloc_pd();
  auto* scq_a = co_await a.create_cq(1024);
  auto* rcq_a = co_await a.create_cq(1024);
  auto* scq_b = co_await b.create_cq(1024);
  auto* rcq_b = co_await b.create_cq(1024);
  auto* qp_a = co_await a.create_qp({nic::QpType::kRC, pd_a, scq_a, rcq_a, 64, 1024, 0});
  auto* qp_b = co_await b.create_qp({nic::QpType::kRC, pd_b, scq_b, rcq_b, 64, 1024, 0});
  co_await a.connect_qp(*qp_a, {b.node(), qp_b->qpn()});
  co_await b.connect_qp(*qp_b, {a.node(), qp_a->qpn()});
  qpn_out = qp_a->qpn();

  std::vector<std::byte> payload(msg_size, std::byte{0x3C});
  std::vector<std::byte> sink(msg_size);
  auto* mr_a = co_await a.reg_mr(pd_a, payload.data(), msg_size, 0);
  auto* mr_b = co_await b.reg_mr(pd_b, sink.data(), msg_size, nic::kAccessLocalWrite);

  for (int i = 0; i < count; ++i) {
    (void)co_await b.post_recv(
        *qp_b, {1, {reinterpret_cast<std::uintptr_t>(sink.data()),
                    static_cast<std::uint32_t>(msg_size), mr_b->lkey}});
    int rc = co_await a.post_send(
        *qp_a, {.sge = {reinterpret_cast<std::uintptr_t>(payload.data()),
                        static_cast<std::uint32_t>(msg_size), mr_a->lkey}});
    if (rc != 0) {
      // The QP was revoked under us: posts fail with ENOTCONN from now on
      // (outstanding WRs, had there been any, would surface as flushes).
      saw_flush = true;
      break;
    }
    nic::Cqe wc = co_await a.wait_one(*scq_a);
    if (wc.status == nic::WcStatus::kWorkRequestFlushed) {
      saw_flush = true;
      break;
    }
    if (wc.status != nic::WcStatus::kSuccess) {
      saw_flush = true;  // revocation can also surface as a flush on poll
      break;
    }
    (void)co_await b.wait_one(*rcq_b);
    co_await sys.engine().delay(sim::us(50));
  }
}

}  // namespace

int main() {
  std::printf("observability: the kernel watches and polices RDMA tenants\n\n");
  core::System sys(core::system_l(), 2);

  // Operator side: install a stats policy. Pure kernel configuration.
  auto& stats = static_cast<os::StatsCollector&>(
      sys.host(0).kernel().policies().install(std::make_unique<os::StatsCollector>()));

  std::uint32_t qpn_good = 0, qpn_bad = 0;
  bool flushed_good = false, flushed_bad = false;
  sys.engine().spawn(traffic_loop(sys, /*tenant=*/7, 4096, 400, qpn_good,
                                  flushed_good));
  sys.engine().spawn(traffic_loop(sys, /*tenant=*/9, 65536, 400, qpn_bad,
                                  flushed_bad));

  // Mid-run, the operator inspects traffic and revokes tenant 9's QP.
  sys.engine().call_at(sim::ms(5), [&] {
    std::printf("  [t=5ms] operator snapshot:\n");
    for (const auto& [tenant, s] : stats.all()) {
      std::printf("    tenant %u: %llu sends, %llu bytes posted\n", tenant,
                  static_cast<unsigned long long>(s.post_sends),
                  static_cast<unsigned long long>(s.bytes));
    }
    if (const nic::QpCounters* c = sys.host(0).kernel().qp_counters(qpn_bad)) {
      std::printf("    qp %u (tenant 9): %llu msgs / %llu bytes on the wire\n",
                  qpn_bad, static_cast<unsigned long long>(c->tx_msgs),
                  static_cast<unsigned long long>(c->tx_bytes));
    }
    std::printf("  [t=5ms] tenant 9 violates policy -> revoking its QP\n");
    if (nic::QueuePair* qp = sys.host(0).nic().find_qp(qpn_bad)) {
      sys.host(0).kernel().revoke_qp(*qp);
    }
  });

  sys.engine().run();

  std::printf("\n  tenant 7 (well-behaved): %s\n",
              flushed_good ? "flushed (unexpected!)" : "ran to completion");
  std::printf("  tenant 9 (revoked):      %s\n",
              flushed_bad ? "connection killed by the OS (posts fail, WRs flush)"
                          : "unaffected (bug!)");
  std::printf("  final tenant-9 accounting: %llu sends seen by the kernel\n",
              static_cast<unsigned long long>(stats.tenant(9).post_sends));
  return (flushed_bad && !flushed_good) ? 0 : 1;
}
