// observability: what the OS can see and do once it owns the data path.
//
// Two applications talk over CoRD while the "operator" — pure kernel-side
// code, no application cooperation — watches per-tenant traffic through
// the kernel's metrics registry (`Kernel::proc_read`), a StatsCollector
// policy mirrored into the same registry, and per-QP counters, then
// enforces a security decision by revoking one connection mid-run. The
// whole CoRD phase runs with the tracer armed, and the capture is
// exported as Chrome trace-event JSON (load it in https://ui.perfetto.dev
// to see each work request's post → syscall → policy → doorbell → DMA →
// wire → completion span chain).
//
// The control: the same traffic in bypass mode leaves the kernel blind —
// zero syscalls, zero per-tenant metrics. That contrast is the paper's
// observability argument in one program.
//
// On top of the raw trace, the causal layer turns the capture into
// answers: per-stage latency waterfalls, the critical-path summary, and a
// tail-latency watchdog armed on tenant 9's SLO — all readable through
// the same proc interface ("latency", "latency/<tenant>", "critpath"),
// and offline via `cord-inspect` on the exported artifacts.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "os/policies.hpp"
#include "sim/join.hpp"
#include "trace/export.hpp"

using namespace cord;

namespace {

/// Artifacts land in build/ when run from the source tree (kept out of
/// git); under ctest the working directory is already inside the build
/// tree, so the bare name is fine.
std::string artifact_path(const char* name) {
  std::error_code ec;
  if (std::filesystem::is_directory("build", ec)) {
    return std::string("build/") + name;
  }
  return name;
}

sim::Task<> traffic_loop(core::System& sys, verbs::DataplaneMode mode,
                         os::TenantId tenant, std::size_t msg_size, int count,
                         std::uint32_t& qpn_out, bool& saw_flush) {
  verbs::Context a(sys.host(0), tenant, sys.options(mode, tenant));
  verbs::Context b(sys.host(1), tenant, sys.options(mode, tenant));
  auto pd_a = co_await a.alloc_pd();
  auto pd_b = co_await b.alloc_pd();
  auto* scq_a = co_await a.create_cq(1024);
  auto* rcq_a = co_await a.create_cq(1024);
  auto* scq_b = co_await b.create_cq(1024);
  auto* rcq_b = co_await b.create_cq(1024);
  auto* qp_a = co_await a.create_qp({nic::QpType::kRC, pd_a, scq_a, rcq_a, 64, 1024, 0});
  auto* qp_b = co_await b.create_qp({nic::QpType::kRC, pd_b, scq_b, rcq_b, 64, 1024, 0});
  co_await a.connect_qp(*qp_a, {b.node(), qp_b->qpn()});
  co_await b.connect_qp(*qp_b, {a.node(), qp_a->qpn()});
  qpn_out = qp_a->qpn();

  std::vector<std::byte> payload(msg_size, std::byte{0x3C});
  std::vector<std::byte> sink(msg_size);
  auto* mr_a = co_await a.reg_mr(pd_a, payload.data(), msg_size, 0);
  auto* mr_b = co_await b.reg_mr(pd_b, sink.data(), msg_size, nic::kAccessLocalWrite);

  for (int i = 0; i < count; ++i) {
    (void)co_await b.post_recv(
        *qp_b, {1, {reinterpret_cast<std::uintptr_t>(sink.data()),
                    static_cast<std::uint32_t>(msg_size), mr_b->lkey}});
    int rc = co_await a.post_send(
        *qp_a, {.sge = {reinterpret_cast<std::uintptr_t>(payload.data()),
                        static_cast<std::uint32_t>(msg_size), mr_a->lkey}});
    if (rc != 0) {
      // The QP was revoked under us: posts fail with ENOTCONN from now on
      // (outstanding WRs, had there been any, would surface as flushes).
      saw_flush = true;
      break;
    }
    nic::Cqe wc = co_await a.wait_one(*scq_a);
    if (wc.status != nic::WcStatus::kSuccess) {
      saw_flush = true;  // revocation surfaces as a flush on poll
      break;
    }
    (void)co_await b.wait_one(*rcq_b);
    co_await sys.engine().delay(sim::us(50));
  }
}

/// Count complete span chains in a trace: spans that have both a
/// kVerbsPostSend and a sender-side kCompletion record.
std::size_t complete_chains(const std::vector<trace::Record>& records) {
  std::vector<std::uint8_t> posted, completed;
  auto mark = [](std::vector<std::uint8_t>& v, std::uint32_t span) {
    if (span >= v.size()) v.resize(span + 1, 0);
    v[span] = 1;
  };
  for (const trace::Record& r : records) {
    if (r.span == 0) continue;
    if (r.point == trace::Point::kVerbsPostSend) mark(posted, r.span);
    if (r.point == trace::Point::kCompletion && r.aux == 0) {
      mark(completed, r.span);
    }
  }
  std::size_t n = 0;
  for (std::size_t s = 0; s < posted.size() && s < completed.size(); ++s) {
    if (posted[s] && completed[s]) ++n;
  }
  return n;
}

}  // namespace

int main() {
  std::printf("observability: the kernel watches and polices RDMA tenants\n");

  // ---- Phase 1: CoRD mode — the kernel sees everything -----------------
  std::printf("\n=== CoRD mode ===\n");
  core::System sys(core::system_l(), 2);
  os::Kernel& kernel = sys.host(0).kernel();

  // Operator side: install a stats policy mirrored into the kernel's
  // metrics registry. Pure kernel configuration.
  auto& stats = static_cast<os::StatsCollector&>(kernel.policies().install(
      std::make_unique<os::StatsCollector>(kernel.metrics())));

  // Arm the tracer for the whole phase: every WR leaves a span chain.
  sys.tracer().set_enabled(true);

  // Arm the tail-latency watchdog: tenant 9's p99 must stay under 5 us.
  // Its 64 KiB payloads take >5.2 us of wire serialization alone at
  // 100 Gbit/s, so the SLO is unmeetable and the watchdog must fire —
  // blaming the wire stage, not the kernel crossing. Tenant 7 (4 KiB)
  // has no SLO and stays clean.
  kernel.set_latency_slo(/*tenant=*/9, /*percentile=*/99.0,
                         /*budget=*/sim::us(5));

  std::uint32_t qpn_good = 0, qpn_bad = 0;
  bool flushed_good = false, flushed_bad = false;
  sys.engine().spawn(traffic_loop(sys, verbs::DataplaneMode::kCord,
                                  /*tenant=*/7, 4096, 400, qpn_good,
                                  flushed_good));
  sys.engine().spawn(traffic_loop(sys, verbs::DataplaneMode::kCord,
                                  /*tenant=*/9, 65536, 400, qpn_bad,
                                  flushed_bad));

  // Mid-run, the operator inspects traffic and revokes tenant 9's QP.
  sys.engine().call_at(sim::ms(5), [&] {
    std::printf("  [t=5ms] operator snapshot (kernel proc_read, no app help):\n");
    std::printf("%s", kernel.proc_read("tenants").c_str());
    std::printf("%s", kernel.proc_read("qp/" + std::to_string(qpn_bad)).c_str());
    std::printf("  [t=5ms] tenant 9 violates policy -> revoking its QP\n");
    if (nic::QueuePair* qp = sys.host(0).nic().find_qp(qpn_bad)) {
      kernel.revoke_qp(*qp);
    }
  });

  sys.engine().run();

  std::printf("\n  tenant 7 (well-behaved): %s\n",
              flushed_good ? "flushed (unexpected!)" : "ran to completion");
  std::printf("  tenant 9 (revoked):      %s\n",
              flushed_bad ? "connection killed by the OS (posts fail, WRs flush)"
                          : "unaffected (bug!)");

  std::printf("\n  final kernel-side accounting:\n%s",
              kernel.proc_read("tenants").c_str());
  std::printf("  policy mirror agrees: tenant 9 saw %llu sends\n",
              static_cast<unsigned long long>(stats.tenant(9).post_sends));
  std::printf("  engine health: clamped_events=%lld\n",
              static_cast<long long>(sys.metrics().gauge_value("engine.clamped_events")));

  // ---- Causal latency attribution (the trace, made answerable) ---------
  std::printf("\n  causal latency view (kernel proc_read(\"latency\")):\n%s",
              kernel.proc_read("latency").c_str());
  std::printf("\n  tenant 9 before revocation (proc_read(\"latency/9\")):\n%s",
              kernel.proc_read("latency/9").c_str());
  std::printf("\n  critical path (proc_read(\"critpath\"), first lines):\n");
  {
    const std::string cp = kernel.proc_read("critpath");
    std::size_t pos = 0;
    for (int i = 0; i < 10 && pos < cp.size(); ++i) {
      const std::size_t eol = cp.find('\n', pos);
      std::printf("%s\n", cp.substr(pos, eol - pos).c_str());
      pos = eol == std::string::npos ? cp.size() : eol + 1;
    }
  }
  const std::uint64_t violations_bad = kernel.causal().watchdog_violations(9);
  const std::uint64_t violations_good = kernel.causal().watchdog_violations(7);
  std::printf("\n  watchdog: tenant 9 violations=%llu (SLO p99 <= 5 us, "
              "unmeetable at 64 KiB), tenant 7 violations=%llu\n",
              static_cast<unsigned long long>(violations_bad),
              static_cast<unsigned long long>(violations_good));
  const bool watchdog_ok = violations_bad > 0 && violations_good == 0;

  const std::vector<trace::Record> records = sys.tracer().snapshot();
  const std::size_t chains = complete_chains(records);
  const std::string trace_path = artifact_path("observability_trace.json");
  const std::string csv_path = artifact_path("observability_trace.csv");
  const std::string metrics_path = artifact_path("observability_metrics.txt");
  const bool exported =
      trace::write_chrome_trace_file(trace_path.c_str(), records) &&
      trace::write_records_csv_file(csv_path.c_str(), records);
  {
    std::ofstream m(metrics_path);
    m << kernel.proc_read("metrics");
  }
  std::printf("  trace: %zu records, %zu complete WQE span chains -> %s\n",
              records.size(), chains,
              exported ? trace_path.c_str() : "(export failed)");
  std::printf("  inspect offline: cord-inspect %s %s\n", csv_path.c_str(),
              metrics_path.c_str());

  const bool cord_visible =
      kernel.metrics().find_counter("kernel.tenant.post_sends", 9) != nullptr &&
      kernel.metrics().find_counter("kernel.tenant.post_sends", 9)->value > 0;

  // ---- Phase 2: bypass mode — the same traffic is invisible ------------
  std::printf("\n=== Bypass mode (control) ===\n");
  core::System sys_bp(core::system_l(), 2);
  std::uint32_t qpn_bp = 0;
  bool flushed_bp = false;
  sys_bp.engine().spawn(traffic_loop(sys_bp, verbs::DataplaneMode::kBypass,
                                     /*tenant=*/7, 4096, 100, qpn_bp,
                                     flushed_bp));
  sys_bp.engine().run();

  os::Kernel& kernel_bp = sys_bp.host(0).kernel();
  const std::string bp_tenants = kernel_bp.proc_read("tenants");
  std::printf("  kernel proc_read(\"tenants\") after 100 bypassed sends: %s\n",
              bp_tenants.empty() ? "(empty — the kernel saw nothing)"
                                 : bp_tenants.c_str());
  std::printf("%s", kernel_bp.proc_read("syscalls").c_str());
  const bool bypass_blind =
      bp_tenants.empty() &&
      kernel_bp.metrics().find_counter("kernel.tenant.post_sends", 7) == nullptr;
  std::printf("  -> %s\n",
              bypass_blind ? "bypass traffic is invisible to the OS"
                           : "unexpected kernel-side visibility (bug!)");

  const bool ok = flushed_bad && !flushed_good && cord_visible && bypass_blind &&
                  exported && chains > 0 && watchdog_ok;
  return ok ? 0 : 1;
}
