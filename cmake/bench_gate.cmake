# Benchmark regression gate. Run via:
#
#   cmake --build build --target bench_gate        # or: ctest -C perf
#
# Re-runs the micro_sim engine benchmarks and fails if any benchmark's
# cpu_time regressed more than TOLERANCE percent against the committed
# baseline (BENCH_micro_sim.json at the repo root). Also runs the
# trace-overhead check: the engine schedule/dispatch path with an idle
# (disabled) tracer must not be measurably slower than with no tracer at
# all — tracing that taxes the simulator when off is a regression even if
# absolute numbers moved.
#
# Inputs (all required, passed with -D):
#   BASELINE     committed BENCH_micro_sim.json
#   MICRO_SIM    path to the micro_sim binary
#   TRACE_BENCH  path to the abl_trace_overhead binary
#   TENANCY_BENCH path to the bench_tenancy binary
#   OUT_DIR      scratch directory for fresh JSON output
#   TOLERANCE    allowed regression in percent (e.g. 20)
#
# Optional:
#   SPEC_FLOOR   minimum speculative-over-conservative wall-time speedup
#                on the tight-lookahead shard benchmark (default 1.3)
#   CLIFF_FLOOR  minimum exclusive-mode connection-scale latency cliff
#                (default 1.25)
#   TAIL_FLOOR   minimum noisy-neighbor victim-p99 restoration by the
#                CoRD policy chain vs the bypassed run (default 2.0)
#   SYSCALL_BATCH_FLOOR  minimum simulated per-op speedup of tx_batch=16
#                over tx_batch=1 on the CoRD deep-pipeline bandwidth run
#                (default 1.5; virtual-time, so this is a hard floor)
#
# Note: this host is a single noisy core; the tolerance is deliberately
# generous and the gate runs each binary once. Treat a failure as "rerun
# and investigate", not proof by itself.
cmake_minimum_required(VERSION 3.19)  # string(JSON)

foreach(var BASELINE MICRO_SIM TRACE_BENCH SHARD_BENCH SHARD_BASELINE
        TENANCY_BENCH OUT_DIR TOLERANCE)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_gate: missing -D${var}")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")

# {name -> cpu_time} of a google-benchmark JSON file into <prefix>_<name>,
# plus {name -> real_time} into <prefix>_RT_<name> (the shard-scaling
# entries are barrier-bound and gated on wall time: the main thread's
# cpu_time excludes the shard workers).
function(load_bench_times json_file prefix)
  file(READ "${json_file}" _doc)
  string(JSON _n LENGTH "${_doc}" "benchmarks")
  math(EXPR _last "${_n} - 1")
  set(_names "")
  foreach(i RANGE 0 ${_last})
    string(JSON _name GET "${_doc}" "benchmarks" ${i} "name")
    string(JSON _time GET "${_doc}" "benchmarks" ${i} "cpu_time")
    string(JSON _rt GET "${_doc}" "benchmarks" ${i} "real_time")
    string(MAKE_C_IDENTIFIER "${_name}" _id)
    set(${prefix}_${_id} "${_time}" PARENT_SCOPE)
    set(${prefix}_RT_${_id} "${_rt}" PARENT_SCOPE)
    # Custom counters land as top-level keys of the benchmark entry. The
    # deterministic virtual-time figure of merit (BM_SyscallBatch) rides in
    # sim_ns_per_op; absent for every other benchmark.
    string(JSON _sim ERROR_VARIABLE _sim_err GET "${_doc}" "benchmarks" ${i}
           "sim_ns_per_op")
    if(_sim_err STREQUAL "NOTFOUND")
      set(${prefix}_SIM_${_id} "${_sim}" PARENT_SCOPE)
    endif()
    list(APPEND _names "${_name}")
  endforeach()
  set(${prefix}_NAMES "${_names}" PARENT_SCOPE)
endfunction()

# Float regression test (cpu_time comes as scientific-notation ns; CMake
# math() is integer-only, so delegate the comparison to awk).
# Sets ${out} to the +% regression if new > base * (1 + tol/100), else "".
function(check_regression base new tol out)
  execute_process(
    COMMAND awk -v b=${base} -v n=${new} -v t=${tol}
            "BEGIN { if (n > b * (1 + t / 100.0)) printf \"%.1f\", (n / b - 1) * 100; }"
    OUTPUT_VARIABLE _pct RESULT_VARIABLE _rc)
  if(NOT _rc EQUAL 0)
    message(FATAL_ERROR "bench_gate: awk comparison failed")
  endif()
  set(${out} "${_pct}" PARENT_SCOPE)
endfunction()

set(_failures "")

# Fresh outputs are named BENCH_*.json so CI can upload them verbatim as
# artifacts (the workflow globs build/bench_gate/BENCH_*.json).

# --- 1. micro_sim vs committed baseline ------------------------------------
set(_fresh "${OUT_DIR}/BENCH_micro_sim.json")
execute_process(
  COMMAND "${MICRO_SIM}" --benchmark_format=json --benchmark_out=${_fresh}
          --benchmark_out_format=json --benchmark_min_time=0.3
  RESULT_VARIABLE _rc OUTPUT_QUIET)
if(NOT _rc EQUAL 0)
  message(FATAL_ERROR "bench_gate: micro_sim failed (rc=${_rc})")
endif()

load_bench_times("${BASELINE}" BASE)
load_bench_times("${_fresh}" FRESH)

foreach(_name ${BASE_NAMES})
  string(MAKE_C_IDENTIFIER "${_name}" _id)
  if(NOT DEFINED FRESH_${_id})
    list(APPEND _failures "${_name}: present in baseline, missing from fresh run")
    continue()
  endif()
  check_regression("${BASE_${_id}}" "${FRESH_${_id}}" "${TOLERANCE}" _pct)
  if(_pct)
    list(APPEND _failures
         "${_name}: cpu_time ${FRESH_${_id}} ns vs baseline ${BASE_${_id}} ns (+${_pct}%, limit +${TOLERANCE}%)")
  endif()
endforeach()

# --- 1b. calendar-vs-heap event-queue A/B ----------------------------------
# The depth-swept BM_EngineQueueDepth family runs both event-queue
# backends in the same fresh micro_sim pass. On the FIFO-like timestamp
# distribution (the NIC model's common case and the calendar queue's
# design target) the calendar backend must not be more than TOLERANCE
# percent slower than the heap at any swept depth — at the deeper depths
# it should be winning outright, and a wash here means the O(1) scheduler
# has silently degraded into its overflow heap.
foreach(_depth 1000 10000 100000)
  # The family pins MinTime(1.0), which google-benchmark bakes into the
  # benchmark name.
  string(MAKE_C_IDENTIFIER
         "BM_EngineQueueDepth/heap_fifo/${_depth}/min_time:1.000" _heap_id)
  string(MAKE_C_IDENTIFIER
         "BM_EngineQueueDepth/calendar_fifo/${_depth}/min_time:1.000" _cal_id)
  if(NOT DEFINED FRESH_${_heap_id} OR NOT DEFINED FRESH_${_cal_id})
    list(APPEND _failures
         "queue A/B: BM_EngineQueueDepth .../${_depth} missing from fresh run")
    continue()
  endif()
  check_regression("${FRESH_${_heap_id}}" "${FRESH_${_cal_id}}"
                   "${TOLERANCE}" _pct)
  if(_pct)
    list(APPEND _failures
         "calendar queue slower than heap on FIFO-like depth ${_depth}: ${FRESH_${_cal_id}} ns vs ${FRESH_${_heap_id}} ns (+${_pct}%, limit +${TOLERANCE}%)")
  else()
    message(STATUS "queue A/B (FIFO-like, depth ${_depth}): calendar "
            "${FRESH_${_cal_id}} vs heap ${FRESH_${_heap_id}} ns — OK")
  endif()
endforeach()

# --- 1c. NIC hot-loop gate --------------------------------------------------
# The fused SoA burst pipeline (DESIGN.md §15) is gated through the
# BM_NicEndToEndMessage + BM_NicBurst entries of the committed baseline.
# Section 1 already fails on >TOLERANCE% cpu_time regression for every
# baseline entry; this block additionally fails if the NIC family is
# missing from the BASELINE itself, so dropping the benchmarks (or
# regenerating the baseline without them) can't silently disarm the gate.
set(_nic_required
    "BM_NicEndToEndMessage"
    "BM_NicBurst/burst:1/bytes:64/depth:256/min_time:1.000"
    "BM_NicBurst/burst:16/bytes:64/depth:256/min_time:1.000"
    "BM_NicBurst/burst:256/bytes:64/depth:256/min_time:1.000"
    "BM_NicBurst/burst:256/bytes:4096/depth:256/min_time:1.000"
    "BM_NicBurst/burst:16/bytes:65536/depth:64/min_time:1.000")
foreach(_name ${_nic_required})
  string(MAKE_C_IDENTIFIER "${_name}" _id)
  if(NOT DEFINED BASE_${_id})
    list(APPEND _failures
         "NIC gate: ${_name} missing from committed baseline ${BASELINE}")
  elseif(DEFINED FRESH_${_id})
    message(STATUS "NIC gate (${_name}): ${FRESH_${_id}} vs baseline "
            "${BASE_${_id}} ns")
  endif()
endforeach()

# --- 1d. syscall-batch amortization floor -----------------------------------
# BM_SyscallBatch reports *simulated* nanoseconds per posted message —
# deterministic virtual time, immune to host noise — so this is a hard
# floor, not a tolerance check: the submission ring must make the CoRD
# deep-pipeline small-message run at least SYSCALL_BATCH_FLOOR x cheaper
# per op at tx_batch=16 than at tx_batch=1, at both swept depths. Both
# numbers come from the same fresh pass.
if(NOT DEFINED SYSCALL_BATCH_FLOOR)
  set(SYSCALL_BATCH_FLOOR 1.5)
endif()
foreach(_depth 64 256)
  string(MAKE_C_IDENTIFIER
         "BM_SyscallBatch/depth:${_depth}/batch:1/bypass:0" _b1)
  string(MAKE_C_IDENTIFIER
         "BM_SyscallBatch/depth:${_depth}/batch:16/bypass:0" _b16)
  if(NOT DEFINED FRESH_SIM_${_b1} OR NOT DEFINED FRESH_SIM_${_b16})
    list(APPEND _failures
         "syscall-batch floor: BM_SyscallBatch depth:${_depth} entries (or their sim_ns_per_op counters) missing from fresh run")
    continue()
  endif()
  execute_process(
    COMMAND awk -v b1=${FRESH_SIM_${_b1}} -v b16=${FRESH_SIM_${_b16}}
            -v f=${SYSCALL_BATCH_FLOOR}
            "BEGIN { printf \"%.2f\", b1 / b16; if (b1 >= b16 * f) exit 0; exit 1 }"
    OUTPUT_VARIABLE _ratio RESULT_VARIABLE _rc)
  if(NOT _rc EQUAL 0)
    list(APPEND _failures
         "syscall-batch floor: tx_batch=16 is only ${_ratio}x cheaper than tx_batch=1 at depth ${_depth} (${FRESH_SIM_${_b16}} vs ${FRESH_SIM_${_b1}} sim ns/op, floor ${SYSCALL_BATCH_FLOOR}x)")
  else()
    message(STATUS "syscall-batch amortization (depth ${_depth}): "
            "${_ratio}x over per-op submission (floor ${SYSCALL_BATCH_FLOOR}x) — OK")
  endif()
endforeach()

# Anti-disarm check (same idea as the NIC gate): the entries carrying the
# amortization floor must exist in the committed baseline itself, so
# regenerating BENCH_micro_sim.json without them cannot drop the gate.
foreach(_name
    "BM_SyscallBatch/depth:64/batch:1/bypass:0"
    "BM_SyscallBatch/depth:64/batch:16/bypass:0"
    "BM_SyscallBatch/depth:256/batch:1/bypass:0"
    "BM_SyscallBatch/depth:256/batch:16/bypass:0"
    "BM_SyscallBatch/depth:64/batch:1/bypass:1")
  string(MAKE_C_IDENTIFIER "${_name}" _id)
  if(NOT DEFINED BASE_${_id})
    list(APPEND _failures
         "syscall-batch gate: ${_name} missing from committed baseline ${BASELINE}")
  endif()
endforeach()

# --- 2. trace-overhead check ----------------------------------------------
set(_trace "${OUT_DIR}/BENCH_trace_overhead.json")
execute_process(
  COMMAND "${TRACE_BENCH}" --benchmark_format=json --benchmark_out=${_trace}
          --benchmark_out_format=json --benchmark_min_time=0.3
          --benchmark_filter=BM_ScheduleDispatch
  RESULT_VARIABLE _rc OUTPUT_QUIET)
if(NOT _rc EQUAL 0)
  message(FATAL_ERROR "bench_gate: abl_trace_overhead failed (rc=${_rc})")
endif()

load_bench_times("${_trace}" TR)
if(NOT DEFINED TR_BM_ScheduleDispatch_NoTracer OR
   NOT DEFINED TR_BM_ScheduleDispatch_TracerIdle OR
   NOT DEFINED TR_BM_ScheduleDispatch_CausalIdle)
  list(APPEND _failures
       "trace-overhead benchmarks missing from abl_trace_overhead output")
else()
  check_regression("${TR_BM_ScheduleDispatch_NoTracer}"
                   "${TR_BM_ScheduleDispatch_TracerIdle}" "${TOLERANCE}" _pct)
  if(_pct)
    list(APPEND _failures
         "idle tracer taxes the engine dispatch path: ${TR_BM_ScheduleDispatch_TracerIdle} ns vs ${TR_BM_ScheduleDispatch_NoTracer} ns (+${_pct}%, limit +${TOLERANCE}%)")
  else()
    message(STATUS "trace overhead (engine dispatch, idle tracer vs none): "
            "${TR_BM_ScheduleDispatch_TracerIdle} vs ${TR_BM_ScheduleDispatch_NoTracer} ns — OK")
  endif()
  # The causal analysis layer (aggregator + armed watchdog) is pull-based:
  # with tracing disabled it must add nothing to the dispatch path either.
  check_regression("${TR_BM_ScheduleDispatch_NoTracer}"
                   "${TR_BM_ScheduleDispatch_CausalIdle}" "${TOLERANCE}" _pct)
  if(_pct)
    list(APPEND _failures
         "idle causal layer taxes the engine dispatch path: ${TR_BM_ScheduleDispatch_CausalIdle} ns vs ${TR_BM_ScheduleDispatch_NoTracer} ns (+${_pct}%, limit +${TOLERANCE}%)")
  else()
    message(STATUS "causal-layer overhead (engine dispatch, armed-but-idle "
            "aggregator vs none): ${TR_BM_ScheduleDispatch_CausalIdle} vs "
            "${TR_BM_ScheduleDispatch_NoTracer} ns — OK")
  endif()
endif()

# --- 3. shard-scaling matrix -------------------------------------------------
# The full bench_shard_scaling matrix — {pairs, rack, tight-lookahead}
# fabrics x 1/2/4/8 shards x {conservative, speculative} — gated on
# real_time against the committed baseline (BENCH_shard_scaling.json).
# Every entry is gated, including multi-shard ones: they bound the sync
# protocols' barrier/thread overhead even on a 1-core host. Multi-shard
# wall times are barrier-bound and noisier than single-engine loops, so
# they get double tolerance; shards:1 entries (the sharding layer's tax on
# classic single-engine runs) keep the strict one.
set(_shard "${OUT_DIR}/BENCH_shard_scaling.json")
execute_process(
  COMMAND "${SHARD_BENCH}" --benchmark_format=json --benchmark_out=${_shard}
          --benchmark_out_format=json --benchmark_min_time=0.3
  RESULT_VARIABLE _rc OUTPUT_QUIET)
if(NOT _rc EQUAL 0)
  message(FATAL_ERROR "bench_gate: bench_shard_scaling failed (rc=${_rc})")
endif()

load_bench_times("${SHARD_BASELINE}" SHBASE)
load_bench_times("${_shard}" SHFRESH)
math(EXPR _tol_multi "2 * ${TOLERANCE}")
foreach(_name ${SHBASE_NAMES})
  string(MAKE_C_IDENTIFIER "${_name}" _id)
  if(NOT DEFINED SHFRESH_RT_${_id})
    list(APPEND _failures
         "${_name}: present in shard baseline, missing from fresh run")
    continue()
  endif()
  if(_name MATCHES "shards:1/")
    set(_tol "${TOLERANCE}")
  else()
    set(_tol "${_tol_multi}")
  endif()
  check_regression("${SHBASE_RT_${_id}}" "${SHFRESH_RT_${_id}}" "${_tol}" _pct)
  if(_pct)
    list(APPEND _failures
         "${_name}: real_time ${SHFRESH_RT_${_id}} ns vs baseline ${SHBASE_RT_${_id}} ns (+${_pct}%, limit +${_tol}%)")
  endif()
endforeach()

# Anti-disarm check (same idea as the NIC gate): the matrix entries that
# carry the speedup floor must exist in the committed baseline itself, so
# regenerating it without them cannot silently drop the gate.
foreach(_name
    "BM_ShardScaling/shards:1/spec:0/real_time"
    "BM_ShardScalingRack/shards:1/spec:0/real_time"
    "BM_ShardScalingTight/shards:4/spec:0/real_time"
    "BM_ShardScalingTight/shards:4/spec:1/real_time")
  string(MAKE_C_IDENTIFIER "${_name}" _id)
  if(NOT DEFINED SHBASE_${_id})
    list(APPEND _failures
         "shard gate: ${_name} missing from committed baseline ${SHARD_BASELINE}")
  endif()
endforeach()

# --- 3b. speculation speedup floor ------------------------------------------
# The whole point of sync=speculative: on the tight-lookahead fabric at 4
# shards the optimistic run must beat the conservative run by at least
# SPEC_FLOOR in wall time, both measured in the SAME fresh pass (so host
# noise cancels to first order). The win comes from ~depth-times fewer
# barrier rounds, so it must hold even on a single core.
if(NOT DEFINED SPEC_FLOOR)
  set(SPEC_FLOOR 1.3)
endif()
string(MAKE_C_IDENTIFIER "BM_ShardScalingTight/shards:4/spec:0/real_time" _tc)
string(MAKE_C_IDENTIFIER "BM_ShardScalingTight/shards:4/spec:1/real_time" _ts)
if(NOT DEFINED SHFRESH_RT_${_tc} OR NOT DEFINED SHFRESH_RT_${_ts})
  list(APPEND _failures
       "speedup floor: BM_ShardScalingTight/shards:4 configs missing from fresh run")
else()
  execute_process(
    COMMAND awk -v c=${SHFRESH_RT_${_tc}} -v s=${SHFRESH_RT_${_ts}} -v f=${SPEC_FLOOR}
            "BEGIN { printf \"%.2f\", c / s; if (c >= s * f) exit 0; exit 1 }"
    OUTPUT_VARIABLE _ratio RESULT_VARIABLE _rc)
  if(NOT _rc EQUAL 0)
    list(APPEND _failures
         "speculation speedup floor: tight-lookahead 4-shard speculative is only ${_ratio}x faster than conservative (${SHFRESH_RT_${_ts}} vs ${SHFRESH_RT_${_tc}} ns real_time, floor ${SPEC_FLOOR}x)")
  else()
    message(STATUS "speculation speedup (tight-lookahead, 4 shards): "
            "${_ratio}x over conservative (floor ${SPEC_FLOOR}x) — OK")
  endif()
endif()

# --- 4. massive-tenancy scenarios --------------------------------------------
# bench_tenancy emits *simulated* (virtual-time, deterministic) numbers,
# so these are hard floors, not noise-tolerant regression checks:
#   - the exclusive-mode qps sweep must reproduce the ICM context cliff
#     (16384 connections vs 1024 at a 4096-entry cache: >= CLIFF_FLOOR);
#   - shared mode at one million logical connections must stay bounded
#     (exactly the 64-QP pool; <= 64 MiB of connection-table memory);
#   - the CoRD policy chain must restore the noisy-neighbor victims' p99
#     by >= TAIL_FLOOR over the bypassed run, while actually denying
#     attacker ops (a chain that never bites proves nothing).
if(NOT DEFINED CLIFF_FLOOR)
  set(CLIFF_FLOOR 1.25)
endif()
if(NOT DEFINED TAIL_FLOOR)
  set(TAIL_FLOOR 2.0)
endif()
set(_tenancy "${OUT_DIR}/BENCH_tenancy.json")
execute_process(
  COMMAND "${TENANCY_BENCH}" "${_tenancy}"
  RESULT_VARIABLE _rc OUTPUT_QUIET)
if(NOT _rc EQUAL 0)
  message(FATAL_ERROR "bench_gate: bench_tenancy failed (rc=${_rc})")
endif()
file(READ "${_tenancy}" _tdoc)
foreach(_key cliff_ratio shared_1m_physical_qps shared_1m_conn_table_bytes
        victim_tail_restore noisy_cord_attacker_denied
        noisy_cord_attacker_reg_denied)
  string(JSON _${_key} GET "${_tdoc}" "${_key}")
endforeach()

execute_process(
  COMMAND awk -v r=${_cliff_ratio} -v f=${CLIFF_FLOOR}
          "BEGIN { exit (r >= f) ? 0 : 1 }"
  RESULT_VARIABLE _rc)
if(NOT _rc EQUAL 0)
  list(APPEND _failures
       "tenancy: exclusive-mode connection cliff is only ${_cliff_ratio}x (floor ${CLIFF_FLOOR}x) — the ICM miss path has gone flat")
else()
  message(STATUS "tenancy: connection cliff ${_cliff_ratio}x at 16384 "
          "connections (floor ${CLIFF_FLOOR}x) — OK")
endif()

if(NOT _shared_1m_physical_qps EQUAL 64)
  list(APPEND _failures
       "tenancy: shared mode at 1M logical connections created ${_shared_1m_physical_qps} physical QPs (expected the 64-QP pool)")
endif()
if(_shared_1m_conn_table_bytes GREATER 67108864)
  list(APPEND _failures
       "tenancy: shared-mode connection table is ${_shared_1m_conn_table_bytes} B at 1M logical connections (bound: 64 MiB)")
else()
  message(STATUS "tenancy: shared mode at 1M logical connections — "
          "${_shared_1m_physical_qps} QPs, ${_shared_1m_conn_table_bytes} B — OK")
endif()

execute_process(
  COMMAND awk -v r=${_victim_tail_restore} -v f=${TAIL_FLOOR}
          "BEGIN { exit (r >= f) ? 0 : 1 }"
  RESULT_VARIABLE _rc)
if(NOT _rc EQUAL 0)
  list(APPEND _failures
       "tenancy: policy chain restores victim p99 by only ${_victim_tail_restore}x (floor ${TAIL_FLOOR}x)")
else()
  message(STATUS "tenancy: noisy-neighbor victim p99 restored "
          "${_victim_tail_restore}x by the policy chain (floor ${TAIL_FLOOR}x) — OK")
endif()
if(_noisy_cord_attacker_denied EQUAL 0)
  list(APPEND _failures
       "tenancy: the op-rate quota never denied the attacker — the chain is not biting")
endif()
if(_noisy_cord_attacker_reg_denied EQUAL 0)
  list(APPEND _failures
       "tenancy: the registration quota never denied the attacker's MR churn")
endif()

if(_failures)
  string(REPLACE ";" "\n  " _msg "${_failures}")
  message(FATAL_ERROR "bench_gate FAILED:\n  ${_msg}")
endif()
message(STATUS "bench_gate: all benchmarks within +${TOLERANCE}% of baseline")
