file(REMOVE_RECURSE
  "CMakeFiles/test_atomics.dir/test_atomics.cpp.o"
  "CMakeFiles/test_atomics.dir/test_atomics.cpp.o.d"
  "test_atomics"
  "test_atomics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
