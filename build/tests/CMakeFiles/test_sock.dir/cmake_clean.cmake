file(REMOVE_RECURSE
  "CMakeFiles/test_sock.dir/test_sock.cpp.o"
  "CMakeFiles/test_sock.dir/test_sock.cpp.o.d"
  "test_sock"
  "test_sock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
