# Empty compiler generated dependencies file for test_perftest.
# This may be replaced when dependencies are built.
