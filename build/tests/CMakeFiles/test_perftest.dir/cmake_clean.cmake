file(REMOVE_RECURSE
  "CMakeFiles/test_perftest.dir/test_perftest.cpp.o"
  "CMakeFiles/test_perftest.dir/test_perftest.cpp.o.d"
  "test_perftest"
  "test_perftest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perftest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
