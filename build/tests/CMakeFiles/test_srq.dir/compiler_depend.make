# Empty compiler generated dependencies file for test_srq.
# This may be replaced when dependencies are built.
