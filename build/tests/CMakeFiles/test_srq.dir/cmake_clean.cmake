file(REMOVE_RECURSE
  "CMakeFiles/test_srq.dir/test_srq.cpp.o"
  "CMakeFiles/test_srq.dir/test_srq.cpp.o.d"
  "test_srq"
  "test_srq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_srq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
