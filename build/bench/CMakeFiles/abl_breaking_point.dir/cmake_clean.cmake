file(REMOVE_RECURSE
  "CMakeFiles/abl_breaking_point.dir/abl_breaking_point.cpp.o"
  "CMakeFiles/abl_breaking_point.dir/abl_breaking_point.cpp.o.d"
  "abl_breaking_point"
  "abl_breaking_point.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_breaking_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
