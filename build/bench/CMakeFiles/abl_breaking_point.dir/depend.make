# Empty dependencies file for abl_breaking_point.
# This may be replaced when dependencies are built.
