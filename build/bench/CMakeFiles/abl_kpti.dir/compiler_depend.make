# Empty compiler generated dependencies file for abl_kpti.
# This may be replaced when dependencies are built.
