file(REMOVE_RECURSE
  "CMakeFiles/abl_kpti.dir/abl_kpti.cpp.o"
  "CMakeFiles/abl_kpti.dir/abl_kpti.cpp.o.d"
  "abl_kpti"
  "abl_kpti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_kpti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
