file(REMOVE_RECURSE
  "CMakeFiles/abl_turbo.dir/abl_turbo.cpp.o"
  "CMakeFiles/abl_turbo.dir/abl_turbo.cpp.o.d"
  "abl_turbo"
  "abl_turbo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_turbo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
