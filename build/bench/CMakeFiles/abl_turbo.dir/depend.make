# Empty dependencies file for abl_turbo.
# This may be replaced when dependencies are built.
