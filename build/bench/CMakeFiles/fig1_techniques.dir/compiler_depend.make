# Empty compiler generated dependencies file for fig1_techniques.
# This may be replaced when dependencies are built.
