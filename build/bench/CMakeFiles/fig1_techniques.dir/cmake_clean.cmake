file(REMOVE_RECURSE
  "CMakeFiles/fig1_techniques.dir/fig1_techniques.cpp.o"
  "CMakeFiles/fig1_techniques.dir/fig1_techniques.cpp.o.d"
  "fig1_techniques"
  "fig1_techniques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_techniques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
