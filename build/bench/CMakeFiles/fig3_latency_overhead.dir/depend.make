# Empty dependencies file for fig3_latency_overhead.
# This may be replaced when dependencies are built.
