# Empty dependencies file for abl_inline.
# This may be replaced when dependencies are built.
