file(REMOVE_RECURSE
  "CMakeFiles/abl_inline.dir/abl_inline.cpp.o"
  "CMakeFiles/abl_inline.dir/abl_inline.cpp.o.d"
  "abl_inline"
  "abl_inline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_inline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
