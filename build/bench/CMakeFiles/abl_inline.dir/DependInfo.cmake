
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_inline.cpp" "bench/CMakeFiles/abl_inline.dir/abl_inline.cpp.o" "gcc" "bench/CMakeFiles/abl_inline.dir/abl_inline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cord_perftest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cord_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cord_verbs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cord_os.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cord_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cord_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
