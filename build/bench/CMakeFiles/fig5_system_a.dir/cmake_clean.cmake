file(REMOVE_RECURSE
  "CMakeFiles/fig5_system_a.dir/fig5_system_a.cpp.o"
  "CMakeFiles/fig5_system_a.dir/fig5_system_a.cpp.o.d"
  "fig5_system_a"
  "fig5_system_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_system_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
