# Empty compiler generated dependencies file for fig5_system_a.
# This may be replaced when dependencies are built.
