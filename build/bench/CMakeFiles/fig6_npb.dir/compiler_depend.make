# Empty compiler generated dependencies file for fig6_npb.
# This may be replaced when dependencies are built.
