file(REMOVE_RECURSE
  "CMakeFiles/fig6_npb.dir/fig6_npb.cpp.o"
  "CMakeFiles/fig6_npb.dir/fig6_npb.cpp.o.d"
  "fig6_npb"
  "fig6_npb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
