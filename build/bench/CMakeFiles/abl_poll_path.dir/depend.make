# Empty dependencies file for abl_poll_path.
# This may be replaced when dependencies are built.
