file(REMOVE_RECURSE
  "CMakeFiles/abl_poll_path.dir/abl_poll_path.cpp.o"
  "CMakeFiles/abl_poll_path.dir/abl_poll_path.cpp.o.d"
  "abl_poll_path"
  "abl_poll_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_poll_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
