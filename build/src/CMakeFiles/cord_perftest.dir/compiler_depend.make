# Empty compiler generated dependencies file for cord_perftest.
# This may be replaced when dependencies are built.
