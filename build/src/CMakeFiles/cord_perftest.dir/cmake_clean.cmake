file(REMOVE_RECURSE
  "CMakeFiles/cord_perftest.dir/perftest/perftest.cpp.o"
  "CMakeFiles/cord_perftest.dir/perftest/perftest.cpp.o.d"
  "libcord_perftest.a"
  "libcord_perftest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cord_perftest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
