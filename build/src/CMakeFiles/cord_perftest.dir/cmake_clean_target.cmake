file(REMOVE_RECURSE
  "libcord_perftest.a"
)
