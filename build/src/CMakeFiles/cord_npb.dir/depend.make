# Empty dependencies file for cord_npb.
# This may be replaced when dependencies are built.
