file(REMOVE_RECURSE
  "libcord_npb.a"
)
