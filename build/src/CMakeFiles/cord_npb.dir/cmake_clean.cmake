file(REMOVE_RECURSE
  "CMakeFiles/cord_npb.dir/npb/kernels_a.cpp.o"
  "CMakeFiles/cord_npb.dir/npb/kernels_a.cpp.o.d"
  "CMakeFiles/cord_npb.dir/npb/kernels_b.cpp.o"
  "CMakeFiles/cord_npb.dir/npb/kernels_b.cpp.o.d"
  "CMakeFiles/cord_npb.dir/npb/run.cpp.o"
  "CMakeFiles/cord_npb.dir/npb/run.cpp.o.d"
  "libcord_npb.a"
  "libcord_npb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cord_npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
