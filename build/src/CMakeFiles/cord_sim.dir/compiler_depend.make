# Empty compiler generated dependencies file for cord_sim.
# This may be replaced when dependencies are built.
