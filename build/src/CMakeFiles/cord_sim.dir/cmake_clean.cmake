file(REMOVE_RECURSE
  "CMakeFiles/cord_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/cord_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/cord_sim.dir/sim/stats.cpp.o"
  "CMakeFiles/cord_sim.dir/sim/stats.cpp.o.d"
  "CMakeFiles/cord_sim.dir/sim/units.cpp.o"
  "CMakeFiles/cord_sim.dir/sim/units.cpp.o.d"
  "libcord_sim.a"
  "libcord_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cord_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
