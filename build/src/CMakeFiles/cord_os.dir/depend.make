# Empty dependencies file for cord_os.
# This may be replaced when dependencies are built.
