file(REMOVE_RECURSE
  "CMakeFiles/cord_os.dir/os/kernel.cpp.o"
  "CMakeFiles/cord_os.dir/os/kernel.cpp.o.d"
  "libcord_os.a"
  "libcord_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cord_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
