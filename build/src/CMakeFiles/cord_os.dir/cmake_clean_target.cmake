file(REMOVE_RECURSE
  "libcord_os.a"
)
