file(REMOVE_RECURSE
  "CMakeFiles/cord_nic.dir/nic/nic.cpp.o"
  "CMakeFiles/cord_nic.dir/nic/nic.cpp.o.d"
  "libcord_nic.a"
  "libcord_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cord_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
