file(REMOVE_RECURSE
  "libcord_nic.a"
)
