# Empty compiler generated dependencies file for cord_nic.
# This may be replaced when dependencies are built.
