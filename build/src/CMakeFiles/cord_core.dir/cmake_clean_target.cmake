file(REMOVE_RECURSE
  "libcord_core.a"
)
