file(REMOVE_RECURSE
  "CMakeFiles/cord_core.dir/core/system.cpp.o"
  "CMakeFiles/cord_core.dir/core/system.cpp.o.d"
  "libcord_core.a"
  "libcord_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cord_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
