file(REMOVE_RECURSE
  "CMakeFiles/cord_verbs.dir/verbs/verbs.cpp.o"
  "CMakeFiles/cord_verbs.dir/verbs/verbs.cpp.o.d"
  "libcord_verbs.a"
  "libcord_verbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cord_verbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
