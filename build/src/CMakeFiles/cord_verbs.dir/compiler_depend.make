# Empty compiler generated dependencies file for cord_verbs.
# This may be replaced when dependencies are built.
