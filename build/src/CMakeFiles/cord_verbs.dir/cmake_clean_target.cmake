file(REMOVE_RECURSE
  "libcord_verbs.a"
)
