file(REMOVE_RECURSE
  "CMakeFiles/cord_sock.dir/sock/socket.cpp.o"
  "CMakeFiles/cord_sock.dir/sock/socket.cpp.o.d"
  "libcord_sock.a"
  "libcord_sock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cord_sock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
