file(REMOVE_RECURSE
  "libcord_sock.a"
)
