# Empty dependencies file for cord_sock.
# This may be replaced when dependencies are built.
