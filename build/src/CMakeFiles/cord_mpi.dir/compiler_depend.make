# Empty compiler generated dependencies file for cord_mpi.
# This may be replaced when dependencies are built.
