file(REMOVE_RECURSE
  "CMakeFiles/cord_mpi.dir/mpi/endpoint.cpp.o"
  "CMakeFiles/cord_mpi.dir/mpi/endpoint.cpp.o.d"
  "CMakeFiles/cord_mpi.dir/mpi/socket_endpoint.cpp.o"
  "CMakeFiles/cord_mpi.dir/mpi/socket_endpoint.cpp.o.d"
  "CMakeFiles/cord_mpi.dir/mpi/verbs_endpoint.cpp.o"
  "CMakeFiles/cord_mpi.dir/mpi/verbs_endpoint.cpp.o.d"
  "CMakeFiles/cord_mpi.dir/mpi/world.cpp.o"
  "CMakeFiles/cord_mpi.dir/mpi/world.cpp.o.d"
  "libcord_mpi.a"
  "libcord_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cord_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
