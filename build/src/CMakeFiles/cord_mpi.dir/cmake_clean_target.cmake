file(REMOVE_RECURSE
  "libcord_mpi.a"
)
