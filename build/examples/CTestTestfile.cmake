# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;10;cord_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kv_store "/root/repo/build/examples/kv_store")
set_tests_properties(example_kv_store PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;11;cord_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_qos_noisy_neighbor "/root/repo/build/examples/qos_noisy_neighbor")
set_tests_properties(example_qos_noisy_neighbor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;12;cord_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mpi_stencil "/root/repo/build/examples/mpi_stencil")
set_tests_properties(example_mpi_stencil PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;13;cord_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_observability "/root/repo/build/examples/observability")
set_tests_properties(example_observability PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;14;cord_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_atomic_lock "/root/repo/build/examples/atomic_lock")
set_tests_properties(example_atomic_lock PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;15;cord_example;/root/repo/examples/CMakeLists.txt;0;")
