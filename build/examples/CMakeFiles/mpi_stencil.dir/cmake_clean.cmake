file(REMOVE_RECURSE
  "CMakeFiles/mpi_stencil.dir/mpi_stencil.cpp.o"
  "CMakeFiles/mpi_stencil.dir/mpi_stencil.cpp.o.d"
  "mpi_stencil"
  "mpi_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
