file(REMOVE_RECURSE
  "CMakeFiles/qos_noisy_neighbor.dir/qos_noisy_neighbor.cpp.o"
  "CMakeFiles/qos_noisy_neighbor.dir/qos_noisy_neighbor.cpp.o.d"
  "qos_noisy_neighbor"
  "qos_noisy_neighbor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_noisy_neighbor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
