# Empty dependencies file for qos_noisy_neighbor.
# This may be replaced when dependencies are built.
