# Empty dependencies file for atomic_lock.
# This may be replaced when dependencies are built.
