file(REMOVE_RECURSE
  "CMakeFiles/atomic_lock.dir/atomic_lock.cpp.o"
  "CMakeFiles/atomic_lock.dir/atomic_lock.cpp.o.d"
  "atomic_lock"
  "atomic_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomic_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
