// Figure 3 — Latency overhead on system L when communicating over
// different transports (RC/UD) using one-sided (Read/Write) or two-sided
// (Send) operations, with bypass (BP) or CoRD (CD) enabled independently
// on each side. Message size 4 KiB, as in the paper.
//
// Expected shape: RDMA read with CoRD only on the server has *no*
// overhead (the server CPU does not participate); for everything else
// each CoRD side contributes roughly equally; CD->CD pays both sides.
#include <cstdio>

#include "bench_util.hpp"
#include "perftest/perftest.hpp"

namespace {

using namespace cord;
using namespace cord::bench;
using namespace cord::perftest;
using verbs::DataplaneMode;

struct OpRow {
  const char* name;
  TestOp op;
  Transport transport;
};

const OpRow kOps[] = {
    {"RC Send", TestOp::kSend, Transport::kRC},
    {"RC Write", TestOp::kWrite, Transport::kRC},
    {"RC Read", TestOp::kRead, Transport::kRC},
    {"UD Send", TestOp::kSend, Transport::kUD},
};

double lat_us(const core::SystemConfig& cfg, const OpRow& o, DataplaneMode c,
              DataplaneMode s) {
  Params p;
  p.op = o.op;
  p.transport = o.transport;
  p.msg_size = 4096;
  p.iterations = 300;
  p.warmup = 30;
  p.client = verbs::ContextOptions{.mode = c,
                                   .cord_inline_support = cfg.cord_inline_support};
  p.server = verbs::ContextOptions{.mode = s,
                                   .cord_inline_support = cfg.cord_inline_support};
  auto r = run_latency(cfg, p);
  warn_clamped(r.clamped_events, "fig3 latency");
  return r.avg_us;
}

}  // namespace

int main() {
  const auto cfg = core::system_l();
  std::printf(
      "=== Figure 3: latency overhead vs BP->BP (us), 4 KiB, system L ===\n"
      "(client mode -> server mode; client drives the test)\n\n");
  Table t({"op", "BP->BP (abs us)", "CD->BP", "BP->CD", "CD->CD"});
  for (const OpRow& o : kOps) {
    const double base = lat_us(cfg, o, DataplaneMode::kBypass, DataplaneMode::kBypass);
    const double cd_bp = lat_us(cfg, o, DataplaneMode::kCord, DataplaneMode::kBypass);
    const double bp_cd = lat_us(cfg, o, DataplaneMode::kBypass, DataplaneMode::kCord);
    const double cd_cd = lat_us(cfg, o, DataplaneMode::kCord, DataplaneMode::kCord);
    t.add_row({o.name, fmt("%.2f", base), fmt("+%.2f", cd_bp - base),
               fmt("+%.2f", bp_cd - base), fmt("+%.2f", cd_cd - base)});
  }
  t.print();
  std::printf(
      "\nPaper checkpoints: RC Read BP->CD overhead ~0 (server CPU not\n"
      "involved); for other operations both sides contribute about\n"
      "equally and CD->CD is roughly their sum.\n");
  return 0;
}
