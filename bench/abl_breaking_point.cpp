// Ablation: the "breaking point" of CoRD.
//
// §6: "We intend to assemble a set of real-world benchmark applications
// that shows the breaking point of CoRD." This bench charts it
// synthetically: an application alternates computation with bursts of
// messages; sweeping the communication intensity (messages per
// millisecond of compute) locates the point where CoRD's per-message
// syscall cost stops being noise.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/system.hpp"
#include "sim/join.hpp"

namespace {

using namespace cord;
using namespace cord::bench;

/// Run `bursts` iterations of [compute 1 ms, then exchange `msgs`
/// back-to-back 256 B messages]; returns total virtual time.
sim::Time run_app(const core::SystemConfig& cfg, verbs::DataplaneMode mode,
                  int msgs_per_burst) {
  core::System sys(cfg, 2);
  sim::Time elapsed = 0;
  sys.engine().spawn([](core::System& sys, verbs::DataplaneMode mode,
                        int msgs, sim::Time& elapsed) -> sim::Task<> {
    verbs::Context a(sys.host(0), 0, sys.options(mode));
    verbs::Context b(sys.host(1), 0, sys.options(mode));
    auto pd_a = co_await a.alloc_pd();
    auto pd_b = co_await b.alloc_pd();
    auto* scq_a = co_await a.create_cq(8192);
    auto* rcq_a = co_await a.create_cq(8192);
    auto* scq_b = co_await b.create_cq(8192);
    auto* rcq_b = co_await b.create_cq(8192);
    auto* qp_a = co_await a.create_qp(
        {nic::QpType::kRC, pd_a, scq_a, rcq_a, 512, 8192, 220});
    auto* qp_b = co_await b.create_qp(
        {nic::QpType::kRC, pd_b, scq_b, rcq_b, 512, 8192, 220});
    co_await a.connect_qp(*qp_a, {1, qp_b->qpn()});
    co_await b.connect_qp(*qp_b, {0, qp_a->qpn()});
    std::vector<std::byte> buf(200), sink(256);
    auto* rmr = co_await b.reg_mr(pd_b, sink.data(), 256, nic::kAccessLocalWrite);

    constexpr int kBursts = 10;
    // Receiver: consume everything, repost eagerly.
    sim::Joinable rx(sys.engine(), [](verbs::Context& b, nic::QueuePair& qp,
                                      std::vector<std::byte>& sink,
                                      std::uint32_t lkey, int total) -> sim::Task<> {
      // Keep the RQ topped up within its depth; replenish per completion.
      // The receiver is not the measured side, so it harvests with armed-
      // CQ event waits instead of busy polling (cheap to simulate through
      // the long compute windows between bursts).
      const int prefill = std::min(total, 4096);
      for (int i = 0; i < prefill; ++i) {
        const int rc = co_await b.post_recv(
            qp, {1, {reinterpret_cast<std::uintptr_t>(sink.data()), 256, lkey}});
        if (rc != 0) throw std::runtime_error("rx prefill failed");
      }
      int seen = 0;
      int posted = prefill;
      std::vector<nic::Cqe> wc(64);
      while (seen < total) {
        std::size_t n = co_await b.poll_cq(qp.recv_cq(), wc);
        if (n == 0) {
          co_await b.host().kernel().wait_cq_event(b.core(), qp.recv_cq());
          continue;
        }
        for (std::size_t j = 0; j < n; ++j) {
          if (wc[j].status != nic::WcStatus::kSuccess) {
            throw std::runtime_error("rx completion error");
          }
        }
        seen += static_cast<int>(n);
        while (posted < total && posted - seen < 4096) {
          const int rc = co_await b.post_recv(
              qp, {1, {reinterpret_cast<std::uintptr_t>(sink.data()), 256, lkey}});
          if (rc != 0) break;  // ring momentarily full; retry next round
          ++posted;
        }
      }
    }(b, *qp_b, sink, rmr->lkey, kBursts * msgs));

    const sim::Time t0 = sys.engine().now();
    std::vector<nic::Cqe> wc(64);
    for (int burst = 0; burst < kBursts; ++burst) {
      co_await a.core().work(sim::ms(1), os::Work::kCompute);
      int posted = 0, done = 0;
      while (done < msgs) {
        while (posted < msgs && posted - done < 256) {
          const int rc = co_await a.post_send(
              *qp_a, {.sge = {reinterpret_cast<std::uintptr_t>(buf.data()), 200, 0},
                      .inline_data = true});
          if (rc != 0) throw std::runtime_error("tx post failed");
          ++posted;
        }
        const std::size_t n = co_await a.poll_cq(*scq_a, wc);
        for (std::size_t j = 0; j < n; ++j) {
          if (wc[j].status != nic::WcStatus::kSuccess) {
            throw std::runtime_error("tx completion error");
          }
        }
        done += static_cast<int>(n);
      }
    }
    elapsed = sys.engine().now() - t0;
    co_await rx.join();
  }(sys, mode, msgs_per_burst, elapsed));
  sys.engine().run();
  return elapsed;
}

}  // namespace

int main() {
  std::printf(
      "=== Ablation: the breaking point of CoRD (system L) ===\n"
      "App shape: 1 ms of compute, then a burst of 200 B messages.\n\n");
  const auto cfg = core::system_l();
  Table t({"msgs per 1ms compute", "bypass ms", "CoRD ms", "slowdown %"});
  for (int msgs : {10, 50, 100, 500, 1000, 2000, 5000}) {
    const double bp = sim::to_ms(run_app(cfg, verbs::DataplaneMode::kBypass, msgs));
    const double cd = sim::to_ms(run_app(cfg, verbs::DataplaneMode::kCord, msgs));
    t.add_row({std::to_string(msgs), fmt("%.2f", bp), fmt("%.2f", cd),
               fmt("%.1f", 100.0 * (cd - bp) / bp)});
  }
  t.print();
  std::printf(
      "\nBelow ~500 msgs per compute-millisecond CoRD costs <~15%%; the\n"
      "NPB suite sits around 1-10 msgs/ms (Fig. 6's 'nearly zero'). The\n"
      "breaking point sits orders of magnitude beyond real applications.\n");
  return 0;
}
