// Shard-scaling benchmark: a link-partitioned fabric of independent node
// pairs, block-partitioned across 1/2/4 engine shards, streaming RC sends
// within each pair. With the pair-aligned partition no link crosses a
// shard boundary, so the conservative protocol degenerates to one
// unbounded window — the embarrassingly-parallel best case that bounds
// what sharding can ever buy on this workload.
//
// Honesty note: speedup requires hardware parallelism. The benchmark
// reports std::thread::hardware_concurrency() as a counter; on a 1-core
// host the 2/4-shard configs measure pure protocol + thread overhead (a
// slowdown) and only the shards:1 config is meaningful to gate (it bounds
// the sharding layer's tax on classic single-engine runs — see
// bench_gate).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "fabric/link.hpp"
#include "fabric/topology.hpp"
#include "nic/nic.hpp"
#include "sim/sharded.hpp"

namespace {

using namespace cord;

constexpr std::size_t kPairs = 8;
constexpr int kMsgsPerPair = 256;
constexpr std::uint32_t kMsgBytes = 64;

std::uintptr_t uptr(const void* p) { return reinterpret_cast<std::uintptr_t>(p); }

/// kPairs back-to-back node pairs, pair k on shard k * shards / kPairs.
struct PairsFabric {
  sim::ShardedEngine se;
  fabric::Network net;
  nic::NicRegistry reg;
  std::vector<std::unique_ptr<nic::Nic>> nics;
  std::vector<nic::QueuePair*> qps;  // [2k] client, [2k+1] server
  std::vector<nic::CompletionQueue*> scqs, rcqs;
  std::vector<std::vector<std::byte>> bufs;

  explicit PairsFabric(std::size_t shards)
      : se(shards), net([this](fabric::NodeId n) -> sim::Engine& {
          return se.shard(shard_of(n));
        }) {
    for (std::size_t n = 0; n < 2 * kPairs; ++n) {
      net.add_node(static_cast<fabric::NodeId>(n),
                   sim::Bandwidth::gbit_per_sec(200.0), sim::ns(150));
    }
    for (std::size_t k = 0; k < kPairs; ++k) {
      net.connect(static_cast<fabric::NodeId>(2 * k),
                  static_cast<fabric::NodeId>(2 * k + 1),
                  sim::Bandwidth::gbit_per_sec(100.0), sim::ns(150));
    }
    // Pair-aligned partition: no cross-shard links, unbounded lookahead.
    se.set_lookahead(net.min_cross_lookahead(
        [this](fabric::NodeId n) { return shard_of(n); }));
    for (std::size_t n = 0; n < 2 * kPairs; ++n) {
      nics.push_back(std::make_unique<nic::Nic>(
          se.shard(shard_of(static_cast<fabric::NodeId>(n))), net, reg,
          static_cast<nic::NodeId>(n), nic::NicConfig{}));
    }
    bufs.resize(2 * kPairs);
    for (std::size_t k = 0; k < kPairs; ++k) connect_pair(k);
  }

  std::size_t shard_of(fabric::NodeId n) const {
    return (n / 2) * se.shard_count() / kPairs;
  }

  void connect_pair(std::size_t k) {
    nic::Nic& a = *nics[2 * k];
    nic::Nic& b = *nics[2 * k + 1];
    auto pda = a.alloc_pd();
    auto pdb = b.alloc_pd();
    auto* scqa = a.create_cq(1024);
    auto* rcqa = a.create_cq(1024);
    auto* scqb = b.create_cq(1024);
    auto* rcqb = b.create_cq(1024);
    auto* qpa = a.create_qp({nic::QpType::kRC, pda, scqa, rcqa, 1024, 1024, 0});
    auto* qpb = b.create_qp({nic::QpType::kRC, pdb, scqb, rcqb, 1024, 1024, 0});
    a.modify_qp(*qpa, nic::QpState::kInit);
    a.modify_qp(*qpa, nic::QpState::kRtr,
                {static_cast<nic::NodeId>(2 * k + 1), qpb->qpn()});
    a.modify_qp(*qpa, nic::QpState::kRts);
    b.modify_qp(*qpb, nic::QpState::kInit);
    b.modify_qp(*qpb, nic::QpState::kRtr,
                {static_cast<nic::NodeId>(2 * k), qpa->qpn()});
    b.modify_qp(*qpb, nic::QpState::kRts);
    qps.push_back(qpa);
    qps.push_back(qpb);
    scqs.push_back(scqa);
    scqs.push_back(scqb);
    rcqs.push_back(rcqa);
    rcqs.push_back(rcqb);
    bufs[2 * k].assign(kMsgBytes, std::byte{0x5A});
    bufs[2 * k + 1].assign(static_cast<std::size_t>(kMsgBytes) * kMsgsPerPair,
                           std::byte{0});
    const auto& mr_src = a.register_mr(pda, bufs[2 * k].data(),
                                       bufs[2 * k].size(), 0);
    const auto& mr_dst =
        b.register_mr(pdb, bufs[2 * k + 1].data(), bufs[2 * k + 1].size(),
                      nic::kAccessLocalWrite);
    for (int i = 0; i < kMsgsPerPair; ++i) {
      b.post_recv(*qpb,
                  {std::uint64_t(i),
                   {uptr(bufs[2 * k + 1].data()) + std::size_t(i) * kMsgBytes,
                    kMsgBytes, mr_dst.lkey}});
    }
    for (int i = 0; i < kMsgsPerPair; ++i) {
      a.post_send(*qpa,
                  nic::SendWr{.wr_id = std::uint64_t(i),
                              .sge = {uptr(bufs[2 * k].data()), kMsgBytes,
                                      mr_src.lkey}});
    }
  }
};

void BM_ShardScaling(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  std::uint64_t events = 0;
  // Rate over wall time, measured here: the library's kIsRate divides by
  // the *main thread's* CPU time, which excludes shard workers and would
  // fake a speedup whenever the coordinator sleeps at the barrier.
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    PairsFabric f(shards);
    f.se.run();
    events += f.se.events_processed();
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;
  state.counters["events_per_sec"] =
      wall.count() > 0 ? static_cast<double>(events) / wall.count() : 0.0;
  state.counters["hw_threads"] = static_cast<double>(
      std::max(1u, std::thread::hardware_concurrency()));
}
BENCHMARK(BM_ShardScaling)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

/// The routed counterpart: a 4-rack x 2-host leaf-spine fabric with every
/// stream crossing the spine (client in racks 0/1, server in racks 2/3),
/// rack-aligned block partition, per-pair lookahead matrix. Unlike the
/// pair fabric this exercises multi-hop reservations, the boundary-split
/// arrival path and bounded conservative windows.
struct RackFabric {
  static constexpr std::size_t kRacks = 4;
  static constexpr std::size_t kHostsPerRack = 2;
  static constexpr std::size_t kHosts = kRacks * kHostsPerRack;
  static constexpr std::size_t kStreams = kHosts / 2;  // i -> i + kHosts/2

  sim::ShardedEngine se;
  fabric::RackConfig rack;
  fabric::Network net;
  nic::NicRegistry reg;
  std::vector<std::unique_ptr<nic::Nic>> nics;
  std::vector<std::vector<std::byte>> bufs;

  explicit RackFabric(std::size_t shards)
      : se(shards), net([this](fabric::NodeId n) -> sim::Engine& {
          return se.shard(shard_of(n));
        }) {
    rack.racks = kRacks;
    rack.hosts_per_rack = kHostsPerRack;
    for (std::size_t n = 0; n < kHosts; ++n) {
      net.add_node(static_cast<fabric::NodeId>(n),
                   sim::Bandwidth::gbit_per_sec(200.0), sim::ns(150));
    }
    fabric::build_rack(net, rack);
    se.set_lookahead(net.cross_lookahead_matrix(
        [this](fabric::NodeId n) { return shard_of(n); }, shards));
    for (std::size_t n = 0; n < kHosts; ++n) {
      nics.push_back(std::make_unique<nic::Nic>(
          se.shard(shard_of(static_cast<fabric::NodeId>(n))), net, reg,
          static_cast<nic::NodeId>(n), nic::NicConfig{}));
    }
    bufs.resize(kHosts);
    for (std::size_t k = 0; k < kStreams; ++k) connect_stream(k);
  }

  /// Rack-aligned block partition: rack r on shard r * shards / kRacks;
  /// each ToR rides its rack's shard, the spine shard 0 (it drives no hop
  /// resource either way).
  std::size_t shard_of(fabric::NodeId n) const {
    if (n < kHosts) return rack.rack_of(n) * se.shard_count() / kRacks;
    if (n < kHosts + kRacks) return (n - kHosts) * se.shard_count() / kRacks;
    return 0;  // spine
  }

  void connect_stream(std::size_t k) {
    const auto an = static_cast<nic::NodeId>(k);
    const auto bn = static_cast<nic::NodeId>(k + kHosts / 2);
    nic::Nic& a = *nics[an];
    nic::Nic& b = *nics[bn];
    auto pda = a.alloc_pd();
    auto pdb = b.alloc_pd();
    auto* scqa = a.create_cq(1024);
    auto* rcqa = a.create_cq(1024);
    auto* scqb = b.create_cq(1024);
    auto* rcqb = b.create_cq(1024);
    auto* qpa = a.create_qp({nic::QpType::kRC, pda, scqa, rcqa, 1024, 1024, 0});
    auto* qpb = b.create_qp({nic::QpType::kRC, pdb, scqb, rcqb, 1024, 1024, 0});
    a.modify_qp(*qpa, nic::QpState::kInit);
    a.modify_qp(*qpa, nic::QpState::kRtr, {bn, qpb->qpn()});
    a.modify_qp(*qpa, nic::QpState::kRts);
    b.modify_qp(*qpb, nic::QpState::kInit);
    b.modify_qp(*qpb, nic::QpState::kRtr, {an, qpa->qpn()});
    b.modify_qp(*qpb, nic::QpState::kRts);
    bufs[an].assign(kMsgBytes, std::byte{0x5A});
    bufs[bn].assign(static_cast<std::size_t>(kMsgBytes) * kMsgsPerPair,
                    std::byte{0});
    const auto& mr_src = a.register_mr(pda, bufs[an].data(), bufs[an].size(), 0);
    const auto& mr_dst = b.register_mr(pdb, bufs[bn].data(), bufs[bn].size(),
                                       nic::kAccessLocalWrite);
    for (int i = 0; i < kMsgsPerPair; ++i) {
      b.post_recv(*qpb, {std::uint64_t(i),
                         {uptr(bufs[bn].data()) + std::size_t(i) * kMsgBytes,
                          kMsgBytes, mr_dst.lkey}});
    }
    for (int i = 0; i < kMsgsPerPair; ++i) {
      a.post_send(*qpa, nic::SendWr{.wr_id = std::uint64_t(i),
                                    .sge = {uptr(bufs[an].data()), kMsgBytes,
                                            mr_src.lkey}});
    }
  }
};

void BM_ShardScalingRack(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    RackFabric f(shards);
    f.se.run();
    events += f.se.events_processed();
    windows += f.se.stats().windows;
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;
  state.counters["events_per_sec"] =
      wall.count() > 0 ? static_cast<double>(events) / wall.count() : 0.0;
  state.counters["windows"] = static_cast<double>(windows);
  state.counters["hw_threads"] = static_cast<double>(
      std::max(1u, std::thread::hardware_concurrency()));
}
BENCHMARK(BM_ShardScalingRack)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
