// Shard-scaling benchmark matrix: three fabrics x 1/2/4/8 engine shards x
// {conservative, speculative} synchronization.
//
//   BM_ShardScaling      — link-partitioned independent node pairs, RC
//                          sends within each pair. Pair-aligned partition,
//                          no cross-shard links, one unbounded window: the
//                          embarrassingly-parallel best case that bounds
//                          what sharding can ever buy on a NIC workload.
//   BM_ShardScalingRack  — routed 8-rack x 2-host leaf-spine fabric with
//                          every stream crossing the spine: multi-hop
//                          reservations, boundary-split arrivals, bounded
//                          conservative windows.
//   BM_ShardScalingTight — a pure sim-level replayable workload with
//                          deliberately tight lookahead (events every
//                          250 ps, 1000 ps windows): the conservative
//                          protocol pays a barrier round per 4 events and
//                          the barriers dominate wall-clock. This is the
//                          fabric the speculative mode exists for — the
//                          bench_gate speedup floor (speculative >= 1.3x
//                          conservative at 4 shards) runs here.
//
// The NIC fabrics never mark callbacks replayable, so their speculative
// configs execute the exact conservative schedule and measure the
// optimistic protocol's overhead on fence workloads; the tight fabric is
// fully replayable and measures its payoff.
//
// Honesty note: core-count speedup requires hardware parallelism. The
// benchmark reports std::thread::hardware_concurrency() as a counter; on
// a 1-core host the multi-shard configs measure protocol + thread
// overhead — which is exactly why the speculative win on the tight fabric
// is meaningful there: it comes from ~depth-times fewer barrier rounds,
// not from extra cores.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "fabric/link.hpp"
#include "fabric/topology.hpp"
#include "nic/nic.hpp"
#include "sim/sharded.hpp"

namespace {

using namespace cord;

constexpr std::size_t kPairs = 8;
constexpr int kMsgsPerPair = 256;
constexpr std::uint32_t kMsgBytes = 64;

std::uintptr_t uptr(const void* p) { return reinterpret_cast<std::uintptr_t>(p); }

sim::SyncMode sync_of(const benchmark::State& state) {
  return state.range(1) != 0 ? sim::SyncMode::kSpeculative
                             : sim::SyncMode::kConservative;
}

/// kPairs back-to-back node pairs, pair k on shard k * shards / kPairs.
struct PairsFabric {
  sim::ShardedEngine se;
  fabric::Network net;
  nic::NicRegistry reg;
  std::vector<std::unique_ptr<nic::Nic>> nics;
  std::vector<nic::QueuePair*> qps;  // [2k] client, [2k+1] server
  std::vector<nic::CompletionQueue*> scqs, rcqs;
  std::vector<std::vector<std::byte>> bufs;

  PairsFabric(std::size_t shards, sim::SyncMode sync)
      : se(shards), net([this](fabric::NodeId n) -> sim::Engine& {
          return se.shard(shard_of(n));
        }) {
    for (std::size_t n = 0; n < 2 * kPairs; ++n) {
      net.add_node(static_cast<fabric::NodeId>(n),
                   sim::Bandwidth::gbit_per_sec(200.0), sim::ns(150));
    }
    for (std::size_t k = 0; k < kPairs; ++k) {
      net.connect(static_cast<fabric::NodeId>(2 * k),
                  static_cast<fabric::NodeId>(2 * k + 1),
                  sim::Bandwidth::gbit_per_sec(100.0), sim::ns(150));
    }
    // Pair-aligned partition: no cross-shard links, unbounded lookahead.
    se.set_lookahead(net.min_cross_lookahead(
        [this](fabric::NodeId n) { return shard_of(n); }));
    se.set_sync(sync);
    for (std::size_t n = 0; n < 2 * kPairs; ++n) {
      nics.push_back(std::make_unique<nic::Nic>(
          se.shard(shard_of(static_cast<fabric::NodeId>(n))), net, reg,
          static_cast<nic::NodeId>(n), nic::NicConfig{}));
    }
    bufs.resize(2 * kPairs);
    for (std::size_t k = 0; k < kPairs; ++k) connect_pair(k);
  }

  std::size_t shard_of(fabric::NodeId n) const {
    return (n / 2) * se.shard_count() / kPairs;
  }

  void connect_pair(std::size_t k) {
    nic::Nic& a = *nics[2 * k];
    nic::Nic& b = *nics[2 * k + 1];
    auto pda = a.alloc_pd();
    auto pdb = b.alloc_pd();
    auto* scqa = a.create_cq(1024);
    auto* rcqa = a.create_cq(1024);
    auto* scqb = b.create_cq(1024);
    auto* rcqb = b.create_cq(1024);
    auto* qpa = a.create_qp({nic::QpType::kRC, pda, scqa, rcqa, 1024, 1024, 0});
    auto* qpb = b.create_qp({nic::QpType::kRC, pdb, scqb, rcqb, 1024, 1024, 0});
    a.modify_qp(*qpa, nic::QpState::kInit);
    a.modify_qp(*qpa, nic::QpState::kRtr,
                {static_cast<nic::NodeId>(2 * k + 1), qpb->qpn()});
    a.modify_qp(*qpa, nic::QpState::kRts);
    b.modify_qp(*qpb, nic::QpState::kInit);
    b.modify_qp(*qpb, nic::QpState::kRtr,
                {static_cast<nic::NodeId>(2 * k), qpa->qpn()});
    b.modify_qp(*qpb, nic::QpState::kRts);
    qps.push_back(qpa);
    qps.push_back(qpb);
    scqs.push_back(scqa);
    scqs.push_back(scqb);
    rcqs.push_back(rcqa);
    rcqs.push_back(rcqb);
    bufs[2 * k].assign(kMsgBytes, std::byte{0x5A});
    bufs[2 * k + 1].assign(static_cast<std::size_t>(kMsgBytes) * kMsgsPerPair,
                           std::byte{0});
    const auto& mr_src = a.register_mr(pda, bufs[2 * k].data(),
                                       bufs[2 * k].size(), 0);
    const auto& mr_dst =
        b.register_mr(pdb, bufs[2 * k + 1].data(), bufs[2 * k + 1].size(),
                      nic::kAccessLocalWrite);
    for (int i = 0; i < kMsgsPerPair; ++i) {
      b.post_recv(*qpb,
                  {std::uint64_t(i),
                   {uptr(bufs[2 * k + 1].data()) + std::size_t(i) * kMsgBytes,
                    kMsgBytes, mr_dst.lkey}});
    }
    for (int i = 0; i < kMsgsPerPair; ++i) {
      a.post_send(*qpa,
                  nic::SendWr{.wr_id = std::uint64_t(i),
                              .sge = {uptr(bufs[2 * k].data()), kMsgBytes,
                                      mr_src.lkey}});
    }
  }
};

void BM_ShardScaling(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  std::uint64_t events = 0;
  // Rate over wall time, measured here: the library's kIsRate divides by
  // the *main thread's* CPU time, which excludes shard workers and would
  // fake a speedup whenever the coordinator sleeps at the barrier.
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    PairsFabric f(shards, sync_of(state));
    f.se.run();
    events += f.se.events_processed();
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;
  state.counters["events_per_sec"] =
      wall.count() > 0 ? static_cast<double>(events) / wall.count() : 0.0;
  state.counters["hw_threads"] = static_cast<double>(
      std::max(1u, std::thread::hardware_concurrency()));
}
BENCHMARK(BM_ShardScaling)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->ArgNames({"shards", "spec"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// The routed counterpart: an 8-rack x 2-host leaf-spine fabric with every
/// stream crossing the spine (client in racks 0-3, server in racks 4-7),
/// rack-aligned block partition, per-pair lookahead matrix. Unlike the
/// pair fabric this exercises multi-hop reservations, the boundary-split
/// arrival path and bounded conservative windows.
struct RackFabric {
  static constexpr std::size_t kRacks = 8;
  static constexpr std::size_t kHostsPerRack = 2;
  static constexpr std::size_t kHosts = kRacks * kHostsPerRack;
  static constexpr std::size_t kStreams = kHosts / 2;  // i -> i + kHosts/2

  sim::ShardedEngine se;
  fabric::RackConfig rack;
  fabric::Network net;
  nic::NicRegistry reg;
  std::vector<std::unique_ptr<nic::Nic>> nics;
  std::vector<std::vector<std::byte>> bufs;

  RackFabric(std::size_t shards, sim::SyncMode sync)
      : se(shards), net([this](fabric::NodeId n) -> sim::Engine& {
          return se.shard(shard_of(n));
        }) {
    rack.racks = kRacks;
    rack.hosts_per_rack = kHostsPerRack;
    for (std::size_t n = 0; n < kHosts; ++n) {
      net.add_node(static_cast<fabric::NodeId>(n),
                   sim::Bandwidth::gbit_per_sec(200.0), sim::ns(150));
    }
    fabric::build_rack(net, rack);
    se.set_lookahead(net.cross_lookahead_matrix(
        [this](fabric::NodeId n) { return shard_of(n); }, shards));
    se.set_sync(sync);
    for (std::size_t n = 0; n < kHosts; ++n) {
      nics.push_back(std::make_unique<nic::Nic>(
          se.shard(shard_of(static_cast<fabric::NodeId>(n))), net, reg,
          static_cast<nic::NodeId>(n), nic::NicConfig{}));
    }
    bufs.resize(kHosts);
    for (std::size_t k = 0; k < kStreams; ++k) connect_stream(k);
  }

  /// Rack-aligned block partition: rack r on shard r * shards / kRacks;
  /// each ToR rides its rack's shard, the spine shard 0 (it drives no hop
  /// resource either way).
  std::size_t shard_of(fabric::NodeId n) const {
    if (n < kHosts) return rack.rack_of(n) * se.shard_count() / kRacks;
    if (n < kHosts + kRacks) return (n - kHosts) * se.shard_count() / kRacks;
    return 0;  // spine
  }

  void connect_stream(std::size_t k) {
    const auto an = static_cast<nic::NodeId>(k);
    const auto bn = static_cast<nic::NodeId>(k + kHosts / 2);
    nic::Nic& a = *nics[an];
    nic::Nic& b = *nics[bn];
    auto pda = a.alloc_pd();
    auto pdb = b.alloc_pd();
    auto* scqa = a.create_cq(1024);
    auto* rcqa = a.create_cq(1024);
    auto* scqb = b.create_cq(1024);
    auto* rcqb = b.create_cq(1024);
    auto* qpa = a.create_qp({nic::QpType::kRC, pda, scqa, rcqa, 1024, 1024, 0});
    auto* qpb = b.create_qp({nic::QpType::kRC, pdb, scqb, rcqb, 1024, 1024, 0});
    a.modify_qp(*qpa, nic::QpState::kInit);
    a.modify_qp(*qpa, nic::QpState::kRtr, {bn, qpb->qpn()});
    a.modify_qp(*qpa, nic::QpState::kRts);
    b.modify_qp(*qpb, nic::QpState::kInit);
    b.modify_qp(*qpb, nic::QpState::kRtr, {an, qpa->qpn()});
    b.modify_qp(*qpb, nic::QpState::kRts);
    bufs[an].assign(kMsgBytes, std::byte{0x5A});
    bufs[bn].assign(static_cast<std::size_t>(kMsgBytes) * kMsgsPerPair,
                    std::byte{0});
    const auto& mr_src = a.register_mr(pda, bufs[an].data(), bufs[an].size(), 0);
    const auto& mr_dst = b.register_mr(pdb, bufs[bn].data(), bufs[bn].size(),
                                       nic::kAccessLocalWrite);
    for (int i = 0; i < kMsgsPerPair; ++i) {
      b.post_recv(*qpb, {std::uint64_t(i),
                         {uptr(bufs[bn].data()) + std::size_t(i) * kMsgBytes,
                          kMsgBytes, mr_dst.lkey}});
    }
    for (int i = 0; i < kMsgsPerPair; ++i) {
      a.post_send(*qpa, nic::SendWr{.wr_id = std::uint64_t(i),
                                    .sge = {uptr(bufs[an].data()), kMsgBytes,
                                            mr_src.lkey}});
    }
  }
};

void BM_ShardScalingRack(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    RackFabric f(shards, sync_of(state));
    f.se.run();
    events += f.se.events_processed();
    windows += f.se.stats().windows;
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;
  state.counters["events_per_sec"] =
      wall.count() > 0 ? static_cast<double>(events) / wall.count() : 0.0;
  state.counters["windows"] = static_cast<double>(windows);
  state.counters["hw_threads"] = static_cast<double>(
      std::max(1u, std::thread::hardware_concurrency()));
}
BENCHMARK(BM_ShardScalingRack)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->ArgNames({"shards", "spec"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// --- Tight-lookahead fabric --------------------------------------------------

constexpr sim::Time kTightLookahead = 1000;  // ps: 4 events per window
constexpr sim::Time kTightGap = 250;         // ps between chain events
constexpr int kTightChain = 4096;            // events per shard
constexpr int kTightPostEvery = 64;          // cross-shard post cadence

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// One fully replayable self-rescheduling chain per shard, events every
/// kTightGap ps under a kTightLookahead ps all-pairs lookahead, with a
/// sparse ring of cross-shard posts. Conservative sync executes 4 events
/// per barrier round; speculative sync at the default depth journals ~8
/// windows ahead and needs ~depth-times fewer rounds for the same event
/// stream — pure barrier elision, no extra cores required.
struct TightModel {
  sim::ShardedEngine se;
  std::vector<std::uint64_t> acc;

  TightModel(std::size_t shards, sim::SyncMode sync)
      : se(shards), acc(shards, 0) {
    se.set_lookahead(kTightLookahead);
    se.set_sync(sync);
    for (std::size_t s = 0; s < shards; ++s) schedule(s, 0, kTightGap);
  }

  void schedule(std::size_t s, int k, sim::Time t) {
    se.shard(s).call_at_replayable(t, [this, s, k, t] { step(s, k, t); });
  }

  void step(std::size_t s, int k, sim::Time t) {
    sim::Engine& e = se.shard(s);
    e.spec_store(acc[s], acc[s] + mix((std::uint64_t(s) << 32) |
                                      static_cast<std::uint64_t>(k)));
    if (k % kTightPostEvery == kTightPostEvery - 1 && se.shard_count() > 1) {
      // Posted with slack above the declared lookahead: realistic (a
      // model may send later than the link's minimum) and it keeps the
      // ring from landing inside the destination's speculation horizon
      // on every single post.
      const std::size_t dst = (s + 1) % se.shard_count();
      const std::uint64_t v = mix(static_cast<std::uint64_t>(t));
      e.cross_post_replayable(se.shard(dst), t + 8 * kTightLookahead,
                              [this, dst, v] {
                                sim::Engine& d = se.shard(dst);
                                d.spec_store(acc[dst], acc[dst] + v);
                              });
    }
    if (k + 1 < kTightChain) schedule(s, k + 1, t + kTightGap);
  }
};

void BM_ShardScalingTight(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t journaled = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    TightModel m(shards, sync_of(state));
    m.se.run();
    benchmark::DoNotOptimize(m.acc.data());
    events += m.se.events_processed();
    windows += m.se.stats().windows;
    rollbacks += m.se.stats().rollbacks;
    journaled += m.se.stats().journaled_effects;
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;
  state.counters["events_per_sec"] =
      wall.count() > 0 ? static_cast<double>(events) / wall.count() : 0.0;
  state.counters["windows"] = static_cast<double>(windows);
  state.counters["rollbacks"] = static_cast<double>(rollbacks);
  state.counters["journaled"] = static_cast<double>(journaled);
  state.counters["hw_threads"] = static_cast<double>(
      std::max(1u, std::thread::hardware_concurrency()));
}
BENCHMARK(BM_ShardScalingTight)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->ArgNames({"shards", "spec"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
