// Ablation: amortizing the kernel crossing with batched submission rings.
//
// CoRD pays one syscall (plus KPTI trampoline on hardened hosts) per
// data-plane verb. An io_uring-style submission ring gathers back-to-back
// posts and flushes them in ONE crossing, so the per-op share of the trap
// cost falls as 1/batch while per-WR driver work stays put. This sweep
// quantifies the recovery toward the bypass floor across tx-batch and
// tx-depth on both calibrated systems — on system A the KPTI+jitter
// crossing is ~3x dearer, so batching recovers proportionally more.
#include <cstdio>

#include "bench_util.hpp"
#include "perftest/perftest.hpp"

namespace {

using namespace cord;
using namespace cord::bench;
using namespace cord::perftest;
using verbs::DataplaneMode;

Params make(std::uint32_t depth, std::uint32_t batch, DataplaneMode mode) {
  Params p;
  p.op = TestOp::kWrite;  // one-sided: all CPU on the posting client
  p.msg_size = 64;
  p.iterations = 2000;
  p.tx_depth = depth;
  p.tx_batch = batch;
  p.client = verbs::ContextOptions{.mode = mode};
  p.server = p.client;
  return p;
}

void sweep(const char* label, const core::SystemConfig& cfg) {
  std::printf("--- %s ---\n", label);
  Table t({"tx_depth", "batch", "CoRD Mmsg/s", "ns/op", "x batch=1",
           "of bypass"});
  for (std::uint32_t depth : {16u, 64u, 256u}) {
    const auto bypass =
        run_bandwidth(cfg, make(depth, 1, DataplaneMode::kBypass));
    const double bypass_ns =
        sim::to_ns(bypass.elapsed) / static_cast<double>(bypass.messages);
    double base_ns = 0.0;
    for (std::uint32_t batch : {1u, 2u, 4u, 16u, 64u}) {
      const auto r = run_bandwidth(cfg, make(depth, batch, DataplaneMode::kCord));
      const double ns =
          sim::to_ns(r.elapsed) / static_cast<double>(r.messages);
      if (batch == 1) base_ns = ns;
      t.add_row({std::to_string(depth), std::to_string(batch),
                 fmt("%.3f", r.mmsg_per_sec), fmt("%.1f", ns),
                 fmt("%.2fx", base_ns / ns), fmt("%.0f%%", 100.0 * bypass_ns / ns)});
    }
    t.add_row({std::to_string(depth), "bypass", fmt("%.3f", bypass.mmsg_per_sec),
               fmt("%.1f", bypass_ns), "-", "100%"});
  }
  t.print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Ablation: batched syscall submission (64B writes) ===\n\n");
  sweep("system L (no KPTI)", core::system_l());
  sweep("system A (KPTI + syscall jitter)", core::system_a());
  std::printf(
      "The crossing cost is the whole CoRD small-message story: batching\n"
      "divides it by the ring depth, converging on the bypass floor plus\n"
      "the per-WR kernel driver work. Depth beyond the pipeline's tx_depth\n"
      "buys nothing — the poll that harvests completions flushes the ring.\n");
  return 0;
}
