// Massive-tenancy gate numbers: the qps connection-scale sweep (the
// exclusive-mode ICM latency cliff and shared-mode boundedness) and the
// noisy-neighbor victim-tail comparison (bypass vs CoRD + policy chain).
//
// Unlike the google-benchmark binaries these numbers are *simulated*
// results — exact, deterministic virtual-time quantities, independent of
// host noise — so cmake/bench_gate.cmake holds them to tight floors
// rather than a regression tolerance. Output is a flat JSON object
// (argv[1], default BENCH_tenancy.json) consumed with string(JSON).
#include <cstdio>
#include <string>

#include "perftest/tenancy.hpp"

namespace {

using cord::perftest::NoisyParams;
using cord::perftest::NoisyResult;
using cord::perftest::ScaleParams;
using cord::perftest::ScaleResult;

ScaleResult scale_point(std::size_t connections, cord::os::ConnMode mode) {
  ScaleParams p;
  p.connections = connections;
  p.conn_mode = mode;
  p.shared_qp_pool = 64;
  p.icm_qp_capacity = 4096;
  p.icm_mr_capacity = 4096;
  p.ops = 20000;
  p.window = 16;
  return cord::perftest::run_conn_scale(cord::core::system_l(), p);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "BENCH_tenancy.json";

  // --- Connection-scale sweep: exclusive mode over the cliff ------------
  const ScaleResult e1k = scale_point(1024, cord::os::ConnMode::kExclusive);
  const ScaleResult e4k = scale_point(4096, cord::os::ConnMode::kExclusive);
  const ScaleResult e16k = scale_point(16384, cord::os::ConnMode::kExclusive);
  const double cliff_ratio = e16k.avg_us / e1k.avg_us;

  // --- Shared mode at a million logical connections ---------------------
  const ScaleResult s1m = scale_point(1000000, cord::os::ConnMode::kShared);

  // --- Noisy neighbor: bypass vs CoRD + isolation chain -----------------
  NoisyParams np;  // defaults: 4 victims, 768 attacker QPs, 512-entry caches
  const NoisyResult open = cord::perftest::run_noisy_neighbor(
      cord::core::system_l(), np);
  NoisyParams guarded_p = np;
  guarded_p.cord = true;
  guarded_p.policies = true;
  const NoisyResult guarded = cord::perftest::run_noisy_neighbor(
      cord::core::system_l(), guarded_p);
  const double tail_restore = open.victim_p99_us / guarded.victim_p99_us;

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_tenancy: cannot open %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"excl_1024_avg_us\": %.4f,\n", e1k.avg_us);
  std::fprintf(f, "  \"excl_4096_avg_us\": %.4f,\n", e4k.avg_us);
  std::fprintf(f, "  \"excl_16384_avg_us\": %.4f,\n", e16k.avg_us);
  std::fprintf(f, "  \"excl_16384_qp_misses\": %llu,\n",
               static_cast<unsigned long long>(e16k.icm_qp_misses));
  std::fprintf(f, "  \"excl_1024_qp_misses\": %llu,\n",
               static_cast<unsigned long long>(e1k.icm_qp_misses));
  std::fprintf(f, "  \"cliff_ratio\": %.4f,\n", cliff_ratio);
  std::fprintf(f, "  \"shared_1m_avg_us\": %.4f,\n", s1m.avg_us);
  std::fprintf(f, "  \"shared_1m_physical_qps\": %llu,\n",
               static_cast<unsigned long long>(s1m.physical_qps));
  std::fprintf(f, "  \"shared_1m_conn_table_bytes\": %llu,\n",
               static_cast<unsigned long long>(s1m.conn_table_bytes));
  std::fprintf(f, "  \"shared_1m_qp_misses\": %llu,\n",
               static_cast<unsigned long long>(s1m.icm_qp_misses));
  std::fprintf(f, "  \"noisy_bypass_victim_p99_us\": %.4f,\n",
               open.victim_p99_us);
  std::fprintf(f, "  \"noisy_bypass_victim_p50_us\": %.4f,\n",
               open.victim_p50_us);
  std::fprintf(f, "  \"noisy_cord_victim_p99_us\": %.4f,\n",
               guarded.victim_p99_us);
  std::fprintf(f, "  \"noisy_cord_victim_p50_us\": %.4f,\n",
               guarded.victim_p50_us);
  std::fprintf(f, "  \"victim_tail_restore\": %.4f,\n", tail_restore);
  std::fprintf(f, "  \"noisy_bypass_attacker_ops\": %llu,\n",
               static_cast<unsigned long long>(open.attacker_ops));
  std::fprintf(f, "  \"noisy_cord_attacker_ops\": %llu,\n",
               static_cast<unsigned long long>(guarded.attacker_ops));
  std::fprintf(f, "  \"noisy_cord_attacker_denied\": %llu,\n",
               static_cast<unsigned long long>(guarded.attacker_denied));
  std::fprintf(f, "  \"noisy_cord_attacker_reg_denied\": %llu\n",
               static_cast<unsigned long long>(guarded.attacker_reg_denied));
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf("bench_tenancy: cliff %.2fx (%.2f -> %.2f us), "
              "shared@1M %zu QPs / %zu B, tail restore %.2fx "
              "(p99 %.2f -> %.2f us)\n",
              cliff_ratio, e1k.avg_us, e16k.avg_us, s1m.physical_qps,
              s1m.conn_table_bytes, tail_restore, open.victim_p99_us,
              guarded.victim_p99_us);
  return 0;
}
