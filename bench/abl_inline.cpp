// Ablation: inline-send support in the CoRD kernel path.
//
// §5 attributes system A's bimodal small-message overhead to the CoRD
// prototype lacking inline support while the bypass baseline uses it.
// This bench isolates exactly that knob on both systems.
#include <cstdio>

#include "bench_util.hpp"
#include "perftest/perftest.hpp"

namespace {

using namespace cord;
using namespace cord::bench;
using namespace cord::perftest;
using verbs::DataplaneMode;

double cord_overhead_us(const core::SystemConfig& cfg, std::size_t size,
                        bool inline_support) {
  Params p;
  p.op = TestOp::kSend;
  p.msg_size = size;
  p.iterations = 300;
  p.client = verbs::ContextOptions{.mode = DataplaneMode::kCord,
                                   .cord_inline_support = inline_support};
  p.server = p.client;
  Params bp = p;
  bp.client = verbs::ContextOptions{.mode = DataplaneMode::kBypass};
  bp.server = bp.client;
  return run_latency(cfg, p).avg_us - run_latency(cfg, bp).avg_us;
}

void sweep(const core::SystemConfig& cfg) {
  std::printf("\n--- system %s (device max_inline = %u B) ---\n",
              cfg.name.c_str(), cfg.nic.max_inline);
  Table t({"size", "overhead, inline us", "overhead, no-inline us", "gap us"});
  for (std::size_t size : {16u, 64u, 128u, 220u, 512u, 1024u, 4096u, 16384u}) {
    const double with_inline = cord_overhead_us(cfg, size, true);
    const double without = cord_overhead_us(cfg, size, false);
    t.add_row({size_label(size), fmt("%.3f", with_inline), fmt("%.3f", without),
               fmt("%.3f", without - with_inline)});
  }
  t.print();
}

}  // namespace

int main() {
  std::printf("=== Ablation: CoRD inline-send support ===\n");
  sweep(core::system_l());
  sweep(core::system_a());
  std::printf(
      "\nThe gap exists only below the device inline threshold: without\n"
      "inline the kernel path posts a DMA'd WQE and small sends pay the\n"
      "payload-fetch latency — the second 'mode' of Fig. 5a.\n");
  return 0;
}
