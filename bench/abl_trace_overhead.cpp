// Ablation: what does cord::trace cost?
//
// The tracing contract is "branch-cheap when disabled": every trace point
// is one predicted null-pointer check, and the engine hot loop contains
// no trace code at all. This bench quantifies that claim:
//
//   * ScheduleDispatch_NoTracer vs ScheduleDispatch_TracerIdle — the
//     engine's schedule/dispatch hot path with no Tracer object vs with a
//     Tracer constructed but disabled. These must be indistinguishable
//     (the engine only carries a never-read null pointer).
//   * ScheduleDispatch_CausalIdle — the same path with the full causal
//     analysis layer instantiated and its watchdog armed, tracing still
//     disabled. The causal layer is pull-based (it only reads the trace
//     buffer when a report is requested), so this too must be
//     indistinguishable from NoTracer.
//   * SendPath_TracingOff vs SendPath_TracingOn — a full RC send through
//     the NIC model with trace points compiled in but disarmed, vs armed
//     and recording ~10 records per message.
//   * Component costs: raw record append, retained-counter increment,
//     log-histogram insert.
//
// The bench gate (cmake/bench_gate.cmake) runs this binary and fails if
// the disabled-tracing engine path regresses against the no-tracer path.
#include <benchmark/benchmark.h>

#include <vector>

#include "nic/nic.hpp"
#include "sim/engine.hpp"
#include "trace/causal/aggregate.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace {

using namespace cord;

void BM_ScheduleDispatch_NoTracer(benchmark::State& state) {
  sim::Engine engine;
  std::uint64_t fired = 0;
  for (auto _ : state) {
    engine.call_in(sim::ns(10), [&] { ++fired; });
    engine.run();
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_ScheduleDispatch_NoTracer);

void BM_ScheduleDispatch_TracerIdle(benchmark::State& state) {
  sim::Engine engine;
  trace::Tracer tracer(engine);  // constructed, never enabled
  std::uint64_t fired = 0;
  for (auto _ : state) {
    engine.call_in(sim::ns(10), [&] { ++fired; });
    engine.run();
  }
  benchmark::DoNotOptimize(fired);
  benchmark::DoNotOptimize(tracer.size());
}
BENCHMARK(BM_ScheduleDispatch_TracerIdle);

void BM_ScheduleDispatch_CausalIdle(benchmark::State& state) {
  sim::Engine engine;
  trace::Tracer tracer(engine);  // constructed, never enabled
  trace::causal::Aggregator causal;
  causal.set_default_slo({99.0, sim::us(1)});  // watchdog armed, never fed
  std::uint64_t fired = 0;
  for (auto _ : state) {
    engine.call_in(sim::ns(10), [&] { ++fired; });
    engine.run();
  }
  benchmark::DoNotOptimize(fired);
  benchmark::DoNotOptimize(tracer.size());
  benchmark::DoNotOptimize(causal.spans());
}
BENCHMARK(BM_ScheduleDispatch_CausalIdle);

/// One inline RC send end-to-end through the NIC model (mirrors
/// micro_sim's BM_NicEndToEndMessage so numbers are comparable).
struct SendFixture {
  sim::Engine engine;
  fabric::Network net{engine};
  nic::NicRegistry reg;
  nic::Nic n0{engine, net, reg, 0, {}};
  nic::Nic n1{engine, net, reg, 1, {}};
  nic::QueuePair* qp0 = nullptr;
  nic::QueuePair* qp1 = nullptr;
  nic::CompletionQueue* cq0 = nullptr;
  nic::CompletionQueue* cq1 = nullptr;
  std::vector<std::byte> src = std::vector<std::byte>(64);
  std::vector<std::byte> dst = std::vector<std::byte>(4096);
  const nic::MemoryRegion* rmr = nullptr;

  SendFixture() {
    net.add_node(0, sim::Bandwidth::gbit_per_sec(200.0), sim::ns(150));
    net.add_node(1, sim::Bandwidth::gbit_per_sec(200.0), sim::ns(150));
    net.connect(0, 1, sim::Bandwidth::gbit_per_sec(100.0), sim::ns(150));
    auto pd0 = n0.alloc_pd();
    auto pd1 = n1.alloc_pd();
    cq0 = n0.create_cq(1u << 20);
    cq1 = n1.create_cq(1u << 20);
    qp0 = n0.create_qp({nic::QpType::kRC, pd0, cq0, cq0, 1u << 16, 1u << 16, 220});
    qp1 = n1.create_qp({nic::QpType::kRC, pd1, cq1, cq1, 1u << 16, 1u << 16, 220});
    n0.modify_qp(*qp0, nic::QpState::kInit);
    n0.modify_qp(*qp0, nic::QpState::kRtr, {1, qp1->qpn()});
    n0.modify_qp(*qp0, nic::QpState::kRts);
    n1.modify_qp(*qp1, nic::QpState::kInit);
    n1.modify_qp(*qp1, nic::QpState::kRtr, {0, qp0->qpn()});
    n1.modify_qp(*qp1, nic::QpState::kRts);
    rmr = &n1.register_mr(pd1, dst.data(), dst.size(), nic::kAccessLocalWrite);
  }

  void one_message(std::vector<nic::Cqe>& wc) {
    n1.post_recv(*qp1, {1, {reinterpret_cast<std::uintptr_t>(dst.data()), 4096,
                            rmr->lkey}});
    n0.post_send(*qp0,
                 {.sge = {reinterpret_cast<std::uintptr_t>(src.data()), 64, 0},
                  .inline_data = true});
    engine.run();
    while (cq0->poll(wc) > 0) {
    }
    while (cq1->poll(wc) > 0) {
    }
  }
};

void BM_SendPath_TracingOff(benchmark::State& state) {
  SendFixture f;
  trace::Tracer tracer(f.engine);  // trace points see a null engine tracer
  std::vector<nic::Cqe> wc(16);
  for (auto _ : state) f.one_message(wc);
  state.SetLabel("trace points disarmed");
  benchmark::DoNotOptimize(tracer.size());
}
BENCHMARK(BM_SendPath_TracingOff);

void BM_SendPath_TracingOn(benchmark::State& state) {
  SendFixture f;
  trace::Tracer tracer(f.engine);
  tracer.set_enabled(true);
  std::vector<nic::Cqe> wc(16);
  std::uint64_t records = 0;
  for (auto _ : state) {
    f.one_message(wc);
    records += tracer.size();
    tracer.clear();  // keep the buffer from saturating mid-bench
  }
  state.SetLabel("trace points armed");
  benchmark::DoNotOptimize(records);
}
BENCHMARK(BM_SendPath_TracingOn);

void BM_TracerRecordAppend(benchmark::State& state) {
  sim::Engine engine;
  trace::Tracer tracer(engine, /*max_records=*/1u << 22);
  std::uint32_t span = 0;
  for (auto _ : state) {
    tracer.record(trace::Point::kWqePost, ++span, 0x100, 7, 0, 4096);
    if (tracer.size() == tracer.capacity()) tracer.clear();
  }
  benchmark::DoNotOptimize(tracer.dropped());
}
BENCHMARK(BM_TracerRecordAppend);

void BM_MetricsCounterAdd(benchmark::State& state) {
  trace::MetricsRegistry registry;
  trace::Counter& c = registry.counter("kernel.tenant.tx_bytes", 7);
  for (auto _ : state) {
    c.add(4096);
  }
  benchmark::DoNotOptimize(c.value);
}
BENCHMARK(BM_MetricsCounterAdd);

void BM_LogHistogramAdd(benchmark::State& state) {
  sim::LogHistogram h;
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.add(v);
    v = v * 2862933555777941757ull + 3037000493ull;  // cheap LCG spread
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_LogHistogramAdd);

}  // namespace

BENCHMARK_MAIN();
