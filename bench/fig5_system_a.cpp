// Figure 5 — Latency overhead and relative throughput on system A (the
// virtualized Azure HB120 testbed) across transports and operations.
//
// Expected shape (paper §5): overall per-message overhead is larger and
// noisier than on system L, and the latency overhead is *bimodal* — small
// (<= 1 KiB) messages pay more because the CoRD prototype lacks inline
// support while the bypass baseline uses inline; bandwidth reduction
// becomes negligible from a certain message size, earlier than on system
// L relative to its wire rate.
#include <cstdio>

#include "bench_util.hpp"
#include "perftest/perftest.hpp"

namespace {

using namespace cord;
using namespace cord::bench;
using namespace cord::perftest;
using verbs::DataplaneMode;

Params make(const core::SystemConfig& cfg, TestOp op, Transport tr,
            std::size_t size, DataplaneMode mode) {
  Params p;
  p.op = op;
  p.transport = tr;
  p.msg_size = size;
  p.client = verbs::ContextOptions{.mode = mode,
                                   .cord_inline_support = cfg.cord_inline_support};
  p.server = verbs::ContextOptions{.mode = mode,
                                   .cord_inline_support = cfg.cord_inline_support};
  return p;
}

}  // namespace

int main() {
  const auto cfg = core::system_a();
  const std::size_t sizes[] = {64, 256, 1024, 4096, 16384, 65536, 1048576};

  std::printf("=== Figure 5a: CoRD latency overhead (us), system A ===\n");
  Table lat({"op", "size", "BP us", "CD us", "overhead us", "CD stddev us"});
  struct OpRow {
    const char* name;
    TestOp op;
    Transport tr;
  };
  const OpRow ops[] = {{"RC Send", TestOp::kSend, Transport::kRC},
                       {"RC Write", TestOp::kWrite, Transport::kRC},
                       {"RC Read", TestOp::kRead, Transport::kRC},
                       {"UD Send", TestOp::kSend, Transport::kUD}};
  for (const OpRow& o : ops) {
    for (std::size_t size : sizes) {
      if (o.tr == Transport::kUD && size > 4096) continue;
      Params pb = make(cfg, o.op, o.tr, size, DataplaneMode::kBypass);
      pb.iterations = size >= (1u << 20) ? 40 : 200;
      Params pc = make(cfg, o.op, o.tr, size, DataplaneMode::kCord);
      pc.iterations = pb.iterations;
      auto rb = run_latency(cfg, pb);
      auto rc = run_latency(cfg, pc);
      warn_clamped(rb.clamped_events + rc.clamped_events, "fig5a latency");
      lat.add_row({o.name, size_label(size), fmt("%.2f", rb.avg_us),
                   fmt("%.2f", rc.avg_us), fmt("+%.2f", rc.avg_us - rb.avg_us),
                   fmt("%.3f", rc.latency_us.stddev())});
    }
  }
  lat.print();

  std::printf("\n=== Figure 5b: CoRD relative throughput (%%), system A ===\n");
  Table bw({"op", "size", "bypass Gb/s", "cord/bypass %"});
  for (const OpRow& o : ops) {
    for (std::size_t size : sizes) {
      if (o.tr == Transport::kUD && size > 4096) continue;
      Params pb = make(cfg, o.op, o.tr, size, DataplaneMode::kBypass);
      pb.iterations = iters_for(size, 2500, 60);
      Params pc = make(cfg, o.op, o.tr, size, DataplaneMode::kCord);
      pc.iterations = pb.iterations;
      auto rb = run_bandwidth(cfg, pb);
      auto rc = run_bandwidth(cfg, pc);
      warn_clamped(rb.clamped_events + rc.clamped_events, "fig5b throughput");
      bw.add_row({o.name, size_label(size), fmt("%.3f", rb.gbps),
                  fmt("%.1f", 100.0 * rc.gbps / rb.gbps)});
    }
  }
  bw.print();

  std::printf(
      "\nPaper checkpoints: two overhead modes split at ~1 KiB (missing\n"
      "inline support in CoRD); higher variation than system L; bandwidth\n"
      "reduction becomes negligible beyond a certain message size.\n");
  return 0;
}
