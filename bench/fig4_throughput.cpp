// Figure 4 — CoRD's throughput on system L relative to bypass
// communication, over RC or UD using one-sided (Read/Write) or two-sided
// (Send) operations, with the bypass message rate overlaid (the right
// axis of the paper's plot).
//
// Expected shape: with larger messages bandwidth degradation becomes
// insignificant; behaviour is similar across operation types because the
// per-message overhead is similar. Paper checkpoint: 32 KiB sends run at
// ~370 k msg/s with only ~1 % degradation.
#include <cstdio>

#include "bench_util.hpp"
#include "perftest/perftest.hpp"

namespace {

using namespace cord;
using namespace cord::bench;
using namespace cord::perftest;
using verbs::DataplaneMode;

BandwidthResult bw(const core::SystemConfig& cfg, TestOp op, Transport tr,
                   std::size_t size, DataplaneMode mode) {
  Params p;
  p.op = op;
  p.transport = tr;
  p.msg_size = size;
  p.iterations = iters_for(size, 3000, 60);
  p.client = verbs::ContextOptions{.mode = mode,
                                   .cord_inline_support = cfg.cord_inline_support};
  p.server = verbs::ContextOptions{.mode = mode,
                                   .cord_inline_support = cfg.cord_inline_support};
  BandwidthResult r = run_bandwidth(cfg, p);
  warn_clamped(r.clamped_events, "fig4 throughput");
  return r;
}

void sweep(const core::SystemConfig& cfg, const char* name, TestOp op,
           Transport tr, const std::vector<std::size_t>& sizes) {
  std::printf("\n--- %s ---\n", name);
  Table t({"size", "bypass Gb/s", "cord Gb/s", "cord/bypass %", "bypass Mmsg/s"});
  for (std::size_t size : sizes) {
    const BandwidthResult b = bw(cfg, op, tr, size, DataplaneMode::kBypass);
    const BandwidthResult c = bw(cfg, op, tr, size, DataplaneMode::kCord);
    t.add_row({size_label(size), fmt("%.3f", b.gbps), fmt("%.3f", c.gbps),
               fmt("%.1f", 100.0 * c.gbps / b.gbps), fmt("%.3f", b.mmsg_per_sec)});
  }
  t.print();
}

}  // namespace

int main() {
  const auto cfg = core::system_l();
  std::printf("=== Figure 4: CoRD throughput relative to bypass, system L ===\n");
  const std::vector<std::size_t> rc_sizes = {64,   256,   1024,   4096, 16384,
                                             32768, 65536, 262144, 1048576,
                                             8388608};
  const std::vector<std::size_t> ud_sizes = {64, 256, 1024, 4096};
  sweep(cfg, "RC Send", TestOp::kSend, Transport::kRC, rc_sizes);
  sweep(cfg, "RC Write", TestOp::kWrite, Transport::kRC, rc_sizes);
  sweep(cfg, "RC Read", TestOp::kRead, Transport::kRC, rc_sizes);
  sweep(cfg, "UD Send (<= 4 KiB)", TestOp::kSend, Transport::kUD, ud_sizes);
  std::printf(
      "\nPaper checkpoints: ~370 k msg/s at 32 KiB sends with ~1%%\n"
      "degradation; degradation shrinks with message size; all operation\n"
      "types behave alike.\n");
  return 0;
}
