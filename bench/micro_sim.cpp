// google-benchmark microbenchmarks of the simulation engine's hot paths:
// event scheduling, coroutine spawn/await, resource reservations, and an
// end-to-end NIC message. These bound the real-time cost of every figure
// bench in this repository.
#include <benchmark/benchmark.h>

#include <functional>
#include <vector>

#include "core/system.hpp"
#include "nic/mr.hpp"
#include "nic/nic.hpp"
#include "nic/wr_pool.hpp"
#include "perftest/perftest.hpp"
#include "sim/engine.hpp"
#include "sim/inline_fn.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"

namespace {

using namespace cord;

void BM_EngineScheduleDispatch(benchmark::State& state) {
  sim::Engine engine;
  std::uint64_t fired = 0;
  for (auto _ : state) {
    engine.call_in(sim::ns(10), [&] { ++fired; });
    engine.run();
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EngineScheduleDispatch);

// Queue-backend A/B: fill the queue to `depth`, then drain, under the two
// timestamp distributions that matter:
//  * fifo — near-monotone arrival with 4-deep equal-timestamp bursts, the
//    NIC model's doorbell/per-chunk completion pattern (the calendar
//    queue's design target: O(1) amortized push/pop);
//  * wide — uniform random over a span of `depth` microseconds, the
//    adversarial spread that forces mid-bucket inserts and the calendar's
//    far-future overflow band.
// The bench_gate regression gate compares calendar vs heap on the fifo
// shape at every depth (cmake/bench_gate.cmake).
enum class Dist { kFifo, kWide };

void BM_EngineQueueDepth(benchmark::State& state, sim::QueueKind kind,
                         Dist dist) {
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  std::vector<sim::Time> ts(depth);
  sim::Rng rng(0xD5EED5EEDull);
  for (std::size_t i = 0; i < depth; ++i) {
    ts[i] = dist == Dist::kFifo
                ? sim::ns(static_cast<std::int64_t>(i / 4) * 12)
                : static_cast<sim::Time>(rng.next_u64() %
                                         (depth * 1'000'000ull));
  }
  for (auto _ : state) {
    sim::Engine engine(kind);
    std::uint64_t fired = 0;
    for (const sim::Time t : ts) {
      engine.call_at(t, [&fired] { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(depth));
}
// MinTime pinned above the harness default: the A/B ratio between the
// two backends is a committed baseline (BENCH_micro_sim.json) and a gate
// criterion, so these must average over enough iterations to flatten
// this host's frequency/cache noise.
BENCHMARK_CAPTURE(BM_EngineQueueDepth, heap_fifo, sim::QueueKind::kHeap,
                  Dist::kFifo)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->MinTime(1.0);
BENCHMARK_CAPTURE(BM_EngineQueueDepth, calendar_fifo,
                  sim::QueueKind::kCalendar, Dist::kFifo)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->MinTime(1.0);
BENCHMARK_CAPTURE(BM_EngineQueueDepth, heap_wide, sim::QueueKind::kHeap,
                  Dist::kWide)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->MinTime(1.0);
BENCHMARK_CAPTURE(BM_EngineQueueDepth, calendar_wide,
                  sim::QueueKind::kCalendar, Dist::kWide)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->MinTime(1.0);

// Ping-pong (push one, pop one) on the calendar backend — the pattern the
// heap's one-item cache absorbs; the calendar must stay competitive.
void BM_EngineScheduleDispatchCalendar(benchmark::State& state) {
  sim::Engine engine(sim::QueueKind::kCalendar);
  std::uint64_t fired = 0;
  for (auto _ : state) {
    engine.call_in(sim::ns(10), [&] { ++fired; });
    engine.run();
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EngineScheduleDispatchCalendar);

// --- Fast-path component benchmarks ------------------------------------

void BM_InlineFnAssignInvoke(benchmark::State& state) {
  sim::InlineFn fn;
  std::uint64_t acc = 0;
  for (auto _ : state) {
    fn.assign([&acc] { ++acc; });
    fn();
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_InlineFnAssignInvoke);

void BM_StdFunctionAssignInvoke(benchmark::State& state) {
  std::function<void()> fn;
  std::uint64_t acc = 0;
  for (auto _ : state) {
    fn = [&acc] { ++acc; };
    fn();
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_StdFunctionAssignInvoke);

void BM_MrTableCheckLocal(benchmark::State& state) {
  nic::MrTable table;
  static std::byte buf[1 << 16];
  const auto addr = reinterpret_cast<std::uintptr_t>(buf);
  std::vector<std::uint32_t> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back(
        table.register_mr(1, addr + 1024u * i, 1024, nic::kAccessLocalWrite).lkey);
  }
  std::size_t i = 0;
  const nic::MemoryRegion* mr = nullptr;
  for (auto _ : state) {
    const std::uint32_t k = keys[i];
    i = (i + 1) & 63;
    mr = table.check_local({addr + 1024u * static_cast<std::uint32_t>(i), 64, k},
                           1, false);
    benchmark::DoNotOptimize(mr);
  }
}
BENCHMARK(BM_MrTableCheckLocal);

void BM_NicFindQp(benchmark::State& state) {
  sim::Engine engine;
  fabric::Network net(engine);
  net.add_node(0, sim::Bandwidth::gbit_per_sec(200.0), sim::ns(150));
  nic::NicRegistry reg;
  nic::Nic n0(engine, net, reg, 0, {});
  auto pd = n0.alloc_pd();
  auto* cq = n0.create_cq(64);
  std::vector<std::uint32_t> qpns;
  for (int i = 0; i < 64; ++i) {
    qpns.push_back(
        n0.create_qp({nic::QpType::kRC, pd, cq, cq, 64, 64, 220})->qpn());
  }
  std::size_t i = 0;
  for (auto _ : state) {
    nic::QueuePair* qp = n0.find_qp(qpns[i]);
    i = (i + 1) & 63;
    benchmark::DoNotOptimize(qp);
  }
}
BENCHMARK(BM_NicFindQp);

void BM_WrPoolAcquireRelease(benchmark::State& state) {
  nic::WrPool pool;
  for (auto _ : state) {
    nic::WrRef ref = pool.acquire(nic::SendWr{});
    nic::WrRef alias = ref;  // the in-flight paths copy handles around
    benchmark::DoNotOptimize(alias);
  }
  benchmark::DoNotOptimize(pool.allocated());
}
BENCHMARK(BM_WrPoolAcquireRelease);

sim::Task<int> leaf(sim::Engine& e) {
  co_await e.delay(sim::ns(1));
  co_return 1;
}

void BM_TaskSpawnAwait(benchmark::State& state) {
  sim::Engine engine;
  for (auto _ : state) {
    int out = 0;
    engine.spawn([](sim::Engine& e, int& out) -> sim::Task<> {
      out = co_await leaf(e);
    }(engine, out));
    engine.run();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_TaskSpawnAwait);

void BM_ResourceReserve(benchmark::State& state) {
  sim::Engine engine;
  sim::Resource r(engine);
  sim::Time t = 0;
  for (auto _ : state) {
    t = r.reserve_at(t, sim::ns(5));
  }
  benchmark::DoNotOptimize(t);
}
BENCHMARK(BM_ResourceReserve);

void BM_NicEndToEndMessage(benchmark::State& state) {
  sim::Engine engine;
  fabric::Network net(engine);
  net.add_node(0, sim::Bandwidth::gbit_per_sec(200.0), sim::ns(150));
  net.add_node(1, sim::Bandwidth::gbit_per_sec(200.0), sim::ns(150));
  net.connect(0, 1, sim::Bandwidth::gbit_per_sec(100.0), sim::ns(150));
  nic::NicRegistry reg;
  nic::Nic n0(engine, net, reg, 0, {});
  nic::Nic n1(engine, net, reg, 1, {});
  auto pd0 = n0.alloc_pd();
  auto pd1 = n1.alloc_pd();
  auto* cq0 = n0.create_cq(1u << 20);
  auto* cq1 = n1.create_cq(1u << 20);
  auto* qp0 = n0.create_qp({nic::QpType::kRC, pd0, cq0, cq0, 1u << 16, 1u << 16, 220});
  auto* qp1 = n1.create_qp({nic::QpType::kRC, pd1, cq1, cq1, 1u << 16, 1u << 16, 220});
  n0.modify_qp(*qp0, nic::QpState::kInit);
  n0.modify_qp(*qp0, nic::QpState::kRtr, {1, qp1->qpn()});
  n0.modify_qp(*qp0, nic::QpState::kRts);
  n1.modify_qp(*qp1, nic::QpState::kInit);
  n1.modify_qp(*qp1, nic::QpState::kRtr, {0, qp0->qpn()});
  n1.modify_qp(*qp1, nic::QpState::kRts);
  std::vector<std::byte> src(64), dst(4096);
  const auto& rmr = n1.register_mr(pd1, dst.data(), dst.size(), nic::kAccessLocalWrite);
  std::vector<nic::Cqe> wc(16);
  for (auto _ : state) {
    n1.post_recv(*qp1, {1, {reinterpret_cast<std::uintptr_t>(dst.data()), 4096,
                            rmr.lkey}});
    n0.post_send(*qp0, {.sge = {reinterpret_cast<std::uintptr_t>(src.data()), 64, 0},
                        .inline_data = true});
    engine.run();
    while (cq0->poll(wc) > 0) {
    }
    while (cq1->poll(wc) > 0) {
    }
  }
  state.SetLabel("one RC send end-to-end");
}
BENCHMARK(BM_NicEndToEndMessage);

// Deep-queue bandwidth: `depth` signaled RDMA writes per iteration, posted
// in doorbell bursts of `burst` (the engine drains between bursts, so
// `burst` is exactly the SQ depth each drain sees). This is the scenario
// the SoA burst drain targets: one fused per-burst event amortizes WQE
// fetch/protect/segment across the whole burst instead of paying one
// engine event per WQE stage.
void BM_NicBurst(benchmark::State& state) {
  const auto burst = static_cast<std::size_t>(state.range(0));
  const auto bytes = static_cast<std::uint32_t>(state.range(1));
  const auto depth = static_cast<std::size_t>(state.range(2));
  sim::Engine engine;
  fabric::Network net(engine);
  net.add_node(0, sim::Bandwidth::gbit_per_sec(200.0), sim::ns(150));
  net.add_node(1, sim::Bandwidth::gbit_per_sec(200.0), sim::ns(150));
  net.connect(0, 1, sim::Bandwidth::gbit_per_sec(100.0), sim::ns(150));
  nic::NicRegistry reg;
  nic::Nic n0(engine, net, reg, 0, {});
  nic::Nic n1(engine, net, reg, 1, {});
  auto pd0 = n0.alloc_pd();
  auto pd1 = n1.alloc_pd();
  auto* cq0 = n0.create_cq(1u << 20);
  auto* cq1 = n1.create_cq(1u << 20);
  auto* qp0 = n0.create_qp({nic::QpType::kRC, pd0, cq0, cq0, 1u << 16, 16, 220});
  auto* qp1 = n1.create_qp({nic::QpType::kRC, pd1, cq1, cq1, 16, 16, 220});
  n0.modify_qp(*qp0, nic::QpState::kInit);
  n0.modify_qp(*qp0, nic::QpState::kRtr, {1, qp1->qpn()});
  n0.modify_qp(*qp0, nic::QpState::kRts);
  n1.modify_qp(*qp1, nic::QpState::kInit);
  n1.modify_qp(*qp1, nic::QpState::kRtr, {0, qp0->qpn()});
  n1.modify_qp(*qp1, nic::QpState::kRts);
  std::vector<std::byte> src(bytes), dst(bytes);
  const auto& lmr = n0.register_mr(pd0, src.data(), src.size(),
                                   nic::kAccessLocalWrite);
  const auto& rmr = n1.register_mr(pd1, dst.data(), dst.size(),
                                   nic::kAccessRemoteWrite);
  std::vector<nic::Cqe> wc(64);
  for (auto _ : state) {
    for (std::size_t done = 0; done < depth; done += burst) {
      for (std::size_t i = 0; i < burst; ++i) {
        n0.post_send(*qp0,
                     {.opcode = nic::Opcode::kRdmaWrite,
                      .sge = {reinterpret_cast<std::uintptr_t>(src.data()),
                              bytes, lmr.lkey},
                      .signaled = true,
                      .remote_addr = reinterpret_cast<std::uintptr_t>(dst.data()),
                      .rkey = rmr.rkey});
      }
      engine.run();
    }
    while (cq0->poll(wc) > 0) {
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(depth));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(depth) * bytes);
}
BENCHMARK(BM_NicBurst)
    ->ArgNames({"burst", "bytes", "depth"})
    ->Args({1, 64, 256})       // ping-like: no batching available
    ->Args({16, 64, 256})      // moderate doorbell coalescing
    ->Args({256, 64, 256})     // deep queue, small messages
    ->Args({256, 4096, 256})   // deep queue, one-MTU messages
    ->Args({16, 65536, 64})    // segmentation-heavy large messages
    ->MinTime(1.0);

// Batched syscall submission: a deep-pipeline CoRD bandwidth run at
// tx-depth x tx-batch, against the bypass dataplane as the floor the
// amortization chases. The figure of merit is *virtual* time per posted
// message (`sim_ns_per_op`, deterministic — a simulation-model property,
// not a host-noise one); cpu_time additionally gates the real-time cost
// of running the batched path like every other entry. The bench_gate
// holds sim_ns_per_op(batch=1) / sim_ns_per_op(batch=16) above
// SYSCALL_BATCH_FLOOR at both depths.
void BM_SyscallBatch(benchmark::State& state) {
  const auto depth = static_cast<std::uint32_t>(state.range(0));
  const auto batch = static_cast<std::uint32_t>(state.range(1));
  const bool bypass = state.range(2) != 0;
  perftest::Params p;
  p.op = perftest::TestOp::kWrite;  // one-sided: the client pays all CPU
  p.msg_size = 64;
  p.iterations = 1500;
  p.tx_depth = depth;
  p.tx_batch = batch;
  const auto mode =
      bypass ? verbs::DataplaneMode::kBypass : verbs::DataplaneMode::kCord;
  p.client = verbs::ContextOptions{.mode = mode};
  p.server = verbs::ContextOptions{.mode = mode};
  double ns_per_op = 0.0;
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    const auto r = perftest::run_bandwidth(core::system_l(), p);
    ns_per_op = sim::to_ns(r.elapsed) / static_cast<double>(r.messages);
    msgs += r.messages;
  }
  state.counters["sim_ns_per_op"] = ns_per_op;
  state.SetItemsProcessed(static_cast<std::int64_t>(msgs));
}
BENCHMARK(BM_SyscallBatch)
    ->ArgNames({"depth", "batch", "bypass"})
    ->Args({64, 1, 0})
    ->Args({64, 4, 0})
    ->Args({64, 16, 0})
    ->Args({64, 64, 0})
    ->Args({256, 1, 0})
    ->Args({256, 4, 0})
    ->Args({256, 16, 0})
    ->Args({256, 64, 0})
    ->Args({64, 1, 1})    // bypass reference: the amortization target
    ->Args({256, 1, 1});

}  // namespace

BENCHMARK_MAIN();
