// Figure 1 — "Removing" performance-improving techniques compared to
// having all techniques active (perftest send_lat / send_bw on system L).
//
//   Fig. 1a: one-way send latency vs message size for baseline and each
//            removed technique (zero-copy / kernel-bypass / polling).
//   Fig. 1b: send throughput vs message size, same variants.
//
// Expected shape (paper §2): removing any technique hurts small-message
// throughput (CPU-bound); only zero-copy matters for large-message
// throughput; for latency, polling removal adds a large constant,
// zero-copy removal adds ~140 us/MiB, kernel-bypass removal adds a small
// constant with minimal overall impact.
#include <cstdio>

#include "bench_util.hpp"
#include "perftest/perftest.hpp"

namespace {

using namespace cord;
using namespace cord::bench;
using namespace cord::perftest;

struct Variant {
  const char* name;
  Knobs knobs;
};

const Variant kVariants[] = {
    {"baseline", {}},
    {"no-zerocopy", {.extra_copy = true}},
    {"no-kernelbypass", {.extra_syscall = true}},
    {"no-polling", {.interrupt_wait = true}},
};

}  // namespace

int main() {
  const auto cfg = core::system_l();
  const std::size_t sizes[] = {2,    64,    256,   1024,    4096,
                               16384, 65536, 262144, 1048576, 8388608};

  std::printf("=== Figure 1a: send latency (one-way us), system L ===\n");
  Table lat({"size", "baseline", "no-zerocopy", "no-kernelbypass", "no-polling"});
  for (std::size_t size : sizes) {
    std::vector<std::string> row{size_label(size)};
    for (const Variant& v : kVariants) {
      Params p;
      p.op = TestOp::kSend;
      p.msg_size = size;
      p.iterations = size >= (1u << 20) ? 40 : 200;
      p.warmup = 20;
      p.knobs = v.knobs;
      auto r = run_latency(cfg, p);
      warn_clamped(r.clamped_events, "fig1a latency");
      row.push_back(fmt("%.2f", r.avg_us));
    }
    lat.add_row(std::move(row));
  }
  lat.print();

  std::printf("\n=== Figure 1b: send throughput (Gbit/s), system L ===\n");
  Table bw({"size", "baseline", "no-zerocopy", "no-kernelbypass", "no-polling"});
  for (std::size_t size : sizes) {
    std::vector<std::string> row{size_label(size)};
    for (const Variant& v : kVariants) {
      Params p;
      p.op = TestOp::kSend;
      p.msg_size = size;
      p.iterations = iters_for(size);
      p.knobs = v.knobs;
      auto r = run_bandwidth(cfg, p);
      warn_clamped(r.clamped_events, "fig1b throughput");
      row.push_back(fmt("%.3f", r.gbps));
    }
    bw.add_row(std::move(row));
  }
  bw.print();

  std::printf(
      "\nPaper checkpoints: baseline small-message throughput is a tiny\n"
      "fraction of the 100 Gbit/s wire; no-zerocopy latency grows by\n"
      "~140 us/MiB; no-polling adds a size-independent constant; removing\n"
      "kernel-bypass is the least harmful technique.\n");
  return 0;
}
