// Ablation: KPTI and the price of the user-kernel crossing.
//
// §5: "we disable KPTI, an expensive kernel-level Meltdown mitigation,
// because modern CPUs do not need it." This bench shows what CoRD would
// cost on a CPU that *does* need it: KPTI multiplies the crossing cost,
// which multiplies CoRD's per-message overhead (and barely moves bypass).
#include <cstdio>

#include "bench_util.hpp"
#include "perftest/perftest.hpp"

namespace {

using namespace cord;
using namespace cord::bench;
using namespace cord::perftest;
using verbs::DataplaneMode;

Params cord_params(std::size_t size, int iters) {
  Params p;
  p.op = TestOp::kSend;
  p.msg_size = size;
  p.iterations = iters;
  p.client = verbs::ContextOptions{.mode = DataplaneMode::kCord};
  p.server = p.client;
  return p;
}

}  // namespace

int main() {
  std::printf("=== Ablation: KPTI on/off (system L) ===\n\n");
  core::SystemConfig base = core::system_l();
  core::SystemConfig kpti = core::system_l();
  kpti.cpu.kpti = true;
  kpti.name = "L+kpti";

  Table t({"metric", "bypass", "CoRD (no KPTI)", "CoRD (KPTI)"});
  {
    Params bp = cord_params(4096, 300);
    bp.client = verbs::ContextOptions{.mode = DataplaneMode::kBypass};
    bp.server = bp.client;
    const double l_bp = run_latency(base, bp).avg_us;
    const double l_cd = run_latency(base, cord_params(4096, 300)).avg_us;
    const double l_cd_kpti = run_latency(kpti, cord_params(4096, 300)).avg_us;
    t.add_row({"4K send lat (us)", fmt("%.2f", l_bp), fmt("%.2f", l_cd),
               fmt("%.2f", l_cd_kpti)});
  }
  {
    Params bp = cord_params(64, 2000);
    bp.client = verbs::ContextOptions{.mode = DataplaneMode::kBypass};
    bp.server = bp.client;
    const double r_bp = run_bandwidth(base, bp).mmsg_per_sec;
    const double r_cd = run_bandwidth(base, cord_params(64, 2000)).mmsg_per_sec;
    const double r_cd_kpti =
        run_bandwidth(kpti, cord_params(64, 2000)).mmsg_per_sec;
    t.add_row({"64B rate (Mmsg/s)", fmt("%.3f", r_bp), fmt("%.3f", r_cd),
               fmt("%.3f", r_cd_kpti)});
  }
  {
    Params big = cord_params(1 << 20, 40);
    const double g_cd = run_bandwidth(base, big).gbps;
    const double g_cd_kpti = run_bandwidth(kpti, big).gbps;
    Params bp = big;
    bp.client = verbs::ContextOptions{.mode = DataplaneMode::kBypass};
    bp.server = bp.client;
    const double g_bp = run_bandwidth(base, bp).gbps;
    t.add_row({"1M bw (Gbit/s)", fmt("%.2f", g_bp), fmt("%.2f", g_cd),
               fmt("%.2f", g_cd_kpti)});
  }
  t.print();
  std::printf(
      "\nKPTI multiplies CoRD's per-message cost (~3x crossings) but large-\n"
      "message bandwidth stays wire-bound — the argument for evaluating on\n"
      "hardware-mitigated CPUs.\n");
  return 0;
}
