// Ablation: should ibv_poll_cq go through the kernel too?
//
// §4 routes "each dataplane operation" through the kernel — including the
// poll. But the CQ lives in user-mapped memory, so a CoRD variant could
// legally poll from user space and only trap for the posting verbs. This
// bench quantifies the difference (and with it, the cost of making polls
// observable/policeable by the OS).
#include <cstdio>

#include "bench_util.hpp"
#include "perftest/perftest.hpp"

namespace {

using namespace cord;
using namespace cord::bench;
using namespace cord::perftest;
using verbs::DataplaneMode;

Params make(std::size_t size, int iters, bool poll_via_kernel) {
  Params p;
  p.op = TestOp::kSend;
  p.msg_size = size;
  p.iterations = iters;
  p.client = verbs::ContextOptions{.mode = DataplaneMode::kCord,
                                   .poll_via_kernel = poll_via_kernel};
  p.server = p.client;
  return p;
}

}  // namespace

int main() {
  std::printf("=== Ablation: CoRD poll_cq routing (system L) ===\n\n");
  const auto cfg = core::system_l();
  Params bp = make(64, 300, true);
  bp.client = verbs::ContextOptions{.mode = DataplaneMode::kBypass};
  bp.server = bp.client;

  Table t({"metric", "bypass", "CoRD, user-space poll", "CoRD, kernel poll"});
  {
    const double base = run_latency(cfg, bp).avg_us;
    const double user = run_latency(cfg, make(64, 300, false)).avg_us;
    const double kern = run_latency(cfg, make(64, 300, true)).avg_us;
    t.add_row({"64B send lat (us)", fmt("%.3f", base), fmt("%.3f", user),
               fmt("%.3f", kern)});
  }
  {
    Params bbw = bp;
    bbw.iterations = 2000;
    const double base = run_bandwidth(cfg, bbw).mmsg_per_sec;
    const double user = run_bandwidth(cfg, make(64, 2000, false)).mmsg_per_sec;
    const double kern = run_bandwidth(cfg, make(64, 2000, true)).mmsg_per_sec;
    t.add_row({"64B rate (Mmsg/s)", fmt("%.3f", base), fmt("%.3f", user),
               fmt("%.3f", kern)});
  }
  t.print();
  std::printf(
      "\nKernel-routed polls dominate CoRD's overhead (they run in a busy\n"
      "loop); polling user-mapped CQ memory recovers most of the gap while\n"
      "the kernel still gates every NIC-visible operation.\n");
  return 0;
}
