// Ablation: the syscall/DVFS interaction.
//
// §5: "we observe CoRD marginally outperforming kernel bypass in
// large-message bandwidth microbenchmarks when Turbo Boost is enabled.
// This behavior suggests that system calls interact with DVFS."
//
// Mechanism in the model: a busy-polling bypass sender keeps its core's
// power draw pegged and loses Turbo residency; CoRD's kernel time counts
// as non-spinning work, so the core clocks slightly higher and the
// CPU-side per-message work shrinks.
#include <cstdio>

#include "bench_util.hpp"
#include "perftest/perftest.hpp"

namespace {

using namespace cord;
using namespace cord::bench;
using namespace cord::perftest;
using verbs::DataplaneMode;

double bw_gbps(const core::SystemConfig& cfg, DataplaneMode mode,
               std::size_t size) {
  Params p;
  p.op = TestOp::kSend;
  p.msg_size = size;
  p.iterations = iters_for(size, 2000, 60);
  p.client = verbs::ContextOptions{.mode = mode};
  p.server = p.client;
  return run_bandwidth(cfg, p).gbps;
}

}  // namespace

int main() {
  std::printf("=== Ablation: Turbo Boost x dataplane mode (system L) ===\n\n");
  const core::SystemConfig off = core::system_l();
  const core::SystemConfig on = core::system_l_turbo();

  Table t({"size", "BP Gb/s (turbo off)", "CD (off)", "BP (turbo on)", "CD (on)",
           "CD/BP on"});
  for (std::size_t size : {4096u, 65536u, 262144u, 1048576u}) {
    const double bp_off = bw_gbps(off, DataplaneMode::kBypass, size);
    const double cd_off = bw_gbps(off, DataplaneMode::kCord, size);
    const double bp_on = bw_gbps(on, DataplaneMode::kBypass, size);
    const double cd_on = bw_gbps(on, DataplaneMode::kCord, size);
    t.add_row({size_label(size), fmt("%.3f", bp_off), fmt("%.3f", cd_off),
               fmt("%.3f", bp_on), fmt("%.3f", cd_on),
               fmt("%.4f", cd_on / bp_on)});
  }
  t.print();
  std::printf(
      "\nWith Turbo off CoRD trails bypass slightly; with Turbo on the\n"
      "syscall-heavy path claws the gap back (CD/BP approaches or exceeds\n"
      "1.0 at large sizes) — the paper's DVFS observation.\n");
  return 0;
}
