// Shared helpers for the figure-regeneration benches: aligned table
// printing and the message-size sweeps used across figures.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace cord::bench {

/// Simple aligned table printer for paper-style outputs.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print() const {
    std::vector<std::size_t> width(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& r) {
      for (std::size_t c = 0; c < r.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(width[c]), r[c].c_str());
      }
      std::printf("\n");
    };
    print_row(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

inline std::string size_label(std::size_t bytes) {
  char buf[32];
  if (bytes >= (1u << 20)) {
    std::snprintf(buf, sizeof(buf), "%zuM", bytes >> 20);
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%zuK", bytes >> 10);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu", bytes);
  }
  return buf;
}

/// Messages sized for a sweep point: fewer iterations for big messages so
/// total simulated bytes stay bounded.
inline int iters_for(std::size_t msg_size, int small = 2000, int large = 40) {
  if (msg_size >= (1u << 20)) return large;
  if (msg_size >= (1u << 16)) return 200;
  if (msg_size >= (1u << 13)) return 600;
  return small;
}

/// A clamped run hit the engine's event-count safety limit: the data point
/// covers fewer iterations than requested and must not be read as a
/// steady-state number. One stderr line per affected point keeps figure
/// output (stdout) clean while making truncation impossible to miss.
inline void warn_clamped(std::uint64_t clamped, const char* where) {
  if (clamped == 0) return;
  std::fprintf(stderr,
               "WARNING: %s: engine clamped %llu event(s); results for this "
               "point are truncated\n",
               where, static_cast<unsigned long long>(clamped));
}

}  // namespace cord::bench
