// Figure 6 — Relative runtime of the NPB benchmarks on system A:
// communication over RDMA (kernel bypass), CoRD, and IPoIB, with MPI
// barred from using shared memory (all traffic through the NIC).
//
// Expected shape (paper §5): CoRD has nearly zero overhead over bypass
// for every benchmark (EP and CG can come out marginally *faster* thanks
// to the syscall/DVFS interaction with Turbo enabled); IPoIB is up to 2x
// slower, worst for the simultaneously data- and message-intensive IS
// and SP.
//
// Scale notes: EP/IS/CG/MG/FT/LU run 128 ranks, SP/BT 225 (square rank
// counts, within the paper's 128-240 range). Iteration counts are trimmed
// to ~10 (relative runtimes are iteration-independent in steady state)
// and FT uses class A buffers to stay within simulation-host memory; both
// trims are documented in EXPERIMENTS.md.
#include <cstdio>

#include "bench_util.hpp"
#include "npb/npb.hpp"

namespace {

using namespace cord;
using namespace cord::bench;
using namespace cord::npb;
using mpi::NetMode;

struct Row {
  Kernel kernel;
  int ranks;
  Class cls;
  int iters;
};

const Row kRows[] = {
    {Kernel::kBT, 225, Class::kB, 10}, {Kernel::kCG, 128, Class::kB, 20},
    {Kernel::kEP, 128, Class::kB, 0},  {Kernel::kFT, 128, Class::kA, 10},
    {Kernel::kIS, 128, Class::kB, 10}, {Kernel::kLU, 128, Class::kB, 10},
    {Kernel::kMG, 128, Class::kB, 10}, {Kernel::kSP, 225, Class::kB, 10},
};

Result run_one(const Row& row, NetMode net) {
  core::System sys(core::system_a(), 2);
  mpi::WorldConfig cfg;
  cfg.net = net;
  cfg.srq_slots = 512;
  mpi::World world(sys, row.ranks, cfg);
  return run(world, RunConfig{row.kernel, row.cls, /*verify=*/false, row.iters});
}

}  // namespace

int main() {
  std::printf(
      "=== Figure 6: NPB relative runtime on system A (RDMA = 1.00) ===\n"
      "(no shared-memory communication; 2 nodes)\n\n");
  Table t({"bench", "ranks", "RDMA ms", "CoRD", "IPoIB", "msg/rank/s", "Gbit/s/node"});
  for (const Row& row : kRows) {
    std::fprintf(stderr, "[fig6] running %s (%d ranks)...\n",
                 std::string(to_string(row.kernel)).c_str(), row.ranks);
    const Result rdma = run_one(row, NetMode::kBypass);
    std::fprintf(stderr, "[fig6]   rdma  %.2f ms\n", sim::to_ms(rdma.elapsed));
    const Result cord = run_one(row, NetMode::kCord);
    std::fprintf(stderr, "[fig6]   cord  %.2f ms\n", sim::to_ms(cord.elapsed));
    const Result ipoib = run_one(row, NetMode::kIpoib);
    std::fprintf(stderr, "[fig6]   ipoib %.2f ms\n", sim::to_ms(ipoib.elapsed));
    const double base_ms = sim::to_ms(rdma.elapsed);
    const double msg_rate = static_cast<double>(rdma.messages) /
                            sim::to_sec(rdma.elapsed) / row.ranks;
    const double node_gbps =
        static_cast<double>(rdma.bytes) * 8.0 / sim::to_sec(rdma.elapsed) / 2e9;
    t.add_row({std::string(to_string(row.kernel)), std::to_string(row.ranks),
               fmt("%.2f", base_ms),
               fmt("%.3f", sim::to_ms(cord.elapsed) / base_ms),
               fmt("%.3f", sim::to_ms(ipoib.elapsed) / base_ms),
               fmt("%.0f", msg_rate), fmt("%.2f", node_gbps)});
    std::fflush(stdout);
  }
  t.print();
  std::printf(
      "\nPaper checkpoints: CoRD ~1.00 everywhere (EP/CG may dip below\n"
      "1.00 with Turbo enabled); IPoIB up to ~2x, worst on the data- and\n"
      "message-intensive IS and SP.\n");
  return 0;
}
