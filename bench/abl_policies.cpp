// Ablation: the cost of CoRD policies.
//
// §3: "The overhead from the enforcement of CoRD policies depends greatly
// on the specifics of the implemented functionality." This bench
// quantifies it for the policies shipped in this repo: latency and
// small-message rate with an increasingly long policy chain.
#include <cstdio>

#include "bench_util.hpp"
#include "os/policies.hpp"
#include "perftest/perftest.hpp"

namespace {

using namespace cord;
using namespace cord::bench;
using namespace cord::perftest;

}  // namespace

int main() {
  std::printf("=== Ablation: CoRD policy-chain cost (system L, CoRD both sides) ===\n");
  // Measured with direct verbs ping-pongs/bursts (the perftest entry
  // points build their own pristine systems; policies are runtime kernel
  // state, so we drive the system ourselves here).
  Table t({"policies", "64B one-way us", "64B Mmsg/s (burst)"});
  for (int n = 0; n <= 4; ++n) {
    core::System sys(core::system_l(), 2);
    for (int h = 0; h < 2; ++h) {
      os::PolicyChain& chain =
          sys.host(static_cast<std::size_t>(h)).kernel().policies();
      if (n >= 1) chain.install(std::make_unique<os::StatsCollector>());
      if (n >= 2) chain.install(std::make_unique<os::MessageSizeQuota>(1u << 30));
      if (n >= 3) {
        auto acl = std::make_unique<os::SecurityAcl>();
        acl->allow(0, 0);
        acl->allow(0, 1);
        chain.install(std::move(acl));
      }
      if (n >= 4) chain.install(std::make_unique<os::QosTokenBucket>(100e9, 1u << 30));
    }

    double lat_us = 0.0;
    double mmsg = 0.0;
    sys.engine().spawn([](core::System& sys, double& lat_us,
                          double& mmsg) -> sim::Task<> {
      verbs::Context c(sys.host(0), 0, sys.options(verbs::DataplaneMode::kCord));
      verbs::Context s(sys.host(1), 0, sys.options(verbs::DataplaneMode::kCord));
      auto pd_c = co_await c.alloc_pd();
      auto pd_s = co_await s.alloc_pd();
      auto* scq_c = co_await c.create_cq(8192);
      auto* rcq_c = co_await c.create_cq(8192);
      auto* scq_s = co_await s.create_cq(8192);
      auto* rcq_s = co_await s.create_cq(8192);
      auto* qp_c = co_await c.create_qp(
          {nic::QpType::kRC, pd_c, scq_c, rcq_c, 256, 4096, 220});
      auto* qp_s = co_await s.create_qp(
          {nic::QpType::kRC, pd_s, scq_s, rcq_s, 256, 4096, 220});
      co_await c.connect_qp(*qp_c, {1, qp_s->qpn()});
      co_await s.connect_qp(*qp_s, {0, qp_c->qpn()});
      std::vector<std::byte> buf(64), sink(64);
      auto* mr_s = co_await s.reg_mr(pd_s, sink.data(), 64, nic::kAccessLocalWrite);

      // Latency: 200 one-way sends, receiver pre-posts.
      sim::Samples oneway;
      for (int i = 0; i < 200; ++i) {
        (void)co_await s.post_recv(
            *qp_s, {1, {reinterpret_cast<std::uintptr_t>(sink.data()), 64, mr_s->lkey}});
        const sim::Time t0 = sys.engine().now();
        (void)co_await c.post_send(
            *qp_c, {.sge = {reinterpret_cast<std::uintptr_t>(buf.data()), 64, 0},
                    .inline_data = true});
        (void)co_await s.wait_one(*rcq_s);
        oneway.add(sim::to_us(sys.engine().now() - t0));
        (void)co_await c.wait_one(*scq_c);
      }
      lat_us = oneway.mean();

      // Burst rate: 2000 sends, windowed.
      for (int i = 0; i < 4000; ++i) {
        (void)co_await s.post_recv(
            *qp_s, {1, {reinterpret_cast<std::uintptr_t>(sink.data()), 64, mr_s->lkey}});
      }
      const sim::Time b0 = sys.engine().now();
      int posted = 0, done = 0;
      std::vector<nic::Cqe> wc(64);
      while (done < 2000) {
        while (posted < 2000 && posted - done < 128) {
          (void)co_await c.post_send(
              *qp_c, {.sge = {reinterpret_cast<std::uintptr_t>(buf.data()), 64, 0},
                      .inline_data = true});
          ++posted;
        }
        done += static_cast<int>(co_await c.poll_cq(*scq_c, wc));
      }
      mmsg = 2000.0 / sim::to_sec(sys.engine().now() - b0) / 1e6;
    }(sys, lat_us, mmsg));
    sys.engine().run();

    t.add_row({std::to_string(n), fmt("%.3f", lat_us), fmt("%.3f", mmsg)});
  }
  t.print();
  std::printf(
      "\nEach installed policy adds a bounded per-op cost (tens of ns);\n"
      "the chain stays 'lightweight and non-blocking' as §3 requires.\n");
  return 0;
}
