#include "trace/metrics.hpp"

#include <stdexcept>

namespace cord::trace {

MetricsRegistry::Entry& MetricsRegistry::get_or_create(std::string_view name,
                                                       std::uint32_t label,
                                                       Kind kind) {
  // Transparent lookup first (no string copy on the re-registration path).
  const auto it = entries_.find(Key{std::string(name), label});
  if (it != entries_.end()) {
    if (it->second.kind != kind) {
      throw std::logic_error("metric '" + std::string(name) +
                             "' re-registered with a different kind");
    }
    return it->second;
  }
  Entry& e = entries_[Key{std::string(name), label}];
  e.kind = kind;
  return e;
}

const MetricsRegistry::Entry* MetricsRegistry::find(std::string_view name,
                                                    std::uint32_t label,
                                                    Kind kind) const {
  const auto it = entries_.find(Key{std::string(name), label});
  if (it == entries_.end() || it->second.kind != kind) return nullptr;
  return &it->second;
}

Counter& MetricsRegistry::counter(std::string_view name, std::uint32_t label) {
  return get_or_create(name, label, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::uint32_t label) {
  return get_or_create(name, label, Kind::kGauge).gauge;
}

sim::LogHistogram& MetricsRegistry::histogram(std::string_view name,
                                              std::uint32_t label) {
  return get_or_create(name, label, Kind::kHistogram).histogram;
}

void MetricsRegistry::callback_gauge(std::string_view name,
                                     std::function<std::int64_t()> fn,
                                     std::uint32_t label) {
  get_or_create(name, label, Kind::kCallbackGauge).callback = std::move(fn);
}

const Counter* MetricsRegistry::find_counter(std::string_view name,
                                             std::uint32_t label) const {
  const Entry* e = find(name, label, Kind::kCounter);
  return e == nullptr ? nullptr : &e->counter;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name,
                                         std::uint32_t label) const {
  const Entry* e = find(name, label, Kind::kGauge);
  return e == nullptr ? nullptr : &e->gauge;
}

const sim::LogHistogram* MetricsRegistry::find_histogram(
    std::string_view name, std::uint32_t label) const {
  const Entry* e = find(name, label, Kind::kHistogram);
  return e == nullptr ? nullptr : &e->histogram;
}

std::int64_t MetricsRegistry::gauge_value(std::string_view name,
                                          std::uint32_t label) const {
  if (const Entry* e = find(name, label, Kind::kGauge)) return e->gauge.value;
  if (const Entry* e = find(name, label, Kind::kCallbackGauge)) {
    return e->callback ? e->callback() : 0;
  }
  return 0;
}

std::vector<std::uint32_t> MetricsRegistry::labels(std::string_view name) const {
  std::vector<std::uint32_t> out;
  for (const auto& [key, entry] : entries_) {
    (void)entry;
    if (key.name == name && key.label != kNoLabel) out.push_back(key.label);
  }
  return out;  // map order: already ascending per name
}

namespace {

void label_suffix(char* buf, std::size_t n, std::uint32_t label) {
  if (label == kNoLabel) {
    buf[0] = '\0';
  } else {
    std::snprintf(buf, n, "{tenant=%u}", label);
  }
}

}  // namespace

void MetricsRegistry::write_csv(std::FILE* f) const {
  std::fprintf(f, "name,label,kind,count,value,mean,p50,p99,max\n");
  for (const auto& [key, e] : entries_) {
    const char* label = key.label == kNoLabel ? "" : nullptr;
    char labelbuf[16];
    if (label == nullptr) {
      std::snprintf(labelbuf, sizeof(labelbuf), "%u", key.label);
      label = labelbuf;
    }
    switch (e.kind) {
      case Kind::kCounter:
        std::fprintf(f, "%s,%s,counter,,%llu,,,,\n", key.name.c_str(), label,
                     static_cast<unsigned long long>(e.counter.value));
        break;
      case Kind::kGauge:
      case Kind::kCallbackGauge: {
        const std::int64_t v = e.kind == Kind::kGauge
                                   ? e.gauge.value
                                   : (e.callback ? e.callback() : 0);
        std::fprintf(f, "%s,%s,gauge,,%lld,,,,\n", key.name.c_str(), label,
                     static_cast<long long>(v));
        break;
      }
      case Kind::kHistogram: {
        const sim::LogHistogram& h = e.histogram;
        std::fprintf(f, "%s,%s,histogram,%llu,%llu,%.1f,%.1f,%.1f,%llu\n",
                     key.name.c_str(), label,
                     static_cast<unsigned long long>(h.count()),
                     static_cast<unsigned long long>(h.sum()), h.mean(),
                     h.percentile(50.0), h.percentile(99.0),
                     static_cast<unsigned long long>(h.max()));
        break;
      }
    }
  }
}

std::string MetricsRegistry::text() const {
  std::string out;
  char line[256];
  char label[24];
  for (const auto& [key, e] : entries_) {
    label_suffix(label, sizeof(label), key.label);
    switch (e.kind) {
      case Kind::kCounter:
        std::snprintf(line, sizeof(line), "%s%s %llu\n", key.name.c_str(),
                      label, static_cast<unsigned long long>(e.counter.value));
        break;
      case Kind::kGauge:
      case Kind::kCallbackGauge: {
        const std::int64_t v = e.kind == Kind::kGauge
                                   ? e.gauge.value
                                   : (e.callback ? e.callback() : 0);
        std::snprintf(line, sizeof(line), "%s%s %lld\n", key.name.c_str(),
                      label, static_cast<long long>(v));
        break;
      }
      case Kind::kHistogram: {
        const sim::LogHistogram& h = e.histogram;
        std::snprintf(line, sizeof(line),
                      "%s%s count=%llu mean=%.1f p50=%.1f p99=%.1f max=%llu\n",
                      key.name.c_str(), label,
                      static_cast<unsigned long long>(h.count()), h.mean(),
                      h.percentile(50.0), h.percentile(99.0),
                      static_cast<unsigned long long>(h.max()));
        break;
      }
    }
    out += line;
  }
  return out;
}

}  // namespace cord::trace
