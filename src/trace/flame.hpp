// Flame view: where did the simulated time (and the simulator's own sync
// overhead) go?
//
// Aggregates a run's trace records into folded stacks keyed by shard —
// `shard0;nic;wire_tx 123456` — the input format of standard flamegraph
// tooling, plus a self-contained text bar rendering for terminals.
//
// Two kinds of weight coexist and are never summed together:
//  * span records (dur > 0) weigh their *virtual-time* duration in
//    picoseconds — the simulated cost of wire occupancy, DMA, policy
//    evaluation, ...;
//  * instant records weigh 1 sample each (post/doorbell/completion
//    counts);
//  * sync-barrier idle — shards blocked at the conservative window edge
//    waiting for stragglers — is *wall-clock* nanoseconds taken from
//    ShardStats, reported under its own unit so real simulator overhead
//    is never conflated with simulated time.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/sharded.hpp"
#include "trace/trace.hpp"

namespace cord::trace {

struct FlameEntry {
  enum class Unit { kVirtualPs, kSamples, kWallNs };
  std::string stack;  ///< "shard<N>;<category>;<point>" (";"-folded)
  std::uint64_t weight = 0;
  Unit unit = Unit::kVirtualPs;
};

struct FlameView {
  std::vector<FlameEntry> entries;  ///< sorted by stack string
  std::uint64_t total_virtual_ps = 0;
  std::uint64_t total_samples = 0;
  std::uint64_t total_barrier_wall_ns = 0;
};

/// Build the view from per-shard record streams (index = shard). Pass the
/// run's ShardStats to include per-shard "sync;barrier_idle" entries.
FlameView build_flame(const std::vector<std::vector<Record>>& per_shard,
                      const sim::ShardStats* sync = nullptr);

/// Folded-stack text, one "stack weight" line per entry (flamegraph.pl
/// and speedscope both ingest this).
std::string flame_folded(const FlameView& v);

/// Terminal rendering: per-unit sections with proportional bars.
std::string render_flame(const FlameView& v, std::size_t width = 48);

/// CSV: stack,unit,weight.
void write_flame_csv(std::FILE* f, const FlameView& v);

}  // namespace cord::trace
