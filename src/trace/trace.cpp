#include "trace/trace.hpp"

namespace cord::trace {

std::string_view to_string(Point p) {
  switch (p) {
    case Point::kVerbsPostSend: return "verbs-post-send";
    case Point::kVerbsPostRecv: return "verbs-post-recv";
    case Point::kVerbsPollCq: return "verbs-poll-cq";
    case Point::kSyscallEnter: return "syscall-enter";
    case Point::kSyscallExit: return "syscall-exit";
    case Point::kPolicyEval: return "policy-eval";
    case Point::kWqePost: return "wqe-post";
    case Point::kDoorbell: return "doorbell";
    case Point::kWqeFetch: return "wqe-fetch";
    case Point::kDmaFetch: return "dma-fetch";
    case Point::kWireTx: return "wire-tx";
    case Point::kDmaDeliver: return "dma-deliver";
    case Point::kCompletion: return "completion";
    case Point::kCqePoll: return "cqe-poll";
    case Point::kInterrupt: return "interrupt";
    case Point::kCount: break;
  }
  return "unknown";
}

Point point_from_name(std::string_view name) {
  for (std::uint8_t i = 0; i < static_cast<std::uint8_t>(Point::kCount); ++i) {
    const Point p = static_cast<Point>(i);
    if (to_string(p) == name) return p;
  }
  return Point::kCount;
}

std::string_view category(Point p) {
  switch (p) {
    case Point::kVerbsPostSend:
    case Point::kVerbsPostRecv:
    case Point::kVerbsPollCq:
      return "verbs";
    case Point::kSyscallEnter:
    case Point::kSyscallExit:
    case Point::kPolicyEval:
    case Point::kInterrupt:
      return "os";
    default:
      return "nic";
  }
}

}  // namespace cord::trace
