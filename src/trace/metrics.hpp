// MetricsRegistry — named counters, gauges, and log-bucketed histograms
// with optional per-tenant labels.
//
// This is the kernel-side metrics surface of the repro: the simulated
// kernel (and any policy) registers metrics here, and observers read them
// through `Kernel::proc_read` without touching the application — the
// paper's observability claim made concrete. Registration is a map lookup
// (cold path); updates go through retained pointers (hot path: one
// increment). Entries live in a std::map, so addresses are stable for the
// registry's lifetime and dumps iterate in a deterministic sorted order.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/stats.hpp"

namespace cord::trace {

/// Label value meaning "not labelled" (metrics global to the host).
inline constexpr std::uint32_t kNoLabel = 0xFFFFFFFFu;

struct Counter {
  std::uint64_t value = 0;
  void add(std::uint64_t n = 1) { value += n; }
};

struct Gauge {
  std::int64_t value = 0;
  void set(std::int64_t v) { value = v; }
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. References stay valid for the registry's lifetime;
  /// hot paths should retain them instead of re-looking-up by name.
  Counter& counter(std::string_view name, std::uint32_t label = kNoLabel);
  Gauge& gauge(std::string_view name, std::uint32_t label = kNoLabel);
  sim::LogHistogram& histogram(std::string_view name,
                               std::uint32_t label = kNoLabel);

  /// A gauge computed at read time (e.g. surfacing a live engine counter
  /// such as Engine::clamped_events without copying it on every event).
  void callback_gauge(std::string_view name, std::function<std::int64_t()> fn,
                      std::uint32_t label = kNoLabel);

  /// Read-side lookups (nullptr when absent or of a different kind).
  const Counter* find_counter(std::string_view name,
                              std::uint32_t label = kNoLabel) const;
  const Gauge* find_gauge(std::string_view name,
                          std::uint32_t label = kNoLabel) const;
  const sim::LogHistogram* find_histogram(std::string_view name,
                                          std::uint32_t label = kNoLabel) const;
  /// Current value of a gauge or callback gauge (0 when absent).
  std::int64_t gauge_value(std::string_view name,
                           std::uint32_t label = kNoLabel) const;

  /// All labels registered under `name`, sorted ascending (kNoLabel
  /// excluded) — e.g. the set of tenants the kernel has seen.
  std::vector<std::uint32_t> labels(std::string_view name) const;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// `name,label,kind,count,sum/value,mean,p50,p99,max` per row,
  /// deterministic order. The metrics dump consumed by benches/examples.
  void write_csv(std::FILE* f) const;
  /// /proc-style human-readable dump, one metric per line.
  std::string text() const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kCallbackGauge, kHistogram };

  struct Key {
    std::string name;
    std::uint32_t label;
    bool operator<(const Key& o) const {
      const int c = name.compare(o.name);
      return c != 0 ? c < 0 : label < o.label;
    }
  };

  struct Entry {
    Kind kind = Kind::kCounter;
    Counter counter;
    Gauge gauge;
    std::function<std::int64_t()> callback;
    sim::LogHistogram histogram;
  };

  Entry& get_or_create(std::string_view name, std::uint32_t label, Kind kind);
  const Entry* find(std::string_view name, std::uint32_t label,
                    Kind kind) const;

  std::map<Key, Entry> entries_;
};

}  // namespace cord::trace
