// Trace exporters.
//
// Chrome trace-event JSON: loads directly in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. Records with a duration
// become complete ("X") slices; instants become "i" events. pid = node,
// tid = qpn, so each queue pair renders as its own track and a WR's span
// chain reads top-to-bottom as post → syscall → policy → doorbell → DMA →
// wire → completion.
#pragma once

#include <cstdio>
#include <span>
#include <string>

#include "trace/trace.hpp"

namespace cord::trace {

/// Write the stream as Chrome trace-event JSON ("traceEvents" array).
void write_chrome_trace(std::FILE* f, std::span<const Record> records);

/// Same, returned as a string (tests validate it as JSON).
std::string chrome_trace_json(std::span<const Record> records);

/// Convenience: export to a file path; returns false if the file cannot
/// be opened.
bool write_chrome_trace_file(const char* path, std::span<const Record> records);

/// Plain CSV of the raw records (one row per record, header included).
void write_records_csv(std::FILE* f, std::span<const Record> records);

/// Same, returned as a string / written to a file path.
std::string records_csv(std::span<const Record> records);
bool write_records_csv_file(const char* path, std::span<const Record> records);

/// Inverse of write_records_csv: parse the CSV text back into records.
/// Round trip is byte-exact — records_csv(parse_records_csv(s)) == s for
/// any writer-produced s, and the parsed records memcmp-equal the
/// originals. The header line and unparseable lines are skipped.
std::vector<Record> parse_records_csv(std::string_view text);

/// Inverse of write_chrome_trace for the event shapes this writer emits.
/// Timestamps/durations are recovered exactly from the fixed 6-decimal
/// microsecond encoding (1 µs-decimal == 1 ps), so the round trip is
/// byte-exact for virtual times below ~2^31 µs — far beyond any run here.
/// Events whose name is not a known Point are skipped.
std::vector<Record> parse_chrome_trace(std::string_view json);

/// Merge per-shard streams into one, ordered by virtual time. Stable:
/// records with equal timestamps keep shard order, then emission order
/// within a shard.
std::vector<Record> merge_by_time(std::vector<std::vector<Record>> streams);

/// Shard-invariant normal form of a trace. A sharded run emits the same
/// *set* of records as the single-engine run, but tie-order at equal
/// timestamps and span-id assignment (per-tracer counters) differ. This
/// sorts by every field except span, then renumbers spans by order of
/// first appearance — two runs of the same simulation memcmp equal after
/// canonicalization regardless of shard count.
std::vector<Record> canonical_trace(std::vector<Record> records);

}  // namespace cord::trace
