// Trace exporters.
//
// Chrome trace-event JSON: loads directly in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. Records with a duration
// become complete ("X") slices; instants become "i" events. pid = node,
// tid = qpn, so each queue pair renders as its own track and a WR's span
// chain reads top-to-bottom as post → syscall → policy → doorbell → DMA →
// wire → completion.
#pragma once

#include <cstdio>
#include <span>
#include <string>

#include "trace/trace.hpp"

namespace cord::trace {

/// Write the stream as Chrome trace-event JSON ("traceEvents" array).
void write_chrome_trace(std::FILE* f, std::span<const Record> records);

/// Same, returned as a string (tests validate it as JSON).
std::string chrome_trace_json(std::span<const Record> records);

/// Convenience: export to a file path; returns false if the file cannot
/// be opened.
bool write_chrome_trace_file(const char* path, std::span<const Record> records);

/// Plain CSV of the raw records (one row per record, header included).
void write_records_csv(std::FILE* f, std::span<const Record> records);

/// Merge per-shard streams into one, ordered by virtual time. Stable:
/// records with equal timestamps keep shard order, then emission order
/// within a shard.
std::vector<Record> merge_by_time(std::vector<std::vector<Record>> streams);

/// Shard-invariant normal form of a trace. A sharded run emits the same
/// *set* of records as the single-engine run, but tie-order at equal
/// timestamps and span-id assignment (per-tracer counters) differ. This
/// sorts by every field except span, then renumbers spans by order of
/// first appearance — two runs of the same simulation memcmp equal after
/// canonicalization regardless of shard count.
std::vector<Record> canonical_trace(std::vector<Record> records);

}  // namespace cord::trace
