#include "trace/causal/causal.hpp"

#include <algorithm>
#include <cstdio>
#include <tuple>
#include <unordered_map>

#include "sim/sharded.hpp"

namespace cord::trace::causal {

namespace {

constexpr sim::Time kMissing = -1;

double us(sim::Time ps) { return static_cast<double>(ps) / 1e6; }

double pct(sim::Time part, sim::Time whole) {
  return whole <= 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

void appendf(std::string& out, const char* fmt, auto... args) {
  char buf[256];
  const int n = std::snprintf(buf, sizeof buf, fmt, args...);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

}  // namespace

std::string_view stage_name(Stage s) {
  switch (s) {
    case Stage::kUserPost: return "user-post";
    case Stage::kKernel: return "kernel";
    case Stage::kNicSched: return "nic-sched";
    case Stage::kDmaFetch: return "dma-fetch";
    case Stage::kWire: return "wire";
    case Stage::kDeliver: return "deliver";
    case Stage::kRemoteCqe: return "remote-cqe";
    case Stage::kAck: return "ack";
    case Stage::kCount: break;
  }
  return "?";
}

Stage Waterfall::binding() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < kStageCount; ++i) {
    if (stages[i].span > stages[best].span) best = i;
  }
  return static_cast<Stage>(best);
}

bool waterfall_before(const Waterfall& a, const Waterfall& b) {
  const auto key = [](const Waterfall& w) {
    return std::tuple(w.post_t, w.qpn, w.end_t, w.bytes, w.opcode, w.tenant,
                      w.src_node, w.dst_node, w.status);
  };
  const auto ka = key(a), kb = key(b);
  if (ka != kb) return ka < kb;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const auto sa = std::tuple(a.stages[i].span, a.stages[i].service);
    const auto sb = std::tuple(b.stages[i].span, b.stages[i].service);
    if (sa != sb) return sa < sb;
  }
  return false;
}

std::optional<Waterfall> build_waterfall(std::span<const Record> chain) {
  Waterfall w;
  // Milestone closing times (kMissing = the chain lacks this stage).
  // Retried WRs re-emit NIC-stage records; the *last* occurrence closes
  // the stage (max), while the anchor is the *first* post (min).
  sim::Time post_min = kMissing;     // kVerbsPostSend
  sim::Time wqe_min = kMissing;      // kWqePost (bypass anchor fallback)
  sim::Time all_min = kMissing;
  sim::Time syscall_t = kMissing;    // closes user-post
  sim::Time wqe_post_t = kMissing;   // closes kernel
  sim::Time sched_end = kMissing;    // closes nic-sched (kWqeFetch end)
  sim::Time dma_end = kMissing;      // closes dma-fetch
  sim::Time wire_end = kMissing;     // closes wire
  sim::Time deliver_end = kMissing;  // closes deliver
  sim::Time remote_t = kMissing;     // closes remote-cqe
  sim::Time end_t = kMissing;        // sender completion == end
  sim::Time doorbell_dur = 0;        // reserved service inside nic-sched
  sim::Time fetch_dur = 0;

  for (const Record& r : chain) {
    w.span = r.span;
    w.tenant = std::max(w.tenant, r.tenant);
    if (all_min == kMissing || r.t < all_min) all_min = r.t;
    switch (r.point) {
      case Point::kVerbsPostSend:
        if (post_min == kMissing || r.t < post_min) {
          post_min = r.t;
          w.qpn = r.qpn;
          w.src_node = r.node;
          w.bytes = r.arg;
          w.opcode = r.aux;
        }
        break;
      case Point::kSyscallEnter:
        syscall_t = std::max(syscall_t, r.t);
        break;
      case Point::kWqePost:
        wqe_post_t = std::max(wqe_post_t, r.t);
        if (wqe_min == kMissing || r.t < wqe_min) wqe_min = r.t;
        if (post_min == kMissing) {  // NIC-only chain: adopt identity here
          w.qpn = r.qpn;
          w.src_node = r.node;
          w.bytes = r.arg;
        }
        break;
      case Point::kDoorbell:
        doorbell_dur = r.dur;
        break;
      case Point::kWqeFetch:
        if (r.t + r.dur > sched_end) {
          sched_end = r.t + r.dur;
          fetch_dur = r.dur;
        }
        break;
      case Point::kDmaFetch:
        dma_end = std::max(dma_end, r.t + r.dur);
        break;
      case Point::kWireTx:
        wire_end = std::max(wire_end, r.t + r.dur);
        break;
      case Point::kDmaDeliver:
        deliver_end = std::max(deliver_end, r.t + r.dur);
        w.dst_node = r.node;
        break;
      case Point::kCompletion:
        if (r.aux == 0) {  // sender/TX completion: the chain's end
          if (r.t >= end_t) {
            end_t = r.t;
            w.status = static_cast<std::uint32_t>(r.arg);
          }
        } else {  // receiver/RX completion
          remote_t = std::max(remote_t, r.t);
          w.dst_node = r.node;
        }
        break;
      default:
        break;
    }
  }
  if (end_t == kMissing) return std::nullopt;  // chain not complete
  const sim::Time anchor =
      post_min != kMissing ? post_min
                           : (wqe_min != kMissing ? wqe_min : all_min);
  if (anchor == kMissing || end_t < anchor) return std::nullopt;
  w.post_t = anchor;
  w.end_t = end_t;

  // In bypass mode the verbs library drives the NIC directly: there is no
  // syscall milestone, so user-space work runs all the way to the WQE
  // post and the kernel stage collapses to zero.
  const std::array<sim::Time, kStageCount> closes = {
      syscall_t != kMissing ? syscall_t : wqe_post_t,  // user-post
      wqe_post_t,                                      // kernel
      sched_end,                                       // nic-sched
      dma_end,                                         // dma-fetch
      wire_end,                                        // wire
      deliver_end,                                     // deliver
      remote_t,                                        // remote-cqe
      end_t,                                           // ack (always ends)
  };
  // Monotone clamp onto [anchor, end]: missing milestones collapse to
  // zero width, out-of-order ones are absorbed by the later stage, and
  // the widths telescope to end - anchor exactly.
  sim::Time cur = anchor;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const sim::Time raw = closes[i];
    const sim::Time eff =
        raw == kMissing ? cur : std::clamp(raw, cur, end_t);
    w.stages[i].span = eff - cur;
    w.stages[i].service = w.stages[i].span;
    cur = eff;
  }
  // Service/queue split for the NIC scheduling stage: the doorbell MMIO
  // and the reserved WQE-processing slot are service; the remainder is SQ
  // residency + pipeline queueing (under deep tx_depth this is where the
  // wait shows up). Doorbell-coalesced posts carry no kDoorbell record —
  // their ride on an in-flight burst is queueing, which falls out of the
  // arithmetic naturally.
  StageSlice& sched = w.stages[static_cast<std::size_t>(Stage::kNicSched)];
  sched.service = std::min(sched.span, doorbell_dur + fetch_dur);
  sched.queue = sched.span - sched.service;
  return w;
}

std::vector<Waterfall> build_waterfalls(std::span<const Record> records) {
  std::unordered_map<std::uint32_t, std::vector<Record>> chains;
  for (const Record& r : records) {
    if (r.span != 0) chains[r.span].push_back(r);
  }
  std::vector<Waterfall> out;
  out.reserve(chains.size());
  for (const auto& [span, chain] : chains) {
    if (auto w = build_waterfall(chain)) out.push_back(*w);
  }
  std::sort(out.begin(), out.end(), waterfall_before);
  return out;
}

void CriticalPath::add(const Waterfall& w) {
  for (std::size_t i = 0; i < kStageCount; ++i) {
    stage_span[i] += w.stages[i].span;
    stage_service[i] += w.stages[i].service;
    stage_queue[i] += w.stages[i].queue;
  }
  binding[static_cast<std::size_t>(w.binding())]++;
  total_e2e += w.e2e();
  spans++;
}

Stage CriticalPath::dominant() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < kStageCount; ++i) {
    if (stage_span[i] > stage_span[best]) best = i;
  }
  return static_cast<Stage>(best);
}

CriticalPath critical_path(std::span<const Waterfall> waterfalls) {
  CriticalPath cp;
  for (const Waterfall& w : waterfalls) cp.add(w);
  return cp;
}

std::string waterfall_text(const Waterfall& w) {
  std::string out;
  appendf(out, "e2e %.3f us  qpn 0x%x  tenant %u  %llu B  op %u  node %u",
          us(w.e2e()), w.qpn, w.tenant,
          static_cast<unsigned long long>(w.bytes),
          static_cast<unsigned>(w.opcode),
          static_cast<unsigned>(w.src_node));
  if (w.dst_node != w.src_node) {
    appendf(out, " -> %u", static_cast<unsigned>(w.dst_node));
  }
  out += '\n';
  constexpr int kBarWidth = 32;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const StageSlice& s = w.stages[i];
    if (s.span == 0) continue;
    // Integer bar arithmetic: deterministic across platforms.
    const int bar = w.e2e() > 0
                        ? static_cast<int>((s.span * kBarWidth) / w.e2e())
                        : 0;
    const std::string_view name = stage_name(static_cast<Stage>(i));
    appendf(out, "  %-10.*s %9.3f us %5.1f%%  svc %9.3f  q %9.3f  |",
            static_cast<int>(name.size()), name.data(), us(s.span),
            pct(s.span, w.e2e()), us(s.service), us(s.queue));
    out.append(static_cast<std::size_t>(bar), '#');
    out += '\n';
  }
  return out;
}

std::string critical_path_report(const CriticalPath& cp,
                                 const sim::ShardStats* sync) {
  std::string out;
  if (cp.spans == 0) {
    out = "critical-path: no completed spans\n";
  } else {
    const std::string_view dom = stage_name(cp.dominant());
    appendf(out,
            "critical-path: %llu spans, total e2e %.3f us, mean %.3f us, "
            "dominant stage %.*s\n",
            static_cast<unsigned long long>(cp.spans), us(cp.total_e2e),
            us(cp.total_e2e) / static_cast<double>(cp.spans),
            static_cast<int>(dom.size()), dom.data());
    appendf(out, "  %-10s %8s %12s %12s %12s %s\n", "stage", "share",
            "total(us)", "svc(us)", "queue(us)", "binding");
    for (std::size_t i = 0; i < kStageCount; ++i) {
      if (cp.stage_span[i] == 0 && cp.binding[i] == 0) continue;
      const std::string_view name = stage_name(static_cast<Stage>(i));
      appendf(out, "  %-10.*s %7.1f%% %12.3f %12.3f %12.3f %llu (%.1f%%)\n",
              static_cast<int>(name.size()), name.data(),
              pct(cp.stage_span[i], cp.total_e2e), us(cp.stage_span[i]),
              us(cp.stage_service[i]), us(cp.stage_queue[i]),
              static_cast<unsigned long long>(cp.binding[i]),
              100.0 * static_cast<double>(cp.binding[i]) /
                  static_cast<double>(cp.spans));
    }
  }
  if (sync != nullptr && !sync->barrier_wait_ns.empty()) {
    // Wall-clock currency (host nanoseconds, not virtual time): how long
    // each shard sat idle at window-edge barriers. Kept in its own
    // section so the virtual-time stage table above stays shard-count
    // invariant.
    std::uint64_t total_ns = 0;
    for (std::uint64_t ns : sync->barrier_wait_ns) total_ns += ns;
    std::uint64_t waits = 0;
    for (std::uint64_t n : sync->barrier_waits) waits += n;
    appendf(out,
            "  shard-sync (wall clock): %.3f ms barrier idle across %llu "
            "shards, %llu waits, %llu windows\n",
            static_cast<double>(total_ns) / 1e6,
            static_cast<unsigned long long>(sync->barrier_wait_ns.size()),
            static_cast<unsigned long long>(waits),
            static_cast<unsigned long long>(sync->windows));
    if (sync->speculative) {
      // Companion section for the optimistic sync mode: how much work ran
      // ahead of the conservative edge, and how much of it was wasted.
      // Reads together with the barrier-idle line above — speculation
      // trades journal/rollback work for fewer, shorter barrier waits.
      const double waste =
          sync->journaled_effects == 0
              ? 0.0
              : 100.0 * static_cast<double>(sync->rolled_back_events) /
                    static_cast<double>(sync->journaled_effects);
      appendf(out,
              "  shard-spec: %llu dispatches journaled past the edge, "
              "%llu rollbacks undoing %llu (%.1f%% wasted), %llu messages "
              "cancelled, max depth %llu\n",
              static_cast<unsigned long long>(sync->journaled_effects),
              static_cast<unsigned long long>(sync->rollbacks),
              static_cast<unsigned long long>(sync->rolled_back_events), waste,
              static_cast<unsigned long long>(sync->cancelled_messages),
              static_cast<unsigned long long>(sync->max_speculation_depth));
    }
  }
  return out;
}

}  // namespace cord::trace::causal
