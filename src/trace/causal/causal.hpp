// cord::trace::causal — causal latency attribution over span chains.
//
// The tracer (trace/trace.hpp) emits one span-correlated record per
// pipeline stage of a work request: post → syscall → policy → WQE post →
// doorbell → fetch → DMA → wire → deliver → remote CQE → sender CQE.
// This module reconstructs each WR's event chain and folds it into a
// *latency waterfall*: an ordered list of stage durations that provably
// sum to the end-to-end latency.
//
// Conservation by construction: every stage is delimited by two
// milestones on one monotone timeline from the post anchor to the sender
// completion. A stage's duration is `close(i) - close(i-1)` after
// clamping each close time into [previous close, end], so the durations
// telescope — their sum is exactly `end - anchor`, bit-exact in integer
// picoseconds, for every chain (including chains with missing stages,
// which collapse to zero width, and retried chains, where the *last*
// occurrence of a milestone closes its stage).
//
// Service vs queueing: the NIC plumbs its resource-reservation durations
// into the records (kDoorbell.dur = MMIO latency, kWqeFetch.dur = the
// reserved WQE-processing slot, kDmaFetch.dur = the summed PCIe
// occupancy of the payload's chunks). The nic-sched stage — where SQ
// residency and pipeline contention live — is split exactly into that
// reserved service time and the queueing remainder. Stages that are pure
// reserved occupancy (DMA, wire, deliver) report their whole width as
// service; contention there shows up as inflated occupancy at chunk
// granularity (see DESIGN.md §16).
//
// Determinism: waterfalls are pure functions of the record multiset and
// are ordered by content (never by span id, which is a per-tracer
// counter), so analysis output is identical across shard counts and
// event-queue backends.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sim/units.hpp"
#include "trace/trace.hpp"

namespace cord::sim {
struct ShardStats;
}

namespace cord::trace::causal {

/// Waterfall stages, in causal order. Every completed WR's end-to-end
/// latency is partitioned across exactly these stages.
enum class Stage : std::uint8_t {
  kUserPost,   ///< verbs library work in user space (post → syscall entry;
               ///< in bypass mode: post → WQE reaches the NIC)
  kKernel,     ///< syscall crossing + policy chain + kernel driver
               ///< (CoRD mode only; zero width in bypass)
  kNicSched,   ///< WQE post → processing done: doorbell MMIO, SQ
               ///< residency, pipeline queueing, WQE processing slot
  kDmaFetch,   ///< source-side PCIe DMA occupancy of the payload
  kWire,       ///< residual DMA pipelining + serialization + propagation
               ///< up to the last chunk leaving the wire
  kDeliver,    ///< destination-side PCIe DMA into the user buffer
  kRemoteCqe,  ///< receive processing until the responder's CQE is written
  kAck,        ///< ACK/response return until the sender's CQE is written
  kCount
};
inline constexpr std::size_t kStageCount =
    static_cast<std::size_t>(Stage::kCount);

std::string_view stage_name(Stage s);

/// One stage's share of a waterfall. span == service + queue always.
struct StageSlice {
  sim::Time span = 0;     ///< total width on the e2e timeline
  sim::Time service = 0;  ///< reserved/working time
  sim::Time queue = 0;    ///< waiting for a contended resource
};

/// The exact latency breakdown of one completed work request.
struct Waterfall {
  std::uint32_t span = 0;    ///< correlation id (per-tracer; NOT stable
                             ///< across shard counts — never order by it)
  std::uint32_t qpn = 0;
  std::uint32_t tenant = 0;
  std::uint8_t src_node = 0;
  std::uint8_t dst_node = 0;
  std::uint16_t opcode = 0;  ///< nic::Opcode as posted (kVerbsPostSend.aux)
  std::uint32_t status = 0;  ///< sender WcStatus (kCompletion.arg)
  std::uint64_t bytes = 0;
  sim::Time post_t = 0;  ///< anchor: the verbs post (or first record)
  sim::Time end_t = 0;   ///< sender-side CQE write
  std::array<StageSlice, kStageCount> stages{};

  sim::Time e2e() const { return end_t - post_t; }
  /// Sum of stage widths. Equals e2e() for every built waterfall — the
  /// conservation invariant the tests assert bit-exactly.
  sim::Time stage_sum() const {
    sim::Time s = 0;
    for (const StageSlice& st : stages) s += st.span;
    return s;
  }
  const StageSlice& operator[](Stage s) const {
    return stages[static_cast<std::size_t>(s)];
  }
  /// The stage that bounds this WR's latency (largest width; ties go to
  /// the earliest stage). This is what the watchdog blames.
  Stage binding() const;
};

/// Shard-invariant content ordering (every field except the span id).
bool waterfall_before(const Waterfall& a, const Waterfall& b);

/// Build the waterfall of one span's records (any order; all records must
/// share one span id). Returns nullopt for incomplete chains — a chain is
/// complete once its sender-side completion (kCompletion, aux == 0) is
/// present.
std::optional<Waterfall> build_waterfall(std::span<const Record> chain);

/// Group a record stream by span and build every completed chain's
/// waterfall, ordered by content (waterfall_before) — identical output
/// for the same simulation at any shard count or queue backend.
std::vector<Waterfall> build_waterfalls(std::span<const Record> records);

/// Aggregated critical-path view over a set of waterfalls: per-stage
/// total widths and how often each stage was the binding one.
struct CriticalPath {
  std::array<sim::Time, kStageCount> stage_span{};
  std::array<sim::Time, kStageCount> stage_service{};
  std::array<sim::Time, kStageCount> stage_queue{};
  std::array<std::uint64_t, kStageCount> binding{};  ///< WRs bound per stage
  sim::Time total_e2e = 0;
  std::uint64_t spans = 0;

  void add(const Waterfall& w);
  /// The stage carrying the largest total width (ties → earliest stage).
  Stage dominant() const;
};

CriticalPath critical_path(std::span<const Waterfall> waterfalls);

/// Render one waterfall as aligned text rows (stage, width, service,
/// queue, share bar). Deliberately omits the span id so reports compare
/// equal across shard counts.
std::string waterfall_text(const Waterfall& w);

/// Stage-share + binding-stage summary. When `sync` is non-null a
/// wall-clock shard-synchronization section (barrier idle from the
/// sharded run's stats — a different currency than virtual time, kept
/// clearly apart) is appended; pass nullptr for shard-invariant output.
std::string critical_path_report(const CriticalPath& cp,
                                 const sim::ShardStats* sync = nullptr);

}  // namespace cord::trace::causal
