// Online, bounded-memory aggregation over causal waterfalls.
//
// The Aggregator ingests raw trace records incrementally, finalizes each
// span once its sender-side completion appears, and folds the resulting
// waterfall into:
//   * global + per-stage log-histograms (fixed 65-bucket memory each),
//   * per-tenant and per-QP log-histograms,
//   * a top-K slowest-span reservoir retaining *full* waterfalls for the
//     tail (the p99.9 question "which stage was it stuck in?" needs the
//     breakdown, not just the number),
//   * a running CriticalPath (per-stage totals + binding counts),
//   * a tail-latency watchdog: per-tenant pX-vs-SLO checks evaluated in
//     virtual time as each span completes, recording the causally-blamed
//     (binding) stage of every violating span.
//
// Memory is bounded everywhere: histograms are fixed arrays, the
// reservoir holds K waterfalls, watchdog events are capped (a counter
// keeps the true total), and the pending-span staging map is capped with
// deterministic eviction.
//
// Determinism: spans completed within one ingest batch are observed in
// content order (waterfall_before), so a whole-trace ingest produces
// identical aggregate state — and identical reports — for the same
// simulation at any shard count or queue backend.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "sim/stats.hpp"
#include "trace/causal/causal.hpp"

namespace cord::trace::causal {

/// A tenant's tail-latency SLO: fire once the tenant's observed
/// `percentile` of end-to-end latency exceeds `budget` (and the
/// triggering span itself is over budget, so one outlier cannot fire the
/// watchdog while the pX is still healthy).
struct SloConfig {
  double percentile = 99.0;
  sim::Time budget = 0;  ///< picoseconds; 0 disables the check
};

/// One watchdog firing, recorded at the violating span's completion time
/// (virtual time) with the causally-blamed stage.
struct WatchdogEvent {
  sim::Time at = 0;  ///< virtual time of the violating span's completion
  std::uint32_t tenant = 0;
  std::uint32_t qpn = 0;
  sim::Time e2e = 0;         ///< the violating span's end-to-end latency
  double observed_px = 0.0;  ///< the tenant's pX at firing time (ps)
  Stage blamed = Stage::kUserPost;  ///< binding stage of the span
};

class Aggregator {
 public:
  static constexpr std::size_t kDefaultTopK = 16;
  static constexpr std::size_t kMaxWatchdogEvents = 64;
  static constexpr std::size_t kMaxPendingSpans = 1u << 16;

  explicit Aggregator(std::size_t top_k = kDefaultTopK) : top_k_(top_k) {}

  /// Arm the watchdog for one tenant (overrides the default SLO).
  void set_slo(std::uint32_t tenant, SloConfig cfg) { slos_[tenant] = cfg; }
  /// Arm the watchdog for every tenant without a specific SLO.
  void set_default_slo(SloConfig cfg) {
    default_slo_ = cfg;
    has_default_slo_ = true;
  }

  /// Feed records (any subset of a stream, in stream order across calls).
  /// Spans are staged until their sender completion arrives, then built
  /// and observed. Safe to call repeatedly with successive stream slices.
  void ingest(std::span<const Record> records);
  /// Fold one already-built waterfall into the aggregates.
  void observe(const Waterfall& w);
  /// Drop all observations and staging. SLO configuration is kept.
  void clear();

  std::uint64_t spans() const { return critical_.spans; }
  const CriticalPath& critical() const { return critical_; }
  const sim::LogHistogram& e2e() const { return e2e_; }
  const sim::LogHistogram& stage(Stage s) const {
    return stage_[static_cast<std::size_t>(s)];
  }
  /// Per-tenant e2e histogram; nullptr if the tenant has no spans.
  const sim::LogHistogram* tenant_e2e(std::uint32_t tenant) const;
  /// Per-QP e2e histogram; nullptr if the QP has no spans.
  const sim::LogHistogram* qp_e2e(std::uint32_t qpn) const;
  /// Tenants with at least one completed span, ascending.
  std::vector<std::uint32_t> tenants() const;
  /// Slowest-first reservoir of full waterfalls (<= top_k entries).
  const std::vector<Waterfall>& slowest() const { return top_; }

  const std::vector<WatchdogEvent>& watchdog_events() const { return events_; }
  /// Total violations, including those beyond the retained-event cap.
  std::uint64_t watchdog_violations() const { return violations_; }
  std::uint64_t watchdog_violations(std::uint32_t tenant) const;
  bool watchdog_armed() const { return has_default_slo_ || !slos_.empty(); }

  /// Spans staged but not yet completed (and how many were evicted).
  std::size_t pending_spans() const { return pending_.size(); }
  std::uint64_t pending_evicted() const { return pending_evicted_; }

  // --- text reports (proc_read / cord-inspect surfaces) -----------------
  /// Global e2e percentiles + per-stage share/queue table (+ watchdog
  /// line when armed).
  std::string latency_report() const;
  /// One tenant's percentiles, stage table and violations. Empty string
  /// for tenants with no completed spans (proc_read convention).
  std::string tenant_report(std::uint32_t tenant) const;
  /// critical_path_report over everything observed, plus the slowest-span
  /// waterfalls. Shard-invariant unless `sync` is provided.
  std::string critpath_report(const sim::ShardStats* sync = nullptr) const;

 private:
  struct TenantStats {
    sim::LogHistogram e2e;
    std::array<sim::LogHistogram, kStageCount> stage{};
    std::uint64_t violations = 0;
  };

  const SloConfig* slo_for(std::uint32_t tenant) const;

  std::size_t top_k_;
  sim::LogHistogram e2e_;
  std::array<sim::LogHistogram, kStageCount> stage_{};
  // std::map throughout: deterministic iteration for reports, stable
  // addresses for returned pointers.
  std::map<std::uint32_t, TenantStats> tenants_;
  std::map<std::uint32_t, sim::LogHistogram> qps_;
  CriticalPath critical_;
  std::vector<Waterfall> top_;  ///< sorted slowest-first, size <= top_k_

  std::map<std::uint32_t, SloConfig> slos_;
  SloConfig default_slo_;
  bool has_default_slo_ = false;
  std::vector<WatchdogEvent> events_;
  std::uint64_t violations_ = 0;

  /// Staging: span id -> records seen so far (completed spans are built,
  /// observed and erased at the end of each ingest batch).
  std::map<std::uint32_t, std::vector<Record>> pending_;
  std::uint64_t pending_evicted_ = 0;
};

}  // namespace cord::trace::causal
