#include "trace/causal/aggregate.hpp"

#include <algorithm>
#include <cstdio>

namespace cord::trace::causal {

namespace {

void appendf(std::string& out, const char* fmt, auto... args) {
  char buf[256];
  const int n = std::snprintf(buf, sizeof buf, fmt, args...);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

double ps_to_us(double ps) { return ps / 1e6; }

/// Slowest-first reservoir order: e2e descending, content order on ties
/// (never span ids — the reservoir must be shard-count invariant).
bool slower(const Waterfall& a, const Waterfall& b) {
  if (a.e2e() != b.e2e()) return a.e2e() > b.e2e();
  return waterfall_before(a, b);
}

void append_percentiles(std::string& out, const sim::LogHistogram& h) {
  appendf(out,
          "p50=%.3f p90=%.3f p99=%.3f p99.9=%.3f max=%.3f us (mean %.3f)",
          ps_to_us(h.percentile(50.0)), ps_to_us(h.percentile(90.0)),
          ps_to_us(h.percentile(99.0)), ps_to_us(h.percentile(99.9)),
          static_cast<double>(h.max()) / 1e6, ps_to_us(h.mean()));
}

void append_stage_table(std::string& out, const CriticalPath& cp,
                        const std::array<sim::LogHistogram, kStageCount>* hists) {
  appendf(out, "  %-10s %8s %8s %12s\n", "stage", "share", "queue", "p99(us)");
  for (std::size_t i = 0; i < kStageCount; ++i) {
    if (cp.stage_span[i] == 0) continue;
    const std::string_view name = stage_name(static_cast<Stage>(i));
    const double share = cp.total_e2e > 0
                             ? 100.0 * static_cast<double>(cp.stage_span[i]) /
                                   static_cast<double>(cp.total_e2e)
                             : 0.0;
    const double queue_share =
        cp.stage_span[i] > 0
            ? 100.0 * static_cast<double>(cp.stage_queue[i]) /
                  static_cast<double>(cp.stage_span[i])
            : 0.0;
    const double p99 =
        hists != nullptr ? ps_to_us((*hists)[i].percentile(99.0)) : 0.0;
    appendf(out, "  %-10.*s %7.1f%% %7.1f%% %12.3f\n",
            static_cast<int>(name.size()), name.data(), share, queue_share,
            p99);
  }
}

}  // namespace

void Aggregator::ingest(std::span<const Record> records) {
  // Stage 1: append WR-scoped records to their span's pending chain.
  for (const Record& r : records) {
    if (r.span == 0) continue;
    auto [it, inserted] = pending_.try_emplace(r.span);
    it->second.push_back(r);
    if (inserted && pending_.size() > kMaxPendingSpans) {
      // Bounded staging: evict the lowest span id (deterministic; old
      // ids are the spans least likely to still complete).
      pending_.erase(pending_.begin());
      ++pending_evicted_;
    }
  }
  // Stage 2: finalize every chain whose sender completion has arrived.
  // Completed waterfalls are observed in content order, so one-shot
  // whole-trace ingests are shard-count and backend invariant.
  std::vector<Waterfall> done;
  std::vector<std::uint32_t> done_spans;
  for (const auto& [span, chain] : pending_) {
    const bool complete = std::any_of(
        chain.begin(), chain.end(), [](const Record& r) {
          return r.point == Point::kCompletion && r.aux == 0;
        });
    if (!complete) continue;
    if (auto w = build_waterfall(chain)) done.push_back(*w);
    done_spans.push_back(span);
  }
  for (std::uint32_t span : done_spans) pending_.erase(span);
  std::sort(done.begin(), done.end(), waterfall_before);
  for (const Waterfall& w : done) observe(w);
}

void Aggregator::observe(const Waterfall& w) {
  const std::uint64_t e2e = static_cast<std::uint64_t>(w.e2e());
  e2e_.add(e2e);
  TenantStats& ts = tenants_[w.tenant];
  ts.e2e.add(e2e);
  qps_[w.qpn].add(e2e);
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const std::uint64_t span = static_cast<std::uint64_t>(w.stages[i].span);
    stage_[i].add(span);
    ts.stage[i].add(span);
  }
  critical_.add(w);
  // Top-K slowest reservoir (full waterfalls for the tail).
  if (top_k_ > 0) {
    const auto pos = std::upper_bound(top_.begin(), top_.end(), w, slower);
    if (pos != top_.end() || top_.size() < top_k_) {
      top_.insert(pos, w);
      if (top_.size() > top_k_) top_.pop_back();
    }
  }
  // Tail-latency watchdog: evaluated online at the span's (virtual)
  // completion time, after folding the span into the tenant's histogram.
  const SloConfig* slo = slo_for(w.tenant);
  if (slo != nullptr && slo->budget > 0) {
    const double px = ts.e2e.percentile(slo->percentile);
    if (px > static_cast<double>(slo->budget) && w.e2e() > slo->budget) {
      ++violations_;
      ++ts.violations;
      if (events_.size() < kMaxWatchdogEvents) {
        events_.push_back(WatchdogEvent{w.end_t, w.tenant, w.qpn, w.e2e(),
                                        px, w.binding()});
      }
    }
  }
}

void Aggregator::clear() {
  e2e_ = {};
  stage_ = {};
  tenants_.clear();
  qps_.clear();
  critical_ = {};
  top_.clear();
  events_.clear();
  violations_ = 0;
  pending_.clear();
  pending_evicted_ = 0;
}

const sim::LogHistogram* Aggregator::tenant_e2e(std::uint32_t tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : &it->second.e2e;
}

const sim::LogHistogram* Aggregator::qp_e2e(std::uint32_t qpn) const {
  const auto it = qps_.find(qpn);
  return it == qps_.end() ? nullptr : &it->second;
}

std::vector<std::uint32_t> Aggregator::tenants() const {
  std::vector<std::uint32_t> out;
  out.reserve(tenants_.size());
  for (const auto& [id, ts] : tenants_) out.push_back(id);
  return out;
}

std::uint64_t Aggregator::watchdog_violations(std::uint32_t tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.violations;
}

const SloConfig* Aggregator::slo_for(std::uint32_t tenant) const {
  const auto it = slos_.find(tenant);
  if (it != slos_.end()) return &it->second;
  return has_default_slo_ ? &default_slo_ : nullptr;
}

std::string Aggregator::latency_report() const {
  std::string out;
  if (spans() == 0) {
    out = "latency: no completed spans\n";
    return out;
  }
  appendf(out, "latency: spans=%llu e2e ",
          static_cast<unsigned long long>(spans()));
  append_percentiles(out, e2e_);
  out += '\n';
  append_stage_table(out, critical_, &stage_);
  out += "  tenants:";
  for (std::uint32_t t : tenants()) appendf(out, " %u", t);
  out += '\n';
  if (watchdog_armed()) {
    appendf(out, "  watchdog: violations=%llu (events retained=%zu)\n",
            static_cast<unsigned long long>(violations_), events_.size());
  }
  return out;
}

std::string Aggregator::tenant_report(std::uint32_t tenant) const {
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return {};
  const TenantStats& ts = it->second;
  std::string out;
  appendf(out, "tenant %u: spans=%llu e2e ", tenant,
          static_cast<unsigned long long>(ts.e2e.count()));
  append_percentiles(out, ts.e2e);
  out += '\n';
  // Per-tenant stage shares from the tenant's own histograms.
  CriticalPath cp;
  cp.spans = ts.e2e.count();
  cp.total_e2e = static_cast<sim::Time>(ts.e2e.sum());
  for (std::size_t i = 0; i < kStageCount; ++i) {
    cp.stage_span[i] = static_cast<sim::Time>(ts.stage[i].sum());
  }
  append_stage_table(out, cp, &ts.stage);
  if (const SloConfig* slo = slo_for(tenant); slo != nullptr &&
                                              slo->budget > 0) {
    appendf(out, "  watchdog: slo p%.1f <= %.3f us, violations=%llu\n",
            slo->percentile, static_cast<double>(slo->budget) / 1e6,
            static_cast<unsigned long long>(ts.violations));
  }
  return out;
}

std::string Aggregator::critpath_report(const sim::ShardStats* sync) const {
  std::string out = critical_path_report(critical_, sync);
  if (!top_.empty()) {
    appendf(out, "slowest %zu spans:\n", top_.size());
    std::size_t rank = 1;
    for (const Waterfall& w : top_) {
      appendf(out, " #%zu ", rank++);
      out += waterfall_text(w);
    }
  }
  if (!events_.empty()) {
    appendf(out, "watchdog events (%llu total):\n",
            static_cast<unsigned long long>(violations_));
    for (const WatchdogEvent& e : events_) {
      const std::string_view blamed = stage_name(e.blamed);
      appendf(out,
              "  t=%.3f us tenant=%u qpn=0x%x e2e=%.3f us px=%.3f us "
              "blamed=%.*s\n",
              static_cast<double>(e.at) / 1e6, e.tenant, e.qpn,
              static_cast<double>(e.e2e) / 1e6, ps_to_us(e.observed_px),
              static_cast<int>(blamed.size()), blamed.data());
    }
  }
  return out;
}

}  // namespace cord::trace::causal
