#include "trace/flame.hpp"

#include <algorithm>
#include <map>

namespace cord::trace {

namespace {

const char* unit_name(FlameEntry::Unit u) {
  switch (u) {
    case FlameEntry::Unit::kVirtualPs: return "virtual_ps";
    case FlameEntry::Unit::kSamples: return "samples";
    case FlameEntry::Unit::kWallNs: return "wall_ns";
  }
  return "?";
}

}  // namespace

FlameView build_flame(const std::vector<std::vector<Record>>& per_shard,
                      const sim::ShardStats* sync) {
  FlameView v;
  std::map<std::pair<std::string, FlameEntry::Unit>, std::uint64_t> agg;
  for (std::size_t shard = 0; shard < per_shard.size(); ++shard) {
    const std::string prefix = "shard" + std::to_string(shard) + ";";
    for (const Record& r : per_shard[shard]) {
      const std::string stack = prefix + std::string(category(r.point)) + ";" +
                                std::string(to_string(r.point));
      if (r.dur > 0) {
        agg[{stack, FlameEntry::Unit::kVirtualPs}] +=
            static_cast<std::uint64_t>(r.dur);
        v.total_virtual_ps += static_cast<std::uint64_t>(r.dur);
      } else {
        agg[{stack, FlameEntry::Unit::kSamples}] += 1;
        v.total_samples += 1;
      }
    }
    if (sync != nullptr && shard < sync->barrier_wait_ns.size() &&
        sync->barrier_wait_ns[shard] > 0) {
      agg[{prefix + "sync;barrier_idle", FlameEntry::Unit::kWallNs}] +=
          sync->barrier_wait_ns[shard];
      v.total_barrier_wall_ns += sync->barrier_wait_ns[shard];
    }
  }
  v.entries.reserve(agg.size());
  for (const auto& [key, weight] : agg) {
    v.entries.push_back(FlameEntry{key.first, weight, key.second});
  }
  return v;
}

std::string flame_folded(const FlameView& v) {
  std::string out;
  for (const FlameEntry& e : v.entries) {
    out += e.stack;
    out += ' ';
    out += std::to_string(e.weight);
    out += '\n';
  }
  return out;
}

std::string render_flame(const FlameView& v, std::size_t width) {
  std::string out;
  const FlameEntry::Unit units[] = {FlameEntry::Unit::kVirtualPs,
                                    FlameEntry::Unit::kSamples,
                                    FlameEntry::Unit::kWallNs};
  for (FlameEntry::Unit u : units) {
    std::uint64_t max_w = 0;
    std::size_t max_stack = 0;
    for (const FlameEntry& e : v.entries) {
      if (e.unit != u) continue;
      max_w = std::max(max_w, e.weight);
      max_stack = std::max(max_stack, e.stack.size());
    }
    if (max_w == 0) continue;
    out += "== ";
    out += unit_name(u);
    out += " ==\n";
    for (const FlameEntry& e : v.entries) {
      if (e.unit != u) continue;
      const auto bar = static_cast<std::size_t>(
          static_cast<double>(e.weight) / static_cast<double>(max_w) *
          static_cast<double>(width));
      out += e.stack;
      out.append(max_stack - e.stack.size() + 2, ' ');
      out.append(std::max<std::size_t>(bar, 1), '#');
      out += ' ';
      out += std::to_string(e.weight);
      out += '\n';
    }
  }
  return out;
}

void write_flame_csv(std::FILE* f, const FlameView& v) {
  std::fprintf(f, "stack,unit,weight\n");
  for (const FlameEntry& e : v.entries) {
    std::fprintf(f, "%s,%s,%llu\n", e.stack.c_str(), unit_name(e.unit),
                 static_cast<unsigned long long>(e.weight));
  }
}

}  // namespace cord::trace
