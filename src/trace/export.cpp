#include "trace/export.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <tuple>
#include <unordered_map>

namespace cord::trace {

namespace {

/// Strict integer parse: the whole field must be a number.
template <typename T>
bool parse_int(std::string_view s, T& v) {
  const auto r = std::from_chars(s.data(), s.data() + s.size(), v);
  return r.ec == std::errc{} && r.ptr == s.data() + s.size();
}

/// Exact inverse of the "%.6f" microsecond encoding: split at the decimal
/// point and recombine as integer picoseconds (no floating point, so no
/// rounding anywhere).
bool parse_us_to_ps(std::string_view s, sim::Time& out) {
  const std::size_t dot = s.find('.');
  std::int64_t whole = 0;
  if (!parse_int(s.substr(0, dot), whole)) return false;
  std::int64_t frac = 0;
  if (dot != std::string_view::npos) {
    const std::string_view fs = s.substr(dot + 1);
    if (fs.size() > 6 || !parse_int(fs, frac)) return false;
    for (std::size_t i = fs.size(); i < 6; ++i) frac *= 10;
  }
  out = whole * 1'000'000 + frac;
  return true;
}

/// Value of `key` (e.g. "\"ts\":") inside one JSON event object written
/// by write_event; values run to the next ',' or '}'.
bool find_field(std::string_view obj, std::string_view key,
                std::string_view& val) {
  const std::size_t p = obj.find(key);
  if (p == std::string_view::npos) return false;
  const std::size_t start = p + key.size();
  std::size_t end = start;
  while (end < obj.size() && obj[end] != ',' && obj[end] != '}') ++end;
  val = obj.substr(start, end - start);
  return true;
}

void write_event(std::FILE* f, const Record& r, bool first) {
  // Chrome's ts/dur unit is microseconds; virtual time is picoseconds.
  const double ts_us = static_cast<double>(r.t) / 1e6;
  const double dur_us = static_cast<double>(r.dur) / 1e6;
  const std::string_view name = to_string(r.point);
  const std::string_view cat = category(r.point);
  if (!first) std::fputs(",\n", f);
  if (r.dur > 0) {
    std::fprintf(f,
                 "{\"name\":\"%.*s\",\"cat\":\"%.*s\",\"ph\":\"X\","
                 "\"ts\":%.6f,\"dur\":%.6f,\"pid\":%u,\"tid\":%u,",
                 static_cast<int>(name.size()), name.data(),
                 static_cast<int>(cat.size()), cat.data(), ts_us, dur_us,
                 static_cast<unsigned>(r.node), r.qpn);
  } else {
    std::fprintf(f,
                 "{\"name\":\"%.*s\",\"cat\":\"%.*s\",\"ph\":\"i\","
                 "\"s\":\"t\",\"ts\":%.6f,\"pid\":%u,\"tid\":%u,",
                 static_cast<int>(name.size()), name.data(),
                 static_cast<int>(cat.size()), cat.data(), ts_us,
                 static_cast<unsigned>(r.node), r.qpn);
  }
  std::fprintf(f,
               "\"args\":{\"span\":%u,\"tenant\":%u,\"arg\":%llu,\"aux\":%u}}",
               r.span, r.tenant, static_cast<unsigned long long>(r.arg),
               static_cast<unsigned>(r.aux));
}

}  // namespace

void write_chrome_trace(std::FILE* f, std::span<const Record> records) {
  std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n", f);
  bool first = true;
  for (const Record& r : records) {
    write_event(f, r, first);
    first = false;
  }
  std::fputs("\n]}\n", f);
}

std::string chrome_trace_json(std::span<const Record> records) {
  // Render through a tmpfile so the FILE*-based writer is the single
  // formatting implementation.
  std::FILE* f = std::tmpfile();
  if (f == nullptr) return {};
  write_chrome_trace(f, records);
  const long len = std::ftell(f);
  std::string out(static_cast<std::size_t>(len), '\0');
  std::rewind(f);
  const std::size_t got = std::fread(out.data(), 1, out.size(), f);
  out.resize(got);
  std::fclose(f);
  return out;
}

bool write_chrome_trace_file(const char* path,
                             std::span<const Record> records) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  write_chrome_trace(f, records);
  std::fclose(f);
  return true;
}

void write_records_csv(std::FILE* f, std::span<const Record> records) {
  std::fprintf(f, "t_ps,dur_ps,point,span,qpn,tenant,node,arg,aux\n");
  for (const Record& r : records) {
    const std::string_view name = to_string(r.point);
    std::fprintf(f, "%lld,%lld,%.*s,%u,%u,%u,%u,%llu,%u\n",
                 static_cast<long long>(r.t), static_cast<long long>(r.dur),
                 static_cast<int>(name.size()), name.data(), r.span, r.qpn,
                 r.tenant, static_cast<unsigned>(r.node),
                 static_cast<unsigned long long>(r.arg),
                 static_cast<unsigned>(r.aux));
  }
}

std::string records_csv(std::span<const Record> records) {
  std::FILE* f = std::tmpfile();
  if (f == nullptr) return {};
  write_records_csv(f, records);
  const long len = std::ftell(f);
  std::string out(static_cast<std::size_t>(len), '\0');
  std::rewind(f);
  const std::size_t got = std::fread(out.data(), 1, out.size(), f);
  out.resize(got);
  std::fclose(f);
  return out;
}

bool write_records_csv_file(const char* path,
                            std::span<const Record> records) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  write_records_csv(f, records);
  std::fclose(f);
  return true;
}

std::vector<Record> parse_records_csv(std::string_view text) {
  std::vector<Record> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::size_t len =
        (eol == std::string_view::npos ? text.size() : eol) - pos;
    const std::string_view line = text.substr(pos, len);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    if (line.empty() || line.starts_with("t_ps")) continue;
    // t_ps,dur_ps,point,span,qpn,tenant,node,arg,aux
    std::array<std::string_view, 9> field;
    std::size_t start = 0;
    bool shape_ok = true;
    for (std::size_t i = 0; i < field.size(); ++i) {
      if (i + 1 == field.size()) {
        field[i] = line.substr(start);
        break;
      }
      const std::size_t comma = line.find(',', start);
      if (comma == std::string_view::npos) {
        shape_ok = false;
        break;
      }
      field[i] = line.substr(start, comma - start);
      start = comma + 1;
    }
    if (!shape_ok) continue;
    Record r;
    std::uint32_t node = 0, aux = 0;
    const bool ok = parse_int(field[0], r.t) && parse_int(field[1], r.dur) &&
                    parse_int(field[3], r.span) &&
                    parse_int(field[4], r.qpn) &&
                    parse_int(field[5], r.tenant) &&
                    parse_int(field[6], node) && node <= 0xFF &&
                    parse_int(field[7], r.arg) &&
                    parse_int(field[8], aux) && aux <= 0xFFFF;
    r.point = point_from_name(field[2]);
    if (!ok || r.point == Point::kCount) continue;
    r.node = static_cast<std::uint8_t>(node);
    r.aux = static_cast<std::uint16_t>(aux);
    out.push_back(r);
  }
  return out;
}

std::vector<Record> parse_chrome_trace(std::string_view json) {
  std::vector<Record> out;
  static constexpr std::string_view kOpen = "{\"name\":\"";
  std::size_t pos = 0;
  while ((pos = json.find(kOpen, pos)) != std::string_view::npos) {
    // Every write_event object ends with the args sub-object: "...}}".
    const std::size_t close = json.find("}}", pos);
    if (close == std::string_view::npos) break;
    const std::string_view obj = json.substr(pos, close + 2 - pos);
    pos = close + 2;
    const std::size_t name_end = obj.find('"', kOpen.size());
    if (name_end == std::string_view::npos) continue;
    Record r;
    r.point = point_from_name(obj.substr(kOpen.size(), name_end - kOpen.size()));
    if (r.point == Point::kCount) continue;
    std::string_view v;
    std::uint32_t node = 0, aux = 0;
    bool ok = find_field(obj, "\"ts\":", v) && parse_us_to_ps(v, r.t) &&
              find_field(obj, "\"pid\":", v) && parse_int(v, node) &&
              node <= 0xFF && find_field(obj, "\"tid\":", v) &&
              parse_int(v, r.qpn) && find_field(obj, "\"span\":", v) &&
              parse_int(v, r.span) && find_field(obj, "\"tenant\":", v) &&
              parse_int(v, r.tenant) && find_field(obj, "\"arg\":", v) &&
              parse_int(v, r.arg) && find_field(obj, "\"aux\":", v) &&
              parse_int(v, aux) && aux <= 0xFFFF;
    if (find_field(obj, "\"dur\":", v)) ok = ok && parse_us_to_ps(v, r.dur);
    if (!ok) continue;
    r.node = static_cast<std::uint8_t>(node);
    r.aux = static_cast<std::uint16_t>(aux);
    out.push_back(r);
  }
  return out;
}

std::vector<Record> merge_by_time(std::vector<std::vector<Record>> streams) {
  std::vector<Record> out;
  std::size_t total = 0;
  for (const auto& s : streams) total += s.size();
  out.reserve(total);
  for (auto& s : streams) out.insert(out.end(), s.begin(), s.end());
  std::stable_sort(out.begin(), out.end(),
                   [](const Record& a, const Record& b) { return a.t < b.t; });
  return out;
}

std::vector<Record> canonical_trace(std::vector<Record> records) {
  // Field-wise key ignoring span: the span id is a per-tracer counter, so
  // runs with different shard counts assign different ids to the same
  // logical work request.
  using Key = std::tuple<sim::Time, std::uint8_t, std::uint8_t, std::uint32_t,
                         std::uint32_t, std::uint64_t, sim::Time,
                         std::uint16_t>;
  const auto key = [](const Record& r) {
    return Key{r.t, r.node, static_cast<std::uint8_t>(r.point),
               r.qpn, r.tenant, r.arg, r.dur, r.aux};
  };
  // Renumber spans by the *contents* of their chains, not by raw id: each
  // span maps to the sorted multiset of its records' keys, chains are
  // ordered lexicographically by that signature, and ids are assigned in
  // that order. Chains with identical signatures are interchangeable, so
  // any tie-break yields the same bytes.
  std::unordered_map<std::uint32_t, std::vector<Key>> sig;
  for (const Record& r : records) {
    if (r.span != 0) sig[r.span].push_back(key(r));
  }
  std::vector<std::pair<std::uint32_t, const std::vector<Key>*>> chains;
  chains.reserve(sig.size());
  for (auto& [span, keys] : sig) {
    std::sort(keys.begin(), keys.end());
    chains.emplace_back(span, &keys);
  }
  std::sort(chains.begin(), chains.end(),
            [](const auto& a, const auto& b) { return *a.second < *b.second; });
  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  remap.reserve(chains.size());
  std::uint32_t next = 1;
  for (const auto& [span, keys] : chains) remap[span] = next++;
  for (Record& r : records) {
    if (r.span != 0) r.span = remap[r.span];  // 0 = not WR-scoped, keep
  }
  // Total order over every field makes the byte stream a pure function of
  // the record multiset.
  std::sort(records.begin(), records.end(),
            [&](const Record& a, const Record& b) {
              return std::make_tuple(key(a), a.span) <
                     std::make_tuple(key(b), b.span);
            });
  return records;
}

}  // namespace cord::trace
