#include "trace/export.hpp"

#include <algorithm>
#include <tuple>
#include <unordered_map>

namespace cord::trace {

namespace {

void write_event(std::FILE* f, const Record& r, bool first) {
  // Chrome's ts/dur unit is microseconds; virtual time is picoseconds.
  const double ts_us = static_cast<double>(r.t) / 1e6;
  const double dur_us = static_cast<double>(r.dur) / 1e6;
  const std::string_view name = to_string(r.point);
  const std::string_view cat = category(r.point);
  if (!first) std::fputs(",\n", f);
  if (r.dur > 0) {
    std::fprintf(f,
                 "{\"name\":\"%.*s\",\"cat\":\"%.*s\",\"ph\":\"X\","
                 "\"ts\":%.6f,\"dur\":%.6f,\"pid\":%u,\"tid\":%u,",
                 static_cast<int>(name.size()), name.data(),
                 static_cast<int>(cat.size()), cat.data(), ts_us, dur_us,
                 static_cast<unsigned>(r.node), r.qpn);
  } else {
    std::fprintf(f,
                 "{\"name\":\"%.*s\",\"cat\":\"%.*s\",\"ph\":\"i\","
                 "\"s\":\"t\",\"ts\":%.6f,\"pid\":%u,\"tid\":%u,",
                 static_cast<int>(name.size()), name.data(),
                 static_cast<int>(cat.size()), cat.data(), ts_us,
                 static_cast<unsigned>(r.node), r.qpn);
  }
  std::fprintf(f,
               "\"args\":{\"span\":%u,\"tenant\":%u,\"arg\":%llu,\"aux\":%u}}",
               r.span, r.tenant, static_cast<unsigned long long>(r.arg),
               static_cast<unsigned>(r.aux));
}

}  // namespace

void write_chrome_trace(std::FILE* f, std::span<const Record> records) {
  std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n", f);
  bool first = true;
  for (const Record& r : records) {
    write_event(f, r, first);
    first = false;
  }
  std::fputs("\n]}\n", f);
}

std::string chrome_trace_json(std::span<const Record> records) {
  // Render through a tmpfile so the FILE*-based writer is the single
  // formatting implementation.
  std::FILE* f = std::tmpfile();
  if (f == nullptr) return {};
  write_chrome_trace(f, records);
  const long len = std::ftell(f);
  std::string out(static_cast<std::size_t>(len), '\0');
  std::rewind(f);
  const std::size_t got = std::fread(out.data(), 1, out.size(), f);
  out.resize(got);
  std::fclose(f);
  return out;
}

bool write_chrome_trace_file(const char* path,
                             std::span<const Record> records) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  write_chrome_trace(f, records);
  std::fclose(f);
  return true;
}

void write_records_csv(std::FILE* f, std::span<const Record> records) {
  std::fprintf(f, "t_ps,dur_ps,point,span,qpn,tenant,node,arg,aux\n");
  for (const Record& r : records) {
    const std::string_view name = to_string(r.point);
    std::fprintf(f, "%lld,%lld,%.*s,%u,%u,%u,%u,%llu,%u\n",
                 static_cast<long long>(r.t), static_cast<long long>(r.dur),
                 static_cast<int>(name.size()), name.data(), r.span, r.qpn,
                 r.tenant, static_cast<unsigned>(r.node),
                 static_cast<unsigned long long>(r.arg),
                 static_cast<unsigned>(r.aux));
  }
}

std::vector<Record> merge_by_time(std::vector<std::vector<Record>> streams) {
  std::vector<Record> out;
  std::size_t total = 0;
  for (const auto& s : streams) total += s.size();
  out.reserve(total);
  for (auto& s : streams) out.insert(out.end(), s.begin(), s.end());
  std::stable_sort(out.begin(), out.end(),
                   [](const Record& a, const Record& b) { return a.t < b.t; });
  return out;
}

std::vector<Record> canonical_trace(std::vector<Record> records) {
  // Field-wise key ignoring span: the span id is a per-tracer counter, so
  // runs with different shard counts assign different ids to the same
  // logical work request.
  using Key = std::tuple<sim::Time, std::uint8_t, std::uint8_t, std::uint32_t,
                         std::uint32_t, std::uint64_t, sim::Time,
                         std::uint16_t>;
  const auto key = [](const Record& r) {
    return Key{r.t, r.node, static_cast<std::uint8_t>(r.point),
               r.qpn, r.tenant, r.arg, r.dur, r.aux};
  };
  // Renumber spans by the *contents* of their chains, not by raw id: each
  // span maps to the sorted multiset of its records' keys, chains are
  // ordered lexicographically by that signature, and ids are assigned in
  // that order. Chains with identical signatures are interchangeable, so
  // any tie-break yields the same bytes.
  std::unordered_map<std::uint32_t, std::vector<Key>> sig;
  for (const Record& r : records) {
    if (r.span != 0) sig[r.span].push_back(key(r));
  }
  std::vector<std::pair<std::uint32_t, const std::vector<Key>*>> chains;
  chains.reserve(sig.size());
  for (auto& [span, keys] : sig) {
    std::sort(keys.begin(), keys.end());
    chains.emplace_back(span, &keys);
  }
  std::sort(chains.begin(), chains.end(),
            [](const auto& a, const auto& b) { return *a.second < *b.second; });
  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  remap.reserve(chains.size());
  std::uint32_t next = 1;
  for (const auto& [span, keys] : chains) remap[span] = next++;
  for (Record& r : records) {
    if (r.span != 0) r.span = remap[r.span];  // 0 = not WR-scoped, keep
  }
  // Total order over every field makes the byte stream a pure function of
  // the record multiset.
  std::sort(records.begin(), records.end(),
            [&](const Record& a, const Record& b) {
              return std::make_tuple(key(a), a.span) <
                     std::make_tuple(key(b), b.span);
            });
  return records;
}

}  // namespace cord::trace
