#include "trace/export.hpp"

namespace cord::trace {

namespace {

void write_event(std::FILE* f, const Record& r, bool first) {
  // Chrome's ts/dur unit is microseconds; virtual time is picoseconds.
  const double ts_us = static_cast<double>(r.t) / 1e6;
  const double dur_us = static_cast<double>(r.dur) / 1e6;
  const std::string_view name = to_string(r.point);
  const std::string_view cat = category(r.point);
  if (!first) std::fputs(",\n", f);
  if (r.dur > 0) {
    std::fprintf(f,
                 "{\"name\":\"%.*s\",\"cat\":\"%.*s\",\"ph\":\"X\","
                 "\"ts\":%.6f,\"dur\":%.6f,\"pid\":%u,\"tid\":%u,",
                 static_cast<int>(name.size()), name.data(),
                 static_cast<int>(cat.size()), cat.data(), ts_us, dur_us,
                 static_cast<unsigned>(r.node), r.qpn);
  } else {
    std::fprintf(f,
                 "{\"name\":\"%.*s\",\"cat\":\"%.*s\",\"ph\":\"i\","
                 "\"s\":\"t\",\"ts\":%.6f,\"pid\":%u,\"tid\":%u,",
                 static_cast<int>(name.size()), name.data(),
                 static_cast<int>(cat.size()), cat.data(), ts_us,
                 static_cast<unsigned>(r.node), r.qpn);
  }
  std::fprintf(f,
               "\"args\":{\"span\":%u,\"tenant\":%u,\"arg\":%llu,\"aux\":%u}}",
               r.span, r.tenant, static_cast<unsigned long long>(r.arg),
               static_cast<unsigned>(r.aux));
}

}  // namespace

void write_chrome_trace(std::FILE* f, std::span<const Record> records) {
  std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n", f);
  bool first = true;
  for (const Record& r : records) {
    write_event(f, r, first);
    first = false;
  }
  std::fputs("\n]}\n", f);
}

std::string chrome_trace_json(std::span<const Record> records) {
  // Render through a tmpfile so the FILE*-based writer is the single
  // formatting implementation.
  std::FILE* f = std::tmpfile();
  if (f == nullptr) return {};
  write_chrome_trace(f, records);
  const long len = std::ftell(f);
  std::string out(static_cast<std::size_t>(len), '\0');
  std::rewind(f);
  const std::size_t got = std::fread(out.data(), 1, out.size(), f);
  out.resize(got);
  std::fclose(f);
  return out;
}

bool write_chrome_trace_file(const char* path,
                             std::span<const Record> records) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  write_chrome_trace(f, records);
  std::fclose(f);
  return true;
}

void write_records_csv(std::FILE* f, std::span<const Record> records) {
  std::fprintf(f, "t_ps,dur_ps,point,span,qpn,tenant,node,arg,aux\n");
  for (const Record& r : records) {
    const std::string_view name = to_string(r.point);
    std::fprintf(f, "%lld,%lld,%.*s,%u,%u,%u,%u,%llu,%u\n",
                 static_cast<long long>(r.t), static_cast<long long>(r.dur),
                 static_cast<int>(name.size()), name.data(), r.span, r.qpn,
                 r.tenant, static_cast<unsigned>(r.node),
                 static_cast<unsigned long long>(r.arg),
                 static_cast<unsigned>(r.aux));
  }
}

}  // namespace cord::trace
