// cord::trace — virtual-time tracing of the RDMA data path.
//
// A Tracer is a per-engine, bounded, slab-backed ring of fixed-size POD
// records. Trace points sit at the layers the paper argues about — the
// verbs API, the syscall boundary, the policy chain, and the NIC's WQE
// lifecycle (post → doorbell → DMA → wire → completion) — so a single
// work request yields a complete latency-breakdown span chain keyed by a
// correlation id that travels inside the SendWr.
//
// Cost discipline (the subsystem must never distort what it measures):
//  * When tracing is disabled the engine's tracer pointer is null, so a
//    trace point is a single predicted branch — no virtual call, no TLS,
//    no atomic. The engine hot loop itself has zero trace code.
//  * Records are 40-byte trivially-copyable PODs appended into fixed-size
//    slabs (no per-record allocation, no reallocation-and-copy of a
//    growing vector); the buffer is bounded and overflow increments a
//    drop counter instead of growing without limit.
//  * Timestamps are the engine's virtual clock, so identical simulations
//    produce byte-identical trace streams — traces are diffable artifacts,
//    not approximations.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "sim/engine.hpp"
#include "sim/units.hpp"

namespace cord::trace {

/// Where on the data path a record was emitted. The order of enumerators
/// is part of the trace format (exported traces encode the raw value).
enum class Point : std::uint8_t {
  // verbs API (user space, both modes)
  kVerbsPostSend,
  kVerbsPostRecv,
  kVerbsPollCq,
  // syscall boundary (CoRD mode only)
  kSyscallEnter,
  kSyscallExit,
  // kernel policy chain: one record per policy, arg = cpu cost (ps),
  // aux = policy index in the chain
  kPolicyEval,
  // NIC WQE lifecycle
  kWqePost,     // WQE accepted into the SQ
  kDoorbell,    // doorbell rung (MMIO reaches the device)
  kWqeFetch,    // SQ worker picked the WQE up for processing
  kDmaFetch,    // source-side PCIe DMA of the payload
  kWireTx,      // serialization onto the wire (dur = wire occupancy)
  kDmaDeliver,  // destination-side PCIe DMA into the user buffer
  kCompletion,  // CQE written (aux: 0 = sender/TX, 1 = receiver/RX)
  // completion harvesting
  kCqePoll,     // poll_cq harvested arg completions
  kInterrupt,   // completion interrupt delivered
  kCount
};

std::string_view to_string(Point p);
/// Inverse of to_string; Point::kCount for unknown names (exporter
/// round-tripping).
Point point_from_name(std::string_view name);
/// Chrome-trace category for a point ("verbs", "os", "nic").
std::string_view category(Point p);

/// One trace record. Fixed-size POD: the stream is memcmp-comparable and
/// can be dumped or diffed as raw bytes.
struct Record {
  sim::Time t = 0;           // virtual timestamp (ps)
  sim::Time dur = 0;         // span duration (0 = instant event)
  std::uint64_t arg = 0;     // point-specific payload (bytes, cost, count)
  std::uint32_t span = 0;    // WR correlation id (0 = not WR-scoped)
  std::uint32_t qpn = 0;
  std::uint32_t tenant = 0;
  Point point = Point::kVerbsPostSend;
  std::uint8_t node = 0;
  std::uint16_t aux = 0;     // point-specific (policy index, TX/RX flag)
};
static_assert(sizeof(Record) == 40);
static_assert(std::is_trivially_copyable_v<Record>);

class Tracer {
 public:
  /// Bound chosen so a full buffer is ~40 MiB: enough for ~1M records,
  /// i.e. tens of thousands of complete WR span chains.
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  explicit Tracer(sim::Engine& engine,
                  std::size_t max_records = kDefaultCapacity)
      : engine_(&engine), max_records_(max_records) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  ~Tracer() {
    if (engine_->tracer() == this) engine_->set_tracer(nullptr);
  }

  /// Enabling installs this tracer as the engine's active tracer, which is
  /// what arms every trace point (they test the engine's pointer, nothing
  /// else). Disabling detaches it; buffered records stay readable.
  void set_enabled(bool on) {
    enabled_ = on;
    if (on) {
      engine_->set_tracer(this);
    } else if (engine_->tracer() == this) {
      engine_->set_tracer(nullptr);
    }
  }
  bool enabled() const { return enabled_; }

  /// Fresh correlation id for one work request's span chain (never 0).
  std::uint32_t new_span() {
    const std::uint32_t s = next_span_;
    next_span_ += span_stride_;
    return s;
  }

  /// Interleave this tracer's span ids with other tracers' (shard s of N
  /// uses first = s + 1, stride = N) so ids stay unique across a merged
  /// multi-shard stream. The default (1, 1) is the plain counter.
  void set_span_range(std::uint32_t first, std::uint32_t stride) {
    next_span_ = first == 0 ? stride : first;  // spans are never 0
    span_stride_ = stride == 0 ? 1 : stride;
  }

  /// Append a record stamped with the engine's current virtual time.
  void record(Point p, std::uint32_t span, std::uint32_t qpn,
              std::uint32_t tenant, std::uint8_t node, std::uint64_t arg = 0,
              sim::Time dur = 0, std::uint16_t aux = 0) {
    record_at(engine_->now(), p, span, qpn, tenant, node, arg, dur, aux);
  }

  /// Append a record with an explicit (possibly future-dated) timestamp —
  /// the NIC model computes wire/DMA times ahead of their occurrence.
  void record_at(sim::Time t, Point p, std::uint32_t span, std::uint32_t qpn,
                 std::uint32_t tenant, std::uint8_t node,
                 std::uint64_t arg = 0, sim::Time dur = 0,
                 std::uint16_t aux = 0) {
    Record* r = next_slot();
    if (r == nullptr) [[unlikely]] return;
    r->t = t;
    r->dur = dur;
    r->arg = arg;
    r->span = span;
    r->qpn = qpn;
    r->tenant = tenant;
    r->point = p;
    r->node = node;
    r->aux = aux;
  }

  /// Rebound the record limit (takes effect for subsequent appends; an
  /// already-larger buffer keeps its records).
  void set_capacity(std::size_t max_records) { max_records_ = max_records; }

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// Records rejected because the buffer was full.
  std::uint64_t dropped() const { return dropped_; }
  std::size_t capacity() const { return max_records_; }

  const Record& operator[](std::size_t i) const {
    return slabs_[i / kSlabRecords][i % kSlabRecords];
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < count_; ++i) fn((*this)[i]);
  }

  /// Copy the stream out (e.g. to outlive the engine, or to memcmp two
  /// runs for determinism).
  std::vector<Record> snapshot() const {
    std::vector<Record> out;
    out.reserve(count_);
    for_each([&](const Record& r) { out.push_back(r); });
    return out;
  }

  /// Forget buffered records (capacity and drop counter reset too).
  void clear() {
    count_ = 0;
    dropped_ = 0;
  }

  /// Rewind the stream to a previously observed (size(), dropped()) state.
  /// Used by the speculative shard sync (DESIGN.md §17) to erase records
  /// emitted by rolled-back dispatches, keeping canonical traces invariant
  /// across sync modes. Slab storage is append-only, so this is two store
  /// instructions; records past `count` are simply overwritten later.
  void truncate(std::size_t count, std::uint64_t dropped) {
    if (count <= count_) count_ = count;
    dropped_ = dropped;
  }

 private:
  // 2048 * 40 B = 80 KiB per slab: below glibc's mmap threshold, so slab
  // allocation is a plain heap carve, not an mmap/munmap pair.
  static constexpr std::size_t kSlabRecords = 2048;

  Record* next_slot() {
    if (count_ >= max_records_) [[unlikely]] {
      ++dropped_;
      return nullptr;
    }
    const std::size_t slab = count_ / kSlabRecords;
    if (slab == slabs_.size()) {
      slabs_.push_back(std::make_unique<Record[]>(kSlabRecords));
    }
    return &slabs_[slab][count_++ % kSlabRecords];
  }

  sim::Engine* engine_;
  std::size_t max_records_;
  std::vector<std::unique_ptr<Record[]>> slabs_;
  std::size_t count_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint32_t next_span_ = 1;
  std::uint32_t span_stride_ = 1;
  bool enabled_ = false;
};

}  // namespace cord::trace
