// Internal helpers shared by the NPB kernel implementations.
#pragma once

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "npb/npb.hpp"
#include "sim/rng.hpp"

namespace cord::npb::internal {

using mpi::Op;
using mpi::Rank;

inline int ilog2(int v) {
  int l = 0;
  while ((1 << (l + 1)) <= v) ++l;
  return l;
}

inline bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

/// Stamp a double buffer with a value derived from (rank, salt) so the
/// receiver can verify both the sender identity and the exchange round.
inline void stamp(std::span<double> buf, int rank, std::uint64_t salt) {
  const double v = static_cast<double>(rank) * 1e6 +
                   static_cast<double>(salt % 997) + 0.25;
  for (double& d : buf) d = v;
}

inline void check_stamp(std::span<const double> buf, int expected_rank,
                        std::uint64_t salt, const char* where) {
  if (buf.empty()) return;
  const double v = static_cast<double>(expected_rank) * 1e6 +
                   static_cast<double>(salt % 997) + 0.25;
  if (buf.front() != v || buf.back() != v) {
    throw std::runtime_error(std::string("NPB integrity check failed: ") + where);
  }
}

/// Factor a power-of-two process count into 2 dims (rows >= cols).
inline std::pair<int, int> grid2d(int p) {
  const int k = ilog2(p);
  const int cols = 1 << (k / 2);
  return {p / cols, cols};
}

/// Factor a power-of-two process count into 3 dims (z >= y >= x).
inline std::array<int, 3> grid3d(int p) {
  const int k = ilog2(p);
  const int kx = k / 3;
  const int ky = (k - kx) / 2;
  const int kz = k - kx - ky;
  return {1 << kx, 1 << ky, 1 << kz};
}

struct VerifyFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

}  // namespace cord::npb::internal
