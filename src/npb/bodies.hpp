// Internal: per-kernel body entry points (one coroutine per rank).
#pragma once

#include "npb/npb.hpp"

namespace cord::npb::internal {

struct BodyContext {
  Class cls = Class::kS;
  bool verify = false;
  int iterations = 0;  // 0 = class default
};

sim::Task<> ep_body(mpi::Rank& r, const BodyContext& ctx);
sim::Task<> is_body(mpi::Rank& r, const BodyContext& ctx);
sim::Task<> cg_body(mpi::Rank& r, const BodyContext& ctx);
sim::Task<> mg_body(mpi::Rank& r, const BodyContext& ctx);
sim::Task<> ft_body(mpi::Rank& r, const BodyContext& ctx);
sim::Task<> lu_body(mpi::Rank& r, const BodyContext& ctx);
sim::Task<> sp_body(mpi::Rank& r, const BodyContext& ctx);
sim::Task<> bt_body(mpi::Rank& r, const BodyContext& ctx);

}  // namespace cord::npb::internal
