// The NAS Parallel Benchmarks (MPI version) — communication-faithful
// implementations of all eight kernels used in the paper's Fig. 6.
//
// Each kernel reproduces the NPB-MPI decomposition and exchange pattern
// (who talks to whom, how often, how many bytes) with real buffers moving
// through the MPI runtime. Computation is charged analytically from the
// published per-class operation counts; `verify` mode runs real
// arithmetic where practical (EP's Gaussian deviates, IS's full
// distributed sort) and data-integrity/invariant checks everywhere else.
// See DESIGN.md §8 for the documented approximations.
//
// Communication-intensity summary (drives the Fig. 6 shape):
//   EP — almost none (3 small allreduces at the end);
//   IS — data + message intensive (alltoallv of the whole key space);
//   CG — few large messages (row-group exchanges per matvec);
//   MG — halo exchanges across V-cycle levels;
//   FT — very large alltoall transposes;
//   LU — many small wavefront messages;
//   SP/BT — data + message intensive multi-partition face exchanges.
#pragma once

#include <string_view>

#include "mpi/world.hpp"

namespace cord::npb {

enum class Kernel { kEP, kIS, kCG, kMG, kFT, kLU, kSP, kBT };
enum class Class { kS, kA, kB };

std::string_view to_string(Kernel k);

struct RunConfig {
  Kernel kernel = Kernel::kEP;
  Class cls = Class::kS;
  /// Run real arithmetic + strict verification (use with small classes).
  bool verify = false;
  /// Override the iteration count (0 = class default). The figure bench
  /// trims long-running kernels to ~20 iterations; relative runtimes are
  /// iteration-independent in steady state.
  int iterations = 0;
};

struct Result {
  sim::Time elapsed = 0;
  bool verified = false;
  /// Traffic actually emitted through the transport by all ranks.
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Execute one kernel on an existing world. This is the only entry point:
/// it runs World::run with the kernel body on every rank.
Result run(mpi::World& world, const RunConfig& cfg);

/// Charge `flops` of computation to the rank's core at the kernel's
/// sustained rate (Gop/s per core). NPB kernels sustain very different
/// fractions of peak: indirect-access SpMV (CG) runs ~0.6 Gop/s/core
/// while vectorizable structured solvers (SP/BT) sustain several Gop/s —
/// using one rate for all would distort every compute/communication
/// balance in Fig. 6.
inline sim::Task<> compute_flops(mpi::Rank& r, double flops,
                                 double sustained_gops = 2.5) {
  const auto t = static_cast<sim::Time>(flops / (sustained_gops * 1e9) *
                                        static_cast<double>(sim::kSecond));
  return r.compute(t);
}

}  // namespace cord::npb
