#include "npb/bodies.hpp"
#include "npb/internal.hpp"
#include "npb/npb.hpp"

namespace cord::npb {

std::string_view to_string(Kernel k) {
  switch (k) {
    case Kernel::kEP: return "EP";
    case Kernel::kIS: return "IS";
    case Kernel::kCG: return "CG";
    case Kernel::kMG: return "MG";
    case Kernel::kFT: return "FT";
    case Kernel::kLU: return "LU";
    case Kernel::kSP: return "SP";
    case Kernel::kBT: return "BT";
  }
  return "?";
}

Result run(mpi::World& world, const RunConfig& cfg) {
  const internal::BodyContext ctx{cfg.cls, cfg.verify, cfg.iterations};
  const mpi::World::Traffic before = world.traffic();
  Result result;
  result.verified = true;
  result.elapsed = world.run([&ctx, &cfg](mpi::Rank& r) -> sim::Task<> {
    switch (cfg.kernel) {
      case Kernel::kEP: co_await internal::ep_body(r, ctx); break;
      case Kernel::kIS: co_await internal::is_body(r, ctx); break;
      case Kernel::kCG: co_await internal::cg_body(r, ctx); break;
      case Kernel::kMG: co_await internal::mg_body(r, ctx); break;
      case Kernel::kFT: co_await internal::ft_body(r, ctx); break;
      case Kernel::kLU: co_await internal::lu_body(r, ctx); break;
      case Kernel::kSP: co_await internal::sp_body(r, ctx); break;
      case Kernel::kBT: co_await internal::bt_body(r, ctx); break;
    }
  });
  const mpi::World::Traffic after = world.traffic();
  result.messages = after.messages - before.messages;
  result.bytes = after.bytes - before.bytes;
  return result;
}

}  // namespace cord::npb
