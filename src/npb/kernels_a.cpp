// NPB kernels EP, IS, CG, MG.
//
// EP and IS run real arithmetic in verify mode (Gaussian-deviate counting
// and a full distributed bucket sort); CG and MG run the exact NPB-MPI
// exchange patterns with stamped buffers and invariant checks. Computation
// volume comes from the published per-class operation counts.
#include <algorithm>
#include <array>
#include <vector>

#include "npb/bodies.hpp"
#include "npb/internal.hpp"

namespace cord::npb::internal {

// ---------------------------------------------------------------------------
// EP — embarrassingly parallel: generate Gaussian deviates, count them in
// annular bins, three small allreduces at the very end.
// ---------------------------------------------------------------------------

sim::Task<> ep_body(mpi::Rank& r, const BodyContext& ctx) {
  // log2 of the number of random pairs. Class S is scaled down (2^20
  // instead of the official 2^24) so the real-arithmetic verify mode
  // stays snappy; A and B are the official sizes.
  const int m = ctx.cls == Class::kS ? 20 : ctx.cls == Class::kA ? 28 : 30;
  const std::uint64_t total_pairs = 1ull << m;
  const std::uint64_t per =
      total_pairs / static_cast<std::uint64_t>(r.size()) +
      (r.id() == r.size() - 1 ? total_pairs % static_cast<std::uint64_t>(r.size())
                              : 0);

  double sx = 0.0;
  double sy = 0.0;
  std::array<double, 10> q{};
  // ~40 operations per pair (two PRNG draws, the polar test, the
  // occasional log/sqrt) — charged in chunks so the DVFS model sees a
  // realistic busy profile rather than one monolithic block.
  constexpr double kOpsPerPair = 40.0;
  constexpr int kChunks = 8;
  if (ctx.verify) {
    sim::Rng rng(0x45500ull + static_cast<std::uint64_t>(r.id()));
    for (std::uint64_t i = 0; i < per; ++i) {
      const double x = 2.0 * rng.next_double() - 1.0;
      const double y = 2.0 * rng.next_double() - 1.0;
      const double t = x * x + y * y;
      if (t <= 1.0 && t > 0.0) {
        const double f = std::sqrt(-2.0 * std::log(t) / t);
        const double gx = x * f;
        const double gy = y * f;
        const auto l = static_cast<std::size_t>(
            std::min(9.0, std::max(std::abs(gx), std::abs(gy))));
        q[l] += 1.0;
        sx += gx;
        sy += gy;
      }
    }
  }
  for (int c = 0; c < kChunks; ++c) {
    co_await compute_flops(r, static_cast<double>(per) * kOpsPerPair / kChunks, 1.5);
  }

  std::array<double, 2> sums{sx, sy};
  std::array<double, 2> sums_out{};
  co_await r.allreduce<double>(sums, sums_out, Op::kSum);
  std::array<double, 10> q_out{};
  co_await r.allreduce<double>(q, q_out, Op::kSum);

  if (ctx.verify) {
    double accepted = 0.0;
    for (double v : q_out) accepted += v;
    const double expect = static_cast<double>(total_pairs) * 0.7853981633974483;
    if (std::abs(accepted / expect - 1.0) > 0.01) {
      throw VerifyFailure("EP: acceptance ratio off pi/4");
    }
    // Gaussian sums are O(sqrt(n)); allow a generous multiple.
    const double bound = 6.0 * std::sqrt(accepted);
    if (std::abs(sums_out[0]) > bound || std::abs(sums_out[1]) > bound) {
      throw VerifyFailure("EP: deviate sums not centered");
    }
    if (!(q_out[0] > q_out[1] && q_out[1] > q_out[2])) {
      throw VerifyFailure("EP: annulus counts not decreasing");
    }
  }
}

// ---------------------------------------------------------------------------
// IS — integer sort: iterated bucket sort of uniformly distributed keys.
// Per iteration: local histogram, allreduce of bucket counts, alltoallv of
// the keys, local sort. Data- and message-intensive.
// ---------------------------------------------------------------------------

sim::Task<> is_body(mpi::Rank& r, const BodyContext& ctx) {
  const int total_log2 = ctx.cls == Class::kS ? 16 : ctx.cls == Class::kA ? 23 : 25;
  const int key_log2 = ctx.cls == Class::kS ? 11 : ctx.cls == Class::kA ? 19 : 21;
  const int iters = ctx.iterations > 0 ? ctx.iterations : 10;
  const int n = r.size();
  const std::uint64_t total_keys = 1ull << total_log2;
  const auto per = static_cast<std::size_t>(total_keys / static_cast<std::uint64_t>(n));
  const std::uint32_t max_key = 1u << key_log2;

  std::vector<std::uint32_t> keys(per);
  sim::Rng rng(0x15000ull + static_cast<std::uint64_t>(r.id()));
  for (auto& k : keys) {
    k = static_cast<std::uint32_t>(rng.next_below(max_key));
  }

  std::vector<std::int64_t> counts(n), counts_sum(n);
  std::vector<std::size_t> scounts(n), rcounts(n);
  std::vector<std::uint32_t> sendbuf(per), recvbuf;

  for (int it = 0; it < iters; ++it) {
    // Local histogram over n splitter buckets (bucket = key's top bits).
    const int shift = key_log2 - ilog2(n);
    std::fill(counts.begin(), counts.end(), 0);
    if (ctx.verify) {
      for (std::uint32_t k : keys) counts[k >> shift]++;
    } else {
      // Uniform keys: analytic counts.
      for (int i = 0; i < n; ++i) {
        counts[i] = static_cast<std::int64_t>(per / static_cast<std::size_t>(n));
      }
      counts[0] += static_cast<std::int64_t>(per % static_cast<std::size_t>(n));
    }
    co_await compute_flops(r, static_cast<double>(per) * 2.0, 3.0);

    co_await r.allreduce<std::int64_t>(counts, counts_sum, Op::kSum);

    // Scatter keys into per-destination runs.
    for (int i = 0; i < n; ++i) scounts[i] = static_cast<std::size_t>(counts[i]);
    if (ctx.verify) {
      std::vector<std::size_t> off(n, 0);
      for (int i = 1; i < n; ++i) off[i] = off[i - 1] + scounts[i - 1];
      for (std::uint32_t k : keys) sendbuf[off[k >> shift]++] = k;
    }
    co_await compute_flops(r, static_cast<double>(per) * 2.0, 3.0);

    // Everyone tells everyone the counts, then the keys move.
    std::vector<std::int64_t> flat_s(n);
    for (int i = 0; i < n; ++i) flat_s[i] = counts[i];
    std::vector<std::int64_t> flat_r(n);
    co_await r.alltoall<std::int64_t>(flat_s, flat_r);
    std::size_t rtotal = 0;
    for (int i = 0; i < n; ++i) {
      rcounts[i] = static_cast<std::size_t>(flat_r[i]);
      rtotal += rcounts[i];
    }
    recvbuf.resize(rtotal);
    co_await r.alltoallv<std::uint32_t>(sendbuf, scounts, recvbuf, rcounts);

    // Local sort of the received keys.
    if (ctx.verify) std::sort(recvbuf.begin(), recvbuf.end());
    co_await compute_flops(
        r,
        static_cast<double>(rtotal) *
            std::max(1.0, std::log2(static_cast<double>(rtotal))) * 1.5,
        3.0);
  }

  if (ctx.verify) {
    // Global order: my largest key <= right neighbour's smallest.
    std::array<std::uint32_t, 1> my_max{recvbuf.empty() ? 0 : recvbuf.back()};
    std::array<std::uint32_t, 1> left_max{0};
    const int right = (r.id() + 1) % r.size();
    const int left = (r.id() - 1 + r.size()) % r.size();
    co_await r.sendrecv<std::uint32_t>(right, 91, my_max, left, 91, left_max);
    if (r.id() > 0 && !recvbuf.empty() && left_max[0] > recvbuf.front()) {
      throw VerifyFailure("IS: global order violated");
    }
    // Conservation: total key count unchanged.
    std::array<std::int64_t, 1> cnt{static_cast<std::int64_t>(recvbuf.size())};
    std::array<std::int64_t, 1> cnt_sum{};
    co_await r.allreduce<std::int64_t>(cnt, cnt_sum, Op::kSum);
    if (cnt_sum[0] != static_cast<std::int64_t>(total_keys)) {
      throw VerifyFailure("IS: keys lost or duplicated");
    }
    for (std::size_t i = 1; i < recvbuf.size(); ++i) {
      if (recvbuf[i - 1] > recvbuf[i]) throw VerifyFailure("IS: not sorted");
    }
  }
}

// ---------------------------------------------------------------------------
// CG — conjugate gradient on a 2D process grid: per inner iteration, a
// recursive-halving exchange of vector segments along the grid row (the
// sparse-matvec sum), one transpose exchange, and two scalar allreduces.
// "Few large messages."
// ---------------------------------------------------------------------------

sim::Task<> cg_body(mpi::Rank& r, const BodyContext& ctx) {
  if (!is_pow2(r.size())) throw std::invalid_argument("CG needs 2^k ranks");
  const int na = ctx.cls == Class::kS ? 1400 : ctx.cls == Class::kA ? 14000 : 75000;
  const int outer_default = ctx.cls == Class::kB ? 75 : 15;
  const int outer = ctx.iterations > 0 ? ctx.iterations : outer_default;
  constexpr int kInner = 25;
  // Total op count per class (NPB reports 0.07/1.50/54.9 Gop for S/A/B).
  const double total_gop =
      ctx.cls == Class::kS ? 0.07 : ctx.cls == Class::kA ? 1.50 : 54.9;
  const double flops_per_inner = total_gop * 1e9 /
                                 (static_cast<double>(outer_default) * kInner) /
                                 static_cast<double>(r.size());

  const auto [nrows, ncols] = grid2d(r.size());
  const int row = r.id() / ncols;
  const int col = r.id() % ncols;
  const std::size_t seg = static_cast<std::size_t>(na) /
                          static_cast<std::size_t>(ncols);

  std::vector<double> w(seg), scratch(seg);
  for (int o = 0; o < outer; ++o) {
    for (int inner = 0; inner < kInner; ++inner) {
      co_await compute_flops(r, flops_per_inner, 0.6);  // SpMV is indirect-access bound
      // Sum of partial matvec results across the row (recursive halving).
      for (int mask = 1; mask < ncols; mask <<= 1) {
        const int partner = row * ncols + (col ^ mask);
        const std::uint64_t salt =
            static_cast<std::uint64_t>(o) * 1000 + inner * 10 +
            static_cast<std::uint64_t>(ilog2(mask));
        if (ctx.verify) stamp(w, r.id(), salt);
        co_await r.sendrecv<double>(partner, 40, w, partner, 40, scratch);
        if (ctx.verify) check_stamp(scratch, partner, salt, "CG row exchange");
        co_await compute_flops(r, static_cast<double>(seg), 0.6);
      }
      // Transpose exchange (w lives row-distributed, q column-distributed).
      // On a square grid the matrix-transpose map is an involution; on a
      // non-square grid (ncols = nrows/2) we pair ranks with id ^ (P/2),
      // which moves the same volume symmetrically (NPB's exch_proc is the
      // exact analogue).
      const int tpartner = nrows == ncols ? col * nrows + row
                                          : r.id() ^ (r.size() / 2);
      if (tpartner != r.id() && tpartner < r.size()) {
        co_await r.sendrecv<double>(tpartner, 41, w, tpartner, 41, scratch);
      }
      // rho and alpha dot products.
      std::array<double, 1> dot{1.0}, dot_out{};
      co_await r.allreduce<double>(dot, dot_out, Op::kSum);
      co_await r.allreduce<double>(dot, dot_out, Op::kSum);
      if (ctx.verify && dot_out[0] != static_cast<double>(r.size())) {
        throw VerifyFailure("CG: allreduce sum wrong");
      }
    }
    // Norm of the residual once per outer iteration.
    std::array<double, 1> norm{0.5}, norm_out{};
    co_await r.allreduce<double>(norm, norm_out, Op::kSum);
  }
}

// ---------------------------------------------------------------------------
// MG — multigrid V-cycles on a 3D decomposition: halo exchange of six
// faces per level going down and up, plus a norm allreduce per iteration.
// ---------------------------------------------------------------------------

sim::Task<> mg_body(mpi::Rank& r, const BodyContext& ctx) {
  if (!is_pow2(r.size())) throw std::invalid_argument("MG needs 2^k ranks");
  const int nx = ctx.cls == Class::kS ? 32 : 256;
  const int iters_default = ctx.cls == Class::kS ? 4 : ctx.cls == Class::kA ? 4 : 20;
  const int iters = ctx.iterations > 0 ? ctx.iterations : iters_default;
  const double total_gop =
      ctx.cls == Class::kS ? 0.01 : ctx.cls == Class::kA ? 3.63 : 18.1;
  const double flops_per_iter = total_gop * 1e9 /
                                static_cast<double>(iters_default) /
                                static_cast<double>(r.size());

  const auto dims = grid3d(r.size());
  std::array<int, 3> coord{};
  {
    int rem = r.id();
    coord[0] = rem % dims[0];
    rem /= dims[0];
    coord[1] = rem % dims[1];
    rem /= dims[1];
    coord[2] = rem;
  }
  auto rank_of = [&](std::array<int, 3> c) {
    return (c[2] * dims[1] + c[1]) * dims[0] + c[0];
  };

  const int levels = std::max(2, ilog2(nx) - 2);
  std::vector<double> face, got;
  for (int it = 0; it < iters; ++it) {
    // One V-cycle: fine -> coarse -> fine.
    for (int pass = 0; pass < 2; ++pass) {
      for (int li = 0; li < levels; ++li) {
        const int level = pass == 0 ? levels - li : li + 1;
        const int nl = std::max(4, nx >> (levels - level));
        for (int dim = 0; dim < 3; ++dim) {
          // Local face size at this level (points in the two other dims).
          const int da = nl / dims[(dim + 1) % 3];
          const int db = nl / dims[(dim + 2) % 3];
          const auto elems = static_cast<std::size_t>(
              std::max(1, da) * std::max(1, db));
          face.resize(elems);
          got.resize(elems);
          for (int dir : {-1, +1}) {
            // Shift exchange: give the face in direction `dir`, take the
            // face arriving from `-dir` (paired sendrecvs; no circular
            // wait on periodic rings).
            std::array<int, 3> to = coord;
            to[dim] = (to[dim] + dir + dims[dim]) % dims[dim];
            std::array<int, 3> from = coord;
            from[dim] = (from[dim] - dir + dims[dim]) % dims[dim];
            const int dst = rank_of(to);
            const int src = rank_of(from);
            if (dst == r.id()) continue;  // periodic self-wrap
            const std::uint64_t salt = static_cast<std::uint64_t>(it) * 10000 +
                                       pass * 1000 + level * 10 +
                                       static_cast<std::uint64_t>(dim * 2 + (dir > 0));
            if (ctx.verify) stamp(face, r.id(), salt);
            co_await r.sendrecv<double>(dst, 50 + dim, face, src, 50 + dim, got);
            if (ctx.verify) check_stamp(got, src, salt, "MG halo");
          }
        }
        co_await compute_flops(
            r, flops_per_iter / (2.0 * static_cast<double>(levels)), 2.5);
      }
    }
    std::array<double, 1> norm{1.0}, norm_out{};
    co_await r.allreduce<double>(norm, norm_out, Op::kSum);
    if (ctx.verify && norm_out[0] != static_cast<double>(r.size())) {
      throw VerifyFailure("MG: norm allreduce wrong");
    }
  }
}

}  // namespace cord::npb::internal
