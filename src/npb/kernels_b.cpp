// NPB kernels FT, LU, SP, BT.
//
// FT moves the largest messages (full-volume alltoall transposes), LU the
// smallest and most numerous (pipelined wavefront planes), SP/BT sit in
// between with multi-partition face exchanges every sweep stage.
#include <algorithm>
#include <array>
#include <vector>

#include "npb/bodies.hpp"
#include "npb/internal.hpp"

namespace cord::npb::internal {

// ---------------------------------------------------------------------------
// FT — 3D FFT: per iteration one huge alltoall (the transpose between the
// pencil layouts) plus a 2-double checksum allreduce.
// ---------------------------------------------------------------------------

sim::Task<> ft_body(mpi::Rank& r, const BodyContext& ctx) {
  if (!is_pow2(r.size())) throw std::invalid_argument("FT needs 2^k ranks");
  const std::uint64_t points = ctx.cls == Class::kS
                                   ? (1ull << 18)          // 64^3
                                   : ctx.cls == Class::kA
                                         ? (1ull << 23)    // 256^2 x 128
                                         : (1ull << 25);   // 512 x 256^2
  const int iters_default = ctx.cls == Class::kB ? 20 : 6;
  const int iters = ctx.iterations > 0 ? ctx.iterations : iters_default;
  const double total_gop =
      ctx.cls == Class::kS ? 0.2 : ctx.cls == Class::kA ? 7.12 : 92.5;
  const double flops_per_iter = total_gop * 1e9 /
                                static_cast<double>(iters_default) /
                                static_cast<double>(r.size());

  const int n = r.size();
  // Local volume in doubles (complex = 2 doubles).
  const auto local = static_cast<std::size_t>(
      points / static_cast<std::uint64_t>(n) * 2);
  const std::size_t block = local / static_cast<std::size_t>(n);
  std::vector<double> in(block * static_cast<std::size_t>(n));
  std::vector<double> out(in.size());

  for (int it = 0; it < iters; ++it) {
    co_await compute_flops(r, flops_per_iter * 0.5, 3.0);  // local FFT passes
    if (ctx.verify) {
      for (int i = 0; i < n; ++i) {
        stamp(std::span<double>(in.data() + static_cast<std::size_t>(i) * block,
                                block),
              r.id(), static_cast<std::uint64_t>(it) * 100 + 7);
      }
    }
    co_await r.alltoall<double>(in, out);
    if (ctx.verify) {
      for (int i = 0; i < n; ++i) {
        check_stamp(std::span<const double>(
                        out.data() + static_cast<std::size_t>(i) * block, block),
                    i, static_cast<std::uint64_t>(it) * 100 + 7, "FT transpose");
      }
    }
    co_await compute_flops(r, flops_per_iter * 0.5, 3.0);  // remaining FFT pass
    std::array<double, 2> chk{1.0, 2.0}, chk_out{};
    co_await r.allreduce<double>(chk, chk_out, Op::kSum);
  }
}

// ---------------------------------------------------------------------------
// LU — SSOR with pipelined wavefronts: for every k-plane of the lower
// sweep, receive from north/west, compute, send south/east; the upper
// sweep runs the mirror direction. Many small messages.
// ---------------------------------------------------------------------------

sim::Task<> lu_body(mpi::Rank& r, const BodyContext& ctx) {
  if (!is_pow2(r.size())) throw std::invalid_argument("LU needs 2^k ranks");
  const int n = ctx.cls == Class::kS ? 12 : ctx.cls == Class::kA ? 64 : 102;
  const int iters_default = ctx.cls == Class::kS ? 50 : 250;
  const int iters = ctx.iterations > 0 ? ctx.iterations : iters_default;
  const double total_gop =
      ctx.cls == Class::kS ? 0.1 : ctx.cls == Class::kA ? 64.6 : 271.0;
  const double flops_per_iter = total_gop * 1e9 /
                                static_cast<double>(iters_default) /
                                static_cast<double>(r.size());

  const auto [prow, pcol] = grid2d(r.size());
  const int row = r.id() / pcol;
  const int col = r.id() % pcol;
  const int north = row > 0 ? r.id() - pcol : -1;
  const int south = row < prow - 1 ? r.id() + pcol : -1;
  const int west = col > 0 ? r.id() - 1 : -1;
  const int east = col < pcol - 1 ? r.id() + 1 : -1;

  // Pencil edge lengths; a plane message carries 5 variables per edge point.
  const std::size_t edge_x = static_cast<std::size_t>(
      std::max(1, n / prow) * 5);
  const std::size_t edge_y = static_cast<std::size_t>(
      std::max(1, n / pcol) * 5);
  std::vector<double> buf_ns(edge_y), buf_ew(edge_x);

  const int nz = n;
  const double flops_per_plane =
      flops_per_iter / (2.0 * static_cast<double>(nz));
  for (int it = 0; it < iters; ++it) {
    // Lower triangular sweep: wavefront from (0,0).
    for (int k = 0; k < nz; ++k) {
      const int tag = 60;
      if (north >= 0) (void)co_await r.recv<double>(north, tag, buf_ns);
      if (west >= 0) (void)co_await r.recv<double>(west, tag, buf_ew);
      co_await compute_flops(r, flops_per_plane, 2.0);
      if (south >= 0) co_await r.send<double>(south, tag, buf_ns);
      if (east >= 0) co_await r.send<double>(east, tag, buf_ew);
    }
    // Upper triangular sweep: wavefront from the opposite corner.
    for (int k = 0; k < nz; ++k) {
      const int tag = 61;
      if (south >= 0) (void)co_await r.recv<double>(south, tag, buf_ns);
      if (east >= 0) (void)co_await r.recv<double>(east, tag, buf_ew);
      co_await compute_flops(r, flops_per_plane, 2.0);
      if (north >= 0) co_await r.send<double>(north, tag, buf_ns);
      if (west >= 0) co_await r.send<double>(west, tag, buf_ew);
    }
    // Residual norms every iteration (5 doubles).
    std::array<double, 5> norm{1, 1, 1, 1, 1};
    std::array<double, 5> norm_out{};
    co_await r.allreduce<double>(norm, norm_out, Op::kSum);
    if (ctx.verify && norm_out[0] != static_cast<double>(r.size())) {
      throw VerifyFailure("LU: norm allreduce wrong");
    }
  }
}

// ---------------------------------------------------------------------------
// SP / BT — multi-partition ADI/block-tridiagonal solvers on a square
// process grid: per iteration a copy-faces halo exchange plus, for each of
// the three sweep directions, sqrt(P) pipeline stages each shipping one
// cell face. Data- and message-intensive.
// ---------------------------------------------------------------------------

namespace {

sim::Task<> adi_body(mpi::Rank& r, const BodyContext& ctx, bool is_sp) {
  const int q = static_cast<int>(std::lround(std::sqrt(r.size())));
  if (q * q != r.size()) throw std::invalid_argument("SP/BT need a square rank count");
  const int n = ctx.cls == Class::kS ? 12 : ctx.cls == Class::kA ? 64 : 102;
  const int iters_default =
      ctx.cls == Class::kS ? 20 : is_sp ? 400 : 200;
  const int iters = ctx.iterations > 0 ? ctx.iterations : iters_default;
  const double total_gop = ctx.cls == Class::kS ? 0.2
                           : ctx.cls == Class::kA
                               ? (is_sp ? 102.0 : 168.0)
                               : (is_sp ? 447.0 : 721.0);
  const double flops_per_iter = total_gop * 1e9 /
                                static_cast<double>(iters_default) /
                                static_cast<double>(r.size());

  const int gi = r.id() / q;
  const int gj = r.id() % q;
  auto rank_at = [&](int i, int j) { return ((i + q) % q) * q + ((j + q) % q); };

  // One cell face: (n/q)^2 points x 5 variables. Each rank owns q cells
  // (the multi-partition diagonal), so copy_faces ships q faces per
  // neighbour while sweep stages ship one face per stage.
  const int cell = std::max(1, n / q);
  const auto face = static_cast<std::size_t>(cell * cell * 5);
  std::vector<double> out_face(face), in_face(face);
  std::vector<double> out_faces(face * static_cast<std::size_t>(q));
  std::vector<double> in_faces(out_faces.size());

  for (int it = 0; it < iters; ++it) {
    // copy_faces: shift exchanges with the four grid neighbours (send in
    // direction +d while receiving from -d, so every sendrecv pairs up
    // with the matching one on the partner — no circular wait on rings).
    for (auto [di, dj] : {std::pair{1, 0}, {-1, 0}, {0, 1}, {0, -1}}) {
      const int dst = rank_at(gi + di, gj + dj);
      const int src = rank_at(gi - di, gj - dj);
      if (dst == r.id()) continue;
      const std::uint64_t salt = static_cast<std::uint64_t>(it) * 100 +
                                 static_cast<std::uint64_t>((di + 1) * 10 + dj + 1);
      if (ctx.verify) stamp(out_faces, r.id(), salt);
      co_await r.sendrecv<double>(dst, 70, out_faces, src, 70, in_faces);
      if (ctx.verify) check_stamp(in_faces, src, salt, "SP/BT copy_faces");
    }
    // Three sweep directions, q pipeline stages each (multi-partition:
    // every rank is active at every stage, shipping one cell face to the
    // successor in the sweep direction).
    for (int dim = 0; dim < 3; ++dim) {
      for (int stage = 0; stage < q; ++stage) {
        const int partner = dim == 0   ? rank_at(gi, gj + 1)
                            : dim == 1 ? rank_at(gi + 1, gj)
                                       : rank_at(gi + 1, gj + 1);
        const int from = dim == 0   ? rank_at(gi, gj - 1)
                         : dim == 1 ? rank_at(gi - 1, gj)
                                    : rank_at(gi - 1, gj - 1);
        if (partner == r.id()) continue;
        co_await compute_flops(
            r, flops_per_iter / (3.0 * static_cast<double>(q)),
            5.0);  // dense line solves vectorize well
        co_await r.sendrecv<double>(partner, 71 + dim, out_face, from, 71 + dim,
                                    in_face);
      }
    }
    // Once in a while the solver checks its residuals.
    if (it % 5 == 0) {
      std::array<double, 5> rms{1, 1, 1, 1, 1};
      std::array<double, 5> rms_out{};
      co_await r.allreduce<double>(rms, rms_out, Op::kSum);
      if (ctx.verify && rms_out[0] != static_cast<double>(r.size())) {
        throw VerifyFailure("SP/BT: rms allreduce wrong");
      }
    }
  }
}

}  // namespace

sim::Task<> sp_body(mpi::Rank& r, const BodyContext& ctx) {
  return adi_body(r, ctx, /*is_sp=*/true);
}

sim::Task<> bt_body(mpi::Rank& r, const BodyContext& ctx) {
  return adi_body(r, ctx, /*is_sp=*/false);
}

}  // namespace cord::npb::internal
