#include "mpi/verbs_endpoint.hpp"

#include <cstring>

namespace cord::mpi {

namespace {
std::uintptr_t uptr(const void* p) { return reinterpret_cast<std::uintptr_t>(p); }
}  // namespace

VerbsEndpoint::VerbsEndpoint(int rank, int world_size, verbs::Context ctx,
                             Config cfg)
    : rank_(rank), world_size_(world_size), ctx_(std::move(ctx)), cfg_(cfg) {
  qps_.resize(world_size_, nullptr);
}

sim::Task<> VerbsEndpoint::setup() {
  pd_ = co_await ctx_.alloc_pd();
  const std::uint32_t cq_cap = 4 * (cfg_.srq_slots + cfg_.send_slots) + 1024;
  scq_ = co_await ctx_.create_cq(cq_cap);
  rcq_ = co_await ctx_.create_cq(cq_cap);
  srq_ = co_await ctx_.create_srq(pd_, cfg_.srq_slots);

  send_arena_.resize(cfg_.send_slots * slot_size());
  recv_arena_.resize(cfg_.srq_slots * slot_size());
  send_mr_ = co_await ctx_.reg_mr(pd_, send_arena_.data(), send_arena_.size(),
                                  nic::kAccessLocalWrite);
  recv_mr_ = co_await ctx_.reg_mr(pd_, recv_arena_.data(), recv_arena_.size(),
                                  nic::kAccessLocalWrite);
  for (std::uint32_t s = 0; s < cfg_.send_slots; ++s) free_slots_.push_back(s);
  for (std::uint32_t s = 0; s < cfg_.srq_slots; ++s) {
    const int rc = co_await ctx_.post_srq_recv(
        *srq_, {s, {uptr(recv_slot(s)), static_cast<std::uint32_t>(slot_size()),
                    recv_mr_->lkey}});
    if (rc != 0) throw std::runtime_error("SRQ prefill failed");
  }
}

sim::Task<> VerbsEndpoint::wire(VerbsEndpoint& a, VerbsEndpoint& b) {
  const nic::QpConfig qc_a{nic::QpType::kRC, a.pd_,  a.scq_, a.rcq_,
                           256,              0,      220,    a.srq_};
  const nic::QpConfig qc_b{nic::QpType::kRC, b.pd_,  b.scq_, b.rcq_,
                           256,              0,      220,    b.srq_};
  nic::QueuePair* qa = co_await a.ctx_.create_qp(qc_a);
  nic::QueuePair* qb = co_await b.ctx_.create_qp(qc_b);
  if (qa == nullptr || qb == nullptr) throw std::runtime_error("create_qp failed");
  int rc = co_await a.ctx_.connect_qp(*qa, {b.ctx_.node(), qb->qpn()});
  if (rc != 0) throw std::runtime_error("wire: connect a failed");
  rc = co_await b.ctx_.connect_qp(*qb, {a.ctx_.node(), qa->qpn()});
  if (rc != 0) throw std::runtime_error("wire: connect b failed");
  a.qps_[b.rank_] = qa;
  b.qps_[a.rank_] = qb;
  a.qpn_to_peer_[qa->qpn()] = b.rank_;
  b.qpn_to_peer_[qb->qpn()] = a.rank_;
}

sim::Task<std::uint32_t> VerbsEndpoint::acquire_slot() {
  co_await progress_until([&] { return !free_slots_.empty(); }, "acquire_slot");
  const std::uint32_t s = free_slots_.front();
  free_slots_.pop_front();
  co_return s;
}

sim::Task<> VerbsEndpoint::post_with_retry(nic::QueuePair& qp, nic::SendWr wr) {
  for (;;) {
    const int rc = co_await ctx_.post_send(qp, wr);
    if (rc == 0) co_return;
    if (rc != nic::kErrQueueFull) {
      throw std::runtime_error("MPI post_send failed");
    }
    (void)co_await progress_once();  // drain completions to free SQ credits
  }
}

sim::Task<const nic::MemoryRegion*> VerbsEndpoint::get_mr(const void* p,
                                                          std::size_t len) {
  const auto key = std::make_pair(uptr(p), len);
  auto it = mr_cache_.find(key);
  if (it != mr_cache_.end()) co_return it->second;
  const nic::MemoryRegion* mr = co_await ctx_.reg_mr(
      pd_, const_cast<void*>(p), len,
      nic::kAccessLocalWrite | nic::kAccessRemoteRead | nic::kAccessRemoteWrite);
  mr_cache_[key] = mr;
  co_return mr;
}

sim::Task<> VerbsEndpoint::post_slot_message(int dst, const WireHeader& hdr,
                                             std::span<const std::byte> payload) {
  const std::uint32_t slot = co_await acquire_slot();
  std::byte* buf = send_slot(slot);
  std::memcpy(buf, &hdr, sizeof(WireHeader));
  if (!payload.empty()) {
    std::memcpy(buf + sizeof(WireHeader), payload.data(), payload.size());
    // The eager sender-side copy into the bounce buffer.
    co_await core().work(core().memcpy_time(payload.size()), os::Work::kCompute);
  }
  const auto total = static_cast<std::uint32_t>(sizeof(WireHeader) + payload.size());
  nic::SendWr wr;
  wr.wr_id = kSendWrBase + slot;
  wr.opcode = nic::Opcode::kSend;
  wr.sge = {uptr(buf), total, send_mr_->lkey};
  wr.inline_data = total <= qps_[dst]->config().max_inline;
  co_await post_with_retry(*qps_[dst], std::move(wr));
}

sim::Task<> VerbsEndpoint::send(int dst, int tag, std::span<const std::byte> data) {
  if (dst == rank_) {
    // Self-sends do not touch the network (MPI implementations shortcut
    // them in memory even with shared memory disabled).
    deliver_eager(rank_, tag, data);
    co_await core().work(core().memcpy_time(data.size()), os::Work::kCompute);
    co_return;
  }
  if (data.size() <= cfg_.eager_threshold) {
    WireHeader hdr{kKindEager, tag, data.size(), 0, 0, 0, 0};
    co_await post_slot_message(dst, hdr, data);
    co_return;
  }
  // Rendezvous.
  const nic::MemoryRegion* mr = co_await get_mr(data.data(), data.size());
  const std::uint64_t cookie = next_cookie_++;
  awaiting_fin_.insert(cookie);
  WireHeader hdr{kKindRts, tag, data.size(), cookie, uptr(data.data()), mr->rkey, 0};
  co_await post_slot_message(dst, hdr, {});
  co_await progress_until([&] { return !awaiting_fin_.contains(cookie); },
                          "rendezvous FIN");
}

sim::Task<> VerbsEndpoint::start_pull(PostedRecv& pr, std::uint64_t rts_cookie) {
  const auto key = std::make_pair(pr.src, rts_cookie);
  const RtsInfo info = rts_info_.at(key);
  rts_info_.erase(key);
  const nic::MemoryRegion* mr = co_await get_mr(pr.out.data(), pr.out.size());
  const std::uint64_t wr_id = next_read_wr_++;
  reads_[wr_id] = ReadInFlight{&pr, info.src, rts_cookie, info.size};
  nic::SendWr wr;
  wr.wr_id = wr_id;
  wr.opcode = nic::Opcode::kRdmaRead;
  wr.sge = {uptr(pr.out.data()), static_cast<std::uint32_t>(info.size), mr->lkey};
  wr.remote_addr = info.addr;
  wr.rkey = info.rkey;
  co_await post_with_retry(*qps_[info.src], std::move(wr));
}

sim::Task<> VerbsEndpoint::flush_deferred_fins() {
  while (!deferred_fins_.empty() && !free_slots_.empty()) {
    const DeferredFin fin = deferred_fins_.front();
    deferred_fins_.pop_front();
    WireHeader hdr{kKindFin, 0, 0, fin.cookie, 0, 0, 0};
    co_await post_slot_message(fin.dst, hdr, {});
  }
}

sim::Task<bool> VerbsEndpoint::progress_once() {
  std::array<nic::Cqe, 16> wc;

  // Send-side completions: free bounce slots, finish rendezvous reads.
  std::size_t n = co_await ctx_.poll_cq(*scq_, wc);
  for (std::size_t i = 0; i < n; ++i) {
    const nic::Cqe& c = wc[i];
    if (c.status != nic::WcStatus::kSuccess) {
      throw std::runtime_error(std::string("MPI send completion error: ") +
                               std::string(nic::to_string(c.status)));
    }
    if (c.wr_id >= kReadWrBase) {
      auto it = reads_.find(c.wr_id);
      if (it == reads_.end()) throw std::runtime_error("unknown read completion");
      ReadInFlight r = it->second;
      reads_.erase(it);
      r.pr->got = r.size;
      r.pr->done = true;
      deferred_fins_.push_back({r.src, r.cookie});
    } else {
      free_slots_.push_back(static_cast<std::uint32_t>(c.wr_id - kSendWrBase));
    }
  }

  // Receive-side completions: parse eager/RTS/FIN, repost SRQ slots.
  std::size_t m = co_await ctx_.poll_cq(*rcq_, wc);
  for (std::size_t i = 0; i < m; ++i) {
    const nic::Cqe& c = wc[i];
    if (c.status != nic::WcStatus::kSuccess) {
      throw std::runtime_error(std::string("MPI recv completion error: ") +
                               std::string(nic::to_string(c.status)));
    }
    const auto slot = static_cast<std::uint32_t>(c.wr_id);
    const std::byte* buf = recv_slot(slot);
    WireHeader hdr;
    std::memcpy(&hdr, buf, sizeof(WireHeader));
    const auto peer_it = qpn_to_peer_.find(c.qp_num);
    if (peer_it == qpn_to_peer_.end()) throw std::runtime_error("unknown QP");
    const int src = peer_it->second;
    switch (hdr.kind) {
      case kKindEager:
        deliver_eager(src, hdr.tag,
                      {buf + sizeof(WireHeader), static_cast<std::size_t>(hdr.size)});
        break;
      case kKindRts: {
        rts_info_[{src, hdr.cookie}] = RtsInfo{src, hdr.size, hdr.addr, hdr.rkey};
        PostedRecv* pr = deliver_rts({src, hdr.tag, hdr.size, hdr.cookie});
        if (pr != nullptr) co_await start_pull(*pr, hdr.cookie);
        break;
      }
      case kKindFin:
        awaiting_fin_.erase(hdr.cookie);
        break;
      default:
        throw std::runtime_error("corrupt MPI wire header");
    }
    const int rc = co_await ctx_.post_srq_recv(
        *srq_, {slot, {uptr(recv_slot(slot)),
                       static_cast<std::uint32_t>(slot_size()), recv_mr_->lkey}});
    if (rc != 0) throw std::runtime_error("SRQ repost failed");
  }

  // Charge the receive-side copies accrued by deliver_eager.
  if (pending_copy_cost_ > 0) {
    const sim::Time cost = pending_copy_cost_;
    pending_copy_cost_ = 0;
    co_await core().work(cost, os::Work::kCompute);
  }
  co_await flush_deferred_fins();
  co_return n > 0 || m > 0;
}

}  // namespace cord::mpi
