// Transport-neutral MPI-style endpoint: tag matching, unexpected-message
// queues, and the posted-receive registry. Concrete endpoints (verbs,
// sockets) implement send() and the progress function; the matching logic
// here is shared.
//
// Semantics implemented (the subset NPB needs):
//  * point-to-point ordered delivery per (source, destination) pair;
//  * matching on exact (source, tag);
//  * eager messages buffer on the receiver if unexpected (with the copy
//    charged), rendezvous messages transfer zero-copy once matched.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <span>
#include <stdexcept>
#include <vector>

#include "os/cpu.hpp"
#include "sim/task.hpp"

namespace cord::mpi {

class Endpoint {
 public:
  virtual ~Endpoint() = default;

  virtual int rank() const = 0;
  virtual int world_size() const = 0;
  virtual os::Core& core() = 0;

  /// Blocking-buffered send (returns once the payload is handed to the
  /// transport; large messages block until the receiver has pulled them).
  virtual sim::Task<> send(int dst, int tag, std::span<const std::byte> data) = 0;

  /// Blocking receive into `out`; returns the message size. Throws on
  /// truncation (message larger than `out`).
  sim::Task<std::size_t> recv(int src, int tag, std::span<std::byte> out);

  /// Drive the transport once (poll queues, dispatch arrivals). Returns
  /// whether anything happened. Waiting loops call this repeatedly; it
  /// must always consume virtual time.
  virtual sim::Task<bool> progress_once() = 0;

  /// Poll progress until `done()` holds, with exponential poll-coarsening
  /// on idle stretches (amortizes simulation events; costs at most ~20 us
  /// of detection latency on long waits) and a virtual-time deadline that
  /// turns workload deadlocks into exceptions.
  template <typename Pred>
  sim::Task<> progress_until(Pred&& done, const char* what) {
    int idle = 0;
    const sim::Time deadline = core().engine().now() + kProgressTimeout;
    while (!done()) {
      const bool any = co_await progress_once();
      if (any) {
        idle = 0;
        continue;
      }
      if (++idle > 64) {
        const sim::Time backoff =
            std::min<sim::Time>(sim::ns(25) * idle, sim::us(20));
        co_await core().work(backoff, os::Work::kSpin);
      }
      if (core().engine().now() > deadline) {
        throw std::runtime_error(std::string("MPI progress timed out: ") + what);
      }
    }
  }

 protected:
  struct PostedRecv {
    int src = 0;
    int tag = 0;
    std::span<std::byte> out;
    std::size_t got = 0;
    bool matched = false;  // a transfer is in flight for this recv
    bool done = false;
  };
  struct UnexpectedMsg {
    int src = 0;
    int tag = 0;
    std::vector<std::byte> data;
  };

  /// Implementation hook: an RTS for a rendezvous transfer matched a
  /// posted receive — start pulling `size` bytes. `rts_cookie` identifies
  /// the transfer to the concrete endpoint.
  virtual sim::Task<> start_pull(PostedRecv& pr, std::uint64_t rts_cookie) = 0;

  /// Called by implementations when an eager payload arrives.
  /// Returns the core-time cost (copy) which the caller must charge.
  void deliver_eager(int src, int tag, std::span<const std::byte> payload);

  /// Called by implementations when a rendezvous announcement arrives.
  struct PendingRts {
    int src = 0;
    int tag = 0;
    std::uint64_t size = 0;
    std::uint64_t cookie = 0;
  };
  /// Returns the matched posted receive (caller then invokes start_pull),
  /// or nullptr if the RTS is stored as pending.
  PostedRecv* deliver_rts(PendingRts rts);

  /// Deadlock guard: a blocking operation that makes no progress for this
  /// much virtual time indicates a hung workload and throws.
  static constexpr sim::Time kProgressTimeout = sim::sec(5);

  std::list<PostedRecv*> posted_;
  std::deque<UnexpectedMsg> unexpected_;
  std::deque<PendingRts> pending_rts_;
  /// Copy cost accrued by deliveries inside progress; drained and charged
  /// by the progress loop.
  sim::Time pending_copy_cost_ = 0;
};

}  // namespace cord::mpi
