#include "mpi/endpoint.hpp"

#include <cstring>

namespace cord::mpi {

sim::Task<std::size_t> Endpoint::recv(int src, int tag, std::span<std::byte> out) {
  // 1. Already-arrived eager message?
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (it->src == src && it->tag == tag) {
      if (it->data.size() > out.size()) {
        throw std::runtime_error("MPI recv truncation (unexpected path)");
      }
      const std::size_t n = it->data.size();
      std::memcpy(out.data(), it->data.data(), n);
      co_await core().work(core().memcpy_time(n), os::Work::kCompute);
      unexpected_.erase(it);
      co_return n;
    }
  }
  // 2. Already-announced rendezvous?
  for (auto it = pending_rts_.begin(); it != pending_rts_.end(); ++it) {
    if (it->src == src && it->tag == tag) {
      PendingRts rts = *it;
      pending_rts_.erase(it);
      if (rts.size > out.size()) {
        throw std::runtime_error("MPI recv truncation (rendezvous path)");
      }
      PostedRecv pr{src, tag, out, 0, true, false};
      posted_.push_back(&pr);
      co_await start_pull(pr, rts.cookie);
      co_await progress_until([&] { return pr.done; }, "recv (rendezvous)");
      posted_.remove(&pr);
      co_return pr.got;
    }
  }
  // 3. Post and wait.
  PostedRecv pr{src, tag, out, 0, false, false};
  posted_.push_back(&pr);
  co_await progress_until([&] { return pr.done; }, "recv (posted)");
  posted_.remove(&pr);
  co_return pr.got;
}

void Endpoint::deliver_eager(int src, int tag, std::span<const std::byte> payload) {
  for (PostedRecv* pr : posted_) {
    if (!pr->matched && pr->src == src && pr->tag == tag) {
      if (payload.size() > pr->out.size()) {
        throw std::runtime_error("MPI recv truncation (eager delivery)");
      }
      std::memcpy(pr->out.data(), payload.data(), payload.size());
      pr->got = payload.size();
      pr->matched = true;
      pr->done = true;
      pending_copy_cost_ += core().memcpy_time(payload.size());
      return;
    }
  }
  UnexpectedMsg msg{src, tag, {payload.begin(), payload.end()}};
  pending_copy_cost_ += core().memcpy_time(payload.size());
  unexpected_.push_back(std::move(msg));
}

Endpoint::PostedRecv* Endpoint::deliver_rts(PendingRts rts) {
  for (PostedRecv* pr : posted_) {
    if (!pr->matched && pr->src == rts.src && pr->tag == rts.tag) {
      if (rts.size > pr->out.size()) {
        throw std::runtime_error("MPI recv truncation (RTS delivery)");
      }
      pr->matched = true;
      return pr;
    }
  }
  pending_rts_.push_back(rts);
  return nullptr;
}

}  // namespace cord::mpi
