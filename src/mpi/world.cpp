#include "mpi/world.hpp"

namespace cord::mpi {

sim::Task<> Rank::barrier() {
  const int n = size();
  std::byte token{0x42};
  for (int k = 1; k < n; k <<= 1) {
    const int dst = (id_ + k) % n;
    const int src = (id_ - k + n) % n;
    const int tag = coll_tag();
    std::byte got;
    co_await sendrecv<std::byte>(dst, tag, {&token, 1}, src, tag, {&got, 1});
  }
}

World::World(core::System& system, int nranks, WorldConfig cfg)
    : system_(&system), cfg_(cfg), nranks_(nranks) {}

World::Traffic World::traffic() const {
  Traffic t;
  if (cfg_.net == NetMode::kIpoib) {
    for (const auto& s : stacks_) {
      t.messages += s->segments_tx();
      t.bytes += s->bytes_tx();
    }
  } else {
    for (std::size_t h = 0; h < system_->host_count(); ++h) {
      const nic::NicCounters& c = system_->host(h).nic().counters();
      t.messages += c.tx_msgs;
      t.bytes += c.tx_bytes;
    }
  }
  return t;
}

sim::Task<> World::setup_verbs() {
  const verbs::DataplaneMode mode = cfg_.net == NetMode::kCord
                                        ? verbs::DataplaneMode::kCord
                                        : verbs::DataplaneMode::kBypass;
  VerbsEndpoint::Config ec{cfg_.eager_threshold, cfg_.send_slots, cfg_.srq_slots};
  std::vector<VerbsEndpoint*> eps;
  std::vector<int> local_core(system_->host_count(), 0);
  for (int r = 0; r < nranks_; ++r) {
    os::Host& host = system_->host(static_cast<std::size_t>(host_of(r)));
    const int core_idx = local_core[static_cast<std::size_t>(host_of(r))]++;
    verbs::ContextOptions opts = system_->options(mode, cfg_.tenant);
    opts.poll_via_kernel = cfg_.cord_poll_via_kernel;
    verbs::Context ctx(host, static_cast<std::size_t>(core_idx), opts);
    auto ep = std::make_unique<VerbsEndpoint>(r, nranks_, std::move(ctx), ec);
    eps.push_back(ep.get());
    ranks_.push_back(std::make_unique<Rank>(*this, r, std::move(ep)));
  }
  for (VerbsEndpoint* ep : eps) co_await ep->setup();
  for (int i = 0; i < nranks_; ++i) {
    for (int j = i + 1; j < nranks_; ++j) {
      co_await VerbsEndpoint::wire(*eps[i], *eps[j]);
    }
  }
}

sim::Task<> World::setup_sockets() {
  for (std::size_t h = 0; h < system_->host_count(); ++h) {
    stacks_.push_back(std::make_unique<sock::SocketStack>(
        system_->host(h), *system_->network_ptr()));
  }
  std::vector<SocketEndpoint*> eps;
  std::vector<int> local_core(system_->host_count(), 0);
  for (int r = 0; r < nranks_; ++r) {
    const auto h = static_cast<std::size_t>(host_of(r));
    os::Core& core = system_->host(h).core(
        static_cast<std::size_t>(local_core[h]++));
    auto ep = std::make_unique<SocketEndpoint>(r, nranks_, core, *stacks_[h]);
    eps.push_back(ep.get());
    ranks_.push_back(std::make_unique<Rank>(*this, r, std::move(ep)));
  }
  for (int i = 0; i < nranks_; ++i) {
    for (int j = i + 1; j < nranks_; ++j) {
      auto [si, sj] = sock::SocketStack::connect(
          *stacks_[static_cast<std::size_t>(host_of(i))],
          *stacks_[static_cast<std::size_t>(host_of(j))]);
      eps[i]->attach(j, si);
      eps[j]->attach(i, sj);
    }
  }
  co_return;
}

sim::Time World::run(std::function<sim::Task<>(Rank&)> body) {
  sim::Engine& engine = system_->engine();
  sim::Time t_start = 0;
  sim::Time t_end = 0;

  std::exception_ptr error;

  engine.spawn([](World& w, std::function<sim::Task<>(Rank&)> body,
                  sim::Time& t_start, sim::Time& t_end,
                  std::exception_ptr& error) -> sim::Task<> {
    try {
      if (w.cfg_.net == NetMode::kIpoib) {
        co_await w.setup_sockets();
      } else {
        co_await w.setup_verbs();
      }
      // Launch every rank: barrier, body, then record the last finisher.
      std::vector<std::unique_ptr<sim::Joinable>> joins;
      int remaining = w.size();
      for (int r = 0; r < w.size(); ++r) {
        joins.push_back(std::make_unique<sim::Joinable>(
            w.system_->engine(),
            [](Rank& rank, std::function<sim::Task<>(Rank&)>& body,
               sim::Time& t_start, sim::Time& t_end,
               int& remaining) -> sim::Task<> {
              co_await rank.barrier();
              if (rank.id() == 0) t_start = rank.now();
              co_await body(rank);
              if (--remaining == 0) t_end = rank.now();
            }(w.rank(r), body, t_start, t_end, remaining)));
      }
      // Join every rank even if some threw: destroying a Joinable while
      // its wrapper still runs would leave dangling latches.
      std::exception_ptr first_error;
      for (auto& j : joins) {
        try {
          co_await j->join();
        } catch (...) {
          if (!first_error) first_error = std::current_exception();
        }
      }
      if (first_error) std::rethrow_exception(first_error);
    } catch (...) {
      error = std::current_exception();
    }
  }(*this, std::move(body), t_start, t_end, error));

  engine.run();
  if (error) std::rethrow_exception(error);
  if (t_end == 0) throw std::runtime_error("MPI world did not complete");
  return t_end - t_start;
}

}  // namespace cord::mpi
