// The MPI runtime: a World of ranks spread across the hosts of a
// core::System, with typed point-to-point operations and the collectives
// the NPB suite needs (barrier, bcast, reduce, allreduce, allgather,
// alltoall(v)) implemented with the standard algorithms (dissemination,
// binomial trees, recursive doubling, ring, pairwise exchange).
//
// The network is pluggable per the paper's Fig. 6 comparison:
//   kBypass — MPI over verbs with kernel-bypass (classical RDMA);
//   kCord   — the same verbs stack, data plane through the kernel;
//   kIpoib  — MPI over the socket stack on the same NIC.
// Shared-memory communication is deliberately absent (the paper bars it
// "to amplify the network effects") — same-host ranks go through the NIC
// loopback (verbs) or the kernel stack (sockets).
#pragma once

#include <functional>
#include <memory>

#include "core/system.hpp"
#include "mpi/socket_endpoint.hpp"
#include "mpi/verbs_endpoint.hpp"
#include "sim/join.hpp"

namespace cord::mpi {

enum class NetMode { kBypass, kCord, kIpoib };

struct WorldConfig {
  NetMode net = NetMode::kBypass;
  std::size_t eager_threshold = 4096;
  std::uint32_t send_slots = 64;
  std::uint32_t srq_slots = 1024;
  os::TenantId tenant = 0;
  /// CoRD only: route the progress engine's poll_cq through the kernel.
  /// MPI libraries poll in a tight loop, so kernel-routed polls throttle
  /// rendezvous turnaround badly; the paper's NPB results (CoRD ~ 1.0 on
  /// communication-bound kernels) are only consistent with the CQ being
  /// polled from user-mapped memory while the posting verbs trap. The
  /// abl_poll_path bench quantifies the alternative.
  bool cord_poll_via_kernel = false;
};

enum class Op { kSum, kMax, kMin };

template <typename T>
T apply_op(Op op, T a, T b) {
  switch (op) {
    case Op::kSum: return a + b;
    case Op::kMax: return a > b ? a : b;
    case Op::kMin: return a < b ? a : b;
  }
  return a;
}

class World;

class Rank {
 public:
  Rank(World& world, int id, std::unique_ptr<Endpoint> ep)
      : world_(&world), id_(id), ep_(std::move(ep)) {}

  int id() const { return id_; }
  int size() const { return ep_->world_size(); }
  os::Core& core() { return ep_->core(); }
  Endpoint& endpoint() { return *ep_; }
  sim::Time now() { return core().engine().now(); }

  /// Charge `t` of computation (at base frequency) to this rank's core.
  sim::Task<> compute(sim::Time t) { return core().work(t, os::Work::kCompute); }

  // --- typed point-to-point --------------------------------------------
  template <typename T>
  sim::Task<> send(int dst, int tag, std::span<const T> data) {
    co_await ep_->send(dst, tag, std::as_bytes(data));
  }
  template <typename T>
  sim::Task<std::size_t> recv(int src, int tag, std::span<T> out) {
    const std::size_t bytes = co_await ep_->recv(src, tag, std::as_writable_bytes(out));
    co_return bytes / sizeof(T);
  }
  template <typename T>
  sim::Task<> sendrecv(int dst, int stag, std::span<const T> sdata, int src,
                       int rtag, std::span<T> rdata) {
    sim::Joinable tx(core().engine(), send<T>(dst, stag, sdata));
    (void)co_await recv<T>(src, rtag, rdata);
    co_await tx.join();
  }

  // --- collectives --------------------------------------------------------
  sim::Task<> barrier();
  template <typename T>
  sim::Task<> bcast(std::span<T> data, int root);
  template <typename T>
  sim::Task<> reduce(std::span<const T> in, std::span<T> out, Op op, int root);
  template <typename T>
  sim::Task<> allreduce(std::span<const T> in, std::span<T> out, Op op);
  /// in: my block (k elements); out: size*k elements.
  template <typename T>
  sim::Task<> allgather(std::span<const T> in, std::span<T> out);
  /// in/out: size*k elements, block i for/from rank i.
  template <typename T>
  sim::Task<> alltoall(std::span<const T> in, std::span<T> out);
  /// Variable block sizes; offsets are prefix sums of counts.
  template <typename T>
  sim::Task<> alltoallv(std::span<const T> in, std::span<const std::size_t> scounts,
                        std::span<T> out, std::span<const std::size_t> rcounts);

 private:
  int coll_tag() { return kCollTagBase + (coll_seq_++ & 0xFFFFFF); }
  static constexpr int kCollTagBase = 1 << 28;

  World* world_;
  int id_;
  std::unique_ptr<Endpoint> ep_;
  std::uint32_t coll_seq_ = 0;
};

class World {
 public:
  /// Ranks are block-distributed across the system's hosts, one core each.
  World(core::System& system, int nranks, WorldConfig cfg = {});

  core::System& system() { return *system_; }
  int size() const { return static_cast<int>(ranks_.size()); }
  Rank& rank(int i) { return *ranks_.at(i); }
  const WorldConfig& config() const { return cfg_; }

  /// Wire the world up, run `body` on every rank, and return the virtual
  /// time from the post-setup barrier to the last rank finishing.
  sim::Time run(std::function<sim::Task<>(Rank&)> body);

  /// Total traffic emitted through the transports so far (NIC counters
  /// for verbs modes, socket-stack counters for IPoIB).
  struct Traffic {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };
  Traffic traffic() const;

  /// Host index a rank lives on (block distribution).
  int host_of(int rank) const {
    const int hosts = static_cast<int>(system_->host_count());
    const int n = static_cast<int>(nranks_);
    return static_cast<int>(static_cast<long long>(rank) * hosts / n);
  }

 private:
  sim::Task<> setup_verbs();
  sim::Task<> setup_sockets();

  core::System* system_;
  WorldConfig cfg_;
  int nranks_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  std::vector<std::unique_ptr<sock::SocketStack>> stacks_;  // IPoIB only
};

// --- collective templates ----------------------------------------------

template <typename T>
sim::Task<> Rank::bcast(std::span<T> data, int root) {
  const int n = size();
  if (n == 1) co_return;
  const int tag = coll_tag();
  const int relative = (id_ - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if (relative & mask) {
      const int src = (relative - mask + root) % n;
      (void)co_await recv<T>(src, tag, data);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < n) {
      const int dst = (relative + mask + root) % n;
      co_await send<T>(dst, tag, data);
    }
    mask >>= 1;
  }
}

template <typename T>
sim::Task<> Rank::reduce(std::span<const T> in, std::span<T> out, Op op, int root) {
  const int n = size();
  std::vector<T> acc(in.begin(), in.end());
  std::vector<T> scratch(in.size());
  const int tag = coll_tag();
  const int relative = (id_ - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if (relative & mask) {
      const int dst = (relative - mask + root) % n;
      co_await send<T>(dst, tag, std::span<const T>(acc));
      break;
    }
    if (relative + mask < n) {
      const int src = (relative + mask + root) % n;
      (void)co_await recv<T>(src, tag, std::span<T>(scratch));
      for (std::size_t i = 0; i < acc.size(); ++i) {
        acc[i] = apply_op(op, acc[i], scratch[i]);
      }
      // The reduction arithmetic itself costs CPU (~1 ns/element).
      co_await compute(sim::ns(static_cast<std::int64_t>(acc.size())));
    }
    mask <<= 1;
  }
  if (id_ == root) std::copy(acc.begin(), acc.end(), out.begin());
}

template <typename T>
sim::Task<> Rank::allreduce(std::span<const T> in, std::span<T> out, Op op) {
  const int n = size();
  std::copy(in.begin(), in.end(), out.begin());
  if (n == 1) co_return;
  if ((n & (n - 1)) == 0) {
    // Recursive doubling.
    std::vector<T> scratch(in.size());
    for (int mask = 1; mask < n; mask <<= 1) {
      const int partner = id_ ^ mask;
      const int tag = coll_tag();
      co_await sendrecv<T>(partner, tag, std::span<const T>(out.data(), out.size()),
                           partner, tag, std::span<T>(scratch));
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = apply_op(op, out[i], scratch[i]);
      }
      co_await compute(sim::ns(static_cast<std::int64_t>(out.size())));
    }
  } else {
    co_await reduce<T>(in, out, op, 0);
    co_await bcast<T>(out, 0);
  }
}

template <typename T>
sim::Task<> Rank::allgather(std::span<const T> in, std::span<T> out) {
  const int n = size();
  const std::size_t k = in.size();
  std::copy(in.begin(), in.end(), out.begin() + id_ * k);
  if (n == 1) co_return;
  const int right = (id_ + 1) % n;
  const int left = (id_ - 1 + n) % n;
  for (int step = 0; step < n - 1; ++step) {
    const int send_block = (id_ - step + n) % n;
    const int recv_block = (id_ - step - 1 + n) % n;
    const int tag = coll_tag();
    co_await sendrecv<T>(
        right, tag, std::span<const T>(out.data() + send_block * k, k), left, tag,
        std::span<T>(out.data() + recv_block * k, k));
  }
}

template <typename T>
sim::Task<> Rank::alltoall(std::span<const T> in, std::span<T> out) {
  const int n = size();
  const std::size_t k = in.size() / n;
  std::copy(in.begin() + id_ * k, in.begin() + (id_ + 1) * k,
            out.begin() + id_ * k);
  for (int step = 1; step < n; ++step) {
    const int dst = (id_ + step) % n;
    const int src = (id_ - step + n) % n;
    const int tag = coll_tag();
    co_await sendrecv<T>(dst, tag, std::span<const T>(in.data() + dst * k, k),
                         src, tag, std::span<T>(out.data() + src * k, k));
  }
}

template <typename T>
sim::Task<> Rank::alltoallv(std::span<const T> in,
                            std::span<const std::size_t> scounts, std::span<T> out,
                            std::span<const std::size_t> rcounts) {
  const int n = size();
  std::vector<std::size_t> soff(n + 1, 0), roff(n + 1, 0);
  for (int i = 0; i < n; ++i) {
    soff[i + 1] = soff[i] + scounts[i];
    roff[i + 1] = roff[i] + rcounts[i];
  }
  std::copy(in.begin() + soff[id_], in.begin() + soff[id_ + 1],
            out.begin() + roff[id_]);
  for (int step = 1; step < n; ++step) {
    const int dst = (id_ + step) % n;
    const int src = (id_ - step + n) % n;
    const int tag = coll_tag();
    co_await sendrecv<T>(
        dst, tag, std::span<const T>(in.data() + soff[dst], scounts[dst]), src,
        tag, std::span<T>(out.data() + roff[src], rcounts[src]));
  }
}

}  // namespace cord::mpi
