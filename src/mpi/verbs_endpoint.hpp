// MPI endpoint over the verbs API — the architecture of real MPI-over-
// RDMA stacks (MVAPICH/Open MPI UCX):
//
//  * full mesh of RC queue pairs, one per peer, sharing one send CQ, one
//    recv CQ and one SRQ per rank;
//  * eager protocol for small messages: sender copies into a registered
//    bounce slot, receiver consumes SRQ slots and copies out (or buffers
//    unexpected);
//  * rendezvous for large messages: sender registers the user buffer
//    (registration cache) and sends an RTS; the receiver pulls the data
//    with one RDMA READ straight into the destination buffer (zero-copy)
//    and returns a FIN.
//
// Because every data-plane verb goes through the rank's verbs::Context,
// switching the whole MPI stack between bypass and CoRD is the one-line
// mode change the paper advertises.
#pragma once

#include <map>
#include <memory>
#include <set>

#include "mpi/endpoint.hpp"
#include "verbs/verbs.hpp"

namespace cord::mpi {

class VerbsEndpoint final : public Endpoint {
 public:
  struct Config {
    std::size_t eager_threshold = 4096;
    std::uint32_t send_slots = 64;
    std::uint32_t srq_slots = 1024;
  };

  VerbsEndpoint(int rank, int world_size, verbs::Context ctx, Config cfg);

  int rank() const override { return rank_; }
  int world_size() const override { return world_size_; }
  os::Core& core() override { return ctx_.core(); }
  verbs::Context& context() { return ctx_; }

  /// Allocate PD/CQs/SRQ/bounce buffers and pre-post the SRQ.
  sim::Task<> setup();
  /// Create and connect the RC queue pairs of one rank pair (both sides).
  static sim::Task<> wire(VerbsEndpoint& a, VerbsEndpoint& b);

  sim::Task<> send(int dst, int tag, std::span<const std::byte> data) override;
  sim::Task<bool> progress_once() override;

 private:
  struct WireHeader {
    std::uint32_t kind = 0;  // 0 eager, 1 rts, 2 fin
    std::int32_t tag = 0;
    std::uint64_t size = 0;
    std::uint64_t cookie = 0;
    std::uint64_t addr = 0;
    std::uint32_t rkey = 0;
    std::uint32_t pad = 0;
  };
  static constexpr std::uint32_t kKindEager = 0;
  static constexpr std::uint32_t kKindRts = 1;
  static constexpr std::uint32_t kKindFin = 2;
  static constexpr std::uint64_t kSendWrBase = 1ull << 20;
  static constexpr std::uint64_t kReadWrBase = 1ull << 21;

  struct RtsInfo {
    int src = 0;
    std::uint64_t size = 0;
    std::uint64_t addr = 0;
    std::uint32_t rkey = 0;
  };
  struct ReadInFlight {
    PostedRecv* pr = nullptr;
    int src = 0;
    std::uint64_t cookie = 0;
    std::uint64_t size = 0;
  };
  struct DeferredFin {
    int dst = 0;
    std::uint64_t cookie = 0;
  };

  sim::Task<> start_pull(PostedRecv& pr, std::uint64_t rts_cookie) override;

  std::size_t slot_size() const { return cfg_.eager_threshold + sizeof(WireHeader); }
  std::byte* send_slot(std::uint32_t s) { return send_arena_.data() + s * slot_size(); }
  std::byte* recv_slot(std::uint32_t s) { return recv_arena_.data() + s * slot_size(); }

  sim::Task<std::uint32_t> acquire_slot();
  sim::Task<> post_with_retry(nic::QueuePair& qp, nic::SendWr wr);
  sim::Task<const nic::MemoryRegion*> get_mr(const void* p, std::size_t len);
  /// Post an eager-protocol control/payload message from a bounce slot.
  sim::Task<> post_slot_message(int dst, const WireHeader& hdr,
                                std::span<const std::byte> payload);
  sim::Task<> flush_deferred_fins();

  int rank_;
  int world_size_;
  verbs::Context ctx_;
  Config cfg_;

  nic::ProtectionDomainId pd_ = 0;
  nic::CompletionQueue* scq_ = nullptr;
  nic::CompletionQueue* rcq_ = nullptr;
  nic::SharedReceiveQueue* srq_ = nullptr;
  std::vector<nic::QueuePair*> qps_;          // by peer rank
  std::map<std::uint32_t, int> qpn_to_peer_;  // local qpn -> peer rank

  std::vector<std::byte> send_arena_;
  std::vector<std::byte> recv_arena_;
  const nic::MemoryRegion* send_mr_ = nullptr;
  const nic::MemoryRegion* recv_mr_ = nullptr;
  std::deque<std::uint32_t> free_slots_;

  std::map<std::pair<std::uintptr_t, std::size_t>, const nic::MemoryRegion*>
      mr_cache_;
  // Keyed by (source rank, sender-local cookie): cookies are only
  // unique per sender.
  std::map<std::pair<int, std::uint64_t>, RtsInfo> rts_info_;
  std::map<std::uint64_t, ReadInFlight> reads_;  // wr_id -> read
  std::set<std::uint64_t> awaiting_fin_;
  std::deque<DeferredFin> deferred_fins_;
  std::uint64_t next_cookie_ = 1;
  std::uint64_t next_read_wr_ = kReadWrBase;
};

}  // namespace cord::mpi
