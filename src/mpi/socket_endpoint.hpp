// MPI endpoint over the socket stack (the IPoIB baseline): one stream
// socket per peer, length-prefixed frames, epoll-style progress. All
// messages are effectively "eager" — the kernel stream handles any size
// with its own flow control; matching still happens at the MPI layer.
#pragma once

#include <vector>

#include "mpi/endpoint.hpp"
#include "sock/socket.hpp"

namespace cord::mpi {

class SocketEndpoint final : public Endpoint {
 public:
  SocketEndpoint(int rank, int world_size, os::Core& core,
                 sock::SocketStack& stack)
      : rank_(rank), world_size_(world_size), core_(&core), stack_(&stack) {
    sockets_.resize(world_size, nullptr);
    readers_.resize(world_size);
  }

  int rank() const override { return rank_; }
  int world_size() const override { return world_size_; }
  os::Core& core() override { return *core_; }
  sock::SocketStack& stack() { return *stack_; }

  /// Install the connected socket towards `peer` (wired by the World).
  void attach(int peer, sock::Socket* socket);

  sim::Task<> send(int dst, int tag, std::span<const std::byte> data) override;
  sim::Task<bool> progress_once() override;

 private:
  struct FrameHeader {
    std::int32_t tag = 0;
    std::uint32_t pad = 0;
    std::uint64_t size = 0;
  };
  struct Reader {
    bool have_header = false;
    FrameHeader header;
    std::vector<std::byte> body;
    std::size_t got = 0;
    bool busy = false;  // a send is serializing on this peer's socket
  };

  sim::Task<> start_pull(PostedRecv&, std::uint64_t) override {
    throw std::runtime_error("sockets have no rendezvous path");
  }

  /// Drain whatever is buffered on one socket into frames.
  sim::Task<bool> pump(int peer);
  void mark_ready(int peer);

  int rank_;
  int world_size_;
  os::Core* core_;
  sock::SocketStack* stack_;
  std::vector<sock::Socket*> sockets_;
  std::vector<Reader> readers_;
  std::unique_ptr<sim::Signal> epoll_signal_;
  std::deque<int> ready_;        // peers with signalled readiness
  std::vector<char> in_ready_;   // dedupe flags for ready_
  int idle_streak_ = 0;          // consecutive empty polls (spin-then-block)
};

}  // namespace cord::mpi
