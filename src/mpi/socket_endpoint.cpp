#include "mpi/socket_endpoint.hpp"

#include <cstring>

namespace cord::mpi {

void SocketEndpoint::attach(int peer, sock::Socket* socket) {
  sockets_[peer] = socket;
  if (!epoll_signal_) {
    epoll_signal_ = std::make_unique<sim::Signal>(core_->engine());
    in_ready_.assign(static_cast<std::size_t>(world_size_), 0);
  }
  // Epoll-style readiness: arrivals enqueue the peer once; progress_once
  // only visits ready peers (O(ready), not O(world)).
  socket->set_data_listener([this, peer] { mark_ready(peer); });
}

void SocketEndpoint::mark_ready(int peer) {
  if (in_ready_[static_cast<std::size_t>(peer)] == 0) {
    in_ready_[static_cast<std::size_t>(peer)] = 1;
    ready_.push_back(peer);
  }
  epoll_signal_->trigger();
}

sim::Task<> SocketEndpoint::send(int dst, int tag, std::span<const std::byte> data) {
  if (dst == rank_) {
    deliver_eager(rank_, tag, data);
    const sim::Time cost = pending_copy_cost_;
    pending_copy_cost_ = 0;
    co_await core().work(cost, os::Work::kCompute);
    co_return;
  }
  // Serialize concurrent sends to the same peer (stream framing). Plain
  // delay rather than progress: the blocking send completes on socket
  // window events, which progress_once cannot observe.
  while (readers_[dst].busy) co_await core().engine().delay(sim::us(1));
  readers_[dst].busy = true;
  FrameHeader hdr{tag, 0, data.size()};
  std::vector<std::byte> frame(sizeof(FrameHeader) + data.size());
  std::memcpy(frame.data(), &hdr, sizeof(FrameHeader));
  if (!data.empty()) {
    std::memcpy(frame.data() + sizeof(FrameHeader), data.data(), data.size());
  }
  const int rc = co_await sockets_[dst]->send(core(), frame);
  readers_[dst].busy = false;
  if (rc != 0) throw std::runtime_error("socket send failed");
}

sim::Task<bool> SocketEndpoint::pump(int peer) {
  sock::Socket* s = sockets_[peer];
  Reader& r = readers_[peer];
  bool any = false;
  for (;;) {
    if (!r.have_header) {
      if (s->available() < sizeof(FrameHeader)) break;
      std::byte raw[sizeof(FrameHeader)];
      co_await s->recv_exact(core(), raw);
      std::memcpy(&r.header, raw, sizeof(FrameHeader));
      r.have_header = true;
      r.body.resize(r.header.size);
      r.got = 0;
      any = true;
    }
    if (r.got < r.body.size()) {
      if (s->available() == 0) break;
      const std::size_t n = co_await s->recv(
          core(), std::span<std::byte>(r.body).subspan(r.got));
      r.got += n;
      any = true;
    }
    if (r.got == r.body.size()) {
      deliver_eager(peer, r.header.tag, r.body);
      r.have_header = false;
      r.body.clear();
      r.got = 0;
    }
  }
  co_return any;
}

sim::Task<bool> SocketEndpoint::progress_once() {
  bool any = false;
  // Visit only peers whose sockets signalled readiness.
  std::size_t budget = ready_.size();
  while (budget-- > 0 && !ready_.empty()) {
    const int peer = ready_.front();
    ready_.pop_front();
    in_ready_[static_cast<std::size_t>(peer)] = 0;
    if (sockets_[peer] == nullptr || sockets_[peer]->available() == 0) continue;
    any |= co_await pump(peer);
    // Bytes may remain (partial frame or another frame behind): keep the
    // peer queued so the next progress call resumes it.
    if (sockets_[peer]->available() > 0) mark_ready(peer);
  }
  if (pending_copy_cost_ > 0) {
    const sim::Time cost = pending_copy_cost_;
    pending_copy_cost_ = 0;
    co_await core().work(cost, os::Work::kCompute);
    any = true;
  }
  if (!any) {
    // Real MPI-over-sockets progress engines spin on non-blocking polls
    // for a while before blocking (sched_yield loops); only a sustained
    // idle stretch falls back to epoll_wait + interrupt wakeup. This also
    // keeps the DVFS profile comparable to the verbs transports (spinning
    // counts as spin).
    if (++idle_streak_ < 256) {
      co_await core().work(sim::ns(300), os::Work::kSpin);
    } else {
      co_await core().work(core().syscall_cost(), os::Work::kKernel);
      if (ready_.empty()) {
        co_await epoll_signal_->wait();
        co_await core().work(core().model().interrupt_handling +
                                 core().model().wakeup_latency,
                             os::Work::kKernel);
      }
      idle_streak_ = 0;
    }
  } else {
    idle_streak_ = 0;
  }
  co_return any;
}

}  // namespace cord::mpi
