// Measurement collection: online summary statistics, sample percentiles,
// and time-windowed throughput counters used by the benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/units.hpp"

namespace cord::sim {

/// Online mean/variance/min/max (Welford).
class OnlineStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores raw samples; percentiles computed on demand.
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    summary_.add(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { values_.reserve(n); }
  void clear() {
    values_.clear();
    summary_ = {};
    sorted_ = false;
  }

  std::size_t count() const { return values_.size(); }
  const OnlineStats& summary() const { return summary_; }
  double mean() const { return summary_.mean(); }
  double stddev() const { return summary_.stddev(); }
  double min() const { return summary_.min(); }
  double max() const { return summary_.max(); }

  /// Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  OnlineStats summary_;
};

/// Counts units (bytes, messages) over a virtual-time window.
class ThroughputCounter {
 public:
  void start(Time now) {
    start_time_ = now;
    units_ = 0;
  }
  void add(std::uint64_t units) { units_ += units; }
  std::uint64_t units() const { return units_; }

  double per_second(Time now) const {
    const Time elapsed = now - start_time_;
    if (elapsed <= 0) return 0.0;
    return static_cast<double>(units_) / to_sec(elapsed);
  }
  /// Convenience for byte counters.
  double gbit_per_sec(Time now) const { return per_second(now) * 8.0 / 1e9; }

 private:
  Time start_time_ = 0;
  std::uint64_t units_ = 0;
};

}  // namespace cord::sim
