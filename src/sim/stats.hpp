// Measurement collection: online summary statistics, sample percentiles,
// and time-windowed throughput counters used by the benchmark harnesses.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/units.hpp"

namespace cord::sim {

/// Online mean/variance/min/max (Welford).
class OnlineStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores raw samples; percentiles computed on demand.
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    summary_.add(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { values_.reserve(n); }
  void clear() {
    values_.clear();
    summary_ = {};
    sorted_ = false;
  }

  std::size_t count() const { return values_.size(); }
  const OnlineStats& summary() const { return summary_; }
  double mean() const { return summary_.mean(); }
  double stddev() const { return summary_.stddev(); }
  double min() const { return summary_.min(); }
  double max() const { return summary_.max(); }

  /// Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  /// The recorded values — insertion order until the first percentile()
  /// call sorts them in place.
  const std::vector<double>& values() const { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  OnlineStats summary_;
};

/// Log-bucketed histogram of non-negative integer values (latencies in
/// picoseconds, sizes in bytes). Bucket i counts values whose bit width is
/// i, i.e. [2^(i-1), 2^i). Memory is a fixed 65-slot array regardless of
/// sample count — unlike `Samples`, which retains every value — so it is
/// safe to keep one per tenant per metric in long-running simulations.
/// Percentiles interpolate within the winning bucket (log-domain error is
/// bounded by one octave; fine for order-of-magnitude observability).
class LogHistogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit_width of uint64 in 0..64

  void add(std::uint64_t v) {
    ++buckets_[std::bit_width(v)];
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }

  /// Approximate percentile, p in [0, 100]: walks buckets to the one
  /// containing the target rank, then interpolates linearly inside it.
  double percentile(double p) const {
    if (count_ == 0) return 0.0;
    const double rank = p / 100.0 * static_cast<double>(count_ - 1);
    double seen = 0.0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (buckets_[i] == 0) continue;
      const double in_bucket = static_cast<double>(buckets_[i]);
      if (seen + in_bucket > rank) {
        const double lo = i == 0 ? 0.0 : static_cast<double>(1ull << (i - 1));
        const double hi = i == 0 ? 1.0 : lo * 2.0;
        const double frac = (rank - seen) / in_bucket;
        return std::min(lo + (hi - lo) * frac, static_cast<double>(max()));
      }
      seen += in_bucket;
    }
    return static_cast<double>(max());
  }

  void clear() { *this = LogHistogram{}; }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

/// Counts units (bytes, messages) over a virtual-time window.
class ThroughputCounter {
 public:
  void start(Time now) {
    start_time_ = now;
    units_ = 0;
  }
  void add(std::uint64_t units) { units_ += units; }
  std::uint64_t units() const { return units_; }

  double per_second(Time now) const {
    const Time elapsed = now - start_time_;
    if (elapsed <= 0) return 0.0;
    return static_cast<double>(units_) / to_sec(elapsed);
  }
  /// Convenience for byte counters.
  double gbit_per_sec(Time now) const { return per_second(now) * 8.0 / 1e9; }

 private:
  Time start_time_ = 0;
  std::uint64_t units_ = 0;
};

}  // namespace cord::sim
