#include "sim/sharded.hpp"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>

namespace cord::sim {

ShardedEngine::ShardedEngine(std::size_t shard_count, QueueKind queue) {
  if (shard_count == 0) {
    throw std::invalid_argument("ShardedEngine: shard_count must be >= 1");
  }
  engines_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    auto e = std::make_unique<Engine>(queue);
    e->coordinator_ = this;
    e->shard_index_ = static_cast<std::uint32_t>(i);
    engines_.push_back(std::move(e));
  }
  mail_.resize(shard_count * shard_count);
  lookahead_.assign(shard_count * shard_count, kUnboundedLookahead);
  out_min_.assign(shard_count, kUnboundedLookahead);
  window_end_.assign(shard_count, 0);
  spec_safe_.assign(shard_count, 0);
  spec_horizon_.assign(shard_count, 0);
  post_order_.assign(shard_count * shard_count, 0);
  stats_.barrier_wait_ns.assign(shard_count, 0);
  stats_.barrier_waits.assign(shard_count, 0);
}

SyncMode parse_sync_mode(std::string_view name) {
  if (name == "conservative") return SyncMode::kConservative;
  if (name == "speculative") return SyncMode::kSpeculative;
  throw std::invalid_argument("unknown sync mode '" + std::string(name) +
                              "' (want conservative|speculative)");
}

std::string_view sync_mode_name(SyncMode mode) {
  return mode == SyncMode::kConservative ? "conservative" : "speculative";
}

void ShardedEngine::set_sync(SyncMode mode, std::uint32_t depth) {
  if (depth == 0) {
    throw std::invalid_argument(
        "ShardedEngine: speculation depth must be >= 1 (depth 1 is the "
        "conservative edge itself)");
  }
  sync_ = mode;
  spec_depth_ = depth;
}

ShardedEngine::~ShardedEngine() = default;

void ShardedEngine::set_lookahead(Time la) {
  if (shard_count() > 1 && la <= 0) {
    throw std::invalid_argument(
        "ShardedEngine: non-positive lookahead (" + std::to_string(la) +
        " ps) with " + std::to_string(shard_count()) +
        " shards — a cross-shard link with zero propagation delay admits "
        "no safe conservative window");
  }
  if (la >= kUnboundedLookahead) la = kUnboundedLookahead;
  const std::size_t n = shard_count();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      lookahead_[i * n + j] = la;
    }
  }
  close_lookahead();
}

void ShardedEngine::set_lookahead(const std::vector<Time>& matrix) {
  const std::size_t n = shard_count();
  if (matrix.size() != n * n) {
    throw std::invalid_argument(
        "ShardedEngine: lookahead matrix has " + std::to_string(matrix.size()) +
        " entries, want shard_count^2 = " + std::to_string(n * n));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      Time la = matrix[i * n + j];
      if (n > 1 && la <= 0) {
        throw std::invalid_argument(
            "ShardedEngine: non-positive lookahead (" + std::to_string(la) +
            " ps) for shard pair (" + std::to_string(i) + ", " +
            std::to_string(j) +
            ") — a cross-shard path with zero propagation delay admits no "
            "safe conservative window");
      }
      if (la >= kUnboundedLookahead) la = kUnboundedLookahead;
      lookahead_[i * n + j] = la;
    }
  }
  close_lookahead();
}

void ShardedEngine::close_lookahead() {
  const std::size_t n = shard_count();
  // Min-plus (tropical) transitive closure: an effect can cross i -> j by
  // relaying through any k (an event posted to k at t + D[i][k] can itself
  // post to j at t + D[i][k] + D[k][j]), so the safe pairwise bound is the
  // shortest path in the lookahead graph, not the direct entry alone.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const Time ik = lookahead_[i * n + k];
      if (i == k || ik >= kUnboundedLookahead) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == k || j == i) continue;
        const Time via = sat_add(ik, lookahead_[k * n + j]);
        if (via < lookahead_[i * n + j]) lookahead_[i * n + j] = via;
      }
    }
  }
  min_lookahead_ = kUnboundedLookahead;
  for (std::size_t i = 0; i < n; ++i) {
    Time out = kUnboundedLookahead;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      out = std::min(out, lookahead_[i * n + j]);
    }
    out_min_[i] = out;
    min_lookahead_ = std::min(min_lookahead_, out);
  }
}

void ShardedEngine::post(Engine& src, Engine& dst, Time t, InlineFn fn,
                         bool replayable) {
  if (mode_ != Mode::kParallel) {
    // Single-threaded phases (merged setup, or user code between runs):
    // deliver directly. call_at clamps t < dst.now(), which cannot happen
    // here because the merged mode keeps all clocks equal. The replayable
    // mark is preserved so non-parallel runs stay bit-identical (the tag
    // is inert outside the speculative drain loop).
    if (replayable) {
      dst.call_at_replayable(t, std::move(fn));
    } else {
      dst.call_at(t, std::move(fn));
    }
    return;
  }
  // Subtraction form: t and now() are both in [0, kNoEvent], so the
  // difference cannot overflow, unlike now() + lookahead.
  const Time la = lookahead_[src.shard_index_ * shard_count() + dst.shard_index_];
  if (t - src.now() < la) {
    throw std::logic_error(
        "ShardedEngine: torn window — cross-shard event for t=" +
        std::to_string(t) + " ps posted at src time " +
        std::to_string(src.now()) + " ps violates the declared lookahead of " +
        std::to_string(la) + " ps for shard pair (" +
        std::to_string(src.shard_index_) + ", " +
        std::to_string(dst.shard_index_) +
        ") (a cross-shard path is faster than the lookahead claims)");
  }
  mail_[src.shard_index_ * shard_count() + dst.shard_index_].push_back(
      Msg{t, src.now(), std::move(fn), replayable});
}

Time ShardedEngine::min_next_event() const {
  Time t = Engine::kNoEvent;
  for (const auto& e : engines_) t = std::min(t, e->next_event_time());
  return t;
}

void ShardedEngine::sync_clocks() {
  Time m = 0;
  for (const auto& e : engines_) m = std::max(m, e->now_);
  for (const auto& e : engines_) e->advance_now(m);
}

Time ShardedEngine::run_sequential() {
  mode_ = Mode::kSequential;
  for (;;) {
    // Next event globally, ties broken by shard index: a deterministic
    // total order (t, shard, intra-shard seq) over all events.
    Engine* best = nullptr;
    Time best_t = Engine::kNoEvent;
    for (const auto& e : engines_) {
      const Time t = e->next_event_time();
      if (t < best_t) {
        best_t = t;
        best = e.get();
      }
    }
    if (best == nullptr) break;
    // Global-clock semantics: every engine observes the same "now", so a
    // coroutine that hops shards mid-await (e.g. connection setup touching
    // both endpoints) computes the same timestamps as on one engine.
    for (const auto& e : engines_) e->advance_now(best_t);
    best->step_one();
    ++stats_.sequential_events;
  }
  mode_ = Mode::kIdle;
  sync_clocks();
  return engines_.empty() ? 0 : engines_[0]->now_;
}

void ShardedEngine::drain_mailboxes() {
  const std::size_t n = shard_count();
  // Deterministic destination seq assignment: for each destination, merge
  // the per-source mailboxes by (t, source shard, posting order). This is
  // a function of simulation state only — wall-clock thread interleaving
  // cannot reorder it.
  for (std::size_t dst = 0; dst < n; ++dst) {
    // Index triples into the (src-major) mailboxes for this destination.
    struct Ref {
      Time t;
      std::uint32_t src;
      std::uint32_t pos;
    };
    std::vector<Ref> order;
    for (std::size_t src = 0; src < n; ++src) {
      auto& box = mail_[src * n + dst];
      for (std::size_t i = 0; i < box.size(); ++i) {
        order.push_back(Ref{box[i].t, static_cast<std::uint32_t>(src),
                            static_cast<std::uint32_t>(i)});
      }
    }
    if (order.empty()) continue;
    std::sort(order.begin(), order.end(), [](const Ref& a, const Ref& b) {
      if (a.t != b.t) return a.t < b.t;
      if (a.src != b.src) return a.src < b.src;
      return a.pos < b.pos;
    });
    Engine& d = *engines_[dst];
    for (const Ref& r : order) {
      Msg& m = mail_[r.src * n + dst][r.pos];
      if (m.replayable) {
        d.call_at_replayable(m.t, std::move(m.fn));
      } else {
        d.call_at(m.t, std::move(m.fn));
      }
    }
    stats_.messages += order.size();
    for (std::size_t src = 0; src < n; ++src) mail_[src * n + dst].clear();
  }
}

Time ShardedEngine::run() {
  stats_.windows = 0;
  stats_.messages = 0;
  std::fill(stats_.barrier_wait_ns.begin(), stats_.barrier_wait_ns.end(), 0);
  std::fill(stats_.barrier_waits.begin(), stats_.barrier_waits.end(), 0);
  stats_.speculative = false;
  stats_.rollbacks = 0;
  stats_.rolled_back_events = 0;
  stats_.journaled_effects = 0;
  stats_.cancelled_messages = 0;
  stats_.max_speculation_depth = 0;
  if (shard_count() == 1) return engines_[0]->run();
  if (sync_ == SyncMode::kSpeculative) return run_speculative_parallel();
  return run_parallel();
}

Time ShardedEngine::run_parallel() {
  const std::size_t n = shard_count();
  mode_ = Mode::kParallel;
  stop_ = false;
  error_ = nullptr;
  // Baseline for the final-time computation below: clocks may start above
  // any event this run will execute (raised by sync_clocks or a sequential
  // phase), and the result must never move time backwards past that.
  Time base = 0;
  for (const auto& e : engines_) base = std::max(base, e->now_);

  // Two barriers per window: `start` publishes window_end_ (and stop_) to
  // the workers; `finish` publishes queue/mailbox state back to the
  // coordinator. All shared state below is touched only in the exclusive
  // phases these barriers carve out.
  std::barrier<> start(static_cast<std::ptrdiff_t>(n) + 1);
  std::barrier<> finish(static_cast<std::ptrdiff_t>(n) + 1);
  std::vector<std::exception_ptr> worker_error(n);

  std::vector<std::thread> workers;
  workers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers.emplace_back([this, i, &start, &finish, &worker_error] {
      Engine& e = *engines_[i];
      for (;;) {
        start.arrive_and_wait();
        if (stop_) return;
        try {
          const Time end = window_end_[i];
          if (end == Engine::kNoEvent) {
            // Unbounded window: no peer can reach this shard and nothing
            // it posts needs a barrier — drain the queue without parking
            // the clock at an artificial horizon.
            e.run();
          } else {
            // Events strictly inside [.., end) are safe; run_until is
            // inclusive, hence - 1. It also parks now() at the window
            // edge so the next window's cross-shard arrivals never clamp.
            e.run_until(end - 1);
          }
        } catch (...) {
          worker_error[i] = std::current_exception();
        }
        const auto idle0 = std::chrono::steady_clock::now();
        finish.arrive_and_wait();
        stats_.barrier_wait_ns[i] += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - idle0)
                .count());
        stats_.barrier_waits[i]++;
      }
    });
  }

  std::vector<Time> next(n);
  for (;;) {
    Time next_min = Engine::kNoEvent;
    Time next_max_finite = 0;
    for (std::size_t i = 0; i < n; ++i) {
      next[i] = engines_[i]->next_event_time();
      next_min = std::min(next_min, next[i]);
      if (next[i] != Engine::kNoEvent) {
        next_max_finite = std::max(next_max_finite, next[i]);
      }
    }
    // Event times at or past kUnboundedLookahead (kNoEvent / 2) would be
    // indistinguishable from the unbounded-window sentinel in the edge
    // arithmetic below (their sat_add can saturate to kNoEvent) — fail
    // loudly instead of silently degrading the synchronization (~53 days
    // of simulated picoseconds; nothing in this repo gets close).
    if (next_max_finite >= kUnboundedLookahead && !error_) {
      error_ = std::make_exception_ptr(std::logic_error(
          "ShardedEngine: event time " + std::to_string(next_max_finite) +
          " ps has reached kUnboundedLookahead (kNoEvent / 2) — the "
          "conservative-window arithmetic cannot distinguish such times "
          "from the unbounded sentinel; the simulated time domain is "
          "exhausted"));
    }
    if (next_min == Engine::kNoEvent || error_) {
      stop_ = true;
      start.arrive_and_wait();  // release workers into their exit path
      break;
    }
    // Adaptive per-shard windows. Shard k may run every event strictly
    // before end_k = min(min_{j != k} T_j + D[j][k], T_k + out_min_[k]):
    // the first term is safety (any cross-shard effect from a peer event
    // at T_j lands no earlier than T_j + D[j][k], D closed over relays),
    // the second liveness (k's own posts are parked until the window edge;
    // without it a shard spin-waiting on a reply to its own in-window
    // post would never reach the barrier). Pairs with unbounded lookahead
    // contribute nothing; a shard no peer can reach and that can reach no
    // peer gets an unbounded window. With a uniform matrix every end_k
    // equals min(T) + L — exactly the classic global window.
    for (std::size_t k = 0; k < n; ++k) {
      // A window is unbounded only when every contributing term is the
      // kUnboundedLookahead sentinel (k can reach no peer AND no live
      // peer can reach k) — a finite edge stays finite no matter how
      // large, so a legitimately late event never silently detaches its
      // shard from the synchronization (the guard above bounds event
      // times, so the finite sat_adds here cannot saturate to kNoEvent).
      Time end = Engine::kNoEvent;
      if (next[k] != Engine::kNoEvent && out_min_[k] < kUnboundedLookahead) {
        end = sat_add(next[k], out_min_[k]);
      }
      for (std::size_t j = 0; j < n; ++j) {
        if (j == k || next[j] == Engine::kNoEvent) continue;
        const Time la = lookahead_[j * n + k];
        if (la >= kUnboundedLookahead) continue;
        end = std::min(end, sat_add(next[j], la));
      }
      window_end_[k] = end;
    }
    start.arrive_and_wait();
    finish.arrive_and_wait();
    for (std::size_t i = 0; i < n; ++i) {
      if (worker_error[i] && !error_) error_ = worker_error[i];
    }
    drain_mailboxes();
    ++stats_.windows;
  }
  for (auto& w : workers) w.join();
  mode_ = Mode::kIdle;

  if (error_) std::rethrow_exception(error_);
  // The workers park shard clocks at window edges (up to one lookahead
  // past the last event), which would make the returned time — and any
  // call_in() issued after the run — depend on the shard count. Report
  // the latest *executed* event instead and align every clock to it: the
  // same final state a single merged engine reaches. Rewinding a parked
  // clock is safe here (all queues and mailboxes are empty), and shards
  // that ran nothing are raised exactly as sync_clocks would.
  Time m = base;
  for (const auto& e : engines_) m = std::max(m, e->last_event_);
  for (auto& e : engines_) e->now_ = m;
  return m;
}

std::uint64_t ShardedEngine::events_processed() const {
  std::uint64_t s = 0;
  for (const auto& e : engines_) s += e->events_processed();
  return s;
}

std::uint64_t ShardedEngine::clamped_events() const {
  std::uint64_t s = 0;
  for (const auto& e : engines_) s += e->clamped_events();
  return s;
}

std::uint64_t ShardedEngine::queue_resizes() const {
  std::uint64_t s = 0;
  for (const auto& e : engines_) s += e->queue_resizes();
  return s;
}

std::size_t ShardedEngine::queue_peak_depth() const {
  std::size_t m = 0;
  for (const auto& e : engines_) m = std::max(m, e->queue_peak_depth());
  return m;
}

std::size_t ShardedEngine::live_roots() const {
  std::size_t s = 0;
  for (const auto& e : engines_) s += e->live_roots();
  return s;
}

void Engine::cross_post(Engine& dst, Time t, InlineFn fn) {
  if (&dst == this) {
    call_at(t, std::move(fn));
    return;
  }
  if (coordinator_ == nullptr || dst.coordinator_ != coordinator_) {
    throw std::logic_error(
        "Engine::cross_post: engines do not share a ShardedEngine");
  }
  coordinator_->post(*this, dst, t, std::move(fn));
}

void Engine::cross_post_replayable(Engine& dst, Time t, InlineFn fn) {
  if (&dst == this) {
    call_at_replayable(t, std::move(fn));
    return;
  }
  if (coordinator_ == nullptr || dst.coordinator_ != coordinator_) {
    throw std::logic_error(
        "Engine::cross_post_replayable: engines do not share a "
        "ShardedEngine");
  }
  coordinator_->post(*this, dst, t, std::move(fn), /*replayable=*/true);
}

}  // namespace cord::sim
