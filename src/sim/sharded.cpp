#include "sim/sharded.hpp"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>

namespace cord::sim {

ShardedEngine::ShardedEngine(std::size_t shard_count) {
  if (shard_count == 0) {
    throw std::invalid_argument("ShardedEngine: shard_count must be >= 1");
  }
  engines_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    auto e = std::make_unique<Engine>();
    e->coordinator_ = this;
    e->shard_index_ = static_cast<std::uint32_t>(i);
    engines_.push_back(std::move(e));
  }
  mail_.resize(shard_count * shard_count);
  stats_.barrier_wait_ns.assign(shard_count, 0);
}

ShardedEngine::~ShardedEngine() = default;

void ShardedEngine::set_lookahead(Time la) {
  if (shard_count() > 1 && la <= 0) {
    throw std::invalid_argument(
        "ShardedEngine: non-positive lookahead (" + std::to_string(la) +
        " ps) with " + std::to_string(shard_count()) +
        " shards — a cross-shard link with zero propagation delay admits "
        "no safe conservative window");
  }
  lookahead_ = la;
}

void ShardedEngine::post(Engine& src, Engine& dst, Time t, InlineFn fn) {
  if (mode_ != Mode::kParallel) {
    // Single-threaded phases (merged setup, or user code between runs):
    // deliver directly. call_at clamps t < dst.now(), which cannot happen
    // here because the merged mode keeps all clocks equal.
    dst.call_at(t, std::move(fn));
    return;
  }
  if (t < src.now() + lookahead_) {
    throw std::logic_error(
        "ShardedEngine: torn window — cross-shard event for t=" +
        std::to_string(t) + " ps posted at src time " +
        std::to_string(src.now()) + " ps violates the declared lookahead of " +
        std::to_string(lookahead_) +
        " ps (a cross-shard link is faster than the lookahead claims)");
  }
  mail_[src.shard_index_ * shard_count() + dst.shard_index_].push_back(
      Msg{t, std::move(fn)});
}

Time ShardedEngine::min_next_event() const {
  Time t = Engine::kNoEvent;
  for (const auto& e : engines_) t = std::min(t, e->next_event_time());
  return t;
}

void ShardedEngine::sync_clocks() {
  Time m = 0;
  for (const auto& e : engines_) m = std::max(m, e->now_);
  for (const auto& e : engines_) e->advance_now(m);
}

Time ShardedEngine::run_sequential() {
  mode_ = Mode::kSequential;
  for (;;) {
    // Next event globally, ties broken by shard index: a deterministic
    // total order (t, shard, intra-shard seq) over all events.
    Engine* best = nullptr;
    Time best_t = Engine::kNoEvent;
    for (const auto& e : engines_) {
      const Time t = e->next_event_time();
      if (t < best_t) {
        best_t = t;
        best = e.get();
      }
    }
    if (best == nullptr) break;
    // Global-clock semantics: every engine observes the same "now", so a
    // coroutine that hops shards mid-await (e.g. connection setup touching
    // both endpoints) computes the same timestamps as on one engine.
    for (const auto& e : engines_) e->advance_now(best_t);
    best->step_one();
    ++stats_.sequential_events;
  }
  mode_ = Mode::kIdle;
  sync_clocks();
  return engines_.empty() ? 0 : engines_[0]->now_;
}

void ShardedEngine::drain_mailboxes() {
  const std::size_t n = shard_count();
  // Deterministic destination seq assignment: for each destination, merge
  // the per-source mailboxes by (t, source shard, posting order). This is
  // a function of simulation state only — wall-clock thread interleaving
  // cannot reorder it.
  for (std::size_t dst = 0; dst < n; ++dst) {
    // Index triples into the (src-major) mailboxes for this destination.
    struct Ref {
      Time t;
      std::uint32_t src;
      std::uint32_t pos;
    };
    std::vector<Ref> order;
    for (std::size_t src = 0; src < n; ++src) {
      auto& box = mail_[src * n + dst];
      for (std::size_t i = 0; i < box.size(); ++i) {
        order.push_back(Ref{box[i].t, static_cast<std::uint32_t>(src),
                            static_cast<std::uint32_t>(i)});
      }
    }
    if (order.empty()) continue;
    std::sort(order.begin(), order.end(), [](const Ref& a, const Ref& b) {
      if (a.t != b.t) return a.t < b.t;
      if (a.src != b.src) return a.src < b.src;
      return a.pos < b.pos;
    });
    Engine& d = *engines_[dst];
    for (const Ref& r : order) {
      Msg& m = mail_[r.src * n + dst][r.pos];
      d.call_at(m.t, std::move(m.fn));
    }
    stats_.messages += order.size();
    for (std::size_t src = 0; src < n; ++src) mail_[src * n + dst].clear();
  }
}

Time ShardedEngine::run() {
  stats_.windows = 0;
  stats_.messages = 0;
  std::fill(stats_.barrier_wait_ns.begin(), stats_.barrier_wait_ns.end(), 0);
  if (shard_count() == 1) return engines_[0]->run();
  return run_parallel();
}

Time ShardedEngine::run_parallel() {
  const std::size_t n = shard_count();
  mode_ = Mode::kParallel;
  stop_ = false;
  error_ = nullptr;

  // Two barriers per window: `start` publishes window_end_ (and stop_) to
  // the workers; `finish` publishes queue/mailbox state back to the
  // coordinator. All shared state below is touched only in the exclusive
  // phases these barriers carve out.
  std::barrier<> start(static_cast<std::ptrdiff_t>(n) + 1);
  std::barrier<> finish(static_cast<std::ptrdiff_t>(n) + 1);
  std::vector<std::exception_ptr> worker_error(n);

  std::vector<std::thread> workers;
  workers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers.emplace_back([this, i, &start, &finish, &worker_error] {
      Engine& e = *engines_[i];
      for (;;) {
        start.arrive_and_wait();
        if (stop_) return;
        try {
          // Events strictly inside [.., window_end_) are safe; run_until
          // is inclusive, hence - 1. It also parks now() at the window
          // edge so the next window's cross-shard arrivals never clamp.
          e.run_until(window_end_ - 1);
        } catch (...) {
          worker_error[i] = std::current_exception();
        }
        const auto idle0 = std::chrono::steady_clock::now();
        finish.arrive_and_wait();
        stats_.barrier_wait_ns[i] += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - idle0)
                .count());
      }
    });
  }

  for (;;) {
    const Time next = min_next_event();
    if (next == Engine::kNoEvent || error_) {
      stop_ = true;
      start.arrive_and_wait();  // release workers into their exit path
      break;
    }
    // Window [next, next + lookahead]: any cross-shard effect of an event
    // at t >= next lands at t + lookahead > window end, so in-window
    // execution is causally closed per shard.
    window_end_ = (next >= kUnboundedLookahead || lookahead_ >= kUnboundedLookahead)
                      ? Engine::kNoEvent
                      : next + lookahead_;
    start.arrive_and_wait();
    finish.arrive_and_wait();
    for (std::size_t i = 0; i < n; ++i) {
      if (worker_error[i] && !error_) error_ = worker_error[i];
    }
    drain_mailboxes();
    ++stats_.windows;
  }
  for (auto& w : workers) w.join();
  mode_ = Mode::kIdle;

  if (error_) std::rethrow_exception(error_);
  Time m = 0;
  for (const auto& e : engines_) m = std::max(m, e->now_);
  return m;
}

std::uint64_t ShardedEngine::events_processed() const {
  std::uint64_t s = 0;
  for (const auto& e : engines_) s += e->events_processed();
  return s;
}

std::uint64_t ShardedEngine::clamped_events() const {
  std::uint64_t s = 0;
  for (const auto& e : engines_) s += e->clamped_events();
  return s;
}

std::size_t ShardedEngine::live_roots() const {
  std::size_t s = 0;
  for (const auto& e : engines_) s += e->live_roots();
  return s;
}

void Engine::cross_post(Engine& dst, Time t, InlineFn fn) {
  if (&dst == this) {
    call_at(t, std::move(fn));
    return;
  }
  if (coordinator_ == nullptr || dst.coordinator_ != coordinator_) {
    throw std::logic_error(
        "Engine::cross_post: engines do not share a ShardedEngine");
  }
  coordinator_->post(*this, dst, t, std::move(fn));
}

}  // namespace cord::sim
