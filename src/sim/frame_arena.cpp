#include "sim/frame_arena.hpp"

#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

namespace cord::sim::detail {
namespace {

// Size classes: 64-byte steps up to 2 KiB. Frames beyond that (deeply
// captured coroutines) fall through to the global allocator — they are
// rare and not worth fragmenting slabs for.
constexpr std::size_t kGranule = 64;
constexpr std::size_t kMaxBlock = 2048;
constexpr std::size_t kClasses = kMaxBlock / kGranule;  // 32
constexpr std::size_t kSlabBytes = 64 * 1024;  // below glibc's mmap threshold

constexpr std::size_t class_of(std::size_t n) {
  return (n + kGranule - 1) / kGranule - 1;
}
constexpr std::size_t class_bytes(std::size_t c) { return (c + 1) * kGranule; }

struct FreeBlock {
  FreeBlock* next;
};

// Process-wide state: retired slabs (kept alive until exit — blocks from
// them may sit on any thread's freelist) and orphaned freelists spliced
// in by exiting threads.
struct Global {
  std::mutex mu;
  std::vector<std::unique_ptr<std::byte[]>> slabs;
  FreeBlock* orphans[kClasses] = {};
};

Global& global() {
  static Global* g = new Global;  // immortal: frames may outlive statics
  return *g;
}

struct ThreadCache {
  FreeBlock* free_[kClasses] = {};
  std::byte* bump = nullptr;
  std::byte* bump_end = nullptr;
  FrameArenaStats stats;

  ~ThreadCache() {
    // Splice everything this thread cached back into the global pool so a
    // short-lived shard worker never strands recycled blocks.
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    for (std::size_t c = 0; c < kClasses; ++c) {
      while (FreeBlock* b = free_[c]) {
        free_[c] = b->next;
        b->next = g.orphans[c];
        g.orphans[c] = b;
      }
    }
    // Remaining bump space is abandoned (at most one slab tail per
    // thread); the slab itself already lives in the global registry.
  }

  void* carve(std::size_t c) {
    const std::size_t bytes = class_bytes(c);
    if (static_cast<std::size_t>(bump_end - bump) < bytes) {
      auto slab = std::make_unique<std::byte[]>(kSlabBytes);
      bump = slab.get();
      bump_end = bump + kSlabBytes;
      stats.slab_bytes += kSlabBytes;
      Global& g = global();
      std::lock_guard<std::mutex> lock(g.mu);
      g.slabs.push_back(std::move(slab));
    }
    void* p = bump;
    bump += bytes;
    ++stats.slab_carves;
    return p;
  }
};

ThreadCache& cache() {
  thread_local ThreadCache tc;
  return tc;
}

}  // namespace

void* frame_alloc(std::size_t n) {
  ThreadCache& tc = cache();
  ++tc.stats.allocs;
  if (n > kMaxBlock) [[unlikely]] {
    ++tc.stats.fallback_allocs;
    return ::operator new(n);
  }
  const std::size_t c = class_of(n);
  if (FreeBlock* b = tc.free_[c]) {
    tc.free_[c] = b->next;
    return b;
  }
  // Refill from orphaned lists (blocks freed by threads that exited)
  // before carving fresh slab space.
  {
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    if (g.orphans[c] != nullptr) {
      tc.free_[c] = g.orphans[c];
      g.orphans[c] = nullptr;
    }
  }
  if (FreeBlock* b = tc.free_[c]) {
    tc.free_[c] = b->next;
    return b;
  }
  return tc.carve(c);
}

void frame_free(void* p, std::size_t n) noexcept {
  if (n > kMaxBlock) [[unlikely]] {
    ::operator delete(p);
    return;
  }
  ThreadCache& tc = cache();
  const std::size_t c = class_of(n);
  auto* b = static_cast<FreeBlock*>(p);
  b->next = tc.free_[c];
  tc.free_[c] = b;
}

FrameArenaStats frame_arena_stats() { return cache().stats; }

}  // namespace cord::sim::detail
