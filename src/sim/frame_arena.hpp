// Slab arena for coroutine frames.
//
// Every Task<T> coroutine frame allocates through here (class-scope
// operator new on the task promise), replacing the per-spawn malloc/free
// pair with a thread-cached, size-classed freelist carved out of 64 KiB
// slabs — the same slab discipline the engine uses for InlineFn slots.
// Spawn-heavy workloads (one frame per simulated request) recycle frames
// at freelist cost and never touch the global allocator in steady state.
//
// Threading: allocation and same-thread free go through a thread_local
// cache with no synchronization. A frame freed on a different thread than
// the one that allocated it (a setup-phase coroutine destroyed on a shard
// worker) lands on that thread's local freelist — blocks are just memory,
// freelist membership is independent of which slab they came from. Slabs
// are retired to a process-wide registry and reclaimed only at process
// exit, so a block never outlives its slab; when a thread exits, its
// cached freelists are spliced into a mutex-protected global pool that
// other threads refill from, so shard workers (fresh threads per run)
// leak nothing across runs.
#pragma once

#include <cstddef>

namespace cord::sim::detail {

/// Allocate a coroutine-frame block of at least `n` bytes.
void* frame_alloc(std::size_t n);
/// Return a block obtained from frame_alloc (same `n`).
void frame_free(void* p, std::size_t n) noexcept;

/// Introspection for tests: total blocks carved from slabs by this thread
/// minus blocks currently parked on its freelists — i.e. live frames, as
/// seen by this thread's cache (cross-thread frees skew it negative).
struct FrameArenaStats {
  std::size_t slab_bytes = 0;    ///< bytes reserved in slabs (this thread)
  std::size_t allocs = 0;        ///< frame_alloc calls (this thread)
  std::size_t slab_carves = 0;   ///< allocs that had to carve fresh slab space
  std::size_t fallback_allocs = 0;  ///< oversized frames sent to operator new
};
FrameArenaStats frame_arena_stats();

}  // namespace cord::sim::detail
