// Channel<T>: an unbounded FIFO between simulated activities with
// suspending receive. Sends never block (device queues in this codebase
// model backpressure explicitly with Resource / ring capacities instead).
#pragma once

#include <coroutine>
#include <deque>
#include <utility>

#include "sim/engine.hpp"

namespace cord::sim {

template <typename T>
class Channel {
 public:
  explicit Channel(Engine& engine) : engine_(&engine) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void send(T value) {
    items_.push_back(std::move(value));
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      engine_->schedule_at(engine_->now(), h);
    }
  }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

  /// Non-suspending receive; caller must check empty() first.
  T take() {
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  /// Suspending receive: waits until an item is available.
  Task<T> recv() {
    while (items_.empty()) co_await wait_nonempty();
    co_return take();
  }

 private:
  auto wait_nonempty() {
    struct Awaiter {
      Channel& ch;
      bool await_ready() const { return !ch.items_.empty(); }
      void await_suspend(std::coroutine_handle<> h) { ch.waiters_.push_back(h); }
      void await_resume() const {}
    };
    return Awaiter{*this};
  }

  Engine* engine_;
  std::deque<T> items_;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace cord::sim
