// Slab-backed object storage for simulator object tables.
//
// The frame arena (sim/frame_arena) already gives every coroutine frame
// thread-cached, size-classed storage carved from 64 KiB slabs. This
// header extends the same discipline to plain objects: `make_slab<T>()`
// placement-constructs T in an arena block and returns a unique_ptr whose
// deleter returns the block to the arena freelist. Tables that used to
// hold `std::unique_ptr<T>` (one malloc per QP/CQ/SRQ/MR) switch to
// `SlabPtr<T>` with no other code change, and objects created together
// land adjacent in the same slab — which is what makes a burst drain walk
// contiguous memory instead of malloc's scattered chunks.
//
// Threading follows the arena's contract: allocation and free may happen
// on different threads (setup-phase objects destroyed after a sharded
// run); blocks never outlive their slab because slabs are only reclaimed
// at process exit.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>

#include "sim/frame_arena.hpp"

namespace cord::sim {

/// Deleter returning the object's storage to the frame-arena slabs.
template <typename T>
struct SlabDeleter {
  void operator()(T* p) const noexcept {
    p->~T();
    detail::frame_free(p, sizeof(T));
  }
};

/// unique_ptr whose pointee lives in a slab block instead of on the heap.
template <typename T>
using SlabPtr = std::unique_ptr<T, SlabDeleter<T>>;

/// Placement-construct T in a slab block (the SlabPtr owns it).
template <typename T, typename... Args>
SlabPtr<T> make_slab(Args&&... args) {
  void* mem = detail::frame_alloc(sizeof(T));
  try {
    return SlabPtr<T>(::new (mem) T(std::forward<Args>(args)...));
  } catch (...) {
    detail::frame_free(mem, sizeof(T));
    throw;
  }
}

}  // namespace cord::sim
