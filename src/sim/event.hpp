// Coordination primitives between simulated activities.
//
// Latch  — one-shot: waiters before trigger() suspend; waiters after pass
//          straight through. Used for "this operation completed" signals.
// Signal — repeating: each trigger() releases the waiters present at that
//          moment. Used for doorbells, interrupts, and queue notifications.
#pragma once

#include <coroutine>
#include <vector>

#include "sim/engine.hpp"

namespace cord::sim {

class Latch {
 public:
  explicit Latch(Engine& engine) : engine_(&engine) {}
  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  bool triggered() const { return triggered_; }

  void trigger() {
    if (triggered_) return;
    triggered_ = true;
    release_all();
  }

  auto wait() {
    struct Awaiter {
      Latch& latch;
      bool await_ready() const { return latch.triggered_; }
      void await_suspend(std::coroutine_handle<> h) { latch.waiters_.push_back(h); }
      void await_resume() const {}
    };
    return Awaiter{*this};
  }

 private:
  void release_all() {
    // Resumption goes through the engine queue so trigger() is safe to call
    // from any context (no reentrant resume of the triggering coroutine).
    for (auto h : waiters_) engine_->schedule_at(engine_->now(), h);
    waiters_.clear();
  }

  Engine* engine_;
  std::vector<std::coroutine_handle<>> waiters_;
  bool triggered_ = false;
};

class Signal {
 public:
  explicit Signal(Engine& engine) : engine_(&engine) {}
  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  /// Release every coroutine currently waiting.
  void trigger() {
    for (auto h : waiters_) engine_->schedule_at(engine_->now(), h);
    waiters_.clear();
  }

  std::size_t waiter_count() const { return waiters_.size(); }

  auto wait() {
    struct Awaiter {
      Signal& signal;
      bool await_ready() const { return false; }
      void await_suspend(std::coroutine_handle<> h) { signal.waiters_.push_back(h); }
      void await_resume() const {}
    };
    return Awaiter{*this};
  }

 private:
  Engine* engine_;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace cord::sim
