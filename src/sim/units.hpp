// Time and bandwidth units for the simulator.
//
// All simulated time is integer picoseconds. Integer time keeps event
// ordering exact and reproducible; picosecond resolution expresses
// sub-nanosecond CPU costs (a 3.3 GHz cycle is ~303 ps) without rounding
// every charge to zero. int64 picoseconds cover ~106 days of virtual time.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

namespace cord::sim {

/// Virtual time in picoseconds.
using Time = std::int64_t;

inline constexpr Time kPicosecond = 1;
inline constexpr Time kNanosecond = 1'000;
inline constexpr Time kMicrosecond = 1'000'000;
inline constexpr Time kMillisecond = 1'000'000'000;
inline constexpr Time kSecond = 1'000'000'000'000;

constexpr Time ps(std::int64_t v) { return v * kPicosecond; }
constexpr Time ns(std::int64_t v) { return v * kNanosecond; }
constexpr Time us(std::int64_t v) { return v * kMicrosecond; }
constexpr Time ms(std::int64_t v) { return v * kMillisecond; }
constexpr Time sec(std::int64_t v) { return v * kSecond; }

/// Fractional helpers (round to nearest picosecond).
inline Time ns_d(double v) { return static_cast<Time>(std::llround(v * kNanosecond)); }
inline Time us_d(double v) { return static_cast<Time>(std::llround(v * kMicrosecond)); }

constexpr double to_ns(Time t) { return static_cast<double>(t) / kNanosecond; }
constexpr double to_us(Time t) { return static_cast<double>(t) / kMicrosecond; }
constexpr double to_ms(Time t) { return static_cast<double>(t) / kMillisecond; }
constexpr double to_sec(Time t) { return static_cast<double>(t) / kSecond; }

/// A transfer rate. Stored as picoseconds-per-byte so that computing the
/// serialization time of a payload is a single multiply.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;

  static constexpr Bandwidth gbit_per_sec(double gbps) {
    // 1 Gbit/s == 0.125 bytes/ns == 8000 ps/byte at 1 Gbit/s.
    return Bandwidth{8000.0 / gbps};
  }
  static constexpr Bandwidth gbyte_per_sec(double gBps) {
    return Bandwidth{1000.0 / gBps};
  }
  static constexpr Bandwidth unlimited() { return Bandwidth{0.0}; }

  /// Time to move `bytes` at this rate.
  Time time_for(std::uint64_t bytes) const {
    return static_cast<Time>(std::llround(static_cast<double>(bytes) * ps_per_byte_));
  }

  constexpr double gbps() const {
    return ps_per_byte_ == 0.0 ? 0.0 : 8000.0 / ps_per_byte_;
  }
  constexpr bool is_unlimited() const { return ps_per_byte_ == 0.0; }

 private:
  constexpr explicit Bandwidth(double ps_per_byte) : ps_per_byte_(ps_per_byte) {}
  double ps_per_byte_ = 0.0;
};

/// Pretty-print a duration with an adaptive unit (for reports/logs).
std::string format_time(Time t);

/// Pretty-print a byte count (for reports/logs).
std::string format_bytes(std::uint64_t bytes);

}  // namespace cord::sim
