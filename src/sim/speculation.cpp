// Speculative (Time-Warp style) sharded synchronization — DESIGN.md §17.
//
// The conservative protocol in sharded.cpp never lets a shard execute an
// event its peers could still invalidate, which means tight-lookahead
// topologies pay a barrier round per lookahead window and the barriers
// dominate wall-clock. This file implements the opt-in optimistic mode:
// shards run ahead of the conservative edge, journaling every *replayable*
// dispatch (Engine::call_at_replayable) so it can be undone, and the
// coordinator validates the speculation at each barrier.
//
// The design deviates from textbook Time-Warp in three load-bearing ways:
//
//  * Replayable-only speculation. Coroutine resumptions (and unmarked
//    callbacks) cannot be checkpointed — a coroutine frame is opaque — so
//    they act as *fences*: a shard stops speculating when the next event
//    beyond the conservative edge is not replayable. Models that never
//    mark anything (the whole NIC stack) therefore execute the exact
//    conservative schedule under this mode, which is what keeps every
//    existing golden bit-identical.
//
//  * A pending-message pool instead of anti-messages. Cross-shard
//    messages are held by the coordinator until their *posting* dispatch
//    commits; a rollback on the source simply erases its uncommitted pool
//    entries. Because nothing tentative ever reaches a destination queue,
//    no anti-message can chase a message, and cascade cancellation is a
//    coordinator-local erase rather than an inter-shard protocol.
//
//  * Barrier-synchronous GVT. The commit floor (the Time-Warp GVT) is
//    computed exactly at each barrier from fully parked state, so there
//    is no asynchronous GVT estimation error to be conservative against.
//    Per shard j, floor_j = min(earliest queued event, earliest held pool
//    message to j) bounds j's earliest possible FUTURE dispatch — note
//    that j's own uncommitted journal does NOT hold its floor down: those
//    dispatches already ran, and a re-execution after a rollback happens
//    at times bounded by the incoming message that triggered it, which
//    the closed lookahead matrix already covers via relays. Then
//
//      commit_k = min( min over held messages m to k of m.t,
//                      min_{j != k} floor_j + D[j][k] )
//
//    — the first term is what makes dropping the journal from the floors
//    sound: a deeply speculative post can sit undeliverable in the pool
//    for several rounds, and it is bounded directly rather than through
//    its source. This is the load-bearing difference from the
//    conservative edge: floors advance by a full speculation horizon per
//    round instead of one lookahead window, which is where the barrier-
//    round reduction (and the whole speedup) comes from.
//
// Soundness invariants (proved in DESIGN.md §17, relied on throughout):
//  I1  A shard's journal is sorted by dispatch (t, seq); commits truncate
//      a prefix, rollbacks a suffix.
//  I2  commit_k <= delivery time of every message that can still reach k:
//      held messages by the direct pool term, future posts by their
//      poster's floor plus the closed lookahead (re-executions after a
//      rollback are bounded by the rollback's trigger, i.e. by the same
//      terms one relay deeper — the min-plus closure absorbs them).
//      Journal entries all predate their shard's queue front, so
//      arrivals bred by a shard's own future posts cannot reach its own
//      committed prefix either.
//  I3  A message delivered this round cancels no *deliverable* message
//      (cancelled posts have post_t > the trigger >= commit of the
//      rolling-back shard, deliverable ones <=), so one resolution pass
//      suffices — no fixpoint iteration.
//  I4  The globally minimal floor item always commits, delivers or
//      executes within one round (liveness): if it is a queued event it
//      lies below every safe edge; if it is a held message, every term of
//      its source's commit is >= it, so it is deliverable.

#include <algorithm>
#include <barrier>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sharded.hpp"
#include "trace/trace.hpp"  // inline-only use: rewind on rollback

namespace cord::sim {

// ---------------------------------------------------------------------------
// Engine side: speculative drain, commit, rollback.
// ---------------------------------------------------------------------------

template <typename Q>
bool Engine::run_speculative_drain(Q& q, Time safe, Time horizon) {
  while (pending_ != 0) {
    const Item& head = q.top();
    if (head.t >= horizon) return false;  // parked until the next round
    if (head.t < safe) {
      // Conservatively proven final: dispatch exactly like run_until.
      const Item item = queue_pop();
      now_ = item.t;
      dispatch(item.payload);
      last_event_ = now_;
      continue;
    }
    if ((head.payload & kReplayTag) == 0) return true;  // speculation fence
    // Speculative dispatch: checkpoint, invoke without recycling the slot
    // (the callable must survive for re-execution), journal the effects.
    const Item item = queue_pop();
    SpecEntry e;
    e.item = item;
    e.prev_now = now_;
    e.prev_last_event = last_event_;
    e.prev_events = events_processed_;
    e.prev_clamped = clamped_events_;
    e.trace_len = tracer_ != nullptr ? tracer_->size() : 0;
    e.trace_dropped = tracer_ != nullptr ? tracer_->dropped() : 0;
    e.child_begin = static_cast<std::uint32_t>(spec_.children.size());
    e.save_begin = static_cast<std::uint32_t>(spec_.saves.size());
    e.child_end = e.child_begin;
    e.save_end = e.save_begin;
    // Entry is journaled before the call so an exception mid-dispatch
    // still leaves the slot reachable for cleanup.
    spec_.entries.push_back(e);
    ++spec_journaled_total_;
    now_ = item.t;
    ++events_processed_;
    FnSlot* slot = reinterpret_cast<FnSlot*>(item.payload & ~kTagMask);
    spec_active_ = true;
    try {
      slot->fn();
    } catch (...) {
      spec_active_ = false;
      throw;
    }
    spec_active_ = false;
    SpecEntry& back = spec_.entries.back();
    back.child_end = static_cast<std::uint32_t>(spec_.children.size());
    back.save_end = static_cast<std::uint32_t>(spec_.saves.size());
    last_event_ = now_;
  }
  return false;
}

bool Engine::run_speculative(Time safe, Time horizon) {
  if (pending_ == 0) return false;
  // Unlike the conservative worker, the clock is NOT parked at the window
  // edge afterwards: a rollback must be able to rewind now_ below the
  // edge, and resolution applies rollbacks before deliveries, so arrivals
  // never clamp (DESIGN.md §17).
  return queue_kind_ == QueueKind::kHeap
             ? run_speculative_drain(heap_, safe, horizon)
             : run_speculative_drain(cal_, safe, horizon);
}

void Engine::spec_commit(Time through) {
  auto& es = spec_.entries;
  std::size_t idx = 0;
  while (idx < es.size() && es[idx].item.t <= through) ++idx;
  if (idx == 0) return;
  // Committed dispatches retire for real: their slots recycle now.
  for (std::size_t i = 0; i < idx; ++i) {
    release_slot(reinterpret_cast<FnSlot*>(es[i].item.payload & ~kTagMask));
  }
  const std::uint32_t child_base = es[idx - 1].child_end;
  const std::uint32_t save_base = es[idx - 1].save_end;
  const std::uint32_t blob_base =
      save_base < spec_.saves.size()
          ? spec_.saves[save_base].off
          : static_cast<std::uint32_t>(spec_.blob.size());
  es.erase(es.begin(), es.begin() + static_cast<std::ptrdiff_t>(idx));
  spec_.children.erase(spec_.children.begin(),
                       spec_.children.begin() + child_base);
  spec_.saves.erase(spec_.saves.begin(), spec_.saves.begin() + save_base);
  spec_.blob.erase(spec_.blob.begin(), spec_.blob.begin() + blob_base);
  for (SpecEntry& e : es) {
    e.child_begin -= child_base;
    e.child_end -= child_base;
    e.save_begin -= save_base;
    e.save_end -= save_base;
  }
  for (SpecSave& s : spec_.saves) s.off -= blob_base;
}

std::uint64_t Engine::spec_rollback(Time keep_through) {
  auto& es = spec_.entries;
  std::size_t idx = es.size();
  while (idx > 0 && es[idx - 1].item.t > keep_through) --idx;
  if (idx == es.size()) return 0;
  // Seqs pushed by the dispatches about to be undone: they must vanish
  // from the queue (their parent re-creates them on re-execution).
  std::unordered_set<std::uint64_t> dead;
  for (std::size_t i = idx; i < es.size(); ++i) {
    for (std::uint32_t c = es[i].child_begin; c < es[i].child_end; ++c) {
      dead.insert(spec_.children[c]);
    }
  }
  // Undo in reverse dispatch order. Each step restores the journaled
  // model bytes, rewinds the tracer and the engine counters/clock to
  // their pre-dispatch checkpoint, and re-queues the event itself under
  // its ORIGINAL (t, seq) — re-execution then reproduces the timestamps
  // bit-for-bit because event resolution is a pure function of sim state.
  for (std::size_t i = es.size(); i-- > idx;) {
    const SpecEntry& e = es[i];
    for (std::uint32_t s = e.save_end; s-- > e.save_begin;) {
      const SpecSave& sv = spec_.saves[s];
      std::memcpy(sv.addr, spec_.blob.data() + sv.off, sv.size);
    }
    if (tracer_ != nullptr) tracer_->truncate(e.trace_len, e.trace_dropped);
    now_ = e.prev_now;
    last_event_ = e.prev_last_event;
    events_processed_ = e.prev_events;
    clamped_events_ = e.prev_clamped;
    queue_push(e.item);
  }
  const std::uint64_t undone = es.size() - idx;
  const std::uint32_t child_base = idx == 0 ? 0 : es[idx - 1].child_end;
  const std::uint32_t save_base = idx == 0 ? 0 : es[idx - 1].save_end;
  const std::uint32_t blob_base =
      save_base < spec_.saves.size()
          ? spec_.saves[save_base].off
          : static_cast<std::uint32_t>(spec_.blob.size());
  es.resize(idx);
  spec_.children.resize(child_base);
  spec_.saves.resize(save_base);
  spec_.blob.resize(blob_base);
  // Purge AFTER the re-pushes: an undone entry that is itself the child
  // of another undone dispatch was just re-queued and must be removed
  // again (its slot recycles; the parent re-creates it).
  if (!dead.empty()) spec_purge(dead);
  return undone;
}

void Engine::spec_purge(const std::unordered_set<std::uint64_t>& dead) {
  std::vector<Item> keep;
  keep.reserve(pending_);
  while (pending_ != 0) {
    const Item item = queue_pop();
    if (dead.count(item.seq) != 0) {
      if (item.payload & kFnTag) {
        release_slot(reinterpret_cast<FnSlot*>(item.payload & ~kTagMask));
      }
      // Coroutine resumptions are dropped without destroying the frame:
      // the coroutine stays suspended and its (re-executed) scheduler
      // will re-push the resumption.
      continue;
    }
    keep.push_back(item);
  }
  for (const Item& item : keep) queue_push(item);
}

// ---------------------------------------------------------------------------
// Coordinator side: the optimistic window protocol.
// ---------------------------------------------------------------------------

Time ShardedEngine::run_speculative_parallel() {
  const std::size_t n = shard_count();
  mode_ = Mode::kParallel;
  stop_ = false;
  error_ = nullptr;
  stats_.speculative = true;
  std::fill(post_order_.begin(), post_order_.end(), 0);
  pool_.clear();
  std::vector<std::uint64_t> journaled0(n);
  for (std::size_t i = 0; i < n; ++i) {
    journaled0[i] = engines_[i]->spec_journaled_total();
  }
  Time base = 0;
  for (const auto& e : engines_) base = std::max(base, e->now_);

  // Same two-barrier scaffolding as the conservative run: `start`
  // publishes spec_safe_/spec_horizon_ (and stop_) to the workers,
  // `finish` publishes queue/journal/mailbox state back. Everything the
  // resolution below touches is parked between finish and start.
  std::barrier<> start(static_cast<std::ptrdiff_t>(n) + 1);
  std::barrier<> finish(static_cast<std::ptrdiff_t>(n) + 1);
  std::vector<std::exception_ptr> worker_error(n);

  std::vector<std::thread> workers;
  workers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers.emplace_back([this, i, &start, &finish, &worker_error] {
      Engine& e = *engines_[i];
      for (;;) {
        start.arrive_and_wait();
        if (stop_) return;
        try {
          e.run_speculative(spec_safe_[i], spec_horizon_[i]);
        } catch (...) {
          worker_error[i] = std::current_exception();
        }
        const auto idle0 = std::chrono::steady_clock::now();
        finish.arrive_and_wait();
        stats_.barrier_wait_ns[i] += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - idle0)
                .count());
        stats_.barrier_waits[i]++;
      }
    });
  }

  // floor[j]: the earliest virtual time at which shard j can still
  // *dispatch* — its earliest queued event or the earliest pool message
  // pending delivery to it. Deliberately NOT j's uncommitted journal:
  // those dispatches already ran, and holding the floor at them would pin
  // commit advancement to one lookahead window per round, i.e. exactly
  // conservative pacing (see the header — this is where the speedup
  // lives). qnext[j] is the queue term alone, for the liveness self-term.
  // Floors are monotone across rounds; every commit decision derives from
  // them plus the direct held-message bound pool_min[k].
  std::vector<Time> floor(n);
  std::vector<Time> qnext(n);
  std::vector<Time> pool_min(n);
  const auto compute_floors = [&] {
    for (std::size_t j = 0; j < n; ++j) {
      qnext[j] = engines_[j]->next_event_time();
      pool_min[j] = Engine::kNoEvent;
    }
    for (const PoolMsg& m : pool_) {
      pool_min[m.dst] = std::min(pool_min[m.dst], m.t);
    }
    for (std::size_t j = 0; j < n; ++j) {
      floor[j] = std::min(qnext[j], pool_min[j]);
    }
  };

  std::vector<Time> commit(n);
  std::vector<Time> m_min(n);
  for (;;) {
    // ---- Resolution (coordinator-only; all shard state parked) --------
    // (1) Sweep this round's mailboxes into the pool, stamping each
    // message with its per-(src, dst) posting order — the cross-round
    // extension of the conservative (t, src, position) delivery order.
    for (std::size_t src = 0; src < n; ++src) {
      for (std::size_t dst = 0; dst < n; ++dst) {
        auto& box = mail_[src * n + dst];
        for (Msg& m : box) {
          pool_.push_back(PoolMsg{m.t, m.post_t, static_cast<std::uint32_t>(src),
                                  static_cast<std::uint32_t>(dst),
                                  post_order_[src * n + dst]++,
                                  std::move(m.fn), m.replayable});
        }
        box.clear();
      }
    }
    // (2) Validation floors and the exhausted-time-domain guard (same
    // rationale as the conservative run: times at or past
    // kUnboundedLookahead are indistinguishable from the sentinel).
    compute_floors();
    Time max_finite = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const Time t = engines_[j]->next_event_time();
      if (t != Engine::kNoEvent) max_finite = std::max(max_finite, t);
      max_finite = std::max(max_finite, engines_[j]->spec_back_time());
      stats_.max_speculation_depth = std::max(
          stats_.max_speculation_depth,
          static_cast<std::uint64_t>(engines_[j]->spec_depth()));
    }
    for (const PoolMsg& m : pool_) max_finite = std::max(max_finite, m.t);
    if (max_finite >= kUnboundedLookahead && !error_) {
      error_ = std::make_exception_ptr(std::logic_error(
          "ShardedEngine: event time " + std::to_string(max_finite) +
          " ps has reached kUnboundedLookahead (kNoEvent / 2) — the "
          "speculative-window arithmetic cannot distinguish such times "
          "from the unbounded sentinel; the simulated time domain is "
          "exhausted"));
    }
    // (3) Commit horizons: nothing dated <= commit[k] can still be
    // invalidated. Held messages to k bound it directly (they may deliver
    // below any peer-derived edge once their posting dispatch commits);
    // everything else that could reach k originates at or after some
    // peer's floor and travels at least the closed lookahead. (No
    // liveness self-term here — arrivals bred by k's own future posts
    // land strictly above k's queue front, hence above its whole journal;
    // commits need only be correct, not open a window. Invariant I2.)
    for (std::size_t k = 0; k < n; ++k) {
      Time c = pool_min[k];
      for (std::size_t j = 0; j < n; ++j) {
        if (j == k || floor[j] == Engine::kNoEvent) continue;
        const Time la = lookahead_[j * n + k];
        if (la >= kUnboundedLookahead) continue;
        c = std::min(c, sat_add(floor[j], la));
      }
      commit[k] = c;
    }
    // (4) Deliverable set: a pool message may be delivered once its
    // posting dispatch is final (post_t <= commit[src]). m_min[k] is the
    // earliest delivery into k this round — the rollback target.
    std::fill(m_min.begin(), m_min.end(), Engine::kNoEvent);
    for (const PoolMsg& m : pool_) {
      if (m.post_t <= commit[m.src]) {
        m_min[m.dst] = std::min(m_min[m.dst], m.t);
      }
    }
    // (5) Rollbacks + cancellation. A shard rolls back iff it
    // speculatively dispatched past an incoming delivery (t > m keeps the
    // tie: the arrival gets a fresher seq and sorts after). Undone
    // dispatches' cross-shard posts are exactly the source's pool entries
    // with post_t > m_min (committed posts satisfy post_t <= commit[k] <=
    // m_min[k]); erasing them is the whole anti-message story (I3: none
    // of them was deliverable, so the deliverable set stands).
    for (std::size_t k = 0; k < n; ++k) {
      if (m_min[k] == Engine::kNoEvent) continue;
      if (engines_[k]->spec_back_time() <= m_min[k]) continue;
      const std::uint64_t undone = engines_[k]->spec_rollback(m_min[k]);
      ++stats_.rollbacks;
      stats_.rolled_back_events += undone;
      const auto cancelled = [&](const PoolMsg& m) {
        return m.src == k && m.post_t > m_min[k];
      };
      const auto it = std::remove_if(pool_.begin(), pool_.end(), cancelled);
      stats_.cancelled_messages +=
          static_cast<std::uint64_t>(pool_.end() - it);
      pool_.erase(it, pool_.end());
    }
    // (6) Deliveries, after ALL rollbacks (so no arrival ever clamps),
    // per destination in (t, src, order) — a pure function of sim state.
    {
      struct Ref {
        Time t;
        std::uint32_t src;
        std::uint64_t order;
        std::size_t pos;
      };
      std::vector<Ref> deliver;
      for (std::size_t p = 0; p < pool_.size(); ++p) {
        const PoolMsg& m = pool_[p];
        if (m.post_t <= commit[m.src]) {
          deliver.push_back(Ref{m.t, m.src, m.order, p});
        }
      }
      std::sort(deliver.begin(), deliver.end(),
                [&](const Ref& a, const Ref& b) {
                  const std::uint32_t da = pool_[a.pos].dst;
                  const std::uint32_t db = pool_[b.pos].dst;
                  if (da != db) return da < db;
                  if (a.t != b.t) return a.t < b.t;
                  if (a.src != b.src) return a.src < b.src;
                  return a.order < b.order;
                });
      for (const Ref& r : deliver) {
        PoolMsg& m = pool_[r.pos];
        Engine& d = *engines_[m.dst];
        if (m.replayable) {
          d.call_at_replayable(m.t, std::move(m.fn));
        } else {
          d.call_at(m.t, std::move(m.fn));
        }
        m.dst = UINT32_MAX;  // consumed; compacted below
      }
      stats_.messages += deliver.size();
      if (!deliver.empty()) {
        pool_.erase(std::remove_if(
                        pool_.begin(), pool_.end(),
                        [](const PoolMsg& m) { return m.dst == UINT32_MAX; }),
                    pool_.end());
      }
    }
    // (7) Retire validated speculation (journal prefixes up to commit).
    for (std::size_t k = 0; k < n; ++k) engines_[k]->spec_commit(commit[k]);
    // (8) Termination: with every queue and the pool empty nothing can
    // ever create another event, so outstanding journal entries are
    // trivially valid — commit them and stop.
    bool any_pending = !pool_.empty();
    for (const auto& e : engines_) any_pending |= e->pending_events() != 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (worker_error[i] && !error_) error_ = worker_error[i];
    }
    if (!any_pending || error_) {
      if (!error_) {
        for (auto& e : engines_) e->spec_commit(Engine::kNoEvent);
      }
      stop_ = true;
      start.arrive_and_wait();  // release workers into their exit path
      break;
    }
    // ---- Next round's windows -----------------------------------------
    // spec_safe_[k] bounds the earliest possible arrival into k during
    // the round: held messages directly, peers' future posts via floors +
    // closed lookahead, and replies to k's own in-round posts via the
    // self-return liveness term over its QUEUE front (in-round dispatches
    // only come from the queue). Events below it are final the moment
    // they run. The horizon adds (depth - 1) extra minimum-lookahead
    // windows of journaled run-ahead; depth 1 degenerates to conservative
    // pacing.
    compute_floors();
    for (std::size_t k = 0; k < n; ++k) {
      Time safe = pool_min[k];
      if (qnext[k] != Engine::kNoEvent && out_min_[k] < kUnboundedLookahead) {
        safe = std::min(safe, sat_add(qnext[k], out_min_[k]));
      }
      for (std::size_t j = 0; j < n; ++j) {
        if (j == k || floor[j] == Engine::kNoEvent) continue;
        const Time la = lookahead_[j * n + k];
        if (la >= kUnboundedLookahead) continue;
        safe = std::min(safe, sat_add(floor[j], la));
      }
      spec_safe_[k] = safe;
      Time horizon = safe;
      if (safe != Engine::kNoEvent && spec_depth_ > 1 &&
          min_lookahead_ < kUnboundedLookahead) {
        const std::uint64_t mult = spec_depth_ - 1;
        const Time per = min_lookahead_;
        const Time extra =
            mult > static_cast<std::uint64_t>(kUnboundedLookahead / per)
                ? kUnboundedLookahead
                : static_cast<Time>(mult) * per;
        horizon = sat_add(safe, extra);
      }
      spec_horizon_[k] = horizon;
    }
    ++stats_.windows;
    start.arrive_and_wait();
    finish.arrive_and_wait();
  }
  for (auto& w : workers) w.join();
  mode_ = Mode::kIdle;

  for (std::size_t i = 0; i < n; ++i) {
    stats_.journaled_effects +=
        engines_[i]->spec_journaled_total() - journaled0[i];
  }
  if (error_) std::rethrow_exception(error_);
  // Same final-time contract as the conservative run: report the latest
  // executed event and align every clock to it (the speculative workers
  // never park clocks, but idle shards may still lag behind).
  Time m = base;
  for (const auto& e : engines_) m = std::max(m, e->last_event_);
  for (auto& e : engines_) e->now_ = m;
  return m;
}

}  // namespace cord::sim
