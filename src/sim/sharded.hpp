// Sharded simulation: N Engine instances, one thread each, synchronized
// with conservative (lookahead-based) time windows.
//
// Protocol (synchronous conservative windows, a la CMB null-message-free
// variants): the lookahead D[i][j] is a lower bound on how far in the
// future any cross-shard effect from shard i must land on shard j (the
// minimum source-side propagation of any fabric path crossing that pair,
// run through a min-plus transitive closure so relayed effects i -> k -> j
// are bounded too). With T_j = shard j's earliest queued event time, shard
// k may safely execute every event strictly before
//
//   end_k = min( min_{j != k} T_j + D[j][k],   // nothing can reach k earlier
//                T_k + min_j D[k][j] )         // k's own posts drain next edge
//
// — the first term is safety (no peer can send k a message dated inside
// the window), the second is liveness (anything k posts while running is
// parked in a mailbox until the window edge; bounding the window by k's
// own earliest possible post keeps k from spinning forever on a reply
// that sits in its own outbox). With a uniform matrix this degenerates to
// the classic global window [T, T + L]. At the window edge all shards
// block on a barrier, the coordinator drains the cross-shard mailboxes
// into the destination engines in a deterministic order, recomputes the
// T's, and opens the next windows.
//
// Determinism: within a shard the existing (t, seq) total order applies
// unchanged. Cross-shard messages are assigned destination seq numbers at
// window edges by draining mailboxes in (t, source shard, posting order)
// order — a pure function of simulation state, independent of thread
// scheduling — so an N-shard run is reproducible run-to-run and, for
// models whose timestamps don't depend on event interleaving across
// shards, bit-identical to the single-engine run. Window *placement*
// (hence ShardStats::windows) depends on the matrix, but which events run
// and the timestamps they produce do not.
//
// Mailboxes are phase-separated rather than locked: during a window only
// the source shard's thread appends to mail_[src][dst]; between the finish
// and start barriers only the coordinator thread reads and clears them.
// The barriers provide the happens-before edges, so the vectors need no
// atomics and run clean under ThreadSanitizer.
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#include "sim/engine.hpp"
#include "sim/inline_fn.hpp"
#include "sim/units.hpp"

namespace cord::sim {

/// Synchronization protocol of a parallel sharded run (DESIGN.md §12/§17).
enum class SyncMode : std::uint8_t {
  kConservative,  ///< lookahead windows only — never executes ahead
  kSpeculative,   ///< Time-Warp style: run ahead, journal, roll back
};

/// Parse "conservative" / "speculative" (throws std::invalid_argument).
SyncMode parse_sync_mode(std::string_view name);
std::string_view sync_mode_name(SyncMode mode);

/// Per-run statistics of a sharded execution (reset by each run call).
struct ShardStats {
  std::uint64_t windows = 0;        ///< sync windows (rounds) executed
  std::uint64_t messages = 0;       ///< cross-shard messages delivered
  std::uint64_t sequential_events = 0;  ///< events run in merged mode
  /// Wall-clock nanoseconds each shard spent blocked on the window-edge
  /// barrier waiting for stragglers (sync idle; feeds the flame view).
  std::vector<std::uint64_t> barrier_wait_ns;
  /// Window-edge barriers each shard blocked on (the wait count behind
  /// barrier_wait_ns; feeds the critical-path report's sync section).
  std::vector<std::uint64_t> barrier_waits;
  /// True when the run used the speculative protocol (> 1 shard with
  /// sync = kSpeculative); the counters below stay zero otherwise.
  bool speculative = false;
  /// Rollbacks applied (one per shard per round that had to rewind).
  std::uint64_t rollbacks = 0;
  /// Speculatively dispatched events undone by rollbacks (each is
  /// re-queued and re-executed later).
  std::uint64_t rolled_back_events = 0;
  /// Speculative dispatches journaled (events run ahead of the
  /// conservative edge; committed + rolled back).
  std::uint64_t journaled_effects = 0;
  /// Cross-shard messages cancelled because their posting dispatch was
  /// rolled back (the pool-held analogue of Time-Warp anti-messages).
  std::uint64_t cancelled_messages = 0;
  /// Largest uncommitted journal length observed on any shard at a
  /// resolution point (how far ahead speculation actually ran).
  std::uint64_t max_speculation_depth = 0;
};

class ShardedEngine {
 public:
  /// Lookahead value meaning "these shards never interact": windows on
  /// such pairs are unbounded. Deliberately kNoEvent / 2 so that
  /// T + lookahead can never wrap sim::Time; set_lookahead clamps any
  /// larger value (including the raw Engine::kNoEvent sentinel that
  /// fabric::Network::min_cross_lookahead returns for partitions with no
  /// cross-shard path) down to this. Event times must stay below this
  /// value too — run() fails loudly (std::logic_error) once any queued
  /// event reaches it, rather than letting window arithmetic mistake a
  /// large finite time for the sentinel and silently stop synchronizing.
  static constexpr Time kUnboundedLookahead = Engine::kNoEvent / 2;

  /// `queue` selects the event-queue backend of every member engine
  /// (sim/calendar_queue.hpp); both backends pop the same (t, seq) order,
  /// so sharded runs are bit-identical under either.
  explicit ShardedEngine(std::size_t shard_count,
                         QueueKind queue = QueueKind::kHeap);
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;
  ~ShardedEngine();

  std::size_t shard_count() const { return engines_.size(); }
  Engine& shard(std::size_t i) { return *engines_[i]; }
  const Engine& shard(std::size_t i) const { return *engines_[i]; }

  /// Declare a uniform conservative lookahead: the minimum propagation
  /// delay of any path crossing any shard pair. Values >=
  /// kUnboundedLookahead (including Engine::kNoEvent) clamp to
  /// kUnboundedLookahead. Throws std::invalid_argument for la <= 0 with
  /// more than one shard — a zero-lookahead topology (e.g. a cross-shard
  /// link with zero propagation) admits no safe window and must be
  /// rejected at setup.
  void set_lookahead(Time la);

  /// Declare a per-shard-pair lookahead matrix (row-major, shard_count()^2
  /// entries; [src * n + dst]). Entry (i, j) bounds how far ahead of src's
  /// clock any direct i -> j effect must land; use kUnboundedLookahead (or
  /// anything larger, e.g. Engine::kNoEvent) for pairs that never
  /// interact. Diagonal entries are ignored. Off-diagonal entries <= 0
  /// throw std::invalid_argument when shard_count() > 1. The matrix is
  /// closed under min-plus composition internally (i -> k -> j relays),
  /// so callers only need to describe direct pair bounds.
  void set_lookahead(const std::vector<Time>& matrix);

  /// Select the parallel synchronization protocol. kConservative (the
  /// default) is the exact windowed protocol above. kSpeculative lets each
  /// shard run up to `depth` lookahead windows past its conservative edge,
  /// journaling replayable dispatches (Engine::call_at_replayable) and
  /// rolling them back when a cross-shard arrival lands in their past —
  /// Time-Warp with a bounded throttle (DESIGN.md §17). Non-replayable
  /// events act as fences, so models that never opt in execute exactly the
  /// conservative schedule. `depth` >= 1; depth 1 speculates zero windows
  /// ahead (the conservative edge itself).
  void set_sync(SyncMode mode, std::uint32_t depth = kDefaultSpeculationDepth);
  SyncMode sync() const { return sync_; }
  std::uint32_t speculation_depth() const { return spec_depth_; }
  static constexpr std::uint32_t kDefaultSpeculationDepth = 8;

  /// Minimum off-diagonal lookahead (kUnboundedLookahead when no pair
  /// interacts) — the uniform-protocol view of the matrix.
  Time lookahead() const { return min_lookahead_; }
  /// Closed pairwise bound: no effect originating on `src` can land on
  /// `dst` less than this far ahead of src's clock, even via relays.
  Time lookahead(std::size_t src, std::size_t dst) const {
    return lookahead_[src * shard_count() + dst];
  }

  /// Post `fn` at absolute time `t` onto `dst`. Called (via
  /// Engine::cross_post) from whatever thread currently runs `src`.
  /// During a parallel window the message is parked in the src->dst
  /// mailbox and throws std::logic_error if `t` violates the declared
  /// lookahead (a torn window: the model generated an effect earlier than
  /// the sync protocol can deliver it). Outside parallel execution it is
  /// delivered immediately. `replayable` marks the delivered callback as
  /// replayable on the destination (see Engine::call_at_replayable).
  void post(Engine& src, Engine& dst, Time t, InlineFn fn,
            bool replayable = false);

  /// Merged sequential execution: one thread interleaves every engine in
  /// global (t, shard) order with a single shared notion of "now" (each
  /// engine's clock follows the global clock). Use for setup phases whose
  /// coroutines hop between shards in ways the conservative protocol does
  /// not allow. Returns the final global time; all shard clocks end equal.
  Time run_sequential();

  /// Parallel conservative-window execution until every queue and mailbox
  /// drains. With one shard this is exactly Engine::run(). Returns the
  /// time of the latest executed event — never the conservative-window
  /// parking horizon — and aligns every shard clock to it, so the
  /// returned time and the post-run clocks match the single-engine run
  /// bit-for-bit at any shard count. Rethrows the first exception thrown
  /// inside any shard.
  Time run();

  /// Raise every shard clock to the current global maximum.
  void sync_clocks();

  const ShardStats& stats() const { return stats_; }
  /// Aggregates over all shards (drop-in for the Engine accessors).
  std::uint64_t events_processed() const;
  std::uint64_t clamped_events() const;
  std::size_t live_roots() const;
  /// Calendar-queue resizes summed over all shards (0 under the heap).
  std::uint64_t queue_resizes() const;
  /// Largest queue-depth high-water mark across all shards.
  std::size_t queue_peak_depth() const;

  /// t + la without wrapping sim::Time (saturates at Engine::kNoEvent).
  static Time sat_add(Time t, Time la) {
    return t >= Engine::kNoEvent - la ? Engine::kNoEvent : t + la;
  }

 private:
  friend class Engine;  // speculative protocol helpers in speculation.cpp

  struct Msg {
    Time t;            ///< delivery time on the destination
    Time post_t;       ///< source clock when the message was posted
    InlineFn fn;
    bool replayable;
  };

  /// A cross-shard message held by the coordinator until its posting
  /// dispatch commits (speculative mode only). Holding — instead of
  /// delivering tentatively — is what makes anti-messages unnecessary: a
  /// message that reached a destination queue can never be invalidated,
  /// so rollback cancellation is a pool-local erase (DESIGN.md §17).
  struct PoolMsg {
    Time t;
    Time post_t;
    std::uint32_t src;
    std::uint32_t dst;
    std::uint64_t order;  ///< per-(src, dst) posting order, across rounds
    InlineFn fn;
    bool replayable;
  };

  enum class Mode { kIdle, kSequential, kParallel };

  Time run_parallel();
  Time run_speculative_parallel();  // speculation.cpp
  void drain_mailboxes();
  Time min_next_event() const;
  /// Min-plus transitive closure of lookahead_, then refresh the derived
  /// min_lookahead_ / out_min_ caches.
  void close_lookahead();

  std::vector<std::unique_ptr<Engine>> engines_;
  /// mail_[src * n + dst]: appended by src's thread during a window,
  /// drained by the coordinator between barriers.
  std::vector<std::vector<Msg>> mail_;
  /// Closed lookahead matrix [src * n + dst]; diagonal unused. Every
  /// entry is in (0, kUnboundedLookahead].
  std::vector<Time> lookahead_;
  /// out_min_[k] = min over j != k of lookahead_[k][j]: the earliest any
  /// post from k can be dated, relative to k's clock (liveness bound).
  std::vector<Time> out_min_;
  Time min_lookahead_ = kUnboundedLookahead;
  Mode mode_ = Mode::kIdle;
  /// Per-shard window edge for the current parallel round, written by the
  /// coordinator between barriers. Engine::kNoEvent means "unbounded: run
  /// to queue exhaustion".
  std::vector<Time> window_end_;
  SyncMode sync_ = SyncMode::kConservative;
  std::uint32_t spec_depth_ = kDefaultSpeculationDepth;
  /// Speculative-round worker parameters (coordinator-written between
  /// barriers): spec_safe_[k] bounds unjournaled execution, spec_horizon_
  /// bounds speculation (safe + (depth - 1) windows).
  std::vector<Time> spec_safe_;
  std::vector<Time> spec_horizon_;
  /// Held cross-shard messages (speculative mode; coordinator-only).
  std::vector<PoolMsg> pool_;
  /// Per-(src * n + dst) running posting-order counters for pool_ entries.
  std::vector<std::uint64_t> post_order_;
  bool stop_ = false;
  std::exception_ptr error_;
  ShardStats stats_;
};

}  // namespace cord::sim
