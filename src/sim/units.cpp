#include "sim/units.hpp"

#include <array>
#include <cstdio>

namespace cord::sim {

std::string format_time(Time t) {
  char buf[64];
  const double abs_t = std::abs(static_cast<double>(t));
  if (abs_t >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3f s", to_sec(t));
  } else if (abs_t >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", to_ms(t));
  } else if (abs_t >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%.3f us", to_us(t));
  } else if (abs_t >= kNanosecond) {
    std::snprintf(buf, sizeof(buf), "%.1f ns", to_ns(t));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld ps", static_cast<long long>(t));
  }
  return buf;
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  constexpr std::array<const char*, 4> units{"B", "KiB", "MiB", "GiB"};
  double v = static_cast<double>(bytes);
  std::size_t u = 0;
  while (v >= 1024.0 && u + 1 < units.size()) {
    v /= 1024.0;
    ++u;
  }
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
  }
  return buf;
}

}  // namespace cord::sim
