#include "sim/stats.hpp"

namespace cord::sim {

double Samples::percentile(double p) const {
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  if (p <= 0.0) return values_.front();
  if (p >= 100.0) return values_.back();
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values_.size()) return values_.back();
  return values_[lo] * (1.0 - frac) + values_[lo + 1] * frac;
}

}  // namespace cord::sim
