// Task<T>: lazy coroutine type used for every simulated activity.
//
// A Task does not run until it is awaited (structured, stack-like
// composition) or handed to Engine::spawn (detached root process).
// Completion uses symmetric transfer back to the awaiting parent, so deep
// call chains cost no native stack.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "sim/frame_arena.hpp"

namespace cord::sim {

class Engine;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  /// Set for detached roots spawned into an Engine.
  Engine* owner_engine = nullptr;
  std::uint64_t root_id = 0;
  std::exception_ptr exception;

  /// Coroutine frames allocate from the slab arena (sim/frame_arena.hpp):
  /// class-scope allocation functions on the promise are picked up by the
  /// coroutine machinery for the whole frame, de-mallocing spawn-heavy
  /// workloads. The sized delete is required — frames are freed with the
  /// exact size they were allocated with.
  static void* operator new(std::size_t n) { return frame_alloc(n); }
  static void operator delete(void* p, std::size_t n) noexcept {
    frame_free(p, n);
  }
};

void notify_root_done(Engine& engine, std::uint64_t root_id) noexcept;

struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }

  template <typename Promise>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) const noexcept {
    PromiseBase& p = h.promise();
    if (p.continuation) return p.continuation;
    if (p.owner_engine != nullptr) {
      // Detached root: unregister and self-destroy. Unhandled exceptions in
      // detached tasks are fatal — there is nobody to rethrow to.
      if (p.exception) std::terminate();
      Engine& e = *p.owner_engine;
      std::uint64_t id = p.root_id;
      h.destroy();
      notify_root_done(e, id);
      return std::noop_coroutine();
    }
    return std::noop_coroutine();
  }

  void await_resume() const noexcept {}
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    detail::FinalAwaiter final_suspend() noexcept { return {}; }
    void return_value(T v) { value.emplace(std::move(v)); }
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Task() = default;
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  /// Awaiting a Task starts it; the awaiter is resumed when it completes.
  auto operator co_await() && {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
        h.promise().continuation = parent;
        return h;  // symmetric transfer into the child
      }
      T await_resume() {
        if (h.promise().exception) std::rethrow_exception(h.promise().exception);
        assert(h.promise().value.has_value());
        return std::move(*h.promise().value);
      }
    };
    assert(handle_ && "awaiting an empty Task");
    return Awaiter{handle_};
  }

 private:
  friend class Engine;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  std::coroutine_handle<promise_type> release() {
    return std::exchange(handle_, nullptr);
  }
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    detail::FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Task() = default;
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  auto operator co_await() && {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
        h.promise().continuation = parent;
        return h;
      }
      void await_resume() {
        if (h.promise().exception) std::rethrow_exception(h.promise().exception);
      }
    };
    assert(handle_ && "awaiting an empty Task");
    return Awaiter{handle_};
  }

 private:
  friend class Engine;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  std::coroutine_handle<promise_type> release() {
    return std::exchange(handle_, nullptr);
  }
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace cord::sim
