#include "sim/engine.hpp"

#include <cassert>
#include <cinttypes>
#include <cstdio>

namespace cord::sim {

namespace detail {
void notify_root_done(Engine& engine, std::uint64_t root_id) noexcept {
  engine.roots_.erase(root_id);
}
}  // namespace detail

Engine::~Engine() {
  // Destroy roots that never completed (their frames own all nested
  // coroutine frames through Task members, so this reclaims the whole
  // logical stack of each process).
  for (auto& [id, h] : roots_) h.destroy();
  roots_.clear();
}

void Engine::schedule_at(Time t, std::coroutine_handle<> h) {
  assert(t >= now_ && "scheduling into the past");
  queue_.push(Item{t, next_seq_++, h, nullptr});
}

void Engine::call_at(Time t, std::function<void()> fn) {
  assert(t >= now_ && "scheduling into the past");
  queue_.push(Item{t, next_seq_++, nullptr, std::move(fn)});
}

void Engine::dispatch(Item& item) {
  ++events_processed_;
  if (item.handle) {
    item.handle.resume();
  } else {
    item.fn();
  }
}

Time Engine::run() {
  while (!queue_.empty()) {
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    now_ = item.t;
    dispatch(item);
  }
  return now_;
}

Time Engine::run_until(Time deadline) {
  while (!queue_.empty() && queue_.top().t <= deadline) {
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    now_ = item.t;
    dispatch(item);
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace cord::sim
