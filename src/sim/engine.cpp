#include "sim/engine.hpp"

namespace cord::sim {

namespace detail {
void notify_root_done(Engine& engine, std::uint64_t root_id) noexcept {
  engine.roots_.erase(root_id);
}
}  // namespace detail

std::vector<Engine::Slab>& Engine::slab_cache() {
  thread_local std::vector<Slab> cache;
  return cache;
}

Engine::FnSlot* Engine::grow_slots() {
  auto& cache = slab_cache();
  FnSlot* slab;
  std::size_t count;
  if (!cache.empty()) {
    // LIFO reuse: the most recently retired slab is the warmest.
    slab = cache.back().slots.release();
    count = cache.back().count;
    cache.pop_back();
  } else {
    count = slab_slots_;
    slab = new FnSlot[count];
  }
  if (slab_slots_ < kMaxSlabSlots) slab_slots_ *= 2;
  slots_.push_back(Slab{std::unique_ptr<FnSlot[]>(slab), count});
  for (std::size_t i = 0; i + 1 < count; ++i) {
    slab[i].next_free = &slab[i + 1];
  }
  slab[count - 1].next_free = free_slots_;
  free_slots_ = slab;
  return slab;
}

Engine::~Engine() {
  // Destroy roots that never completed (their frames own all nested
  // coroutine frames through Task members, so this reclaims the whole
  // logical stack of each process).
  for (auto& [id, h] : roots_) h.destroy();
  roots_.clear();
  // Destroy callbacks still parked in the queue. Slots NOT in the queue
  // are always empty (release_slot clears before recycling), so the
  // queue's tagged payloads identify every live callable — no need to
  // walk whole slabs.
  const auto clear_parked = [](const Item& item) {
    if (item.payload & kFnTag) {
      reinterpret_cast<FnSlot*>(item.payload & ~kTagMask)->fn.clear();
    }
  };
  if (queue_kind_ == QueueKind::kHeap) {
    for (const Item& item : heap_.heap_items()) clear_parked(item);
    if (heap_.has_cached()) clear_parked(heap_.cached());
  } else {
    cal_.for_each(clear_parked);
  }
  // Uncommitted speculative dispatches (a run that errored out mid-window)
  // still own their slots — their callables were invoked but not released.
  for (const SpecEntry& e : spec_.entries) clear_parked(e.item);
  // Retire slabs (now guaranteed all-empty) to the thread-local cache
  // instead of freeing them; see slab_cache().
  auto& cache = slab_cache();
  std::size_t cached = 0;
  for (const auto& slab : cache) cached += slab.count;
  for (auto& slab : slots_) {
    if (cached + slab.count > kMaxCachedSlots) continue;  // excess: freed
    cached += slab.count;
    cache.push_back(std::move(slab));
  }
  slots_.clear();
}

}  // namespace cord::sim
