// Resource: a FIFO server with a fixed service rate — the building block
// for every contended stage in the system (wire direction, PCIe DMA
// engine, NIC WQE processing pipeline, kernel softirq core).
//
// use(busy) reserves the next `busy` picoseconds of the server and
// suspends the caller until that slot ends, i.e. completion time is
//   start = max(now, next_free); finish = start + busy.
// This models serialization/bandwidth contention without per-packet
// events.
#pragma once

#include <algorithm>
#include <coroutine>

#include "sim/engine.hpp"
#include "sim/units.hpp"

namespace cord::sim {

class Resource {
 public:
  explicit Resource(Engine& engine) : engine_(&engine) {}
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Occupy the server for `busy` time; resumes when the reserved slot ends.
  [[nodiscard]] auto use(Time busy) {
    struct Awaiter {
      Resource& res;
      Time busy;
      Time finish = 0;
      bool await_ready() {
        // Read the clock once: Time aliases Time, so after the stores
        // below the compiler would otherwise have to reload now_.
        const Time now = res.engine_->now();
        Time start = std::max(now, res.next_free_);
        finish = start + busy;
        res.next_free_ = finish;
        res.busy_total_ += busy;
        return finish <= now;
      }
      void await_suspend(std::coroutine_handle<> h) {
        res.engine_->schedule_at(finish, h);
      }
      /// Returns the completion time of this slot.
      Time await_resume() const { return finish; }
    };
    return Awaiter{*this, busy};
  }

  /// Reserve a slot without suspending; returns its completion time.
  /// Useful when the caller only needs the finish timestamp (e.g. posted
  /// MMIO writes that do not stall the CPU).
  Time reserve(Time busy) { return reserve_at(engine_->now(), busy); }

  /// Reserve a slot that cannot start before `earliest` (which may lie in
  /// the future). This is how pipelined stages chain: stage N+1 of a chunk
  /// is reserved to start when stage N of that chunk finishes, while other
  /// chunks fill the gaps in FIFO order.
  Time reserve_at(Time earliest, Time busy) {
    Time start = std::max({engine_->now(), earliest, next_free_});
    next_free_ = start + busy;
    busy_total_ += busy;
    return next_free_;
  }

  /// Earliest time a new request could start service.
  Time next_free() const { return std::max(engine_->now(), next_free_); }
  /// Cumulative busy time (for utilization reports).
  Time busy_total() const { return busy_total_; }

 private:
  Engine* engine_;
  Time next_free_ = 0;
  Time busy_total_ = 0;
};

}  // namespace cord::sim
