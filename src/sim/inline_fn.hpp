// InlineFn: a move-only `void()` callable with a small-buffer optimisation
// sized for the simulator's hot paths. Every event the NIC schedules
// (`Engine::call_at`) used to heap-allocate a `std::function` control
// block; InlineFn stores captures up to `kCapacity` bytes inline in the
// event-queue slot itself, so steady-state simulation performs zero
// allocations per event. Callables larger than the buffer (or with
// throwing moves) transparently fall back to the heap — correctness never
// depends on fitting.
//
// Unlike `std::function`, InlineFn accepts move-only callables (captures
// holding pooled work-request handles, unique_ptrs, moved-in buffers).
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace cord::sim {

template <std::size_t Capacity>
class BasicInlineFn {
 public:
  static constexpr std::size_t kCapacity = Capacity;

  /// True when a callable of type F is stored inline (no allocation).
  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
      (std::is_nothrow_move_constructible_v<F> || std::is_trivially_copyable_v<F>);

  BasicInlineFn() = default;
  BasicInlineFn(std::nullptr_t) {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, BasicInlineFn> &&
                std::is_invocable_v<std::decay_t<F>&>>>
  BasicInlineFn(F&& f) {  // NOLINT(runtime/explicit)
    emplace(std::forward<F>(f));
  }

  BasicInlineFn(BasicInlineFn&& o) noexcept { move_from(o); }
  BasicInlineFn& operator=(BasicInlineFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  BasicInlineFn(const BasicInlineFn&) = delete;
  BasicInlineFn& operator=(const BasicInlineFn&) = delete;
  ~BasicInlineFn() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(buf_); }

  /// Replace the stored callable, constructing the new one in place (no
  /// intermediate InlineFn move) — the event engine fills pooled slots
  /// through this. When the previous occupant had no destructor/relocator
  /// state (the common case: small trivially-copyable captures), the reset
  /// is skipped entirely; emplace() overwrites invoke_ and only writes the
  /// other fields when the new callable needs them, which is exactly when
  /// they are guaranteed null.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, BasicInlineFn> &&
                std::is_invocable_v<std::decay_t<F>&>>>
  void assign(F&& f) {
    if (!trivial_state()) [[unlikely]] reset();
    emplace(std::forward<F>(f));
  }

  /// True when the stored callable lives on the heap (over-capacity
  /// fallback); exposed for tests and allocation accounting.
  bool on_heap() const { return heap_; }

  /// Destroy the stored callable (if any) and become empty.
  void clear() noexcept { reset(); }

  /// True when the stored callable (or empty state) carries no
  /// destructor/relocator obligations: destroying it is a no-op and a
  /// subsequent assign() may skip the reset. A stale invoke_ is harmless —
  /// emplace() always overwrites it.
  bool trivial_state() const {
    return destroy_ == nullptr && relocate_ == nullptr && !heap_;
  }

 private:
  using Invoke = void (*)(void*);
  // Move-construct the callable from `src` into `dst`, destroying `src`.
  // nullptr means the callable is trivially relocatable (memcpy suffices).
  using Relocate = void (*)(void* dst, void* src) noexcept;
  // nullptr means trivially destructible.
  using Destroy = void (*)(void*) noexcept;

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); };
      if constexpr (!std::is_trivially_copyable_v<D>) {
        relocate_ = [](void* dst, void* src) noexcept {
          D* s = std::launder(reinterpret_cast<D*>(src));
          ::new (dst) D(std::move(*s));
          s->~D();
        };
      }
      if constexpr (!std::is_trivially_destructible_v<D>) {
        destroy_ = [](void* p) noexcept {
          std::launder(reinterpret_cast<D*>(p))->~D();
        };
      }
    } else {
      // Over-capacity fallback: the buffer holds only a pointer. The
      // pointer itself is trivially relocatable, so relocate_ stays null.
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      heap_ = true;
      invoke_ = [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); };
      destroy_ = [](void* p) noexcept {
        delete *std::launder(reinterpret_cast<D**>(p));
      };
    }
  }

  void move_from(BasicInlineFn& o) noexcept {
    invoke_ = o.invoke_;
    relocate_ = o.relocate_;
    destroy_ = o.destroy_;
    heap_ = o.heap_;
    if (o.invoke_ != nullptr) {
      if (o.relocate_ != nullptr) {
        o.relocate_(buf_, o.buf_);
      } else {
        std::memcpy(buf_, o.buf_, Capacity);
      }
    }
    o.invoke_ = nullptr;
    o.relocate_ = nullptr;
    o.destroy_ = nullptr;
    o.heap_ = false;
  }

  void reset() noexcept {
    if (destroy_ != nullptr) destroy_(buf_);
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
    heap_ = false;
  }

  alignas(std::max_align_t) std::byte buf_[Capacity];
  Invoke invoke_ = nullptr;
  Relocate relocate_ = nullptr;
  Destroy destroy_ = nullptr;
  bool heap_ = false;
};

/// 80 bytes covers every capture list on the NIC data plane (the largest —
/// the send-arrival delivery continuation — packs to exactly 80 bytes with
/// pooled work-request handles).
using InlineFn = BasicInlineFn<80>;

}  // namespace cord::sim
