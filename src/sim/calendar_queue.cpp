#include "sim/calendar_queue.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>

namespace cord::sim {

QueueKind parse_queue_kind(std::string_view name) {
  if (name == "heap") return QueueKind::kHeap;
  if (name == "calendar") return QueueKind::kCalendar;
  throw std::invalid_argument("unknown event queue \"" + std::string(name) +
                              "\" (want heap|calendar)");
}

std::string_view queue_kind_name(QueueKind kind) {
  return kind == QueueKind::kHeap ? "heap" : "calendar";
}

namespace {
/// std::push_heap/pop_heap build a max-heap under "less"; inverting
/// before() yields a min-heap on (t, seq).
bool heap_after(const QueueItem& a, const QueueItem& b) { return b.before(a); }
}  // namespace

void CalendarQueue::insert_sorted(Bucket& b, std::uint32_t n) {
  // Out-of-order arrival within a bucket: walk the (short — ~1-2 items
  // at target occupancy) list to the insertion point. The caller already
  // handled the empty-bucket and append-at-tail cases.
  const QueueItem item = arena_[n].item;
  if (item.before(arena_[b.head].item)) {
    arena_[n].next = b.head;
    b.head = n;
    return;
  }
  std::uint32_t prev = b.head;
  while (arena_[prev].next != kNil &&
         arena_[arena_[prev].next].item.before(item)) {
    prev = arena_[prev].next;
  }
  arena_[n].next = arena_[prev].next;
  arena_[prev].next = n;
  if (arena_[n].next == kNil) b.tail = n;
}

void CalendarQueue::overflow_push(QueueItem item) {
  overflow_.push_back(item);
  std::push_heap(overflow_.begin(), overflow_.end(), heap_after);
}

void CalendarQueue::jump_to_overflow() {
  // The calendar is empty with items banked in the band: a full rebuild
  // rebases onto the band minimum (which lands in bucket 0) and migrates
  // everything the recalibrated window covers. One O(size) rebuild per
  // idle gap — never a per-pop partition of the band.
  resize(target_buckets());
}

void CalendarQueue::resize(std::size_t new_buckets) {
  ++resizes_;
  // Snapshot every queued item, rebase onto the minimum timestamp, and
  // recalibrate the bucket width from the earliest kSampleItems: 3x their
  // mean timestamp gap (Brown's heuristic: ~1/3 occupancy in the head
  // buckets), rounded up to a power of two so the bucket index stays a
  // shift.
  std::vector<QueueItem> all;
  all.reserve(size_);
  for_each([&all](const QueueItem& item) { all.push_back(item); });
  const std::size_t sample = std::min(all.size(), kSampleItems);
  if (sample >= 1) {
    std::partial_sort(all.begin(),
                      all.begin() + static_cast<std::ptrdiff_t>(sample),
                      all.end(),
                      [](const QueueItem& a, const QueueItem& b) {
                        return a.before(b);
                      });
    // Rebasing onto the minimum (not the pop watermark) is what makes a
    // far-future jump O(1) amortized; it is exact because a later push
    // below the new base clamps into bucket 0 (see push()). It also
    // guarantees the minimum lands in bucket 0, so a rebuild never
    // leaves the calendar empty while the band holds items.
    base_ = all[0].t;
  } else {
    base_ = watermark_;
  }
  if (sample >= 2) {
    const std::uint64_t gap =
        static_cast<std::uint64_t>(all[sample - 1].t - all[0].t) /
        static_cast<std::uint64_t>(sample - 1);
    // Saturate before the 3x so sentinel-adjacent spans cannot wrap; the
    // shift clamp below caps the width at 2^56 anyway.
    const std::uint64_t width =
        3 * std::min(gap, std::uint64_t{1} << 55);
    // bit_width(w) yields the smallest shift with 2^shift > w/2; clamp so
    // base_ + N * width arithmetic stays meaningful and a width of zero
    // (an all-ties snapshot) never divides the world into unit buckets.
    shift_ = std::max<std::uint32_t>(
        1, std::min<std::uint32_t>(56, std::bit_width(width)));
  }
  buckets_.assign(new_buckets, Bucket{});
  arena_.clear();  // capacity survives; redistribution re-threads below
  free_ = kNil;
  overflow_.clear();
  cal_count_ = 0;
  cur_ = 0;
  for (const QueueItem& item : all) {
    const std::int64_t off = item.t - base_;
    const std::uint64_t idx =
        off <= 0 ? 0 : static_cast<std::uint64_t>(off) >> shift_;
    if (idx < buckets_.size()) {
      bucket_insert(buckets_[idx], item);
      ++cal_count_;
    } else {
      overflow_.push_back(item);
    }
  }
  std::make_heap(overflow_.begin(), overflow_.end(), heap_after);
  overflow_floor_ = overflow_.size();
}

}  // namespace cord::sim
