// Discrete-event engine: a single-threaded virtual clock plus an event
// queue of coroutine resumptions and callbacks. Deterministic: ties in
// timestamp break by insertion sequence number.
//
// Hot-path design (the engine bounds the wall-clock of every figure
// bench):
//  * Heap items are 24-byte PODs `{t, seq, payload}` — the payload is a
//    tagged pointer: a coroutine frame address (tag 0) or a pooled
//    callback slot (tag 1). Sift operations move three words, never the
//    callable itself.
//  * Callbacks live in `InlineFn` slots from a slab-backed freelist: a
//    `call_at` constructs the callable directly in a recycled slot, so
//    steady-state simulation performs zero allocations per event and the
//    callable never moves once parked.
//  * The queue is a hand-rolled 4-ary min-heap: shallower than a binary
//    heap (fewer cache-missing levels per sift) and `reserve()`d up
//    front. Ordering is the exact `(t, seq)` total order the old
//    `std::priority_queue` used — `seq` is unique, so pop order is a
//    strict total order independent of heap layout, and every
//    EXPERIMENTS.md number is unchanged.
//  * Scheduling into the past clamps to `now()` in every build mode (the
//    old `assert` vanished under NDEBUG and silently corrupted event
//    order); `clamped_events()` counts occurrences for tests/debugging.
//  * The queue is a pluggable policy (QueueKind, chosen at construction):
//    the 4-ary heap below, or the calendar queue (sim/calendar_queue.hpp)
//    with O(1) amortized push/pop under mostly-FIFO timestamps. Both
//    produce the exact `(t, seq)` strict total order, so pop sequences —
//    and every golden output — are bit-identical under either backend.
//    The run loops are templated over the backend and select it once per
//    call, so the hot loop stays specialized and inlinable; per-push
//    sites pay one perfectly predicted branch.
#pragma once

#include <coroutine>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/inline_fn.hpp"
#include "sim/task.hpp"
#include "sim/units.hpp"

namespace cord::trace {
class Tracer;
}  // namespace cord::trace

namespace cord::sim {

class ShardedEngine;

class Engine {
 public:
  explicit Engine(QueueKind queue = QueueKind::kHeap) : queue_kind_(queue) {
    if (queue == QueueKind::kHeap) heap_.reserve(1024);
  }
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  Time now() const { return now_; }
  QueueKind queue_kind() const { return queue_kind_; }

  /// Resume `h` at absolute time `t` (clamped to now() if in the past).
  void schedule_at(Time t, std::coroutine_handle<> h) {
    queue_push(Item{clamp_to_now(t), next_seq_++,
                    reinterpret_cast<std::uintptr_t>(h.address())});
  }
  /// Resume `h` after `delay`.
  void schedule_in(Time delay, std::coroutine_handle<> h) {
    schedule_at(now_ + delay, h);
  }

  /// Run `fn` at absolute time `t` (used for device callbacks,
  /// interrupts). The callable is constructed directly into a pooled
  /// slot; captures up to InlineFn::kCapacity bytes never touch the heap.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineFn> &&
                std::is_invocable_v<std::remove_cvref_t<F>&>>>
  void call_at(Time t, F&& fn) {
    FnSlot* slot = acquire_slot();
    slot->fn.assign(std::forward<F>(fn));
    push_fn(t, slot, kFnTag);
  }
  /// Overload for a pre-built InlineFn (one relocation into the slot).
  void call_at(Time t, InlineFn fn) {
    FnSlot* slot = acquire_slot();
    slot->fn = std::move(fn);
    push_fn(t, slot, kFnTag);
  }
  template <typename F>
  void call_in(Time delay, F&& fn) {
    call_at(now_ + delay, std::forward<F>(fn));
  }

  /// Like call_at, but marks the callback as *replayable*: under the
  /// speculative sharded sync mode (sim/sharded.hpp) the engine may
  /// dispatch it beyond the conservative window edge, journal its effects
  /// and re-execute it after a rollback. The contract a replayable
  /// callable must honor (DESIGN.md §17):
  ///  * every model-state write goes through spec_store() (so the journal
  ///    can undo it) — or touches only engine-managed state (scheduling);
  ///  * it must not mutate its own captures across invocations, resume a
  ///    coroutine synchronously, or spawn a root task;
  ///  * scheduling further events (call_at / schedule_at / cross_post) is
  ///    fine — the journal cancels speculative children on rollback.
  /// Outside speculative execution (single engine, conservative sync, or
  /// sequential phases) the mark is inert: dispatch order, timestamps and
  /// results are bit-identical to a plain call_at.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineFn> &&
                std::is_invocable_v<std::remove_cvref_t<F>&>>>
  void call_at_replayable(Time t, F&& fn) {
    FnSlot* slot = acquire_slot();
    slot->fn.assign(std::forward<F>(fn));
    push_fn(t, slot, kFnTag | kReplayTag);
  }
  void call_at_replayable(Time t, InlineFn fn) {
    FnSlot* slot = acquire_slot();
    slot->fn = std::move(fn);
    push_fn(t, slot, kFnTag | kReplayTag);
  }

  /// Journaled model-state write: `slot = v`, recording the previous bytes
  /// when the write happens inside a speculative dispatch so a rollback
  /// can restore them. Outside speculation this is a plain assignment —
  /// models can use it unconditionally at zero steady-state cost.
  template <typename T>
  void spec_store(T& slot, T v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "spec_store journals raw bytes");
    if (spec_active_) [[unlikely]] spec_save(&slot, sizeof(T));
    slot = v;
  }

  /// True while the engine is inside a speculative (journaled) dispatch.
  bool speculating() const { return spec_active_; }
  /// Uncommitted speculative dispatches currently journaled.
  std::size_t spec_depth() const { return spec_.entries.size(); }
  /// Total speculative dispatches journaled over the engine's lifetime.
  std::uint64_t spec_journaled_total() const { return spec_journaled_total_; }

  /// Detach a root task: it starts at the current time and owns itself.
  template <typename T>
  void spawn(Task<T> task) {
    if (spec_active_) {
      // A root's coroutine frame cannot be journaled; replayable
      // callbacks must schedule callbacks, not spawn processes.
      throw std::logic_error("Engine::spawn inside a speculative dispatch");
    }
    auto h = task.release();
    auto& p = h.promise();
    p.owner_engine = this;
    p.root_id = next_root_id_++;
    roots_.emplace(p.root_id, h);
    schedule_at(now_, h);
  }

  /// Run until the event queue drains. Returns the final virtual time.
  /// Defined inline: this is THE simulation hot loop, and keeping it
  /// visible to callers lets the compiler collapse a schedule→dispatch
  /// ping-pong into register traffic. The backend branch is taken once
  /// per call; the loop itself is specialized per backend.
  Time run() {
    if (pending_ != 0) {
      if (queue_kind_ == QueueKind::kHeap) {
        run_drain(heap_);
      } else {
        run_drain(cal_);
      }
      last_event_ = now_;
    }
    return now_;
  }
  /// Run until the queue drains or virtual time would pass `deadline`.
  /// Events after `deadline` stay queued; now() is clamped to `deadline`.
  Time run_until(Time deadline) {
    if (pending_ != 0) {
      const bool ran = queue_kind_ == QueueKind::kHeap
                           ? run_until_drain(heap_, deadline)
                           : run_until_drain(cal_, deadline);
      if (ran) last_event_ = now_;
    }
    if (now_ < deadline) now_ = deadline;
    return now_;
  }

  /// Sentinel for "no queued event" (see next_event_time()).
  static constexpr Time kNoEvent = std::numeric_limits<Time>::max();
  /// Timestamp of the earliest queued event, or kNoEvent when idle. Used
  /// by the shard coordinator to compute conservative time windows; never
  /// read on the hot loop.
  Time next_event_time() const {
    if (pending_ == 0) return kNoEvent;
    return queue_kind_ == QueueKind::kHeap ? heap_.top().t : cal_.min_time();
  }

  /// Sharding context (sim/sharded.hpp). Null for a standalone engine;
  /// set by ShardedEngine, which owns its member engines. Cold data: the
  /// hot loop never touches it.
  ShardedEngine* coordinator() const { return coordinator_; }
  std::uint32_t shard_index() const { return shard_index_; }
  /// Schedule `fn` at absolute virtual time `t` on `dst`, which may belong
  /// to another shard (thread). Requires both engines to share a
  /// coordinator; delivery is deferred to a conservative window edge when
  /// the shards run in parallel. Defined in sharded.cpp.
  void cross_post(Engine& dst, Time t, InlineFn fn);
  /// cross_post with the delivered callback marked replayable on `dst`
  /// (see call_at_replayable) — the speculative sync mode may then execute
  /// it ahead of the conservative edge. Identical to cross_post otherwise.
  void cross_post_replayable(Engine& dst, Time t, InlineFn fn);

  /// Number of detached roots that have not finished yet.
  std::size_t live_roots() const { return roots_.size(); }
  /// Total events processed (for the engine microbenchmarks).
  std::uint64_t events_processed() const { return events_processed_; }
  /// Events whose requested time lay in the past and were clamped to
  /// now(). Non-zero values indicate a model bug worth investigating.
  std::uint64_t clamped_events() const { return clamped_events_; }
  /// Events currently queued (for capacity planning in benches).
  std::size_t pending_events() const { return pending_; }
  /// High-water mark of the queue depth (events simultaneously queued).
  std::size_t queue_peak_depth() const { return peak_pending_; }
  /// Calendar-queue resizes performed (0 under the heap backend).
  std::uint64_t queue_resizes() const { return cal_.resizes(); }
  /// Pushes that landed in the calendar's far-future overflow band
  /// (0 under the heap backend).
  std::uint64_t queue_overflow_events() const {
    return cal_.overflow_pushes();
  }

  /// The active tracer, or nullptr when tracing is off. Every trace point
  /// in the stack guards on this single pointer, so disabled tracing costs
  /// one predicted branch per point; the engine itself never reads it on
  /// the hot loop. Installed by trace::Tracer::set_enabled.
  trace::Tracer* tracer() const { return tracer_; }
  void set_tracer(trace::Tracer* t) { tracer_ = t; }

  /// Awaitable: suspend the current coroutine for `d` of virtual time.
  auto delay(Time d) {
    struct Awaiter {
      Engine& engine;
      Time d;
      bool await_ready() const { return false; }
      void await_suspend(std::coroutine_handle<> h) { engine.schedule_in(d, h); }
      void await_resume() const {}
    };
    return Awaiter{*this, d};
  }

  /// Awaitable: suspend until absolute virtual time `t` (>= now()).
  auto sleep_until(Time t) {
    struct Awaiter {
      Engine& engine;
      Time t;
      bool await_ready() const { return t <= engine.now(); }
      void await_suspend(std::coroutine_handle<> h) { engine.schedule_at(t, h); }
      void await_resume() const {}
    };
    return Awaiter{*this, t};
  }

 private:
  friend void detail::notify_root_done(Engine&, std::uint64_t) noexcept;
  friend class ShardedEngine;

  /// Advance the clock without dispatching anything. Used by the shard
  /// coordinator for global-clock semantics in merged (sequential) mode
  /// and to align shard clocks at window edges; never moves time backward.
  void advance_now(Time t) {
    if (t > now_) now_ = t;
  }

  /// Pop and dispatch exactly one event (requires pending_ != 0).
  /// Coordinator-only: the merged sequential mode interleaves engines
  /// event-by-event in global (t, shard) order.
  void step_one() {
    const Item item = queue_pop();
    now_ = item.t;
    dispatch(item.payload);
  }

  // Payload tag bits. FnSlot and coroutine frames are both aligned to
  // alignof(std::max_align_t) (>= 8), so the low bits of the address are
  // free. kReplayTag only ever appears together with kFnTag — coroutine
  // resumptions are never replayable (their frame state cannot be
  // journaled) and act as speculation fences instead.
  static constexpr std::uintptr_t kFnTag = 1;
  static constexpr std::uintptr_t kReplayTag = 2;
  static constexpr std::uintptr_t kTagMask = kFnTag | kReplayTag;

  /// Pooled parking space for one scheduled callback. Slots live in
  /// fixed-size slabs (stable addresses) and recycle via freelist; retired
  /// slabs are cached per-thread across engine instances.
  struct FnSlot {
    InlineFn fn;
    FnSlot* next_free = nullptr;
  };

  /// One queued event (payload: coroutine frame address, or
  /// FnSlot* | kFnTag). Shared with the calendar backend.
  using Item = QueueItem;

  /// 4-ary min-heap ordered by Item::before, fronted by a one-item cache.
  /// `(t, seq)` is a strict total order (seq is unique), so pop order is
  /// independent of internal layout — determinism rests on neither the
  /// arity nor the cache, only on always popping the global minimum.
  ///
  /// The cache absorbs ping-pong scheduling (push one, pop one — the
  /// dominant pattern in request-response simulations): such events never
  /// touch the vector. The cached item is NOT necessarily the global
  /// minimum; pop() compares it against the heap front.
  class EventHeap {
   public:
    bool empty() const { return !has_cached_ && v_.empty(); }
    std::size_t size() const { return v_.size() + (has_cached_ ? 1 : 0); }
    void reserve(std::size_t n) { v_.reserve(n); }
    /// The global minimum (requires !empty()).
    const Item& top() const {
      if (!has_cached_) return v_.front();
      if (v_.empty() || cached_.before(v_.front())) return cached_;
      return v_.front();
    }
    const std::vector<Item>& heap_items() const { return v_; }
    bool has_cached() const { return has_cached_; }
    const Item& cached() const { return cached_; }

    // Everything below is force-inlined: GCC's size heuristics otherwise
    // outline the whole push/pop, and every scheduling site then pays a
    // call with a by-value Item staged through the stack (~15-20%% of the
    // per-event budget at both queue-depth extremes).
    [[gnu::always_inline]] void push(Item item) {
      if (!has_cached_) {
        cached_ = item;
        has_cached_ = true;
        return;
      }
      // Keep the smaller of the two in the cache (it is the likelier next
      // pop) and spill the other into the heap.
      Item spill = item;
      if (item.before(cached_)) {
        spill = cached_;
        cached_ = item;
      }
      heap_push(spill);
    }

    [[gnu::always_inline]] Item pop() {
      if (has_cached_ && (v_.empty() || cached_.before(v_.front()))) {
        has_cached_ = false;
        return cached_;
      }
      return heap_pop();
    }

   private:
    [[gnu::always_inline]] void heap_push(Item item) {
      std::size_t i = v_.size();
      v_.emplace_back(item);
      // Fast path: events mostly arrive in time order, so the new item
      // usually stays where it landed (one compare, zero extra stores).
      if (i == 0 || !item.before(v_[(i - 1) / 4])) return;
      do {
        const std::size_t parent = (i - 1) / 4;
        if (!item.before(v_[parent])) break;
        v_[i] = v_[parent];
        i = parent;
      } while (i > 0);
      v_[i] = item;
    }

    [[gnu::always_inline]] Item heap_pop() {
      const Item out = v_.front();
      const Item last = v_.back();
      v_.pop_back();
      const std::size_t n = v_.size();
      if (n > 0) {
        std::size_t i = 0;
        for (;;) {
          const std::size_t first = 4 * i + 1;
          if (first >= n) break;
          std::size_t best = first;
          const std::size_t end = first + 4 < n ? first + 4 : n;
          for (std::size_t c = first + 1; c < end; ++c) {
            if (v_[c].before(v_[best])) best = c;
          }
          if (!v_[best].before(last)) break;
          v_[i] = v_[best];
          i = best;
        }
        v_[i] = last;
      }
      return out;
    }

    bool has_cached_ = false;
    Item cached_{};
    std::vector<Item> v_;
  };

  // --- Backend dispatch -------------------------------------------------
  // One predicted branch per operation (queue_kind_ never changes after
  // construction); the drain loops hoist it out entirely. pending_ is the
  // engine's own depth counter, so empty checks never consult a backend.

  [[gnu::always_inline]] void queue_push(Item item) {
    if (++pending_ > peak_pending_) peak_pending_ = pending_;
    // Children pushed during a speculative dispatch are recorded so a
    // rollback can purge them. One predicted-false branch on the hot path;
    // spec_active_ is only ever true inside the speculative drain loop.
    if (spec_active_) [[unlikely]] spec_.children.push_back(item.seq);
    if (queue_kind_ == QueueKind::kHeap) {
      heap_.push(item);
    } else {
      cal_.push(item);
    }
  }

  [[gnu::always_inline]] Item queue_pop() {
    --pending_;
    return queue_kind_ == QueueKind::kHeap ? heap_.pop() : cal_.pop();
  }

  template <typename Q>
  [[gnu::always_inline]] void run_drain(Q& q) {
    do {
      --pending_;
      const Item item = q.pop();
      now_ = item.t;
      dispatch(item.payload);
    } while (pending_ != 0);
  }

  template <typename Q>
  [[gnu::always_inline]] bool run_until_drain(Q& q, Time deadline) {
    if (q.top().t > deadline) return false;
    do {
      --pending_;
      const Item item = q.pop();
      now_ = item.t;
      dispatch(item.payload);
    } while (pending_ != 0 && q.top().t <= deadline);
    return true;
  }

  Time clamp_to_now(Time t) {
    if (t < now_) [[unlikely]] {
      ++clamped_events_;
      return now_;
    }
    return t;
  }

  /// One slab of FnSlots plus its length (slabs have varying sizes:
  /// geometric growth, and recycled slabs keep their original size).
  struct Slab {
    std::unique_ptr<FnSlot[]> slots;
    std::size_t count = 0;
  };

  /// Thread-local cache of retired slabs. The simulator is single-threaded
  /// by design, and tests/benches construct thousands of short-lived
  /// engines; recycling slabs avoids a malloc/free pair per slab per
  /// engine — and, more importantly, stops glibc from trimming the freed
  /// pages back to the kernel at every engine teardown only to page-fault
  /// them in again (that churn costs far more than the events themselves).
  static std::vector<Slab>& slab_cache();

  FnSlot* acquire_slot() {
    FnSlot* slot = free_slots_;
    if (slot == nullptr) [[unlikely]] {
      slot = grow_slots();
    }
    free_slots_ = slot->next_free;
    return slot;
  }

  FnSlot* grow_slots();

  void release_slot(FnSlot* slot) {
    // Destroy the callable now, not at engine teardown. Callables with no
    // destructor state need no clear at all: assign() overwrites in place.
    if (!slot->fn.trivial_state()) [[unlikely]] slot->fn.clear();
    slot->next_free = free_slots_;
    free_slots_ = slot;
  }

  void push_fn(Time t, FnSlot* slot, std::uintptr_t tags) {
    queue_push(Item{clamp_to_now(t), next_seq_++,
                    reinterpret_cast<std::uintptr_t>(slot) | tags});
  }

  /// Execute one popped event: resume a coroutine (tag 0) or invoke and
  /// recycle a parked callback (kFnTag set; kReplayTag is inert here —
  /// only the speculative drain loop reads it).
  void dispatch(std::uintptr_t payload) {
    ++events_processed_;
    if (payload & kFnTag) {
      FnSlot* slot = reinterpret_cast<FnSlot*>(payload & ~kTagMask);
      slot->fn();
      release_slot(slot);
    } else {
      std::coroutine_handle<>::from_address(reinterpret_cast<void*>(payload))
          .resume();
    }
  }

  // --- Speculation journal (sim/speculation.cpp, DESIGN.md §17) ---------
  // One undo record per speculatively dispatched (replayable) event. The
  // journal is strictly sorted by the engine's (t, seq) dispatch order, so
  // commits truncate a prefix and rollbacks a suffix. The dispatched
  // event's FnSlot is NOT released until its entry commits, which is what
  // makes re-dispatch after a rollback possible (the callable survives
  // invocation).

  /// One journaled model-state write: `size` old bytes at blob[off].
  struct SpecSave {
    void* addr;
    std::uint32_t size;
    std::uint32_t off;
  };

  struct SpecEntry {
    Item item;             // the dispatched event, original seq and tags
    Time prev_now;         // clock before the dispatch
    Time prev_last_event;
    std::uint64_t prev_events;   // events_processed_ before the dispatch
    std::uint64_t prev_clamped;
    std::size_t trace_len;       // tracer record count before the dispatch
    std::uint64_t trace_dropped;
    std::uint32_t child_begin, child_end;  // range in children
    std::uint32_t save_begin, save_end;    // range in saves
  };

  struct SpecJournal {
    std::vector<SpecEntry> entries;
    std::vector<std::uint64_t> children;  // seqs pushed during spec dispatches
    std::vector<SpecSave> saves;
    std::vector<std::byte> blob;          // saved old bytes, densely packed
  };

  /// Record the old bytes of a model-state slot about to be overwritten
  /// inside a speculative dispatch (spec_store's slow path).
  void spec_save(void* addr, std::size_t size) {
    const std::uint32_t off = static_cast<std::uint32_t>(spec_.blob.size());
    const std::byte* src = static_cast<const std::byte*>(addr);
    spec_.blob.insert(spec_.blob.end(), src, src + size);
    spec_.saves.push_back(
        SpecSave{addr, static_cast<std::uint32_t>(size), off});
  }

  /// Drain loop of the speculative sync mode: events with t < `safe`
  /// dispatch normally (they are conservatively proven final); replayable
  /// events with safe <= t < `horizon` dispatch speculatively (journaled);
  /// a non-replayable event beyond `safe` is a fence — the loop stops
  /// before it. Returns true when it stopped at a fence.
  bool run_speculative(Time safe, Time horizon);
  template <typename Q>
  bool run_speculative_drain(Q& q, Time safe, Time horizon);
  /// Retire every journal entry with t <= `through` (their slots recycle).
  void spec_commit(Time through);
  /// Undo every journal entry with t > `keep_through`, restoring model
  /// bytes, counters, the tracer and the event queue (undone events are
  /// re-queued under their original seqs; their speculative children are
  /// purged). Returns the number of undone dispatches.
  std::uint64_t spec_rollback(Time keep_through);
  /// Remove every queued item whose seq is in `dead` (releasing callback
  /// slots); rollback's child-cancellation pass.
  void spec_purge(const std::unordered_set<std::uint64_t>& dead);
  /// Latest uncommitted speculative dispatch time (0 when the journal is
  /// empty). The coordinator's rollback test reads this between barriers.
  /// Note there is deliberately no "front" accessor: the journal does NOT
  /// bound the coordinator's validation floors (speculation.cpp header).
  Time spec_back_time() const {
    return spec_.entries.empty() ? 0 : spec_.entries.back().item.t;
  }

  // 512 slots * sizeof(FnSlot)==128 keeps every slab at 64 KiB, safely
  // below glibc's 128 KiB mmap threshold (an over-threshold slab would be
  // served by mmap/munmap plus fresh page faults on every allocation).
  static constexpr std::size_t kMaxSlabSlots = 512;
  // Upper bound on slots parked in the thread-local slab cache (~1 MiB).
  static constexpr std::size_t kMaxCachedSlots = 8192;

  QueueKind queue_kind_ = QueueKind::kHeap;
  EventHeap heap_;
  CalendarQueue cal_;  // ~100 idle bytes when the heap backend is active
  std::size_t pending_ = 0;
  std::size_t peak_pending_ = 0;
  std::vector<Slab> slots_;
  std::size_t slab_slots_ = 64;  // next fresh-slab size; doubles to the cap
  FnSlot* free_slots_ = nullptr;
  std::unordered_map<std::uint64_t, std::coroutine_handle<>> roots_;
  Time now_ = 0;
  /// Virtual time of the latest event dispatched by run()/run_until().
  /// Conservative-window execution parks now_ at window edges between
  /// rounds; the shard coordinator reads this to report (and restore) the
  /// true final time, which matches the single-engine run bit-for-bit.
  Time last_event_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_root_id_ = 1;
  std::uint64_t events_processed_ = 0;
  std::uint64_t clamped_events_ = 0;
  SpecJournal spec_;
  bool spec_active_ = false;
  std::uint64_t spec_journaled_total_ = 0;
  trace::Tracer* tracer_ = nullptr;
  ShardedEngine* coordinator_ = nullptr;
  std::uint32_t shard_index_ = 0;
};

}  // namespace cord::sim
