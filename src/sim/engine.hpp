// Discrete-event engine: a single-threaded virtual clock plus an event
// queue of coroutine resumptions and callbacks. Deterministic: ties in
// timestamp break by insertion sequence number.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/task.hpp"
#include "sim/units.hpp"

namespace cord::sim {

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  Time now() const { return now_; }

  /// Resume `h` at absolute time `t` (must be >= now()).
  void schedule_at(Time t, std::coroutine_handle<> h);
  /// Resume `h` after `delay`.
  void schedule_in(Time delay, std::coroutine_handle<> h) {
    schedule_at(now_ + delay, h);
  }
  /// Run `fn` at absolute time `t` (used for device callbacks, interrupts).
  void call_at(Time t, std::function<void()> fn);
  void call_in(Time delay, std::function<void()> fn) { call_at(now_ + delay, std::move(fn)); }

  /// Detach a root task: it starts at the current time and owns itself.
  template <typename T>
  void spawn(Task<T> task) {
    auto h = task.release();
    auto& p = h.promise();
    p.owner_engine = this;
    p.root_id = next_root_id_++;
    roots_.emplace(p.root_id, h);
    schedule_at(now_, h);
  }

  /// Run until the event queue drains. Returns the final virtual time.
  Time run();
  /// Run until the queue drains or virtual time would pass `deadline`.
  /// Events after `deadline` stay queued; now() is clamped to `deadline`.
  Time run_until(Time deadline);

  /// Number of detached roots that have not finished yet.
  std::size_t live_roots() const { return roots_.size(); }
  /// Total events processed (for the engine microbenchmarks).
  std::uint64_t events_processed() const { return events_processed_; }

  /// Awaitable: suspend the current coroutine for `d` of virtual time.
  auto delay(Time d) {
    struct Awaiter {
      Engine& engine;
      Time d;
      bool await_ready() const { return false; }
      void await_suspend(std::coroutine_handle<> h) { engine.schedule_in(d, h); }
      void await_resume() const {}
    };
    return Awaiter{*this, d};
  }

  /// Awaitable: suspend until absolute virtual time `t` (>= now()).
  auto sleep_until(Time t) {
    struct Awaiter {
      Engine& engine;
      Time t;
      bool await_ready() const { return t <= engine.now(); }
      void await_suspend(std::coroutine_handle<> h) { engine.schedule_at(t, h); }
      void await_resume() const {}
    };
    return Awaiter{*this, t};
  }

 private:
  friend void detail::notify_root_done(Engine&, std::uint64_t) noexcept;

  struct Item {
    Time t = 0;
    std::uint64_t seq = 0;
    std::coroutine_handle<> handle;      // exactly one of handle/fn is set
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  void dispatch(Item& item);

  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  std::unordered_map<std::uint64_t, std::coroutine_handle<>> roots_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_root_id_ = 1;
  std::uint64_t events_processed_ = 0;
};

}  // namespace cord::sim
