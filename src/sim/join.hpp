// Joinable: run a task concurrently and join it later, propagating any
// exception to the joiner. The structured-concurrency companion to
// Engine::spawn (which detaches).
#pragma once

#include <exception>
#include <utility>

#include "sim/engine.hpp"
#include "sim/event.hpp"
#include "sim/task.hpp"

namespace cord::sim {

class Joinable {
 public:
  Joinable(Engine& engine, Task<> task) : done_(engine) {
    engine.spawn(wrap(std::move(task)));
  }
  Joinable(const Joinable&) = delete;
  Joinable& operator=(const Joinable&) = delete;

  bool finished() const { return done_.triggered(); }

  /// Wait for the task to finish; rethrows its exception, if any.
  Task<> join() {
    co_await done_.wait();
    if (error_) std::rethrow_exception(error_);
  }

 private:
  Task<> wrap(Task<> task) {
    try {
      co_await std::move(task);
    } catch (...) {
      error_ = std::current_exception();
    }
    done_.trigger();
  }

  Latch done_;
  std::exception_ptr error_;
};

}  // namespace cord::sim
