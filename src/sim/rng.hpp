// Deterministic pseudo-random numbers for the simulator (xoshiro256++).
// Every simulated component gets its own stream so adding a component
// never perturbs another component's draws.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace cord::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    return bound == 0 ? 0 : next_u64() % bound;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Normal(mean, stddev) via Box–Muller.
  double normal(double mean, double stddev) {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 < 1e-300) u1 = 1e-300;
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Exponential with the given mean.
  double exponential(double mean) {
    double u = next_double();
    if (u < 1e-300) u = 1e-300;
    return -mean * std::log(u);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace cord::sim
