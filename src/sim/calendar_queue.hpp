// Calendar-queue event backend: O(1) amortized push/pop under the
// mostly-FIFO timestamp distributions the NIC model produces, with pop
// order bit-identical to the 4-ary heap's `(t, seq)` strict total order.
//
// Design (Brown's calendar queue, adapted to integer picosecond time and
// an exact total order — DESIGN.md §14):
//  * An array of N buckets, each `2^shift_` picoseconds wide, covers the
//    window up to base_ + N * width. An item's bucket is
//    `max(0, t - base_) >> shift_` — no modulo, no year ambiguity: bucket
//    0 covers (-inf, base_ + width) and bucket k > 0 covers one disjoint
//    later window, so "pop the head of the first non-empty bucket at
//    index >= cur_" IS the global `(t, seq)` minimum. Ties share a
//    timestamp, hence a bucket, and sort by seq there. Letting bucket 0
//    absorb below-base timestamps is what makes rebasing past the pop
//    watermark safe (see the rebuild bullet).
//  * Items past the window go to the overflow band: a binary min-heap on
//    `(t, seq)`. The band is only consulted when the calendar is empty,
//    which is exact because every band item's timestamp is >= the window
//    limit > every calendar item's.
//  * Rebuilds (resize()) recalibrate everything at once: gather all
//    items, rebase base_ onto the global minimum's timestamp, recompute
//    the bucket width from the earliest kSampleItems (3x their mean gap,
//    rounded up to a power of two so the bucket index stays a shift,
//    never a division), pick a bucket count ~ bit_ceil(size), and
//    redistribute. Rebasing onto the minimum (not the watermark) is what
//    keeps an idle-gap jump cheap, and is exact because bucket 0 absorbs
//    any later push below the new base. After a rebuild the minimum item
//    sits in bucket 0, so the calendar is never left empty while items
//    queue in the band.
//  * Rebuild triggers, all with hysteresis so a steady depth never
//    thrashes (each is amortized O(1) per event):
//      - grow: push sees cal_count_ > 2N;
//      - shrink: pop sees size_ < N/8 (and N > kMinBuckets; buckets are
//        two 32-bit indices, so holding slack is cheaper than rebuilds);
//      - band domination: push lands in the overflow band while the band
//        is > 4N items AND has doubled since the last rebuild (a fill
//        that ran ahead of a stale window re-calibrates instead of
//        degenerating into a plain binary heap);
//      - idle-gap jump: pop finds the calendar empty with items banked in
//        the band (sparse far-future events — conservative-window idle
//        shards — cost one rebuild, not a crawl across empty days).
//
// Equivalence argument (why pop order matches the heap bit-for-bit):
// buckets partition (-inf, limit) into disjoint, increasing time ranges;
// every queued item with t < limit is in its range's bucket, sorted by
// (t, seq); every item with t >= limit is in the overflow heap, whose
// minimum is only consulted when the calendar is empty — and calendar
// items are all < limit <= any overflow item. The cursor only skips
// buckets proven empty, and a push into an earlier bucket rewinds it.
// Hence pop always returns the global (t, seq) minimum, and since that
// order is strict (seq is unique), the pop sequence is independent of the
// container — identical to the heap's.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <type_traits>
#include <vector>

#include "sim/units.hpp"

namespace cord::sim {

/// Event-queue backend selector: the runtime `queue=heap|calendar` knob
/// (plumbed through core::SystemConfig::event_queue and
/// perftest::Params::queue). Both backends produce the exact same
/// `(t, seq)` pop order; they differ only in wall-clock cost per event.
enum class QueueKind : std::uint8_t { kHeap, kCalendar };

/// Parse "heap" / "calendar" (throws std::invalid_argument otherwise).
QueueKind parse_queue_kind(std::string_view name);
std::string_view queue_kind_name(QueueKind kind);

/// One queued event: 24-byte POD moved by value through either backend.
/// The payload is the engine's tagged pointer (coroutine frame or FnSlot).
struct QueueItem {
  Time t;
  std::uint64_t seq;
  std::uintptr_t payload;

  bool before(const QueueItem& o) const {
    return t != o.t ? t < o.t : seq < o.seq;
  }
};
static_assert(std::is_trivially_copyable_v<QueueItem>);

class CalendarQueue {
 public:
  CalendarQueue() : buckets_(kMinBuckets) {}

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Calendar resizes performed (each one recalibrates the bucket width).
  std::uint64_t resizes() const { return resizes_; }
  /// Pushes that landed in the far-future overflow band.
  std::uint64_t overflow_pushes() const { return overflow_pushes_; }

  // Hot path; force-inlined for the same reason as the heap's (see
  // engine.hpp: GCC otherwise outlines the whole operation and every
  // scheduling site pays a call with a by-value item).
  [[gnu::always_inline]] void push(QueueItem item) {
    ++size_;
    const std::int64_t off = item.t - base_;
    const std::uint64_t idx =
        off <= 0 ? 0 : static_cast<std::uint64_t>(off) >> shift_;
    if (idx >= buckets_.size()) [[unlikely]] {
      ++overflow_pushes_;
      overflow_push(item);
      // Band domination: the window is stale (a fill ran ahead of the
      // occupancy trigger). Recalibrate — but only once the band doubles
      // past its post-rebuild size, because a genuinely bimodal schedule
      // (imminent cluster + far-future cluster) keeps a large band no
      // matter the window, and rebuilding per push would be O(n) each.
      if (overflow_.size() > 4 * buckets_.size() &&
          overflow_.size() >= 2 * overflow_floor_) [[unlikely]] {
        resize(target_buckets());
      }
      return;
    }
    bucket_insert(buckets_[idx], item);
    ++cal_count_;
    // A push behind the cursor (below the cursor's window, or below base_
    // itself after a rebase) rewinds it; the forward scan in pop/top
    // stays correct.
    if (idx < cur_) cur_ = idx;
    if (cal_count_ > 2 * buckets_.size()) [[unlikely]] {
      resize(target_buckets());
    }
  }

  /// The global (t, seq) minimum (requires !empty()). Advances the bucket
  /// cursor past empty buckets — but never rebases the window, so it is
  /// always safe to call between pops (a later push may still legally
  /// carry any timestamp).
  [[gnu::always_inline]] const QueueItem& top() {
    if (cal_count_ == 0) [[unlikely]] return overflow_.front();
    std::size_t i = cur_;
    while (buckets_[i].head == kNil) ++i;
    cur_ = i;
    return arena_[buckets_[i].head].item;
  }

  /// Pop the global (t, seq) minimum (requires !empty()).
  [[gnu::always_inline]] QueueItem pop() {
    if (cal_count_ == 0) [[unlikely]] jump_to_overflow();
    std::size_t i = cur_;
    while (buckets_[i].head == kNil) ++i;
    cur_ = i;
    Bucket& b = buckets_[i];
    const std::uint32_t n = b.head;
    const QueueItem out = arena_[n].item;
    b.head = arena_[n].next;
    if (b.head == kNil) b.tail = kNil;
    arena_[n].next = free_;
    free_ = n;
    --cal_count_;
    --size_;
    watermark_ = out.t;
    if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 8)
        [[unlikely]] {
      resize(target_buckets());
    }
    return out;
  }

  /// Timestamp of the minimum without touching any state (requires
  /// !empty()). For cold peeks from const contexts (window-edge
  /// coordination); the hot loops use top().
  Time min_time() const {
    if (cal_count_ == 0) return overflow_.front().t;
    for (std::size_t i = cur_;; ++i) {
      if (buckets_[i].head != kNil) return arena_[buckets_[i].head].item.t;
    }
  }

  /// Visit every queued item (teardown walk for parked callbacks).
  template <typename F>
  void for_each(F&& f) const {
    for (const Bucket& b : buckets_) {
      for (std::uint32_t n = b.head; n != kNil; n = arena_[n].next) {
        f(arena_[n].item);
      }
    }
    for (const QueueItem& item : overflow_) f(item);
  }

 private:
  /// Calendar items live in one contiguous node arena threaded into
  /// per-bucket singly linked lists (sorted ascending by (t, seq), with a
  /// tail pointer so the dominant near-monotone push is an O(1) append).
  /// One arena instead of a vector per bucket means zero allocation in
  /// steady state: pops feed a free list, rebuilds re-thread in place,
  /// and the arena's capacity survives both.
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  struct Node {
    QueueItem item;
    std::uint32_t next = kNil;
  };
  struct Bucket {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  static constexpr std::size_t kMinBuckets = 32;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
  /// Snapshot size for bucket-width recalibration.
  static constexpr std::size_t kSampleItems = 32;

  /// Bucket count a rebuild aims for: ~1 item per bucket (Brown's
  /// heuristic), bounded so a burst cannot allocate without limit.
  std::size_t target_buckets() const {
    return std::clamp(std::bit_ceil(size_ | 1), kMinBuckets, kMaxBuckets);
  }

  [[gnu::always_inline]] std::uint32_t alloc_node(QueueItem item) {
    std::uint32_t n = free_;
    if (n != kNil) {
      free_ = arena_[n].next;
    } else {
      n = static_cast<std::uint32_t>(arena_.size());
      arena_.emplace_back();
    }
    arena_[n].item = item;
    return n;
  }

  void bucket_insert(Bucket& b, QueueItem item) {
    const std::uint32_t n = alloc_node(item);
    if (b.head == kNil) {
      arena_[n].next = kNil;
      b.head = b.tail = n;
      return;
    }
    // FIFO fast path: most NIC timestamps arrive in near-monotone order,
    // so the new item usually sorts last in its bucket.
    if (!item.before(arena_[b.tail].item)) {
      arena_[n].next = kNil;
      arena_[b.tail].next = n;
      b.tail = n;
      return;
    }
    insert_sorted(b, n);
  }

  // Cold paths (calendar_queue.cpp).
  void insert_sorted(Bucket& b, std::uint32_t n);
  void overflow_push(QueueItem item);
  /// The calendar drained with items banked in the band: rebuild, which
  /// rebases onto the band minimum and migrates everything that fits.
  void jump_to_overflow();
  /// Rebuild with `new_buckets` buckets, a freshly calibrated width, and
  /// base_ rebased onto the minimum queued timestamp.
  void resize(std::size_t new_buckets);

  std::vector<Bucket> buckets_;
  std::vector<Node> arena_;          // calendar items; see Node
  std::uint32_t free_ = kNil;        // free-list head in the arena
  std::vector<QueueItem> overflow_;  // binary min-heap on (t, seq)
  Time base_ = 0;                    // bucket 0 covers (-inf, base_ + width)
  Time watermark_ = 0;               // last popped timestamp (pop floor)
  std::uint32_t shift_ = 10;         // log2 bucket width (1024 ps ~ 1 ns)
  std::size_t cur_ = 0;              // no calendar item sits below this
  std::size_t cal_count_ = 0;        // items in buckets (size_ - overflow)
  std::size_t size_ = 0;
  std::size_t overflow_floor_ = 0;   // band size right after last rebuild
  std::uint64_t resizes_ = 0;
  std::uint64_t overflow_pushes_ = 0;
};

}  // namespace cord::sim
