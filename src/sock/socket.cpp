#include "sock/socket.hpp"

#include <algorithm>

namespace cord::sock {

std::pair<Socket*, Socket*> SocketStack::connect(SocketStack& a, SocketStack& b) {
  // Capture each pointer as it is created: when `a` and `b` are the same
  // stack (two ranks on one host), back() after both pushes would alias.
  auto sock_a = std::make_unique<Socket>(a.engine());
  auto sock_b = std::make_unique<Socket>(b.engine());
  Socket* sa = sock_a.get();
  Socket* sb = sock_b.get();
  a.sockets_.push_back(std::move(sock_a));
  b.sockets_.push_back(std::move(sock_b));
  sa->local_stack_ = &a;
  sb->local_stack_ = &b;
  sa->peer_ = sb;
  sb->peer_ = sa;
  return {sa, sb};
}

sim::Task<int> Socket::send(os::Core& core, std::span<const std::byte> data) {
  SocketStack& stack = *local_stack_;
  const SocketConfig& cfg = stack.cfg_;
  sim::Engine& engine = stack.engine();
  SocketStack& peer_stack = *peer_->local_stack_;

  // send() syscall entry + user->kernel copy of the whole payload.
  co_await core.work(core.syscall_cost() + core.memcpy_time(data.size()),
                     os::Work::kKernel);

  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t seg = std::min<std::size_t>(cfg.mss, data.size() - offset);
    // Socket-buffer backpressure.
    while (inflight_ + seg > cfg.sndbuf) co_await window_signal_.wait();
    inflight_ += seg;

    // Kernel TX path: the shared occupancy is the per-segment stack cost
    // divided across the service cores plus the data touch; the full
    // stack latency is pipeline depth added after the reservation.
    const sim::Time tx_busy = cfg.stack_tx / cfg.service_cores +
                              cfg.kernel_touch.time_for(seg);
    const sim::Time tx_done = stack.tx_path_.reserve(tx_busy) + cfg.stack_tx;
    stack.segments_tx_++;
    stack.bytes_tx_ += seg;

    // Wire occupancy on the shared fabric (every hop of the routed path —
    // the socket stack runs single-engine, so reserving the destination
    // side from here is safe), then receive-side kernel path.
    fabric::Path path = stack.network_->path(stack.host_->node(),
                                             peer_stack.host_->node());
    const sim::Time wire_done =
        path.reserve_all(tx_done + cfg.nic_overhead, seg + 78);  // IPoIB hdrs
    const sim::Time rx_busy = cfg.stack_rx / cfg.service_cores +
                              cfg.kernel_touch.time_for(seg);
    const sim::Time rx_done =
        peer_stack.rx_path_.reserve_at(wire_done, rx_busy) + cfg.stack_rx;

    // Deliver the bytes into the peer's receive queue at rx_done.
    std::vector<std::byte> payload(data.begin() + offset,
                                   data.begin() + offset + seg);
    engine.call_at(rx_done, [this, payload = std::move(payload)]() mutable {
      Socket* p = peer_;
      for (std::byte b : payload) p->rx_.push_back(b);
      // The window opens when the receiver *consumes* (TCP rwnd
      // semantics), not when bytes arrive — see Socket::recv.
      p->rx_signal_.trigger();
      if (p->on_data_) p->on_data_();
    });
    offset += seg;
  }
  co_return 0;
}

sim::Task<std::size_t> Socket::recv(os::Core& core, std::span<std::byte> out) {
  SocketStack& stack = *local_stack_;
  const SocketConfig& cfg = stack.cfg_;
  // recv()/epoll syscall entry.
  co_await core.work(core.syscall_cost(), os::Work::kKernel);
  if (rx_.empty()) {
    // Sleep until data arrives; pay the interrupt + wakeup on arrival.
    co_await rx_signal_.wait();
    co_await core.work(core.model().interrupt_handling +
                           core.model().wakeup_latency,
                       os::Work::kKernel);
  }
  const std::size_t n = std::min(out.size(), rx_.size());
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = rx_.front();
    rx_.pop_front();
  }
  // Consuming opens the peer's send window (TCP flow control).
  peer_->inflight_ -= std::min<std::uint64_t>(peer_->inflight_, n);
  peer_->window_signal_.trigger();
  // kernel->user copy of the harvested bytes.
  co_await core.work(core.memcpy_time(n), os::Work::kKernel);
  co_return n;
}

sim::Task<> Socket::recv_exact(os::Core& core, std::span<std::byte> out) {
  std::size_t got = 0;
  while (got < out.size()) {
    got += co_await recv(core, out.subspan(got));
  }
}

}  // namespace cord::sock
