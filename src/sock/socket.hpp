// Stream sockets over the simulated fabric — the IPoIB baseline.
//
// IPoIB offers the full socket API over the InfiniBand NIC: the kernel
// network stack is on the data path (copies, per-segment processing,
// softirq demux, interrupt-driven receive). The paper uses it as the
// "functionally equivalent competitor to CoRD": full OS control, socket
// semantics, same NIC — but with all the costs CoRD avoids.
//
// Cost model per message:
//   sender:   send() syscall + user->kernel copy + per-segment stack cost,
//             serialized through the host's kernel TX path (softirq core),
//             then wire occupancy on the same fabric RDMA uses;
//   receiver: per-segment softirq processing serialized through the RX
//             path + kernel->user copy + (when sleeping) IRQ + wakeup.
//
// The per-host TX/RX kernel paths are FIFO resources: they cap aggregate
// IPoIB throughput per node (a saturated softirq core), which is what
// makes data-intensive NPB runs up to ~2x slower on IPoIB (Fig. 6).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>

#include "os/kernel.hpp"
#include "sim/event.hpp"
#include "sim/resource.hpp"

namespace cord::sock {

struct SocketConfig {
  /// IPoIB connected-mode MTU (payload per segment).
  std::uint32_t mss = 65480;
  /// Kernel stack latency per segment on the transmit side (qdisc, IPoIB
  /// encapsulation, TX completion handling). Latency, not occupancy: the
  /// shared path only holds stack_tx / service_cores per segment.
  sim::Time stack_tx = sim::us(2) + sim::ns(500);
  /// Kernel stack latency per segment on the receive side (softirq, demux).
  sim::Time stack_rx = sim::us(3);
  /// Multiqueue IPoIB spreads per-segment stack work across this many
  /// service cores: the pipeline latency stays per-segment, the shared
  /// occupancy divides.
  int service_cores = 16;
  /// Data touching in the kernel path (copy + checksum; IPoIB has no
  /// checksum offload) — this is what caps per-node aggregate throughput.
  /// Modern multiqueue IPoIB spreads softirq work over several service
  /// cores; ~24 GB/s of shared data touching puts the per-node ceiling at
  /// ~150 Gbit/s for MTU-sized segments while small segments stay
  /// per-segment-cost bound (the "message intensive" penalty of Fig. 6).
  sim::Bandwidth kernel_touch = sim::Bandwidth::gbyte_per_sec(12.0);
  /// Socket buffer: sender blocks when this many bytes are in flight.
  std::uint32_t sndbuf = 1 << 20;
  /// Extra latency of the IPoIB UD/CM path through the NIC per segment.
  sim::Time nic_overhead = sim::ns(700);
};

class SocketStack;

/// One endpoint of an established connection.
class Socket {
 public:
  Socket(sim::Engine& engine) : rx_signal_(engine), window_signal_(engine) {}

  /// Send the whole span; blocks (virtual time) on socket-buffer
  /// backpressure. Returns 0 or a negative errno.
  sim::Task<int> send(os::Core& core, std::span<const std::byte> data);

  /// Receive up to out.size() bytes; blocks until at least one byte is
  /// available. Returns the byte count.
  sim::Task<std::size_t> recv(os::Core& core, std::span<std::byte> out);

  /// Receive exactly out.size() bytes (loops over recv).
  sim::Task<> recv_exact(os::Core& core, std::span<std::byte> out);

  std::size_t available() const { return rx_.size(); }

  /// Epoll-style readiness callback: invoked whenever bytes are delivered
  /// into this socket's receive queue.
  void set_data_listener(std::function<void()> fn) { on_data_ = std::move(fn); }

 private:
  friend class SocketStack;

  std::function<void()> on_data_;

  SocketStack* local_stack_ = nullptr;
  Socket* peer_ = nullptr;

  std::deque<std::byte> rx_;        // received, not yet consumed
  sim::Signal rx_signal_;
  std::uint64_t inflight_ = 0;      // bytes sent but not yet delivered
  sim::Signal window_signal_;
};

/// Per-host socket machinery: owns the kernel TX/RX path resources.
class SocketStack {
 public:
  SocketStack(os::Host& host, fabric::Network& network, SocketConfig cfg = {})
      : host_(&host),
        network_(&network),
        cfg_(cfg),
        tx_path_(host.engine()),
        rx_path_(host.engine()) {}

  os::Host& host() { return *host_; }
  const SocketConfig& config() const { return cfg_; }

  /// Create a connected socket pair between two stacks (the
  /// listen/connect/accept dance collapsed — connection setup is not on
  /// the critical path of any experiment).
  static std::pair<Socket*, Socket*> connect(SocketStack& a, SocketStack& b);

  std::uint64_t segments_tx() const { return segments_tx_; }
  std::uint64_t bytes_tx() const { return bytes_tx_; }

 private:
  friend class Socket;

  sim::Engine& engine() { return host_->engine(); }

  std::vector<std::unique_ptr<Socket>> sockets_;
  os::Host* host_;
  fabric::Network* network_;
  SocketConfig cfg_;
  sim::Resource tx_path_;  // kernel transmit path (softirq core)
  sim::Resource rx_path_;  // kernel receive path
  std::uint64_t segments_tx_ = 0;
  std::uint64_t bytes_tx_ = 0;
};

}  // namespace cord::sock
