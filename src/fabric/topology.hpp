// Rack-style topology preset for fabric::Network: `racks` top-of-rack
// switches with `hosts_per_rack` hosts each, every ToR uplinked to one
// spine switch (a single rack needs no spine). Host ids are
// [0, host_count()); switch ids follow — ToR of rack r is
// host_count() + r, the spine comes last.
//
//     host0 host1   host2 host3          tiers:  host = 0
//        \   /         \   /                     ToR  = 1
//        ToR0          ToR1                      spine = 2
//           \          /
//            \        /
//              spine
//
// Sharding contract: both directions of every host<->ToR and ToR<->spine
// link bind to the lower-tier endpoint's engine, so a host's rack (host +
// its ToR) forms one engine domain. Placements must therefore be
// rack-aligned when shards > 1 (all hosts of a rack on one shard) —
// Network::compute_routes rejects anything else.
#pragma once

#include <cstddef>

#include "fabric/link.hpp"

namespace cord::fabric {

struct RackConfig {
  std::size_t racks = 2;
  std::size_t hosts_per_rack = 2;
  /// Host <-> ToR access links.
  sim::Bandwidth host_bandwidth = sim::Bandwidth::gbit_per_sec(100.0);
  sim::Time host_propagation = sim::ns(150);
  /// ToR <-> spine uplinks (typically fatter than access links).
  sim::Bandwidth uplink_bandwidth = sim::Bandwidth::gbit_per_sec(400.0);
  sim::Time uplink_propagation = sim::ns(350);
  /// Per-switch forwarding latency, charged on every hop leaving the
  /// switch (cut-through ASIC pipeline; folded into hop propagation).
  sim::Time tor_latency = sim::ns(300);
  sim::Time spine_latency = sim::ns(450);

  std::size_t host_count() const { return racks * hosts_per_rack; }
  std::size_t switch_count() const { return racks + (racks > 1 ? 1 : 0); }
  std::size_t node_count() const { return host_count() + switch_count(); }
  std::size_t rack_of(NodeId host) const { return host / hosts_per_rack; }
  NodeId tor_id(std::size_t rack) const {
    return static_cast<NodeId>(host_count() + rack);
  }
  NodeId spine_id() const { return static_cast<NodeId>(host_count() + racks); }
};

/// Wire `cfg` into `net` and compute the static routes. The hosts
/// [0, cfg.host_count()) must already be registered with add_node (the
/// builder adds only switches and links). Throws std::invalid_argument for
/// degenerate shapes (zero racks/hosts) and propagates compute_routes'
/// placement validation errors.
void build_rack(Network& net, const RackConfig& cfg);

}  // namespace cord::fabric
