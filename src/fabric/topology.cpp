#include "fabric/topology.hpp"

#include <algorithm>
#include <deque>
#include <string>

namespace cord::fabric {

void build_rack(Network& net, const RackConfig& cfg) {
  if (cfg.racks == 0 || cfg.hosts_per_rack == 0) {
    throw std::invalid_argument(
        "build_rack: racks and hosts_per_rack must be >= 1");
  }
  for (std::size_t r = 0; r < cfg.racks; ++r) {
    net.add_switch(cfg.tor_id(r), /*tier=*/1, cfg.tor_latency);
  }
  if (cfg.racks > 1) {
    net.add_switch(cfg.spine_id(), /*tier=*/2, cfg.spine_latency);
  }
  for (std::size_t r = 0; r < cfg.racks; ++r) {
    for (std::size_t h = 0; h < cfg.hosts_per_rack; ++h) {
      net.connect(static_cast<NodeId>(r * cfg.hosts_per_rack + h),
                  cfg.tor_id(r), cfg.host_bandwidth, cfg.host_propagation);
    }
    if (cfg.racks > 1) {
      net.connect(cfg.tor_id(r), cfg.spine_id(), cfg.uplink_bandwidth,
                  cfg.uplink_propagation);
    }
  }
  net.compute_routes();
}

void Network::compute_routes() {
  routes_.clear();
  // Deterministic adjacency: neighbors in ascending node-id order, so BFS
  // tie-breaking (and thus every route) is a pure function of the wiring.
  std::map<NodeId, std::vector<std::pair<NodeId, Link*>>> adj;
  for (auto& [key, link] : links_) {
    adj[link->a()].emplace_back(link->b(), link.get());
    adj[link->b()].emplace_back(link->a(), link.get());
  }
  for (auto& [n, neigh] : adj) {
    std::sort(neigh.begin(), neigh.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
  }

  for (const auto& [src, lb] : loopback_) {
    // BFS by hop count from `src`; first visit wins, so among equal-length
    // routes the lexicographically-smallest (by node id) is chosen.
    std::map<NodeId, std::pair<NodeId, Link*>> parent;  // node -> (prev, link)
    std::deque<NodeId> frontier{src};
    parent[src] = {src, nullptr};
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      auto it = adj.find(u);
      if (it == adj.end()) continue;
      for (const auto& [v, link] : it->second) {
        if (parent.contains(v)) continue;
        parent[v] = {u, link};
        frontier.push_back(v);
      }
    }

    for (const auto& [dst, lb2] : loopback_) {
      if (dst == src || !parent.contains(dst)) continue;
      // Reconstruct dst -> src, then reverse into forward hop order.
      std::vector<NodeId> nodes{dst};
      while (nodes.back() != src) nodes.push_back(parent[nodes.back()].first);
      std::reverse(nodes.begin(), nodes.end());
      const std::size_t hops = nodes.size() - 1;
      if (hops > Path::kMaxHops) {
        throw std::invalid_argument(
            "Network::compute_routes: route from " + std::to_string(src) +
            " to " + std::to_string(dst) + " needs " + std::to_string(hops) +
            " hops, more than Path::kMaxHops (" +
            std::to_string(Path::kMaxHops) +
            ") — topology deeper than host->ToR->spine->ToR->host is not "
            "modeled");
      }

      RouteEntry entry;
      entry.nodes = nodes;
      entry.path.hop_count = static_cast<std::uint8_t>(hops);
      // Sharding split: the first src_hops hops are reserved by the
      // sender, the rest by the receiver, and only a timestamped arrival
      // crosses the boundary. The split point must be a pure function of
      // the route's *shape*, never of shard placement — otherwise fused
      // (1-shard) and sharded runs would reserve different segments, date
      // UD completions at different points, and hand control packets to
      // the non-contending suffix lane at different hops, breaking the
      // bit-identity guarantee. The tier structure gives exactly that: a
      // hop leaving its lower-or-equal-tier upstream endpoint (climbing)
      // is driven by that endpoint and belongs to the source side; a hop
      // dropping down a tier is driven by its downstream endpoint and
      // belongs to the destination side. Leaf-spine routes climb then
      // descend, so the result is always a prefix/suffix split.
      sim::Engine* const se = &engine_of_(src);
      sim::Engine* const de = &engine_of_(dst);
      std::size_t prefix = 0;
      bool descending = false;
      for (std::size_t i = 0; i < hops; ++i) {
        const NodeId u = nodes[i];
        const NodeId v = nodes[i + 1];
        Link* link = parent[v].second;
        entry.path.hops[i] =
            Hop{link->tx_from(u), link->bandwidth(),
                link->propagation() + forward_latency_of(u)};
        const bool climbs = tier_of(u) <= tier_of(v);
        if (climbs && descending) {
          throw std::invalid_argument(
              "Network::compute_routes: the route from " +
              std::to_string(src) + " to " + std::to_string(dst) +
              " climbs tiers again after descending (hop " +
              std::to_string(u) + " -> " + std::to_string(v) +
              ") — only climb-then-descend shapes split into a sender "
              "prefix and a receiver suffix");
        }
        if (!climbs) descending = true;
        if (!descending) ++prefix;
        // Placement validation: the topological prefix must be driven by
        // the source's engine and the suffix by the destination's, or a
        // middle hop's resource would be touched from two shard threads.
        sim::Engine* const he = link->engine_from(u);
        if (he != (descending ? de : se)) {
          throw std::invalid_argument(
              "Network::compute_routes: hop " + std::to_string(u) + " -> " +
              std::to_string(v) + " of the route from " +
              std::to_string(src) + " to " + std::to_string(dst) +
              " is not driven by the " +
              (descending ? "destination" : "source") +
              "'s engine — the placement splits a rack across shards; "
              "sharded rack topologies need rack-aligned placements");
        }
      }
      entry.path.src_hops = static_cast<std::uint8_t>(prefix);
      routes_.emplace(std::pair{src, dst}, std::move(entry));
    }
  }
  routes_ready_ = true;
}

std::vector<NodeId> Network::route(NodeId src, NodeId dst) {
  if (src == dst) return {src};
  if (links_.contains(ordered(src, dst)) && switches_.empty()) {
    return {src, dst};
  }
  ensure_routes();
  auto it = routes_.find({src, dst});
  if (it == routes_.end()) {
    if (links_.contains(ordered(src, dst))) return {src, dst};
    throw std::invalid_argument("no route between nodes " +
                                std::to_string(src) + " and " +
                                std::to_string(dst));
  }
  return it->second.nodes;
}

sim::Time Network::min_cross_lookahead(
    const std::function<std::size_t(NodeId)>& shard_of) {
  sim::Time la = sim::Engine::kNoEvent;
  for (const auto& [src, lb_s] : loopback_) {
    for (const auto& [dst, lb_d] : loopback_) {
      if (src == dst || shard_of(src) == shard_of(dst)) continue;
      if (!has_path(src, dst)) continue;
      la = std::min(la, path(src, dst).src_propagation());
    }
  }
  return la;
}

std::vector<sim::Time> Network::cross_lookahead_matrix(
    const std::function<std::size_t(NodeId)>& shard_of, std::size_t shards) {
  std::vector<sim::Time> m(shards * shards, sim::Engine::kNoEvent);
  for (const auto& [src, lb_s] : loopback_) {
    for (const auto& [dst, lb_d] : loopback_) {
      if (src == dst) continue;
      const std::size_t i = shard_of(src);
      const std::size_t j = shard_of(dst);
      if (i == j || !has_path(src, dst)) continue;
      sim::Time& cell = m[i * shards + j];
      cell = std::min(cell, path(src, dst).src_propagation());
    }
  }
  return m;
}

}  // namespace cord::fabric
