// Point-to-point fabric between NICs.
//
// A Link is full duplex: each direction is an independent FIFO Resource at
// the wire bandwidth plus a fixed propagation delay. The two evaluation
// systems in the paper are back-to-back two-node setups, so the fabric is
// a single link (plus per-NIC loopback paths used when two processes on
// the same host talk through the NIC — the paper bars shared memory).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/units.hpp"

namespace cord::fabric {

using NodeId = std::uint32_t;

/// One direction of a wire: serialization resource + propagation delay.
struct Path {
  sim::Resource* tx = nullptr;
  sim::Bandwidth bandwidth;
  sim::Time propagation = 0;
};

class Link {
 public:
  Link(sim::Engine& engine, NodeId a, NodeId b, sim::Bandwidth bw, sim::Time propagation)
      : a_(a),
        b_(b),
        a_to_b_(engine),
        b_to_a_(engine),
        bandwidth_(bw),
        propagation_(propagation) {}

  NodeId a() const { return a_; }
  NodeId b() const { return b_; }

  Path path_from(NodeId src) {
    if (src == a_) return Path{&a_to_b_, bandwidth_, propagation_};
    if (src == b_) return Path{&b_to_a_, bandwidth_, propagation_};
    throw std::invalid_argument("node not on this link");
  }

 private:
  NodeId a_;
  NodeId b_;
  sim::Resource a_to_b_;
  sim::Resource b_to_a_;
  sim::Bandwidth bandwidth_;
  sim::Time propagation_;
};

/// The set of links plus per-node loopback paths.
class Network {
 public:
  explicit Network(sim::Engine& engine) : engine_(&engine) {}

  /// Create a bidirectional link between two nodes.
  void connect(NodeId a, NodeId b, sim::Bandwidth bw, sim::Time propagation) {
    links_[ordered(a, b)] = std::make_unique<Link>(*engine_, a, b, bw, propagation);
  }

  /// Register a node and configure its loopback characteristics (traffic
  /// from a node to itself still traverses the NIC, bounded by PCIe).
  void add_node(NodeId n, sim::Bandwidth loopback_bw, sim::Time loopback_delay) {
    auto [it, inserted] = loopback_.try_emplace(n);
    if (inserted) {
      it->second.resource = std::make_unique<sim::Resource>(*engine_);
    }
    it->second.bandwidth = loopback_bw;
    it->second.delay = loopback_delay;
  }

  /// The directed path from `src` towards `dst`.
  Path path(NodeId src, NodeId dst) {
    if (src == dst) {
      auto it = loopback_.find(src);
      if (it == loopback_.end()) throw std::invalid_argument("unknown node");
      return Path{it->second.resource.get(), it->second.bandwidth, it->second.delay};
    }
    auto it = links_.find(ordered(src, dst));
    if (it == links_.end()) throw std::invalid_argument("no link between nodes");
    return it->second->path_from(src);
  }

  bool has_path(NodeId src, NodeId dst) const {
    if (src == dst) return loopback_.contains(src);
    return links_.contains(ordered(src, dst));
  }

 private:
  static std::pair<NodeId, NodeId> ordered(NodeId a, NodeId b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  }

  struct Loopback {
    std::unique_ptr<sim::Resource> resource;
    sim::Bandwidth bandwidth;
    sim::Time delay = 0;
  };

  sim::Engine* engine_;
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<Link>> links_;
  std::map<NodeId, Loopback> loopback_;
};

}  // namespace cord::fabric
