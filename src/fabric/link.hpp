// Point-to-point fabric between NICs.
//
// A Link is full duplex: each direction is an independent FIFO Resource at
// the wire bandwidth plus a fixed propagation delay. The two evaluation
// systems in the paper are back-to-back two-node setups, so the fabric is
// a single link (plus per-NIC loopback paths used when two processes on
// the same host talk through the NIC — the paper bars shared memory).
//
// Sharding: when nodes are partitioned across engines, each direction's
// serialization Resource is bound to the *source* node's engine — the
// sender reserves its own egress wire locally, and only the arrival (a
// timestamped callback >= propagation in the future) crosses the shard
// boundary. The propagation delay of every cross-shard link is therefore
// a lower bound on cross-shard latency, i.e. the conservative lookahead
// (see sim/sharded.hpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/units.hpp"

namespace cord::fabric {

using NodeId = std::uint32_t;

/// One direction of a wire: serialization resource + propagation delay.
struct Path {
  sim::Resource* tx = nullptr;
  sim::Bandwidth bandwidth;
  sim::Time propagation = 0;
};

class Link {
 public:
  /// `engine_a`/`engine_b` own node a's / node b's side: the a->b transmit
  /// resource lives on a's engine, b->a on b's. Same engine when the link
  /// does not cross shards.
  Link(sim::Engine& engine_a, sim::Engine& engine_b, NodeId a, NodeId b,
       sim::Bandwidth bw, sim::Time propagation)
      : a_(a),
        b_(b),
        a_to_b_(engine_a),
        b_to_a_(engine_b),
        bandwidth_(bw),
        propagation_(propagation) {}

  NodeId a() const { return a_; }
  NodeId b() const { return b_; }
  sim::Time propagation() const { return propagation_; }

  Path path_from(NodeId src) {
    if (src == a_) return Path{&a_to_b_, bandwidth_, propagation_};
    if (src == b_) return Path{&b_to_a_, bandwidth_, propagation_};
    throw std::invalid_argument("node not on this link");
  }

 private:
  NodeId a_;
  NodeId b_;
  sim::Resource a_to_b_;
  sim::Resource b_to_a_;
  sim::Bandwidth bandwidth_;
  sim::Time propagation_;
};

/// The set of links plus per-node loopback paths.
class Network {
 public:
  /// Maps a node to the engine that simulates it (shard placement).
  using EngineOf = std::function<sim::Engine&(NodeId)>;

  /// Single-engine fabric: every node on `engine`.
  explicit Network(sim::Engine& engine)
      : engine_of_([&engine](NodeId) -> sim::Engine& { return engine; }) {}

  /// Shard-aware fabric: each node's resources bind to its own engine.
  explicit Network(EngineOf engine_of) : engine_of_(std::move(engine_of)) {}

  /// Create a bidirectional link between two nodes.
  void connect(NodeId a, NodeId b, sim::Bandwidth bw, sim::Time propagation) {
    links_[ordered(a, b)] = std::make_unique<Link>(engine_of_(a), engine_of_(b),
                                                   a, b, bw, propagation);
  }

  /// Register a node and configure its loopback characteristics (traffic
  /// from a node to itself still traverses the NIC, bounded by PCIe).
  void add_node(NodeId n, sim::Bandwidth loopback_bw, sim::Time loopback_delay) {
    auto [it, inserted] = loopback_.try_emplace(n);
    if (inserted) {
      it->second.resource = std::make_unique<sim::Resource>(engine_of_(n));
    }
    it->second.bandwidth = loopback_bw;
    it->second.delay = loopback_delay;
  }

  /// The directed path from `src` towards `dst`.
  Path path(NodeId src, NodeId dst) {
    if (src == dst) {
      auto it = loopback_.find(src);
      if (it == loopback_.end()) throw std::invalid_argument("unknown node");
      return Path{it->second.resource.get(), it->second.bandwidth, it->second.delay};
    }
    auto it = links_.find(ordered(src, dst));
    if (it == links_.end()) throw std::invalid_argument("no link between nodes");
    return it->second->path_from(src);
  }

  bool has_path(NodeId src, NodeId dst) const {
    if (src == dst) return loopback_.contains(src);
    return links_.contains(ordered(src, dst));
  }

  /// Conservative lookahead of a partition: the minimum propagation delay
  /// among links whose endpoints `shard_of` places on different shards.
  /// Returns sim::Engine::kNoEvent when no link crosses a shard boundary
  /// (windows are then unbounded). A zero result means the partition is
  /// invalid for parallel execution; ShardedEngine::set_lookahead rejects
  /// it at setup.
  sim::Time min_cross_lookahead(
      const std::function<std::size_t(NodeId)>& shard_of) const {
    sim::Time la = sim::Engine::kNoEvent;
    for (const auto& [key, link] : links_) {
      if (shard_of(link->a()) != shard_of(link->b())) {
        la = std::min(la, link->propagation());
      }
    }
    return la;
  }

 private:
  static std::pair<NodeId, NodeId> ordered(NodeId a, NodeId b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  }

  struct Loopback {
    std::unique_ptr<sim::Resource> resource;
    sim::Bandwidth bandwidth;
    sim::Time delay = 0;
  };

  EngineOf engine_of_;
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<Link>> links_;
  std::map<NodeId, Loopback> loopback_;
};

}  // namespace cord::fabric
