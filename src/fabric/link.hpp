// Fabric between NICs: point-to-point links, rack-style switched
// topologies, and statically routed multi-hop paths.
//
// A Link is full duplex: each direction is an independent FIFO Resource at
// the wire bandwidth plus a fixed propagation delay. The paper's two
// evaluation systems are back-to-back two-node setups (a single link plus
// per-NIC loopback paths), and that direct-wire fast path is unchanged.
// Beyond it, a Network may contain switch nodes (added with add_switch,
// wired with the same connect()) and then computes static shortest-path
// routes between hosts; path() returns a multi-hop Path chain traversed
// store-and-forward at MTU-chunk granularity (see topology.hpp for the
// rack preset and topology.cpp for route computation).
//
// Sharding: every hop's serialization Resource is bound to the engine of
// the endpoint that *drives* it — for host<->switch and switch<->spine
// links both directions bind to the lower-tier (host-side) endpoint, so
// the uplink segment of a route is reserved by the sending host's shard
// and the downlink segment by the receiving host's shard. Only the
// timestamped boundary arrival crosses shards, which preserves the
// sharding invariant of sim/sharded.hpp. The src-prefix/dst-suffix split
// point (Path::src_hops) is *topological* — climbing hops are source-
// side, descending hops destination-side — so it is identical at every
// shard count; compute_routes() validates that the placement's engine
// bindings agree with that split for every routed pair and rejects
// placements that would make a middle hop race (e.g. a rack whose hosts
// straddle shards). The source-side propagation of a route is therefore a
// lower bound on cross-shard latency, i.e. the conservative lookahead of
// that shard pair (cross_lookahead_matrix).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/units.hpp"

namespace cord::fabric {

using NodeId = std::uint32_t;

/// One wire segment of a (possibly multi-hop) path: the direction's
/// serialization resource plus its effective propagation — link
/// propagation, with the forwarding latency of the switch the hop leaves
/// from folded in at route-build time.
struct Hop {
  sim::Resource* tx = nullptr;
  sim::Bandwidth bandwidth;
  sim::Time propagation = 0;
};

/// The directed path from a source host towards a destination host: up to
/// kMaxHops store-and-forward hops. The first `src_hops` hops are the
/// tier-climbing (source-side) segment, reserved by the sender; the
/// remaining tier-descending hops are reserved at arrival time (plain
/// data crosses the shard boundary, never a Resource). The split is a
/// function of the route's shape alone — NOT of shard placement — so the
/// boundary (and everything dated at it, e.g. UD completions and the
/// ctrl-lane handoff) is identical in fused and sharded execution; in a
/// sharded run compute_routes additionally validates that the prefix is
/// engine-bound to the source and the suffix to the destination. A direct
/// link or a loopback is the 1-hop special case with src_hops ==
/// hop_count == 1.
struct Path {
  static constexpr std::size_t kMaxHops = 4;  // host->ToR->spine->ToR->host
  std::array<Hop, kMaxHops> hops{};
  std::uint8_t hop_count = 0;
  std::uint8_t src_hops = 0;

  std::uint8_t dst_hops() const { return hop_count - src_hops; }

  /// Reserve the source-side segment for one chunk that is ready to enter
  /// the wire at `ready`; returns when the chunk has fully crossed the
  /// last source-side hop (== arrival at the destination node when the
  /// path has no destination-side segment).
  sim::Time reserve_src(sim::Time ready, std::uint64_t wire_bytes) const {
    sim::Time t = ready;
    for (std::size_t i = 0; i < src_hops; ++i) {
      t = hops[i].tx->reserve_at(t, hops[i].bandwidth.time_for(wire_bytes)) +
          hops[i].propagation;
    }
    return t;
  }

  /// Reserve the destination-side segment for a chunk that crossed the
  /// boundary at `at`; returns arrival at the destination node. Must run
  /// on the destination's engine (its thread owns these resources).
  sim::Time reserve_dst(sim::Time at, std::uint64_t wire_bytes) const {
    sim::Time t = at;
    for (std::size_t i = src_hops; i < hop_count; ++i) {
      t = hops[i].tx->reserve_at(t, hops[i].bandwidth.time_for(wire_bytes)) +
          hops[i].propagation;
    }
    return t;
  }

  /// Reserve every hop (single-engine callers only, e.g. the socket
  /// stack): equivalent to reserve_dst(reserve_src(...)).
  sim::Time reserve_all(sim::Time ready, std::uint64_t wire_bytes) const {
    return reserve_dst(reserve_src(ready, wire_bytes), wire_bytes);
  }

  /// Serialization + propagation of the destination-side segment without
  /// reserving it — used for control packets (ACK/NAK), which ride a
  /// priority lane and do not contend on downlinks.
  sim::Time dst_latency(std::uint64_t wire_bytes) const {
    sim::Time t = 0;
    for (std::size_t i = src_hops; i < hop_count; ++i) {
      t += hops[i].bandwidth.time_for(wire_bytes) + hops[i].propagation;
    }
    return t;
  }

  /// Total propagation of the source-side segment: the hard lower bound on
  /// how soon a message on this path can cross the shard boundary — the
  /// conservative lookahead contribution of this route.
  sim::Time src_propagation() const {
    sim::Time t = 0;
    for (std::size_t i = 0; i < src_hops; ++i) t += hops[i].propagation;
    return t;
  }

  /// Total propagation over all hops.
  sim::Time propagation() const {
    sim::Time t = 0;
    for (std::size_t i = 0; i < hop_count; ++i) t += hops[i].propagation;
    return t;
  }
};

class Link {
 public:
  /// `engine_ab`/`engine_ba` own the a->b / b->a transmit resources. The
  /// binding is decided by Network::connect (lower-tier endpoint drives
  /// both directions of a tiered link; per-source for equal tiers).
  Link(sim::Engine& engine_ab, sim::Engine& engine_ba, NodeId a, NodeId b,
       sim::Bandwidth bw, sim::Time propagation)
      : a_(a),
        b_(b),
        a_to_b_(engine_ab),
        b_to_a_(engine_ba),
        engine_ab_(&engine_ab),
        engine_ba_(&engine_ba),
        bandwidth_(bw),
        propagation_(propagation) {}

  NodeId a() const { return a_; }
  NodeId b() const { return b_; }
  sim::Time propagation() const { return propagation_; }
  sim::Bandwidth bandwidth() const { return bandwidth_; }

  sim::Resource* tx_from(NodeId src) {
    if (src == a_) return &a_to_b_;
    if (src == b_) return &b_to_a_;
    throw std::invalid_argument("node not on this link");
  }

  /// Engine the `src`-sourced direction's resource is bound to.
  sim::Engine* engine_from(NodeId src) const {
    if (src == a_) return engine_ab_;
    if (src == b_) return engine_ba_;
    throw std::invalid_argument("node not on this link");
  }

  Path path_from(NodeId src) {
    Path p;
    p.hops[0] = Hop{tx_from(src), bandwidth_, propagation_};
    p.hop_count = 1;
    p.src_hops = 1;
    return p;
  }

 private:
  NodeId a_;
  NodeId b_;
  sim::Resource a_to_b_;
  sim::Resource b_to_a_;
  sim::Engine* engine_ab_;
  sim::Engine* engine_ba_;
  sim::Bandwidth bandwidth_;
  sim::Time propagation_;
};

/// The set of links, switches and per-node loopback paths, plus the static
/// route table between hosts (computed on demand; see topology.cpp).
class Network {
 public:
  /// Maps a node to the engine that simulates it (shard placement). Must
  /// cover switch nodes as well as hosts.
  using EngineOf = std::function<sim::Engine&(NodeId)>;

  /// Single-engine fabric: every node on `engine`.
  explicit Network(sim::Engine& engine)
      : engine_of_([&engine](NodeId) -> sim::Engine& { return engine; }) {}

  /// Shard-aware fabric: each node's resources bind to its own engine.
  explicit Network(EngineOf engine_of) : engine_of_(std::move(engine_of)) {}

  /// Create a bidirectional link between two nodes. Reconnecting an
  /// existing pair throws: replacing the Link would dangle the Path hop
  /// resources already handed to NICs mid-simulation.
  void connect(NodeId a, NodeId b, sim::Bandwidth bw, sim::Time propagation) {
    const auto key = ordered(a, b);
    if (links_.contains(key)) {
      throw std::invalid_argument(
          "Network::connect: nodes " + std::to_string(a) + " and " +
          std::to_string(b) +
          " are already linked (reconnecting would invalidate Path "
          "resources held by NICs)");
    }
    // Binding rule: the lower-tier endpoint drives both directions (its
    // shard's thread is the only one that ever reserves them — uplinks by
    // the sending rack, downlinks by the receiving rack). Equal tiers
    // (host-host direct wires) keep the legacy per-source binding.
    const int ta = tier_of(a), tb = tier_of(b);
    sim::Engine& ea = engine_of_(a);
    sim::Engine& eb = engine_of_(b);
    sim::Engine& e_ab = ta <= tb ? ea : eb;
    sim::Engine& e_ba = tb <= ta ? eb : ea;
    links_[key] = std::make_unique<Link>(e_ab, e_ba, a, b, bw, propagation);
    routes_ready_ = false;
  }

  /// Register a host node and configure its loopback characteristics
  /// (traffic from a node to itself still traverses the NIC, bounded by
  /// PCIe).
  void add_node(NodeId n, sim::Bandwidth loopback_bw, sim::Time loopback_delay) {
    auto [it, inserted] = loopback_.try_emplace(n);
    if (inserted) {
      it->second.resource = std::make_unique<sim::Resource>(engine_of_(n));
    }
    it->second.bandwidth = loopback_bw;
    it->second.delay = loopback_delay;
    routes_ready_ = false;
  }

  /// Register a switch node. `tier` orders the topology (hosts are tier 0,
  /// ToRs 1, spines 2); `forward_latency` is charged per hop leaving the
  /// switch and folded into that hop's propagation at route-build time.
  void add_switch(NodeId n, int tier, sim::Time forward_latency = 0) {
    if (loopback_.contains(n)) {
      throw std::invalid_argument("Network::add_switch: node " +
                                  std::to_string(n) + " is already a host");
    }
    switches_[n] = Switch{tier, forward_latency};
    routes_ready_ = false;
  }

  bool is_switch(NodeId n) const { return switches_.contains(n); }

  /// The directed path from `src` towards `dst` (both hosts). Direct links
  /// and loopbacks resolve immediately; anything else consults the static
  /// route table, computing it on first use. Throws std::invalid_argument
  /// when no route exists.
  Path path(NodeId src, NodeId dst) {
    if (src == dst) {
      auto it = loopback_.find(src);
      if (it == loopback_.end()) throw std::invalid_argument("unknown node");
      Path p;
      p.hops[0] = Hop{it->second.resource.get(), it->second.bandwidth,
                      it->second.delay};
      p.hop_count = 1;
      p.src_hops = 1;
      return p;
    }
    if (auto it = links_.find(ordered(src, dst)); it != links_.end()) {
      return it->second->path_from(src);
    }
    if (switches_.empty()) {
      throw std::invalid_argument("no link between nodes");
    }
    ensure_routes();
    auto it = routes_.find({src, dst});
    if (it == routes_.end()) {
      throw std::invalid_argument("no route between nodes " +
                                  std::to_string(src) + " and " +
                                  std::to_string(dst));
    }
    return it->second.path;
  }

  bool has_path(NodeId src, NodeId dst) {
    if (src == dst) return loopback_.contains(src);
    if (links_.contains(ordered(src, dst))) return true;
    if (switches_.empty()) return false;
    ensure_routes();
    return routes_.contains({src, dst});
  }

  /// The node sequence (src .. dst inclusive) of the routed path, for
  /// tests and reports. Direct links return {src, dst}.
  std::vector<NodeId> route(NodeId src, NodeId dst);

  /// Compute static shortest-path routes between every host pair (BFS by
  /// hop count, ties broken towards lower node ids — deterministic), and
  /// split each route topologically: tier-climbing hops form the source
  /// prefix, tier-descending hops the destination suffix (identical at
  /// every shard count). Validates that the prefix is driven by the
  /// source's engine and the suffix by the destination's; throws
  /// std::invalid_argument for placements that would make a hop race
  /// (defined in topology.cpp).
  void compute_routes();

  /// Conservative lookahead of a partition: the minimum source-side
  /// propagation over routed host pairs that `shard_of` places on
  /// different shards. Returns sim::Engine::kNoEvent when nothing crosses
  /// a shard boundary (ShardedEngine::set_lookahead clamps it to its
  /// unbounded sentinel). A zero result means the partition is invalid
  /// for parallel execution; ShardedEngine::set_lookahead rejects it.
  sim::Time min_cross_lookahead(
      const std::function<std::size_t(NodeId)>& shard_of);

  /// Per-shard-pair lookahead matrix (row-major, [src * shards + dst]):
  /// entry (i, j) is the minimum source-side propagation over host pairs
  /// placed on (i, j); sim::Engine::kNoEvent where no routed pair crosses
  /// (i, j). Feed to ShardedEngine::set_lookahead(matrix).
  std::vector<sim::Time> cross_lookahead_matrix(
      const std::function<std::size_t(NodeId)>& shard_of, std::size_t shards);

 private:
  static std::pair<NodeId, NodeId> ordered(NodeId a, NodeId b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  }

  int tier_of(NodeId n) const {
    auto it = switches_.find(n);
    return it == switches_.end() ? 0 : it->second.tier;
  }

  sim::Time forward_latency_of(NodeId n) const {
    auto it = switches_.find(n);
    return it == switches_.end() ? 0 : it->second.forward_latency;
  }

  void ensure_routes() {
    if (!routes_ready_) compute_routes();
  }

  struct Loopback {
    std::unique_ptr<sim::Resource> resource;
    sim::Bandwidth bandwidth;
    sim::Time delay = 0;
  };

  struct Switch {
    int tier = 1;
    sim::Time forward_latency = 0;
  };

  struct RouteEntry {
    Path path;
    std::vector<NodeId> nodes;  // src .. dst inclusive
  };

  EngineOf engine_of_;
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<Link>> links_;
  std::map<NodeId, Loopback> loopback_;
  std::map<NodeId, Switch> switches_;
  std::map<std::pair<NodeId, NodeId>, RouteEntry> routes_;
  bool routes_ready_ = false;
};

}  // namespace cord::fabric
