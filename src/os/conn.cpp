#include "os/conn.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace cord::os {

ConnMode parse_conn_mode(std::string_view name) {
  if (name == "exclusive") return ConnMode::kExclusive;
  if (name == "shared") return ConnMode::kShared;
  throw std::invalid_argument("unknown conn mode: " + std::string(name));
}

std::string_view to_string(ConnMode mode) {
  return mode == ConnMode::kExclusive ? "exclusive" : "shared";
}

ConnectionService::ConnectionService(Host& host, ConnMode mode,
                                     std::uint32_t pool_size)
    : host_(&host), mode_(mode), pool_size_(std::max(pool_size, 1u)) {
  pd_ = host.nic().alloc_pd();
  cq_ = host.nic().create_cq(4096);
}

void ConnectionService::wire(ConnectionService& a, ConnectionService& b,
                             std::size_t logical) {
  if (a.mode_ != b.mode_) {
    throw std::invalid_argument("conn services must share a mode");
  }
  const std::size_t phys =
      a.mode_ == ConnMode::kShared ? std::min<std::size_t>(a.pool_size_, logical)
                                   : logical;
  const std::size_t base_a = a.qps_.size();
  const std::size_t base_b = b.qps_.size();
  for (std::size_t i = 0; i < phys; ++i) {
    nic::QpConfig qc;
    qc.send_cq = a.cq_;
    qc.recv_cq = a.cq_;
    qc.pd = a.pd_;
    nic::QueuePair* qa = a.host_->nic().create_qp(qc);
    qc.send_cq = b.cq_;
    qc.recv_cq = b.cq_;
    qc.pd = b.pd_;
    nic::QueuePair* qb = b.host_->nic().create_qp(qc);
    a.host_->nic().modify_qp(*qa, nic::QpState::kInit);
    b.host_->nic().modify_qp(*qb, nic::QpState::kInit);
    a.host_->nic().modify_qp(*qa, nic::QpState::kRtr,
                             {b.host_->node(), qb->qpn()});
    b.host_->nic().modify_qp(*qb, nic::QpState::kRtr,
                             {a.host_->node(), qa->qpn()});
    a.host_->nic().modify_qp(*qa, nic::QpState::kRts);
    b.host_->nic().modify_qp(*qb, nic::QpState::kRts);
    a.qps_.push_back(qa);
    b.qps_.push_back(qb);
  }
  a.logical_.reserve(a.logical_.size() + logical);
  b.logical_.reserve(b.logical_.size() + logical);
  for (std::size_t c = 0; c < logical; ++c) {
    // Round-robin onto the pool: in exclusive mode phys == logical, so
    // this degenerates to the identity mapping (one QP per connection).
    a.logical_.push_back(LogicalConn{
        b.host_->node(), static_cast<std::uint32_t>(base_a + c % phys), 0});
    b.logical_.push_back(LogicalConn{
        a.host_->node(), static_cast<std::uint32_t>(base_b + c % phys), 0});
  }
}

}  // namespace cord::os
