// The simulated OS kernel of one host.
//
// Control plane: all verbs object management (PDs, MRs, CQs, QPs) goes
// through the ioctl path with (de)serialization cost — identical for
// bypass and CoRD, as in real RDMA.
//
// Data plane: CoRD's contribution. post_send / post_recv / poll_cq enter
// the kernel via a syscall, run the policy chain, then invoke the
// kernel-level driver, which drives the *same* NIC interface the
// user-level driver uses in bypass mode (the paper's ~250-line mlx5
// change). Without policies, the only overhead is the crossing itself.
//
// The kernel also owns interrupt delivery for armed CQs (the
// "polling removed" path) and the OS-control operations CoRD enables
// (revoking a QP, reading per-QP traffic counters).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "nic/nic.hpp"
#include "os/cpu.hpp"
#include "os/policy.hpp"
#include "sim/event.hpp"
#include "trace/causal/aggregate.hpp"
#include "trace/metrics.hpp"

namespace cord::os {

struct KernelConfig {
  /// Serialization + deserialization of ioctl argument structures.
  sim::Time ioctl_serialize = sim::ns(350);
  /// Firmware/command cost of creating or modifying a verbs object.
  sim::Time control_cmd = sim::us(5);
  /// Kernel-level driver work per CoRD post operation (on top of the
  /// user-kernel crossing).
  sim::Time cord_post_work = sim::ns(120);
  /// Kernel-level driver work per CoRD poll operation.
  sim::Time cord_poll_work = sim::ns(60);
};

class Kernel {
 public:
  Kernel(sim::Engine& engine, nic::Nic& nic, KernelConfig cfg = {});
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  nic::Nic& nic() { return *nic_; }
  const KernelConfig& config() const { return cfg_; }
  PolicyChain& policies() { return policies_; }

  // --- Control plane (ioctl path; same for bypass and CoRD) ------------
  sim::Task<nic::ProtectionDomainId> alloc_pd(Core& core);
  /// MR (de)registration carries the tenant and runs the policy chain
  /// (kRegMr/kDeregMr): registration churn consumes MR-table slots and
  /// on-NIC contexts, so it is quota-gated even in bypass mode — the
  /// control plane is always kernel-mediated. A denied registration
  /// returns nullptr (the verdict's errno is not surfaced past the ioctl).
  sim::Task<const nic::MemoryRegion*> reg_mr(Core& core, TenantId tenant,
                                             nic::ProtectionDomainId pd,
                                             void* addr, std::size_t len,
                                             std::uint32_t access);
  sim::Task<bool> dereg_mr(Core& core, TenantId tenant, std::uint32_t lkey);
  sim::Task<nic::CompletionQueue*> create_cq(Core& core, std::uint32_t capacity);
  sim::Task<nic::QueuePair*> create_qp(Core& core, const nic::QpConfig& cfg);
  sim::Task<nic::SharedReceiveQueue*> create_srq(Core& core,
                                                 nic::ProtectionDomainId pd,
                                                 std::uint32_t capacity);
  sim::Task<int> modify_qp(Core& core, nic::QueuePair& qp, nic::QpState target,
                           nic::AddressHandle dest = {});
  sim::Task<> destroy_qp(Core& core, std::uint32_t qpn);

  // --- CoRD data plane --------------------------------------------------
  sim::Task<int> post_send(Core& core, TenantId tenant, nic::QueuePair& qp,
                           nic::SendWr wr);
  sim::Task<int> post_recv(Core& core, TenantId tenant, nic::QueuePair& qp,
                           nic::RecvWr wr);
  sim::Task<int> post_srq_recv(Core& core, TenantId tenant,
                               nic::SharedReceiveQueue& srq, nic::RecvWr wr);
  sim::Task<std::size_t> poll_cq(Core& core, TenantId tenant,
                                 nic::CompletionQueue& cq, std::span<nic::Cqe> out);

  // --- Batched submission (io_uring-style, one crossing per flush) ------
  /// Submit a gathered ring of send WRs in ONE kernel crossing: the
  /// syscall/KPTI cost and the SQ doorbell are charged once for the whole
  /// batch, while per-WR driver work and policy verdicts stay per-op.
  /// Policy evaluation goes through the verdict cache: a same-epoch hit
  /// runs only the policies' debit-only fast paths. Per-WR results land
  /// in `rcs` (same length as `wrs`); returns the first nonzero rc, 0 if
  /// all were admitted. An empty span is a strict no-op: no syscall
  /// charged, no policy evaluated.
  sim::Task<int> submit_send_batch(Core& core, TenantId tenant,
                                   nic::QueuePair& qp,
                                   std::span<nic::SendWr> wrs,
                                   std::span<int> rcs);
  /// Same amortization for receive posting (the RQ-replenish loops of the
  /// bandwidth workloads): one crossing posts the whole burst.
  sim::Task<int> submit_recv_batch(Core& core, TenantId tenant,
                                   nic::QueuePair& qp,
                                   std::span<const nic::RecvWr> wrs,
                                   std::span<int> rcs);

  // --- Interrupt-driven completion (the "no polling" path) --------------
  /// Arm `cq` and sleep until it signals a completion event. Charges the
  /// syscall, IRQ handling and wakeup costs. Returns immediately if a
  /// completion is already pending.
  sim::Task<> wait_cq_event(Core& core, nic::CompletionQueue& cq);

  // --- OS-control operations enabled by kernel-owned state --------------
  /// Forcibly transition a QP to the error state, flushing its work.
  void revoke_qp(nic::QueuePair& qp) { nic_->qp_set_error(qp); }
  /// Read per-QP traffic counters without application cooperation.
  const nic::QpCounters* qp_counters(std::uint32_t qpn) const {
    const nic::QueuePair* qp = nic_->find_qp(qpn);
    return qp == nullptr ? nullptr : &qp->counters();
  }

  /// User->kernel crossings (one per syscall; one per batched flush).
  /// Historical name — this is the *crossing* count, not the op count.
  std::uint64_t syscall_count() const { return syscalls_; }
  /// Operations serviced across all crossings. Equal to syscall_count()
  /// while every op takes its own syscall; diverges under batching, where
  /// one flush services a whole ring.
  std::uint64_t ops_serviced_count() const { return ops_serviced_; }
  /// Batched flushes performed / ops they carried / deepest flush seen.
  std::uint64_t batch_flushes() const { return batch_flushes_; }
  std::uint64_t batch_flushed_ops() const { return batch_flushed_ops_; }
  std::uint64_t batch_max_wrs() const { return batch_max_wrs_; }
  std::uint64_t interrupt_count() const { return interrupts_; }

  /// Policy-verdict fast-path cache (batched submissions only).
  const VerdictCache& verdict_cache() const { return verdicts_; }

  // --- Kernel-side observability (CoRD's motivating capability) ---------
  /// The host's metrics registry. In CoRD mode the data-plane syscalls
  /// account every tenant's ops/bytes/latency here *without application
  /// cooperation*; in bypass mode the data plane never enters the kernel,
  /// so the per-tenant metrics simply never appear.
  trace::MetricsRegistry& metrics() { return metrics_; }
  const trace::MetricsRegistry& metrics() const { return metrics_; }

  /// /proc-style query interface. Supported paths:
  ///   "metrics"          full registry dump (one metric per line)
  ///   "syscalls"         syscall / interrupt totals
  ///   "tenants"          one summary line per tenant the kernel has seen
  ///   "tenant/<id>"      detailed metrics for one tenant
  ///   "qp/<qpn>"         traffic counters of one queue pair
  ///   "latency"          causal latency report: e2e percentiles +
  ///                      per-stage share/queue table (trace-derived)
  ///   "latency/<id>"     one tenant's causal latency report
  ///   "critpath"         critical-path summary + slowest-span waterfalls
  /// Unknown paths return the empty string. The latency surfaces are
  /// pull-based: reading them drains any new records from this engine's
  /// tracer into the causal aggregator (zero cost on the data path; they
  /// report "no trace data" while tracing is disarmed).
  std::string proc_read(std::string_view path) const;

  // --- causal latency attribution / tail-latency watchdog ---------------
  /// Arm the tail-latency watchdog for one tenant: fire when the tenant's
  /// observed `percentile` of end-to-end latency exceeds `budget`.
  void set_latency_slo(TenantId tenant, double percentile, sim::Time budget) {
    causal_.set_slo(tenant, {percentile, budget});
  }
  /// Arm the watchdog for every tenant without a specific SLO.
  void set_default_latency_slo(double percentile, sim::Time budget) {
    causal_.set_default_slo({percentile, budget});
  }
  /// The causal aggregator, refreshed from the tracer first (same pull
  /// path the proc surfaces use).
  const trace::causal::Aggregator& causal() const {
    refresh_causal();
    return causal_;
  }
  /// Watchdog firings recorded so far (refreshes first).
  std::span<const trace::causal::WatchdogEvent> watchdog_events() const {
    refresh_causal();
    return causal_.watchdog_events();
  }

 private:
  /// Hot-path metric handles for one tenant (pointers into metrics_, which
  /// has stable addresses). Created on a tenant's first syscall.
  struct TenantMetrics {
    trace::Counter* post_sends = nullptr;
    trace::Counter* post_recvs = nullptr;
    trace::Counter* polls = nullptr;
    trace::Counter* tx_bytes = nullptr;
    trace::Counter* completions = nullptr;
    trace::Counter* crossings = nullptr;
    sim::LogHistogram* syscall_ns = nullptr;
  };
  /// Dense by tenant id (tenants are small integers in this repo).
  const TenantMetrics& tenant_metrics(TenantId tenant);
  /// Full ioctl round trip: crossing + serialization + command.
  sim::Task<> ioctl(Core& core, sim::Time cmd_cost);
  sim::Signal& cq_signal(nic::CompletionQueue& cq);
  /// Drain records the engine's tracer appended since the last refresh
  /// into the causal aggregator (no-op while tracing is disarmed).
  void refresh_causal() const;

  /// Policy evaluation for the batched path: verdict-cache lookup, fast
  /// path on a hit, full chain (plus cache fill on allow) otherwise.
  PolicyVerdict evaluate_cached(const DataplaneOp& op, sim::Time now,
                                trace::Tracer* tr, std::uint32_t span,
                                std::uint8_t node);

  sim::Engine* engine_;
  nic::Nic* nic_;
  KernelConfig cfg_;
  PolicyChain policies_;
  VerdictCache verdicts_;
  std::map<std::uint32_t, std::unique_ptr<sim::Signal>> cq_signals_;
  std::uint64_t syscalls_ = 0;
  std::uint64_t ops_serviced_ = 0;
  std::uint64_t batch_flushes_ = 0;
  std::uint64_t batch_flushed_ops_ = 0;
  std::uint64_t batch_max_wrs_ = 0;
  std::uint64_t interrupts_ = 0;
  trace::MetricsRegistry metrics_;
  std::vector<TenantMetrics> tenant_metrics_;
  /// Causal latency aggregation (pull-based: fed by refresh_causal from
  /// the proc surfaces, never from the data path). Mutable so the const
  /// read paths can lazily drain the tracer.
  mutable trace::causal::Aggregator causal_;
  mutable std::size_t causal_cursor_ = 0;
};

/// A host: one NIC, one kernel, N cores. Benchmark processes and MPI
/// ranks bind to cores of a host.
class Host {
 public:
  Host(sim::Engine& engine, fabric::Network& network, nic::NicRegistry& registry,
       nic::NodeId node, const nic::NicConfig& nic_cfg, const CpuModel& cpu,
       KernelConfig kernel_cfg = {})
      : engine_(&engine),
        cpu_model_(cpu),
        nic_(engine, network, registry, node, nic_cfg),
        kernel_(engine, nic_, kernel_cfg) {}

  sim::Engine& engine() { return *engine_; }
  nic::Nic& nic() { return nic_; }
  Kernel& kernel() { return kernel_; }
  const CpuModel& cpu_model() const { return cpu_model_; }
  nic::NodeId node() const { return nic_.node(); }

  /// Cores are created on first use; each gets a distinct RNG stream.
  Core& core(std::size_t idx) {
    while (cores_.size() <= idx) {
      cores_.push_back(std::make_unique<Core>(
          *engine_, cpu_model_,
          0xC0FFEEull * (cores_.size() + 1) + nic_.node() * 7919));
    }
    return *cores_[idx];
  }
  std::size_t core_count() const { return cores_.size(); }

 private:
  sim::Engine* engine_;
  CpuModel cpu_model_;
  nic::Nic nic_;
  Kernel kernel_;
  std::vector<std::unique_ptr<Core>> cores_;
};

}  // namespace cord::os
