// Concrete CoRD policies: QoS token bucket (shaping or policing),
// security ACL, per-tenant message-size quota, and a traffic-stats
// collector for observability. These are the OS-control capabilities the
// paper lists (QoS, security, isolation, observability) that kernel
// bypass makes impossible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "os/policy.hpp"
#include "sim/stats.hpp"
#include "trace/metrics.hpp"

namespace cord::os {

/// Per-tenant token bucket on posted send bytes.
/// In shaping mode the verdict carries a pacing delay; in policing mode
/// the op is denied with EAGAIN and the application must retry.
///
/// Tenants are small dense integers in this repo (see Kernel's
/// tenant_metrics_), so buckets live in a flat vector indexed by tenant
/// id: the per-op path is one bounds check and an indexed load, not two
/// std::map walks — required once the noisy-neighbor scenarios push
/// thousands of tenants through the chain.
class QosTokenBucket final : public Policy {
 public:
  enum class Mode { kShape, kPolice };

  QosTokenBucket(double bytes_per_sec, std::uint64_t burst_bytes,
                 Mode mode = Mode::kShape)
      : rate_(bytes_per_sec), burst_(burst_bytes), mode_(mode) {}

  std::string_view name() const override { return "qos-token-bucket"; }

  /// Set a per-tenant rate override (bytes/s); 0 restores the default.
  void set_tenant_rate(TenantId t, double bytes_per_sec) {
    slot(t).rate_override = bytes_per_sec <= 0.0 ? 0.0 : bytes_per_sec;
    invalidate_verdicts();
  }

  PolicyVerdict on_op(const DataplaneOp& op, sim::Time now) override {
    if (op.kind != DataplaneOp::Kind::kPostSend) return {.cpu_cost = kCheckCost};
    Bucket& b = slot(op.tenant);
    // A fresh bucket starts full. Without this a tenant first seen at
    // t=0 has zero tokens and zero elapsed time to refill them, so
    // police mode denies its very first op with EAGAIN under zero
    // contention.
    if (!b.primed) {
      b.tokens = static_cast<double>(burst_);
      b.last_refill = now;
      b.primed = true;
    }
    const double rate = b.rate_override > 0.0 ? b.rate_override : rate_;
    // Refill.
    const double elapsed_sec = sim::to_sec(now - b.last_refill);
    b.tokens = std::min<double>(static_cast<double>(burst_),
                                b.tokens + elapsed_sec * rate);
    b.last_refill = now;
    const auto bytes = static_cast<double>(op.bytes);
    if (mode_ == Mode::kPolice) {
      if (b.tokens < bytes) {
        return {.allow = false, .error = -11 /*EAGAIN*/, .cpu_cost = kCheckCost};
      }
      b.tokens -= bytes;
      return {.cpu_cost = kCheckCost};
    }
    // Shape: the balance may go negative (debt); the pacing delay covers
    // exactly the debt, and the next refill credits the waited time
    // without double counting.
    b.tokens -= bytes;
    if (b.tokens >= 0.0) return {.cpu_cost = kCheckCost};
    const auto delay = static_cast<sim::Time>(-b.tokens / rate * sim::kSecond);
    return {.cpu_cost = kCheckCost, .pace_delay = delay};
  }

  /// Debit-only fast path: the refill/debit arithmetic without the full
  /// admission bookkeeping. Police mode declines when the balance cannot
  /// cover the bytes (the full chain then issues the exact EAGAIN).
  bool on_op_fast(const DataplaneOp& op, sim::Time now, PolicyVerdict& v,
                  FastPhase phase) override {
    if (op.kind != DataplaneOp::Kind::kPostSend) {
      if (phase == FastPhase::kCommit) v.cpu_cost = kFastCost;
      return true;
    }
    Bucket& b = slot(op.tenant);
    const double rate = b.rate_override > 0.0 ? b.rate_override : rate_;
    const double balance =
        b.primed ? std::min<double>(static_cast<double>(burst_),
                                    b.tokens + sim::to_sec(now - b.last_refill) * rate)
                 : static_cast<double>(burst_);
    const auto bytes = static_cast<double>(op.bytes);
    if (mode_ == Mode::kPolice && balance < bytes) return false;
    if (phase == FastPhase::kProbe) return true;
    b.tokens = balance - bytes;
    b.last_refill = now;
    b.primed = true;
    v.cpu_cost = kFastCost;
    if (mode_ == Mode::kShape && b.tokens < 0.0) {
      v.pace_delay = static_cast<sim::Time>(-b.tokens / rate * sim::kSecond);
    }
    return true;
  }

 private:
  static constexpr sim::Time kCheckCost = sim::ns(35);
  static constexpr sim::Time kFastCost = sim::ns(8);
  struct Bucket {
    double tokens = 0.0;
    double rate_override = 0.0;  ///< 0 = use the policy-wide default rate
    sim::Time last_refill = 0;
    bool primed = false;
  };
  Bucket& slot(TenantId t) {
    if (t >= buckets_.size()) buckets_.resize(t + 1);
    return buckets_[t];
  }
  double rate_;
  std::uint64_t burst_;
  Mode mode_;
  std::vector<Bucket> buckets_;
};

/// Allow-list of (tenant, destination node). Unlisted destinations are
/// denied with EPERM — the kernel revoking a tenant's reach at runtime,
/// which bypassed RDMA cannot do once a QP is connected.
class SecurityAcl final : public Policy {
 public:
  std::string_view name() const override { return "security-acl"; }

  void allow(TenantId t, nic::NodeId dst) {
    allowed_.insert({t, dst});
    invalidate_verdicts();
  }
  /// Revoking makes the allow-list authoritative for the tenant even if
  /// it was never registered: in non-strict mode an unknown tenant passes
  /// every check, so a bare erase would leave the revocation a no-op —
  /// the tenant must become known for the (now absent) entry to matter.
  void revoke(TenantId t, nic::NodeId dst) {
    allowed_.erase({t, dst});
    known_tenants_.insert(t);
    invalidate_verdicts();
  }
  /// Tenants not mentioned at all are unrestricted unless strict mode.
  void set_strict(bool strict) {
    strict_ = strict;
    invalidate_verdicts();
  }

  PolicyVerdict on_op(const DataplaneOp& op, sim::Time) override {
    if (op.kind != DataplaneOp::Kind::kPostSend) return {.cpu_cost = kCheckCost};
    const bool listed = allowed_.contains({op.tenant, op.dst_node});
    const bool tenant_known = known_tenants_.contains(op.tenant);
    if (listed) return {.cpu_cost = kCheckCost};
    if (!strict_ && !tenant_known) return {.cpu_cost = kCheckCost};
    ++denied_;
    return {.allow = false, .error = -1 /*EPERM*/, .cpu_cost = kCheckCost};
  }

  /// Registering a tenant makes the allow-list authoritative for it.
  void register_tenant(TenantId t) {
    known_tenants_.insert(t);
    invalidate_verdicts();
  }
  std::uint64_t denied() const { return denied_; }

  /// The ACL decision depends only on (tenant, dst_node) and the list
  /// state — all part of the verdict-cache key/epoch — so a cache hit has
  /// already settled it and the fast path only re-charges the lookup.
  bool on_op_fast(const DataplaneOp&, sim::Time, PolicyVerdict& v,
                  FastPhase phase) override {
    if (phase == FastPhase::kCommit) v.cpu_cost = kFastCost;
    return true;
  }

 private:
  static constexpr sim::Time kCheckCost = sim::ns(40);
  static constexpr sim::Time kFastCost = sim::ns(6);
  std::set<std::pair<TenantId, nic::NodeId>> allowed_;
  std::set<TenantId> known_tenants_;
  bool strict_ = false;
  std::uint64_t denied_ = 0;
};

/// Isolation: cap the message size a tenant may post (e.g. to bound
/// head-of-line blocking on the shared wire).
class MessageSizeQuota final : public Policy {
 public:
  explicit MessageSizeQuota(std::uint64_t default_max) : default_max_(default_max) {}
  std::string_view name() const override { return "message-size-quota"; }

  void set_tenant_max(TenantId t, std::uint64_t max_bytes) {
    tenant_max_[t] = max_bytes;
    invalidate_verdicts();
  }

  PolicyVerdict on_op(const DataplaneOp& op, sim::Time) override {
    if (op.kind != DataplaneOp::Kind::kPostSend) return {.cpu_cost = kCheckCost};
    const auto it = tenant_max_.find(op.tenant);
    const std::uint64_t cap = it == tenant_max_.end() ? default_max_ : it->second;
    if (op.bytes > cap) {
      return {.allow = false, .error = -90 /*EMSGSIZE*/, .cpu_cost = kCheckCost};
    }
    return {.cpu_cost = kCheckCost};
  }

  /// Sizes vary per WR under the same cache key, so the cap comparison
  /// must be redone; an over-cap op declines to the full chain for the
  /// exact EMSGSIZE.
  bool on_op_fast(const DataplaneOp& op, sim::Time, PolicyVerdict& v,
                  FastPhase phase) override {
    if (op.kind == DataplaneOp::Kind::kPostSend) {
      const auto it = tenant_max_.find(op.tenant);
      const std::uint64_t cap = it == tenant_max_.end() ? default_max_ : it->second;
      if (op.bytes > cap) return false;
    }
    if (phase == FastPhase::kCommit) v.cpu_cost = kFastCost;
    return true;
  }

 private:
  static constexpr sim::Time kCheckCost = sim::ns(25);
  static constexpr sim::Time kFastCost = sim::ns(6);
  std::uint64_t default_max_;
  std::map<TenantId, std::uint64_t> tenant_max_;
};

/// Isolation: per-tenant *operation-rate* quota — a token bucket on op
/// count rather than bytes, over a configurable set of op kinds. This is
/// the defense against the noisy-neighbor floods that exhaust shared NIC
/// resources regardless of payload size: doorbell floods (kPostSend of
/// tiny messages), CQ-poll storms (kPollCq), and receive-posting churn.
/// Ops beyond the rate are denied with EAGAIN and never reach the NIC.
class OpRateQuota final : public Policy {
 public:
  static constexpr std::uint32_t kind_bit(DataplaneOp::Kind k) {
    return 1u << static_cast<std::uint32_t>(k);
  }

  /// `kinds` is a bitmask of kind_bit(...) values; ops of other kinds
  /// pass through untouched (still paying the check cost).
  OpRateQuota(double ops_per_sec, std::uint64_t burst_ops, std::uint32_t kinds)
      : rate_(ops_per_sec), burst_(burst_ops), kinds_(kinds) {}
  /// Mirror per-tenant denial counts into `registry` (counter
  /// `policy.oprate.denied`, label = tenant) so isolation violations
  /// surface through Kernel::proc_read alongside the kernel's metrics.
  OpRateQuota(double ops_per_sec, std::uint64_t burst_ops, std::uint32_t kinds,
              trace::MetricsRegistry& registry)
      : rate_(ops_per_sec), burst_(burst_ops), kinds_(kinds),
        registry_(&registry) {}

  std::string_view name() const override { return "op-rate-quota"; }

  /// Per-tenant rate override (ops/s); 0 restores the default.
  void set_tenant_rate(TenantId t, double ops_per_sec) {
    slot(t).rate_override = ops_per_sec <= 0.0 ? 0.0 : ops_per_sec;
    invalidate_verdicts();
  }

  PolicyVerdict on_op(const DataplaneOp& op, sim::Time now) override {
    if ((kinds_ & kind_bit(op.kind)) == 0) return {.cpu_cost = kCheckCost};
    Bucket& b = slot(op.tenant);
    if (!b.primed) {  // fresh buckets start full (same fix as QoS bucket)
      b.tokens = static_cast<double>(burst_);
      b.last_refill = now;
      b.primed = true;
    }
    const double rate = b.rate_override > 0.0 ? b.rate_override : rate_;
    b.tokens = std::min<double>(static_cast<double>(burst_),
                                b.tokens + sim::to_sec(now - b.last_refill) * rate);
    b.last_refill = now;
    if (b.tokens < 1.0) {
      ++denied_;
      if (registry_ != nullptr) {
        registry_->counter("policy.oprate.denied", op.tenant).add();
      }
      return {.allow = false, .error = -11 /*EAGAIN*/, .cpu_cost = kCheckCost};
    }
    b.tokens -= 1.0;
    return {.cpu_cost = kCheckCost};
  }

  /// Debit-only fast path: one op-token off the bucket. Declines on an
  /// empty bucket so the full chain issues the EAGAIN and counts the
  /// denial exactly once.
  bool on_op_fast(const DataplaneOp& op, sim::Time now, PolicyVerdict& v,
                  FastPhase phase) override {
    if ((kinds_ & kind_bit(op.kind)) == 0) {
      if (phase == FastPhase::kCommit) v.cpu_cost = kFastCost;
      return true;
    }
    Bucket& b = slot(op.tenant);
    const double rate = b.rate_override > 0.0 ? b.rate_override : rate_;
    const double balance =
        b.primed ? std::min<double>(static_cast<double>(burst_),
                                    b.tokens + sim::to_sec(now - b.last_refill) * rate)
                 : static_cast<double>(burst_);
    if (balance < 1.0) return false;
    if (phase == FastPhase::kProbe) return true;
    b.tokens = balance - 1.0;
    b.last_refill = now;
    b.primed = true;
    v.cpu_cost = kFastCost;
    return true;
  }

  std::uint64_t denied() const { return denied_; }

 private:
  static constexpr sim::Time kCheckCost = sim::ns(30);
  static constexpr sim::Time kFastCost = sim::ns(8);
  struct Bucket {
    double tokens = 0.0;
    double rate_override = 0.0;
    sim::Time last_refill = 0;
    bool primed = false;
  };
  Bucket& slot(TenantId t) {
    if (t >= buckets_.size()) buckets_.resize(t + 1);
    return buckets_[t];
  }
  double rate_;
  std::uint64_t burst_;
  std::uint32_t kinds_;
  std::uint64_t denied_ = 0;
  std::vector<Bucket> buckets_;
  trace::MetricsRegistry* registry_ = nullptr;
};

/// Isolation: per-tenant memory-registration quota. Caps the number of
/// live MRs (denied with ENOMEM at the cap) and paces register/deregister
/// churn with a token bucket (EAGAIN beyond the rate). MR churn is the
/// third noisy-neighbor vector: every registration pins pages, occupies
/// an MR-table slot, and installs an on-NIC MR context that competes for
/// ICM cache capacity with every other tenant's.
class RegistrationQuota final : public Policy {
 public:
  RegistrationQuota(std::uint32_t max_live_mrs, double regs_per_sec,
                    std::uint64_t burst_regs)
      : max_live_(max_live_mrs), rate_(regs_per_sec), burst_(burst_regs) {}
  RegistrationQuota(std::uint32_t max_live_mrs, double regs_per_sec,
                    std::uint64_t burst_regs, trace::MetricsRegistry& registry)
      : max_live_(max_live_mrs), rate_(regs_per_sec), burst_(burst_regs),
        registry_(&registry) {}

  std::string_view name() const override { return "registration-quota"; }

  void set_tenant_max_live(TenantId t, std::uint32_t max_live) {
    slot(t).max_live_override = max_live;
    slot(t).has_live_override = true;
    invalidate_verdicts();
  }

  PolicyVerdict on_op(const DataplaneOp& op, sim::Time now) override {
    if (op.kind == DataplaneOp::Kind::kDeregMr) {
      Bucket& b = slot(op.tenant);
      if (b.live > 0) --b.live;
      return {.cpu_cost = kCheckCost};
    }
    if (op.kind != DataplaneOp::Kind::kRegMr) return {.cpu_cost = kCheckCost};
    Bucket& b = slot(op.tenant);
    const std::uint32_t cap = b.has_live_override ? b.max_live_override : max_live_;
    if (b.live >= cap) {
      ++denied_;
      if (registry_ != nullptr) {
        registry_->counter("policy.reg.denied", op.tenant).add();
      }
      return {.allow = false, .error = -12 /*ENOMEM*/, .cpu_cost = kCheckCost};
    }
    if (!b.primed) {
      b.tokens = static_cast<double>(burst_);
      b.last_refill = now;
      b.primed = true;
    }
    b.tokens = std::min<double>(static_cast<double>(burst_),
                                b.tokens + sim::to_sec(now - b.last_refill) * rate_);
    b.last_refill = now;
    if (b.tokens < 1.0) {
      ++denied_;
      if (registry_ != nullptr) {
        registry_->counter("policy.reg.denied", op.tenant).add();
      }
      return {.allow = false, .error = -11 /*EAGAIN*/, .cpu_cost = kCheckCost};
    }
    b.tokens -= 1.0;
    ++b.live;
    return {.cpu_cost = kCheckCost};
  }

  std::uint64_t denied() const { return denied_; }
  std::uint32_t live(TenantId t) { return slot(t).live; }

  /// Registration verbs always take the full chain (they move the live-MR
  /// count); other kinds are untouched by this policy so the fast path
  /// only re-charges the check.
  bool on_op_fast(const DataplaneOp& op, sim::Time, PolicyVerdict& v,
                  FastPhase phase) override {
    if (op.kind == DataplaneOp::Kind::kRegMr ||
        op.kind == DataplaneOp::Kind::kDeregMr) {
      return false;
    }
    if (phase == FastPhase::kCommit) v.cpu_cost = kFastCost;
    return true;
  }

 private:
  static constexpr sim::Time kCheckCost = sim::ns(30);
  static constexpr sim::Time kFastCost = sim::ns(6);
  struct Bucket {
    double tokens = 0.0;
    sim::Time last_refill = 0;
    std::uint32_t live = 0;
    std::uint32_t max_live_override = 0;
    bool has_live_override = false;
    bool primed = false;
  };
  Bucket& slot(TenantId t) {
    if (t >= buckets_.size()) buckets_.resize(t + 1);
    return buckets_[t];
  }
  std::uint32_t max_live_;
  double rate_;
  std::uint64_t burst_;
  std::uint64_t denied_ = 0;
  std::vector<Bucket> buckets_;
  trace::MetricsRegistry* registry_ = nullptr;
};

/// Observability: per-tenant op/byte counters, harvested without touching
/// the application (the `rdma-system`-style accounting the paper cites).
///
/// Tenants are small dense integers in this repo, so the store is a flat
/// vector indexed by tenant id — the per-op path is one bounds check and
/// an indexed load, matching the O(1) data-plane lookups elsewhere.
/// Optionally mirrors into a MetricsRegistry (under `policy.stats.*`) so
/// the counters surface through `Kernel::proc_read` alongside the
/// kernel's own metrics.
class StatsCollector final : public Policy {
 public:
  StatsCollector() = default;
  /// Mirror every update into `registry` (counters named
  /// `policy.stats.{post_sends,post_recvs,polls,bytes}`, label = tenant).
  explicit StatsCollector(trace::MetricsRegistry& registry)
      : registry_(&registry) {}

  std::string_view name() const override { return "stats-collector"; }

  struct TenantStats {
    std::uint64_t post_sends = 0;
    std::uint64_t post_recvs = 0;
    std::uint64_t polls = 0;
    std::uint64_t bytes = 0;
    std::uint64_t reg_mrs = 0;
    std::uint64_t dereg_mrs = 0;
    bool seen = false;
  };

  PolicyVerdict on_op(const DataplaneOp& op, sim::Time) override {
    count(op);
    return {.cpu_cost = kCheckCost};
  }

  /// Counting must stay exact under batching, so the fast path performs
  /// the identical increments — only the charged CPU cost shrinks.
  bool on_op_fast(const DataplaneOp& op, sim::Time, PolicyVerdict& v,
                  FastPhase phase) override {
    if (phase == FastPhase::kCommit) {
      count(op);
      v.cpu_cost = kFastCost;
    }
    return true;
  }

  const TenantStats& tenant(TenantId t) { return slot(t); }
  /// Snapshot of (tenant, stats) for every tenant seen, ascending order.
  std::vector<std::pair<TenantId, TenantStats>> all() const {
    std::vector<std::pair<TenantId, TenantStats>> out;
    for (TenantId t = 0; t < stats_.size(); ++t) {
      if (stats_[t].seen) out.emplace_back(t, stats_[t]);
    }
    return out;
  }

 private:
  static constexpr sim::Time kCheckCost = sim::ns(30);
  static constexpr sim::Time kFastCost = sim::ns(8);

  void count(const DataplaneOp& op) {
    TenantStats& s = slot(op.tenant);
    switch (op.kind) {
      case DataplaneOp::Kind::kPostSend:
        ++s.post_sends;
        s.bytes += op.bytes;
        if (registry_ != nullptr) {
          registry_->counter("policy.stats.post_sends", op.tenant).add();
          registry_->counter("policy.stats.bytes", op.tenant).add(op.bytes);
        }
        break;
      case DataplaneOp::Kind::kPostRecv:
        ++s.post_recvs;
        if (registry_ != nullptr) {
          registry_->counter("policy.stats.post_recvs", op.tenant).add();
        }
        break;
      case DataplaneOp::Kind::kPollCq:
        ++s.polls;
        if (registry_ != nullptr) {
          registry_->counter("policy.stats.polls", op.tenant).add();
        }
        break;
      case DataplaneOp::Kind::kRegMr:
        ++s.reg_mrs;
        if (registry_ != nullptr) {
          registry_->counter("policy.stats.reg_mrs", op.tenant).add();
        }
        break;
      case DataplaneOp::Kind::kDeregMr:
        ++s.dereg_mrs;
        if (registry_ != nullptr) {
          registry_->counter("policy.stats.dereg_mrs", op.tenant).add();
        }
        break;
    }
  }

  TenantStats& slot(TenantId t) {
    if (t >= stats_.size()) stats_.resize(t + 1);
    stats_[t].seen = true;
    return stats_[t];
  }

  std::vector<TenantStats> stats_;
  trace::MetricsRegistry* registry_ = nullptr;
};

}  // namespace cord::os
