// Concrete CoRD policies: QoS token bucket (shaping or policing),
// security ACL, per-tenant message-size quota, and a traffic-stats
// collector for observability. These are the OS-control capabilities the
// paper lists (QoS, security, isolation, observability) that kernel
// bypass makes impossible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "os/policy.hpp"
#include "sim/stats.hpp"
#include "trace/metrics.hpp"

namespace cord::os {

/// Per-tenant token bucket on posted send bytes.
/// In shaping mode the verdict carries a pacing delay; in policing mode
/// the op is denied with EAGAIN and the application must retry.
class QosTokenBucket final : public Policy {
 public:
  enum class Mode { kShape, kPolice };

  QosTokenBucket(double bytes_per_sec, std::uint64_t burst_bytes,
                 Mode mode = Mode::kShape)
      : rate_(bytes_per_sec), burst_(burst_bytes), mode_(mode) {}

  std::string_view name() const override { return "qos-token-bucket"; }

  /// Set a per-tenant rate override (bytes/s); 0 restores the default.
  void set_tenant_rate(TenantId t, double bytes_per_sec) {
    if (bytes_per_sec <= 0.0) {
      tenant_rate_.erase(t);
    } else {
      tenant_rate_[t] = bytes_per_sec;
    }
  }

  PolicyVerdict on_op(const DataplaneOp& op, sim::Time now) override {
    if (op.kind != DataplaneOp::Kind::kPostSend) return {.cpu_cost = kCheckCost};
    Bucket& b = buckets_[op.tenant];
    const double rate = tenant_rate_.contains(op.tenant)
                            ? tenant_rate_[op.tenant]
                            : rate_;
    // Refill.
    const double elapsed_sec = sim::to_sec(now - b.last_refill);
    b.tokens = std::min<double>(static_cast<double>(burst_),
                                b.tokens + elapsed_sec * rate);
    b.last_refill = now;
    const auto bytes = static_cast<double>(op.bytes);
    if (mode_ == Mode::kPolice) {
      if (b.tokens < bytes) {
        return {.allow = false, .error = -11 /*EAGAIN*/, .cpu_cost = kCheckCost};
      }
      b.tokens -= bytes;
      return {.cpu_cost = kCheckCost};
    }
    // Shape: the balance may go negative (debt); the pacing delay covers
    // exactly the debt, and the next refill credits the waited time
    // without double counting.
    b.tokens -= bytes;
    if (b.tokens >= 0.0) return {.cpu_cost = kCheckCost};
    const auto delay = static_cast<sim::Time>(-b.tokens / rate * sim::kSecond);
    return {.cpu_cost = kCheckCost, .pace_delay = delay};
  }

 private:
  static constexpr sim::Time kCheckCost = sim::ns(35);
  struct Bucket {
    double tokens = 0.0;
    sim::Time last_refill = 0;
    bool primed = false;
  };
  double rate_;
  std::uint64_t burst_;
  Mode mode_;
  std::map<TenantId, Bucket> buckets_;
  std::map<TenantId, double> tenant_rate_;
};

/// Allow-list of (tenant, destination node). Unlisted destinations are
/// denied with EPERM — the kernel revoking a tenant's reach at runtime,
/// which bypassed RDMA cannot do once a QP is connected.
class SecurityAcl final : public Policy {
 public:
  std::string_view name() const override { return "security-acl"; }

  void allow(TenantId t, nic::NodeId dst) { allowed_.insert({t, dst}); }
  void revoke(TenantId t, nic::NodeId dst) { allowed_.erase({t, dst}); }
  /// Tenants not mentioned at all are unrestricted unless strict mode.
  void set_strict(bool strict) { strict_ = strict; }

  PolicyVerdict on_op(const DataplaneOp& op, sim::Time) override {
    if (op.kind != DataplaneOp::Kind::kPostSend) return {.cpu_cost = kCheckCost};
    const bool listed = allowed_.contains({op.tenant, op.dst_node});
    const bool tenant_known = known_tenants_.contains(op.tenant);
    if (listed) return {.cpu_cost = kCheckCost};
    if (!strict_ && !tenant_known) return {.cpu_cost = kCheckCost};
    ++denied_;
    return {.allow = false, .error = -1 /*EPERM*/, .cpu_cost = kCheckCost};
  }

  /// Registering a tenant makes the allow-list authoritative for it.
  void register_tenant(TenantId t) { known_tenants_.insert(t); }
  std::uint64_t denied() const { return denied_; }

 private:
  static constexpr sim::Time kCheckCost = sim::ns(40);
  std::set<std::pair<TenantId, nic::NodeId>> allowed_;
  std::set<TenantId> known_tenants_;
  bool strict_ = false;
  std::uint64_t denied_ = 0;
};

/// Isolation: cap the message size a tenant may post (e.g. to bound
/// head-of-line blocking on the shared wire).
class MessageSizeQuota final : public Policy {
 public:
  explicit MessageSizeQuota(std::uint64_t default_max) : default_max_(default_max) {}
  std::string_view name() const override { return "message-size-quota"; }

  void set_tenant_max(TenantId t, std::uint64_t max_bytes) {
    tenant_max_[t] = max_bytes;
  }

  PolicyVerdict on_op(const DataplaneOp& op, sim::Time) override {
    if (op.kind != DataplaneOp::Kind::kPostSend) return {.cpu_cost = kCheckCost};
    const auto it = tenant_max_.find(op.tenant);
    const std::uint64_t cap = it == tenant_max_.end() ? default_max_ : it->second;
    if (op.bytes > cap) {
      return {.allow = false, .error = -90 /*EMSGSIZE*/, .cpu_cost = kCheckCost};
    }
    return {.cpu_cost = kCheckCost};
  }

 private:
  static constexpr sim::Time kCheckCost = sim::ns(25);
  std::uint64_t default_max_;
  std::map<TenantId, std::uint64_t> tenant_max_;
};

/// Observability: per-tenant op/byte counters, harvested without touching
/// the application (the `rdma-system`-style accounting the paper cites).
///
/// Tenants are small dense integers in this repo, so the store is a flat
/// vector indexed by tenant id — the per-op path is one bounds check and
/// an indexed load, matching the O(1) data-plane lookups elsewhere.
/// Optionally mirrors into a MetricsRegistry (under `policy.stats.*`) so
/// the counters surface through `Kernel::proc_read` alongside the
/// kernel's own metrics.
class StatsCollector final : public Policy {
 public:
  StatsCollector() = default;
  /// Mirror every update into `registry` (counters named
  /// `policy.stats.{post_sends,post_recvs,polls,bytes}`, label = tenant).
  explicit StatsCollector(trace::MetricsRegistry& registry)
      : registry_(&registry) {}

  std::string_view name() const override { return "stats-collector"; }

  struct TenantStats {
    std::uint64_t post_sends = 0;
    std::uint64_t post_recvs = 0;
    std::uint64_t polls = 0;
    std::uint64_t bytes = 0;
    bool seen = false;
  };

  PolicyVerdict on_op(const DataplaneOp& op, sim::Time) override {
    TenantStats& s = slot(op.tenant);
    switch (op.kind) {
      case DataplaneOp::Kind::kPostSend:
        ++s.post_sends;
        s.bytes += op.bytes;
        if (registry_ != nullptr) {
          registry_->counter("policy.stats.post_sends", op.tenant).add();
          registry_->counter("policy.stats.bytes", op.tenant).add(op.bytes);
        }
        break;
      case DataplaneOp::Kind::kPostRecv:
        ++s.post_recvs;
        if (registry_ != nullptr) {
          registry_->counter("policy.stats.post_recvs", op.tenant).add();
        }
        break;
      case DataplaneOp::Kind::kPollCq:
        ++s.polls;
        if (registry_ != nullptr) {
          registry_->counter("policy.stats.polls", op.tenant).add();
        }
        break;
    }
    return {.cpu_cost = kCheckCost};
  }

  const TenantStats& tenant(TenantId t) { return slot(t); }
  /// Snapshot of (tenant, stats) for every tenant seen, ascending order.
  std::vector<std::pair<TenantId, TenantStats>> all() const {
    std::vector<std::pair<TenantId, TenantStats>> out;
    for (TenantId t = 0; t < stats_.size(); ++t) {
      if (stats_[t].seen) out.emplace_back(t, stats_[t]);
    }
    return out;
  }

 private:
  static constexpr sim::Time kCheckCost = sim::ns(30);

  TenantStats& slot(TenantId t) {
    if (t >= stats_.size()) stats_.resize(t + 1);
    stats_[t].seen = true;
    return stats_[t];
  }

  std::vector<TenantStats> stats_;
  trace::MetricsRegistry* registry_ = nullptr;
};

}  // namespace cord::os
