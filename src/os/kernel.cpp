#include "os/kernel.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdlib>
#include <vector>

#include "sim/sharded.hpp"
#include "trace/trace.hpp"

namespace cord::os {

Kernel::Kernel(sim::Engine& engine, nic::Nic& nic, KernelConfig cfg)
    : engine_(&engine), nic_(&nic), cfg_(cfg) {
  // Live views of the kernel's own counters — read-time callbacks, so the
  // hot path keeps plain integer increments.
  metrics_.callback_gauge("kernel.syscalls", [this] {
    return static_cast<std::int64_t>(syscalls_);
  });
  metrics_.callback_gauge("kernel.interrupts", [this] {
    return static_cast<std::int64_t>(interrupts_);
  });
  // Crossing-vs-op split (batched submission makes them diverge: one
  // crossing services a whole flushed ring) plus the flush shape and the
  // policy-verdict fast-path cache health. kernel.crossings mirrors
  // kernel.syscalls under its modern name.
  metrics_.callback_gauge("kernel.crossings", [this] {
    return static_cast<std::int64_t>(syscalls_);
  });
  metrics_.callback_gauge("kernel.ops_serviced", [this] {
    return static_cast<std::int64_t>(ops_serviced_);
  });
  metrics_.callback_gauge("kernel.batch.flushes", [this] {
    return static_cast<std::int64_t>(batch_flushes_);
  });
  metrics_.callback_gauge("kernel.batch.flushed_ops", [this] {
    return static_cast<std::int64_t>(batch_flushed_ops_);
  });
  metrics_.callback_gauge("kernel.batch.max_wrs", [this] {
    return static_cast<std::int64_t>(batch_max_wrs_);
  });
  metrics_.callback_gauge("kernel.verdict_cache.hits", [this] {
    return static_cast<std::int64_t>(verdicts_.stats().hits);
  });
  metrics_.callback_gauge("kernel.verdict_cache.misses", [this] {
    return static_cast<std::int64_t>(verdicts_.stats().misses);
  });
  metrics_.callback_gauge("kernel.verdict_cache.insertions", [this] {
    return static_cast<std::int64_t>(verdicts_.stats().insertions);
  });
  metrics_.callback_gauge("kernel.policy_epoch", [this] {
    return static_cast<std::int64_t>(policies_.epoch());
  });
  // This host's engine-queue health, surfaced through proc_read("metrics")
  // alongside the kernel counters: live depth, high-water mark, and the
  // calendar backend's resize count (0 under the heap backend).
  metrics_.callback_gauge("engine.queue_depth", [this] {
    return static_cast<std::int64_t>(engine_->pending_events());
  });
  metrics_.callback_gauge("engine.queue_peak_depth", [this] {
    return static_cast<std::int64_t>(engine_->queue_peak_depth());
  });
  metrics_.callback_gauge("engine.queue_resizes", [this] {
    return static_cast<std::int64_t>(engine_->queue_resizes());
  });
  // This host's NIC doorbell/burst pipeline, mirrored the same way: how
  // many doorbells rang, how many posts they absorbed, and how the fused
  // SoA drain is batching WQE work (see nic::NicCounters).
  metrics_.callback_gauge("nic.doorbells", [this] {
    return static_cast<std::int64_t>(nic_->counters().doorbells);
  });
  metrics_.callback_gauge("nic.doorbells_coalesced", [this] {
    return static_cast<std::int64_t>(nic_->counters().doorbells_coalesced);
  });
  metrics_.callback_gauge("nic.sq_bursts", [this] {
    return static_cast<std::int64_t>(nic_->counters().sq_bursts);
  });
  metrics_.callback_gauge("nic.sq_burst_wrs", [this] {
    return static_cast<std::int64_t>(nic_->counters().sq_burst_wrs);
  });
  metrics_.callback_gauge("nic.sq_fused_batches", [this] {
    return static_cast<std::int64_t>(nic_->counters().sq_fused_batches);
  });
  metrics_.callback_gauge("nic.seg_msgs", [this] {
    return static_cast<std::int64_t>(nic_->counters().seg_msgs);
  });
  metrics_.callback_gauge("nic.seg_chunks", [this] {
    return static_cast<std::int64_t>(nic_->counters().seg_chunks);
  });
  // On-NIC context-cache health (ICM model, nic/icm.hpp). All zero while
  // the cache is unbounded (the default); under a bounded configuration
  // the miss/eviction rates are the first thing to read when a host's
  // latency climbs with its connection count.
  metrics_.callback_gauge("nic.icm.qp_hits", [this] {
    return static_cast<std::int64_t>(nic_->icm_qp_cache().stats().hits);
  });
  metrics_.callback_gauge("nic.icm.qp_misses", [this] {
    return static_cast<std::int64_t>(nic_->icm_qp_cache().stats().misses);
  });
  metrics_.callback_gauge("nic.icm.qp_evictions", [this] {
    return static_cast<std::int64_t>(nic_->icm_qp_cache().stats().evictions);
  });
  metrics_.callback_gauge("nic.icm.mr_hits", [this] {
    return static_cast<std::int64_t>(nic_->icm_mr_cache().stats().hits);
  });
  metrics_.callback_gauge("nic.icm.mr_misses", [this] {
    return static_cast<std::int64_t>(nic_->icm_mr_cache().stats().misses);
  });
  metrics_.callback_gauge("nic.icm.mr_evictions", [this] {
    return static_cast<std::int64_t>(nic_->icm_mr_cache().stats().evictions);
  });
  // Tail-latency watchdog firings (causal layer). The refresh happens at
  // read time, so an armed-but-unread watchdog still costs nothing on the
  // data path.
  metrics_.callback_gauge("kernel.watchdog_violations", [this] {
    refresh_causal();
    return static_cast<std::int64_t>(causal_.watchdog_violations());
  });
  // Shard-synchronization health, mirrored into every host's procfs view
  // when this host's engine belongs to a sharded run (the counters are
  // coordinator-wide, not per host — same value from any host). Read-time
  // callbacks against live stats; the speculation counters stay zero under
  // the conservative sync mode.
  if (const sim::ShardedEngine* coord = engine_->coordinator()) {
    const auto shard_gauge = [this, coord](std::string_view name,
                                           std::uint64_t sim::ShardStats::*f) {
      metrics_.callback_gauge(name, [coord, f] {
        return static_cast<std::int64_t>(coord->stats().*f);
      });
    };
    shard_gauge("sim.shard.windows", &sim::ShardStats::windows);
    shard_gauge("sim.shard.messages", &sim::ShardStats::messages);
    shard_gauge("sim.shard.rollbacks", &sim::ShardStats::rollbacks);
    shard_gauge("sim.shard.rolled_back_events",
                &sim::ShardStats::rolled_back_events);
    shard_gauge("sim.shard.journaled_effects",
                &sim::ShardStats::journaled_effects);
    shard_gauge("sim.shard.cancelled_messages",
                &sim::ShardStats::cancelled_messages);
    shard_gauge("sim.shard.max_speculation_depth",
                &sim::ShardStats::max_speculation_depth);
  }
}

void Kernel::refresh_causal() const {
  trace::Tracer* tr = engine_->tracer();
  if (tr == nullptr) return;
  if (tr->size() < causal_cursor_) {
    // Tracer was cleared since the last refresh; start over.
    causal_.clear();
    causal_cursor_ = 0;
  }
  if (tr->size() == causal_cursor_) return;
  std::vector<trace::Record> batch;
  batch.reserve(tr->size() - causal_cursor_);
  for (std::size_t i = causal_cursor_; i < tr->size(); ++i) {
    batch.push_back((*tr)[i]);
  }
  causal_cursor_ = tr->size();
  causal_.ingest(batch);
}

const Kernel::TenantMetrics& Kernel::tenant_metrics(TenantId tenant) {
  if (tenant >= tenant_metrics_.size()) {
    tenant_metrics_.resize(tenant + 1);
  }
  TenantMetrics& tm = tenant_metrics_[tenant];
  if (tm.post_sends == nullptr) {
    tm.post_sends = &metrics_.counter("kernel.tenant.post_sends", tenant);
    tm.post_recvs = &metrics_.counter("kernel.tenant.post_recvs", tenant);
    tm.polls = &metrics_.counter("kernel.tenant.polls", tenant);
    tm.tx_bytes = &metrics_.counter("kernel.tenant.tx_bytes", tenant);
    tm.completions = &metrics_.counter("kernel.tenant.completions", tenant);
    tm.crossings = &metrics_.counter("kernel.tenant.crossings", tenant);
    tm.syscall_ns = &metrics_.histogram("kernel.tenant.syscall_ns", tenant);
  }
  return tm;
}

sim::Task<> Kernel::ioctl(Core& core, sim::Time cmd_cost) {
  ++syscalls_;
  ++ops_serviced_;
  const sim::Time cost = core.syscall_cost() + cfg_.ioctl_serialize + cmd_cost;
  co_await core.work(cost, Work::kKernel);
}

sim::Task<nic::ProtectionDomainId> Kernel::alloc_pd(Core& core) {
  co_await ioctl(core, cfg_.control_cmd);
  co_return nic_->alloc_pd();
}

sim::Task<const nic::MemoryRegion*> Kernel::reg_mr(Core& core, TenantId tenant,
                                                   nic::ProtectionDomainId pd,
                                                   void* addr, std::size_t len,
                                                   std::uint32_t access) {
  const DataplaneOp op{DataplaneOp::Kind::kRegMr, tenant, 0,
                       nic::Opcode::kSend, len, 0};
  const PolicyVerdict v = policies_.evaluate(op, engine_->now());
  if (!v.allow) {
    // Denied registrations still pay the crossing (the argument check
    // happens inside the ioctl), but never reach the firmware command
    // or the page pinning.
    co_await ioctl(core, v.cpu_cost);
    co_return nullptr;
  }
  // Registration also pins pages: charge a per-page cost on top of the
  // firmware command (page-table walk + pinning, ~120 ns/page).
  const auto pages = static_cast<sim::Time>((len + 4095) / 4096);
  co_await ioctl(core, cfg_.control_cmd + pages * sim::ns(120) + v.cpu_cost);
  if (v.pace_delay > 0) co_await core.idle(v.pace_delay);
  co_return &nic_->register_mr(pd, addr, len, access);
}

sim::Task<bool> Kernel::dereg_mr(Core& core, TenantId tenant, std::uint32_t lkey) {
  const DataplaneOp op{DataplaneOp::Kind::kDeregMr, tenant, 0,
                       nic::Opcode::kSend, 0, 0};
  const PolicyVerdict v = policies_.evaluate(op, engine_->now());
  co_await ioctl(core, cfg_.control_cmd + v.cpu_cost);
  if (!v.allow) co_return false;
  co_return nic_->deregister_mr(lkey);
}

sim::Task<nic::CompletionQueue*> Kernel::create_cq(Core& core,
                                                   std::uint32_t capacity) {
  co_await ioctl(core, cfg_.control_cmd);
  nic::CompletionQueue* cq = nic_->create_cq(capacity);
  // Install the interrupt path: an armed CQ receiving a completion raises
  // an IRQ; the kernel's handler wakes whoever sleeps on the CQ.
  cq->set_event_handler([this](nic::CompletionQueue& c) {
    engine_->call_in(nic_->config().interrupt_delivery, [this, &c] {
      ++interrupts_;
      if (trace::Tracer* tr = engine_->tracer()) [[unlikely]] {
        tr->record(trace::Point::kInterrupt, 0, c.cqn(), 0,
                   static_cast<std::uint8_t>(nic_->node()));
      }
      cq_signal(c).trigger();
    });
  });
  co_return cq;
}

sim::Task<nic::QueuePair*> Kernel::create_qp(Core& core, const nic::QpConfig& cfg) {
  co_await ioctl(core, cfg_.control_cmd);
  co_return nic_->create_qp(cfg);
}

sim::Task<nic::SharedReceiveQueue*> Kernel::create_srq(Core& core,
                                                       nic::ProtectionDomainId pd,
                                                       std::uint32_t capacity) {
  co_await ioctl(core, cfg_.control_cmd);
  co_return nic_->create_srq(pd, capacity);
}

sim::Task<int> Kernel::modify_qp(Core& core, nic::QueuePair& qp,
                                 nic::QpState target, nic::AddressHandle dest) {
  co_await ioctl(core, cfg_.control_cmd);
  co_return nic_->modify_qp(qp, target, dest);
}

sim::Task<> Kernel::destroy_qp(Core& core, std::uint32_t qpn) {
  co_await ioctl(core, cfg_.control_cmd);
  nic_->destroy_qp(qpn);
  // The QPN can be recycled; verdicts cached against it must never apply
  // to a successor QP.
  policies_.invalidate();
}

sim::Task<int> Kernel::post_send(Core& core, TenantId tenant, nic::QueuePair& qp,
                                 nic::SendWr wr) {
  ++syscalls_;
  ++ops_serviced_;
  const sim::Time t0 = engine_->now();
  const std::uint32_t qpn = qp.qpn();
  const std::uint32_t span = wr.trace_span;
  const std::uint8_t node = static_cast<std::uint8_t>(nic_->node());
  // The SGE describes the payload even for inline sends: the copy into
  // the WQE (which fills inline_payload) happens below us, in the NIC.
  const std::uint64_t bytes = wr.sge.length;
  // Copy of the handle struct: tenant_metrics_ may reallocate while this
  // coroutine is suspended, but the pointed-to registry entries are stable.
  const TenantMetrics tm = tenant_metrics(tenant);
  tm.crossings->add();
  tm.post_sends->add();
  tm.tx_bytes->add(bytes);
  trace::Tracer* tr = engine_->tracer();
  if (tr != nullptr) [[unlikely]] {
    tr->record(trace::Point::kSyscallEnter, span, qpn, tenant, node, bytes);
  }
  const nic::NodeId dst =
      qp.type() == nic::QpType::kUD ? wr.ud.node : qp.dest().node;
  const DataplaneOp op{DataplaneOp::Kind::kPostSend, tenant, qpn,
                       wr.opcode, bytes, dst};
  const PolicyVerdict v = policies_.evaluate(op, t0, tr, span, node);
  co_await core.work(core.syscall_cost() + cfg_.cord_post_work + v.cpu_cost,
                     Work::kKernel);
  int rc;
  if (!v.allow) {
    rc = v.error;
  } else {
    if (v.pace_delay > 0) co_await core.idle(v.pace_delay);
    co_await core.work(core.model().doorbell_mmio, Work::kKernel);
    rc = nic_->post_send(qp, std::move(wr));
  }
  const sim::Time elapsed = engine_->now() - t0;
  tm.syscall_ns->add(static_cast<std::uint64_t>(elapsed) / 1000);
  if ((tr = engine_->tracer()) != nullptr) [[unlikely]] {
    tr->record(trace::Point::kSyscallExit, span, qpn, tenant, node,
               static_cast<std::uint64_t>(elapsed));
  }
  co_return rc;
}

sim::Task<int> Kernel::post_recv(Core& core, TenantId tenant, nic::QueuePair& qp,
                                 nic::RecvWr wr) {
  ++syscalls_;
  ++ops_serviced_;
  const sim::Time t0 = engine_->now();
  const std::uint32_t qpn = qp.qpn();
  const std::uint8_t node = static_cast<std::uint8_t>(nic_->node());
  const TenantMetrics tm = tenant_metrics(tenant);
  tm.crossings->add();
  tm.post_recvs->add();
  trace::Tracer* tr = engine_->tracer();
  if (tr != nullptr) [[unlikely]] {
    tr->record(trace::Point::kSyscallEnter, 0, qpn, tenant, node,
               wr.sge.length);
  }
  const DataplaneOp op{DataplaneOp::Kind::kPostRecv, tenant, qpn,
                       nic::Opcode::kSend, wr.sge.length, 0};
  const PolicyVerdict v = policies_.evaluate(op, t0, tr, 0, node);
  co_await core.work(core.syscall_cost() + cfg_.cord_post_work + v.cpu_cost,
                     Work::kKernel);
  const int rc = v.allow ? nic_->post_recv(qp, wr) : v.error;
  const sim::Time elapsed = engine_->now() - t0;
  tm.syscall_ns->add(static_cast<std::uint64_t>(elapsed) / 1000);
  if ((tr = engine_->tracer()) != nullptr) [[unlikely]] {
    tr->record(trace::Point::kSyscallExit, 0, qpn, tenant, node,
               static_cast<std::uint64_t>(elapsed));
  }
  co_return rc;
}

sim::Task<int> Kernel::post_srq_recv(Core& core, TenantId tenant,
                                     nic::SharedReceiveQueue& srq, nic::RecvWr wr) {
  ++syscalls_;
  ++ops_serviced_;
  const sim::Time t0 = engine_->now();
  const std::uint8_t node = static_cast<std::uint8_t>(nic_->node());
  const TenantMetrics tm = tenant_metrics(tenant);
  tm.crossings->add();
  tm.post_recvs->add();
  trace::Tracer* tr = engine_->tracer();
  if (tr != nullptr) [[unlikely]] {
    tr->record(trace::Point::kSyscallEnter, 0, 0, tenant, node, wr.sge.length);
  }
  const DataplaneOp op{DataplaneOp::Kind::kPostRecv, tenant, 0,
                       nic::Opcode::kSend, wr.sge.length, 0};
  const PolicyVerdict v = policies_.evaluate(op, t0, tr, 0, node);
  co_await core.work(core.syscall_cost() + cfg_.cord_post_work + v.cpu_cost,
                     Work::kKernel);
  const int rc = v.allow ? nic_->post_srq_recv(srq, wr) : v.error;
  const sim::Time elapsed = engine_->now() - t0;
  tm.syscall_ns->add(static_cast<std::uint64_t>(elapsed) / 1000);
  if ((tr = engine_->tracer()) != nullptr) [[unlikely]] {
    tr->record(trace::Point::kSyscallExit, 0, 0, tenant, node,
               static_cast<std::uint64_t>(elapsed));
  }
  co_return rc;
}

sim::Task<std::size_t> Kernel::poll_cq(Core& core, TenantId tenant,
                                       nic::CompletionQueue& cq,
                                       std::span<nic::Cqe> out) {
  ++syscalls_;
  ++ops_serviced_;
  const sim::Time t0 = engine_->now();
  const std::uint8_t node = static_cast<std::uint8_t>(nic_->node());
  const TenantMetrics tm = tenant_metrics(tenant);
  tm.crossings->add();
  tm.polls->add();
  trace::Tracer* tr = engine_->tracer();
  if (tr != nullptr) [[unlikely]] {
    tr->record(trace::Point::kSyscallEnter, 0, cq.cqn(), tenant, node);
  }
  const DataplaneOp op{DataplaneOp::Kind::kPollCq, tenant, 0,
                       nic::Opcode::kSend, 0, 0};
  const PolicyVerdict v = policies_.evaluate(op, t0, tr, 0, node);
  // A denied poll (CQ-quota policing a poll storm) returns 0 completions
  // without touching the CQ: the entries stay queued for a later,
  // in-quota poll.
  const std::size_t n = v.allow ? cq.poll(out) : 0;
  tm.completions->add(n);
  if (tr != nullptr && n > 0) [[unlikely]] {
    tr->record(trace::Point::kCqePoll, 0, cq.cqn(), tenant, node, n);
  }
  co_await core.work(core.syscall_cost() + cfg_.cord_poll_work + v.cpu_cost +
                         static_cast<sim::Time>(n) * core.model().poll_hit,
                     Work::kKernel);
  const sim::Time elapsed = engine_->now() - t0;
  tm.syscall_ns->add(static_cast<std::uint64_t>(elapsed) / 1000);
  if ((tr = engine_->tracer()) != nullptr) [[unlikely]] {
    tr->record(trace::Point::kSyscallExit, 0, cq.cqn(), tenant, node,
               static_cast<std::uint64_t>(elapsed));
  }
  co_return n;
}

PolicyVerdict Kernel::evaluate_cached(const DataplaneOp& op, sim::Time now,
                                      trace::Tracer* tr, std::uint32_t span,
                                      std::uint8_t node) {
  if (policies_.empty()) return {};
  const std::uint64_t epoch = policies_.epoch();
  if (verdicts_.lookup(op.tenant, op.qpn, op.kind, op.dst_node, epoch)) {
    PolicyVerdict v;
    if (policies_.evaluate_fast(op, now, v, tr, span, node)) return v;
    // A policy declined the fast path (empty bucket, over-cap size):
    // fall through to the full chain for the exact verdict.
  }
  const PolicyVerdict v = policies_.evaluate(op, now, tr, span, node);
  // Cache allowing verdicts only: denials are transient (EAGAIN) or must
  // keep paying the full chain so denial counters/errno stay exact.
  if (v.allow) {
    verdicts_.insert(op.tenant, op.qpn, op.kind, op.dst_node, epoch);
  }
  return v;
}

sim::Task<int> Kernel::submit_send_batch(Core& core, TenantId tenant,
                                         nic::QueuePair& qp,
                                         std::span<nic::SendWr> wrs,
                                         std::span<int> rcs) {
  if (wrs.empty()) co_return 0;  // no syscall, no policy work (satellite 2)
  const std::size_t n = wrs.size();
  ++syscalls_;
  ops_serviced_ += n;
  ++batch_flushes_;
  batch_flushed_ops_ += n;
  batch_max_wrs_ = std::max<std::uint64_t>(batch_max_wrs_, n);
  const sim::Time t0 = engine_->now();
  const std::uint32_t qpn = qp.qpn();
  const std::uint8_t node = static_cast<std::uint8_t>(nic_->node());
  const TenantMetrics tm = tenant_metrics(tenant);
  tm.crossings->add();
  tm.post_sends->add(n);
  trace::Tracer* tr = engine_->tracer();
  std::vector<PolicyVerdict> verdicts(n);
  // One crossing + per-WR driver work; every WR still gets its own policy
  // verdict (through the cache) before anything reaches the NIC.
  sim::Time cpu = core.syscall_cost() + static_cast<sim::Time>(n) * cfg_.cord_post_work;
  for (std::size_t i = 0; i < n; ++i) {
    const nic::SendWr& wr = wrs[i];
    const std::uint64_t bytes = wr.sge.length;
    tm.tx_bytes->add(bytes);
    if (tr != nullptr) [[unlikely]] {
      tr->record(trace::Point::kSyscallEnter, wr.trace_span, qpn, tenant, node,
                 bytes);
    }
    const nic::NodeId dst =
        qp.type() == nic::QpType::kUD ? wr.ud.node : qp.dest().node;
    const DataplaneOp op{DataplaneOp::Kind::kPostSend, tenant, qpn, wr.opcode,
                         bytes, dst};
    verdicts[i] = evaluate_cached(op, t0, tr, wr.trace_span, node);
    cpu += verdicts[i].cpu_cost;
  }
  co_await core.work(cpu, Work::kKernel);
  int first_err = 0;
  bool any_allowed = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (!verdicts[i].allow) {
      rcs[i] = verdicts[i].error;
      if (first_err == 0) first_err = verdicts[i].error;
      continue;
    }
    any_allowed = true;
    if (verdicts[i].pace_delay > 0) co_await core.idle(verdicts[i].pace_delay);
  }
  if (any_allowed) {
    // The WQEs are already written; ring the SQ doorbell once for the
    // whole batch (the device-side worker drains them as one burst).
    co_await core.work(core.model().doorbell_mmio, Work::kKernel);
    for (std::size_t i = 0; i < n; ++i) {
      if (!verdicts[i].allow) continue;
      rcs[i] = nic_->post_send(qp, std::move(wrs[i]));
      if (first_err == 0 && rcs[i] != 0) first_err = rcs[i];
    }
  }
  const sim::Time elapsed = engine_->now() - t0;
  tm.syscall_ns->add(static_cast<std::uint64_t>(elapsed) / 1000);
  if ((tr = engine_->tracer()) != nullptr) [[unlikely]] {
    for (std::size_t i = 0; i < n; ++i) {
      tr->record(trace::Point::kSyscallExit, wrs[i].trace_span, qpn, tenant,
                 node, static_cast<std::uint64_t>(elapsed));
    }
  }
  co_return first_err;
}

sim::Task<int> Kernel::submit_recv_batch(Core& core, TenantId tenant,
                                         nic::QueuePair& qp,
                                         std::span<const nic::RecvWr> wrs,
                                         std::span<int> rcs) {
  if (wrs.empty()) co_return 0;  // no syscall, no policy work
  const std::size_t n = wrs.size();
  ++syscalls_;
  ops_serviced_ += n;
  ++batch_flushes_;
  batch_flushed_ops_ += n;
  batch_max_wrs_ = std::max<std::uint64_t>(batch_max_wrs_, n);
  const sim::Time t0 = engine_->now();
  const std::uint32_t qpn = qp.qpn();
  const std::uint8_t node = static_cast<std::uint8_t>(nic_->node());
  const TenantMetrics tm = tenant_metrics(tenant);
  tm.crossings->add();
  tm.post_recvs->add(n);
  trace::Tracer* tr = engine_->tracer();
  std::vector<PolicyVerdict> verdicts(n);
  sim::Time cpu = core.syscall_cost() + static_cast<sim::Time>(n) * cfg_.cord_post_work;
  for (std::size_t i = 0; i < n; ++i) {
    if (tr != nullptr) [[unlikely]] {
      tr->record(trace::Point::kSyscallEnter, 0, qpn, tenant, node,
                 wrs[i].sge.length);
    }
    const DataplaneOp op{DataplaneOp::Kind::kPostRecv, tenant, qpn,
                         nic::Opcode::kSend, wrs[i].sge.length, 0};
    verdicts[i] = evaluate_cached(op, t0, tr, 0, node);
    cpu += verdicts[i].cpu_cost;
  }
  co_await core.work(cpu, Work::kKernel);
  int first_err = 0;
  for (std::size_t i = 0; i < n; ++i) {
    rcs[i] = verdicts[i].allow ? nic_->post_recv(qp, wrs[i]) : verdicts[i].error;
    if (first_err == 0 && rcs[i] != 0) first_err = rcs[i];
  }
  const sim::Time elapsed = engine_->now() - t0;
  tm.syscall_ns->add(static_cast<std::uint64_t>(elapsed) / 1000);
  if ((tr = engine_->tracer()) != nullptr) [[unlikely]] {
    for (std::size_t i = 0; i < n; ++i) {
      tr->record(trace::Point::kSyscallExit, 0, qpn, tenant, node,
                 static_cast<std::uint64_t>(elapsed));
    }
  }
  co_return first_err;
}

sim::Task<> Kernel::wait_cq_event(Core& core, nic::CompletionQueue& cq) {
  ++syscalls_;
  ++ops_serviced_;
  co_await core.work(core.syscall_cost(), Work::kKernel);
  if (cq.depth() > 0) co_return;  // completion raced ahead of the sleep
  cq.arm();
  if (cq.depth() > 0) co_return;  // re-check after arming (the usual dance)
  co_await cq_signal(cq).wait();
  // IRQ handler + scheduler wakeup on this core.
  co_await core.work(core.model().interrupt_handling + core.model().wakeup_latency,
                     Work::kKernel);
}

namespace {

void append_tenant_line(std::string& out, const trace::MetricsRegistry& m,
                        std::uint32_t t) {
  char buf[256];
  const auto cv = [&](const char* name) -> std::uint64_t {
    const trace::Counter* c = m.find_counter(name, t);
    return c == nullptr ? 0 : c->value;
  };
  std::uint64_t p50 = 0, p99 = 0;
  if (const sim::LogHistogram* h = m.find_histogram("kernel.tenant.syscall_ns", t)) {
    p50 = static_cast<std::uint64_t>(h->percentile(50.0));
    p99 = static_cast<std::uint64_t>(h->percentile(99.0));
  }
  std::snprintf(buf, sizeof buf,
                "tenant %" PRIu32 " post_sends=%" PRIu64 " post_recvs=%" PRIu64
                " polls=%" PRIu64 " tx_bytes=%" PRIu64 " completions=%" PRIu64
                " syscall_p50_ns=%" PRIu64 " syscall_p99_ns=%" PRIu64 "\n",
                t, cv("kernel.tenant.post_sends"), cv("kernel.tenant.post_recvs"),
                cv("kernel.tenant.polls"), cv("kernel.tenant.tx_bytes"),
                cv("kernel.tenant.completions"), p50, p99);
  out += buf;
}

}  // namespace

std::string Kernel::proc_read(std::string_view path) const {
  char buf[256];
  if (path == "metrics") return metrics_.text();
  if (path == "syscalls") {
    // `syscalls` keeps its historical meaning (crossings) so existing
    // dashboards stay truthful under batching; the explicit split follows.
    char big[512];
    std::snprintf(big, sizeof big,
                  "syscalls %" PRIu64 "\ncrossings %" PRIu64
                  "\nops_serviced %" PRIu64 "\nbatch_flushes %" PRIu64
                  "\nbatch_flushed_ops %" PRIu64 "\nverdict_hits %" PRIu64
                  "\nverdict_misses %" PRIu64 "\ninterrupts %" PRIu64 "\n",
                  syscalls_, syscalls_, ops_serviced_, batch_flushes_,
                  batch_flushed_ops_, verdicts_.stats().hits,
                  verdicts_.stats().misses, interrupts_);
    return big;
  }
  if (path == "tenants") {
    std::string out;
    for (std::uint32_t t : metrics_.labels("kernel.tenant.post_sends")) {
      append_tenant_line(out, metrics_, t);
    }
    return out;
  }
  constexpr std::string_view kTenant = "tenant/";
  if (path.size() > kTenant.size() && path.substr(0, kTenant.size()) == kTenant) {
    const std::uint32_t t =
        static_cast<std::uint32_t>(std::atoi(std::string(path.substr(kTenant.size())).c_str()));
    if (metrics_.find_counter("kernel.tenant.post_sends", t) == nullptr) return {};
    std::string out;
    append_tenant_line(out, metrics_, t);
    return out;
  }
  if (path == "latency") {
    refresh_causal();
    return causal_.latency_report();
  }
  if (path == "critpath") {
    refresh_causal();
    return causal_.critpath_report();
  }
  constexpr std::string_view kLatency = "latency/";
  if (path.size() > kLatency.size() &&
      path.substr(0, kLatency.size()) == kLatency) {
    refresh_causal();
    const std::uint32_t t = static_cast<std::uint32_t>(
        std::atoi(std::string(path.substr(kLatency.size())).c_str()));
    return causal_.tenant_report(t);
  }
  constexpr std::string_view kQp = "qp/";
  if (path.size() > kQp.size() && path.substr(0, kQp.size()) == kQp) {
    const std::uint32_t qpn =
        static_cast<std::uint32_t>(std::atoi(std::string(path.substr(kQp.size())).c_str()));
    const nic::QpCounters* c = qp_counters(qpn);
    if (c == nullptr) return {};
    std::snprintf(buf, sizeof buf,
                  "qp %" PRIu32 " tx_msgs=%" PRIu64 " tx_bytes=%" PRIu64
                  " rx_msgs=%" PRIu64 " rx_bytes=%" PRIu64 "\n",
                  qpn, c->tx_msgs, c->tx_bytes, c->rx_msgs, c->rx_bytes);
    return buf;
  }
  return {};
}

sim::Signal& Kernel::cq_signal(nic::CompletionQueue& cq) {
  auto it = cq_signals_.find(cq.cqn());
  if (it == cq_signals_.end()) {
    it = cq_signals_.emplace(cq.cqn(), std::make_unique<sim::Signal>(*engine_)).first;
  }
  return *it->second;
}

}  // namespace cord::os
