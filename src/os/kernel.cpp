#include "os/kernel.hpp"

namespace cord::os {

sim::Task<> Kernel::ioctl(Core& core, sim::Time cmd_cost) {
  ++syscalls_;
  const sim::Time cost = core.syscall_cost() + cfg_.ioctl_serialize + cmd_cost;
  co_await core.work(cost, Work::kKernel);
}

sim::Task<nic::ProtectionDomainId> Kernel::alloc_pd(Core& core) {
  co_await ioctl(core, cfg_.control_cmd);
  co_return nic_->alloc_pd();
}

sim::Task<const nic::MemoryRegion*> Kernel::reg_mr(Core& core,
                                                   nic::ProtectionDomainId pd,
                                                   void* addr, std::size_t len,
                                                   std::uint32_t access) {
  // Registration also pins pages: charge a per-page cost on top of the
  // firmware command (page-table walk + pinning, ~120 ns/page).
  const auto pages = static_cast<sim::Time>((len + 4095) / 4096);
  co_await ioctl(core, cfg_.control_cmd + pages * sim::ns(120));
  co_return &nic_->register_mr(pd, addr, len, access);
}

sim::Task<bool> Kernel::dereg_mr(Core& core, std::uint32_t lkey) {
  co_await ioctl(core, cfg_.control_cmd);
  co_return nic_->deregister_mr(lkey);
}

sim::Task<nic::CompletionQueue*> Kernel::create_cq(Core& core,
                                                   std::uint32_t capacity) {
  co_await ioctl(core, cfg_.control_cmd);
  nic::CompletionQueue* cq = nic_->create_cq(capacity);
  // Install the interrupt path: an armed CQ receiving a completion raises
  // an IRQ; the kernel's handler wakes whoever sleeps on the CQ.
  cq->set_event_handler([this](nic::CompletionQueue& c) {
    engine_->call_in(nic_->config().interrupt_delivery, [this, &c] {
      ++interrupts_;
      cq_signal(c).trigger();
    });
  });
  co_return cq;
}

sim::Task<nic::QueuePair*> Kernel::create_qp(Core& core, const nic::QpConfig& cfg) {
  co_await ioctl(core, cfg_.control_cmd);
  co_return nic_->create_qp(cfg);
}

sim::Task<nic::SharedReceiveQueue*> Kernel::create_srq(Core& core,
                                                       nic::ProtectionDomainId pd,
                                                       std::uint32_t capacity) {
  co_await ioctl(core, cfg_.control_cmd);
  co_return nic_->create_srq(pd, capacity);
}

sim::Task<int> Kernel::modify_qp(Core& core, nic::QueuePair& qp,
                                 nic::QpState target, nic::AddressHandle dest) {
  co_await ioctl(core, cfg_.control_cmd);
  co_return nic_->modify_qp(qp, target, dest);
}

sim::Task<> Kernel::destroy_qp(Core& core, std::uint32_t qpn) {
  co_await ioctl(core, cfg_.control_cmd);
  nic_->destroy_qp(qpn);
}

sim::Task<int> Kernel::post_send(Core& core, TenantId tenant, nic::QueuePair& qp,
                                 nic::SendWr wr) {
  ++syscalls_;
  const std::uint64_t bytes =
      wr.inline_data ? wr.inline_payload.size() : wr.sge.length;
  const nic::NodeId dst =
      qp.type() == nic::QpType::kUD ? wr.ud.node : qp.dest().node;
  const DataplaneOp op{DataplaneOp::Kind::kPostSend, tenant, qp.qpn(),
                       wr.opcode, bytes, dst};
  const PolicyVerdict v = policies_.evaluate(op, engine_->now());
  co_await core.work(core.syscall_cost() + cfg_.cord_post_work + v.cpu_cost,
                     Work::kKernel);
  if (!v.allow) co_return v.error;
  if (v.pace_delay > 0) co_await core.idle(v.pace_delay);
  co_await core.work(core.model().doorbell_mmio, Work::kKernel);
  co_return nic_->post_send(qp, std::move(wr));
}

sim::Task<int> Kernel::post_recv(Core& core, TenantId tenant, nic::QueuePair& qp,
                                 nic::RecvWr wr) {
  ++syscalls_;
  const DataplaneOp op{DataplaneOp::Kind::kPostRecv, tenant, qp.qpn(),
                       nic::Opcode::kSend, wr.sge.length, 0};
  const PolicyVerdict v = policies_.evaluate(op, engine_->now());
  co_await core.work(core.syscall_cost() + cfg_.cord_post_work + v.cpu_cost,
                     Work::kKernel);
  if (!v.allow) co_return v.error;
  co_return nic_->post_recv(qp, wr);
}

sim::Task<int> Kernel::post_srq_recv(Core& core, TenantId tenant,
                                     nic::SharedReceiveQueue& srq, nic::RecvWr wr) {
  ++syscalls_;
  const DataplaneOp op{DataplaneOp::Kind::kPostRecv, tenant, 0,
                       nic::Opcode::kSend, wr.sge.length, 0};
  const PolicyVerdict v = policies_.evaluate(op, engine_->now());
  co_await core.work(core.syscall_cost() + cfg_.cord_post_work + v.cpu_cost,
                     Work::kKernel);
  if (!v.allow) co_return v.error;
  co_return nic_->post_srq_recv(srq, wr);
}

sim::Task<std::size_t> Kernel::poll_cq(Core& core, TenantId tenant,
                                       nic::CompletionQueue& cq,
                                       std::span<nic::Cqe> out) {
  ++syscalls_;
  const DataplaneOp op{DataplaneOp::Kind::kPollCq, tenant, 0,
                       nic::Opcode::kSend, 0, 0};
  const PolicyVerdict v = policies_.evaluate(op, engine_->now());
  const std::size_t n = cq.poll(out);
  co_await core.work(core.syscall_cost() + cfg_.cord_poll_work + v.cpu_cost +
                         static_cast<sim::Time>(n) * core.model().poll_hit,
                     Work::kKernel);
  co_return n;
}

sim::Task<> Kernel::wait_cq_event(Core& core, nic::CompletionQueue& cq) {
  ++syscalls_;
  co_await core.work(core.syscall_cost(), Work::kKernel);
  if (cq.depth() > 0) co_return;  // completion raced ahead of the sleep
  cq.arm();
  if (cq.depth() > 0) co_return;  // re-check after arming (the usual dance)
  co_await cq_signal(cq).wait();
  // IRQ handler + scheduler wakeup on this core.
  co_await core.work(core.model().interrupt_handling + core.model().wakeup_latency,
                     Work::kKernel);
}

sim::Signal& Kernel::cq_signal(nic::CompletionQueue& cq) {
  auto it = cq_signals_.find(cq.cqn());
  if (it == cq_signals_.end()) {
    it = cq_signals_.emplace(cq.cqn(), std::make_unique<sim::Signal>(*engine_)).first;
  }
  return *it->second;
}

}  // namespace cord::os
