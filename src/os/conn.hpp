// Connection-endpoint modes: exclusive (one physical QP per logical
// connection — classic RC) vs shared (DCT/RDMAvisor-style multiplexing:
// many logical connections ride a bounded pool of physical QPs).
//
// The exclusive model is what makes RDMA fall off a cliff at scale:
// every connection pins a QP context on the NIC, and once the working
// set outgrows the on-NIC ICM cache (nic/icm.hpp) each doorbell pays a
// host-memory context fetch. The shared model bounds the physical-QP
// count — and with it the NIC context working set and the host memory —
// at the cost of multiplexing logical connections onto shared send
// queues. CoRD makes this natural to deploy: the kernel already owns the
// dataplane, so the mapping from logical connection to physical QP can
// live below the verbs API without application cooperation.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "nic/cq.hpp"
#include "nic/qp.hpp"
#include "os/kernel.hpp"

namespace cord::os {

enum class ConnMode : std::uint8_t { kExclusive, kShared };

/// Parse the runtime knob value: "exclusive" | "shared" (mirrors
/// sim::parse_queue_kind / parse_sync_mode). Throws std::invalid_argument
/// on anything else.
ConnMode parse_conn_mode(std::string_view name);
std::string_view to_string(ConnMode mode);

/// Per-host connection multiplexer. Owns the physical QPs (and one
/// completion queue they share) plus the logical-connection table; the
/// data plane asks `physical(conn)` for the QP backing a logical
/// connection and posts on it through the usual verbs/kernel paths.
///
/// Control-plane setup (wire()) manipulates NIC state directly, like
/// System construction does: establishment cost is out of scope for the
/// scale scenarios this backs — the subject is the steady-state cost of
/// *holding* N connections.
class ConnectionService {
 public:
  using ConnId = std::uint32_t;

  /// The entire per-connection state in shared mode — 16 bytes. This is
  /// the boundedness claim made quantitative: a million logical
  /// connections cost ~16 MB of host memory and zero additional NIC
  /// contexts beyond the fixed pool.
  struct LogicalConn {
    nic::NodeId dst = 0;        ///< destination host
    std::uint32_t phys = 0;     ///< index into this service's QP list
    std::uint64_t ops = 0;      ///< posts mapped through this connection
  };

  ConnectionService(Host& host, ConnMode mode, std::uint32_t pool_size);

  ConnMode mode() const { return mode_; }
  Host& host() { return *host_; }
  nic::CompletionQueue& cq() { return *cq_; }
  nic::ProtectionDomainId pd() const { return pd_; }

  /// Physical QP backing logical connection `c`; counts the mapping.
  nic::QueuePair& physical(ConnId c) {
    LogicalConn& lc = logical_[c];
    ++lc.ops;
    return *qps_[lc.phys];
  }
  const LogicalConn& conn(ConnId c) const { return logical_[c]; }

  std::size_t logical_count() const { return logical_.size(); }
  std::size_t physical_count() const { return qps_.size(); }
  /// Bytes of per-connection descriptor state (the memory that scales
  /// with the logical connection count).
  std::size_t conn_table_bytes() const {
    return logical_.size() * sizeof(LogicalConn);
  }

  /// Establish `logical` connections from `a` to `b` (both directions are
  /// wired so either side could transmit). Exclusive mode creates one
  /// connected QP pair per logical connection; shared mode creates
  /// min(pool_size, logical) pairs and maps logical connections onto them
  /// round-robin. Both services must use the same mode.
  static void wire(ConnectionService& a, ConnectionService& b,
                   std::size_t logical);

 private:
  Host* host_;
  ConnMode mode_;
  std::uint32_t pool_size_;
  nic::ProtectionDomainId pd_ = 0;
  nic::CompletionQueue* cq_ = nullptr;
  std::vector<nic::QueuePair*> qps_;
  std::vector<LogicalConn> logical_;
};

}  // namespace cord::os
