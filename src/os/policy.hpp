// CoRD policies: the point of routing the RDMA data plane through the
// kernel. A policy sees every data-plane operation *before* it reaches
// the NIC and can account it, deny it, price it (CPU cost), or pace it.
// Policies must be lightweight and non-blocking (the paper's constraint);
// the chain is evaluated synchronously inside the syscall.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "nic/types.hpp"
#include "sim/units.hpp"
#include "trace/trace.hpp"

namespace cord::os {

using TenantId = std::uint32_t;

/// A data-plane operation as seen by the kernel interposition layer.
/// kRegMr/kDeregMr are control-plane verbs, but they consume the same
/// scarce NIC resources (MR table, on-NIC MR contexts) that a hostile
/// tenant can churn, so they run through the chain too. RDMA reads and
/// atomics arrive as kPostSend — `opcode` distinguishes them.
struct DataplaneOp {
  enum class Kind : std::uint8_t { kPostSend, kPostRecv, kPollCq, kRegMr,
                                   kDeregMr };
  Kind kind = Kind::kPostSend;
  TenantId tenant = 0;
  std::uint32_t qpn = 0;
  nic::Opcode opcode = nic::Opcode::kSend;
  std::uint64_t bytes = 0;
  nic::NodeId dst_node = 0;
};

struct PolicyVerdict {
  /// Deny -> the syscall returns `error` to the application.
  bool allow = true;
  int error = 0;
  /// CPU time the policy consumed (charged to the calling core, in-kernel).
  sim::Time cpu_cost = 0;
  /// Pacing delay imposed before the doorbell (QoS shaping).
  sim::Time pace_delay = 0;
};

class PolicyChain;

/// The verdict-cache fast path runs in two phases so a mid-chain decline
/// can never leave earlier policies with half-applied side effects:
/// kProbe asks "would your fast path admit this op?" and must not mutate
/// any state; kCommit performs the debits/counting and fills the verdict.
enum class FastPhase : std::uint8_t { kProbe, kCommit };

class Policy {
 public:
  virtual ~Policy() = default;
  virtual std::string_view name() const = 0;
  virtual PolicyVerdict on_op(const DataplaneOp& op, sim::Time now) = 0;

  /// Debit-only fast path, consulted only when a same-epoch full
  /// evaluation of this exact (tenant, qpn, kind, dst_node) key allowed
  /// the op (see VerdictCache). Static admission decisions (ACL
  /// membership, chain composition) are therefore already settled and
  /// need not be re-derived; only per-op state (token balances, byte
  /// caps against a varying size, statistics) must be re-applied.
  /// Returning false from kProbe sends the op down the full chain; the
  /// fast path itself can never deny. Default: no fast path.
  virtual bool on_op_fast(const DataplaneOp& op, sim::Time now,
                          PolicyVerdict& v, FastPhase phase) {
    (void)op;
    (void)now;
    (void)v;
    (void)phase;
    return false;
  }

 protected:
  /// Mutating control calls must invalidate every cached verdict derived
  /// from this policy's state (no-op while not installed in a chain).
  void invalidate_verdicts();

 private:
  friend class PolicyChain;
  PolicyChain* chain_ = nullptr;
};

/// The kernel's per-host ordered policy list. Evaluation short-circuits on
/// the first denial; costs and pacing delays accumulate.
///
/// The chain carries a monotonically increasing *verdict epoch*: any
/// change that could flip a previously established verdict — installing
/// or removing a policy, or a policy mutator calling
/// invalidate_verdicts() — bumps it, so entries a VerdictCache stamped
/// with an older epoch can never pass again.
class PolicyChain {
 public:
  Policy& install(std::unique_ptr<Policy> policy) {
    policy->chain_ = this;
    policies_.push_back(std::move(policy));
    invalidate();
    return *policies_.back();
  }
  bool remove(std::string_view name) {
    for (auto it = policies_.begin(); it != policies_.end(); ++it) {
      if ((*it)->name() == name) {
        (*it)->chain_ = nullptr;
        policies_.erase(it);
        invalidate();
        return true;
      }
    }
    return false;
  }
  std::size_t size() const { return policies_.size(); }
  bool empty() const { return policies_.empty(); }

  /// Current verdict epoch (starts at 1; 0 is "never valid").
  std::uint64_t epoch() const { return epoch_; }
  /// Invalidate every cached verdict established against this chain.
  void invalidate() { ++epoch_; }

  PolicyVerdict evaluate(const DataplaneOp& op, sim::Time now) {
    return evaluate(op, now, nullptr, 0, 0);
  }

  /// Traced evaluation: when `tr` is non-null, emits one kPolicyEval
  /// record per policy visited (arg = that policy's CPU cost, aux = its
  /// index in the chain) so per-policy overhead shows up in the span chain.
  PolicyVerdict evaluate(const DataplaneOp& op, sim::Time now,
                         trace::Tracer* tr, std::uint32_t span,
                         std::uint8_t node) {
    PolicyVerdict total;
    std::uint16_t idx = 0;
    for (auto& p : policies_) {
      PolicyVerdict v = p->on_op(op, now);
      if (tr != nullptr) [[unlikely]] {
        tr->record(trace::Point::kPolicyEval, span, op.qpn, op.tenant, node,
                   static_cast<std::uint64_t>(v.cpu_cost), 0, idx);
      }
      ++idx;
      total.cpu_cost += v.cpu_cost;
      total.pace_delay = std::max(total.pace_delay, v.pace_delay);
      if (!v.allow) {
        total.allow = false;
        total.error = v.error;
        break;
      }
    }
    return total;
  }

  /// Fast-path evaluation under a verdict-cache hit: probe every policy
  /// first (side-effect free), then commit the debits. Returns false —
  /// without having mutated anything — if any policy declines the fast
  /// path (token balance too low, size over cap, no fast path at all);
  /// the caller then falls back to the full evaluate(). On success the
  /// accumulated verdict always allows.
  bool evaluate_fast(const DataplaneOp& op, sim::Time now, PolicyVerdict& out,
                     trace::Tracer* tr = nullptr, std::uint32_t span = 0,
                     std::uint8_t node = 0) {
    for (auto& p : policies_) {
      PolicyVerdict probe;
      if (!p->on_op_fast(op, now, probe, FastPhase::kProbe)) return false;
    }
    out = {};
    std::uint16_t idx = 0;
    for (auto& p : policies_) {
      PolicyVerdict v;
      (void)p->on_op_fast(op, now, v, FastPhase::kCommit);
      if (tr != nullptr) [[unlikely]] {
        tr->record(trace::Point::kPolicyEval, span, op.qpn, op.tenant, node,
                   static_cast<std::uint64_t>(v.cpu_cost), 0, idx);
      }
      ++idx;
      out.cpu_cost += v.cpu_cost;
      out.pace_delay = std::max(out.pace_delay, v.pace_delay);
    }
    return true;
  }

 private:
  std::vector<std::unique_ptr<Policy>> policies_;
  std::uint64_t epoch_ = 1;
};

inline void Policy::invalidate_verdicts() {
  if (chain_ != nullptr) chain_->invalidate();
}

/// Direct-mapped cache of *allowing* policy verdicts, keyed on
/// (tenant, qpn, op kind) and guarded by the destination node plus the
/// chain's verdict epoch. A hit means "the full chain allowed this exact
/// key at the current epoch"; the batched submission path then runs only
/// the policies' debit-only fast paths. Denials are never cached — they
/// are either transient (EAGAIN from an empty bucket) or must keep paying
/// the full chain so denial counters and errno stay exact.
class VerdictCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
  };

  /// `entries` is rounded up to a power of two (default 1024).
  explicit VerdictCache(std::size_t entries = 1024) {
    std::size_t n = 1;
    while (n < entries) n <<= 1;
    slots_.resize(n);
    mask_ = n - 1;
  }

  bool lookup(TenantId tenant, std::uint32_t qpn, DataplaneOp::Kind kind,
              nic::NodeId dst, std::uint64_t epoch) {
    const std::uint64_t k = pack(tenant, qpn, kind);
    const Slot& s = slots_[index(k)];
    if (s.key == k && s.epoch == epoch && s.dst == dst) {
      ++stats_.hits;
      return true;
    }
    ++stats_.misses;
    return false;
  }

  void insert(TenantId tenant, std::uint32_t qpn, DataplaneOp::Kind kind,
              nic::NodeId dst, std::uint64_t epoch) {
    const std::uint64_t k = pack(tenant, qpn, kind);
    Slot& s = slots_[index(k)];
    s.key = k;
    s.epoch = epoch;
    s.dst = dst;
    ++stats_.insertions;
  }

  const Stats& stats() const { return stats_; }
  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    std::uint64_t key = kEmpty;
    std::uint64_t epoch = 0;  // 0 never matches a live chain epoch
    nic::NodeId dst = 0;
  };
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  static std::uint64_t pack(TenantId tenant, std::uint32_t qpn,
                            DataplaneOp::Kind kind) {
    return (static_cast<std::uint64_t>(tenant) << 32) ^
           (static_cast<std::uint64_t>(qpn) << 3) ^
           static_cast<std::uint64_t>(kind);
  }
  std::size_t index(std::uint64_t k) const {
    // splitmix64 finalizer: deterministic, well-spread slot choice.
    k ^= k >> 30;
    k *= 0xbf58476d1ce4e5b9ull;
    k ^= k >> 27;
    k *= 0x94d049bb133111ebull;
    k ^= k >> 31;
    return static_cast<std::size_t>(k) & mask_;
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  Stats stats_;
};

}  // namespace cord::os
