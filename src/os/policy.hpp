// CoRD policies: the point of routing the RDMA data plane through the
// kernel. A policy sees every data-plane operation *before* it reaches
// the NIC and can account it, deny it, price it (CPU cost), or pace it.
// Policies must be lightweight and non-blocking (the paper's constraint);
// the chain is evaluated synchronously inside the syscall.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "nic/types.hpp"
#include "sim/units.hpp"
#include "trace/trace.hpp"

namespace cord::os {

using TenantId = std::uint32_t;

/// A data-plane operation as seen by the kernel interposition layer.
/// kRegMr/kDeregMr are control-plane verbs, but they consume the same
/// scarce NIC resources (MR table, on-NIC MR contexts) that a hostile
/// tenant can churn, so they run through the chain too. RDMA reads and
/// atomics arrive as kPostSend — `opcode` distinguishes them.
struct DataplaneOp {
  enum class Kind : std::uint8_t { kPostSend, kPostRecv, kPollCq, kRegMr,
                                   kDeregMr };
  Kind kind = Kind::kPostSend;
  TenantId tenant = 0;
  std::uint32_t qpn = 0;
  nic::Opcode opcode = nic::Opcode::kSend;
  std::uint64_t bytes = 0;
  nic::NodeId dst_node = 0;
};

struct PolicyVerdict {
  /// Deny -> the syscall returns `error` to the application.
  bool allow = true;
  int error = 0;
  /// CPU time the policy consumed (charged to the calling core, in-kernel).
  sim::Time cpu_cost = 0;
  /// Pacing delay imposed before the doorbell (QoS shaping).
  sim::Time pace_delay = 0;
};

class Policy {
 public:
  virtual ~Policy() = default;
  virtual std::string_view name() const = 0;
  virtual PolicyVerdict on_op(const DataplaneOp& op, sim::Time now) = 0;
};

/// The kernel's per-host ordered policy list. Evaluation short-circuits on
/// the first denial; costs and pacing delays accumulate.
class PolicyChain {
 public:
  Policy& install(std::unique_ptr<Policy> policy) {
    policies_.push_back(std::move(policy));
    return *policies_.back();
  }
  bool remove(std::string_view name) {
    for (auto it = policies_.begin(); it != policies_.end(); ++it) {
      if ((*it)->name() == name) {
        policies_.erase(it);
        return true;
      }
    }
    return false;
  }
  std::size_t size() const { return policies_.size(); }
  bool empty() const { return policies_.empty(); }

  PolicyVerdict evaluate(const DataplaneOp& op, sim::Time now) {
    return evaluate(op, now, nullptr, 0, 0);
  }

  /// Traced evaluation: when `tr` is non-null, emits one kPolicyEval
  /// record per policy visited (arg = that policy's CPU cost, aux = its
  /// index in the chain) so per-policy overhead shows up in the span chain.
  PolicyVerdict evaluate(const DataplaneOp& op, sim::Time now,
                         trace::Tracer* tr, std::uint32_t span,
                         std::uint8_t node) {
    PolicyVerdict total;
    std::uint16_t idx = 0;
    for (auto& p : policies_) {
      PolicyVerdict v = p->on_op(op, now);
      if (tr != nullptr) [[unlikely]] {
        tr->record(trace::Point::kPolicyEval, span, op.qpn, op.tenant, node,
                   static_cast<std::uint64_t>(v.cpu_cost), 0, idx);
      }
      ++idx;
      total.cpu_cost += v.cpu_cost;
      total.pace_delay = std::max(total.pace_delay, v.pace_delay);
      if (!v.allow) {
        total.allow = false;
        total.error = v.error;
        break;
      }
    }
    return total;
  }

 private:
  std::vector<std::unique_ptr<Policy>> policies_;
};

}  // namespace cord::os
